// Quickstart: stand up a Fabric-style network with a private channel,
// run a contract through endorse -> order -> validate, and inspect who
// could see what.
//
//   $ ./quickstart
#include <cstdio>

#include "net/report.hpp"
#include "platforms/fabric/fabric.hpp"

int main() {
  using namespace veil;
  using common::to_bytes;

  // 1. A deterministic simulated network; every run is reproducible.
  net::SimNetwork network{common::Rng(2024)};
  common::Rng rng(7);

  // 2. A Fabric-style platform with three organizations.
  fabric::FabricNetwork fab(network, crypto::Group::default_group(), rng);
  fab.add_org("Acme");
  fab.add_org("Globex");
  fab.add_org("Initech");  // will NOT be part of the deal

  // 3. A private channel — the paper's "separation of ledgers".
  fab.create_channel("acme-globex", {"Acme", "Globex"});

  // 4. A tiny smart contract, installed on the endorser's peer only.
  auto contract = std::make_shared<contracts::FunctionContract>(
      "orders", 1,
      [](contracts::ContractContext& ctx, const std::string& action) {
        if (action != "place") return contracts::InvokeStatus::UnknownAction;
        const auto count = ctx.get("order-count");
        const int n = count ? std::stoi(common::to_string(*count)) : 0;
        ctx.put("order-count", to_bytes(std::to_string(n + 1)));
        ctx.put("order/" + std::to_string(n),
                common::Bytes(ctx.args().begin(), ctx.args().end()));
        return contracts::InvokeStatus::Ok;
      });
  fab.install_chaincode("acme-globex", "Acme", contract,
                        contracts::EndorsementPolicy::require("Acme"));

  // 5. Submit a transaction: endorse -> order -> validate -> commit.
  const auto receipt = fab.submit("acme-globex", "Globex", "orders", "place",
                                  to_bytes("100 widgets @ $5"));
  std::printf("transaction %s: %s\n", receipt.tx_id.c_str(),
              receipt.committed ? "committed" : receipt.reason.c_str());

  // 6. Both members hold identical replicas.
  const auto order = fab.state("acme-globex", "Globex").get("order/0");
  std::printf("Globex's replica says order/0 = \"%s\"\n",
              order ? common::to_string(order->value).c_str() : "<missing>");

  // 7. And the leakage auditor proves the uninvolved org learned nothing.
  std::printf("\nWho observed the transaction data?\n");
  for (const char* who :
       {"peer.Acme", "peer.Globex", "peer.Initech", "orderer-org"}) {
    std::printf("  %-14s %s\n", who,
                fab.auditor().saw(who, "tx/" + receipt.tx_id + "/data")
                    ? "saw plaintext"
                    : "saw nothing");
  }
  // 8. A full audit report, straight from the leakage log.
  std::printf("\nLeakage report (all labels):\n%s",
              net::render_summary(net::summarize(fab.auditor())).c_str());
  std::printf("\n%s",
              net::render_disclosures(
                  "tx/" + receipt.tx_id + "/data",
                  net::disclosures(fab.auditor(),
                                   "tx/" + receipt.tx_id + "/data"))
                  .c_str());

  std::printf("\nNote the shared ordering service DID see the data — the\n"
              "paper's §3.4 caveat. Run the letter_of_credit example to see\n"
              "the mitigations (encryption, member-run orderer).\n");
  return receipt.committed ? 0 : 1;
}
