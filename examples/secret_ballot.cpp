// Secret ballot via multiparty computation (paper §2.2 / §3.2).
//
// Five consortium members vote on a governance proposal. No member's
// vote ever leaves its machine — only Shamir shares (uniformly random
// field elements) cross the network — yet everyone computes the same
// tally, which is then committed to a ledger with all five endorsements.
//
//   $ ./secret_ballot
#include <cstdio>

#include "ledger/ordering.hpp"
#include "mpc/protocol.hpp"

int main() {
  using namespace veil;
  using crypto::BigInt;

  net::SimNetwork network{common::Rng(31337)};
  common::Rng rng(555);

  const std::map<std::string, bool> votes = {
      {"BankA", true},  {"BankB", false}, {"BankC", true},
      {"BankD", true},  {"BankE", false},
  };

  std::printf("=== Secret ballot among %zu consortium members ===\n\n",
              votes.size());

  const crypto::Shamir field(BigInt::from_decimal("2305843009213693951"));
  const auto tally = mpc::secret_ballot(field, network, votes, rng);

  std::printf("Tally: %llu yes / %llu no  (%llu share messages exchanged)\n",
              static_cast<unsigned long long>(tally.yes),
              static_cast<unsigned long long>(tally.no),
              static_cast<unsigned long long>(tally.messages_exchanged));

  // Privacy check: did any member observe another member's raw vote?
  bool leak = false;
  for (const auto& [a, va] : votes) {
    for (const auto& [b, vb] : votes) {
      if (a != b && network.auditor().saw(a, "mpc/input/" + b)) leak = true;
    }
  }
  std::printf("Cross-member vote leakage: %s\n",
              leak ? "DETECTED (bug!)" : "none — only shares crossed the wire");

  // Commit the agreed tally to a ledger so it is auditable.
  net::LeakageAuditor ledger_auditor;
  ledger::OrderingService orderer("BankA", ledger::OrdererDeployment::Private,
                                  ledger_auditor, 1);
  ledger::Transaction tx;
  tx.channel = "governance";
  tx.contract = "ballot";
  tx.action = "record-tally";
  for (const auto& [name, vote] : votes) tx.participants.push_back(name);
  tx.payload = common::to_bytes("yes=" + std::to_string(tally.yes) +
                                ";no=" + std::to_string(tally.no));
  const auto blocks = orderer.submit(tx, network.clock().now());
  std::printf("Tally committed to the governance ledger in block %llu "
              "(tx %s)\n",
              static_cast<unsigned long long>(blocks.front().header.height),
              tx.id().c_str());
  std::printf("\nResult: proposal %s\n",
              tally.yes > tally.no ? "ACCEPTED" : "REJECTED");
  return 0;
}
