// Merkle tear-offs with an oracle, Corda-style (paper §2.2 / §5).
//
// Alice and Bob settle an FX swap. The FX oracle must attest the rate
// used, but must not see the trade (amounts, counterparties). The
// transaction is a Merkle tree; the oracle receives a "filtered"
// transaction with every component except the rate torn off, verifies
// the rate, and signs the root — a signature that covers the whole
// transaction it never saw.
//
//   $ ./oracle_tearoff
#include <cstdio>

#include "platforms/corda/corda.hpp"

int main() {
  using namespace veil;
  using common::to_bytes;

  net::SimNetwork network{common::Rng(888)};
  common::Rng rng(889);
  corda::CordaNetwork corda(network, crypto::Group::default_group(), rng);

  corda.add_party("Alice");
  corda.add_party("Bob");
  corda.add_party("Mallory");  // nosy non-participant
  corda.add_notary("Notary", /*validating=*/false);
  corda.add_oracle("FxOracle", {{"USD/EUR", "0.9321"}});

  std::printf("=== FX swap settlement with an oracle tear-off ===\n\n");

  // Alice holds the unsettled swap state.
  const auto issued = corda.issue(
      "Alice", "FxSwap", to_bytes("notional=25,000,000 USD; direction=buy"),
      {"Alice", "Bob"}, "Notary");
  std::printf("swap state issued: %s\n",
              issued.success ? issued.tx_id.c_str() : issued.reason.c_str());

  // Settle at the oracle-attested rate.
  const auto ref = corda.vault("Alice").front().ref;
  const auto settle = corda.transact(
      "Alice", {ref},
      {corda::OutputSpec{
          "FxSwap", to_bytes("settled: 25,000,000 USD -> 23,302,500 EUR"),
          {"Alice", "Bob"}}},
      "Notary", /*confidential=*/false,
      corda::OracleRequest{"FxOracle", "USD/EUR", "0.9321"});
  std::printf("settlement: %s\n\n",
              settle.success ? settle.tx_id.c_str() : settle.reason.c_str());

  // What did each principal see?
  const std::string prefix = "tx/" + settle.tx_id + "/";
  const auto& auditor = network.auditor();
  std::printf("visibility of the settlement transaction:\n");
  std::printf("  Alice     data=%s\n",
              auditor.saw("Alice", prefix + "data") ? "plaintext" : "none");
  std::printf("  Bob       data=%s\n",
              auditor.saw("Bob", prefix + "data") ? "plaintext" : "none");
  std::printf("  FxOracle  data=%s, fact=%s  <- tear-off at work\n",
              auditor.saw("FxOracle", prefix + "data") ? "plaintext" : "hidden",
              auditor.saw("FxOracle", prefix + "fact") ? "visible" : "none");
  std::printf("  Notary    data=%s (non-validating)\n",
              auditor.saw("Notary", prefix + "data") ? "plaintext" : "hidden");
  std::printf("  Mallory   anything=%s\n",
              auditor.saw_any_form("Mallory", prefix) ? "something?!" : "nothing");

  // Bonus: show that a tampered rate is refused.
  const auto issued2 = corda.issue("Alice", "FxSwap", to_bytes("x"),
                                   {"Alice", "Bob"}, "Notary");
  (void)issued2;
  const auto ref2 = corda.vault("Alice").front().ref;
  const auto bad = corda.transact(
      "Alice", {ref2},
      {corda::OutputSpec{"FxSwap", to_bytes("settled at a fake rate"),
                         {"Alice", "Bob"}}},
      "Notary", false, corda::OracleRequest{"FxOracle", "USD/EUR", "1.2500"});
  std::printf("\nsettlement at a forged rate: %s (%s)\n",
              bad.success ? "ACCEPTED (bug!)" : "refused", bad.reason.c_str());
  return settle.success && !bad.success ? 0 : 1;
}
