// The paper's Section 4 use case as a runnable scenario: a letter of
// credit among an issuing bank, an advising bank, a buyer and a seller.
//
// Design decisions, straight from the design guide (see also
// examples/design_guide):
//   * buyer/seller relationship hidden from the network -> own channel;
//   * PII deletable under GDPR                           -> off-chain store;
//   * third party may run the orderer                    -> encrypt payloads.
//
//   $ ./letter_of_credit
#include <cstdio>

#include "core/assessment.hpp"
#include "crypto/aes.hpp"
#include "offchain/store.hpp"
#include "platforms/fabric/fabric.hpp"

namespace {

using namespace veil;
using common::to_bytes;

std::shared_ptr<contracts::FunctionContract> loc_contract() {
  return std::make_shared<contracts::FunctionContract>(
      "letter-of-credit", 1,
      [](contracts::ContractContext& ctx, const std::string& action) {
        const common::Bytes args(ctx.args().begin(), ctx.args().end());
        const auto status = ctx.get("loc/status");
        const auto is = [&](const char* s) {
          return status && *status == to_bytes(s);
        };
        if (action == "apply" && !status) {
          ctx.put("loc/status", to_bytes("applied"));
          ctx.put("loc/terms", args);
          return contracts::InvokeStatus::Ok;
        }
        if (action == "issue" && is("applied")) {
          ctx.put("loc/status", to_bytes("issued"));
          return contracts::InvokeStatus::Ok;
        }
        if (action == "ship" && is("issued")) {
          ctx.put("loc/status", to_bytes("shipped"));
          ctx.put("loc/docs", args);
          return contracts::InvokeStatus::Ok;
        }
        if (action == "pay" && is("shipped")) {
          ctx.put("loc/status", to_bytes("paid"));
          return contracts::InvokeStatus::Ok;
        }
        return contracts::InvokeStatus::Rejected;
      });
}

}  // namespace

int main() {
  std::printf("=== Letter of credit on a permissioned DLT (paper §4) ===\n\n");

  // The design guide's verdict for this use case.
  const auto recommendation = core::DecisionEngine::for_profile(
      core::letter_of_credit_profile());
  std::printf("Design guide recommends:");
  for (core::Mechanism m : recommendation.mechanisms) {
    std::printf(" [%s]", core::to_string(m).c_str());
  }
  std::printf("\n\n");

  net::SimNetwork network{common::Rng(99)};
  common::Rng rng(100);
  fabric::FabricNetwork fab(network, crypto::Group::default_group(), rng);
  for (const char* org :
       {"IssuingBank", "AdvisingBank", "Buyer", "Seller", "Bystander"}) {
    fab.add_org(org);
  }

  // Separation of ledgers: only the four parties join the LoC channel.
  fab.create_channel("loc-7", {"IssuingBank", "AdvisingBank", "Buyer",
                               "Seller"});
  fab.install_chaincode(
      "loc-7", "IssuingBank", loc_contract(),
      contracts::EndorsementPolicy::require("IssuingBank"));

  // Off-chain data: the buyer's KYC PII never touches the ledger.
  offchain::OffChainStore kyc_store("IssuingBank",
                                    offchain::Hosting::PeerLocal,
                                    network.auditor());
  const crypto::Digest kyc_digest = kyc_store.put(
      "buyer-kyc", to_bytes("name=J.Doe;passport=P1234567;dob=1980-01-01"));
  std::printf("Buyer KYC stored off-chain; ledger will carry hash %s...\n",
              crypto::digest_hex(kyc_digest).substr(0, 16).c_str());

  // Symmetric encryption: the orderer is run by a third party, so the
  // agreement terms are sealed under a key shared among the four parties.
  const common::Bytes channel_key = rng.next_bytes(32);
  const common::Bytes terms =
      to_bytes("goods=5t coffee;amount=1,000,000 USD;expiry=2020-03-01");
  const common::Bytes sealed_terms =
      crypto::seal(channel_key, terms, rng.next_bytes(16));

  // The lifecycle.
  struct Step {
    const char* client;
    const char* action;
    common::Bytes args;
  };
  const Step steps[] = {
      {"Buyer", "apply", sealed_terms},
      {"IssuingBank", "issue", {}},
      {"Seller", "ship", crypto::digest_bytes(kyc_digest)},
      {"IssuingBank", "pay", {}},
  };
  for (const Step& step : steps) {
    const auto r =
        fab.submit("loc-7", step.client, "letter-of-credit", step.action,
                   step.args);
    std::printf("  %-12s %-6s -> %s\n", step.client, step.action,
                r.committed ? "committed" : r.reason.c_str());
  }

  // Every channel member can decrypt the terms; the orderer cannot.
  const auto stored = fab.state("loc-7", "Seller").get("loc/terms");
  const auto opened = crypto::open(channel_key, stored->value);
  std::printf("\nSeller decrypts terms: \"%s\"\n",
              opened ? common::to_string(*opened).c_str() : "<failed>");

  // Years later: the buyer invokes the right to be forgotten.
  kyc_store.purge(kyc_digest);
  std::printf("GDPR purge executed; KYC retrievable: %s, hash stub on "
              "ledger: yes\n",
              kyc_store.get(kyc_digest) ? "yes" : "no");

  // The bystander org learned nothing at all.
  std::printf("\nBystander observations: %llu bytes\n",
              static_cast<unsigned long long>(
                  network.auditor().bytes_seen("peer.Bystander", "")));
  return 0;
}
