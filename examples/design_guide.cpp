// The design guide as a command-line tool (paper §3).
//
// Answer the Figure 1 / §3.1 / §3.3 questions with flags and get the
// recommended mechanisms, the decision path, and a platform ranking.
//
//   $ ./design_guide --deletion --hide-group --untrusted-admin
//   $ ./design_guide --preset=letter-of-credit
//   $ ./design_guide --help
#include <cstdio>
#include <cstring>
#include <string>

#include "core/assessment.hpp"

namespace {

using namespace veil::core;

void usage() {
  std::printf(
      "usage: design_guide [flags]\n"
      "data confidentiality (Figure 1):\n"
      "  --deletion             regulatory deletion required (GDPR)\n"
      "  --no-encrypted-share   encrypted data may not be shared\n"
      "  --no-onchain-record    no on-chain record desired\n"
      "  --hide-within-tx       hide data from some tx participants\n"
      "  --uninvolved-validate  uninvolved parties must validate\n"
      "  --private-inputs       inputs can't be shared between parties\n"
      "  --shared-function      shared function on private values\n"
      "  --untrusted-admin      node admin is an untrusted third party\n"
      "privacy of interactions (§3.1):\n"
      "  --hide-group           hide the group from the network\n"
      "  --hide-subgroup        hide a sub-group on a shared ledger\n"
      "  --private-individual   individual must stay fully private\n"
      "business logic (§3.3):\n"
      "  --private-logic        keep business logic private\n"
      "  --builtin-versioning   need in-DLT contract versioning\n"
      "  --hide-logic-admin     hide logic/data from node admin\n"
      "  --language-freedom     free choice of programming language\n"
      "presets:\n"
      "  --preset=letter-of-credit   the paper's Section 4 case study\n");
}

}  // namespace

int main(int argc, char** argv) {
  RequirementProfile profile;
  profile.use_case = "custom";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (arg == "--preset=letter-of-credit") {
      profile = letter_of_credit_profile();
    } else if (arg == "--deletion") {
      profile.data.deletion_required = true;
    } else if (arg == "--no-encrypted-share") {
      profile.data.encrypted_sharing_allowed = false;
    } else if (arg == "--no-onchain-record") {
      profile.data.onchain_record_desired = false;
    } else if (arg == "--hide-within-tx") {
      profile.data.hide_within_transaction = true;
    } else if (arg == "--uninvolved-validate") {
      profile.data.uninvolved_validation = true;
    } else if (arg == "--private-inputs") {
      profile.data.private_inputs = true;
    } else if (arg == "--shared-function") {
      profile.data.private_inputs = true;
      profile.data.shared_function_on_private = true;
    } else if (arg == "--untrusted-admin") {
      profile.data.untrusted_node_admin = true;
    } else if (arg == "--hide-group") {
      profile.parties.hide_group_from_network = true;
    } else if (arg == "--hide-subgroup") {
      profile.parties.hide_subgroup_on_ledger = true;
    } else if (arg == "--private-individual") {
      profile.parties.fully_private_individual = true;
    } else if (arg == "--private-logic") {
      profile.logic.keep_logic_private = true;
    } else if (arg == "--builtin-versioning") {
      profile.logic.need_builtin_versioning = true;
    } else if (arg == "--hide-logic-admin") {
      profile.logic.hide_from_node_admin = true;
      profile.logic.keep_logic_private = true;
    } else if (arg == "--language-freedom") {
      profile.logic.language_freedom = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s (try --help)\n", arg.c_str());
      return 2;
    }
  }

  std::printf("=== veil design guide ===\n\nrequirements (%s):\n",
              profile.use_case.c_str());
  std::printf("  parties: %s\n", profile.parties.describe().c_str());
  std::printf("  data:    %s\n", profile.data.describe().c_str());
  std::printf("  logic:   %s\n\n", profile.logic.describe().c_str());

  const Recommendation rec = DecisionEngine::for_profile(profile);
  std::printf("decision path:\n");
  for (const auto& line : rec.rationale) std::printf("  - %s\n", line.c_str());
  std::printf("\nrecommended mechanisms:\n");
  if (rec.mechanisms.empty()) std::printf("  (none — a plain shared ledger suffices)\n");
  for (Mechanism m : rec.mechanisms) {
    const MechanismInfo& mi = info(m);
    std::printf("  * %s [%s]\n      %s\n", mi.name.c_str(),
                to_string(mi.maturity).c_str(), mi.summary.c_str());
  }
  if (!rec.caveats.empty()) {
    std::printf("\ncaveats:\n");
    for (const auto& caveat : rec.caveats) {
      std::printf("  ! %s\n", caveat.c_str());
    }
  }

  std::printf("\nplatform assessment (Table 1):\n%s",
              render(assess(rec, CapabilityMatrix::paper_table1())).c_str());
  return 0;
}
