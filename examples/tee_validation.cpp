// Independent validation of confidential transactions via a TEE —
// Figure 1's branch: "if independent validation while keeping data
// confidential is desirable, uninvolved nodes can provision trusted
// execution environments".
//
// Scenario: Acme and Globex trade under a volume cap that a REGULATOR
// must enforce — but the regulator may not see the trades. The regulator
// hosts an enclave; the parties (1) remote-attest that the enclave runs
// the agreed compliance contract, then (2) submit each trade sealed to
// the enclave. The enclave validates and keeps a running total; the
// regulator's machine only ever handles ciphertext.
//
//   $ ./tee_validation
#include <cstdio>

#include "tee/enclave.hpp"

namespace {

using namespace veil;
using common::to_bytes;

// The agreed compliance logic: accept a trade iff the running total
// stays below the cap.
std::shared_ptr<contracts::FunctionContract> compliance_contract() {
  return std::make_shared<contracts::FunctionContract>(
      "volume-cap", 1,
      [](contracts::ContractContext& ctx, const std::string& action) {
        if (action != "trade") return contracts::InvokeStatus::UnknownAction;
        constexpr long kCap = 10'000'000;
        const long amount = std::stol(common::to_string(
            common::Bytes(ctx.args().begin(), ctx.args().end())));
        const auto total_raw = ctx.get("total");
        const long total =
            total_raw ? std::stol(common::to_string(*total_raw)) : 0;
        if (total + amount > kCap) return contracts::InvokeStatus::Rejected;
        ctx.put("total", to_bytes(std::to_string(total + amount)));
        return contracts::InvokeStatus::Ok;
      });
}

}  // namespace

int main() {
  common::Rng rng(7777);
  net::LeakageAuditor auditor;
  const crypto::Group& group = crypto::Group::default_group();

  std::printf("=== Confidential trades, independently validated in a TEE ===\n\n");

  // The chip vendor provisions the regulator's enclave.
  tee::Manufacturer manufacturer(group, rng);
  tee::Enclave enclave("regulator-host", manufacturer, "regulator-tee-0",
                       auditor, rng, 0);
  enclave.load(compliance_contract());

  // Step 1 — remote attestation: the trading parties check that the
  // regulator's enclave really runs the agreed compliance build.
  const crypto::Digest expected =
      compliance_contract()->code_digest();
  crypto::Sha256 h;
  h.update("veil.tee.measurement");
  h.update(common::BytesView(expected.data(), expected.size()));
  const crypto::Digest expected_measurement = h.finalize();

  const common::Bytes nonce = rng.next_bytes(16);
  const tee::AttestationQuote quote = enclave.attest(nonce);
  const bool attested =
      tee::verify_quote(group, manufacturer.root_key(), quote,
                        expected_measurement, nonce, 0);
  std::printf("remote attestation by Acme/Globex: %s\n",
              attested ? "verified (measurement matches agreed build)"
                       : "FAILED");

  // Step 2 — sealed trade submissions.
  tee::EnclaveClient acme(group, rng);
  acme.accept(enclave.open_session(acme.public_key(), rng));

  const long trades[] = {4'000'000, 3'500'000, 2'000'000, 1'000'000};
  for (long amount : trades) {
    const auto sealed = acme.seal(
        tee::InvokeRequest{"volume-cap", "trade",
                           to_bytes(std::to_string(amount))},
        rng);
    const auto response = enclave.invoke(sealed);
    const auto verdict = response ? acme.open(*response) : std::nullopt;
    std::printf("  trade %9ld -> %s\n", amount,
                verdict && verdict->ok ? "validated"
                                       : "REJECTED (cap exceeded)");
  }

  // Step 3 — what did the regulator's machine actually see?
  std::printf("\nregulator-host observations:\n");
  std::printf("  plaintext bytes: %llu\n",
              static_cast<unsigned long long>(
                  auditor.bytes_seen("regulator-host", "")));
  std::printf("  ciphertext bytes: %llu\n",
              static_cast<unsigned long long>(
                  auditor.opaque_bytes_seen("regulator-host", "")));
  std::printf("\nThe regulator enforced the cap (last trade rejected at the\n"
              "10M limit) without ever seeing a single trade in the clear —\n"
              "the Figure 1 TEE branch, end to end.\n");
  return attested ? 0 : 1;
}
