// Supply-chain custody on a Corda-style ledger.
//
// Items move Farm -> Mill -> Distributor -> Shop. Requirements, mapped by
// the design guide:
//  * custody hops are bilateral — competitors must not learn who supplies
//    whom (peer-to-peer transactions / separation of ledgers);
//  * intermediaries stay pseudonymous on the states themselves (one-time
//    public keys + linkage certificates);
//  * the final buyer must verify PROVENANCE — an unbroken, notarized
//    custody chain back to the farm (backchain resolution) — accepting
//    that resolution reveals the chain's history to them.
//
//   $ ./supply_chain
#include <cstdio>

#include "platforms/corda/corda.hpp"
#include "workload/workload.hpp"

int main() {
  using namespace veil;
  using common::to_bytes;

  net::SimNetwork network{common::Rng(1000)};
  common::Rng rng(1001);
  corda::CordaNetwork corda(network, crypto::Group::default_group(), rng);

  const std::vector<std::string> chain = {"Farm", "Mill", "Distributor",
                                          "Shop"};
  for (const std::string& p : chain) corda.add_party(p);
  corda.add_party("Competitor");  // watches, learns nothing
  corda.add_notary("Notary", /*validating=*/false);

  std::printf("=== Coffee custody chain: Farm -> Mill -> Distributor -> Shop ===\n\n");

  // Drive three items through the chain with the workload generator.
  workload::SupplyChainConfig config;
  config.hops_per_item = 3;
  workload::SupplyChainWorkload workload(chain, config, 555);

  std::map<std::string, corda::StateRef> current_ref;  // item -> state
  std::string last_item;
  for (const workload::CustodyEvent& event : workload.take(9)) {
    corda::FlowResult result;
    if (event.hop == 0) {
      // Producer issues the item.
      result = corda.issue(event.from, "Custody", event.inspection,
                           {event.from}, "Notary");
      current_ref[event.item] = corda.vault(event.from).back().ref;
    }
    // Transfer custody with one-time keys (pseudonymous holders).
    result = corda.transact(
        event.from, {current_ref[event.item]},
        {corda::OutputSpec{"Custody", event.inspection, {event.to}}},
        "Notary", /*confidential=*/true);
    current_ref[event.item] = corda.vault(event.to).back().ref;
    std::printf("  %-7s hop %u: %-12s -> %-12s %s\n", event.item.c_str(),
                event.hop, event.from.c_str(), event.to.c_str(),
                result.success ? "ok" : result.reason.c_str());
    if (event.final_hop) last_item = event.item;
  }

  // The shop verifies provenance of the last delivered item.
  const auto provenance =
      corda.resolve_backchain("Shop", current_ref[last_item]);
  std::printf("\nShop verifies provenance of %s: %s (%zu notarized hops)\n",
              last_item.c_str(), provenance.valid ? "VALID" : "BROKEN",
              provenance.depth);

  // Pseudonymity: the state names a one-time key, which only the direct
  // counterparty can resolve.
  const auto shop_state = corda.vault("Shop").back();
  const std::string holder = shop_state.participants.front();
  std::printf("on-ledger holder of the item: \"%s\"\n", holder.c_str());
  if (holder.rfind("ot:", 0) == 0) {
    const std::string fp = holder.substr(3);
    const auto resolved = corda.resolve_confidential("Shop", fp);
    const auto competitor_view =
        corda.resolve_confidential("Competitor", fp);
    std::printf("  Shop resolves it to: %s; Competitor resolves it to: %s\n",
                resolved ? resolved->c_str() : "(cannot)",
                competitor_view ? competitor_view->c_str() : "(cannot)");
  }

  // And the competitor observed nothing at all.
  std::printf("\nCompetitor observations: %llu bytes (plaintext), %llu "
              "(any form)\n",
              static_cast<unsigned long long>(
                  network.auditor().bytes_seen("Competitor", "")),
              static_cast<unsigned long long>(
                  network.auditor().opaque_bytes_seen("Competitor", "")));
  return provenance.valid ? 0 : 1;
}
