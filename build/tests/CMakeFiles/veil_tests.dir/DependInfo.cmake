
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common/test_bytes.cpp" "tests/CMakeFiles/veil_tests.dir/common/test_bytes.cpp.o" "gcc" "tests/CMakeFiles/veil_tests.dir/common/test_bytes.cpp.o.d"
  "/root/repo/tests/common/test_rng.cpp" "tests/CMakeFiles/veil_tests.dir/common/test_rng.cpp.o" "gcc" "tests/CMakeFiles/veil_tests.dir/common/test_rng.cpp.o.d"
  "/root/repo/tests/common/test_serialize.cpp" "tests/CMakeFiles/veil_tests.dir/common/test_serialize.cpp.o" "gcc" "tests/CMakeFiles/veil_tests.dir/common/test_serialize.cpp.o.d"
  "/root/repo/tests/contracts/test_contract.cpp" "tests/CMakeFiles/veil_tests.dir/contracts/test_contract.cpp.o" "gcc" "tests/CMakeFiles/veil_tests.dir/contracts/test_contract.cpp.o.d"
  "/root/repo/tests/contracts/test_endorsement.cpp" "tests/CMakeFiles/veil_tests.dir/contracts/test_endorsement.cpp.o" "gcc" "tests/CMakeFiles/veil_tests.dir/contracts/test_endorsement.cpp.o.d"
  "/root/repo/tests/contracts/test_engines.cpp" "tests/CMakeFiles/veil_tests.dir/contracts/test_engines.cpp.o" "gcc" "tests/CMakeFiles/veil_tests.dir/contracts/test_engines.cpp.o.d"
  "/root/repo/tests/core/test_assessment.cpp" "tests/CMakeFiles/veil_tests.dir/core/test_assessment.cpp.o" "gcc" "tests/CMakeFiles/veil_tests.dir/core/test_assessment.cpp.o.d"
  "/root/repo/tests/core/test_capability.cpp" "tests/CMakeFiles/veil_tests.dir/core/test_capability.cpp.o" "gcc" "tests/CMakeFiles/veil_tests.dir/core/test_capability.cpp.o.d"
  "/root/repo/tests/core/test_decision.cpp" "tests/CMakeFiles/veil_tests.dir/core/test_decision.cpp.o" "gcc" "tests/CMakeFiles/veil_tests.dir/core/test_decision.cpp.o.d"
  "/root/repo/tests/core/test_demonstration.cpp" "tests/CMakeFiles/veil_tests.dir/core/test_demonstration.cpp.o" "gcc" "tests/CMakeFiles/veil_tests.dir/core/test_demonstration.cpp.o.d"
  "/root/repo/tests/crypto/test_aes.cpp" "tests/CMakeFiles/veil_tests.dir/crypto/test_aes.cpp.o" "gcc" "tests/CMakeFiles/veil_tests.dir/crypto/test_aes.cpp.o.d"
  "/root/repo/tests/crypto/test_bigint.cpp" "tests/CMakeFiles/veil_tests.dir/crypto/test_bigint.cpp.o" "gcc" "tests/CMakeFiles/veil_tests.dir/crypto/test_bigint.cpp.o.d"
  "/root/repo/tests/crypto/test_commitment.cpp" "tests/CMakeFiles/veil_tests.dir/crypto/test_commitment.cpp.o" "gcc" "tests/CMakeFiles/veil_tests.dir/crypto/test_commitment.cpp.o.d"
  "/root/repo/tests/crypto/test_elgamal.cpp" "tests/CMakeFiles/veil_tests.dir/crypto/test_elgamal.cpp.o" "gcc" "tests/CMakeFiles/veil_tests.dir/crypto/test_elgamal.cpp.o.d"
  "/root/repo/tests/crypto/test_group.cpp" "tests/CMakeFiles/veil_tests.dir/crypto/test_group.cpp.o" "gcc" "tests/CMakeFiles/veil_tests.dir/crypto/test_group.cpp.o.d"
  "/root/repo/tests/crypto/test_hmac.cpp" "tests/CMakeFiles/veil_tests.dir/crypto/test_hmac.cpp.o" "gcc" "tests/CMakeFiles/veil_tests.dir/crypto/test_hmac.cpp.o.d"
  "/root/repo/tests/crypto/test_merkle.cpp" "tests/CMakeFiles/veil_tests.dir/crypto/test_merkle.cpp.o" "gcc" "tests/CMakeFiles/veil_tests.dir/crypto/test_merkle.cpp.o.d"
  "/root/repo/tests/crypto/test_paillier.cpp" "tests/CMakeFiles/veil_tests.dir/crypto/test_paillier.cpp.o" "gcc" "tests/CMakeFiles/veil_tests.dir/crypto/test_paillier.cpp.o.d"
  "/root/repo/tests/crypto/test_sha256.cpp" "tests/CMakeFiles/veil_tests.dir/crypto/test_sha256.cpp.o" "gcc" "tests/CMakeFiles/veil_tests.dir/crypto/test_sha256.cpp.o.d"
  "/root/repo/tests/crypto/test_shamir.cpp" "tests/CMakeFiles/veil_tests.dir/crypto/test_shamir.cpp.o" "gcc" "tests/CMakeFiles/veil_tests.dir/crypto/test_shamir.cpp.o.d"
  "/root/repo/tests/crypto/test_signature.cpp" "tests/CMakeFiles/veil_tests.dir/crypto/test_signature.cpp.o" "gcc" "tests/CMakeFiles/veil_tests.dir/crypto/test_signature.cpp.o.d"
  "/root/repo/tests/crypto/test_threshold.cpp" "tests/CMakeFiles/veil_tests.dir/crypto/test_threshold.cpp.o" "gcc" "tests/CMakeFiles/veil_tests.dir/crypto/test_threshold.cpp.o.d"
  "/root/repo/tests/crypto/test_zkp.cpp" "tests/CMakeFiles/veil_tests.dir/crypto/test_zkp.cpp.o" "gcc" "tests/CMakeFiles/veil_tests.dir/crypto/test_zkp.cpp.o.d"
  "/root/repo/tests/integration/test_cross_platform.cpp" "tests/CMakeFiles/veil_tests.dir/integration/test_cross_platform.cpp.o" "gcc" "tests/CMakeFiles/veil_tests.dir/integration/test_cross_platform.cpp.o.d"
  "/root/repo/tests/integration/test_failure_injection.cpp" "tests/CMakeFiles/veil_tests.dir/integration/test_failure_injection.cpp.o" "gcc" "tests/CMakeFiles/veil_tests.dir/integration/test_failure_injection.cpp.o.d"
  "/root/repo/tests/integration/test_letter_of_credit.cpp" "tests/CMakeFiles/veil_tests.dir/integration/test_letter_of_credit.cpp.o" "gcc" "tests/CMakeFiles/veil_tests.dir/integration/test_letter_of_credit.cpp.o.d"
  "/root/repo/tests/integration/test_quorum_mitigation.cpp" "tests/CMakeFiles/veil_tests.dir/integration/test_quorum_mitigation.cpp.o" "gcc" "tests/CMakeFiles/veil_tests.dir/integration/test_quorum_mitigation.cpp.o.d"
  "/root/repo/tests/integration/test_robustness.cpp" "tests/CMakeFiles/veil_tests.dir/integration/test_robustness.cpp.o" "gcc" "tests/CMakeFiles/veil_tests.dir/integration/test_robustness.cpp.o.d"
  "/root/repo/tests/integration/test_workload_replay.cpp" "tests/CMakeFiles/veil_tests.dir/integration/test_workload_replay.cpp.o" "gcc" "tests/CMakeFiles/veil_tests.dir/integration/test_workload_replay.cpp.o.d"
  "/root/repo/tests/ledger/test_block.cpp" "tests/CMakeFiles/veil_tests.dir/ledger/test_block.cpp.o" "gcc" "tests/CMakeFiles/veil_tests.dir/ledger/test_block.cpp.o.d"
  "/root/repo/tests/ledger/test_chain.cpp" "tests/CMakeFiles/veil_tests.dir/ledger/test_chain.cpp.o" "gcc" "tests/CMakeFiles/veil_tests.dir/ledger/test_chain.cpp.o.d"
  "/root/repo/tests/ledger/test_ordering.cpp" "tests/CMakeFiles/veil_tests.dir/ledger/test_ordering.cpp.o" "gcc" "tests/CMakeFiles/veil_tests.dir/ledger/test_ordering.cpp.o.d"
  "/root/repo/tests/ledger/test_state.cpp" "tests/CMakeFiles/veil_tests.dir/ledger/test_state.cpp.o" "gcc" "tests/CMakeFiles/veil_tests.dir/ledger/test_state.cpp.o.d"
  "/root/repo/tests/ledger/test_transaction.cpp" "tests/CMakeFiles/veil_tests.dir/ledger/test_transaction.cpp.o" "gcc" "tests/CMakeFiles/veil_tests.dir/ledger/test_transaction.cpp.o.d"
  "/root/repo/tests/mpc/test_mpc.cpp" "tests/CMakeFiles/veil_tests.dir/mpc/test_mpc.cpp.o" "gcc" "tests/CMakeFiles/veil_tests.dir/mpc/test_mpc.cpp.o.d"
  "/root/repo/tests/net/test_leakage.cpp" "tests/CMakeFiles/veil_tests.dir/net/test_leakage.cpp.o" "gcc" "tests/CMakeFiles/veil_tests.dir/net/test_leakage.cpp.o.d"
  "/root/repo/tests/net/test_network.cpp" "tests/CMakeFiles/veil_tests.dir/net/test_network.cpp.o" "gcc" "tests/CMakeFiles/veil_tests.dir/net/test_network.cpp.o.d"
  "/root/repo/tests/net/test_report.cpp" "tests/CMakeFiles/veil_tests.dir/net/test_report.cpp.o" "gcc" "tests/CMakeFiles/veil_tests.dir/net/test_report.cpp.o.d"
  "/root/repo/tests/offchain/test_pdc.cpp" "tests/CMakeFiles/veil_tests.dir/offchain/test_pdc.cpp.o" "gcc" "tests/CMakeFiles/veil_tests.dir/offchain/test_pdc.cpp.o.d"
  "/root/repo/tests/offchain/test_store.cpp" "tests/CMakeFiles/veil_tests.dir/offchain/test_store.cpp.o" "gcc" "tests/CMakeFiles/veil_tests.dir/offchain/test_store.cpp.o.d"
  "/root/repo/tests/pki/test_certificate.cpp" "tests/CMakeFiles/veil_tests.dir/pki/test_certificate.cpp.o" "gcc" "tests/CMakeFiles/veil_tests.dir/pki/test_certificate.cpp.o.d"
  "/root/repo/tests/pki/test_idemix.cpp" "tests/CMakeFiles/veil_tests.dir/pki/test_idemix.cpp.o" "gcc" "tests/CMakeFiles/veil_tests.dir/pki/test_idemix.cpp.o.d"
  "/root/repo/tests/pki/test_membership.cpp" "tests/CMakeFiles/veil_tests.dir/pki/test_membership.cpp.o" "gcc" "tests/CMakeFiles/veil_tests.dir/pki/test_membership.cpp.o.d"
  "/root/repo/tests/pki/test_onetime.cpp" "tests/CMakeFiles/veil_tests.dir/pki/test_onetime.cpp.o" "gcc" "tests/CMakeFiles/veil_tests.dir/pki/test_onetime.cpp.o.d"
  "/root/repo/tests/platforms/test_corda.cpp" "tests/CMakeFiles/veil_tests.dir/platforms/test_corda.cpp.o" "gcc" "tests/CMakeFiles/veil_tests.dir/platforms/test_corda.cpp.o.d"
  "/root/repo/tests/platforms/test_fabric.cpp" "tests/CMakeFiles/veil_tests.dir/platforms/test_fabric.cpp.o" "gcc" "tests/CMakeFiles/veil_tests.dir/platforms/test_fabric.cpp.o.d"
  "/root/repo/tests/platforms/test_quorum.cpp" "tests/CMakeFiles/veil_tests.dir/platforms/test_quorum.cpp.o" "gcc" "tests/CMakeFiles/veil_tests.dir/platforms/test_quorum.cpp.o.d"
  "/root/repo/tests/tee/test_tee.cpp" "tests/CMakeFiles/veil_tests.dir/tee/test_tee.cpp.o" "gcc" "tests/CMakeFiles/veil_tests.dir/tee/test_tee.cpp.o.d"
  "/root/repo/tests/workload/test_workload.cpp" "tests/CMakeFiles/veil_tests.dir/workload/test_workload.cpp.o" "gcc" "tests/CMakeFiles/veil_tests.dir/workload/test_workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/veil_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tee/CMakeFiles/veil_tee.dir/DependInfo.cmake"
  "/root/repo/build/src/offchain/CMakeFiles/veil_offchain.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/veil_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/platforms/fabric/CMakeFiles/veil_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/contracts/CMakeFiles/veil_contracts.dir/DependInfo.cmake"
  "/root/repo/build/src/platforms/corda/CMakeFiles/veil_corda.dir/DependInfo.cmake"
  "/root/repo/build/src/platforms/quorum/CMakeFiles/veil_quorum.dir/DependInfo.cmake"
  "/root/repo/build/src/pki/CMakeFiles/veil_pki.dir/DependInfo.cmake"
  "/root/repo/build/src/ledger/CMakeFiles/veil_ledger.dir/DependInfo.cmake"
  "/root/repo/build/src/mpc/CMakeFiles/veil_mpc.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/veil_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/veil_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/veil_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
