# Empty dependencies file for veil_tests.
# This may be replaced when dependencies are built.
