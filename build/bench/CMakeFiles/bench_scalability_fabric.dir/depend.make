# Empty dependencies file for bench_scalability_fabric.
# This may be replaced when dependencies are built.
