file(REMOVE_RECURSE
  "CMakeFiles/bench_scalability_fabric.dir/bench_scalability_fabric.cpp.o"
  "CMakeFiles/bench_scalability_fabric.dir/bench_scalability_fabric.cpp.o.d"
  "bench_scalability_fabric"
  "bench_scalability_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scalability_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
