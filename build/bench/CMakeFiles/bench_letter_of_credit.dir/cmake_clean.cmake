file(REMOVE_RECURSE
  "CMakeFiles/bench_letter_of_credit.dir/bench_letter_of_credit.cpp.o"
  "CMakeFiles/bench_letter_of_credit.dir/bench_letter_of_credit.cpp.o.d"
  "bench_letter_of_credit"
  "bench_letter_of_credit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_letter_of_credit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
