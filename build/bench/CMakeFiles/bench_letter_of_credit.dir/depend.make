# Empty dependencies file for bench_letter_of_credit.
# This may be replaced when dependencies are built.
