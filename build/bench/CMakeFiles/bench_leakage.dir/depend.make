# Empty dependencies file for bench_leakage.
# This may be replaced when dependencies are built.
