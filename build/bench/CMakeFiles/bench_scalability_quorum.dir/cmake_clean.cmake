file(REMOVE_RECURSE
  "CMakeFiles/bench_scalability_quorum.dir/bench_scalability_quorum.cpp.o"
  "CMakeFiles/bench_scalability_quorum.dir/bench_scalability_quorum.cpp.o.d"
  "bench_scalability_quorum"
  "bench_scalability_quorum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scalability_quorum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
