file(REMOVE_RECURSE
  "CMakeFiles/bench_scalability_corda.dir/bench_scalability_corda.cpp.o"
  "CMakeFiles/bench_scalability_corda.dir/bench_scalability_corda.cpp.o.d"
  "bench_scalability_corda"
  "bench_scalability_corda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scalability_corda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
