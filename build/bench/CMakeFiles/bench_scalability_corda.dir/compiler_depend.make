# Empty compiler generated dependencies file for bench_scalability_corda.
# This may be replaced when dependencies are built.
