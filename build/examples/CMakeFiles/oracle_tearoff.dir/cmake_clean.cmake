file(REMOVE_RECURSE
  "CMakeFiles/oracle_tearoff.dir/oracle_tearoff.cpp.o"
  "CMakeFiles/oracle_tearoff.dir/oracle_tearoff.cpp.o.d"
  "oracle_tearoff"
  "oracle_tearoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oracle_tearoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
