# Empty dependencies file for oracle_tearoff.
# This may be replaced when dependencies are built.
