# Empty dependencies file for tee_validation.
# This may be replaced when dependencies are built.
