
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/tee_validation.cpp" "examples/CMakeFiles/tee_validation.dir/tee_validation.cpp.o" "gcc" "examples/CMakeFiles/tee_validation.dir/tee_validation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/veil_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tee/CMakeFiles/veil_tee.dir/DependInfo.cmake"
  "/root/repo/build/src/offchain/CMakeFiles/veil_offchain.dir/DependInfo.cmake"
  "/root/repo/build/src/platforms/fabric/CMakeFiles/veil_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/contracts/CMakeFiles/veil_contracts.dir/DependInfo.cmake"
  "/root/repo/build/src/platforms/corda/CMakeFiles/veil_corda.dir/DependInfo.cmake"
  "/root/repo/build/src/platforms/quorum/CMakeFiles/veil_quorum.dir/DependInfo.cmake"
  "/root/repo/build/src/pki/CMakeFiles/veil_pki.dir/DependInfo.cmake"
  "/root/repo/build/src/ledger/CMakeFiles/veil_ledger.dir/DependInfo.cmake"
  "/root/repo/build/src/mpc/CMakeFiles/veil_mpc.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/veil_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/veil_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/veil_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
