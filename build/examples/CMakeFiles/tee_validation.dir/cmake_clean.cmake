file(REMOVE_RECURSE
  "CMakeFiles/tee_validation.dir/tee_validation.cpp.o"
  "CMakeFiles/tee_validation.dir/tee_validation.cpp.o.d"
  "tee_validation"
  "tee_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tee_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
