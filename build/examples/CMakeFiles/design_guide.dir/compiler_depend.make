# Empty compiler generated dependencies file for design_guide.
# This may be replaced when dependencies are built.
