file(REMOVE_RECURSE
  "CMakeFiles/design_guide.dir/design_guide.cpp.o"
  "CMakeFiles/design_guide.dir/design_guide.cpp.o.d"
  "design_guide"
  "design_guide.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/design_guide.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
