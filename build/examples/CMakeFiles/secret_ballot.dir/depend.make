# Empty dependencies file for secret_ballot.
# This may be replaced when dependencies are built.
