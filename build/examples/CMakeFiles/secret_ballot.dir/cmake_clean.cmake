file(REMOVE_RECURSE
  "CMakeFiles/secret_ballot.dir/secret_ballot.cpp.o"
  "CMakeFiles/secret_ballot.dir/secret_ballot.cpp.o.d"
  "secret_ballot"
  "secret_ballot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secret_ballot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
