# Empty dependencies file for letter_of_credit.
# This may be replaced when dependencies are built.
