file(REMOVE_RECURSE
  "CMakeFiles/letter_of_credit.dir/letter_of_credit.cpp.o"
  "CMakeFiles/letter_of_credit.dir/letter_of_credit.cpp.o.d"
  "letter_of_credit"
  "letter_of_credit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/letter_of_credit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
