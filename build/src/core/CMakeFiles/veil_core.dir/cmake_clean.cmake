file(REMOVE_RECURSE
  "CMakeFiles/veil_core.dir/assessment.cpp.o"
  "CMakeFiles/veil_core.dir/assessment.cpp.o.d"
  "CMakeFiles/veil_core.dir/capability.cpp.o"
  "CMakeFiles/veil_core.dir/capability.cpp.o.d"
  "CMakeFiles/veil_core.dir/decision.cpp.o"
  "CMakeFiles/veil_core.dir/decision.cpp.o.d"
  "CMakeFiles/veil_core.dir/demonstration.cpp.o"
  "CMakeFiles/veil_core.dir/demonstration.cpp.o.d"
  "CMakeFiles/veil_core.dir/mechanisms.cpp.o"
  "CMakeFiles/veil_core.dir/mechanisms.cpp.o.d"
  "CMakeFiles/veil_core.dir/requirements.cpp.o"
  "CMakeFiles/veil_core.dir/requirements.cpp.o.d"
  "libveil_core.a"
  "libveil_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/veil_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
