file(REMOVE_RECURSE
  "CMakeFiles/veil_net.dir/leakage.cpp.o"
  "CMakeFiles/veil_net.dir/leakage.cpp.o.d"
  "CMakeFiles/veil_net.dir/network.cpp.o"
  "CMakeFiles/veil_net.dir/network.cpp.o.d"
  "CMakeFiles/veil_net.dir/report.cpp.o"
  "CMakeFiles/veil_net.dir/report.cpp.o.d"
  "libveil_net.a"
  "libveil_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/veil_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
