# Empty compiler generated dependencies file for veil_net.
# This may be replaced when dependencies are built.
