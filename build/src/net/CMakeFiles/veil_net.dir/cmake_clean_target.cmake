file(REMOVE_RECURSE
  "libveil_net.a"
)
