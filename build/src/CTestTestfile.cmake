# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("crypto")
subdirs("pki")
subdirs("net")
subdirs("ledger")
subdirs("contracts")
subdirs("offchain")
subdirs("tee")
subdirs("mpc")
subdirs("platforms/fabric")
subdirs("platforms/corda")
subdirs("platforms/quorum")
subdirs("core")
subdirs("workload")
