file(REMOVE_RECURSE
  "CMakeFiles/veil_ledger.dir/block.cpp.o"
  "CMakeFiles/veil_ledger.dir/block.cpp.o.d"
  "CMakeFiles/veil_ledger.dir/chain.cpp.o"
  "CMakeFiles/veil_ledger.dir/chain.cpp.o.d"
  "CMakeFiles/veil_ledger.dir/ordering.cpp.o"
  "CMakeFiles/veil_ledger.dir/ordering.cpp.o.d"
  "CMakeFiles/veil_ledger.dir/state.cpp.o"
  "CMakeFiles/veil_ledger.dir/state.cpp.o.d"
  "CMakeFiles/veil_ledger.dir/transaction.cpp.o"
  "CMakeFiles/veil_ledger.dir/transaction.cpp.o.d"
  "libveil_ledger.a"
  "libveil_ledger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/veil_ledger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
