# Empty dependencies file for veil_ledger.
# This may be replaced when dependencies are built.
