file(REMOVE_RECURSE
  "libveil_ledger.a"
)
