file(REMOVE_RECURSE
  "libveil_common.a"
)
