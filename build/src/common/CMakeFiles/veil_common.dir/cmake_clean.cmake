file(REMOVE_RECURSE
  "CMakeFiles/veil_common.dir/bytes.cpp.o"
  "CMakeFiles/veil_common.dir/bytes.cpp.o.d"
  "CMakeFiles/veil_common.dir/log.cpp.o"
  "CMakeFiles/veil_common.dir/log.cpp.o.d"
  "CMakeFiles/veil_common.dir/rng.cpp.o"
  "CMakeFiles/veil_common.dir/rng.cpp.o.d"
  "CMakeFiles/veil_common.dir/serialize.cpp.o"
  "CMakeFiles/veil_common.dir/serialize.cpp.o.d"
  "libveil_common.a"
  "libveil_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/veil_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
