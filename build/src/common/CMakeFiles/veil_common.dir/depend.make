# Empty dependencies file for veil_common.
# This may be replaced when dependencies are built.
