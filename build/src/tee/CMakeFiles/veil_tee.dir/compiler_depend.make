# Empty compiler generated dependencies file for veil_tee.
# This may be replaced when dependencies are built.
