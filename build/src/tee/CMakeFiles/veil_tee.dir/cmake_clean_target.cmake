file(REMOVE_RECURSE
  "libveil_tee.a"
)
