file(REMOVE_RECURSE
  "CMakeFiles/veil_tee.dir/attestation.cpp.o"
  "CMakeFiles/veil_tee.dir/attestation.cpp.o.d"
  "CMakeFiles/veil_tee.dir/enclave.cpp.o"
  "CMakeFiles/veil_tee.dir/enclave.cpp.o.d"
  "libveil_tee.a"
  "libveil_tee.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/veil_tee.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
