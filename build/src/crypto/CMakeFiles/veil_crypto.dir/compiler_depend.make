# Empty compiler generated dependencies file for veil_crypto.
# This may be replaced when dependencies are built.
