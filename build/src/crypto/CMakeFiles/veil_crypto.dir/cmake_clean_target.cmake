file(REMOVE_RECURSE
  "libveil_crypto.a"
)
