file(REMOVE_RECURSE
  "CMakeFiles/veil_crypto.dir/aes.cpp.o"
  "CMakeFiles/veil_crypto.dir/aes.cpp.o.d"
  "CMakeFiles/veil_crypto.dir/bigint.cpp.o"
  "CMakeFiles/veil_crypto.dir/bigint.cpp.o.d"
  "CMakeFiles/veil_crypto.dir/commitment.cpp.o"
  "CMakeFiles/veil_crypto.dir/commitment.cpp.o.d"
  "CMakeFiles/veil_crypto.dir/elgamal.cpp.o"
  "CMakeFiles/veil_crypto.dir/elgamal.cpp.o.d"
  "CMakeFiles/veil_crypto.dir/group.cpp.o"
  "CMakeFiles/veil_crypto.dir/group.cpp.o.d"
  "CMakeFiles/veil_crypto.dir/hmac.cpp.o"
  "CMakeFiles/veil_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/veil_crypto.dir/merkle.cpp.o"
  "CMakeFiles/veil_crypto.dir/merkle.cpp.o.d"
  "CMakeFiles/veil_crypto.dir/paillier.cpp.o"
  "CMakeFiles/veil_crypto.dir/paillier.cpp.o.d"
  "CMakeFiles/veil_crypto.dir/sha256.cpp.o"
  "CMakeFiles/veil_crypto.dir/sha256.cpp.o.d"
  "CMakeFiles/veil_crypto.dir/shamir.cpp.o"
  "CMakeFiles/veil_crypto.dir/shamir.cpp.o.d"
  "CMakeFiles/veil_crypto.dir/signature.cpp.o"
  "CMakeFiles/veil_crypto.dir/signature.cpp.o.d"
  "CMakeFiles/veil_crypto.dir/threshold.cpp.o"
  "CMakeFiles/veil_crypto.dir/threshold.cpp.o.d"
  "CMakeFiles/veil_crypto.dir/zkp.cpp.o"
  "CMakeFiles/veil_crypto.dir/zkp.cpp.o.d"
  "libveil_crypto.a"
  "libveil_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/veil_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
