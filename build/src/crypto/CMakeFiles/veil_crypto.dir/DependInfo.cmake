
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/aes.cpp" "src/crypto/CMakeFiles/veil_crypto.dir/aes.cpp.o" "gcc" "src/crypto/CMakeFiles/veil_crypto.dir/aes.cpp.o.d"
  "/root/repo/src/crypto/bigint.cpp" "src/crypto/CMakeFiles/veil_crypto.dir/bigint.cpp.o" "gcc" "src/crypto/CMakeFiles/veil_crypto.dir/bigint.cpp.o.d"
  "/root/repo/src/crypto/commitment.cpp" "src/crypto/CMakeFiles/veil_crypto.dir/commitment.cpp.o" "gcc" "src/crypto/CMakeFiles/veil_crypto.dir/commitment.cpp.o.d"
  "/root/repo/src/crypto/elgamal.cpp" "src/crypto/CMakeFiles/veil_crypto.dir/elgamal.cpp.o" "gcc" "src/crypto/CMakeFiles/veil_crypto.dir/elgamal.cpp.o.d"
  "/root/repo/src/crypto/group.cpp" "src/crypto/CMakeFiles/veil_crypto.dir/group.cpp.o" "gcc" "src/crypto/CMakeFiles/veil_crypto.dir/group.cpp.o.d"
  "/root/repo/src/crypto/hmac.cpp" "src/crypto/CMakeFiles/veil_crypto.dir/hmac.cpp.o" "gcc" "src/crypto/CMakeFiles/veil_crypto.dir/hmac.cpp.o.d"
  "/root/repo/src/crypto/merkle.cpp" "src/crypto/CMakeFiles/veil_crypto.dir/merkle.cpp.o" "gcc" "src/crypto/CMakeFiles/veil_crypto.dir/merkle.cpp.o.d"
  "/root/repo/src/crypto/paillier.cpp" "src/crypto/CMakeFiles/veil_crypto.dir/paillier.cpp.o" "gcc" "src/crypto/CMakeFiles/veil_crypto.dir/paillier.cpp.o.d"
  "/root/repo/src/crypto/sha256.cpp" "src/crypto/CMakeFiles/veil_crypto.dir/sha256.cpp.o" "gcc" "src/crypto/CMakeFiles/veil_crypto.dir/sha256.cpp.o.d"
  "/root/repo/src/crypto/shamir.cpp" "src/crypto/CMakeFiles/veil_crypto.dir/shamir.cpp.o" "gcc" "src/crypto/CMakeFiles/veil_crypto.dir/shamir.cpp.o.d"
  "/root/repo/src/crypto/signature.cpp" "src/crypto/CMakeFiles/veil_crypto.dir/signature.cpp.o" "gcc" "src/crypto/CMakeFiles/veil_crypto.dir/signature.cpp.o.d"
  "/root/repo/src/crypto/threshold.cpp" "src/crypto/CMakeFiles/veil_crypto.dir/threshold.cpp.o" "gcc" "src/crypto/CMakeFiles/veil_crypto.dir/threshold.cpp.o.d"
  "/root/repo/src/crypto/zkp.cpp" "src/crypto/CMakeFiles/veil_crypto.dir/zkp.cpp.o" "gcc" "src/crypto/CMakeFiles/veil_crypto.dir/zkp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/veil_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
