
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpc/protocol.cpp" "src/mpc/CMakeFiles/veil_mpc.dir/protocol.cpp.o" "gcc" "src/mpc/CMakeFiles/veil_mpc.dir/protocol.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crypto/CMakeFiles/veil_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/veil_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/veil_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
