file(REMOVE_RECURSE
  "CMakeFiles/veil_mpc.dir/protocol.cpp.o"
  "CMakeFiles/veil_mpc.dir/protocol.cpp.o.d"
  "libveil_mpc.a"
  "libveil_mpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/veil_mpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
