# Empty compiler generated dependencies file for veil_mpc.
# This may be replaced when dependencies are built.
