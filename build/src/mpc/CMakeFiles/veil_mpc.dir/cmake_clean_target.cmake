file(REMOVE_RECURSE
  "libveil_mpc.a"
)
