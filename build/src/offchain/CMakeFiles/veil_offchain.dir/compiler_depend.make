# Empty compiler generated dependencies file for veil_offchain.
# This may be replaced when dependencies are built.
