file(REMOVE_RECURSE
  "libveil_offchain.a"
)
