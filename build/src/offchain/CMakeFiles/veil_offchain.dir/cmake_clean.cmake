file(REMOVE_RECURSE
  "CMakeFiles/veil_offchain.dir/pdc.cpp.o"
  "CMakeFiles/veil_offchain.dir/pdc.cpp.o.d"
  "CMakeFiles/veil_offchain.dir/store.cpp.o"
  "CMakeFiles/veil_offchain.dir/store.cpp.o.d"
  "libveil_offchain.a"
  "libveil_offchain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/veil_offchain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
