file(REMOVE_RECURSE
  "CMakeFiles/veil_corda.dir/corda.cpp.o"
  "CMakeFiles/veil_corda.dir/corda.cpp.o.d"
  "libveil_corda.a"
  "libveil_corda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/veil_corda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
