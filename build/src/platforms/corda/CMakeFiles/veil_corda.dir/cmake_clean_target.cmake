file(REMOVE_RECURSE
  "libveil_corda.a"
)
