# Empty dependencies file for veil_corda.
# This may be replaced when dependencies are built.
