file(REMOVE_RECURSE
  "libveil_quorum.a"
)
