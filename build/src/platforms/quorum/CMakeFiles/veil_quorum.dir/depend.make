# Empty dependencies file for veil_quorum.
# This may be replaced when dependencies are built.
