file(REMOVE_RECURSE
  "CMakeFiles/veil_quorum.dir/quorum.cpp.o"
  "CMakeFiles/veil_quorum.dir/quorum.cpp.o.d"
  "libveil_quorum.a"
  "libveil_quorum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/veil_quorum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
