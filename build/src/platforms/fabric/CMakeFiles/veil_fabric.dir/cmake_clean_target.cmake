file(REMOVE_RECURSE
  "libveil_fabric.a"
)
