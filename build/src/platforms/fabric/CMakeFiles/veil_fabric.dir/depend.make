# Empty dependencies file for veil_fabric.
# This may be replaced when dependencies are built.
