file(REMOVE_RECURSE
  "CMakeFiles/veil_fabric.dir/fabric.cpp.o"
  "CMakeFiles/veil_fabric.dir/fabric.cpp.o.d"
  "libveil_fabric.a"
  "libveil_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/veil_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
