file(REMOVE_RECURSE
  "libveil_workload.a"
)
