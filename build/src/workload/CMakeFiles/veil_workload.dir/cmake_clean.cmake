file(REMOVE_RECURSE
  "CMakeFiles/veil_workload.dir/workload.cpp.o"
  "CMakeFiles/veil_workload.dir/workload.cpp.o.d"
  "libveil_workload.a"
  "libveil_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/veil_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
