# Empty dependencies file for veil_workload.
# This may be replaced when dependencies are built.
