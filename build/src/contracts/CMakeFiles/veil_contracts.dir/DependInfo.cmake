
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/contracts/contract.cpp" "src/contracts/CMakeFiles/veil_contracts.dir/contract.cpp.o" "gcc" "src/contracts/CMakeFiles/veil_contracts.dir/contract.cpp.o.d"
  "/root/repo/src/contracts/endorsement.cpp" "src/contracts/CMakeFiles/veil_contracts.dir/endorsement.cpp.o" "gcc" "src/contracts/CMakeFiles/veil_contracts.dir/endorsement.cpp.o.d"
  "/root/repo/src/contracts/engine.cpp" "src/contracts/CMakeFiles/veil_contracts.dir/engine.cpp.o" "gcc" "src/contracts/CMakeFiles/veil_contracts.dir/engine.cpp.o.d"
  "/root/repo/src/contracts/offchain_engine.cpp" "src/contracts/CMakeFiles/veil_contracts.dir/offchain_engine.cpp.o" "gcc" "src/contracts/CMakeFiles/veil_contracts.dir/offchain_engine.cpp.o.d"
  "/root/repo/src/contracts/registry.cpp" "src/contracts/CMakeFiles/veil_contracts.dir/registry.cpp.o" "gcc" "src/contracts/CMakeFiles/veil_contracts.dir/registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ledger/CMakeFiles/veil_ledger.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/veil_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/veil_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/veil_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
