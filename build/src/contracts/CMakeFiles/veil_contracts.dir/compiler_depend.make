# Empty compiler generated dependencies file for veil_contracts.
# This may be replaced when dependencies are built.
