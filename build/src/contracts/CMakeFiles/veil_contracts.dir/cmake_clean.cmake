file(REMOVE_RECURSE
  "CMakeFiles/veil_contracts.dir/contract.cpp.o"
  "CMakeFiles/veil_contracts.dir/contract.cpp.o.d"
  "CMakeFiles/veil_contracts.dir/endorsement.cpp.o"
  "CMakeFiles/veil_contracts.dir/endorsement.cpp.o.d"
  "CMakeFiles/veil_contracts.dir/engine.cpp.o"
  "CMakeFiles/veil_contracts.dir/engine.cpp.o.d"
  "CMakeFiles/veil_contracts.dir/offchain_engine.cpp.o"
  "CMakeFiles/veil_contracts.dir/offchain_engine.cpp.o.d"
  "CMakeFiles/veil_contracts.dir/registry.cpp.o"
  "CMakeFiles/veil_contracts.dir/registry.cpp.o.d"
  "libveil_contracts.a"
  "libveil_contracts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/veil_contracts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
