file(REMOVE_RECURSE
  "libveil_contracts.a"
)
