# Empty dependencies file for veil_pki.
# This may be replaced when dependencies are built.
