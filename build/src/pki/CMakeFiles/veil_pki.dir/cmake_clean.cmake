file(REMOVE_RECURSE
  "CMakeFiles/veil_pki.dir/ca.cpp.o"
  "CMakeFiles/veil_pki.dir/ca.cpp.o.d"
  "CMakeFiles/veil_pki.dir/certificate.cpp.o"
  "CMakeFiles/veil_pki.dir/certificate.cpp.o.d"
  "CMakeFiles/veil_pki.dir/idemix.cpp.o"
  "CMakeFiles/veil_pki.dir/idemix.cpp.o.d"
  "CMakeFiles/veil_pki.dir/membership.cpp.o"
  "CMakeFiles/veil_pki.dir/membership.cpp.o.d"
  "CMakeFiles/veil_pki.dir/onetime.cpp.o"
  "CMakeFiles/veil_pki.dir/onetime.cpp.o.d"
  "libveil_pki.a"
  "libveil_pki.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/veil_pki.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
