
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pki/ca.cpp" "src/pki/CMakeFiles/veil_pki.dir/ca.cpp.o" "gcc" "src/pki/CMakeFiles/veil_pki.dir/ca.cpp.o.d"
  "/root/repo/src/pki/certificate.cpp" "src/pki/CMakeFiles/veil_pki.dir/certificate.cpp.o" "gcc" "src/pki/CMakeFiles/veil_pki.dir/certificate.cpp.o.d"
  "/root/repo/src/pki/idemix.cpp" "src/pki/CMakeFiles/veil_pki.dir/idemix.cpp.o" "gcc" "src/pki/CMakeFiles/veil_pki.dir/idemix.cpp.o.d"
  "/root/repo/src/pki/membership.cpp" "src/pki/CMakeFiles/veil_pki.dir/membership.cpp.o" "gcc" "src/pki/CMakeFiles/veil_pki.dir/membership.cpp.o.d"
  "/root/repo/src/pki/onetime.cpp" "src/pki/CMakeFiles/veil_pki.dir/onetime.cpp.o" "gcc" "src/pki/CMakeFiles/veil_pki.dir/onetime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crypto/CMakeFiles/veil_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/veil_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
