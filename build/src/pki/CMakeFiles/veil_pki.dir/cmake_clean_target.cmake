file(REMOVE_RECURSE
  "libveil_pki.a"
)
