// Symmetric-kernel throughput + thread-scaling sweeps for the parallel
// execution engine (google-benchmark → BENCH_symmetric.json via
// bench/run_benches.sh).
//
// Two families:
//   * Per-kernel AES-CTR / SHA-256 throughput on 64 KiB buffers —
//     hardware (AES-NI / SHA-NI) vs software (T-table / scalar) vs the
//     byte-wise reference baseline. Hardware rows register only on
//     machines whose CPUID reports the extensions.
//   * Thread sweeps (1/2/4/8) over the pooled hot paths: block
//     endorsement validation, Merkle build, per-recipient envelope
//     sealing, Miller-Rabin rounds, and the raw pool dispatch overhead.
//     Interpret sweeps relative to the machine: on a single-core host
//     every thread count measures the same serial work plus pool
//     overhead (the JSON context block records the CPU count).
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "crypto/aes.hpp"
#include "crypto/bigint.hpp"
#include "crypto/hmac.hpp"
#include "crypto/merkle.hpp"
#include "crypto/sha256.hpp"
#include "crypto/signature.hpp"
#include "ledger/transaction.hpp"

namespace {

using namespace veil;
using common::Bytes;
using common::Rng;
using common::ThreadPool;

// --- Per-kernel symmetric throughput ---------------------------------------

void aes_ctr_kernel_bench(benchmark::State& state, crypto::AesKernel kernel) {
  crypto::set_aes_kernel(kernel);
  Rng rng(8);
  const Bytes key = rng.next_bytes(32);
  const Bytes nonce = rng.next_bytes(16);
  const Bytes data = rng.next_bytes(64 * 1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::aes_ctr(key, nonce, data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
  state.SetLabel(crypto::aes_kernel_name());
  crypto::set_aes_kernel(crypto::AesKernel::Auto);
}

void sha256_kernel_bench(benchmark::State& state, crypto::Sha256Kernel kernel) {
  crypto::set_sha256_kernel(kernel);
  Rng rng(9);
  const Bytes data = rng.next_bytes(64 * 1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::sha256(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
  state.SetLabel(crypto::sha256_kernel_name());
  crypto::set_sha256_kernel(crypto::Sha256Kernel::Auto);
}

void register_kernel_benches() {
  benchmark::RegisterBenchmark("BM_AesCtr_64KiB/reference",
                               aes_ctr_kernel_bench,
                               crypto::AesKernel::Reference);
  benchmark::RegisterBenchmark("BM_AesCtr_64KiB/ttable", aes_ctr_kernel_bench,
                               crypto::AesKernel::TTable);
  crypto::set_aes_kernel(crypto::AesKernel::AesNi);
  if (crypto::active_aes_kernel() == crypto::AesKernel::AesNi) {
    benchmark::RegisterBenchmark("BM_AesCtr_64KiB/aesni", aes_ctr_kernel_bench,
                                 crypto::AesKernel::AesNi);
  }
  crypto::set_aes_kernel(crypto::AesKernel::Auto);

  benchmark::RegisterBenchmark("BM_Sha256_64KiB/scalar", sha256_kernel_bench,
                               crypto::Sha256Kernel::Scalar);
  crypto::set_sha256_kernel(crypto::Sha256Kernel::ShaNi);
  if (crypto::active_sha256_kernel() == crypto::Sha256Kernel::ShaNi) {
    benchmark::RegisterBenchmark("BM_Sha256_64KiB/sha_ni", sha256_kernel_bench,
                                 crypto::Sha256Kernel::ShaNi);
  }
  crypto::set_sha256_kernel(crypto::Sha256Kernel::Auto);
}

const bool kKernelBenchesRegistered = [] {
  register_kernel_benches();
  return true;
}();

// --- Thread sweeps ---------------------------------------------------------

// Per-transaction endorsement-signature verification, the dominant cost
// of FabricNetwork::commit_block. 32 transactions x 4 endorsements.
void BM_BlockValidation(benchmark::State& state) {
  Rng rng(11);
  const crypto::Group& group = crypto::Group::default_group();
  std::vector<crypto::KeyPair> keys;
  for (int i = 0; i < 4; ++i) keys.push_back(crypto::KeyPair::generate(group, rng));
  std::vector<ledger::Transaction> txs(32);
  for (std::size_t i = 0; i < txs.size(); ++i) {
    ledger::Transaction& tx = txs[i];
    tx.channel = "bench";
    tx.contract = "kv";
    tx.action = "put";
    tx.payload = rng.next_bytes(256);
    tx.writes.push_back({"key" + std::to_string(i), rng.next_bytes(64), false});
    for (std::size_t k = 0; k < keys.size(); ++k) {
      tx.endorse("Org" + std::to_string(k), keys[k]);
    }
  }
  ThreadPool::set_global_threads(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const auto valid = ThreadPool::global().parallel_map(
        txs.size(),
        [&](std::size_t i) -> char { return txs[i].endorsements_valid(group); });
    benchmark::DoNotOptimize(valid);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(txs.size()));
  ThreadPool::set_global_threads(1);
}
BENCHMARK(BM_BlockValidation)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_MerkleBuildThreads(benchmark::State& state) {
  Rng rng(12);
  std::vector<Bytes> leaves;
  for (int i = 0; i < 4096; ++i) leaves.push_back(rng.next_bytes(256));
  ThreadPool::set_global_threads(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::MerkleTree::build(leaves));
  }
  ThreadPool::set_global_threads(1);
}
BENCHMARK(BM_MerkleBuildThreads)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// The Quorum transaction-manager inner loop: one HKDF pair key + one
// seal per recipient, 16 recipients, 4 KiB payload.
void BM_EnvelopeSealThreads(benchmark::State& state) {
  Rng rng(13);
  const Bytes payload = rng.next_bytes(4096);
  std::vector<std::string> recipients;
  std::vector<Bytes> nonces;
  for (int i = 0; i < 16; ++i) {
    recipients.push_back("Node" + std::to_string(i));
    nonces.push_back(rng.next_bytes(16));
  }
  ThreadPool::set_global_threads(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const auto sealed = ThreadPool::global().parallel_map(
        recipients.size(), [&](std::size_t i) {
          const Bytes pair_key = crypto::hkdf(
              {}, common::to_bytes("from|" + recipients[i]), "quorum.tm.pair",
              32);
          return crypto::seal(pair_key, payload, nonces[i]);
        });
    benchmark::DoNotOptimize(sealed);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(recipients.size()));
  ThreadPool::set_global_threads(1);
}
BENCHMARK(BM_EnvelopeSealThreads)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// Miller-Rabin on a 512-bit prime: 20 pooled witness rounds per call.
void BM_MillerRabinThreads(benchmark::State& state) {
  Rng gen(14);
  const crypto::BigInt prime = crypto::BigInt::generate_prime(gen, 512);
  ThreadPool::set_global_threads(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    Rng rng(15);
    benchmark::DoNotOptimize(prime.is_probable_prime(rng));
  }
  ThreadPool::set_global_threads(1);
}
BENCHMARK(BM_MillerRabinThreads)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// Raw pool dispatch cost: 1024 near-empty iterations per region.
void BM_ParallelForOverhead(benchmark::State& state) {
  ThreadPool::set_global_threads(static_cast<std::size_t>(state.range(0)));
  std::vector<std::uint64_t> out(1024);
  for (auto _ : state) {
    ThreadPool::global().parallel_for(out.size(), [&](std::size_t i) {
      out[i] = i * 2654435761u;
    });
    benchmark::DoNotOptimize(out.data());
  }
  ThreadPool::set_global_threads(1);
}
BENCHMARK(BM_ParallelForOverhead)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
