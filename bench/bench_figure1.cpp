// E2 — regenerate Figure 1.
//
// The figure is a decision flowchart mapping data-confidentiality
// requirements to mechanisms. We regenerate it two ways:
//   1. the paper's named paths, printed with their full decision trace;
//   2. an exhaustive sweep of all 2^8 requirement profiles, printed as a
//      compact profile -> mechanisms table (the flowchart in extension).
#include <cstdio>
#include <string>

#include "core/decision.hpp"

namespace {

using namespace veil::core;

void print_recommendation(const char* title, const DataRequirements& req) {
  std::printf("--- %s\n", title);
  std::printf("    requirements: %s\n", req.describe().c_str());
  const Recommendation rec = DecisionEngine::for_data(req);
  for (const std::string& line : rec.rationale) {
    std::printf("    path: %s\n", line.c_str());
  }
  std::printf("    => mechanisms:");
  if (rec.mechanisms.empty()) std::printf(" (none — plain shared ledger)");
  for (Mechanism m : rec.mechanisms) {
    std::printf(" [%s]", to_string(m).c_str());
  }
  std::printf("\n");
  for (const std::string& caveat : rec.caveats) {
    std::printf("    caveat: %s\n", caveat.c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("Figure 1 — Guide to mapping confidentiality requirements on "
              "data to available techniques.\n\n");

  // The named paths of §3.2.
  {
    DataRequirements req;
    req.deletion_required = true;
    print_recommendation("Right to be forgotten (GDPR)", req);
  }
  {
    DataRequirements req;
    req.encrypted_sharing_allowed = false;
    print_recommendation("Encrypted data may not be shared", req);
  }
  {
    DataRequirements req;
    req.hide_within_transaction = true;
    print_recommendation("Data hidden from some transaction parties", req);
  }
  {
    DataRequirements req;
    req.uninvolved_validation = true;
    print_recommendation("Uninvolved parties must validate", req);
  }
  {
    DataRequirements req;
    req.private_inputs = true;
    print_recommendation("Precondition on private data (boolean affirmation)",
                         req);
  }
  {
    DataRequirements req;
    req.private_inputs = true;
    req.shared_function_on_private = true;
    print_recommendation("Shared function on private values (secret ballot)",
                         req);
  }
  {
    DataRequirements req;
    req.untrusted_node_admin = true;
    print_recommendation("Third-party node administrator", req);
  }

  // Exhaustive sweep.
  std::printf("=== Exhaustive requirement-space sweep (256 profiles)\n");
  std::printf("%-10s%s\n", "profile", "recommended mechanisms");
  for (int mask = 0; mask < 256; ++mask) {
    DataRequirements req;
    req.deletion_required = mask & 1;
    req.encrypted_sharing_allowed = mask & 2;
    req.onchain_record_desired = mask & 4;
    req.hide_within_transaction = mask & 8;
    req.uninvolved_validation = mask & 16;
    req.private_inputs = mask & 32;
    req.shared_function_on_private = mask & 64;
    req.untrusted_node_admin = mask & 128;
    const Recommendation rec = DecisionEngine::for_data(req);
    std::string mechanisms;
    for (Mechanism m : rec.mechanisms) {
      if (!mechanisms.empty()) mechanisms += ", ";
      mechanisms += to_string(m);
    }
    if (mechanisms.empty()) mechanisms = "(plain shared ledger)";
    std::printf("0x%02x      %s\n", mask, mechanisms.c_str());
  }
  return 0;
}
