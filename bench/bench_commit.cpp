// Commit-path batching cost study (BENCH_commit.json).
//
// Series:
//   * BM_FabricCommitPipeline — end-to-end submit→endorse→order→validate
//     throughput via submit_many(), swept over wave size (1/8/32/128) ×
//     validation mode (Trusting/Validate/Detect) × pool threads
//     (1/2/4/8). Wave size 1 at 1 thread is the serial submit() baseline;
//     the spread against it is what the mempool tokens, the pipelined
//     stages and the batched RLC verification buy together.
//   * BM_QuorumPrivatePipeline — private-tx pipeline (TM sealing as pool
//     tasks) with commit verification ON, the configuration where the
//     validate-once mempool and batch kernel are load-bearing.
//   * BM_CordaFlowPipeline — wave-staged flows (one network drain per
//     round per wave) against per-flow serial rounds.
//   * BM_BatchVerifyKernel — the raw crypto: N Schnorr checks per-item
//     vs one random-linear-combination multi-exponentiation.
#include <benchmark/benchmark.h>

#include "common/thread_pool.hpp"
#include "crypto/batch_verify.hpp"
#include "platforms/corda/corda.hpp"
#include "platforms/fabric/fabric.hpp"
#include "platforms/quorum/quorum.hpp"
#include "workload/openloop.hpp"

namespace {

using namespace veil;
using common::to_bytes;

std::shared_ptr<contracts::FunctionContract> put_contract() {
  return std::make_shared<contracts::FunctionContract>(
      "cc", 1, [](contracts::ContractContext& ctx, const std::string& a) {
        ctx.put("k/" + a, common::Bytes(ctx.args().begin(), ctx.args().end()));
        return contracts::InvokeStatus::Ok;
      });
}

// ---- Fabric: the full commit pipeline --------------------------------------

void BM_FabricCommitPipeline(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  const auto mode = static_cast<int>(state.range(1));
  const auto threads = static_cast<std::size_t>(state.range(2));

  net::SimNetwork net{common::Rng(21)};
  common::Rng rng(22);
  fabric::FabricConfig config;
  config.block_size = 8;
  config.mempool.capacity = 4096;
  fabric::FabricNetwork fab(net, crypto::Group::test_group(), rng, config);
  fab.add_org("OrgA");
  fab.add_org("OrgB");
  fab.create_channel("ch", {"OrgA", "OrgB"});
  fab.install_chaincode("ch", "OrgA", put_contract(),
                        contracts::EndorsementPolicy::require("OrgA"));
  fab.set_validation_mode(
      mode == 0   ? fabric::FabricNetwork::ValidationMode::Trusting
      : mode == 1 ? fabric::FabricNetwork::ValidationMode::Validate
                  : fabric::FabricNetwork::ValidationMode::Detect);

  common::ThreadPool::set_global_threads(threads);
  std::uint64_t committed = 0;
  std::uint64_t seq = 0;
  for (auto _ : state) {
    std::vector<fabric::FabricNetwork::SubmitRequest> wave;
    wave.reserve(batch);
    for (std::size_t i = 0; i < batch; ++i) {
      wave.push_back({"ch", "OrgA", "cc", "a" + std::to_string(seq++),
                      to_bytes("v"), {}, nullptr});
    }
    const auto receipts = fab.submit_many(wave, batch);
    for (const auto& r : receipts) {
      if (r.committed) ++committed;
    }
  }
  common::ThreadPool::set_global_threads(1);

  state.SetItemsProcessed(static_cast<int64_t>(committed));
  state.counters["batch"] = static_cast<double>(batch);
  state.counters["mode"] = mode;
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["token_hits"] =
      static_cast<double>(fab.mempool().stats().token_hits);
  state.counters["batched_items"] =
      static_cast<double>(fab.batch_verify_stats().items);
}
BENCHMARK(BM_FabricCommitPipeline)
    ->ArgsProduct({{1, 8, 32, 128}, {0, 1, 2}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond);

// ---- Quorum: private-tx pipeline with commit verification on ---------------

void BM_QuorumPrivatePipeline(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));

  net::SimNetwork net{common::Rng(23)};
  common::Rng rng(24);
  quorum::QuorumNetwork q(net, crypto::Group::test_group(), rng,
                          /*block_size=*/8);
  for (const char* n : {"NodeA", "NodeB", "NodeC", "NodeD"}) q.add_node(n);
  q.set_verify_commits(true);

  common::ThreadPool::set_global_threads(threads);
  std::uint64_t committed = 0;
  std::uint64_t seq = 0;
  for (auto _ : state) {
    std::vector<quorum::QuorumNetwork::PrivateSubmission> wave;
    wave.reserve(batch);
    for (std::size_t i = 0; i < batch; ++i) {
      const std::string key = "asset" + std::to_string(seq++);
      wave.push_back({{"NodeB"},
                      {ledger::KvWrite{key, to_bytes("NodeB")}},
                      to_bytes("transfer " + key)});
    }
    const auto results = q.submit_private_many("NodeA", wave, batch);
    for (const auto& r : results) {
      if (r.accepted) ++committed;
    }
    q.seal_block();
  }
  common::ThreadPool::set_global_threads(1);

  state.SetItemsProcessed(static_cast<int64_t>(committed));
  state.counters["batch"] = static_cast<double>(batch);
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["token_hits"] =
      static_cast<double>(q.mempool().stats().token_hits);
}
BENCHMARK(BM_QuorumPrivatePipeline)
    ->ArgsProduct({{1, 8, 32, 128}, {1, 8}})
    ->Unit(benchmark::kMillisecond);

// ---- Corda: wave-staged notary rounds --------------------------------------

void BM_CordaFlowPipeline(benchmark::State& state) {
  const auto depth = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));

  net::SimNetwork net{common::Rng(25)};
  common::Rng rng(26);
  corda::CordaNetwork c(net, crypto::Group::test_group(), rng);
  c.add_party("Alice");
  c.add_party("Bob");
  c.add_notary("Notary", /*validating=*/false);

  common::ThreadPool::set_global_threads(threads);
  std::uint64_t committed = 0;
  std::uint64_t seq = 0;
  for (auto _ : state) {
    // Issue a fresh wave of disjoint states, then transfer them in one
    // pipelined call — the notary arbitrates the whole wave per round.
    state.PauseTiming();
    std::vector<corda::StateRef> refs;
    for (std::size_t i = 0; i < depth; ++i) {
      const auto issued =
          c.issue("Alice", "Cash", to_bytes(std::to_string(seq++)), {"Alice"},
                  "Notary");
      refs.push_back(corda::StateRef{issued.tx_id, 1});
    }
    std::vector<corda::CordaNetwork::TransactRequest> wave;
    for (const corda::StateRef& ref : refs) {
      wave.push_back({"Alice",
                      {ref},
                      {corda::OutputSpec{"Cash", to_bytes("x"), {"Bob"}}},
                      "Notary",
                      false,
                      {}});
    }
    state.ResumeTiming();
    const auto results = c.transact_many(wave, depth);
    for (const auto& r : results) {
      if (r.success) ++committed;
    }
  }
  common::ThreadPool::set_global_threads(1);

  state.SetItemsProcessed(static_cast<int64_t>(committed));
  state.counters["depth"] = static_cast<double>(depth);
  state.counters["threads"] = static_cast<double>(threads);
}
BENCHMARK(BM_CordaFlowPipeline)
    ->ArgsProduct({{1, 8, 32}, {1, 8}})
    ->Unit(benchmark::kMillisecond);

// ---- Closed- vs open-loop measurement discipline ---------------------------
// Every series above is closed-loop: the driver waits for each wave to
// complete before offering the next, so the offered rate silently tracks
// the completion rate and saturation is invisible. This row drives the
// same Fabric submission stream both ways — closed-loop back-to-back
// (arg 0) and open-loop Poisson at 2x the measured saturation rate
// (arg 1) — and reports sim-time latency percentiles. Goodput barely
// moves; the open-loop p99 exposes the queueing delay the closed-loop
// driver structurally cannot observe. The full overload sweep lives in
// bench_overload (BENCH_overload.json); the note is in
// docs/crypto_performance.md.

void BM_FabricLoopDiscipline(benchmark::State& state) {
  const bool open_loop = state.range(0) == 1;

  net::SimNetwork net{common::Rng(31)};
  common::Rng rng(32);
  fabric::FabricConfig config;
  config.mempool.capacity = 4096;
  fabric::FabricNetwork fab(net, crypto::Group::test_group(), rng, config);
  fab.add_org("OrgA");
  fab.add_org("OrgB");
  fab.create_channel("ch", {"OrgA", "OrgB"});
  fab.install_chaincode("ch", "OrgA", put_contract(),
                        contracts::EndorsementPolicy::require("OrgA"));
  fab.set_validation_mode(fabric::FabricNetwork::ValidationMode::Validate);

  // Saturation rate from a short closed-loop calibration burst.
  double mu;
  {
    const common::SimTime start = net.clock().now();
    std::uint64_t done = 0;
    for (std::size_t i = 0; i < 24; ++i) {
      if (fab.submit("ch", "OrgA", "cc", "cal" + std::to_string(i),
                     to_bytes("v")).committed) {
        ++done;
      }
    }
    const double elapsed_s =
        static_cast<double>(net.clock().now() - start) / 1e6;
    mu = elapsed_s > 0 ? static_cast<double>(done) / elapsed_s : 1.0;
  }

  workload::LatencyRecorder latency;
  std::uint64_t committed = 0, seq = 0;
  double sim_elapsed_s = 0.0;
  for (auto _ : state) {
    const common::SimTime run_start = net.clock().now();
    if (open_loop) {
      workload::OpenLoopConfig load;
      load.offered_per_s = 2.0 * mu;
      load.arrivals = 64;
      load.parties = 2;
      load.start_us = net.clock().now() + 1'000;
      const auto plan =
          workload::OpenLoopGenerator(load, 33 + state.iterations())
              .generate();
      for (const workload::Arrival& a : plan) {
        net.schedule(a.at, [] {});
        net.run();
        std::vector<fabric::FabricNetwork::SubmitRequest> one{
            {"ch", "OrgA", "cc", "o" + std::to_string(seq++), to_bytes("v"),
             {}, nullptr, a.at, 0}};
        if (fab.submit_many(one, 1)[0].committed) {
          ++committed;
          latency.record(net.clock().now() - a.at);
        }
      }
    } else {
      for (std::size_t i = 0; i < 64; ++i) {
        const common::SimTime at = net.clock().now();
        if (fab.submit("ch", "OrgA", "cc", "c" + std::to_string(seq++),
                       to_bytes("v")).committed) {
          ++committed;
          latency.record(net.clock().now() - at);
        }
      }
    }
    sim_elapsed_s +=
        static_cast<double>(net.clock().now() - run_start) / 1e6;
  }

  state.SetItemsProcessed(static_cast<int64_t>(committed));
  state.SetLabel(open_loop ? "open-loop-2x" : "closed-loop");
  state.counters["saturation_per_s"] = mu;
  state.counters["goodput_per_s"] =
      sim_elapsed_s > 0 ? static_cast<double>(committed) / sim_elapsed_s : 0.0;
  state.counters["p50_us"] = static_cast<double>(latency.p50());
  state.counters["p99_us"] = static_cast<double>(latency.p99());
}
BENCHMARK(BM_FabricLoopDiscipline)
    ->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

// ---- Raw kernel: per-item vs batched RLC verification ----------------------

void BM_BatchVerifyKernel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const bool batched = state.range(1) == 1;

  const crypto::Group& group = crypto::Group::test_group();
  common::Rng rng(27);
  const crypto::KeyPair key = crypto::KeyPair::generate(group, rng);
  std::vector<common::Bytes> messages;
  std::vector<crypto::Signature> sigs;
  for (std::size_t i = 0; i < n; ++i) {
    messages.push_back(rng.next_bytes(32));
    sigs.push_back(key.sign(messages.back()));
  }

  crypto::BatchVerifier verifier(group, 29);
  for (auto _ : state) {
    if (batched) {
      for (std::size_t i = 0; i < n; ++i) {
        verifier.add_signature(key.public_key(), messages[i], sigs[i]);
      }
      const auto outcome = verifier.verify();
      benchmark::DoNotOptimize(outcome.all_valid);
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        benchmark::DoNotOptimize(
            crypto::verify(group, key.public_key(), messages[i], sigs[i]));
      }
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
  state.SetLabel(batched ? "rlc-batched" : "per-item");
}
BENCHMARK(BM_BatchVerifyKernel)
    ->ArgsProduct({{8, 32, 128}, {0, 1}})
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
