// E3 — Section 4's letter-of-credit case study, end to end:
// run the design guide, assess the platforms, build the recommended
// network and execute the LoC lifecycle, then report the leakage matrix.
#include <cstdio>

#include "core/assessment.hpp"
#include "crypto/aes.hpp"
#include "offchain/store.hpp"
#include "platforms/fabric/fabric.hpp"

namespace {

using namespace veil;
using common::to_bytes;

std::shared_ptr<contracts::FunctionContract> loc_contract() {
  return std::make_shared<contracts::FunctionContract>(
      "letter-of-credit", 1,
      [](contracts::ContractContext& ctx, const std::string& action) {
        const common::Bytes args(ctx.args().begin(), ctx.args().end());
        if (action == "apply") {
          ctx.put("loc/status", to_bytes("applied"));
          ctx.put("loc/terms", args);
          return contracts::InvokeStatus::Ok;
        }
        for (const char* step : {"issue", "ship", "pay"}) {
          if (action == step) {
            ctx.get("loc/status");
            ctx.put("loc/status", to_bytes(action));
            return contracts::InvokeStatus::Ok;
          }
        }
        return contracts::InvokeStatus::UnknownAction;
      });
}

}  // namespace

int main() {
  std::printf("Section 4 — letter-of-credit case study\n\n");

  // Step 1: run the design guide on the paper's stated requirements.
  const core::RequirementProfile profile = core::letter_of_credit_profile();
  const core::Recommendation rec = core::DecisionEngine::for_profile(profile);
  std::printf("Design-guide recommendation for '%s':\n",
              profile.use_case.c_str());
  for (const auto& line : rec.rationale) std::printf("  path: %s\n", line.c_str());
  std::printf("  mechanisms:");
  for (core::Mechanism m : rec.mechanisms) {
    std::printf(" [%s]", core::to_string(m).c_str());
  }
  std::printf("\n\n");

  // Step 2: assess platforms against the recommendation.
  const auto ranked =
      core::assess(rec, core::CapabilityMatrix::paper_table1());
  std::printf("Platform assessment:\n%s\n", core::render(ranked).c_str());

  // Step 3: build the recommended design and run the lifecycle.
  net::SimNetwork net{common::Rng(42)};
  common::Rng rng(43);
  fabric::FabricNetwork fab(net, crypto::Group::test_group(), rng);
  for (const char* org :
       {"IssuingBank", "AdvisingBank", "Buyer", "Seller", "OtherCorp"}) {
    fab.add_org(org);
  }
  fab.create_channel("loc", {"IssuingBank", "AdvisingBank", "Buyer", "Seller"});
  fab.install_chaincode("loc", "IssuingBank", loc_contract(),
                        contracts::EndorsementPolicy::require("IssuingBank"));

  offchain::OffChainStore pii_store("IssuingBank",
                                    offchain::Hosting::PeerLocal,
                                    net.auditor());
  const crypto::Digest pii_digest =
      pii_store.put("buyer-kyc", to_bytes("passport=P1234567"));

  const common::Bytes shared_key = rng.next_bytes(32);
  const common::Bytes sealed_terms = crypto::seal(
      shared_key, to_bytes("amount=1,000,000 USD"), rng.next_bytes(16));

  int committed = 0;
  for (const auto& [client, action, args] :
       std::vector<std::tuple<std::string, std::string, common::Bytes>>{
           {"Buyer", "apply", sealed_terms},
           {"IssuingBank", "issue", {}},
           {"Seller", "ship", crypto::digest_bytes(pii_digest)},
           {"IssuingBank", "pay", {}}}) {
    const auto receipt =
        fab.submit("loc", client, "letter-of-credit", action, args);
    std::printf("  %-12s %-6s -> %s\n", client.c_str(), action.c_str(),
                receipt.committed ? "committed" : receipt.reason.c_str());
    if (receipt.committed) ++committed;
  }

  // GDPR deletion at the end of the relationship.
  pii_store.purge(pii_digest);
  std::printf("\nPII purged from off-chain store: %s (hash stub remains on "
              "ledger)\n",
              pii_store.purged(pii_digest) ? "yes" : "no");

  // Step 4: leakage summary.
  std::printf("\nLeakage summary (plaintext bytes observed):\n");
  for (const char* who :
       {"peer.IssuingBank", "peer.Buyer", "peer.Seller", "peer.OtherCorp",
        "orderer-org"}) {
    std::printf("  %-20s tx-data=%-8llu everything=%-8llu\n", who,
                static_cast<unsigned long long>(
                    net.auditor().bytes_seen(who, "tx/")),
                static_cast<unsigned long long>(
                    net.auditor().bytes_seen(who, "")));
  }

  const bool outsider_clean =
      net.auditor().bytes_seen("peer.OtherCorp", "") == 0;
  std::printf("\n%d/4 lifecycle steps committed; uninvolved org leakage: %s\n",
              committed, outsider_clean ? "ZERO (as designed)" : "NONZERO");
  return (committed == 4 && outsider_clean) ? 0 : 1;
}
