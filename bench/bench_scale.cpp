// Sharded scale-out study (BENCH_scale.json).
//
// Open-loop Zipf traffic over a ShardMap at 10^5 and 10^6 users,
// 1/2/4/8 shards, and a 0-30% cross-shard mix, answering two questions:
//   * BM_ShardGoodput — what does sharding buy, and what does the
//     cross-shard mix cost? goodput_per_s counts committed work (local
//     plus two-phase commits) per simulated second; abort_rate is the
//     fraction of begun cross-shard transactions that ended in a
//     presumed abort or a no-vote (hot Zipf keys contend on locks).
//   * BM_ShardLossSweep — the same mix under 0-30% message loss: the
//     reliable channel keeps atomicity (no split outcome is possible by
//     construction), so loss shows up as vote timeouts -> aborts and
//     retry latency, never as divergent shards. redrive_indoubt() plays
//     the operator healing the network before the final drain.
//
// Counters (all per-iteration, sim-time based):
//   goodput_per_s, cross_begun, cross_commits, abort_rate,
//   rejected_locked (lock contention on hot keys), indoubt_queries.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "ledger/shard.hpp"
#include "ledger/xshard.hpp"
#include "workload/openloop.hpp"

namespace {

using namespace veil;
using common::to_bytes;

struct ScaleRig {
  net::SimNetwork net;
  net::ReliableChannel channel;
  common::Rng rng;
  ledger::ShardMap shards;
  ledger::CrossShardCoordinator coord;

  explicit ScaleRig(ledger::ShardConfig cfg)
      : net(common::Rng(71)),
        channel(net),
        rng(72),
        shards(net, channel, crypto::Group::test_group(), rng, cfg),
        coord(net, channel, shards, crypto::Group::test_group(), rng) {}
};

ledger::ShardConfig shard_config(std::uint64_t shards) {
  ledger::ShardConfig cfg;
  cfg.shard_count = shards;
  cfg.replicas_per_shard = 1;
  cfg.block_size = 8;
  // Sized >= 2x the reliable channel's worst retry tail so lossy runs
  // converge inside the echo window (see docs/fault_model.md).
  cfg.echo_window_us = 400'000;
  return cfg;
}

std::string acct_key(std::size_t party) {
  return "acct/" + std::to_string(party);
}

/// Drive one open-loop schedule through the map: same-shard arrivals go
/// through local submit, cross-shard ones through the 2PC coordinator.
void drive(ScaleRig& rig, const std::vector<workload::Arrival>& schedule) {
  for (const workload::Arrival& a : schedule) {
    rig.net.schedule(a.at, [&rig, a] {
      ledger::Transaction tx;
      tx.channel = "scale";
      tx.timestamp = static_cast<common::SimTime>(a.seq + 1);
      tx.writes.push_back({acct_key(a.party), to_bytes("v"), false});
      if (a.cross) {
        tx.writes.push_back({acct_key(a.party_b), to_bytes("v"), false});
      }
      const bool spans =
          a.cross && rig.shards.shard_for_key(tx.writes[0].key) !=
                         rig.shards.shard_for_key(tx.writes[1].key);
      if (spans) {
        rig.coord.begin(tx);
      } else {
        rig.shards.submit(tx);
      }
    });
  }
  rig.net.run();
  rig.shards.redrive_indoubt();  // heal anything wedged by loss
  rig.net.run();
  rig.shards.flush_all();
  rig.net.run();
}

void report(benchmark::State& state, const ScaleRig& rig,
            std::uint64_t arrivals) {
  const ledger::ShardMapStats& s = rig.shards.stats();
  const ledger::XShardStats& x = rig.coord.stats();
  const double sim_s =
      static_cast<double>(rig.net.clock().now()) / 1e6;
  const double done = static_cast<double>(s.committed + x.commits);
  const double aborts =
      static_cast<double>(x.aborts_voteno + x.aborts_timeout);
  state.counters["goodput_per_s"] = sim_s > 0 ? done / sim_s : 0;
  state.counters["cross_begun"] = static_cast<double>(x.begun);
  state.counters["cross_commits"] = static_cast<double>(x.commits);
  state.counters["abort_rate"] =
      x.begun > 0 ? aborts / static_cast<double>(x.begun) : 0;
  state.counters["rejected_locked"] = static_cast<double>(s.rejected_locked);
  state.counters["indoubt_queries"] = static_cast<double>(s.indoubt_queries);
  state.counters["arrivals"] = static_cast<double>(arrivals);
}

workload::OpenLoopConfig load_config(std::size_t users, double cross) {
  workload::OpenLoopConfig cfg;
  cfg.arrivals = 1'500;
  cfg.offered_per_s = 4'000.0;
  cfg.parties = users;
  cfg.zipf_s = 1.0;
  cfg.cross_fraction = cross;
  return cfg;
}

// ---- Goodput vs shard count and cross-shard mix ----------------------------

/// Args: {users_exponent, shard_count, cross_pct}.
void BM_ShardGoodput(benchmark::State& state) {
  std::size_t users = 1;
  for (int i = 0; i < state.range(0); ++i) users *= 10;
  const auto shards = static_cast<std::uint64_t>(state.range(1));
  const double cross = static_cast<double>(state.range(2)) / 100.0;
  const std::vector<workload::Arrival> schedule =
      workload::OpenLoopGenerator(load_config(users, cross), 7).generate();
  for (auto _ : state) {
    ScaleRig rig(shard_config(shards));
    drive(rig, schedule);
    report(state, rig, schedule.size());
  }
}
BENCHMARK(BM_ShardGoodput)
    ->Args({5, 1, 0})
    ->Args({5, 2, 0})
    ->Args({5, 4, 0})
    ->Args({5, 8, 0})
    ->Args({5, 2, 10})
    ->Args({5, 4, 10})
    ->Args({5, 8, 10})
    ->Args({5, 2, 30})
    ->Args({5, 4, 30})
    ->Args({5, 8, 30})
    ->Args({6, 4, 0})
    ->Args({6, 4, 10})
    ->Args({6, 4, 30})
    ->Unit(benchmark::kMillisecond);

// ---- Abort rate and goodput under message loss -----------------------------

/// Args: {loss_pct}. Fixed 10^5 users, 4 shards, 30% cross mix.
void BM_ShardLossSweep(benchmark::State& state) {
  const double loss = static_cast<double>(state.range(0)) / 100.0;
  const std::vector<workload::Arrival> schedule =
      workload::OpenLoopGenerator(load_config(100'000, 0.3), 7).generate();
  for (auto _ : state) {
    ScaleRig rig(shard_config(4));
    rig.net.set_drop_probability(loss);
    drive(rig, schedule);
    rig.net.set_drop_probability(0.0);
    rig.shards.redrive_indoubt();
    rig.net.run();
    report(state, rig, schedule.size());
  }
}
BENCHMARK(BM_ShardLossSweep)
    ->Arg(0)
    ->Arg(10)
    ->Arg(20)
    ->Arg(30)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
