// E4 — Fabric scalability of confidentiality mechanisms (§3.4 / [11]).
//
// Series reproduced (shape, not absolute numbers):
//   * committed tx throughput vs number of channels — channels are
//     independent ledgers, so aggregate throughput grows with them;
//   * plain on-channel data vs Private Data Collections — PDC adds
//     member dissemination, costing throughput but removing payload from
//     the ledger;
//   * endorsement-policy breadth — every additional required org adds an
//     execution + signature.
#include <benchmark/benchmark.h>

#include "platforms/fabric/fabric.hpp"

namespace {

using namespace veil;
using common::to_bytes;

std::shared_ptr<contracts::FunctionContract> put_contract() {
  return std::make_shared<contracts::FunctionContract>(
      "cc", 1, [](contracts::ContractContext& ctx, const std::string& a) {
        ctx.put("k/" + a, common::Bytes(ctx.args().begin(), ctx.args().end()));
        return contracts::InvokeStatus::Ok;
      });
}

void BM_FabricThroughputVsChannels(benchmark::State& state) {
  const int channels = static_cast<int>(state.range(0));
  net::SimNetwork net{common::Rng(1)};
  common::Rng rng(2);
  fabric::FabricNetwork fab(net, crypto::Group::test_group(), rng);
  fab.add_org("OrgA");
  fab.add_org("OrgB");
  for (int c = 0; c < channels; ++c) {
    const std::string name = "ch" + std::to_string(c);
    fab.create_channel(name, {"OrgA", "OrgB"});
    fab.install_chaincode(name, "OrgA", put_contract(),
                          contracts::EndorsementPolicy::require("OrgA"));
  }
  std::uint64_t committed = 0;
  int seq = 0;
  for (auto _ : state) {
    // One tx per channel per iteration: channels process independently.
    for (int c = 0; c < channels; ++c) {
      const auto r = fab.submit("ch" + std::to_string(c), "OrgA", "cc",
                                "a" + std::to_string(seq), to_bytes("v"));
      if (r.committed) ++committed;
    }
    ++seq;
  }
  state.SetItemsProcessed(static_cast<int64_t>(committed));
  state.counters["channels"] = channels;
  state.counters["tx_per_iter"] = channels;
}
BENCHMARK(BM_FabricThroughputVsChannels)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMillisecond);

void BM_FabricPlainVsPdc(benchmark::State& state) {
  const bool use_pdc = state.range(0) == 1;
  net::SimNetwork net{common::Rng(3)};
  common::Rng rng(4);
  fabric::FabricNetwork fab(net, crypto::Group::test_group(), rng);
  for (const char* org : {"OrgA", "OrgB", "OrgC", "OrgD"}) fab.add_org(org);
  fab.create_channel("ch", {"OrgA", "OrgB", "OrgC", "OrgD"});
  fab.install_chaincode("ch", "OrgA", put_contract(),
                        contracts::EndorsementPolicy::require("OrgA"));
  fab.define_collection("ch", {"ab", {"OrgA", "OrgB"}, 0});
  const common::Bytes payload(512, 0x5a);
  int seq = 0;
  std::uint64_t committed = 0;
  for (auto _ : state) {
    const std::string key = "k" + std::to_string(seq++);
    fabric::TxReceipt r;
    if (use_pdc) {
      r = fab.submit("ch", "OrgA", "cc", key, to_bytes("ref"),
                     fabric::PrivatePayload{"ab", key, payload});
    } else {
      r = fab.submit("ch", "OrgA", "cc", key, payload);
    }
    if (r.committed) ++committed;
  }
  state.SetItemsProcessed(static_cast<int64_t>(committed));
  state.SetLabel(use_pdc ? "private-data-collection" : "on-channel-data");
}
BENCHMARK(BM_FabricPlainVsPdc)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

void BM_FabricEndorsementBreadth(benchmark::State& state) {
  const int endorsers = static_cast<int>(state.range(0));
  net::SimNetwork net{common::Rng(5)};
  common::Rng rng(6);
  fabric::FabricNetwork fab(net, crypto::Group::test_group(), rng);
  std::set<std::string> members;
  std::vector<contracts::EndorsementPolicy> clauses;
  for (int i = 0; i < endorsers; ++i) {
    const std::string org = "Org" + std::to_string(i);
    fab.add_org(org);
    members.insert(org);
    clauses.push_back(contracts::EndorsementPolicy::require(org));
  }
  fab.create_channel("ch", members);
  auto policy = endorsers == 1
                    ? clauses[0]
                    : contracts::EndorsementPolicy::all_of(clauses);
  // Every endorsing org needs the chaincode installed.
  for (int i = 0; i < endorsers; ++i) {
    fab.install_chaincode("ch", "Org" + std::to_string(i), put_contract(),
                          policy);
  }
  int seq = 0;
  std::uint64_t committed = 0;
  for (auto _ : state) {
    const auto r = fab.submit("ch", "Org0", "cc",
                              "a" + std::to_string(seq++), to_bytes("v"));
    if (r.committed) ++committed;
  }
  state.SetItemsProcessed(static_cast<int64_t>(committed));
  state.counters["endorsers"] = endorsers;
}
BENCHMARK(BM_FabricEndorsementBreadth)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMicrosecond);

void BM_FabricIdemixOverhead(benchmark::State& state) {
  const bool idemix = state.range(0) == 1;
  net::SimNetwork net{common::Rng(7)};
  common::Rng rng(8);
  fabric::FabricNetwork fab(net, crypto::Group::test_group(), rng);
  fab.add_org("OrgA");
  fab.add_org("OrgB");
  fab.create_channel("ch", {"OrgA", "OrgB"});
  fab.install_chaincode("ch", "OrgB", put_contract(),
                        contracts::EndorsementPolicy::require("OrgB"));
  const auto cred = fab.issue_idemix_credential("OrgA", "role=client");
  int seq = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fab.submit("ch", "OrgA", "cc", "a" + std::to_string(seq++),
                   to_bytes("v"), {}, idemix ? &*cred : nullptr));
  }
  state.SetLabel(idemix ? "idemix-client" : "named-client");
}
BENCHMARK(BM_FabricIdemixOverhead)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
