// Fault-tolerance cost study: throughput and simulated latency of the
// platform commit paths as uniform message loss sweeps 0% -> 30%.
//
// The reliable channel (net/reliable.hpp) absorbs loss with bounded
// retransmission, so commits keep succeeding; what degrades is latency
// (retries wait out timeouts on the simulated clock) and wire volume
// (retransmitted bytes). Each series reports:
//   * items_processed    — committed transactions (throughput basis)
//   * sim_us_per_tx      — simulated end-to-end latency per commit
//   * retransmits_per_tx — extra wire sends the loss forced
//   * delivered_ratio    — delivered / sent on the raw wire
#include <benchmark/benchmark.h>

#include "net/reliable.hpp"
#include "platforms/fabric/fabric.hpp"
#include "platforms/quorum/quorum.hpp"

namespace {

using namespace veil;
using common::to_bytes;

std::shared_ptr<contracts::FunctionContract> put_contract() {
  return std::make_shared<contracts::FunctionContract>(
      "cc", 1, [](contracts::ContractContext& ctx, const std::string& a) {
        ctx.put("k/" + a, common::Bytes(ctx.args().begin(), ctx.args().end()));
        return contracts::InvokeStatus::Ok;
      });
}

void set_loss(net::SimNetwork& net, benchmark::State& state) {
  net.set_drop_probability(static_cast<double>(state.range(0)) / 100.0);
  state.counters["loss_pct"] = static_cast<double>(state.range(0));
}

void finish(benchmark::State& state, const net::SimNetwork& net,
            std::uint64_t committed) {
  state.SetItemsProcessed(static_cast<int64_t>(committed));
  const double tx = committed ? static_cast<double>(committed) : 1.0;
  state.counters["sim_us_per_tx"] =
      static_cast<double>(net.clock().now()) / tx;
  state.counters["retransmits_per_tx"] =
      static_cast<double>(net.stats().retransmits) / tx;
  state.counters["delivered_ratio"] =
      net.stats().messages_sent
          ? static_cast<double>(net.stats().messages_delivered) /
                static_cast<double>(net.stats().messages_sent)
          : 1.0;
}

// Raw reliable-channel delivery: the floor every platform path builds on.
void BM_ReliableDeliveryVsLoss(benchmark::State& state) {
  net::SimNetwork net{common::Rng(11)};
  set_loss(net, state);
  net::ReliableChannel channel(net);
  std::uint64_t delivered = 0;
  channel.attach("a", nullptr);
  channel.attach("b", [&](const net::Message&) { ++delivered; });
  for (auto _ : state) {
    channel.send("a", "b", "bench", to_bytes("payload"));
    net.run();
  }
  finish(state, net, delivered);
}
BENCHMARK(BM_ReliableDeliveryVsLoss)
    ->Arg(0)->Arg(10)->Arg(20)->Arg(30)
    ->Unit(benchmark::kMicrosecond);

// Fabric: endorse -> order -> deliver -> validate, all on the reliable
// channel.
void BM_FabricCommitVsLoss(benchmark::State& state) {
  net::SimNetwork net{common::Rng(21)};
  common::Rng rng(22);
  fabric::FabricNetwork fab(net, crypto::Group::test_group(), rng);
  fab.add_org("OrgA");
  fab.add_org("OrgB");
  fab.create_channel("ch", {"OrgA", "OrgB"});
  fab.install_chaincode("ch", "OrgA", put_contract(),
                        contracts::EndorsementPolicy::require("OrgA"));
  set_loss(net, state);
  std::uint64_t committed = 0;
  int seq = 0;
  for (auto _ : state) {
    const auto r = fab.submit("ch", "OrgA", "cc", "a" + std::to_string(seq++),
                              to_bytes("v"));
    if (r.committed) ++committed;
  }
  finish(state, net, committed);
}
BENCHMARK(BM_FabricCommitVsLoss)
    ->Arg(0)->Arg(10)->Arg(20)->Arg(30)
    ->Unit(benchmark::kMillisecond);

// Quorum: private tx = TM dissemination + ack + block broadcast.
void BM_QuorumPrivateTxVsLoss(benchmark::State& state) {
  net::SimNetwork net{common::Rng(31)};
  common::Rng rng(32);
  quorum::QuorumNetwork quorum(net, crypto::Group::test_group(), rng,
                               /*block_size=*/1);
  for (const char* n : {"A", "B", "C", "D"}) quorum.add_node(n);
  set_loss(net, state);
  std::uint64_t committed = 0;
  int seq = 0;
  for (auto _ : state) {
    const auto r = quorum.submit_private(
        "A", {"B"}, {{"k" + std::to_string(seq++), to_bytes("v"), false}},
        to_bytes("terms"));
    if (r.accepted) ++committed;
  }
  finish(state, net, committed);
}
BENCHMARK(BM_QuorumPrivateTxVsLoss)
    ->Arg(0)->Arg(10)->Arg(20)->Arg(30)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
