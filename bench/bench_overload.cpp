// Overload robustness study (BENCH_overload.json).
//
// Open-loop load pushed past saturation, with the overload tier on
// (CoDel admission, TTL deadline propagation, bounded queues). Each
// series first calibrates the platform's closed-loop saturation rate mu
// (back-to-back submissions, committed / simulated second), then offers
// a Poisson arrival stream at (range(0)/10) x mu — 0.5x, 1x, 2x, 4x —
// and reports what actually happened:
//   * goodput_per_s    — committed work per simulated second. The claim
//     under test: past saturation this plateaus near mu instead of
//     collapsing, because admission sheds excess load before it costs
//     endorsement crypto and TTLs stop dead work from clogging stages.
//   * p50/p95/p99_us   — sim-time latency of ADMITTED work only (arrival
//     to completion). Shed work never enters; bounding the latency of
//     accepted work is the tier's contract.
//   * shed/expired     — where the excess died (admission controller vs
//     per-stage TTL checks).
//
// Series: BM_FabricOpenLoop (endorse->order->validate path) and
// BM_QuorumOpenLoop (private-payload path, bounded pending queue; the
// latency sample is taken when the submission returns, so commits that
// land at the next block seal are measured to acceptance, not seal).
#include <benchmark/benchmark.h>

#include "platforms/fabric/fabric.hpp"
#include "platforms/quorum/quorum.hpp"
#include "workload/openloop.hpp"

namespace {

using namespace veil;
using common::to_bytes;

std::shared_ptr<contracts::FunctionContract> put_contract() {
  return std::make_shared<contracts::FunctionContract>(
      "cc", 1, [](contracts::ContractContext& ctx, const std::string& a) {
        ctx.put("k/" + a, common::Bytes(ctx.args().begin(), ctx.args().end()));
        return contracts::InvokeStatus::Ok;
      });
}

void advance_to(net::SimNetwork& net, common::SimTime at) {
  net.schedule(at, [] {});
  net.run();
}

// ---- Fabric ----------------------------------------------------------------

struct FabricRig {
  net::SimNetwork net;
  common::Rng rng;
  fabric::FabricNetwork fab;

  explicit FabricRig(fabric::FabricConfig config)
      : net(common::Rng(41)), rng(42),
        fab(net, crypto::Group::test_group(), rng, config) {
    fab.add_org("OrgA");
    fab.add_org("OrgB");
    fab.create_channel("ch", {"OrgA", "OrgB"});
    fab.install_chaincode("ch", "OrgA", put_contract(),
                          contracts::EndorsementPolicy::require("OrgA"));
    fab.set_validation_mode(fabric::FabricNetwork::ValidationMode::Validate);
  }
};

/// Closed-loop saturation rate: back-to-back submissions, committed per
/// simulated second. This is the mu every offered rate is scaled from.
double fabric_saturation_per_s() {
  fabric::FabricConfig config;
  config.mempool.capacity = 4096;
  FabricRig rig(config);
  const common::SimTime start = rig.net.clock().now();
  std::uint64_t committed = 0;
  for (std::size_t i = 0; i < 40; ++i) {
    if (rig.fab.submit("ch", "OrgA", "cc", "cal" + std::to_string(i),
                       to_bytes("v")).committed) {
      ++committed;
    }
  }
  const double elapsed_s =
      static_cast<double>(rig.net.clock().now() - start) / 1e6;
  return elapsed_s > 0 ? static_cast<double>(committed) / elapsed_s : 0.0;
}

void BM_FabricOpenLoop(benchmark::State& state) {
  const double mult = static_cast<double>(state.range(0)) / 10.0;
  static const double mu = fabric_saturation_per_s();

  fabric::FabricConfig config;
  config.admission_control = true;
  config.default_ttl_us = 100'000;
  config.mempool.capacity = 256;
  config.circuit_breaker = true;
  FabricRig rig(config);

  workload::LatencyRecorder latency;
  std::uint64_t committed = 0, refused = 0, seq = 0;
  double sim_elapsed_s = 0.0;
  for (auto _ : state) {
    workload::OpenLoopConfig load;
    load.offered_per_s = mult * mu;
    load.arrivals = 160;
    load.parties = 2;
    load.ttl_us = config.default_ttl_us;
    load.start_us = rig.net.clock().now() + 1'000;
    const auto plan =
        workload::OpenLoopGenerator(load, 43 + state.iterations()).generate();
    const common::SimTime run_start = rig.net.clock().now();
    for (const workload::Arrival& a : plan) {
      advance_to(rig.net, a.at);
      std::vector<fabric::FabricNetwork::SubmitRequest> one{
          {"ch", a.party == 0 ? "OrgA" : "OrgB", "cc",
           "k" + std::to_string(seq++), to_bytes("v"), {}, nullptr, a.at,
           a.deadline_us}};
      const auto receipts = rig.fab.submit_many(one, 1);
      if (receipts[0].committed) {
        ++committed;
        latency.record(rig.net.clock().now() - a.at);
      } else {
        ++refused;
      }
    }
    sim_elapsed_s +=
        static_cast<double>(rig.net.clock().now() - run_start) / 1e6;
  }

  const auto& stats = rig.net.stats();
  state.SetItemsProcessed(static_cast<int64_t>(committed));
  state.counters["offered_mult"] = mult;
  state.counters["offered_per_s"] = mult * mu;
  state.counters["saturation_per_s"] = mu;
  state.counters["goodput_per_s"] =
      sim_elapsed_s > 0 ? static_cast<double>(committed) / sim_elapsed_s : 0.0;
  state.counters["committed"] = static_cast<double>(committed);
  state.counters["refused"] = static_cast<double>(refused);
  state.counters["p50_us"] = static_cast<double>(latency.p50());
  state.counters["p95_us"] = static_cast<double>(latency.p95());
  state.counters["p99_us"] = static_cast<double>(latency.p99());
  state.counters["shed"] = static_cast<double>(stats.shed_admission);
  state.counters["expired"] =
      static_cast<double>(stats.expired_endorse + stats.expired_order +
                          stats.expired_validate);
  state.counters["mempool_size"] =
      static_cast<double>(rig.fab.mempool().size());
}
BENCHMARK(BM_FabricOpenLoop)
    ->Arg(5)->Arg(10)->Arg(20)->Arg(40)
    ->Unit(benchmark::kMillisecond);

// ---- Quorum ----------------------------------------------------------------

struct QuorumRig {
  net::SimNetwork net;
  common::Rng rng;
  quorum::QuorumNetwork quorum;

  QuorumRig()
      : net(common::Rng(45)), rng(46),
        quorum(net, crypto::Group::test_group(), rng, /*block_size=*/8) {
    for (const char* n : {"NodeA", "NodeB", "NodeC"}) quorum.add_node(n);
    quorum.set_verify_commits(true);
  }
};

double quorum_saturation_per_s() {
  QuorumRig rig;
  const common::SimTime start = rig.net.clock().now();
  std::uint64_t accepted = 0;
  for (std::size_t i = 0; i < 40; ++i) {
    const auto r = rig.quorum.submit_private(
        "NodeA", {"NodeB"},
        {{"asset/cal" + std::to_string(i), to_bytes("NodeB")}});
    if (r.accepted) ++accepted;
  }
  rig.quorum.seal_block();
  const double elapsed_s =
      static_cast<double>(rig.net.clock().now() - start) / 1e6;
  return elapsed_s > 0 ? static_cast<double>(accepted) / elapsed_s : 0.0;
}

void BM_QuorumOpenLoop(benchmark::State& state) {
  const double mult = static_cast<double>(state.range(0)) / 10.0;
  static const double mu = quorum_saturation_per_s();

  QuorumRig rig;
  rig.quorum.set_default_ttl(100'000);
  rig.quorum.set_pending_capacity(16);
  rig.quorum.set_admission({});

  workload::LatencyRecorder latency;
  std::uint64_t accepted = 0, refused = 0, abandoned = 0, seq = 0;
  double sim_elapsed_s = 0.0;
  for (auto _ : state) {
    workload::OpenLoopConfig load;
    load.offered_per_s = mult * mu;
    load.arrivals = 160;
    load.parties = 2;
    load.ttl_us = 100'000;
    load.start_us = rig.net.clock().now() + 1'000;
    const auto plan =
        workload::OpenLoopGenerator(load, 47 + state.iterations()).generate();
    const common::SimTime run_start = rig.net.clock().now();
    for (const workload::Arrival& a : plan) {
      advance_to(rig.net, a.at);
      // submit_private stamps its TTL at submission, so client-side
      // backlog is invisible to the platform; a deadline-aware open-loop
      // client abandons work that is already dead before submitting it,
      // which is what keeps admitted-work latency bounded on this path.
      if (a.deadline_us != 0 && rig.net.clock().now() > a.deadline_us) {
        ++refused;
        ++abandoned;
        continue;
      }
      const auto r = rig.quorum.submit_private(
          a.party == 0 ? "NodeA" : "NodeB", {"NodeC"},
          {{"asset/k" + std::to_string(seq++), to_bytes("x")}});
      if (r.accepted) {
        ++accepted;
        latency.record(rig.net.clock().now() - a.at);
      } else {
        ++refused;
      }
    }
    rig.quorum.seal_block();
    sim_elapsed_s +=
        static_cast<double>(rig.net.clock().now() - run_start) / 1e6;
  }

  const auto& stats = rig.net.stats();
  state.SetItemsProcessed(static_cast<int64_t>(accepted));
  state.counters["offered_mult"] = mult;
  state.counters["offered_per_s"] = mult * mu;
  state.counters["saturation_per_s"] = mu;
  state.counters["goodput_per_s"] =
      sim_elapsed_s > 0 ? static_cast<double>(accepted) / sim_elapsed_s : 0.0;
  state.counters["committed"] = static_cast<double>(accepted);
  state.counters["refused"] = static_cast<double>(refused);
  state.counters["p50_us"] = static_cast<double>(latency.p50());
  state.counters["p95_us"] = static_cast<double>(latency.p95());
  state.counters["p99_us"] = static_cast<double>(latency.p99());
  state.counters["shed"] = static_cast<double>(stats.shed_admission);
  state.counters["client_abandoned"] = static_cast<double>(abandoned);
  state.counters["busy_rejected"] = static_cast<double>(stats.busy_rejected);
  state.counters["expired"] =
      static_cast<double>(stats.expired_endorse + stats.expired_order +
                          stats.expired_validate);
}
BENCHMARK(BM_QuorumOpenLoop)
    ->Arg(5)->Arg(10)->Arg(20)->Arg(40)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
