// Recovery-tier cost study: what verified checkpoints buy a rejoining
// replica.
//
//   * BM_QuorumRejoinVsLag — rejoin cost (simulated time + blocks
//     replayed) as the laggard's deficit grows, snapshots off vs on
//     (args: lag, snapshots). Off = the PR-2 behavior: replay every
//     missed block. On = nearest checkpoint + delta.
//   * BM_QuorumRejoinVsChainLength — the headline property: with
//     snapshots on and the LAG held fixed, rejoin cost stays flat as the
//     chain grows (args: chain length).
//   * BM_SnapshotMakeVsStateSize — canonical snapshot construction cost
//     and size against world-state size (arg: key count).
//   * BM_QuorumRejoinUnderLoss — snapshot transfer to convergence at
//     0-30% uniform message loss, resume loop included (arg: loss %).
#include <benchmark/benchmark.h>

#include "ledger/snapshot.hpp"
#include "platforms/quorum/quorum.hpp"

namespace {

using namespace veil;
using common::to_bytes;

struct Fixture {
  net::SimNetwork net;
  common::Rng rng;
  quorum::QuorumNetwork quorum;
  int counter = 0;

  explicit Fixture(std::uint64_t interval)
      : net(common::Rng(61)),
        rng(62),
        quorum(net, crypto::Group::test_group(), rng, /*block_size=*/1,
               ledger::SnapshotConfig{.interval = interval}) {
    for (const char* n : {"NodeA", "NodeB", "NodeC"}) quorum.add_node(n);
  }

  void advance(std::uint64_t blocks) {
    for (std::uint64_t i = 0; i < blocks; ++i) {
      quorum.submit_public("NodeA", {{"bench/" + std::to_string(counter++),
                                      to_bytes("v"), false}});
    }
  }

  /// Grow the chain to `chain_len` with NodeC missing the last `lag`
  /// blocks, then release it, ready to rejoin.
  void lag_node_c(std::uint64_t chain_len, std::uint64_t lag) {
    advance(chain_len - lag);
    net.quarantine("NodeC");
    advance(lag);
    net.release("NodeC");
  }
};

void BM_QuorumRejoinVsLag(benchmark::State& state) {
  const auto lag = static_cast<std::uint64_t>(state.range(0));
  const bool snapshots = state.range(1) != 0;
  // Deliberately NOT a multiple of the interval: the nearest checkpoint
  // sits below the sealed height, so snapshot rejoins still replay a
  // real (bounded) delta instead of a degenerate zero.
  constexpr std::uint64_t kChainLen = 94;
  constexpr std::uint64_t kInterval = 8;
  std::uint64_t blocks_replayed = 0;
  std::uint64_t sim_us = 0;
  std::uint64_t rejoins = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Fixture f(snapshots ? kInterval : 0);
    f.lag_node_c(kChainLen, lag);
    const std::uint64_t applied_before = f.quorum.blocks_applied("NodeC");
    const std::uint64_t t0 = f.net.clock().now();
    state.ResumeTiming();
    f.quorum.rejoin("NodeC");
    state.PauseTiming();
    blocks_replayed += f.quorum.blocks_applied("NodeC") - applied_before;
    sim_us += f.net.clock().now() - t0;
    ++rejoins;
    state.ResumeTiming();
  }
  state.counters["lag_blocks"] = static_cast<double>(lag);
  state.counters["snapshots"] = snapshots ? 1.0 : 0.0;
  state.counters["blocks_replayed_per_rejoin"] =
      static_cast<double>(blocks_replayed) / static_cast<double>(rejoins);
  state.counters["sim_us_per_rejoin"] =
      static_cast<double>(sim_us) / static_cast<double>(rejoins);
}
BENCHMARK(BM_QuorumRejoinVsLag)
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({16, 0})
    ->Args({16, 1})
    ->Args({32, 0})
    ->Args({32, 1})
    ->Unit(benchmark::kMillisecond);

void BM_QuorumRejoinVsChainLength(benchmark::State& state) {
  const auto chain_len = static_cast<std::uint64_t>(state.range(0));
  constexpr std::uint64_t kLag = 8;
  constexpr std::uint64_t kInterval = 8;
  std::uint64_t blocks_replayed = 0;
  std::uint64_t sim_us = 0;
  std::uint64_t rejoins = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Fixture f(kInterval);
    f.lag_node_c(chain_len, kLag);
    const std::uint64_t applied_before = f.quorum.blocks_applied("NodeC");
    const std::uint64_t t0 = f.net.clock().now();
    state.ResumeTiming();
    f.quorum.rejoin("NodeC");
    state.PauseTiming();
    blocks_replayed += f.quorum.blocks_applied("NodeC") - applied_before;
    sim_us += f.net.clock().now() - t0;
    ++rejoins;
    state.ResumeTiming();
  }
  state.counters["chain_blocks"] = static_cast<double>(chain_len);
  state.counters["blocks_replayed_per_rejoin"] =
      static_cast<double>(blocks_replayed) / static_cast<double>(rejoins);
  state.counters["sim_us_per_rejoin"] =
      static_cast<double>(sim_us) / static_cast<double>(rejoins);
}
// Chain lengths chosen off the interval grid (see above).
BENCHMARK(BM_QuorumRejoinVsChainLength)
    ->Arg(30)
    ->Arg(62)
    ->Arg(126)
    ->Unit(benchmark::kMillisecond);

void BM_SnapshotMakeVsStateSize(benchmark::State& state) {
  const auto keys = static_cast<std::size_t>(state.range(0));
  ledger::WorldState world;
  for (std::size_t i = 0; i < keys; ++i) {
    world.put("asset/" + std::to_string(i),
              to_bytes("owner-" + std::to_string(i % 17)));
  }
  std::size_t snapshot_bytes = 0;
  std::size_t chunks = 0;
  for (auto _ : state) {
    const ledger::Snapshot snap =
        ledger::Snapshot::make(1, crypto::sha256(to_bytes("tip")), world);
    benchmark::DoNotOptimize(snap.root());
    snapshot_bytes = snap.body_size();
    chunks = snap.chunk_count();
  }
  state.counters["state_keys"] = static_cast<double>(keys);
  state.counters["snapshot_bytes"] = static_cast<double>(snapshot_bytes);
  state.counters["chunks"] = static_cast<double>(chunks);
}
BENCHMARK(BM_SnapshotMakeVsStateSize)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Unit(benchmark::kMillisecond);

void BM_QuorumRejoinUnderLoss(benchmark::State& state) {
  const double loss = static_cast<double>(state.range(0)) / 100.0;
  constexpr std::uint64_t kChainLen = 48;
  constexpr std::uint64_t kLag = 16;
  constexpr std::uint64_t kInterval = 8;
  std::uint64_t resumes = 0;
  std::uint64_t sim_us = 0;
  std::uint64_t rejoins = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Fixture f(kInterval);
    f.lag_node_c(kChainLen, kLag);
    f.net.set_drop_probability(loss);
    const std::uint64_t t0 = f.net.clock().now();
    state.ResumeTiming();
    f.quorum.rejoin("NodeC");
    // Loss past the retry budget stalls the transfer; re-drive it. The
    // resume count is part of the measured cost.
    int rounds = 0;
    while (f.quorum.public_chain("NodeC").height() < f.quorum.sealed_height() &&
           rounds < 100) {
      f.quorum.resume_rejoin("NodeC");
      ++rounds;
    }
    state.PauseTiming();
    resumes += static_cast<std::uint64_t>(rounds);
    sim_us += f.net.clock().now() - t0;
    ++rejoins;
    state.ResumeTiming();
  }
  state.counters["loss_pct"] = static_cast<double>(state.range(0));
  state.counters["resumes_per_rejoin"] =
      static_cast<double>(resumes) / static_cast<double>(rejoins);
  state.counters["sim_us_per_rejoin"] =
      static_cast<double>(sim_us) / static_cast<double>(rejoins);
}
BENCHMARK(BM_QuorumRejoinUnderLoss)
    ->Arg(0)
    ->Arg(10)
    ->Arg(20)
    ->Arg(30)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
