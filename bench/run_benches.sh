#!/usr/bin/env bash
# Runs the crypto microbenchmarks and records machine-readable results at
# the repo root (BENCH_crypto.json) so the perf trajectory is tracked
# across PRs.
#
# Usage:
#   bench/run_benches.sh                  # all of bench_crypto
#   BENCH_FILTER='BM_ModPow.*' bench/run_benches.sh
#   BUILD_DIR=out bench/run_benches.sh
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${BUILD_DIR:-$ROOT/build}"
FILTER="${BENCH_FILTER:-.*}"
OUT="${BENCH_OUT:-$ROOT/BENCH_crypto.json}"

if [[ ! -x "$BUILD/bench/bench_crypto" ]]; then
  echo "bench_crypto not built; run: cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

# Write to a temp file first: a filter matching nothing makes the bench
# binary emit an empty file with exit 0, which must not clobber $OUT.
TMP="$(mktemp "${OUT}.XXXXXX")"
trap 'rm -f "$TMP"' EXIT

"$BUILD/bench/bench_crypto" \
  --benchmark_filter="$FILTER" \
  --benchmark_out="$TMP" \
  --benchmark_out_format=json \
  --benchmark_repetitions="${BENCH_REPS:-1}"

if [[ ! -s "$TMP" ]]; then
  echo "no benchmarks matched filter '$FILTER'; $OUT left untouched" >&2
  exit 1
fi
mv "$TMP" "$OUT"
trap - EXIT

# Stamp the pre-optimization baselines into the context block so each
# snapshot carries its own before/after comparison (PR 1 measured the
# seed square-and-multiply at 102.8 ms for BM_ModPow_2048).
python3 - "$OUT" <<'PY'
import json, sys
path = sys.argv[1]
with open(path) as f:
    data = json.load(f)
data["context"]["seed_baseline_ms"] = {"BM_ModPow_2048": 102.8}
with open(path, "w") as f:
    json.dump(data, f, indent=2)
PY

echo "wrote $OUT"
