#!/usr/bin/env bash
# Runs the crypto microbenchmarks and records machine-readable results at
# the repo root (BENCH_crypto.json) so the perf trajectory is tracked
# across PRs. Also runs the fault-tolerance cost sweep (bench_faults:
# throughput/latency vs 0-30% message loss) into BENCH_faults.json, and
# the symmetric-kernel + thread-scaling suite (bench_parallel: AES-NI vs
# T-table vs reference, SHA-NI vs scalar, pooled hot-path sweeps at
# 1/2/4/8 threads) into BENCH_symmetric.json.
#
# Usage:
#   bench/run_benches.sh                  # bench_crypto + bench_faults + bench_parallel
#   BENCH_FILTER='BM_ModPow.*' bench/run_benches.sh
#   BENCH_SKIP_FAULTS=1 bench/run_benches.sh      # skip fault sweep
#   BENCH_SKIP_PARALLEL=1 bench/run_benches.sh    # skip symmetric/thread suite
#   BENCH_SKIP_BYZANTINE=1 bench/run_benches.sh   # skip Byzantine cost study
#   BENCH_SKIP_RECOVERY=1 bench/run_benches.sh    # skip recovery/rejoin study
#   BENCH_SKIP_COMMIT=1 bench/run_benches.sh      # skip commit-path study
#   BENCH_SKIP_OVERLOAD=1 bench/run_benches.sh    # skip overload sweep
#   BENCH_SKIP_STATE=1 bench/run_benches.sh       # skip state-store study
#   BENCH_SKIP_SCALE=1 bench/run_benches.sh       # skip sharded scale study
#   BENCH_SKIP_NET=1 bench/run_benches.sh         # skip transport backend study
#   BENCH_ALLOW_DEBUG=1 bench/run_benches.sh      # permit non-Release builds
#   BUILD_DIR=out bench/run_benches.sh
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${BUILD_DIR:-$ROOT/build}"
FILTER="${BENCH_FILTER:-.*}"
OUT="${BENCH_OUT:-$ROOT/BENCH_crypto.json}"

# Numbers from unoptimized builds are not comparable across PRs and have
# repeatedly confused the perf trajectory. Refuse anything but Release
# unless explicitly overridden — and then stamp the build type into every
# context block so a debug artifact can never masquerade as a datapoint.
BUILD_TYPE="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$BUILD/CMakeCache.txt" 2>/dev/null || true)"
if [[ "$BUILD_TYPE" != "Release" ]]; then
  if [[ -z "${BENCH_ALLOW_DEBUG:-}" ]]; then
    echo "refusing to benchmark a '${BUILD_TYPE:-unknown}' build; configure with" >&2
    echo "  cmake -B \"$BUILD\" -S \"$ROOT\" -DCMAKE_BUILD_TYPE=Release" >&2
    echo "or set BENCH_ALLOW_DEBUG=1 to record (clearly stamped) debug numbers" >&2
    exit 1
  fi
  echo "WARNING: benchmarking a '${BUILD_TYPE:-unknown}' build; results will be" >&2
  echo "WARNING: stamped build_type=${BUILD_TYPE:-unknown} and are NOT comparable" >&2
fi
export VEIL_BENCH_BUILD_TYPE="${BUILD_TYPE:-unknown}"

if [[ ! -x "$BUILD/bench/bench_crypto" ]]; then
  echo "bench_crypto not built; run: cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

# Write to a temp file first: a filter matching nothing makes the bench
# binary emit an empty file with exit 0, which must not clobber $OUT.
TMP="$(mktemp "${OUT}.XXXXXX")"
trap 'rm -f "$TMP"' EXIT

"$BUILD/bench/bench_crypto" \
  --benchmark_filter="$FILTER" \
  --benchmark_out="$TMP" \
  --benchmark_out_format=json \
  --benchmark_repetitions="${BENCH_REPS:-1}"

if [[ ! -s "$TMP" ]]; then
  echo "no benchmarks matched filter '$FILTER'; $OUT left untouched" >&2
  exit 1
fi
mv "$TMP" "$OUT"
trap - EXIT

# Stamp the pre-optimization baselines into the context block so each
# snapshot carries its own before/after comparison (PR 1 measured the
# seed square-and-multiply at 102.8 ms for BM_ModPow_2048).
python3 - "$OUT" <<'PY'
import json, os, sys
path = sys.argv[1]
with open(path) as f:
    data = json.load(f)
data["context"]["seed_baseline_ms"] = {"BM_ModPow_2048": 102.8}
data["context"]["build_type"] = os.environ.get("VEIL_BENCH_BUILD_TYPE", "unknown")
with open(path, "w") as f:
    json.dump(data, f, indent=2)
PY

echo "wrote $OUT"

# ---- Fault-tolerance sweep (reliable delivery under 0-30% loss) ------------
if [[ -z "${BENCH_SKIP_FAULTS:-}" ]]; then
  FAULTS_OUT="${BENCH_FAULTS_OUT:-$ROOT/BENCH_faults.json}"
  if [[ ! -x "$BUILD/bench/bench_faults" ]]; then
    echo "bench_faults not built; skipping fault sweep" >&2
  else
    FTMP="$(mktemp "${FAULTS_OUT}.XXXXXX")"
    trap 'rm -f "$FTMP"' EXIT
    "$BUILD/bench/bench_faults" \
      --benchmark_out="$FTMP" \
      --benchmark_out_format=json \
      --benchmark_repetitions="${BENCH_REPS:-1}"
    if [[ -s "$FTMP" ]]; then
      mv "$FTMP" "$FAULTS_OUT"
      echo "wrote $FAULTS_OUT"
    else
      echo "bench_faults produced no output; $FAULTS_OUT left untouched" >&2
    fi
    trap - EXIT
  fi
fi

# ---- Byzantine cost study (detection latency + cross-check overhead) -------
# Numbers quoted in the "Byzantine tier" section of docs/fault_model.md:
# validation-mode overhead on honest traffic, throughput with 0/1/2
# replaying principals, and sim-time detection latency.
if [[ -z "${BENCH_SKIP_BYZANTINE:-}" ]]; then
  BYZ_OUT="${BENCH_BYZANTINE_OUT:-$ROOT/BENCH_byzantine.json}"
  if [[ ! -x "$BUILD/bench/bench_byzantine" ]]; then
    echo "bench_byzantine not built; skipping Byzantine cost study" >&2
  else
    BTMP="$(mktemp "${BYZ_OUT}.XXXXXX")"
    trap 'rm -f "$BTMP"' EXIT
    "$BUILD/bench/bench_byzantine" \
      --benchmark_out="$BTMP" \
      --benchmark_out_format=json \
      --benchmark_repetitions="${BENCH_REPS:-1}"
    if [[ -s "$BTMP" ]]; then
      mv "$BTMP" "$BYZ_OUT"
      python3 - "$BYZ_OUT" <<'PY'
import json, sys
path = sys.argv[1]
with open(path) as f:
    data = json.load(f)
data["context"]["validation_modes"] = {
    "0": "Trusting", "1": "Validate", "2": "Detect"}
with open(path, "w") as f:
    json.dump(data, f, indent=2)
PY
      echo "wrote $BYZ_OUT"
    else
      echo "bench_byzantine produced no output; $BYZ_OUT left untouched" >&2
    fi
    trap - EXIT
  fi
fi

# ---- Recovery tier: checkpoint/rejoin cost study ---------------------------
# Rejoin time vs lag (snapshots off/on), rejoin cost vs chain length at
# fixed lag (must stay flat), snapshot size vs state size, and transfer
# convergence under 0-30% loss, into BENCH_recovery.json.
if [[ -z "${BENCH_SKIP_RECOVERY:-}" ]]; then
  REC_OUT="${BENCH_RECOVERY_OUT:-$ROOT/BENCH_recovery.json}"
  if [[ ! -x "$BUILD/bench/bench_recovery" ]]; then
    echo "bench_recovery not built; skipping recovery cost study" >&2
  else
    RTMP="$(mktemp "${REC_OUT}.XXXXXX")"
    trap 'rm -f "$RTMP"' EXIT
    "$BUILD/bench/bench_recovery" \
      --benchmark_out="$RTMP" \
      --benchmark_out_format=json \
      --benchmark_repetitions="${BENCH_REPS:-1}"
    if [[ -s "$RTMP" ]]; then
      mv "$RTMP" "$REC_OUT"
      python3 - "$REC_OUT" <<'PY'
import json, sys
path = sys.argv[1]
with open(path) as f:
    data = json.load(f)
data["context"]["snapshots_args"] = {"0": "full replay", "1": "checkpoint + delta"}
with open(path, "w") as f:
    json.dump(data, f, indent=2)
PY
      echo "wrote $REC_OUT"
    else
      echo "bench_recovery produced no output; $REC_OUT left untouched" >&2
    fi
    trap - EXIT
  fi
fi

# ---- Symmetric kernels + thread scaling ------------------------------------
# Thread-sweep numbers only mean something relative to the host's core
# count, so the CPU count is stamped into the context block alongside
# which hardware kernels were available (the aesni/sha_ni rows register
# conditionally on CPUID).
if [[ -z "${BENCH_SKIP_PARALLEL:-}" ]]; then
  SYM_OUT="${BENCH_SYMMETRIC_OUT:-$ROOT/BENCH_symmetric.json}"
  if [[ ! -x "$BUILD/bench/bench_parallel" ]]; then
    echo "bench_parallel not built; skipping symmetric/thread suite" >&2
  else
    STMP="$(mktemp "${SYM_OUT}.XXXXXX")"
    trap 'rm -f "$STMP"' EXIT
    "$BUILD/bench/bench_parallel" \
      --benchmark_out="$STMP" \
      --benchmark_out_format=json \
      --benchmark_repetitions="${BENCH_REPS:-1}"
    if [[ -s "$STMP" ]]; then
      mv "$STMP" "$SYM_OUT"
      python3 - "$SYM_OUT" <<'PY'
import json, os, sys
path = sys.argv[1]
with open(path) as f:
    data = json.load(f)
names = {b.get("name", "") for b in data.get("benchmarks", [])}
data["context"]["host_cpus"] = os.cpu_count()
data["context"]["aesni_available"] = any("aesni" in n for n in names)
data["context"]["shani_available"] = any("sha_ni" in n for n in names)
with open(path, "w") as f:
    json.dump(data, f, indent=2)
PY
      echo "wrote $SYM_OUT"
    else
      echo "bench_parallel produced no output; $SYM_OUT left untouched" >&2
    fi
    trap - EXIT
  fi
fi

# ---- Commit-path batching study --------------------------------------------
# End-to-end commit pipeline (mempool tokens + staged waves + batched RLC
# verification) across wave size x validation mode x threads, plus the
# raw per-item-vs-batched kernel comparison, into BENCH_commit.json.
if [[ -z "${BENCH_SKIP_COMMIT:-}" ]]; then
  COMMIT_OUT="${BENCH_COMMIT_OUT:-$ROOT/BENCH_commit.json}"
  if [[ ! -x "$BUILD/bench/bench_commit" ]]; then
    echo "bench_commit not built; skipping commit-path study" >&2
  else
    CTMP="$(mktemp "${COMMIT_OUT}.XXXXXX")"
    trap 'rm -f "$CTMP"' EXIT
    "$BUILD/bench/bench_commit" \
      --benchmark_out="$CTMP" \
      --benchmark_out_format=json \
      --benchmark_repetitions="${BENCH_REPS:-1}"
    if [[ -s "$CTMP" ]]; then
      mv "$CTMP" "$COMMIT_OUT"
      python3 - "$COMMIT_OUT" <<'PY'
import json, os, sys
path = sys.argv[1]
with open(path) as f:
    data = json.load(f)
data["context"]["build_type"] = os.environ.get("VEIL_BENCH_BUILD_TYPE", "unknown")
data["context"]["validation_modes"] = {
    "0": "Trusting", "1": "Validate", "2": "Detect"}
# PR 5 measured the serial Validate-mode commit path at ~9k commits/s;
# the batch>=32, 8-thread Validate rows are the >=5x target against it.
data["context"]["seed_baseline_commits_per_s"] = {"fabric_validate_serial": 9000}
with open(path, "w") as f:
    json.dump(data, f, indent=2)
PY
      echo "wrote $COMMIT_OUT"
    else
      echo "bench_commit produced no output; $COMMIT_OUT left untouched" >&2
    fi
    trap - EXIT
  fi
fi

# ---- Overload robustness sweep ---------------------------------------------
# Open-loop Poisson load at 0.5x/1x/2x/4x the measured closed-loop
# saturation rate on Fabric and Quorum with the overload tier on
# (admission control, TTLs, bounded queues), into BENCH_overload.json.
# The quoted claim: past saturation, goodput plateaus near the saturation
# rate and the latency of admitted work stays bounded by the TTL.
if [[ -z "${BENCH_SKIP_OVERLOAD:-}" ]]; then
  OVERLOAD_OUT="${BENCH_OVERLOAD_OUT:-$ROOT/BENCH_overload.json}"
  if [[ ! -x "$BUILD/bench/bench_overload" ]]; then
    echo "bench_overload not built; skipping overload sweep" >&2
  else
    OTMP="$(mktemp "${OVERLOAD_OUT}.XXXXXX")"
    trap 'rm -f "$OTMP"' EXIT
    "$BUILD/bench/bench_overload" \
      --benchmark_out="$OTMP" \
      --benchmark_out_format=json \
      --benchmark_repetitions="${BENCH_REPS:-1}"
    if [[ -s "$OTMP" ]]; then
      mv "$OTMP" "$OVERLOAD_OUT"
      python3 - "$OVERLOAD_OUT" <<'PY'
import json, os, sys
path = sys.argv[1]
with open(path) as f:
    data = json.load(f)
data["context"]["build_type"] = os.environ.get("VEIL_BENCH_BUILD_TYPE", "unknown")
data["context"]["offered_mult_encoding"] = "benchmark arg / 10 = multiple of measured saturation rate"
with open(path, "w") as f:
    json.dump(data, f, indent=2)
PY
      echo "wrote $OVERLOAD_OUT"
    else
      echo "bench_overload produced no output; $OVERLOAD_OUT left untouched" >&2
    fi
    trap - EXIT
  fi
fi

# ---- Authenticated state-store study ----------------------------------------
# Per-block root-update cost vs state size (trie incremental vs legacy
# full-rehash baseline) at 10^4/10^5/10^6 accounts, plus the delta bytes
# a 1-block-lagged rejoiner fetches vs the full image, into
# BENCH_state.json. The quoted claim: root updates stay flat (within 2x)
# from 10^4 to 10^6 accounts while the baseline grows linearly, and the
# rejoin delta tracks touched keys, not account count.
if [[ -z "${BENCH_SKIP_STATE:-}" ]]; then
  STATE_OUT="${BENCH_STATE_OUT:-$ROOT/BENCH_state.json}"
  if [[ ! -x "$BUILD/bench/bench_state" ]]; then
    echo "bench_state not built; skipping state-store study" >&2
  else
    XTMP="$(mktemp "${STATE_OUT}.XXXXXX")"
    trap 'rm -f "$XTMP"' EXIT
    "$BUILD/bench/bench_state" \
      --benchmark_out="$XTMP" \
      --benchmark_out_format=json \
      --benchmark_repetitions="${BENCH_REPS:-1}"
    if [[ -s "$XTMP" ]]; then
      mv "$XTMP" "$STATE_OUT"
      python3 - "$STATE_OUT" <<'PY'
import json, os, sys
path = sys.argv[1]
with open(path) as f:
    data = json.load(f)
data["context"]["build_type"] = os.environ.get("VEIL_BENCH_BUILD_TYPE", "unknown")
data["context"]["writes_per_block"] = 64
data["context"]["claim"] = (
    "BM_TrieRootUpdate flat within 2x from 1e4 to 1e6 accounts; "
    "BM_LegacyFullRehash linear; BM_DeltaRejoinBytes ~O(touched keys)")
with open(path, "w") as f:
    json.dump(data, f, indent=2)
PY
      echo "wrote $STATE_OUT"
    else
      echo "bench_state produced no output; $STATE_OUT left untouched" >&2
    fi
    trap - EXIT
  fi
fi

# ---- Transport backend study -------------------------------------------------
# SimNetwork vs loopback TCP vs TCP with 10% injected socket chaos:
# batched one-way throughput across 64B/1KiB/8KiB payloads and the
# per-message quiescence-barrier round trip (p50/p99 wall micros), into
# BENCH_net.json. The quoted claim: the TCP tier costs syscalls and
# microseconds, never messages — delivered counts match the sim backend
# in every series, with or without injected faults.
if [[ -z "${BENCH_SKIP_NET:-}" ]]; then
  NET_OUT="${BENCH_NET_OUT:-$ROOT/BENCH_net.json}"
  if [[ ! -x "$BUILD/bench/bench_net" ]]; then
    echo "bench_net not built; skipping transport backend study" >&2
  else
    NTMP="$(mktemp "${NET_OUT}.XXXXXX")"
    trap 'rm -f "$NTMP"' EXIT
    "$BUILD/bench/bench_net" \
      --benchmark_out="$NTMP" \
      --benchmark_out_format=json \
      --benchmark_repetitions="${BENCH_REPS:-1}"
    if [[ -s "$NTMP" ]]; then
      mv "$NTMP" "$NET_OUT"
      python3 - "$NET_OUT" <<'PY'
import json, os, sys
path = sys.argv[1]
with open(path) as f:
    data = json.load(f)
data["context"]["build_type"] = os.environ.get("VEIL_BENCH_BUILD_TYPE", "unknown")
data["context"]["backend_args"] = {
    "0": "sim", "1": "tcp", "2": "tcp + uniform(0.1) socket faults"}
data["context"]["throughput_args"] = "backend, payload_bytes, link_pairs"
with open(path, "w") as f:
    json.dump(data, f, indent=2)
PY
      echo "wrote $NET_OUT"
    else
      echo "bench_net produced no output; $NET_OUT left untouched" >&2
    fi
    trap - EXIT
  fi
fi

# ---- Sharded scale-out study ------------------------------------------------
# Open-loop Zipf traffic over the sharded tier: goodput vs shard count
# (1/2/4/8) and cross-shard mix (0/10/30%) at 1e5 and 1e6 users, plus
# the abort-rate/goodput sweep under 0-30% message loss, into
# BENCH_scale.json. The quoted claim: local traffic commits at the
# offered rate at any shard count; the cross-shard mix is what costs
# goodput (2PC latency + Zipf hot-key lock contention), and loss costs
# aborts and retry latency — never atomicity.
if [[ -z "${BENCH_SKIP_SCALE:-}" ]]; then
  SCALE_OUT="${BENCH_SCALE_OUT:-$ROOT/BENCH_scale.json}"
  if [[ ! -x "$BUILD/bench/bench_scale" ]]; then
    echo "bench_scale not built; skipping sharded scale study" >&2
  else
    ZTMP="$(mktemp "${SCALE_OUT}.XXXXXX")"
    trap 'rm -f "$ZTMP"' EXIT
    "$BUILD/bench/bench_scale" \
      --benchmark_out="$ZTMP" \
      --benchmark_out_format=json \
      --benchmark_repetitions="${BENCH_REPS:-1}"
    if [[ -s "$ZTMP" ]]; then
      mv "$ZTMP" "$SCALE_OUT"
      python3 - "$SCALE_OUT" <<'PY'
import json, os, sys
path = sys.argv[1]
with open(path) as f:
    data = json.load(f)
data["context"]["build_type"] = os.environ.get("VEIL_BENCH_BUILD_TYPE", "unknown")
data["context"]["goodput_args"] = "users_exponent, shard_count, cross_pct"
data["context"]["loss_args"] = "loss_pct (1e5 users, 4 shards, 30% cross)"
with open(path, "w") as f:
    json.dump(data, f, indent=2)
PY
      echo "wrote $SCALE_OUT"
    else
      echo "bench_scale produced no output; $SCALE_OUT left untouched" >&2
    fi
    trap - EXIT
  fi
fi
