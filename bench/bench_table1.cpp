// E1 — regenerate Table 1.
//
// Prints the platform x mechanism capability matrix in the paper's row
// order and, next to each cell, whether the demonstration harness could
// actually exhibit the mechanism on the simulated platform ('ok' for
// demonstrated, '--' for requires-rewriting cells, which is the expected
// outcome for '-' entries).
#include <cstdio>
#include <string>

#include "core/capability.hpp"
#include "core/demonstration.hpp"

int main() {
  using namespace veil::core;

  std::printf("Table 1 — Comparison of permissioned DLTs with respect to\n");
  std::printf("privacy and confidentiality mechanisms.\n");
  std::printf("Legend: + native, * implementable, - substantial rewrite\n\n");

  const CapabilityMatrix& matrix = CapabilityMatrix::paper_table1();

  std::printf("%-14s%-40s", "Category", "Mechanism");
  for (const char* p : {"HLF", "Corda", "Quorum"}) std::printf("%-14s", p);
  std::printf("\n%s\n", std::string(96, '-').c_str());

  int verified = 0, expected_gaps = 0, mismatches = 0;
  for (const auto& [category, mech] : table1_rows()) {
    std::printf("%-14s%-40s", category.c_str(), to_string(mech).c_str());
    for (Platform platform :
         {Platform::Fabric, Platform::Corda, Platform::Quorum}) {
      const Support support = matrix.at(platform, mech);
      const DemoResult demo = demonstrate(platform, mech);
      const bool expect_demo = support != Support::HardRewrite;
      const char* status;
      if (demo.demonstrated == expect_demo) {
        status = expect_demo ? "ok" : "--";
        if (expect_demo) ++verified;
        else ++expected_gaps;
      } else {
        status = "!!";
        ++mismatches;
      }
      std::printf("%-4s[%s]%-5s", symbol(support).c_str(), status, "");
    }
    std::printf("\n");
  }

  std::printf("\n%d cells demonstrated in simulation, %d '-' cells "
              "confirmed non-native, %d mismatches vs the paper\n",
              verified, expected_gaps, mismatches);
  return mismatches == 0 ? 0 : 1;
}
