// Transport backend study: the cost of real sockets.
//
// The engine layer is backend-invariant (same modeled faults, same
// delivery order, same stats), so this sweep isolates what the TCP tier
// itself costs: framing, syscalls, the poll loop, and — in the chaos
// series — the fault injector's partial writes, short reads and resets
// plus the supervisor/resumption work they force.
//
// Series:
//   * BM_NetThroughput/<backend>/<payload>/<pairs> — batched one-way
//     delivery over `pairs` independent links, messages and bytes per
//     wall-second
//   * BM_NetBarrierRoundTrip/<backend>             — send + run()
//     quiescence barrier per message; p50/p99 wall-clock micros as
//     counters
//
// backend arg: 0 = SimNetwork (in-process), 1 = TcpTransport (loopback),
// 2 = TcpTransport with SocketFaultProfile::uniform(0.1) injected chaos.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <vector>

#include "net/network.hpp"
#include "net/tcp.hpp"

namespace {

using namespace veil;

std::unique_ptr<net::Transport> make_backend(int which) {
  switch (which) {
    case 0:
      return std::make_unique<net::SimNetwork>(common::Rng(7));
    case 1:
      return std::make_unique<net::TcpTransport>(common::Rng(7));
    default: {
      net::TcpConfig config;
      config.fault_seed = 7;
      config.faults = net::SocketFaultProfile::uniform(0.1);
      return std::make_unique<net::TcpTransport>(common::Rng(7),
                                                 net::LatencyModel{}, config);
    }
  }
}

const char* backend_name(int which) {
  switch (which) {
    case 0:
      return "sim";
    case 1:
      return "tcp";
    default:
      return "tcp_chaos";
  }
}

void stamp_backend(benchmark::State& state, const net::Transport& net) {
  state.SetLabel(backend_name(static_cast<int>(state.range(0))));
  state.counters["tcp_connects"] =
      static_cast<double>(net.stats().tcp_connects);
  state.counters["tcp_reconnects"] =
      static_cast<double>(net.stats().tcp_reconnects);
  state.counters["injected_faults"] =
      static_cast<double>(net.stats().tcp_injected_faults);
}

// One-way bulk delivery, 64 messages per run() barrier, spread
// round-robin over `pairs` independent sender->receiver links (on the
// TCP backend: that many real connections and poll-loop threads).
void BM_NetThroughput(benchmark::State& state) {
  auto net = make_backend(static_cast<int>(state.range(0)));
  const std::size_t payload_len = static_cast<std::size_t>(state.range(1));
  const int pairs = static_cast<int>(state.range(2));
  const common::Bytes payload(payload_len, 0xab);
  std::uint64_t delivered = 0;
  std::vector<std::string> senders;
  std::vector<std::string> receivers;
  for (int p = 0; p < pairs; ++p) {
    senders.push_back("a" + std::to_string(p));
    receivers.push_back("b" + std::to_string(p));
    net->attach(senders.back(), [](const net::Message&) {});
    net->attach(receivers.back(), [&](const net::Message&) { ++delivered; });
  }
  constexpr int kBatch = 64;
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) {
      const std::size_t p = static_cast<std::size_t>(i % pairs);
      net->send(senders[p], receivers[p], "bench", payload);
    }
    net->run();
  }
  state.SetItemsProcessed(static_cast<int64_t>(delivered));
  state.SetBytesProcessed(
      static_cast<int64_t>(delivered * payload_len));
  stamp_backend(state, *net);
}
BENCHMARK(BM_NetThroughput)
    ->ArgsProduct({{0, 1, 2}, {64, 1024, 8192}, {1, 4}})
    ->Unit(benchmark::kMicrosecond);

// Send one message and wait for the quiescence barrier: the latency a
// lock-step protocol round pays per hop. p50/p99 over the sampled
// iterations, in wall-clock microseconds.
void BM_NetBarrierRoundTrip(benchmark::State& state) {
  auto net = make_backend(static_cast<int>(state.range(0)));
  const common::Bytes payload(256, 0xcd);
  net->attach("a", [](const net::Message&) {});
  net->attach("b", [](const net::Message&) {});
  std::vector<double> samples_us;
  samples_us.reserve(4096);
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    net->send("a", "b", "rt", payload);
    net->run();
    const auto t1 = std::chrono::steady_clock::now();
    samples_us.push_back(
        std::chrono::duration<double, std::micro>(t1 - t0).count());
  }
  std::sort(samples_us.begin(), samples_us.end());
  const auto pct = [&](double p) {
    if (samples_us.empty()) return 0.0;
    const std::size_t idx = std::min(
        samples_us.size() - 1,
        static_cast<std::size_t>(p * static_cast<double>(samples_us.size())));
    return samples_us[idx];
  };
  state.counters["p50_us"] = pct(0.50);
  state.counters["p99_us"] = pct(0.99);
  state.SetItemsProcessed(static_cast<int64_t>(samples_us.size()));
  stamp_backend(state, *net);
}
BENCHMARK(BM_NetBarrierRoundTrip)
    ->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
