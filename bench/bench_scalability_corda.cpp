// E5 — Corda scalability (§3.4 / [14]).
//
// Series reproduced:
//   * p2p transaction latency/throughput vs participant count — every
//     participant adds a signing round trip;
//   * notary load — transactions per notary across many party pairs;
//   * tear-off size overhead vs transaction component count — the proof
//     a filtered party receives grows with hidden components.
#include <benchmark/benchmark.h>

#include "platforms/corda/corda.hpp"

namespace {

using namespace veil;
using common::to_bytes;

void BM_CordaTransactVsParticipants(benchmark::State& state) {
  const int participants = static_cast<int>(state.range(0));
  net::SimNetwork net{common::Rng(1)};
  common::Rng rng(2);
  corda::CordaNetwork corda(net, crypto::Group::test_group(), rng);
  std::vector<std::string> names;
  for (int i = 0; i < participants; ++i) {
    names.push_back("P" + std::to_string(i));
    corda.add_party(names.back());
  }
  corda.add_notary("Notary", false);

  std::uint64_t success = 0;
  for (auto _ : state) {
    state.PauseTiming();
    corda.issue("P0", "Deal", to_bytes("payload"), {"P0"}, "Notary");
    const auto ref = corda.vault("P0").back().ref;
    state.ResumeTiming();
    const auto r = corda.transact(
        "P0", {ref},
        {corda::OutputSpec{"Deal", to_bytes("payload"), names}}, "Notary");
    if (r.success) ++success;
  }
  state.SetItemsProcessed(static_cast<int64_t>(success));
  state.counters["participants"] = participants;
}
BENCHMARK(BM_CordaTransactVsParticipants)
    ->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMicrosecond);

void BM_CordaNotaryLoad(benchmark::State& state) {
  const int pairs = static_cast<int>(state.range(0));
  net::SimNetwork net{common::Rng(3)};
  common::Rng rng(4);
  corda::CordaNetwork corda(net, crypto::Group::test_group(), rng);
  for (int i = 0; i < 2 * pairs; ++i) {
    corda.add_party("P" + std::to_string(i));
  }
  corda.add_notary("Notary", false);
  for (auto _ : state) {
    for (int i = 0; i < pairs; ++i) {
      const std::string a = "P" + std::to_string(2 * i);
      const std::string b = "P" + std::to_string(2 * i + 1);
      corda.issue(a, "Cash", to_bytes("1"), {a}, "Notary");
      const auto ref = corda.vault(a).back().ref;
      corda.transact(a, {ref},
                     {corda::OutputSpec{"Cash", to_bytes("1"), {b}}},
                     "Notary");
    }
  }
  state.counters["notarized"] =
      static_cast<double>(corda.notarized_count("Notary"));
  state.counters["pairs"] = pairs;
}
BENCHMARK(BM_CordaNotaryLoad)->Arg(1)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMillisecond);

void BM_CordaTearOffSize(benchmark::State& state) {
  // Proof size the oracle receives vs total transaction components.
  const std::size_t components = static_cast<std::size_t>(state.range(0));
  common::Rng rng(5);
  std::vector<common::Bytes> leaves, salts;
  for (std::size_t i = 0; i < components; ++i) {
    leaves.push_back(rng.next_bytes(256));
    salts.push_back(rng.next_bytes(16));
  }
  std::size_t encoded_size = 0;
  const auto tree = crypto::MerkleTree::build(leaves, salts);
  for (auto _ : state) {
    const auto torn = crypto::TearOff::create(leaves, salts, {0});
    encoded_size = torn.encoded_size();
    benchmark::DoNotOptimize(torn.verify_against(tree.root()));
  }
  const std::size_t full_size = components * (256 + 16);
  state.counters["tearoff_bytes"] = static_cast<double>(encoded_size);
  state.counters["full_tx_bytes"] = static_cast<double>(full_size);
  state.counters["hidden_ratio"] =
      static_cast<double>(encoded_size) / static_cast<double>(full_size);
}
BENCHMARK(BM_CordaTearOffSize)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_CordaConfidentialIdentityOverhead(benchmark::State& state) {
  const bool confidential = state.range(0) == 1;
  net::SimNetwork net{common::Rng(6)};
  common::Rng rng(7);
  corda::CordaNetwork corda(net, crypto::Group::test_group(), rng);
  corda.add_party("Alice");
  corda.add_party("Bob");
  corda.add_notary("Notary", false);
  for (auto _ : state) {
    state.PauseTiming();
    corda.issue("Alice", "Cash", to_bytes("1"), {"Alice"}, "Notary");
    const auto ref = corda.vault("Alice").back().ref;
    state.ResumeTiming();
    benchmark::DoNotOptimize(corda.transact(
        "Alice", {ref},
        {corda::OutputSpec{"Cash", to_bytes("1"), {"Bob"}}}, "Notary",
        confidential));
  }
  state.SetLabel(confidential ? "one-time-keys" : "named-keys");
}
BENCHMARK(BM_CordaConfidentialIdentityOverhead)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
