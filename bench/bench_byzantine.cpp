// Byzantine-tier cost study: what detection buys and what it costs.
//
// Three questions, one series each:
//   * BM_FabricValidationModeCost — cross-check overhead on HONEST
//     traffic as Fabric's validation mode steps Trusting -> Validate ->
//     Detect (arg 0/1/2). The Detect-vs-Validate delta is the price of
//     the endorsement-consistency cross-check when nothing is wrong.
//   * BM_QuorumCommitVsByzantine — commit throughput with 0/1/2
//     actively replaying principals (arg), detection on. Shows the
//     steady-state cost of living with convicted-and-quarantined peers.
//   * BM_QuorumReplayDetectionLatency — simulated time from the replay
//     hitting the wire to the first signed evidence record: the
//     detection latency quoted in docs/fault_model.md.
#include <benchmark/benchmark.h>

#include "platforms/fabric/fabric.hpp"
#include "platforms/quorum/quorum.hpp"

namespace {

using namespace veil;
using common::to_bytes;

std::shared_ptr<contracts::FunctionContract> put_contract() {
  return std::make_shared<contracts::FunctionContract>(
      "cc", 1, [](contracts::ContractContext& ctx, const std::string& a) {
        ctx.put("k/" + a, common::Bytes(ctx.args().begin(), ctx.args().end()));
        return contracts::InvokeStatus::Ok;
      });
}

// Honest Fabric traffic under each validation mode. No attacker: the
// measured delta between modes is pure cross-check overhead.
void BM_FabricValidationModeCost(benchmark::State& state) {
  net::SimNetwork net{common::Rng(41)};
  common::Rng rng(42);
  fabric::FabricNetwork fab(net, crypto::Group::test_group(), rng);
  fab.add_org("OrgA");
  fab.add_org("OrgB");
  fab.create_channel("ch", {"OrgA", "OrgB"});
  fab.install_chaincode("ch", "OrgA", put_contract(),
                        contracts::EndorsementPolicy::require("OrgA"));
  const auto mode = static_cast<fabric::FabricNetwork::ValidationMode>(
      state.range(0));
  fab.set_validation_mode(mode);
  state.counters["mode"] = static_cast<double>(state.range(0));
  std::uint64_t committed = 0;
  int seq = 0;
  for (auto _ : state) {
    const auto r = fab.submit("ch", "OrgA", "cc", "a" + std::to_string(seq++),
                              to_bytes("v"));
    if (r.committed) ++committed;
  }
  state.SetItemsProcessed(static_cast<int64_t>(committed));
  state.counters["sim_us_per_tx"] =
      static_cast<double>(net.clock().now()) /
      (committed ? static_cast<double>(committed) : 1.0);
}
BENCHMARK(BM_FabricValidationModeCost)
    ->Arg(0)  // Trusting
    ->Arg(1)  // Validate
    ->Arg(2)  // Detect
    ->Unit(benchmark::kMillisecond);

// Quorum private-transfer throughput with 0/1/2 Byzantine principals
// replaying spent transfers into the stream, detection on. Convicted
// replayers get quarantined, so the steady state is honest commits plus
// the wasted wire traffic of isolated attackers.
void BM_QuorumCommitVsByzantine(benchmark::State& state) {
  net::SimNetwork net{common::Rng(51)};
  common::Rng rng(52);
  quorum::QuorumNetwork quorum(net, crypto::Group::test_group(), rng,
                               /*block_size=*/1);
  for (const char* n : {"A", "B", "C", "D", "E"}) quorum.add_node(n);
  quorum.enable_detection();
  const int byzantine = static_cast<int>(state.range(0));
  state.counters["byzantine_principals"] = static_cast<double>(byzantine);
  // Seed each attacker with a private transfer it can later replay.
  const char* attackers[] = {"D", "E"};
  std::vector<std::string> spent_ids;
  for (int i = 0; i < byzantine; ++i) {
    const auto r = quorum.submit_private(attackers[i], {"A"},
                                         {{"seed", to_bytes("v"), false}},
                                         to_bytes("seed-terms"));
    spent_ids.push_back(r.tx_id);
  }
  std::uint64_t committed = 0;
  int seq = 0;
  for (auto _ : state) {
    const auto r = quorum.submit_private(
        "A", {"B"}, {{"k" + std::to_string(seq), to_bytes("v"), false}},
        to_bytes("terms"));
    if (r.accepted) ++committed;
    // Each attacker re-fires its replay every fourth honest commit;
    // after conviction the quarantine eats the traffic.
    if (seq % 4 == 0) {
      for (int i = 0; i < byzantine; ++i) {
        quorum.replay_private(attackers[i], spent_ids[i], {"C"});
      }
    }
    ++seq;
  }
  state.SetItemsProcessed(static_cast<int64_t>(committed));
  const double tx = committed ? static_cast<double>(committed) : 1.0;
  state.counters["sim_us_per_tx"] =
      static_cast<double>(net.clock().now()) / tx;
  state.counters["evidence_records"] =
      static_cast<double>(quorum.evidence().count());
  state.counters["quarantine_drops"] =
      static_cast<double>(net.stats().dropped_quarantined);
}
BENCHMARK(BM_QuorumCommitVsByzantine)
    ->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

// Detection latency: simulated microseconds from the replay submission
// to the first signed evidence record. Fresh network per sample so the
// attacker is never pre-quarantined.
void BM_QuorumReplayDetectionLatency(benchmark::State& state) {
  double total_latency_us = 0;
  std::uint64_t detections = 0;
  std::uint64_t attacks = 0;
  for (auto _ : state) {
    net::SimNetwork net{common::Rng(61)};
    common::Rng rng(62);
    quorum::QuorumNetwork quorum(net, crypto::Group::test_group(), rng,
                                 /*block_size=*/1);
    for (const char* n : {"A", "B", "C"}) quorum.add_node(n);
    quorum.enable_detection();
    const auto transfer = quorum.submit_private(
        "A", {"B"}, {{"asset/bond/owner", to_bytes("B"), false}},
        to_bytes("transfer"));
    const std::uint64_t t0 = net.clock().now();
    quorum.replay_private("B", transfer.tx_id, {"C"});
    ++attacks;
    if (quorum.evidence().count() > 0) {
      ++detections;
      total_latency_us += static_cast<double>(net.clock().now() - t0);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(detections));
  state.counters["detection_rate"] =
      attacks ? static_cast<double>(detections) / static_cast<double>(attacks)
              : 0.0;
  state.counters["detect_latency_sim_us"] =
      detections ? total_latency_us / static_cast<double>(detections) : 0.0;
}
BENCHMARK(BM_QuorumReplayDetectionLatency)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
