// E8 — leakage quantification.
//
// Runs the same two-party confidential exchange under each mechanism /
// platform configuration and prints the observed-bytes matrix: what the
// uninvolved third party and the sequencing service (orderer / notary)
// learned. This turns the paper's qualitative §5 comparison and the §3.4
// ordering-service warning into numbers.
#include <cstdio>

#include "crypto/aes.hpp"
#include "platforms/corda/corda.hpp"
#include "platforms/fabric/fabric.hpp"
#include "platforms/quorum/quorum.hpp"

namespace {

using namespace veil;
using common::to_bytes;

std::shared_ptr<contracts::FunctionContract> put_contract() {
  return std::make_shared<contracts::FunctionContract>(
      "cc", 1, [](contracts::ContractContext& ctx, const std::string& a) {
        if (a.rfind("put:", 0) != 0)
          return contracts::InvokeStatus::UnknownAction;
        ctx.put(a.substr(4),
                common::Bytes(ctx.args().begin(), ctx.args().end()));
        return contracts::InvokeStatus::Ok;
      });
}

struct Row {
  std::uint64_t outsider_data;
  std::uint64_t outsider_parties;
  std::uint64_t sequencer_data;
  std::uint64_t sequencer_opaque;
};

void print_row(const char* config, const Row& row) {
  std::printf("%-44s%-16llu%-18llu%-18llu%-16llu\n", config,
              static_cast<unsigned long long>(row.outsider_data),
              static_cast<unsigned long long>(row.outsider_parties),
              static_cast<unsigned long long>(row.sequencer_data),
              static_cast<unsigned long long>(row.sequencer_opaque));
}

const common::Bytes kSecret = to_bytes(
    "price=1,000,000;counterparty-terms=confidential;margin=0.07");

Row run_fabric(bool private_orderer, bool encrypt_payload) {
  net::SimNetwork net{common::Rng(1)};
  common::Rng rng(2);
  fabric::FabricConfig config;
  config.orderer_deployment = private_orderer
                                  ? ledger::OrdererDeployment::Private
                                  : ledger::OrdererDeployment::Shared;
  fabric::FabricNetwork fab(net, crypto::Group::test_group(), rng, config);
  for (const char* org : {"A", "B", "C"}) fab.add_org(org);
  fab.create_channel("deal", {"A", "B"});
  fab.install_chaincode("deal", "A", put_contract(),
                        contracts::EndorsementPolicy::require("A"));
  common::Bytes payload = kSecret;
  if (encrypt_payload) {
    payload = crypto::seal(rng.next_bytes(32), kSecret, rng.next_bytes(16));
  }
  const auto r = fab.submit("deal", "A", "cc", "put:deal", payload);
  const std::string prefix = "tx/" + r.tx_id + "/";
  const std::string sequencer = fab.orderer_operator("deal");
  Row row{};
  row.outsider_data = net.auditor().bytes_seen("peer.C", prefix + "data");
  row.outsider_parties =
      net.auditor().bytes_seen("peer.C", prefix + "parties");
  // With app-level encryption the orderer still "sees" the bytes but they
  // are ciphertext; report what it can actually read vs what it stores.
  row.sequencer_data =
      encrypt_payload && sequencer != "A"
          ? 0  // ciphertext only (key never shared with the orderer)
          : net.auditor().bytes_seen(sequencer, prefix + "data");
  if (private_orderer) {
    // The member-operated orderer is itself a party; report third-party
    // orderer-org instead (which saw nothing).
    row.sequencer_data = net.auditor().bytes_seen("orderer-org", prefix);
  }
  row.sequencer_opaque =
      net.auditor().opaque_bytes_seen(sequencer, prefix + "data");
  return row;
}

Row run_corda(bool validating) {
  net::SimNetwork net{common::Rng(3)};
  common::Rng rng(4);
  corda::CordaNetwork corda(net, crypto::Group::test_group(), rng);
  for (const char* p : {"A", "B", "C"}) corda.add_party(p);
  corda.add_notary("Notary", validating);
  corda.issue("A", "Deal", kSecret, {"A"}, "Notary");
  const auto r = corda.transact(
      "A", {corda.vault("A").front().ref},
      {corda::OutputSpec{"Deal", kSecret, {"A", "B"}}}, "Notary");
  const std::string prefix = "tx/" + r.tx_id + "/";
  Row row{};
  row.outsider_data = net.auditor().bytes_seen("C", prefix + "data");
  row.outsider_parties = net.auditor().bytes_seen("C", prefix + "parties");
  row.sequencer_data = net.auditor().bytes_seen("Notary", prefix + "data");
  row.sequencer_opaque =
      net.auditor().opaque_bytes_seen("Notary", prefix + "data");
  return row;
}

Row run_quorum(bool private_tx) {
  net::SimNetwork net{common::Rng(5)};
  common::Rng rng(6);
  quorum::QuorumNetwork quorum(net, crypto::Group::test_group(), rng, 1);
  for (const char* n : {"A", "B", "C"}) quorum.add_node(n);
  quorum::TxResult r;
  if (private_tx) {
    r = quorum.submit_private("A", {"B"},
                              {{"deal", kSecret, false}});
  } else {
    r = quorum.submit_public("A", {{"deal", kSecret, false}});
  }
  const std::string prefix = "tx/" + r.tx_id + "/";
  Row row{};
  row.outsider_data = net.auditor().bytes_seen("C", prefix + "data");
  row.outsider_parties = net.auditor().bytes_seen("C", prefix + "parties");
  // Quorum has no separate sequencer; the "sequencer" column shows what a
  // non-participant validator (C) could read vs store.
  row.sequencer_data = row.outsider_data;
  row.sequencer_opaque = net.auditor().opaque_bytes_seen("C", prefix + "data");
  return row;
}

}  // namespace

int main() {
  std::printf("E8 — leakage matrix: plaintext bytes observed by principals\n");
  std::printf("Secret payload size: %zu bytes\n\n", kSecret.size());
  std::printf("%-44s%-16s%-18s%-18s%-16s\n", "configuration",
              "outsider:data", "outsider:parties", "sequencer:data",
              "seq:ciphertext");
  std::printf("%s\n", std::string(112, '-').c_str());

  print_row("Fabric / shared orderer / plaintext", run_fabric(false, false));
  print_row("Fabric / shared orderer / AES-sealed", run_fabric(false, true));
  print_row("Fabric / channel-member-run orderer", run_fabric(true, false));
  print_row("Corda / non-validating notary", run_corda(false));
  print_row("Corda / validating notary", run_corda(true));
  print_row("Quorum / public transaction", run_quorum(false));
  print_row("Quorum / private tx (parties leak!)", run_quorum(true));

  std::printf(
      "\nExpected shape (paper §3.4/§5): outsiders see nothing under\n"
      "separation-of-ledgers; the shared Fabric orderer sees everything\n"
      "unless the app encrypts; a validating Corda notary sees data, a\n"
      "non-validating one does not; Quorum hides payloads but leaks the\n"
      "participant list to the entire network.\n");
  return 0;
}
