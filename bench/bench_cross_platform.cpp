// Custom use-case scalability test (§3.4: "custom scalability tests may
// need to be designed to fit the particular use case").
//
// The SAME deterministic bilateral-trade workload (workload::TradeWorkload,
// 80% confidential trades) is replayed against all three platform models.
// For each platform we report wall-clock throughput, network traffic, and
// the two §5 leakage figures: plaintext trade bytes observed by a
// non-party, and party-list bytes observed by a non-party.
#include <chrono>
#include <cstdio>

#include "platforms/corda/corda.hpp"
#include "platforms/fabric/fabric.hpp"
#include "platforms/quorum/quorum.hpp"
#include "workload/workload.hpp"

namespace {

using namespace veil;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kTrades = 60;
const std::vector<std::string> kParties = {"BankA", "BankB", "BankC",
                                           "BankD"};
constexpr const char* kOutsider = "BankD";  // excluded from all trades

workload::TradeWorkload make_workload() {
  workload::TradeConfig config;
  config.confidential_fraction = 0.8;
  config.details_bytes = 256;
  // Only the first three banks trade; BankD observes.
  return workload::TradeWorkload({"BankA", "BankB", "BankC"}, config, 777);
}

struct RunResult {
  double seconds = 0;
  std::uint64_t committed = 0;
  std::uint64_t net_bytes = 0;
  std::uint64_t outsider_data = 0;
  std::uint64_t outsider_parties = 0;
};

std::shared_ptr<contracts::FunctionContract> trade_contract() {
  return std::make_shared<contracts::FunctionContract>(
      "trades", 1,
      [](contracts::ContractContext& ctx, const std::string& action) {
        ctx.put("trade/" + action,
                common::Bytes(ctx.args().begin(), ctx.args().end()));
        return contracts::InvokeStatus::Ok;
      });
}

RunResult run_fabric() {
  net::SimNetwork net{common::Rng(1)};
  common::Rng rng(2);
  fabric::FabricNetwork fab(net, crypto::Group::test_group(), rng);
  for (const std::string& p : kParties) fab.add_org(p);
  // One channel per trading pair, mirroring "separation of ledgers".
  auto channel_of = [&](const std::string& a, const std::string& b) {
    const std::string name = a < b ? a + "-" + b : b + "-" + a;
    if (!fab.is_channel_member(name, a)) {
      fab.create_channel(name, {a, b});
      fab.install_chaincode(name, a, trade_contract(),
                            contracts::EndorsementPolicy::require(a));
    }
    return name;
  };

  auto workload = make_workload();
  RunResult result;
  const auto start = Clock::now();
  std::size_t seq = 0;
  for (const workload::TradeEvent& trade : workload.take(kTrades)) {
    const std::string channel = channel_of(trade.buyer, trade.seller);
    const auto receipt =
        fab.submit(channel, trade.buyer, "trades", std::to_string(seq++),
                   trade.details);
    if (receipt.committed) ++result.committed;
  }
  result.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  result.net_bytes = net.stats().bytes_sent;
  result.outsider_data =
      net.auditor().bytes_seen("peer." + std::string(kOutsider), "tx/");
  result.outsider_parties = result.outsider_data;  // same observation set
  return result;
}

RunResult run_corda() {
  net::SimNetwork net{common::Rng(3)};
  common::Rng rng(4);
  corda::CordaNetwork corda(net, crypto::Group::test_group(), rng);
  for (const std::string& p : kParties) corda.add_party(p);
  corda.add_notary("Notary", /*validating=*/false);

  auto workload = make_workload();
  RunResult result;
  const auto start = Clock::now();
  for (const workload::TradeEvent& trade : workload.take(kTrades)) {
    const auto r = corda.issue(trade.buyer, "Trade", trade.details,
                               {trade.buyer, trade.seller}, "Notary");
    if (r.success) ++result.committed;
  }
  result.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  result.net_bytes = net.stats().bytes_sent;
  result.outsider_data = net.auditor().bytes_seen(kOutsider, "tx/");
  result.outsider_parties = result.outsider_data;
  return result;
}

RunResult run_quorum() {
  net::SimNetwork net{common::Rng(5)};
  common::Rng rng(6);
  quorum::QuorumNetwork quorum(net, crypto::Group::test_group(), rng, 1);
  for (const std::string& p : kParties) quorum.add_node(p);

  auto workload = make_workload();
  RunResult result;
  const auto start = Clock::now();
  std::size_t seq = 0;
  for (const workload::TradeEvent& trade : workload.take(kTrades)) {
    const ledger::KvWrite write{"trade/" + std::to_string(seq++),
                                trade.details, false};
    quorum::TxResult r;
    if (trade.confidential) {
      r = quorum.submit_private(trade.buyer, {trade.seller}, {write});
    } else {
      r = quorum.submit_public(trade.buyer, {write});
    }
    if (r.accepted) ++result.committed;
  }
  result.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  result.net_bytes = net.stats().bytes_sent;
  std::uint64_t data = 0, parties = 0;
  for (const auto& obs : net.auditor().observations()) {
    if (obs.observer != kOutsider || !obs.plaintext) continue;
    if (obs.label.find("/data") != std::string::npos) data += obs.bytes;
    if (obs.label.find("/parties") != std::string::npos) {
      parties += obs.bytes;
    }
  }
  result.outsider_data = data;
  result.outsider_parties = parties;
  return result;
}

void print(const char* platform, const RunResult& r) {
  std::printf("%-10s %6.1f tx/s   %8llu net bytes   %10llu B   %12llu B\n",
              platform,
              r.seconds > 0 ? static_cast<double>(r.committed) / r.seconds
                            : 0.0,
              static_cast<unsigned long long>(r.net_bytes),
              static_cast<unsigned long long>(r.outsider_data),
              static_cast<unsigned long long>(r.outsider_parties));
}

}  // namespace

int main() {
  std::printf("Cross-platform custom scalability test — %zu bilateral "
              "trades (80%% confidential) among 3 banks;\n"
              "'%s' is onboarded but party to nothing.\n\n",
              kTrades, kOutsider);
  std::printf("%-10s %-12s %-18s %-14s %s\n", "platform", "throughput",
              "network traffic", "outsider:data", "outsider:parties");
  std::printf("%s\n", std::string(86, '-').c_str());
  print("Fabric", run_fabric());
  print("Corda", run_corda());
  print("Quorum", run_quorum());
  std::printf(
      "\nExpected shape: zero outsider visibility on Fabric (channels) and\n"
      "Corda (p2p); on Quorum the outsider reads every public trade's data\n"
      "and EVERY trade's participant list. Throughput differences reflect\n"
      "each platform's signature/dissemination work per transaction.\n");
  return 0;
}
