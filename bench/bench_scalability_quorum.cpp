// E6 — Quorum performance (§3.4 / [5]).
//
// Series reproduced:
//   * public vs private transaction throughput — private transactions
//     pay for transaction-manager dissemination, so public > private;
//   * private tx cost vs recipient-set size — the gap grows with the
//     number of participants;
//   * network bytes per private tx vs participants.
#include <benchmark/benchmark.h>

#include "platforms/quorum/quorum.hpp"

namespace {

using namespace veil;
using common::to_bytes;

void BM_QuorumPublicTx(benchmark::State& state) {
  net::SimNetwork net{common::Rng(1)};
  common::Rng rng(2);
  quorum::QuorumNetwork quorum(net, crypto::Group::test_group(), rng, 1);
  for (int i = 0; i < 8; ++i) quorum.add_node("N" + std::to_string(i));
  const common::Bytes value(16384, 0x42);
  int seq = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(quorum.submit_public(
        "N0", {{"k" + std::to_string(seq++), value, false}}));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_QuorumPublicTx)->Unit(benchmark::kMicrosecond);

void BM_QuorumPrivateTxVsRecipients(benchmark::State& state) {
  const int recipients = static_cast<int>(state.range(0));
  net::SimNetwork net{common::Rng(3)};
  common::Rng rng(4);
  quorum::QuorumNetwork quorum(net, crypto::Group::test_group(), rng, 1);
  for (int i = 0; i < 8; ++i) quorum.add_node("N" + std::to_string(i));
  std::set<std::string> to;
  for (int i = 1; i <= recipients; ++i) to.insert("N" + std::to_string(i));
  const common::Bytes value(16384, 0x42);
  int seq = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(quorum.submit_private(
        "N0", to, {{"k" + std::to_string(seq++), value, false}}));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["recipients"] = recipients;
}
BENCHMARK(BM_QuorumPrivateTxVsRecipients)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(7)
    ->Unit(benchmark::kMicrosecond);

void BM_QuorumNetworkBytesPerPrivateTx(benchmark::State& state) {
  const int recipients = static_cast<int>(state.range(0));
  net::SimNetwork net{common::Rng(5)};
  common::Rng rng(6);
  quorum::QuorumNetwork quorum(net, crypto::Group::test_group(), rng, 1);
  for (int i = 0; i < 8; ++i) quorum.add_node("N" + std::to_string(i));
  std::set<std::string> to;
  for (int i = 1; i <= recipients; ++i) to.insert("N" + std::to_string(i));
  const common::Bytes value(1024, 0x42);
  int seq = 0;
  std::uint64_t bytes_before = net.stats().bytes_sent;
  std::uint64_t txs = 0;
  for (auto _ : state) {
    quorum.submit_private("N0", to,
                          {{"k" + std::to_string(seq++), value, false}});
    ++txs;
  }
  const std::uint64_t total = net.stats().bytes_sent - bytes_before;
  state.counters["net_bytes_per_tx"] =
      txs ? static_cast<double>(total) / static_cast<double>(txs) : 0.0;
  state.counters["recipients"] = recipients;
}
BENCHMARK(BM_QuorumNetworkBytesPerPrivateTx)->Arg(1)->Arg(4)->Arg(7)
    ->Unit(benchmark::kMicrosecond);

void BM_QuorumBlockSealing(benchmark::State& state) {
  const int block_size = static_cast<int>(state.range(0));
  net::SimNetwork net{common::Rng(7)};
  common::Rng rng(8);
  quorum::QuorumNetwork quorum(net, crypto::Group::test_group(), rng,
                               static_cast<std::size_t>(block_size));
  for (int i = 0; i < 4; ++i) quorum.add_node("N" + std::to_string(i));
  const common::Bytes value(128, 0x42);
  int seq = 0;
  for (auto _ : state) {
    for (int i = 0; i < block_size; ++i) {
      quorum.submit_public("N0",
                           {{"k" + std::to_string(seq++), value, false}});
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          block_size);
  state.counters["block_size"] = block_size;
}
BENCHMARK(BM_QuorumBlockSealing)->Arg(1)->Arg(8)->Arg(32)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
