// E7 — mechanism cost ablation (google-benchmark).
//
// Quantifies the §2 maturity/feasibility claims: symmetric encryption is
// cheap; Merkle tear-offs add hashing only; sigma-protocol ZKPs cost
// milliseconds; Paillier homomorphic encryption is orders of magnitude
// above AES; MPC adds quadratic communication. The paper asserts this
// ordering qualitatively — this bench measures it.
#include <benchmark/benchmark.h>

#include "crypto/aes.hpp"
#include "crypto/merkle.hpp"
#include "crypto/montgomery.hpp"
#include "crypto/paillier.hpp"
#include "crypto/shamir.hpp"
#include "crypto/zkp.hpp"
#include "mpc/protocol.hpp"
#include "tee/enclave.hpp"

namespace {

using namespace veil;
using common::Bytes;
using common::Rng;

// RFC 3526 group 14 (2048-bit MODP) prime — the reference hard modulus
// for the bignum hot-path benchmarks below.
const char* const kRfc3526Group14P =
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05"
    "98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB"
    "9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
    "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718"
    "3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFFFFFFFFFF";

// Full-width modular exponentiation mod the RFC 3526 2048-bit prime: the
// dominant cost inside Paillier, ElGamal, ZKPs and credential issuance.
// Seed square-and-multiply measured ~103 ms/op on the reference machine;
// the Montgomery windowed path must stay >= 5x below that.
void BM_ModPow_2048(benchmark::State& state) {
  Rng rng(42);
  const crypto::BigInt p = crypto::BigInt::from_hex(kRfc3526Group14P);
  const crypto::BigInt base = crypto::BigInt::random_below(rng, p);
  const crypto::BigInt exp = crypto::BigInt::random_bits(rng, 2048);
  for (auto _ : state) {
    benchmark::DoNotOptimize(base.mod_pow(exp, p));
  }
}
BENCHMARK(BM_ModPow_2048)->Unit(benchmark::kMillisecond);

// One 2048-bit Montgomery product (REDC), the inner-loop unit of every
// exponentiation above.
void BM_MontgomeryMul(benchmark::State& state) {
  Rng rng(43);
  const crypto::BigInt p = crypto::BigInt::from_hex(kRfc3526Group14P);
  const auto ctx = crypto::MontgomeryCtx::create(p);
  const crypto::BigInt a = ctx->to_mont(crypto::BigInt::random_below(rng, p));
  const crypto::BigInt b = ctx->to_mont(crypto::BigInt::random_below(rng, p));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx->mul(a, b));
  }
}
BENCHMARK(BM_MontgomeryMul);

// Plain 2048x2048-bit multiply (Karatsuba above the limb threshold).
void BM_BigIntMul_2048(benchmark::State& state) {
  Rng rng(44);
  const crypto::BigInt a = crypto::BigInt::random_bits(rng, 2048);
  const crypto::BigInt b = crypto::BigInt::random_bits(rng, 2048);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a * b);
  }
}
BENCHMARK(BM_BigIntMul_2048);

// Fixed-base generator exponentiation through the precomputed table, as
// used by Pedersen commitments, Schnorr signing and ElGamal keygen.
void BM_FixedBasePowG(benchmark::State& state) {
  Rng rng(45);
  const crypto::Group& group = crypto::Group::default_group();
  const crypto::BigInt e = group.random_scalar(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(group.pow_g(e));
  }
}
BENCHMARK(BM_FixedBasePowG);

void BM_Sha256_1KiB(benchmark::State& state) {
  Rng rng(1);
  const Bytes data = rng.next_bytes(1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::sha256(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_Sha256_1KiB);

void BM_AesSeal_1KiB(benchmark::State& state) {
  Rng rng(2);
  const Bytes key = rng.next_bytes(32);
  const Bytes data = rng.next_bytes(1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::seal(key, data, rng.next_bytes(16)));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_AesSeal_1KiB);

void BM_AesOpen_1KiB(benchmark::State& state) {
  Rng rng(3);
  const Bytes key = rng.next_bytes(32);
  const Bytes sealed = crypto::seal(key, rng.next_bytes(1024), rng.next_bytes(16));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::open(key, sealed));
  }
}
BENCHMARK(BM_AesOpen_1KiB);

// --- Symmetric kernel throughput (64 KiB buffers, MB/s) --------------------
// One benchmark per available kernel, registered conditionally so the
// JSON snapshot only reports kernels this machine can actually run.

void aes_ctr_kernel_bench(benchmark::State& state, crypto::AesKernel kernel) {
  crypto::set_aes_kernel(kernel);
  Rng rng(8);
  const Bytes key = rng.next_bytes(32);
  const Bytes nonce = rng.next_bytes(16);
  const Bytes data = rng.next_bytes(64 * 1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::aes_ctr(key, nonce, data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
  state.SetLabel(crypto::aes_kernel_name());
  crypto::set_aes_kernel(crypto::AesKernel::Auto);
}

void sha256_kernel_bench(benchmark::State& state, crypto::Sha256Kernel kernel) {
  crypto::set_sha256_kernel(kernel);
  Rng rng(9);
  const Bytes data = rng.next_bytes(64 * 1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::sha256(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
  state.SetLabel(crypto::sha256_kernel_name());
  crypto::set_sha256_kernel(crypto::Sha256Kernel::Auto);
}

void register_symmetric_kernel_benches() {
  benchmark::RegisterBenchmark("BM_AesCtr_64KiB/reference",
                               aes_ctr_kernel_bench,
                               crypto::AesKernel::Reference);
  benchmark::RegisterBenchmark("BM_AesCtr_64KiB/ttable", aes_ctr_kernel_bench,
                               crypto::AesKernel::TTable);
  crypto::set_aes_kernel(crypto::AesKernel::AesNi);
  if (crypto::active_aes_kernel() == crypto::AesKernel::AesNi) {
    benchmark::RegisterBenchmark("BM_AesCtr_64KiB/aesni", aes_ctr_kernel_bench,
                                 crypto::AesKernel::AesNi);
  }
  crypto::set_aes_kernel(crypto::AesKernel::Auto);

  benchmark::RegisterBenchmark("BM_Sha256_64KiB/scalar", sha256_kernel_bench,
                               crypto::Sha256Kernel::Scalar);
  crypto::set_sha256_kernel(crypto::Sha256Kernel::ShaNi);
  if (crypto::active_sha256_kernel() == crypto::Sha256Kernel::ShaNi) {
    benchmark::RegisterBenchmark("BM_Sha256_64KiB/sha_ni", sha256_kernel_bench,
                                 crypto::Sha256Kernel::ShaNi);
  }
  crypto::set_sha256_kernel(crypto::Sha256Kernel::Auto);
}

const bool kSymmetricBenchesRegistered = [] {
  register_symmetric_kernel_benches();
  return true;
}();

void BM_SchnorrSign(benchmark::State& state) {
  Rng rng(4);
  const crypto::Group& group = crypto::Group::default_group();
  const crypto::KeyPair kp = crypto::KeyPair::generate(group, rng);
  const Bytes msg = rng.next_bytes(256);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kp.sign(msg));
  }
}
BENCHMARK(BM_SchnorrSign);

void BM_SchnorrVerify(benchmark::State& state) {
  Rng rng(5);
  const crypto::Group& group = crypto::Group::default_group();
  const crypto::KeyPair kp = crypto::KeyPair::generate(group, rng);
  const Bytes msg = rng.next_bytes(256);
  const auto sig = kp.sign(msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::verify(group, kp.public_key(), msg, sig));
  }
}
BENCHMARK(BM_SchnorrVerify);

void BM_MerkleBuild(benchmark::State& state) {
  Rng rng(6);
  std::vector<Bytes> leaves;
  for (int i = 0; i < state.range(0); ++i) leaves.push_back(rng.next_bytes(128));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::MerkleTree::build(leaves));
  }
}
BENCHMARK(BM_MerkleBuild)->Arg(8)->Arg(64)->Arg(512);

void BM_TearOffCreateVerify(benchmark::State& state) {
  Rng rng(7);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<Bytes> leaves, salts;
  for (std::size_t i = 0; i < n; ++i) {
    leaves.push_back(rng.next_bytes(128));
    salts.push_back(rng.next_bytes(16));
  }
  const auto tree = crypto::MerkleTree::build(leaves, salts);
  for (auto _ : state) {
    const auto torn = crypto::TearOff::create(leaves, salts, {0});
    benchmark::DoNotOptimize(torn.verify_against(tree.root()));
  }
}
BENCHMARK(BM_TearOffCreateVerify)->Arg(8)->Arg(64)->Arg(512);

void BM_ZkpRangeProve(benchmark::State& state) {
  Rng rng(8);
  const crypto::Group& group = crypto::Group::test_group();
  const crypto::Pedersen pedersen(group);
  const std::size_t bits = static_cast<std::size_t>(state.range(0));
  auto [commitment, opening] = pedersen.commit(crypto::BigInt(100), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::prove_range(
        group, commitment, opening, bits, common::to_bytes("b"), rng));
  }
}
BENCHMARK(BM_ZkpRangeProve)->Arg(8)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_ZkpRangeVerify(benchmark::State& state) {
  Rng rng(9);
  const crypto::Group& group = crypto::Group::test_group();
  const crypto::Pedersen pedersen(group);
  const std::size_t bits = static_cast<std::size_t>(state.range(0));
  auto [commitment, opening] = pedersen.commit(crypto::BigInt(100), rng);
  const auto proof = crypto::prove_range(group, commitment, opening, bits,
                                         common::to_bytes("b"), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::verify_range(group, commitment, proof,
                                                  bits, common::to_bytes("b")));
  }
}
BENCHMARK(BM_ZkpRangeVerify)->Arg(8)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_PaillierEncrypt(benchmark::State& state) {
  Rng rng(10);
  const auto keys = crypto::PaillierKeyPair::generate(
      rng, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        crypto::paillier_encrypt(keys.public_key(), crypto::BigInt(123456), rng));
  }
}
BENCHMARK(BM_PaillierEncrypt)->Arg(128)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_PaillierAdd(benchmark::State& state) {
  Rng rng(11);
  const auto keys = crypto::PaillierKeyPair::generate(rng, 256);
  const auto a = crypto::paillier_encrypt(keys.public_key(), crypto::BigInt(1), rng);
  const auto b = crypto::paillier_encrypt(keys.public_key(), crypto::BigInt(2), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::paillier_add(keys.public_key(), a, b));
  }
}
BENCHMARK(BM_PaillierAdd);

void BM_PaillierDecrypt(benchmark::State& state) {
  Rng rng(12);
  const auto keys = crypto::PaillierKeyPair::generate(rng, 256);
  const auto ct = crypto::paillier_encrypt(keys.public_key(), crypto::BigInt(9), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(keys.decrypt(ct));
  }
}
BENCHMARK(BM_PaillierDecrypt)->Unit(benchmark::kMillisecond);

void BM_MpcSecureSum(benchmark::State& state) {
  const crypto::Shamir field(
      crypto::BigInt::from_decimal("2305843009213693951"));
  const int parties = static_cast<int>(state.range(0));
  for (auto _ : state) {
    net::SimNetwork net{Rng(13)};
    Rng rng(14);
    mpc::SecureSum protocol(field, net);
    std::map<std::string, crypto::BigInt> inputs;
    for (int i = 0; i < parties; ++i) {
      inputs["P" + std::to_string(i)] =
          crypto::BigInt(static_cast<std::uint64_t>(i));
    }
    benchmark::DoNotOptimize(protocol.run(inputs, rng));
  }
  state.counters["messages"] = 2.0 * parties * (parties - 1);
}
BENCHMARK(BM_MpcSecureSum)->Arg(3)->Arg(5)->Arg(9)->Unit(benchmark::kMillisecond);

void BM_TeeSealedInvoke(benchmark::State& state) {
  Rng rng(15);
  net::LeakageAuditor auditor;
  tee::Manufacturer manufacturer(crypto::Group::test_group(), rng);
  tee::Enclave enclave("host", manufacturer, "d", auditor, rng, 0);
  enclave.load(std::make_shared<contracts::FunctionContract>(
      "cc", 1, [](contracts::ContractContext& ctx, const std::string&) {
        ctx.put("k", common::to_bytes("v"));
        return contracts::InvokeStatus::Ok;
      }));
  tee::EnclaveClient client(crypto::Group::test_group(), rng);
  client.accept(enclave.open_session(client.public_key(), rng));
  const tee::InvokeRequest request{"cc", "go", common::to_bytes("x")};
  for (auto _ : state) {
    const auto sealed = client.seal(request, rng);
    benchmark::DoNotOptimize(enclave.invoke(sealed));
  }
}
BENCHMARK(BM_TeeSealedInvoke);

void BM_TeeAttest(benchmark::State& state) {
  Rng rng(16);
  net::LeakageAuditor auditor;
  tee::Manufacturer manufacturer(crypto::Group::test_group(), rng);
  tee::Enclave enclave("host", manufacturer, "d", auditor, rng, 0);
  const Bytes nonce = rng.next_bytes(16);
  for (auto _ : state) {
    const auto quote = enclave.attest(nonce);
    benchmark::DoNotOptimize(tee::verify_quote(
        crypto::Group::test_group(), manufacturer.root_key(), quote,
        enclave.measurement(), nonce, 0));
  }
}
BENCHMARK(BM_TeeAttest);

}  // namespace

BENCHMARK_MAIN();
