// Authenticated state-store cost study: what the Merkle-trie backend
// buys at million-account scale.
//
//   * BM_TrieRootUpdate — per-block commit cost on a COW copy: 64 writes
//     plus digest() against 10^4/10^5/10^6 resident accounts. The trie
//     re-hashes only the touched paths, so the cost stays flat (within
//     the depth ratio, ~log16 n) as the state grows.
//   * BM_LegacyFullRehash — the pre-trie baseline: the same 64 writes
//     into a flat map, then digest = sha256(full canonical encoding).
//     Linear in state size; the quoted before/after for the tentpole.
//   * BM_DeltaRejoinBytes — the transfer a 1-block-lagged rejoiner pays:
//     encoded bytes of the trie nodes the laggard lacks (exactly what
//     TrieSync ships) vs the full node image a bootstrap would move.
//     ~O(touched keys x depth), independent of account count.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <string>
#include <unordered_set>

#include "common/serialize.hpp"
#include "crypto/sha256.hpp"
#include "ledger/state.hpp"
#include "ledger/state_trie.hpp"

namespace {

using namespace veil;
using common::to_bytes;

constexpr std::size_t kWritesPerBlock = 64;

std::string account_key(std::size_t i) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "acct/%08zu", i);
  return buf;
}

common::Bytes account_value(std::size_t i) {
  return to_bytes("balance-" + std::to_string(i % 97));
}

/// One resident state per account count, built once and shared across
/// benchmark families (10^6 accounts take seconds to populate).
const ledger::WorldState& prepared_state(std::size_t keys) {
  static std::map<std::size_t, ledger::WorldState> cache;
  auto it = cache.find(keys);
  if (it == cache.end()) {
    ledger::WorldState state;
    for (std::size_t i = 0; i < keys; ++i) {
      state.put(account_key(i), account_value(i));
    }
    it = cache.emplace(keys, std::move(state)).first;
  }
  return it->second;
}

void BM_TrieRootUpdate(benchmark::State& state) {
  const auto keys = static_cast<std::size_t>(state.range(0));
  const ledger::WorldState& resident = prepared_state(keys);
  std::size_t block = 0;
  for (auto _ : state) {
    // COW copy: O(1), shares every node with the resident state — the
    // same shape as committing a block against a checkpointed state.
    ledger::WorldState ws = resident;
    for (std::size_t w = 0; w < kWritesPerBlock; ++w) {
      const std::size_t i = (block * kWritesPerBlock + w * 131) % keys;
      ws.put(account_key(i), to_bytes("updated-" + std::to_string(block)));
    }
    benchmark::DoNotOptimize(ws.digest());
    ++block;
  }
  state.counters["state_keys"] = static_cast<double>(keys);
  state.counters["writes_per_block"] = static_cast<double>(kWritesPerBlock);
}
BENCHMARK(BM_TrieRootUpdate)
    ->Arg(10000)
    ->Arg(100000)
    ->Arg(1000000)
    ->Unit(benchmark::kMicrosecond);

/// The legacy digest: canonical encoding of every entry, hashed whole.
common::Bytes legacy_encode(
    const std::map<std::string, std::pair<common::Bytes, std::uint64_t>>& m) {
  common::Writer w;
  w.varint(m.size());
  for (const auto& [key, entry] : m) {
    w.str(key);
    w.bytes(entry.first);
    w.u64(entry.second);
  }
  return w.take();
}

void BM_LegacyFullRehash(benchmark::State& state) {
  const auto keys = static_cast<std::size_t>(state.range(0));
  static std::map<std::size_t,
                  std::map<std::string, std::pair<common::Bytes,
                                                  std::uint64_t>>>
      cache;
  auto it = cache.find(keys);
  if (it == cache.end()) {
    std::map<std::string, std::pair<common::Bytes, std::uint64_t>> m;
    for (std::size_t i = 0; i < keys; ++i) {
      m.emplace(account_key(i), std::make_pair(account_value(i), 1u));
    }
    it = cache.emplace(keys, std::move(m)).first;
  }
  auto& map = it->second;
  std::size_t block = 0;
  for (auto _ : state) {
    for (std::size_t w = 0; w < kWritesPerBlock; ++w) {
      const std::size_t i = (block * kWritesPerBlock + w * 131) % keys;
      auto& entry = map[account_key(i)];
      entry.first = to_bytes("updated-" + std::to_string(block));
      ++entry.second;
    }
    benchmark::DoNotOptimize(crypto::sha256(legacy_encode(map)));
    ++block;
  }
  state.counters["state_keys"] = static_cast<double>(keys);
  state.counters["writes_per_block"] = static_cast<double>(kWritesPerBlock);
}
BENCHMARK(BM_LegacyFullRehash)
    ->Arg(10000)
    ->Arg(100000)
    ->Arg(1000000)
    ->Unit(benchmark::kMicrosecond);

struct DeltaCost {
  double delta_nodes = 0;
  double delta_bytes = 0;
  double image_nodes = 0;
  double image_bytes = 0;
};

/// Bytes a 1-block-lagged joiner fetches: nodes of (resident + one block
/// of writes) missing from the resident image — what TrieSync ships.
/// Computed once per size; the big intermediate stores are freed here.
const DeltaCost& delta_cost(std::size_t keys) {
  static std::map<std::size_t, DeltaCost> cache;
  auto it = cache.find(keys);
  if (it == cache.end()) {
    const ledger::WorldState& prior = prepared_state(keys);
    ledger::WorldState next = prior;  // COW
    for (std::size_t w = 0; w < kWritesPerBlock; ++w) {
      next.put(account_key((w * 131) % keys), to_bytes("touched"));
    }
    std::unordered_set<crypto::Digest, ledger::DigestHash> prior_hashes;
    prior.trie().node_hashes(prior_hashes);
    ledger::NodeStore image;
    next.trie().collect_nodes(image);
    DeltaCost cost;
    for (const auto& [hash, bytes] : image) {
      cost.image_nodes += 1;
      cost.image_bytes += static_cast<double>(bytes.size());
      if (!prior_hashes.contains(hash)) {
        cost.delta_nodes += 1;
        cost.delta_bytes += static_cast<double>(bytes.size());
      }
    }
    it = cache.emplace(keys, cost).first;
  }
  return it->second;
}

void BM_DeltaRejoinBytes(benchmark::State& state) {
  const auto keys = static_cast<std::size_t>(state.range(0));
  const DeltaCost& cost = delta_cost(keys);
  for (auto _ : state) {
    benchmark::DoNotOptimize(&cost);
  }
  state.counters["state_keys"] = static_cast<double>(keys);
  state.counters["touched_keys"] = static_cast<double>(kWritesPerBlock);
  state.counters["delta_nodes"] = cost.delta_nodes;
  state.counters["delta_bytes"] = cost.delta_bytes;
  state.counters["full_image_nodes"] = cost.image_nodes;
  state.counters["full_image_bytes"] = cost.image_bytes;
}
BENCHMARK(BM_DeltaRejoinBytes)
    ->Arg(10000)
    ->Arg(100000)
    ->Arg(1000000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
