#include "audit/evidence.hpp"

#include "common/error.hpp"
#include "common/serialize.hpp"
#include "crypto/sha256.hpp"

namespace veil::audit {

std::string to_string(Misbehavior kind) {
  switch (kind) {
    case Misbehavior::MessageTampering:
      return "message tampering";
    case Misbehavior::OrdererTampering:
      return "orderer tampering";
    case Misbehavior::EndorserEquivocation:
      return "endorser equivocation";
    case Misbehavior::NotaryEquivocation:
      return "notary equivocation";
    case Misbehavior::PrivateReplay:
      return "private-transaction replay";
    case Misbehavior::DoubleSpendAttempt:
      return "double-spend attempt";
    case Misbehavior::SnapshotTampering:
      return "snapshot tampering";
    case Misbehavior::SnapshotEquivocation:
      return "snapshot equivocation";
    case Misbehavior::CoordinatorEquivocation:
      return "coordinator equivocation";
  }
  return "unknown misbehavior";
}

common::Bytes Evidence::to_be_signed() const {
  common::Writer w;
  w.u8(static_cast<std::uint8_t>(kind));
  w.str(accused);
  w.str(reporter);
  w.str(detail);
  w.u64(detected_at);
  w.bytes(proof_a);
  w.bytes(proof_b);
  return w.take();
}

void Evidence::sign(const crypto::KeyPair& reporter_key) {
  reporter_signature = reporter_key.sign(to_be_signed());
}

bool Evidence::verify(const crypto::Group& group,
                      const crypto::PublicKey& reporter_pub) const {
  return crypto::verify(group, reporter_pub, to_be_signed(),
                        reporter_signature);
}

common::Bytes Evidence::encode() const {
  common::Writer w;
  w.raw(to_be_signed());
  w.bytes(reporter_signature.encode());
  return w.take();
}

Evidence Evidence::decode(common::BytesView data) {
  common::Reader r(data);
  Evidence e;
  const std::uint8_t kind = r.u8();
  if (kind > static_cast<std::uint8_t>(Misbehavior::CoordinatorEquivocation)) {
    throw common::Error("evidence: unknown misbehavior kind");
  }
  e.kind = static_cast<Misbehavior>(kind);
  e.accused = r.str();
  e.reporter = r.str();
  e.detail = r.str();
  e.detected_at = r.u64();
  e.proof_a = r.bytes();
  e.proof_b = r.bytes();
  e.reporter_signature = crypto::Signature::decode(r.bytes());
  if (!r.done()) throw common::Error("evidence: trailing bytes");
  return e;
}

std::string Evidence::dedupe_key() const {
  common::Writer w;
  w.u8(static_cast<std::uint8_t>(kind));
  w.str(accused);
  w.bytes(proof_a);
  w.bytes(proof_b);
  const crypto::Digest d = crypto::sha256(w.data());
  return std::string(d.begin(), d.end());
}

bool EvidenceLog::add(Evidence e) {
  if (!seen_.insert(e.dedupe_key()).second) return false;
  entries_.push_back(std::move(e));
  return true;
}

bool EvidenceLog::convicted(const std::string& accused) const {
  for (const Evidence& e : entries_) {
    if (e.accused == accused) return true;
  }
  return false;
}

std::vector<Evidence> EvidenceLog::against(const std::string& accused) const {
  std::vector<Evidence> out;
  for (const Evidence& e : entries_) {
    if (e.accused == accused) out.push_back(e);
  }
  return out;
}

common::Bytes EvidenceLog::digest() const {
  crypto::Sha256 hasher;
  for (const Evidence& e : entries_) {
    const common::Bytes enc = e.encode();
    hasher.update(enc);
  }
  return crypto::digest_bytes(hasher.finalize());
}

}  // namespace veil::audit
