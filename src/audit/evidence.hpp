// Signed, serializable proof of misbehavior.
//
// The Byzantine tier (net/fault.hpp) lets principals actively lie:
// tamper, equivocate, replay, silence. Detection alone is not enough in a
// permissioned deployment — a detecting party must be able to hand a
// third party (a regulator, the consortium operator) a self-contained,
// verifiable record of WHO misbehaved and WHAT the proof is. An Evidence
// record carries two conflicting artifacts (both typically signed by the
// accused: two transactions with conflicting endorsements, two notary
// attestations over the same consumed state, two private transactions
// with the same nullifier) plus the reporter's signature over the whole
// record, so evidence cannot be forged or repudiated in transit.
//
// EvidenceLog is the per-deployment registry. Adding is idempotent on
// (kind, accused, proof digest) so WAL replay and resync cannot
// double-convict, and the log exposes a canonical digest for transcript
// equality assertions in the chaos suite.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/clock.hpp"
#include "crypto/signature.hpp"

namespace veil::audit {

enum class Misbehavior : std::uint8_t {
  MessageTampering,      // payload hash mismatch on an authenticated link
  OrdererTampering,      // orderer output fails endorsement verification
  EndorserEquivocation,  // one endorser, one proposal, conflicting rwsets
  NotaryEquivocation,    // notary signed conflicting consumes of a state
  PrivateReplay,         // private-tx nullifier seen twice on chain
  DoubleSpendAttempt,    // client re-submitted an already-consumed state
  SnapshotTampering,     // served chunk contradicts its offered root
  SnapshotEquivocation,  // offered root disavowed by a quorum of peers
  CoordinatorEquivocation,  // 2PC coordinator signed commit AND abort
};

/// Human-readable name, for refusal transcripts and reports.
std::string to_string(Misbehavior kind);

struct Evidence {
  Misbehavior kind = Misbehavior::MessageTampering;
  std::string accused;
  std::string reporter;
  std::string detail;  // one-line human-readable account
  common::SimTime detected_at = 0;
  common::Bytes proof_a;  // first conflicting artifact (signed by accused)
  common::Bytes proof_b;  // second conflicting artifact
  crypto::Signature reporter_signature;

  /// Canonical encoding of everything except the reporter signature.
  common::Bytes to_be_signed() const;
  void sign(const crypto::KeyPair& reporter_key);
  bool verify(const crypto::Group& group,
              const crypto::PublicKey& reporter_pub) const;

  common::Bytes encode() const;
  /// Throws common::Error on malformed or truncated input.
  static Evidence decode(common::BytesView data);

  /// Dedupe key: kind, accused, and the proof digest. Deliberately
  /// excludes reporter and time so independent detections of the same
  /// offense collapse to one conviction.
  std::string dedupe_key() const;
};

class EvidenceLog {
 public:
  /// Record `e`; returns false (and drops it) when an entry with the
  /// same dedupe_key() is already present — detection re-running during
  /// WAL replay or resync must not double-convict.
  bool add(Evidence e);

  const std::vector<Evidence>& entries() const { return entries_; }
  std::size_t count() const { return entries_.size(); }
  bool convicted(const std::string& accused) const;
  std::vector<Evidence> against(const std::string& accused) const;

  /// SHA-256 over the concatenated entry encodings, in insertion order.
  /// Two runs with the same seed must produce identical digests.
  common::Bytes digest() const;

 private:
  std::vector<Evidence> entries_;
  std::set<std::string> seen_;
};

}  // namespace veil::audit
