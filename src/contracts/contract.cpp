#include "contracts/contract.hpp"

#include "common/serialize.hpp"

namespace veil::contracts {

ContractContext::ContractContext(const ledger::WorldState& state,
                                 common::BytesView args)
    : state_(&state), args_(args) {}

std::optional<common::Bytes> ContractContext::get(const std::string& key) {
  const auto entry = state_->get(key);
  reads_.push_back(
      ledger::ReadAccess{key, entry ? entry->version : 0});
  if (!entry) return std::nullopt;
  return entry->value;
}

void ContractContext::put(const std::string& key, common::Bytes value) {
  writes_.push_back(ledger::KvWrite{key, std::move(value), false});
}

void ContractContext::del(const std::string& key) {
  writes_.push_back(ledger::KvWrite{key, {}, true});
}

crypto::Digest SmartContract::code_digest() const {
  common::Writer w;
  w.str(name());
  w.u32(version());
  return crypto::sha256(w.data());
}

FunctionContract::FunctionContract(std::string name, std::uint32_t version,
                                   Handler handler)
    : name_(std::move(name)), version_(version), handler_(std::move(handler)) {}

InvokeStatus FunctionContract::invoke(ContractContext& ctx,
                                      const std::string& action) {
  return handler_(ctx, action);
}

}  // namespace veil::contracts
