// Contract registry: install-on-involved-nodes-only (§2.3).
//
// Installing a contract on a node reveals its code to that node (and its
// administrator) — recorded in the leakage auditor under
// "contract/<name>/code". Keeping the install set minimal is the
// structural mechanism for business-logic confidentiality that all three
// platforms support in some form (Table 1).
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>

#include "contracts/contract.hpp"
#include "net/leakage.hpp"

namespace veil::contracts {

class ContractRegistry {
 public:
  explicit ContractRegistry(net::LeakageAuditor& auditor)
      : auditor_(&auditor) {}

  /// Install on a node. The node (admin) now sees the code.
  void install(const std::string& node,
               std::shared_ptr<SmartContract> contract);

  void uninstall(const std::string& node, const std::string& contract_name);

  bool installed(const std::string& node,
                 const std::string& contract_name) const;

  /// nullptr if not installed on that node.
  std::shared_ptr<SmartContract> find(const std::string& node,
                                      const std::string& contract_name) const;

  /// All nodes holding the contract — the code-visibility set.
  std::set<std::string> nodes_with(const std::string& contract_name) const;

 private:
  net::LeakageAuditor* auditor_;
  std::map<std::string, std::map<std::string, std::shared_ptr<SmartContract>>>
      installs_;  // node -> name -> contract
};

}  // namespace veil::contracts
