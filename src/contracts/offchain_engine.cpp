#include "contracts/offchain_engine.hpp"

namespace veil::contracts {

OffChainEngine::OffChainEngine(std::string owner, net::LeakageAuditor& auditor)
    : owner_(std::move(owner)), auditor_(&auditor) {}

void OffChainEngine::load(std::shared_ptr<SmartContract> contract) {
  auditor_->record(owner_, "contract/" + contract->name() + "/code",
                   contract->code_size());
  contracts_[contract->name()] = std::move(contract);
}

bool OffChainEngine::has(const std::string& contract_name) const {
  return contracts_.contains(contract_name);
}

std::optional<crypto::Digest> OffChainEngine::code_digest(
    const std::string& contract_name) const {
  const auto it = contracts_.find(contract_name);
  if (it == contracts_.end()) return std::nullopt;
  return it->second->code_digest();
}

std::optional<ExecutionResult> OffChainEngine::execute(
    const std::string& contract, const std::string& action,
    common::BytesView args, const ledger::WorldState& state,
    const std::string& channel) const {
  const auto it = contracts_.find(contract);
  if (it == contracts_.end()) return std::nullopt;

  ContractContext ctx(state, args);
  const InvokeStatus status = it->second->invoke(ctx, action);

  ExecutionResult result;
  result.status = status;
  if (status == InvokeStatus::Ok) {
    result.tx.channel = channel;
    // The ledger only ever sees the read/write stub — the business logic
    // name and code stay inside the engine.
    result.tx.contract = "rw-stub";
    result.tx.action = "apply";
    result.tx.reads = ctx.reads();
    result.tx.writes = ctx.writes();
  }
  return result;
}

bool OffChainEngine::versions_consistent(
    const std::vector<const OffChainEngine*>& engines,
    const std::string& contract) {
  std::optional<crypto::Digest> reference;
  for (const OffChainEngine* engine : engines) {
    const auto digest = engine->code_digest(contract);
    if (!digest) return false;  // an engine missing the code counts as drift
    if (!reference) {
      reference = digest;
    } else if (*reference != *digest) {
      return false;
    }
  }
  return true;
}

bool OffChainEngine::results_diverge(const ExecutionResult& a,
                                     const ExecutionResult& b) {
  if (a.status != b.status) return true;
  return a.tx.writes != b.tx.writes || a.tx.reads != b.tx.reads;
}

}  // namespace veil::contracts
