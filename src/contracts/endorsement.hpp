// Endorsement policies: AND / OR / K-of-N expressions over organizations.
//
// A policy states which parties must sign a transaction before it is
// valid (§2.3: "a list of parties that need to endorse or sign a
// transaction"). The set of orgs a policy mentions is also the minimum
// set of nodes that must hold the contract code — the coupling between
// endorsement breadth and code confidentiality that the Table 1 "install
// contract on involved nodes" row captures.
#pragma once

#include <memory>
#include <set>
#include <string>
#include <vector>

namespace veil::contracts {

class EndorsementPolicy {
 public:
  /// A single named org must endorse.
  static EndorsementPolicy require(std::string org);
  /// All sub-policies must be satisfied.
  static EndorsementPolicy all_of(std::vector<EndorsementPolicy> children);
  /// At least one sub-policy must be satisfied.
  static EndorsementPolicy any_of(std::vector<EndorsementPolicy> children);
  /// At least `k` sub-policies must be satisfied.
  static EndorsementPolicy k_of(std::size_t k,
                                std::vector<EndorsementPolicy> children);

  bool satisfied_by(const std::set<std::string>& endorsers) const;

  /// Every org the policy mentions (the maximal endorser set).
  std::set<std::string> mentioned_orgs() const;

  /// Human-readable form, e.g. "AND(BankA, OR(BankB, BankC))".
  std::string describe() const;

 private:
  enum class Kind { Require, All, Any, KOf };

  Kind kind_ = Kind::Require;
  std::string org_;
  std::size_t k_ = 0;
  std::vector<EndorsementPolicy> children_;
};

}  // namespace veil::contracts
