#include "contracts/endorsement.hpp"

#include <sstream>

#include "common/error.hpp"

namespace veil::contracts {

EndorsementPolicy EndorsementPolicy::require(std::string org) {
  EndorsementPolicy p;
  p.kind_ = Kind::Require;
  p.org_ = std::move(org);
  return p;
}

EndorsementPolicy EndorsementPolicy::all_of(
    std::vector<EndorsementPolicy> children) {
  if (children.empty()) {
    throw common::Error("EndorsementPolicy::all_of: empty");
  }
  EndorsementPolicy p;
  p.kind_ = Kind::All;
  p.children_ = std::move(children);
  return p;
}

EndorsementPolicy EndorsementPolicy::any_of(
    std::vector<EndorsementPolicy> children) {
  if (children.empty()) {
    throw common::Error("EndorsementPolicy::any_of: empty");
  }
  EndorsementPolicy p;
  p.kind_ = Kind::Any;
  p.children_ = std::move(children);
  return p;
}

EndorsementPolicy EndorsementPolicy::k_of(
    std::size_t k, std::vector<EndorsementPolicy> children) {
  if (k == 0 || k > children.size()) {
    throw common::Error("EndorsementPolicy::k_of: invalid k");
  }
  EndorsementPolicy p;
  p.kind_ = Kind::KOf;
  p.k_ = k;
  p.children_ = std::move(children);
  return p;
}

bool EndorsementPolicy::satisfied_by(
    const std::set<std::string>& endorsers) const {
  switch (kind_) {
    case Kind::Require:
      return endorsers.contains(org_);
    case Kind::All:
      for (const EndorsementPolicy& child : children_) {
        if (!child.satisfied_by(endorsers)) return false;
      }
      return true;
    case Kind::Any:
      for (const EndorsementPolicy& child : children_) {
        if (child.satisfied_by(endorsers)) return true;
      }
      return false;
    case Kind::KOf: {
      std::size_t satisfied = 0;
      for (const EndorsementPolicy& child : children_) {
        if (child.satisfied_by(endorsers)) ++satisfied;
      }
      return satisfied >= k_;
    }
  }
  return false;
}

std::set<std::string> EndorsementPolicy::mentioned_orgs() const {
  std::set<std::string> orgs;
  if (kind_ == Kind::Require) {
    orgs.insert(org_);
    return orgs;
  }
  for (const EndorsementPolicy& child : children_) {
    const std::set<std::string> sub = child.mentioned_orgs();
    orgs.insert(sub.begin(), sub.end());
  }
  return orgs;
}

std::string EndorsementPolicy::describe() const {
  std::ostringstream os;
  switch (kind_) {
    case Kind::Require:
      os << org_;
      break;
    case Kind::All:
    case Kind::Any:
    case Kind::KOf: {
      if (kind_ == Kind::All) os << "AND(";
      else if (kind_ == Kind::Any) os << "OR(";
      else os << k_ << "-of(";
      for (std::size_t i = 0; i < children_.size(); ++i) {
        if (i) os << ", ";
        os << children_[i].describe();
      }
      os << ")";
      break;
    }
  }
  return os.str();
}

}  // namespace veil::contracts
