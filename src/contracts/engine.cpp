#include "contracts/engine.hpp"

namespace veil::contracts {

std::optional<ExecutionResult> ExecutionEngine::execute(
    const std::string& node, const std::string& contract,
    const std::string& action, common::BytesView args,
    const ledger::WorldState& state, const std::string& channel) const {
  const std::shared_ptr<SmartContract> code = registry_->find(node, contract);
  if (!code) return std::nullopt;

  ContractContext ctx(state, args);
  const InvokeStatus status = code->invoke(ctx, action);

  ExecutionResult result;
  result.status = status;
  if (status == InvokeStatus::Ok) {
    result.tx.channel = channel;
    result.tx.contract = contract;
    result.tx.action = action;
    result.tx.reads = ctx.reads();
    result.tx.writes = ctx.writes();
    result.tx.payload.assign(args.begin(), args.end());
  }
  return result;
}

}  // namespace veil::contracts
