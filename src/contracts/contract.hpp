// Smart-contract interface (§2.3).
//
// A contract is deterministic logic that reads and writes versioned state
// and is versioned itself. Execution does not mutate the world state
// directly; it produces read/write sets captured in a Transaction, which
// only take effect when the ordered transaction commits (simulating the
// endorse -> order -> validate pipeline).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "common/bytes.hpp"
#include "ledger/state.hpp"
#include "ledger/transaction.hpp"

namespace veil::contracts {

/// Execution context handed to contract code: versioned reads, buffered
/// writes, and the invocation arguments.
class ContractContext {
 public:
  ContractContext(const ledger::WorldState& state, common::BytesView args);

  /// Read a key; the version observed is recorded in the read set.
  std::optional<common::Bytes> get(const std::string& key);

  void put(const std::string& key, common::Bytes value);
  void del(const std::string& key);

  common::BytesView args() const { return args_; }

  const std::vector<ledger::ReadAccess>& reads() const { return reads_; }
  const std::vector<ledger::KvWrite>& writes() const { return writes_; }

 private:
  const ledger::WorldState* state_;
  common::BytesView args_;
  std::vector<ledger::ReadAccess> reads_;
  std::vector<ledger::KvWrite> writes_;
};

enum class InvokeStatus { Ok, Rejected, UnknownAction };

class SmartContract {
 public:
  virtual ~SmartContract() = default;

  virtual const std::string& name() const = 0;
  virtual std::uint32_t version() const = 0;

  /// Execute `action`. Reads/writes go through the context.
  ///
  /// Concurrency contract: the endorsement fan-out may invoke the same
  /// contract object from several pool threads at once (one per
  /// endorsing org). Implementations must keep all per-invocation state
  /// in `ctx` / locals — a contract that mutates member state inside
  /// invoke() is a bug (and will trip the TSan CI job).
  virtual InvokeStatus invoke(ContractContext& ctx,
                              const std::string& action) = 0;

  /// Stable digest of the contract's logic. Two nodes running the same
  /// (name, version) must agree on it; it feeds TEE measurements and
  /// version-drift detection. Default: H(name || version).
  virtual crypto::Digest code_digest() const;

  /// Approximate size of the contract code in bytes (for leakage
  /// accounting of code distribution).
  virtual std::size_t code_size() const { return 512; }
};

/// Convenience concrete contract built from a handler function — keeps
/// examples and tests declarative.
class FunctionContract final : public SmartContract {
 public:
  using Handler =
      std::function<InvokeStatus(ContractContext&, const std::string&)>;

  FunctionContract(std::string name, std::uint32_t version, Handler handler);

  const std::string& name() const override { return name_; }
  std::uint32_t version() const override { return version_; }
  InvokeStatus invoke(ContractContext& ctx,
                      const std::string& action) override;

 private:
  std::string name_;
  std::uint32_t version_;
  Handler handler_;
};

}  // namespace veil::contracts
