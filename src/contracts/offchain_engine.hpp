// Off-chain execution engine (§2.3).
//
// Business logic runs outside the DLT: the ledger sees only read/write
// stubs, so the code is never distributed to other nodes (the engine
// owner is the only principal that observes it). The paper calls out two
// costs, both modelled here:
//
//  * Version control leaves the DLT layer — engines at different orgs
//    can drift; `versions_consistent` is the out-of-band check operators
//    must run, and drift manifests as mismatched write sets between
//    endorsers (detect_divergence).
//  * The implementation language is free — represented by contracts not
//    needing registry distribution at all.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "contracts/engine.hpp"
#include "net/leakage.hpp"

namespace veil::contracts {

class OffChainEngine {
 public:
  /// `owner` is the org operating this engine; only the owner observes
  /// the contract code.
  OffChainEngine(std::string owner, net::LeakageAuditor& auditor);

  /// Load business logic into this engine (out-of-band distribution).
  void load(std::shared_ptr<SmartContract> contract);

  bool has(const std::string& contract_name) const;

  /// Code digest of the loaded contract, for drift checks.
  std::optional<crypto::Digest> code_digest(
      const std::string& contract_name) const;

  /// Execute against `state`; the resulting transaction references the
  /// on-ledger stub contract "rw-stub" rather than the business logic.
  std::optional<ExecutionResult> execute(const std::string& contract,
                                         const std::string& action,
                                         common::BytesView args,
                                         const ledger::WorldState& state,
                                         const std::string& channel) const;

  const std::string& owner() const { return owner_; }

  /// True iff every engine holds the same code digest for `contract`.
  static bool versions_consistent(
      const std::vector<const OffChainEngine*>& engines,
      const std::string& contract);

  /// Compare two execution results for write-set divergence — how version
  /// drift is actually caught at endorsement time.
  static bool results_diverge(const ExecutionResult& a,
                              const ExecutionResult& b);

 private:
  std::string owner_;
  net::LeakageAuditor* auditor_;
  std::map<std::string, std::shared_ptr<SmartContract>> contracts_;
};

}  // namespace veil::contracts
