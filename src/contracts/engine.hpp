// On-ledger execution engine: run installed contract code against a
// node's world state and capture the read/write sets into a transaction
// draft. Endorsement collection and ordering are the platform's job.
#pragma once

#include <optional>
#include <string>

#include "contracts/contract.hpp"
#include "contracts/registry.hpp"
#include "ledger/state.hpp"
#include "ledger/transaction.hpp"

namespace veil::contracts {

struct ExecutionResult {
  InvokeStatus status = InvokeStatus::Rejected;
  ledger::Transaction tx;  // populated with reads/writes when status == Ok
};

class ExecutionEngine {
 public:
  explicit ExecutionEngine(const ContractRegistry& registry)
      : registry_(&registry) {}

  /// Execute `contract`::`action` using `node`'s installed copy over
  /// `state`. Returns nullopt if the contract is not installed on the
  /// node (the §2.3 boundary: a node without the code cannot execute or
  /// inspect it).
  std::optional<ExecutionResult> execute(const std::string& node,
                                         const std::string& contract,
                                         const std::string& action,
                                         common::BytesView args,
                                         const ledger::WorldState& state,
                                         const std::string& channel) const;

 private:
  const ContractRegistry* registry_;
};

}  // namespace veil::contracts
