#include "contracts/registry.hpp"

namespace veil::contracts {

void ContractRegistry::install(const std::string& node,
                               std::shared_ptr<SmartContract> contract) {
  auditor_->record(node, "contract/" + contract->name() + "/code",
                   contract->code_size());
  installs_[node][contract->name()] = std::move(contract);
}

void ContractRegistry::uninstall(const std::string& node,
                                 const std::string& contract_name) {
  const auto it = installs_.find(node);
  if (it != installs_.end()) it->second.erase(contract_name);
}

bool ContractRegistry::installed(const std::string& node,
                                 const std::string& contract_name) const {
  const auto it = installs_.find(node);
  return it != installs_.end() && it->second.contains(contract_name);
}

std::shared_ptr<SmartContract> ContractRegistry::find(
    const std::string& node, const std::string& contract_name) const {
  const auto it = installs_.find(node);
  if (it == installs_.end()) return nullptr;
  const auto jt = it->second.find(contract_name);
  if (jt == it->second.end()) return nullptr;
  return jt->second;
}

std::set<std::string> ContractRegistry::nodes_with(
    const std::string& contract_name) const {
  std::set<std::string> nodes;
  for (const auto& [node, contracts] : installs_) {
    if (contracts.contains(contract_name)) nodes.insert(node);
  }
  return nodes;
}

}  // namespace veil::contracts
