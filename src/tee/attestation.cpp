#include "tee/attestation.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/serialize.hpp"

namespace veil::tee {

common::Bytes AttestationQuote::to_be_signed() const {
  common::Writer w;
  w.str("veil.tee.quote");
  w.raw(common::BytesView(measurement.data(), measurement.size()));
  w.bytes(nonce);
  w.u64(device_cert.serial);
  return w.take();
}

common::Bytes AttestationQuote::encode() const {
  common::Writer w;
  w.raw(common::BytesView(measurement.data(), measurement.size()));
  w.bytes(nonce);
  w.bytes(device_cert.encode());
  w.bytes(quote_signature.encode());
  return w.take();
}

AttestationQuote AttestationQuote::decode(common::BytesView data) {
  common::Reader r(data);
  AttestationQuote quote;
  const common::Bytes measurement = r.raw(crypto::kSha256DigestSize);
  std::copy(measurement.begin(), measurement.end(),
            quote.measurement.begin());
  quote.nonce = r.bytes();
  quote.device_cert = pki::Certificate::decode(r.bytes());
  quote.quote_signature = crypto::Signature::decode(r.bytes());
  if (!r.done()) throw common::Error("AttestationQuote: trailing data");
  return quote;
}

Manufacturer::Manufacturer(const crypto::Group& group, common::Rng& rng)
    : group_(&group), root_(crypto::KeyPair::generate(group, rng)) {}

Manufacturer::Provision Manufacturer::provision(const std::string& device_id,
                                                common::SimTime now) {
  // Device keys are derived from the root secret and device id, mirroring
  // fused-at-manufacturing keys (deterministic per device).
  common::Writer seed;
  seed.str("veil.tee.device");
  seed.str(device_id);
  seed.bytes(root_.secret().to_bytes_be());
  const crypto::BigInt secret =
      crypto::BigInt::from_bytes_be(
          crypto::digest_bytes(crypto::sha256(seed.data())));
  crypto::KeyPair device_key = crypto::KeyPair::from_secret(*group_, secret);

  pki::Certificate cert;
  cert.serial = next_serial_++;
  cert.subject = "tee-device/" + device_id;
  cert.issuer = "tee-manufacturer";
  cert.subject_key = device_key.public_key();
  cert.attributes["tee"] = "device";
  cert.not_before = now;
  cert.not_after = ~common::SimTime{0};
  cert.issuer_signature = root_.sign(cert.to_be_signed());
  return Provision{std::move(device_key), std::move(cert)};
}

bool verify_quote(const crypto::Group& group,
                  const crypto::PublicKey& manufacturer_root,
                  const AttestationQuote& quote,
                  const crypto::Digest& expected_measurement,
                  common::BytesView expected_nonce, common::SimTime now) {
  if (quote.measurement != expected_measurement) return false;
  if (!common::ct_equal(quote.nonce, expected_nonce)) return false;
  if (!quote.device_cert.verify(group, manufacturer_root, now)) return false;
  if (quote.device_cert.attributes.find("tee") ==
          quote.device_cert.attributes.end() ||
      quote.device_cert.attributes.at("tee") != "device") {
    return false;
  }
  return crypto::verify(group, quote.device_cert.subject_key,
                        quote.to_be_signed(), quote.quote_signature);
}

}  // namespace veil::tee
