// Simulated enclave: host-blind execution of smart contracts (§2.2, §2.3).
//
// Design-level properties preserved from real TEEs:
//  * Code measurement — the enclave reports a digest of the loaded
//    contract; a verifier compares it against the expected build.
//  * Remote attestation — quotes signed by a manufacturer-provisioned
//    device key (attestation.hpp).
//  * Encrypted I/O — clients establish a DH session with the enclave and
//    exchange sealed request/response blobs. The HOST principal observes
//    only ciphertext: every datum crossing the enclave boundary is
//    recorded in the leakage auditor with plaintext=false.
//  * Sealed storage — enclave state persisted through the host is
//    encrypted under a key derived from the device key.
//
// This lets an UNINVOLVED node validate confidential transactions: it
// hosts the enclave, the enclave re-executes the contract on sealed
// inputs, and the host learns nothing but sizes (Figure 1's "independent
// validation while keeping data confidential" branch).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "contracts/contract.hpp"
#include "crypto/aes.hpp"
#include "ledger/state.hpp"
#include "net/leakage.hpp"
#include "tee/attestation.hpp"

namespace veil::tee {

/// A sealed invocation request, produced by EnclaveClient.
struct SealedRequest {
  std::uint64_t session_id = 0;
  common::Bytes ciphertext;
};

struct SealedResponse {
  common::Bytes ciphertext;
};

/// Plaintext request/response formats (sealed on the wire).
struct InvokeRequest {
  std::string contract;
  std::string action;
  common::Bytes args;

  common::Bytes encode() const;
  static InvokeRequest decode(common::BytesView data);
};

struct InvokeResponse {
  bool ok = false;
  std::vector<ledger::KvWrite> writes;
  crypto::Digest state_root{};  // digest over the enclave's private state

  common::Bytes encode() const;
  static InvokeResponse decode(common::BytesView data);
};

class Enclave {
 public:
  /// `host` is the (potentially untrusted) principal operating the
  /// machine; everything it can observe is recorded with plaintext=false.
  Enclave(std::string host, Manufacturer& manufacturer,
          const std::string& device_id, net::LeakageAuditor& auditor,
          common::Rng& rng, common::SimTime now);

  /// Load contract code. Delivery is assumed encrypted to the enclave
  /// (the host sees ciphertext of the code only).
  void load(std::shared_ptr<contracts::SmartContract> contract);

  /// Measurement of all loaded code (order-independent).
  crypto::Digest measurement() const;

  AttestationQuote attest(common::BytesView nonce) const;

  /// DH session establishment: client sends its ephemeral public key and
  /// receives the enclave's. Both derive the same AES session key.
  struct SessionOffer {
    std::uint64_t session_id;
    crypto::PublicKey enclave_key;
  };
  SessionOffer open_session(const crypto::PublicKey& client_key,
                            common::Rng& rng);

  /// Execute a sealed request inside the enclave. The host observes only
  /// ciphertext sizes. Returns nullopt on unknown session or MAC failure.
  std::optional<SealedResponse> invoke(const SealedRequest& request);

  /// Sealed storage: export the private state encrypted under the device
  /// sealing key (host can persist, not read).
  common::Bytes seal_state() const;
  bool unseal_state(common::BytesView sealed);

  const std::string& host() const { return host_; }
  const ledger::WorldState& private_state() const { return state_; }

 private:
  common::Bytes session_key(std::uint64_t session_id) const;
  common::Bytes sealing_key() const;
  crypto::Digest state_digest() const;

  std::string host_;
  const crypto::Group* group_;
  crypto::KeyPair device_key_;
  pki::Certificate device_cert_;
  net::LeakageAuditor* auditor_;
  std::map<std::string, std::shared_ptr<contracts::SmartContract>> contracts_;
  ledger::WorldState state_;
  std::map<std::uint64_t, common::Bytes> sessions_;  // id -> AES key
  std::uint64_t next_session_ = 1;
  std::uint64_t nonce_counter_ = 0;
};

/// Client-side helper for talking to an enclave.
class EnclaveClient {
 public:
  EnclaveClient(const crypto::Group& group, common::Rng& rng);

  /// Complete session setup from the enclave's offer.
  void accept(const Enclave::SessionOffer& offer);

  const crypto::PublicKey& public_key() const {
    return keypair_.public_key();
  }
  std::uint64_t session_id() const { return session_id_; }

  SealedRequest seal(const InvokeRequest& request, common::Rng& rng) const;
  std::optional<InvokeResponse> open(const SealedResponse& response) const;

 private:
  crypto::KeyPair keypair_;
  std::uint64_t session_id_ = 0;
  common::Bytes session_key_;
};

}  // namespace veil::tee
