#include "tee/enclave.hpp"

#include "common/serialize.hpp"
#include "crypto/hmac.hpp"

namespace veil::tee {

common::Bytes InvokeRequest::encode() const {
  common::Writer w;
  w.str(contract);
  w.str(action);
  w.bytes(args);
  return w.take();
}

InvokeRequest InvokeRequest::decode(common::BytesView data) {
  common::Reader r(data);
  InvokeRequest req;
  req.contract = r.str();
  req.action = r.str();
  req.args = r.bytes();
  return req;
}

common::Bytes InvokeResponse::encode() const {
  common::Writer w;
  w.boolean(ok);
  w.varint(writes.size());
  for (const ledger::KvWrite& kv : writes) {
    w.str(kv.key);
    w.bytes(kv.value);
    w.boolean(kv.is_delete);
  }
  w.raw(common::BytesView(state_root.data(), state_root.size()));
  return w.take();
}

InvokeResponse InvokeResponse::decode(common::BytesView data) {
  common::Reader r(data);
  InvokeResponse resp;
  resp.ok = r.boolean();
  const std::uint64_t n = r.varint();
  for (std::uint64_t i = 0; i < n; ++i) {
    ledger::KvWrite kv;
    kv.key = r.str();
    kv.value = r.bytes();
    kv.is_delete = r.boolean();
    resp.writes.push_back(std::move(kv));
  }
  const common::Bytes d = r.raw(crypto::kSha256DigestSize);
  std::copy(d.begin(), d.end(), resp.state_root.begin());
  return resp;
}

Enclave::Enclave(std::string host, Manufacturer& manufacturer,
                 const std::string& device_id, net::LeakageAuditor& auditor,
                 common::Rng& rng, common::SimTime now)
    : host_(std::move(host)),
      group_(&manufacturer.group()),
      device_key_(crypto::KeyPair::generate(manufacturer.group(), rng)),
      device_cert_(pki::Certificate{}),
      auditor_(&auditor) {
  // Re-provision through the manufacturer so the cert chains to its root.
  auto provision = manufacturer.provision(device_id, now);
  device_key_ = std::move(provision.device_key);
  device_cert_ = std::move(provision.device_cert);
}

void Enclave::load(std::shared_ptr<contracts::SmartContract> contract) {
  // Host observes only the encrypted code image.
  auditor_->record(host_, "contract/" + contract->name() + "/code",
                   contract->code_size(), /*plaintext=*/false);
  contracts_[contract->name()] = std::move(contract);
}

crypto::Digest Enclave::measurement() const {
  crypto::Sha256 h;
  h.update("veil.tee.measurement");
  for (const auto& [name, contract] : contracts_) {
    const crypto::Digest d = contract->code_digest();
    h.update(common::BytesView(d.data(), d.size()));
  }
  return h.finalize();
}

AttestationQuote Enclave::attest(common::BytesView nonce) const {
  AttestationQuote quote;
  quote.measurement = measurement();
  quote.nonce.assign(nonce.begin(), nonce.end());
  quote.device_cert = device_cert_;
  quote.quote_signature = device_key_.sign(quote.to_be_signed());
  return quote;
}

Enclave::SessionOffer Enclave::open_session(
    const crypto::PublicKey& client_key, common::Rng& rng) {
  // Ephemeral DH: session key = HKDF(client_pub ^ eph_secret).
  const crypto::KeyPair ephemeral = crypto::KeyPair::generate(*group_, rng);
  const crypto::BigInt shared = group_->pow(client_key.y, ephemeral.secret());
  const common::Bytes key =
      crypto::hkdf({}, shared.to_bytes_be(), "veil.tee.session", 32);

  const std::uint64_t id = next_session_++;
  sessions_[id] = key;
  return SessionOffer{id, ephemeral.public_key()};
}

std::optional<SealedResponse> Enclave::invoke(const SealedRequest& request) {
  const auto session = sessions_.find(request.session_id);
  if (session == sessions_.end()) return std::nullopt;

  // Host-side visibility: ciphertext only.
  auditor_->record(host_, "tee/request", request.ciphertext.size(),
                   /*plaintext=*/false);

  const auto plaintext = crypto::open(session->second, request.ciphertext);
  if (!plaintext) return std::nullopt;
  const InvokeRequest req = InvokeRequest::decode(*plaintext);

  InvokeResponse resp;
  const auto it = contracts_.find(req.contract);
  if (it != contracts_.end()) {
    contracts::ContractContext ctx(state_, req.args);
    if (it->second->invoke(ctx, req.action) == contracts::InvokeStatus::Ok) {
      resp.ok = true;
      resp.writes = ctx.writes();
      for (const ledger::KvWrite& kv : resp.writes) {
        if (kv.is_delete) {
          state_.erase(kv.key);
        } else {
          state_.put(kv.key, kv.value);
        }
      }
    }
  }
  resp.state_root = state_digest();

  // Seal the response with a fresh counter nonce.
  common::Writer nonce;
  nonce.u64(request.session_id);
  nonce.u64(++nonce_counter_);
  common::Bytes nonce16 = nonce.take();
  nonce16.resize(16, 0);

  SealedResponse sealed;
  sealed.ciphertext = crypto::seal(session->second, resp.encode(), nonce16);
  auditor_->record(host_, "tee/response", sealed.ciphertext.size(),
                   /*plaintext=*/false);
  return sealed;
}

common::Bytes Enclave::sealing_key() const {
  return crypto::hkdf({}, device_key_.secret().to_bytes_be(),
                      "veil.tee.sealing", 32);
}

crypto::Digest Enclave::state_digest() const {
  crypto::Sha256 h;
  h.update("veil.tee.state");
  state_.for_each([&h](const std::string& key, const common::Bytes& value,
                       std::uint64_t) {
    h.update(key);
    h.update(value);
    return true;
  });
  return h.finalize();
}

common::Bytes Enclave::seal_state() const {
  common::Writer w;
  w.varint(state_.size());
  state_.for_each([&w](const std::string& key, const common::Bytes& value,
                       std::uint64_t version) {
    w.str(key);
    w.bytes(value);
    w.u64(version);
    return true;
  });
  common::Writer nonce;
  nonce.str("sealstate");
  nonce.u64(state_.size());
  common::Bytes nonce16 = nonce.take();
  nonce16.resize(16, 0);
  common::Bytes sealed = crypto::seal(sealing_key(), w.data(), nonce16);
  auditor_->record(host_, "tee/sealed-state", sealed.size(),
                   /*plaintext=*/false);
  return sealed;
}

bool Enclave::unseal_state(common::BytesView sealed) {
  const auto plaintext = crypto::open(sealing_key(), sealed);
  if (!plaintext) return false;
  common::Reader r(*plaintext);
  ledger::WorldState restored;
  const std::uint64_t n = r.varint();
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::string key = r.str();
    common::Bytes value = r.bytes();
    const std::uint64_t version = r.u64();
    // put() bumps version by 1 each call; replay to reach the recorded one.
    for (std::uint64_t v = 0; v < version; ++v) restored.put(key, value);
  }
  state_ = std::move(restored);
  return true;
}

EnclaveClient::EnclaveClient(const crypto::Group& group, common::Rng& rng)
    : keypair_(crypto::KeyPair::generate(group, rng)) {}

void EnclaveClient::accept(const Enclave::SessionOffer& offer) {
  const crypto::BigInt shared =
      keypair_.group().pow(offer.enclave_key.y, keypair_.secret());
  session_key_ = crypto::hkdf({}, shared.to_bytes_be(), "veil.tee.session", 32);
  session_id_ = offer.session_id;
}

SealedRequest EnclaveClient::seal(const InvokeRequest& request,
                                  common::Rng& rng) const {
  SealedRequest sealed;
  sealed.session_id = session_id_;
  sealed.ciphertext =
      crypto::seal(session_key_, request.encode(), rng.next_bytes(16));
  return sealed;
}

std::optional<InvokeResponse> EnclaveClient::open(
    const SealedResponse& response) const {
  const auto plaintext = crypto::open(session_key_, response.ciphertext);
  if (!plaintext) return std::nullopt;
  return InvokeResponse::decode(*plaintext);
}

}  // namespace veil::tee
