// Remote attestation for simulated enclaves (§2.2 "Trusted execution
// environments").
//
// Trust chain mirrors SGX at the design level: the manufacturer embeds a
// device key at provisioning time and publishes its root public key; an
// enclave produces quotes — signatures over (measurement, nonce) by its
// device key — and ships them with the manufacturer-signed device
// certificate. A verifier needs only the manufacturer root key.
#pragma once

#include <string>

#include "common/rng.hpp"
#include "crypto/sha256.hpp"
#include "crypto/signature.hpp"
#include "pki/certificate.hpp"

namespace veil::tee {

struct AttestationQuote {
  crypto::Digest measurement{};       // hash of the code inside the enclave
  common::Bytes nonce;                // verifier freshness challenge
  pki::Certificate device_cert;       // manufacturer-signed device key
  crypto::Signature quote_signature;  // device-key signature over the quote

  common::Bytes to_be_signed() const;

  /// Canonical wire form: a quote travels from the enclave host to the
  /// verifier, so it must survive hostile input (decode-fuzz suite).
  common::Bytes encode() const;
  /// Throws common::Error on malformed input.
  static AttestationQuote decode(common::BytesView data);
};

/// The hardware manufacturer: provisions device keys and endorses them.
class Manufacturer {
 public:
  Manufacturer(const crypto::Group& group, common::Rng& rng);

  /// Provision a new device key for an enclave identified by `device_id`.
  struct Provision {
    crypto::KeyPair device_key;
    pki::Certificate device_cert;
  };
  Provision provision(const std::string& device_id, common::SimTime now);

  const crypto::PublicKey& root_key() const { return root_.public_key(); }
  const crypto::Group& group() const { return *group_; }

 private:
  const crypto::Group* group_;
  crypto::KeyPair root_;
  std::uint64_t next_serial_ = 1;
};

/// Verify a quote: device certificate chains to the manufacturer, quote
/// signature verifies under the device key, measurement and nonce match.
bool verify_quote(const crypto::Group& group,
                  const crypto::PublicKey& manufacturer_root,
                  const AttestationQuote& quote,
                  const crypto::Digest& expected_measurement,
                  common::BytesView expected_nonce, common::SimTime now);

}  // namespace veil::tee
