// Hash-addressed off-chain data store (§2.2 "Off-chain data").
//
// Private data lives outside the ledger; transactions carry only its
// SHA-256 digest (a HashRef). The store supports:
//  * provenance verification — prove stored bytes match an on-ledger hash;
//  * GDPR purge — delete the data while the on-ledger hash remains as an
//    audit stub (the paper's point: deletion is possible precisely
//    because the data never was on-chain);
//  * peer-hosted vs external hosting, which differ in who administers the
//    box and therefore who can observe plaintext (leakage-audited).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "common/bytes.hpp"
#include "crypto/sha256.hpp"
#include "ledger/transaction.hpp"
#include "net/leakage.hpp"

namespace veil::offchain {

enum class Hosting {
  PeerLocal,  // natively integrated on a peer; peer admin observes data
  External,   // separate infrastructure; its operator observes data
};

class OffChainStore {
 public:
  /// `admin` is the principal administering the storage (peer org or
  /// external provider); every stored plaintext is observable by it.
  OffChainStore(std::string admin, Hosting hosting,
                net::LeakageAuditor& auditor);

  /// Store data; returns the digest to embed in a transaction. The store
  /// admin observes the plaintext (recorded under "offchain/<label>").
  crypto::Digest put(const std::string& label, common::Bytes data);

  /// Retrieve by digest; nullopt if missing or purged.
  std::optional<common::Bytes> get(const crypto::Digest& digest) const;

  /// Verify that stored data still matches an on-ledger reference.
  bool verify(const ledger::HashRef& ref) const;

  /// GDPR deletion: remove the data. The digest remains known to the
  /// ledger, but the content is unrecoverable from this store. Returns
  /// false if the digest was not present.
  bool purge(const crypto::Digest& digest);

  /// True if the digest was stored here once but has been purged.
  bool purged(const crypto::Digest& digest) const;

  Hosting hosting() const { return hosting_; }
  const std::string& admin() const { return admin_; }
  std::size_t size() const { return data_.size(); }

 private:
  std::string admin_;
  Hosting hosting_;
  net::LeakageAuditor* auditor_;
  std::map<std::string, common::Bytes> data_;      // hex digest -> payload
  std::map<std::string, bool> tombstones_;         // hex digest -> purged
};

/// Build an on-ledger reference for off-chain data without storing it
/// (e.g. when the data will live in several parties' stores).
ledger::HashRef make_ref(const std::string& label, common::BytesView data);

}  // namespace veil::offchain
