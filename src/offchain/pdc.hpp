// Private Data Collections (§5 Hyperledger Fabric).
//
// Sub-channel confidentiality: data is disseminated peer-to-peer to the
// collection's member orgs and kept in their private stores; the channel
// ledger carries only a hash. The paper's caveat is preserved by the
// Fabric adapter: the transaction that references a collection lists the
// collection's members, so PDCs give data confidentiality but NOT privacy
// of interaction within the channel.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>

#include "common/bytes.hpp"
#include "ledger/transaction.hpp"
#include "net/leakage.hpp"

namespace veil::offchain {

struct CollectionConfig {
  std::string name;
  std::set<std::string> members;  // org names
  /// Blocks-to-live: 0 = keep forever; otherwise private data is
  /// auto-purged after this many blocks (mirrors Fabric's blockToLive).
  std::uint64_t block_to_live = 0;
  /// Minimum number of OTHER member peers that must acknowledge receipt
  /// of the private data before the submission is accepted (mirrors
  /// Fabric's requiredPeerCount). 0 = best effort.
  std::size_t required_peer_count = 0;
};

class PdcManager {
 public:
  explicit PdcManager(net::LeakageAuditor& auditor) : auditor_(&auditor) {}

  /// Define (or replace) a collection.
  void define(CollectionConfig config);

  const CollectionConfig* config(const std::string& name) const;

  /// Disseminate `value` to the collection members' private stores and
  /// return the hash reference to embed in the channel transaction.
  /// Returns nullopt for unknown collections. `current_block` drives
  /// block-to-live expiry.
  std::optional<ledger::HashRef> put_private(const std::string& collection,
                                             const std::string& key,
                                             common::Bytes value,
                                             std::uint64_t current_block);

  /// Read as `org`; nullopt if the org is not a member, the key is
  /// unknown, or the data expired/purged.
  std::optional<common::Bytes> get_private(const std::string& collection,
                                           const std::string& key,
                                           const std::string& org) const;

  /// Explicit deletion (GDPR or blockToLive enforcement).
  bool purge(const std::string& collection, const std::string& key);

  /// Purge every entry whose block-to-live lapsed at `current_block`.
  std::size_t expire(std::uint64_t current_block);

 private:
  struct Entry {
    common::Bytes value;
    std::uint64_t stored_at_block = 0;
  };

  net::LeakageAuditor* auditor_;
  std::map<std::string, CollectionConfig> collections_;
  // collection -> key -> entry
  std::map<std::string, std::map<std::string, Entry>> data_;
};

}  // namespace veil::offchain
