#include "offchain/store.hpp"

namespace veil::offchain {

OffChainStore::OffChainStore(std::string admin, Hosting hosting,
                             net::LeakageAuditor& auditor)
    : admin_(std::move(admin)), hosting_(hosting), auditor_(&auditor) {}

crypto::Digest OffChainStore::put(const std::string& label,
                                  common::Bytes data) {
  const crypto::Digest digest = crypto::sha256(data);
  auditor_->record(admin_, "offchain/" + label, data.size());
  const std::string key = crypto::digest_hex(digest);
  data_[key] = std::move(data);
  tombstones_[key] = false;
  return digest;
}

std::optional<common::Bytes> OffChainStore::get(
    const crypto::Digest& digest) const {
  const auto it = data_.find(crypto::digest_hex(digest));
  if (it == data_.end()) return std::nullopt;
  return it->second;
}

bool OffChainStore::verify(const ledger::HashRef& ref) const {
  const auto data = get(ref.digest);
  if (!data) return false;
  return crypto::sha256(*data) == ref.digest;
}

bool OffChainStore::purge(const crypto::Digest& digest) {
  const std::string key = crypto::digest_hex(digest);
  const auto it = data_.find(key);
  if (it == data_.end()) return false;
  data_.erase(it);
  tombstones_[key] = true;
  return true;
}

bool OffChainStore::purged(const crypto::Digest& digest) const {
  const auto it = tombstones_.find(crypto::digest_hex(digest));
  return it != tombstones_.end() && it->second;
}

ledger::HashRef make_ref(const std::string& label, common::BytesView data) {
  return ledger::HashRef{label, crypto::sha256(data)};
}

}  // namespace veil::offchain
