#include "offchain/pdc.hpp"

#include "crypto/sha256.hpp"

namespace veil::offchain {

void PdcManager::define(CollectionConfig config) {
  collections_[config.name] = std::move(config);
}

const CollectionConfig* PdcManager::config(const std::string& name) const {
  const auto it = collections_.find(name);
  if (it == collections_.end()) return nullptr;
  return &it->second;
}

std::optional<ledger::HashRef> PdcManager::put_private(
    const std::string& collection, const std::string& key,
    common::Bytes value, std::uint64_t current_block) {
  const auto it = collections_.find(collection);
  if (it == collections_.end()) return std::nullopt;

  // Dissemination: every member org's peer receives the plaintext.
  const std::string label = "pdc/" + collection + "/" + key;
  for (const std::string& member : it->second.members) {
    auditor_->record(member, label, value.size());
  }

  ledger::HashRef ref{label, crypto::sha256(value)};
  data_[collection][key] = Entry{std::move(value), current_block};
  return ref;
}

std::optional<common::Bytes> PdcManager::get_private(
    const std::string& collection, const std::string& key,
    const std::string& org) const {
  const auto cfg = collections_.find(collection);
  if (cfg == collections_.end() || !cfg->second.members.contains(org)) {
    return std::nullopt;
  }
  const auto coll = data_.find(collection);
  if (coll == data_.end()) return std::nullopt;
  const auto entry = coll->second.find(key);
  if (entry == coll->second.end()) return std::nullopt;
  return entry->second.value;
}

bool PdcManager::purge(const std::string& collection, const std::string& key) {
  const auto coll = data_.find(collection);
  if (coll == data_.end()) return false;
  return coll->second.erase(key) > 0;
}

std::size_t PdcManager::expire(std::uint64_t current_block) {
  std::size_t purged = 0;
  for (auto& [name, entries] : data_) {
    const CollectionConfig& cfg = collections_.at(name);
    if (cfg.block_to_live == 0) continue;
    for (auto it = entries.begin(); it != entries.end();) {
      if (current_block >= it->second.stored_at_block + cfg.block_to_live) {
        it = entries.erase(it);
        ++purged;
      } else {
        ++it;
      }
    }
  }
  return purged;
}

}  // namespace veil::offchain
