// Blocks: ordered batches of transactions with hash linkage.
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/merkle.hpp"
#include "ledger/transaction.hpp"

namespace veil::ledger {

struct BlockHeader {
  std::uint64_t height = 0;
  crypto::Digest previous_hash{};
  crypto::Digest tx_root{};  // Merkle root over transaction encodings
  common::SimTime timestamp = 0;

  common::Bytes encode() const;
  crypto::Digest hash() const;

  bool operator==(const BlockHeader&) const = default;
};

struct Block {
  BlockHeader header;
  std::vector<Transaction> transactions;

  /// Build a block: computes the tx Merkle root into the header.
  static Block make(std::uint64_t height, const crypto::Digest& previous_hash,
                    std::vector<Transaction> txs, common::SimTime timestamp);

  /// Recompute the Merkle root and compare with the header (tamper check).
  bool body_matches_header() const;

  common::Bytes encode() const;
  static Block decode(common::BytesView data);
};

}  // namespace veil::ledger
