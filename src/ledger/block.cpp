#include "ledger/block.hpp"

#include "common/serialize.hpp"

namespace veil::ledger {

namespace {

crypto::Digest compute_tx_root(const std::vector<Transaction>& txs) {
  if (txs.empty()) {
    // Empty blocks are legal (config blocks, heartbeats).
    return crypto::sha256(std::string_view("veil.block.empty"));
  }
  std::vector<common::Bytes> leaves;
  leaves.reserve(txs.size());
  for (const Transaction& tx : txs) leaves.push_back(tx.encode());
  return crypto::MerkleTree::build(leaves).root();
}

}  // namespace

common::Bytes BlockHeader::encode() const {
  common::Writer w;
  w.u64(height);
  w.raw(common::BytesView(previous_hash.data(), previous_hash.size()));
  w.raw(common::BytesView(tx_root.data(), tx_root.size()));
  w.u64(timestamp);
  return w.take();
}

crypto::Digest BlockHeader::hash() const { return crypto::sha256(encode()); }

Block Block::make(std::uint64_t height, const crypto::Digest& previous_hash,
                  std::vector<Transaction> txs, common::SimTime timestamp) {
  Block block;
  block.header.height = height;
  block.header.previous_hash = previous_hash;
  block.header.timestamp = timestamp;
  block.transactions = std::move(txs);
  block.header.tx_root = compute_tx_root(block.transactions);
  return block;
}

bool Block::body_matches_header() const {
  return compute_tx_root(transactions) == header.tx_root;
}

common::Bytes Block::encode() const {
  common::Writer w;
  w.bytes(header.encode());
  w.varint(transactions.size());
  for (const Transaction& tx : transactions) w.bytes(tx.encode());
  return w.take();
}

Block Block::decode(common::BytesView data) {
  common::Reader r(data);
  Block block;
  const common::Bytes hdr = r.bytes();
  common::Reader hr(hdr);
  block.header.height = hr.u64();
  common::Bytes d = hr.raw(crypto::kSha256DigestSize);
  std::copy(d.begin(), d.end(), block.header.previous_hash.begin());
  d = hr.raw(crypto::kSha256DigestSize);
  std::copy(d.begin(), d.end(), block.header.tx_root.begin());
  block.header.timestamp = hr.u64();

  const std::uint64_t n = r.varint();
  for (std::uint64_t i = 0; i < n; ++i) {
    const common::Bytes enc = r.bytes();
    block.transactions.push_back(Transaction::decode(enc));
  }
  return block;
}

}  // namespace veil::ledger
