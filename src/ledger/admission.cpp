#include "ledger/admission.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/serialize.hpp"

namespace veil::ledger {

common::Bytes ShedRecord::encode() const {
  common::Writer w;
  w.str(tx_id);
  w.u8(static_cast<std::uint8_t>(priority));
  w.u8(static_cast<std::uint8_t>(cause));
  w.u64(queue_delay_us);
  w.u64(at);
  return w.take();
}

ShedRecord ShedRecord::decode(common::BytesView data) {
  common::Reader r(data);
  ShedRecord rec;
  rec.tx_id = r.str();
  const std::uint8_t priority = r.u8();
  if (priority > static_cast<std::uint8_t>(AdmitPriority::Fresh)) {
    throw common::Error("ShedRecord::decode: unknown priority");
  }
  rec.priority = static_cast<AdmitPriority>(priority);
  const std::uint8_t cause = r.u8();
  if (cause > static_cast<std::uint8_t>(Cause::Expired)) {
    throw common::Error("ShedRecord::decode: unknown cause");
  }
  rec.cause = static_cast<Cause>(cause);
  rec.queue_delay_us = r.u64();
  rec.at = r.u64();
  return rec;
}

AdmissionController::AdmissionController(AdmissionConfig config)
    : config_(config) {}

void AdmissionController::shed(const std::string& tx_id,
                               AdmitPriority priority, ShedRecord::Cause cause,
                               common::SimTime delay, common::SimTime now) {
  switch (cause) {
    case ShedRecord::Cause::QueueDelay: ++stats_.shed_delay; break;
    case ShedRecord::Cause::Capacity: ++stats_.shed_capacity; break;
    case ShedRecord::Cause::Expired: ++stats_.shed_expired; break;
  }
  sheds_.push_back(ShedRecord{tx_id, priority, cause, delay, now});
}

common::SimTime AdmissionController::control_law(common::SimTime t) const {
  // Shed spacing shrinks with sqrt(drop_count): the longer delay stays
  // above target, the harder the controller pushes back.
  const double spacing = static_cast<double>(config_.interval_us) /
                         std::sqrt(static_cast<double>(
                             std::max<std::uint32_t>(drop_count_, 1)));
  return t + static_cast<common::SimTime>(std::max(spacing, 1.0));
}

bool AdmissionController::offer(const std::string& tx_id,
                                AdmitPriority priority,
                                common::SimTime enqueued_at,
                                common::SimTime now, std::size_t queue_len,
                                common::SimTime deadline_us) {
  ++stats_.offered;
  const common::SimTime sojourn = now > enqueued_at ? now - enqueued_at : 0;
  // Dead-on-arrival work is shed unconditionally: admitting it spends
  // endorsement and ordering effort on a transaction every later stage
  // must drop anyway.
  if (deadline_us != 0 && now > deadline_us) {
    shed(tx_id, priority, ShedRecord::Cause::Expired, sojourn, now);
    return false;
  }
  // Hard memory backstop, priority-blind.
  if (config_.queue_capacity != 0 && queue_len >= config_.queue_capacity) {
    shed(tx_id, priority, ShedRecord::Cause::Capacity, sojourn, now);
    return false;
  }
  const auto target = static_cast<common::SimTime>(
      priority == AdmitPriority::Commit
          ? static_cast<double>(config_.target_delay_us) * config_.commit_slack
          : static_cast<double>(config_.target_delay_us));
  if (sojourn < target || queue_len <= 1) {
    // Delay is under control; leave (or stay out of) the shedding regime.
    first_above_time_ = 0;
    dropping_ = false;
    stats_.max_queue_delay_us = std::max(stats_.max_queue_delay_us, sojourn);
    ++stats_.admitted;
    return true;
  }
  if (first_above_time_ == 0) {
    // First sighting above target: give the burst one interval to drain.
    first_above_time_ = now + config_.interval_us;
  } else if (!dropping_ && now >= first_above_time_) {
    // Above target for a full interval: enter the shedding regime. If we
    // left it recently, resume near the previous shed rate instead of
    // relearning it from scratch (CoDel's warm-start rule).
    dropping_ = true;
    drop_count_ = (drop_count_ > 2 && now - drop_next_ <
                                          16 * config_.interval_us)
                      ? drop_count_ - 2
                      : 1;
    drop_next_ = control_law(now);
    shed(tx_id, priority, ShedRecord::Cause::QueueDelay, sojourn, now);
    return false;
  } else if (dropping_ && now >= drop_next_) {
    ++drop_count_;
    drop_next_ = control_law(now);
    shed(tx_id, priority, ShedRecord::Cause::QueueDelay, sojourn, now);
    return false;
  }
  stats_.max_queue_delay_us = std::max(stats_.max_queue_delay_us, sojourn);
  ++stats_.admitted;
  return true;
}

common::SimTime AdmissionController::retry_after(common::SimTime now) const {
  if (dropping_ && drop_next_ > now) {
    return std::max(config_.target_delay_us, drop_next_ - now);
  }
  return config_.target_delay_us;
}

}  // namespace veil::ledger
