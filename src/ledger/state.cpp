#include "ledger/state.hpp"

#include "common/serialize.hpp"

namespace veil::ledger {

std::optional<VersionedValue> WorldState::get(const std::string& key) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

void WorldState::put(const std::string& key, common::Bytes value) {
  auto& entry = entries_[key];
  entry.value = std::move(value);
  ++entry.version;
}

void WorldState::erase(const std::string& key) { entries_.erase(key); }

std::vector<std::pair<std::string, VersionedValue>> WorldState::get_range(
    const std::string& start_key, const std::string& end_key) const {
  std::vector<std::pair<std::string, VersionedValue>> out;
  auto it = entries_.lower_bound(start_key);
  const auto end =
      end_key.empty() ? entries_.end() : entries_.lower_bound(end_key);
  for (; it != end; ++it) out.emplace_back(it->first, it->second);
  return out;
}

std::vector<std::pair<std::string, VersionedValue>> WorldState::get_by_prefix(
    const std::string& prefix) const {
  std::vector<std::pair<std::string, VersionedValue>> out;
  for (auto it = entries_.lower_bound(prefix);
       it != entries_.end() && it->first.compare(0, prefix.size(), prefix) == 0;
       ++it) {
    out.emplace_back(it->first, it->second);
  }
  return out;
}

CommitResult WorldState::apply(const Transaction& tx) {
  // Phase 1: validate reads. Version 0 means "key did not exist".
  for (const ReadAccess& read : tx.reads) {
    const auto it = entries_.find(read.key);
    const std::uint64_t current = (it == entries_.end()) ? 0 : it->second.version;
    if (current != read.version) return CommitResult::MvccConflict;
  }
  // Phase 2: apply writes.
  for (const KvWrite& write : tx.writes) {
    if (write.is_delete) {
      entries_.erase(write.key);
    } else {
      auto& entry = entries_[write.key];
      entry.value = write.value;
      ++entry.version;
    }
  }
  return CommitResult::Applied;
}

common::Bytes WorldState::encode() const {
  common::Writer w;
  w.varint(entries_.size());
  for (const auto& [key, entry] : entries_) {
    w.str(key);
    w.bytes(entry.value);
    w.u64(entry.version);
  }
  return w.take();
}

WorldState WorldState::decode(common::BytesView data) {
  common::Reader r(data);
  WorldState state;
  const std::uint64_t count = r.varint();
  for (std::uint64_t i = 0; i < count; ++i) {
    std::string key = r.str();
    VersionedValue entry;
    entry.value = r.bytes();
    entry.version = r.u64();
    state.entries_.insert_or_assign(std::move(key), std::move(entry));
  }
  return state;
}

crypto::Digest WorldState::digest() const {
  // std::map iteration is key-ordered, so the encoding is canonical.
  return crypto::sha256(encode());
}

}  // namespace veil::ledger
