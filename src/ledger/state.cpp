#include "ledger/state.hpp"

#include "common/serialize.hpp"

namespace veil::ledger {

namespace {

std::uint64_t fnv1a(const std::string& key) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : key) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

// ---- Hot cache --------------------------------------------------------------

const WorldState::HotSlot* WorldState::hot_find(const std::string& key) const {
  if (hot_.empty()) return nullptr;
  const std::uint64_t h = fnv1a(key);
  std::size_t slot = static_cast<std::size_t>(h) & (kHotSlots - 1);
  for (std::size_t probe = 0; probe < kProbeLimit; ++probe) {
    const HotSlot& s = hot_[slot];
    if (!s.used) return nullptr;
    if (s.hash == h && s.key == key) return &s;
    slot = (slot + 1) & (kHotSlots - 1);
  }
  return nullptr;
}

void WorldState::hot_store(const std::string& key, const common::Bytes& value,
                           std::uint64_t version) {
  if (hot_.empty()) hot_.resize(kHotSlots);
  const std::uint64_t h = fnv1a(key);
  std::size_t slot = static_cast<std::size_t>(h) & (kHotSlots - 1);
  // Prefer an empty slot or this key's own slot within the probe window;
  // otherwise overwrite the window's head (newest-wins eviction — a miss
  // just falls through to the trie).
  for (std::size_t probe = 0; probe < kProbeLimit; ++probe) {
    HotSlot& s = hot_[slot];
    if (!s.used || (s.hash == h && s.key == key)) {
      s.used = true;
      s.hash = h;
      s.key = key;
      s.value = value;
      s.version = version;
      return;
    }
    slot = (slot + 1) & (kHotSlots - 1);
  }
  HotSlot& s = hot_[static_cast<std::size_t>(h) & (kHotSlots - 1)];
  s.used = true;
  s.hash = h;
  s.key = key;
  s.value = value;
  s.version = version;
}

void WorldState::hot_store_tombstone(const std::string& key) {
  hot_store(key, common::Bytes{}, 0);
}

// ---- Reads ------------------------------------------------------------------

std::optional<VersionedValue> WorldState::get(const std::string& key) const {
  if (const HotSlot* s = hot_find(key)) {
    if (s->version == 0) return std::nullopt;  // cached tombstone
    return VersionedValue{s->value, s->version};
  }
  auto hit = trie_.get(key);
  if (!hit) return std::nullopt;
  return VersionedValue{std::move(hit->first), hit->second};
}

std::uint64_t WorldState::version_of(const std::string& key) const {
  if (const HotSlot* s = hot_find(key)) return s->version;
  return trie_.version_of(key).value_or(0);
}

// ---- Writes -----------------------------------------------------------------

void WorldState::put(const std::string& key, common::Bytes value) {
  const std::uint64_t next = version_of(key) + 1;
  hot_store(key, value, next);
  trie_.set(key, std::move(value), next);
}

void WorldState::erase(const std::string& key) {
  hot_store_tombstone(key);
  trie_.erase(key);
}

CommitResult WorldState::apply(const Transaction& tx) {
  // Phase 1: validate reads. Version 0 means "key did not exist".
  for (const ReadAccess& read : tx.reads) {
    if (version_of(read.key) != read.version) return CommitResult::MvccConflict;
  }
  // Phase 2: apply writes.
  for (const KvWrite& write : tx.writes) {
    if (write.is_delete) {
      erase(write.key);
    } else {
      put(write.key, write.value);
    }
  }
  return CommitResult::Applied;
}

// ---- Iteration / queries ----------------------------------------------------

void WorldState::for_each(const Visitor& visit) const { trie_.for_each(visit); }

std::map<std::string, VersionedValue> WorldState::entries() const {
  std::map<std::string, VersionedValue> out;
  trie_.for_each([&out](const std::string& key, const common::Bytes& value,
                        std::uint64_t version) {
    out.emplace_hint(out.end(), key, VersionedValue{value, version});
    return true;
  });
  return out;
}

std::vector<std::pair<std::string, VersionedValue>> WorldState::get_range(
    const std::string& start_key, const std::string& end_key) const {
  std::vector<std::pair<std::string, VersionedValue>> out;
  trie_.scan_range(start_key, end_key,
                   [&out](const std::string& key, const common::Bytes& value,
                          std::uint64_t version) {
                     out.emplace_back(key, VersionedValue{value, version});
                     return true;
                   });
  return out;
}

std::vector<std::pair<std::string, VersionedValue>> WorldState::get_by_prefix(
    const std::string& prefix) const {
  std::vector<std::pair<std::string, VersionedValue>> out;
  trie_.scan_prefix(prefix,
                    [&out](const std::string& key, const common::Bytes& value,
                           std::uint64_t version) {
                      out.emplace_back(key, VersionedValue{value, version});
                      return true;
                    });
  return out;
}

std::size_t WorldState::scan_range(const std::string& start_key,
                                   const std::string& end_key,
                                   const Visitor& visit) const {
  return trie_.scan_range(start_key, end_key, visit);
}

std::size_t WorldState::scan_prefix(const std::string& prefix,
                                    const Visitor& visit) const {
  return trie_.scan_prefix(prefix, visit);
}

// ---- Serialization ----------------------------------------------------------

common::Bytes WorldState::encode() const {
  common::Writer w;
  w.varint(trie_.size());
  trie_.for_each([&w](const std::string& key, const common::Bytes& value,
                      std::uint64_t version) {
    w.str(key);
    w.bytes(value);
    w.u64(version);
    return true;
  });
  return w.take();
}

WorldState WorldState::decode(common::BytesView data) {
  common::Reader r(data);
  WorldState state;
  const std::uint64_t count = r.varint();
  for (std::uint64_t i = 0; i < count; ++i) {
    std::string key = r.str();
    common::Bytes value = r.bytes();
    const std::uint64_t version = r.u64();
    state.trie_.set(key, std::move(value), version);
  }
  return state;
}

WorldState WorldState::from_trie(StateTrie trie) {
  WorldState state;
  state.trie_ = std::move(trie);
  return state;
}

}  // namespace veil::ledger
