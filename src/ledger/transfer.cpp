#include "ledger/transfer.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "common/serialize.hpp"

namespace veil::ledger {

namespace {

constexpr char kTopicRequest[] = "snap.req";
constexpr char kTopicOffer[] = "snap.offer";
constexpr char kTopicVoteRequest[] = "snap.vote-req";
constexpr char kTopicVote[] = "snap.vote";
constexpr char kTopicFetch[] = "snap.fetch";
constexpr char kTopicChunk[] = "snap.chunk";

void write_digest(common::Writer& w, const crypto::Digest& d) {
  w.raw(common::BytesView(d.data(), d.size()));
}

crypto::Digest read_digest(common::Reader& r) {
  const common::Bytes raw = r.raw(crypto::kSha256DigestSize);
  crypto::Digest d{};
  std::copy(raw.begin(), raw.end(), d.begin());
  return d;
}

void require_done(const common::Reader& r, const char* what) {
  if (!r.done()) {
    throw common::ProtocolError(std::string("trailing bytes after ") + what);
  }
}

}  // namespace

// ---- Wire codecs ----------------------------------------------------------

common::Bytes SnapshotRequest::encode() const {
  common::Writer w;
  w.str(scope);
  w.u64(min_height);
  return w.take();
}

SnapshotRequest SnapshotRequest::decode(common::BytesView data) {
  common::Reader r(data);
  SnapshotRequest req;
  req.scope = r.str();
  req.min_height = r.u64();
  require_done(r, "snapshot request");
  return req;
}

common::Bytes SnapshotOffer::encode() const {
  common::Writer w;
  w.str(scope);
  w.boolean(available);
  if (available) w.bytes(header.encode());
  return w.take();
}

SnapshotOffer SnapshotOffer::decode(common::BytesView data) {
  common::Reader r(data);
  SnapshotOffer offer;
  offer.scope = r.str();
  offer.available = r.boolean();
  if (offer.available) offer.header = SnapshotHeader::decode(r.bytes());
  require_done(r, "snapshot offer");
  return offer;
}

common::Bytes ChunkRequest::encode() const {
  common::Writer w;
  w.str(scope);
  write_digest(w, root);
  w.u64(index);
  return w.take();
}

ChunkRequest ChunkRequest::decode(common::BytesView data) {
  common::Reader r(data);
  ChunkRequest req;
  req.scope = r.str();
  req.root = read_digest(r);
  req.index = r.u64();
  require_done(r, "chunk request");
  return req;
}

common::Bytes SnapshotChunk::encode() const {
  common::Writer w;
  w.str(scope);
  write_digest(w, root);
  w.u64(index);
  w.boolean(ok);
  w.bytes(data);
  return w.take();
}

SnapshotChunk SnapshotChunk::decode(common::BytesView data) {
  common::Reader r(data);
  SnapshotChunk chunk;
  chunk.scope = r.str();
  chunk.root = read_digest(r);
  chunk.index = r.u64();
  chunk.ok = r.boolean();
  chunk.data = r.bytes();
  require_done(r, "snapshot chunk");
  return chunk;
}

common::Bytes RootVote::encode() const {
  common::Writer w;
  w.str(scope);
  w.u64(height);
  w.boolean(known);
  write_digest(w, root);
  return w.take();
}

RootVote RootVote::decode(common::BytesView data) {
  common::Reader r(data);
  RootVote vote;
  vote.scope = r.str();
  vote.height = r.u64();
  vote.known = r.boolean();
  vote.root = read_digest(r);
  require_done(r, "root vote");
  return vote;
}

// ---- Reject taxonomy ------------------------------------------------------

const char* to_string(TransferReject reason) {
  switch (reason) {
    case TransferReject::MalformedOffer:
      return "malformed offer";
    case TransferReject::OfferCheckFailed:
      return "offer contradicts delivery log";
    case TransferReject::EquivocatedRoot:
      return "equivocated root";
    case TransferReject::TamperedChunk:
      return "tampered chunk";
    case TransferReject::TamperedNode:
      return "tampered trie node";
    case TransferReject::InconsistentBody:
      return "inconsistent body";
    case TransferReject::DonorGone:
      return "donor gone";
  }
  return "unknown";
}

bool is_misbehavior(TransferReject reason) {
  switch (reason) {
    case TransferReject::MalformedOffer:
    case TransferReject::OfferCheckFailed:
    case TransferReject::EquivocatedRoot:
    case TransferReject::TamperedChunk:
    case TransferReject::TamperedNode:
    case TransferReject::InconsistentBody:
      return true;
    case TransferReject::DonorGone:
      return false;
  }
  return false;
}

// ---- Engine ---------------------------------------------------------------

SnapshotTransfer::SnapshotTransfer(net::ReliableChannel& channel,
                                   Callbacks callbacks)
    : channel_(&channel), callbacks_(std::move(callbacks)) {}

bool SnapshotTransfer::owns_topic(const std::string& topic) {
  return topic.rfind("snap.", 0) == 0;
}

void SnapshotTransfer::fetch(const net::Principal& self,
                             const std::string& scope,
                             std::vector<net::Principal> donors,
                             std::vector<net::Principal> voters,
                             std::uint64_t min_height) {
  if (donors.empty()) {
    if (callbacks_.on_fail) callbacks_.on_fail(self, scope);
    ++stats_.transfers_failed;
    return;
  }
  Transfer t;
  t.scope = scope;
  t.donors = std::move(donors);
  t.voters = std::move(voters);
  t.min_height = min_height;
  auto [it, inserted] = transfers_.insert_or_assign(Key{self, scope},
                                                    std::move(t));
  (void)inserted;
  send_request(self, it->second);
}

void SnapshotTransfer::resume(const net::Principal& self,
                              const std::string& scope) {
  auto it = transfers_.find(Key{self, scope});
  if (it == transfers_.end()) return;
  ++stats_.resumes;
  Transfer& t = it->second;
  switch (t.phase) {
    case Phase::WaitOffer:
      send_request(self, t);
      break;
    case Phase::WaitVotes:
      send_vote_requests(self, t);
      break;
    case Phase::Fetch:
      request_missing_chunks(self, t);
      break;
  }
}

void SnapshotTransfer::abort(const net::Principal& self,
                             const std::string& scope) {
  transfers_.erase(Key{self, scope});
}

bool SnapshotTransfer::active(const net::Principal& self,
                              const std::string& scope) const {
  return transfers_.contains(Key{self, scope});
}

void SnapshotTransfer::handle(const net::Principal& self,
                              const net::Message& msg) {
  try {
    if (msg.topic == kTopicRequest) {
      on_request(self, msg);
    } else if (msg.topic == kTopicOffer) {
      on_offer(self, msg);
    } else if (msg.topic == kTopicVoteRequest) {
      on_vote_request(self, msg);
    } else if (msg.topic == kTopicVote) {
      on_vote(self, msg);
    } else if (msg.topic == kTopicFetch) {
      on_fetch(self, msg);
    } else if (msg.topic == kTopicChunk) {
      on_chunk(self, msg);
    }
  } catch (const common::Error&) {
    // Malformed snap.* payload (loss-model corruption or a hostile
    // sender): drop it. The joiner's resume path re-requests anything
    // that mattered; a replica never crashes on wire bytes.
    ++stats_.malformed;
  }
}

// ---- Donor side -----------------------------------------------------------

void SnapshotTransfer::on_request(const net::Principal& self,
                                  const net::Message& msg) {
  const SnapshotRequest req = SnapshotRequest::decode(msg.payload);
  SnapshotOffer offer;
  offer.scope = req.scope;
  const Snapshot* snap =
      callbacks_.provider
          ? callbacks_.provider(self, req.scope, req.min_height)
          : nullptr;
  if (snap != nullptr && snap->height() >= req.min_height) {
    offer.available = true;
    offer.header = snap->header();
  }
  channel_->send(self, msg.from, kTopicOffer, offer.encode());
}

void SnapshotTransfer::on_vote_request(const net::Principal& self,
                                       const net::Message& msg) {
  const SnapshotRequest req = SnapshotRequest::decode(msg.payload);
  RootVote vote;
  vote.scope = req.scope;
  vote.height = req.min_height;
  // A voter vouches only for a height it checkpointed itself — replicas
  // checkpoint on the same deterministic schedule, so live honest peers
  // always can.
  const Snapshot* snap =
      callbacks_.provider ? callbacks_.provider(self, req.scope, 0) : nullptr;
  if (snap != nullptr && snap->height() == req.min_height) {
    vote.known = true;
    vote.root = snap->root();
  }
  channel_->send(self, msg.from, kTopicVote, vote.encode());
}

void SnapshotTransfer::on_fetch(const net::Principal& self,
                                const net::Message& msg) {
  const ChunkRequest req = ChunkRequest::decode(msg.payload);
  SnapshotChunk chunk;
  chunk.scope = req.scope;
  chunk.root = req.root;
  chunk.index = req.index;
  const Snapshot* snap =
      callbacks_.provider ? callbacks_.provider(self, req.scope, 0) : nullptr;
  if (snap != nullptr && snap->root() == req.root &&
      req.index < snap->chunk_count()) {
    chunk.ok = true;
    chunk.data = snap->chunk(req.index);
  }
  channel_->send(self, msg.from, kTopicChunk, chunk.encode());
}

// ---- Joiner side ----------------------------------------------------------

void SnapshotTransfer::send_request(const net::Principal& self, Transfer& t) {
  t.phase = Phase::WaitOffer;
  SnapshotRequest req;
  req.scope = t.scope;
  req.min_height = t.min_height;
  channel_->send(self, t.donors.front(), kTopicRequest, req.encode());
  ++stats_.requests_sent;
}

void SnapshotTransfer::send_vote_requests(const net::Principal& self,
                                          Transfer& t) {
  t.phase = Phase::WaitVotes;
  SnapshotRequest req;
  req.scope = t.scope;
  req.min_height = t.header.height;
  for (const net::Principal& voter : t.voters) {
    if (t.votes.contains(voter)) continue;
    channel_->send(self, voter, kTopicVoteRequest, req.encode());
  }
}

void SnapshotTransfer::on_offer(const net::Principal& self,
                                const net::Message& msg) {
  const SnapshotOffer offer = SnapshotOffer::decode(msg.payload);
  auto it = transfers_.find(Key{self, offer.scope});
  if (it == transfers_.end()) return;
  Transfer& t = it->second;
  if (t.phase != Phase::WaitOffer || msg.from != t.donors.front()) {
    return;  // stale offer from an already-dropped donor
  }
  ++stats_.offers_received;
  const Key key{self, offer.scope};
  if (!offer.available) {
    drop_donor(self, key, TransferReject::DonorGone, {}, {});
    return;
  }
  if (!offer.header.self_consistent() || offer.header.height < t.min_height) {
    drop_donor(self, key, TransferReject::MalformedOffer, msg.payload, {});
    return;
  }
  if (callbacks_.offer_check &&
      !callbacks_.offer_check(self, offer.scope, offer.header)) {
    drop_donor(self, key, TransferReject::OfferCheckFailed, msg.payload, {});
    return;
  }
  t.header = offer.header;
  // Resumable cursor: chunks verified against this root on an earlier
  // attempt (same root, different donor) are still good.
  if (t.chunk_root != t.header.root) {
    t.chunk_root = t.header.root;
    t.chunks.assign(t.header.chunk_count(), std::nullopt);
    t.have = 0;
  }
  t.votes.clear();
  if (t.voters.empty()) {
    start_fetch(self, t);
  } else {
    send_vote_requests(self, t);
  }
}

void SnapshotTransfer::on_vote(const net::Principal& self,
                               const net::Message& msg) {
  const RootVote vote = RootVote::decode(msg.payload);
  const Key key{self, vote.scope};
  auto it = transfers_.find(key);
  if (it == transfers_.end()) return;
  Transfer& t = it->second;
  if (t.phase != Phase::WaitVotes || vote.height != t.header.height) return;
  if (std::find(t.voters.begin(), t.voters.end(), msg.from) ==
      t.voters.end()) {
    return;  // not a voter we asked
  }
  t.votes[msg.from] = vote;
  ++stats_.votes_received;
  evaluate_votes(self, key);
}

void SnapshotTransfer::evaluate_votes(const net::Principal& self,
                                      const Key& key) {
  Transfer& t = transfers_.at(key);
  std::size_t agree = 0;
  std::size_t disagree = 0;
  common::Bytes disagree_proof;
  for (const auto& [voter, vote] : t.votes) {
    if (!vote.known) continue;
    if (vote.root == t.header.root) {
      ++agree;
    } else {
      ++disagree;
      if (disagree_proof.empty()) disagree_proof = vote.encode();
    }
  }
  const std::size_t n = t.voters.size();
  // Majority confirms: the root is the one every honest replica sealed.
  if (agree * 2 > n) {
    start_fetch(self, t);
    return;
  }
  // Majority disavows: the donor equivocated a root no honest replica
  // ever produced. Proof = its offer header + one contradicting vote.
  if (disagree * 2 > n) {
    const common::Bytes header_bytes = t.header.encode();
    drop_donor(self, key, TransferReject::EquivocatedRoot, header_bytes,
               disagree_proof);
    return;
  }
  if (t.votes.size() == n) {
    // Everyone answered, no majority either way (abstentions). Without
    // quorum confirmation the root stays untrusted: fail closed, but
    // with evidence only if someone actively contradicted it.
    if (disagree > 0) {
      const common::Bytes header_bytes = t.header.encode();
      drop_donor(self, key, TransferReject::EquivocatedRoot, header_bytes,
                 disagree_proof);
    } else {
      drop_donor(self, key, TransferReject::DonorGone, {}, {});
    }
  }
}

void SnapshotTransfer::start_fetch(const net::Principal& self, Transfer& t) {
  t.phase = Phase::Fetch;
  if (t.header.chunk_count() == 0) {
    finish(self, Key{self, t.scope});
    return;
  }
  request_missing_chunks(self, t);
}

void SnapshotTransfer::request_missing_chunks(const net::Principal& self,
                                              Transfer& t) {
  ChunkRequest req;
  req.scope = t.scope;
  req.root = t.header.root;
  for (std::size_t i = 0; i < t.chunks.size(); ++i) {
    if (t.chunks[i].has_value()) continue;
    req.index = i;
    channel_->send(self, t.donors.front(), kTopicFetch, req.encode());
  }
}

void SnapshotTransfer::on_chunk(const net::Principal& self,
                                const net::Message& msg) {
  const SnapshotChunk chunk = SnapshotChunk::decode(msg.payload);
  const Key key{self, chunk.scope};
  auto it = transfers_.find(key);
  if (it == transfers_.end()) return;
  Transfer& t = it->second;
  if (t.phase != Phase::Fetch || msg.from != t.donors.front() ||
      chunk.root != t.header.root) {
    return;  // stale chunk from a previous donor or superseded root
  }
  if (!chunk.ok) {
    drop_donor(self, key, TransferReject::DonorGone, {}, {});
    return;
  }
  if (chunk.index >= t.chunks.size()) {
    ++stats_.chunks_rejected;
    drop_donor(self, key, TransferReject::TamperedChunk, t.header.encode(),
               msg.payload);
    return;
  }
  if (t.chunks[chunk.index].has_value()) return;  // duplicate
  if (!Snapshot::verify_chunk(t.header, chunk.index, chunk.data)) {
    ++stats_.chunks_rejected;
    drop_donor(self, key, TransferReject::TamperedChunk, t.header.encode(),
               msg.payload);
    return;
  }
  t.chunks[chunk.index] = chunk.data;
  ++t.have;
  ++stats_.chunks_received;
  if (t.have == t.chunks.size()) finish(self, key);
}

void SnapshotTransfer::finish(const net::Principal& self, const Key& key) {
  Transfer& t = transfers_.at(key);
  std::vector<common::Bytes> chunks;
  chunks.reserve(t.chunks.size());
  for (const std::optional<common::Bytes>& c : t.chunks) {
    chunks.push_back(*c);
  }
  std::optional<WorldState> state = Snapshot::assemble(t.header, chunks);
  if (!state.has_value()) {
    // Every chunk verified yet the body will not decode: the header
    // committed to garbage. That is on the donor.
    drop_donor(self, key, TransferReject::InconsistentBody, t.header.encode(),
               {});
    return;
  }
  const SnapshotHeader header = t.header;
  const std::string scope = t.scope;
  transfers_.erase(key);
  ++stats_.transfers_completed;
  if (callbacks_.on_complete) {
    callbacks_.on_complete(self, scope, header, std::move(*state));
  }
}

void SnapshotTransfer::drop_donor(const net::Principal& self, const Key& key,
                                  TransferReject reason,
                                  common::BytesView proof_a,
                                  common::BytesView proof_b) {
  Transfer& t = transfers_.at(key);
  const net::Principal donor = t.donors.front();
  const std::string scope = t.scope;
  if (is_misbehavior(reason)) ++stats_.donors_rejected;
  if (callbacks_.on_reject) {
    callbacks_.on_reject(self, scope, donor, reason, proof_a, proof_b);
  }
  // The callback may have aborted or restarted this transfer; re-find.
  auto it = transfers_.find(key);
  if (it == transfers_.end()) return;
  Transfer& tt = it->second;
  tt.donors.erase(tt.donors.begin());
  tt.votes.clear();
  if (is_misbehavior(reason)) {
    // A donor dropped for proven misbehavior loses its vote too: the
    // platform just quarantined it, so counting it toward the quorum
    // denominator would stall every subsequent vote round (it can never
    // answer), and counting its past answers would let it poison the
    // next donor's verification.
    std::erase(tt.voters, donor);
    std::erase(tt.donors, donor);
  }
  if (tt.donors.empty()) {
    transfers_.erase(it);
    ++stats_.transfers_failed;
    if (callbacks_.on_fail) callbacks_.on_fail(self, scope);
    return;
  }
  send_request(self, tt);
}

}  // namespace veil::ledger
