// Verified state snapshots: canonical, content-addressed, chunked.
//
// A snapshot freezes a replica's committed state (WorldState + chain
// head) into a canonical byte string, content-addressed by a Merkle root
// over fixed-size chunks. The root is the whole trust story: a joiner
// that has authenticated the root (against a quorum of peer digests, or
// its own sealed delivery log) can accept chunks from ANY donor —
// including a Byzantine one — because each chunk verifies independently
// against the chunk-hash vector committed under the root. Tampering is
// detected per chunk; an equivocated header fails root verification
// before a single chunk is fetched.
//
// Snapshots are also what the SnapshotStore seals into the WAL as
// compaction checkpoints (ledger/wal.hpp): the durable checkpoint record
// and the wire snapshot are the same canonical bytes, so "what I'd serve
// a joiner" and "what I'd replay after a crash" can never diverge.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bytes.hpp"
#include "crypto/sha256.hpp"
#include "ledger/state.hpp"
#include "ledger/wal.hpp"

namespace veil::ledger {

/// Wire header of a snapshot: everything a joiner needs to verify chunks
/// before it has any of them. Decode-fuzzed; malformed headers throw
/// common::Error and are dropped by the transfer engine.
struct SnapshotHeader {
  std::uint64_t height = 0;
  crypto::Digest tip_hash{};
  std::uint64_t body_bytes = 0;  // canonical body length
  std::uint32_t chunk_size = 0;  // every chunk but the last is this long
  std::vector<crypto::Digest> chunk_hashes;
  crypto::Digest root{};  // content address (see compute_root)

  std::size_t chunk_count() const { return chunk_hashes.size(); }

  /// Recompute the content address from the announced fields.
  static crypto::Digest compute_root(
      std::uint64_t height, const crypto::Digest& tip_hash,
      std::uint64_t body_bytes, std::uint32_t chunk_size,
      const std::vector<crypto::Digest>& chunk_hashes);

  /// True iff the announced root matches the announced fields and the
  /// chunk geometry is coherent (count x size covers body_bytes). A
  /// self-consistent header can still lie about the STATE — that is what
  /// quorum root verification is for — but it cannot lie about which
  /// chunks belong to it.
  bool self_consistent() const;

  common::Bytes encode() const;
  static SnapshotHeader decode(common::BytesView data);
};

/// A materialized snapshot: header + canonical body. Built by donors and
/// the SnapshotStore; reassembled chunk-by-chunk by joiners.
class Snapshot {
 public:
  static constexpr std::uint32_t kDefaultChunkSize = 1024;

  /// Snapshot the given state at the given chain head. Canonical: two
  /// replicas with bit-identical state produce bit-identical snapshots
  /// and therefore equal roots.
  static Snapshot make(std::uint64_t height, const crypto::Digest& tip_hash,
                       const WorldState& state,
                       std::uint32_t chunk_size = kDefaultChunkSize);

  const SnapshotHeader& header() const { return header_; }
  std::uint64_t height() const { return header_.height; }
  const crypto::Digest& root() const { return header_.root; }
  std::size_t chunk_count() const { return header_.chunk_count(); }
  std::size_t body_size() const { return body_.size(); }
  common::BytesView body() const { return body_; }

  /// Chunk payload by index (throws common::Error if out of range).
  common::Bytes chunk(std::size_t index) const;

  /// Verify one received chunk against the header's commitment: right
  /// length for its position, and hash equal to chunk_hashes[index].
  static bool verify_chunk(const SnapshotHeader& header, std::size_t index,
                           common::BytesView data);

  /// Reassemble a body from per-index chunks (all previously accepted by
  /// verify_chunk) and decode the WorldState. Returns nullopt if any
  /// chunk is missing or the assembly fails verification.
  static std::optional<WorldState> assemble(
      const SnapshotHeader& header,
      const std::vector<common::Bytes>& chunks);

  /// Decode this snapshot's own body.
  WorldState state() const { return WorldState::decode(body_); }

  /// Full codec (WAL sealing, tests). Decode re-verifies the header
  /// against the body and throws on mismatch — a sealed snapshot cannot
  /// be tampered without detection.
  common::Bytes encode() const;
  static Snapshot decode(common::BytesView data);

  /// Attack/test hook: pair an arbitrary header with an arbitrary body,
  /// skipping consistency checks. This is how Byzantine donor fixtures
  /// serve tampered chunks under an honest-looking header.
  static Snapshot forge(SnapshotHeader header, common::Bytes body);

 private:
  Snapshot() = default;

  SnapshotHeader header_;
  common::Bytes body_;  // canonical WorldState encoding
};

// ---- Checkpoint policy ----------------------------------------------------

struct SnapshotConfig {
  /// Take a checkpoint every `interval` blocks; 0 disables checkpointing
  /// (the PR-2 behavior: WAL grows without bound, rejoin replays all).
  std::uint64_t interval = 0;
  std::uint32_t chunk_size = Snapshot::kDefaultChunkSize;
  /// Compact the WAL behind each checkpoint (fsync-ordered; see
  /// WriteAheadLog::compact). Off = checkpoint records only.
  bool compact_wal = true;
};

/// Per-replica checkpoint driver: owns the policy, keeps the latest
/// snapshot resident so the replica can serve state transfer without
/// re-serializing, and seals each checkpoint into the replica's WAL.
class SnapshotStore {
 public:
  explicit SnapshotStore(SnapshotConfig config = {}) : config_(config) {}

  const SnapshotConfig& config() const { return config_; }
  bool enabled() const { return config_.interval != 0; }

  /// Call after every committed block. Takes a checkpoint when `height`
  /// lands on the interval; returns true if one was taken. `aux` rides
  /// the WAL checkpoint record but not the wire snapshot (platform-
  /// private sidecar, e.g. Quorum private state).
  bool maybe_checkpoint(WriteAheadLog& wal, std::uint64_t height,
                        const crypto::Digest& tip_hash,
                        const WorldState& state, common::BytesView aux = {});

  /// Unconditional checkpoint (rejoin installs, tests).
  void checkpoint(WriteAheadLog& wal, std::uint64_t height,
                  const crypto::Digest& tip_hash, const WorldState& state,
                  common::BytesView aux = {});

  /// Rebuild the resident snapshot after a restart (from the WAL's
  /// recovered checkpoint) without touching the WAL.
  void restore(std::uint64_t height, const crypto::Digest& tip_hash,
               const WorldState& state);

  /// Latest checkpoint snapshot, if any was taken since construction or
  /// restore. This is what the transfer engine offers donors' peers.
  const Snapshot* latest() const {
    return latest_ ? &*latest_ : nullptr;
  }

  /// The checkpoint state itself, kept resident. With the trie-backed
  /// WorldState this is an O(1) copy-on-write handle onto the state as
  /// of the checkpoint — delta sync (ledger/triesync.hpp) serves
  /// content-addressed trie nodes straight from it, no re-encoding.
  /// Meaningful only when latest() != nullptr.
  const WorldState& latest_state() const { return latest_state_; }

  std::uint64_t checkpoints_taken() const { return checkpoints_taken_; }

 private:
  SnapshotConfig config_;
  std::optional<Snapshot> latest_;
  WorldState latest_state_;
  std::uint64_t checkpoints_taken_ = 0;
};

}  // namespace veil::ledger
