// Snapshot state transfer: verified rejoin over the reliable channel.
//
// A replica that fell behind (crash, long partition, quarantine release)
// fetches the nearest checkpoint from a peer instead of replaying the
// whole chain. The protocol is pull-based and donor-stateless:
//
//   joiner                         donor                voters
//     |-- snap.req --------------->|                      |
//     |<-- snap.offer (header) ----|                      |
//     |-- snap.vote-req ------------------------------->  |
//     |<-- snap.vote (my checkpoint root at that height)--|
//     |-- snap.fetch (index) ----->|   (one per chunk)    |
//     |<-- snap.chunk -------------|                      |
//     |        ... assemble, verify, install ...          |
//
// Byzantine safety, fail closed at every step:
//  * the offered header must be self-consistent (root recomputes from
//    the announced chunk hashes) — a tampered header dies before any
//    chunk moves;
//  * the root must be confirmed by a quorum of live peers' own
//    checkpoint roots (deterministic replicas checkpoint at identical
//    heights with identical roots) and, where the platform keeps a
//    sealed delivery log, the announced height/tip must match it;
//  * every chunk is hashed against the header's chunk-hash vector on
//    arrival — a tampered chunk convicts the donor, the verified chunks
//    already held are kept (resumable cursor), and the transfer fails
//    over to the next donor.
//
// The engine raises platform callbacks instead of touching audit/
// quarantine itself (the ledger layer does not link audit): the platform
// emits signed Evidence and quarantines the donor in on_reject.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "ledger/snapshot.hpp"
#include "net/reliable.hpp"

namespace veil::ledger {

// ---- Wire types (all decode-fuzzed) ---------------------------------------

/// snap.req: ask a donor for its latest checkpoint at or above
/// min_height. Also reused on snap.vote-req, where min_height carries the
/// exact height being voted on.
struct SnapshotRequest {
  std::string scope;  // platform-defined (Fabric channel, "quorum", ...)
  std::uint64_t min_height = 0;

  common::Bytes encode() const;
  static SnapshotRequest decode(common::BytesView data);
};

/// snap.offer: the donor's header, or a refusal.
struct SnapshotOffer {
  std::string scope;
  bool available = false;
  SnapshotHeader header;  // meaningful only when available

  common::Bytes encode() const;
  static SnapshotOffer decode(common::BytesView data);
};

/// snap.fetch: ask the donor for one chunk of the content-addressed
/// snapshot `root`.
struct ChunkRequest {
  std::string scope;
  crypto::Digest root{};
  std::uint64_t index = 0;

  common::Bytes encode() const;
  static ChunkRequest decode(common::BytesView data);
};

/// snap.chunk: one chunk, or ok=false when the donor no longer holds the
/// requested root (its checkpoint advanced — benign, not misbehavior).
struct SnapshotChunk {
  std::string scope;
  crypto::Digest root{};
  std::uint64_t index = 0;
  bool ok = false;
  common::Bytes data;

  common::Bytes encode() const;
  static SnapshotChunk decode(common::BytesView data);
};

/// snap.vote: the voter's own latest checkpoint root at the requested
/// height (known=false when it has no checkpoint there).
struct RootVote {
  std::string scope;
  std::uint64_t height = 0;
  bool known = false;
  crypto::Digest root{};

  common::Bytes encode() const;
  static RootVote decode(common::BytesView data);
};

// ---- Engine ---------------------------------------------------------------

/// Why a joiner gave up on a donor. Shared by the chunked snapshot
/// engine (this file) and the trie-node delta engine (triesync.hpp).
enum class TransferReject {
  MalformedOffer,    // header not self-consistent / below min height
  OfferCheckFailed,  // height/tip contradicts the sealed delivery log
  EquivocatedRoot,   // quorum of peers disavows the offered root
  TamperedChunk,     // chunk fails verification against the root
  TamperedNode,      // trie node fails hash verification / will not decode
  InconsistentBody,  // all chunks verified but the body will not decode
  DonorGone,         // donor refused / lost the root (benign, no evidence)
};

const char* to_string(TransferReject reason);
/// True when the reason proves misbehavior (platforms emit Evidence and
/// quarantine); false for benign failover.
bool is_misbehavior(TransferReject reason);

struct TransferStats {
  std::uint64_t requests_sent = 0;
  std::uint64_t offers_received = 0;
  std::uint64_t votes_received = 0;
  std::uint64_t chunks_received = 0;
  std::uint64_t chunks_rejected = 0;
  std::uint64_t donors_rejected = 0;  // misbehavior rejections only
  std::uint64_t transfers_completed = 0;
  std::uint64_t transfers_failed = 0;  // donor list exhausted
  std::uint64_t resumes = 0;
  std::uint64_t malformed = 0;  // undecodable snap.* payloads dropped
};

class SnapshotTransfer {
 public:
  /// Donor/voter side: serve the replica's current checkpoint snapshot
  /// (nullptr = nothing to offer). Must stay valid until the next
  /// checkpoint replaces it.
  using Provider = std::function<const Snapshot*(
      const net::Principal& self, const std::string& scope,
      std::uint64_t min_height)>;
  /// Optional joiner-side pre-filter: check the offered height/tip
  /// against platform truth (sealed delivery log). Return false to
  /// reject the offer as OfferCheckFailed.
  using OfferCheck = std::function<bool(const net::Principal& self,
                                        const std::string& scope,
                                        const SnapshotHeader& header)>;
  /// Joiner: verified state ready to install.
  using Complete = std::function<void(const net::Principal& self,
                                      const std::string& scope,
                                      const SnapshotHeader& header,
                                      WorldState state)>;
  /// Joiner gave up on `donor`. proof_a/proof_b are the two halves of
  /// the misbehavior proof (offered header + contradicting bytes);
  /// empty for benign reasons (is_misbehavior(reason) == false).
  using Reject = std::function<void(
      const net::Principal& self, const std::string& scope,
      const net::Principal& donor, TransferReject reason,
      common::BytesView proof_a, common::BytesView proof_b)>;
  /// All donors exhausted; the platform falls back to full replay.
  using Fail = std::function<void(const net::Principal& self,
                                  const std::string& scope)>;

  struct Callbacks {
    Provider provider;
    OfferCheck offer_check;  // may be null
    Complete on_complete;
    Reject on_reject;  // may be null
    Fail on_fail;      // may be null
  };

  SnapshotTransfer(net::ReliableChannel& channel, Callbacks callbacks);

  /// Joiner entry point: start fetching a checkpoint at height >=
  /// min_height for `scope`, trying donors front to back, verifying the
  /// root against `voters`. Progress is driven by delivered messages;
  /// the caller runs the network.
  void fetch(const net::Principal& self, const std::string& scope,
             std::vector<net::Principal> donors,
             std::vector<net::Principal> voters, std::uint64_t min_height);

  /// Re-drive a stalled transfer: re-request the outstanding offer,
  /// votes, or missing chunks (message loss past the reliable channel's
  /// bounded retries, or a donor that went quiet). Verified chunks are
  /// kept — the cursor resumes where it stopped.
  void resume(const net::Principal& self, const std::string& scope);

  /// Drop an in-progress transfer (crash hooks: received chunks are
  /// volatile state and do not survive a crash).
  void abort(const net::Principal& self, const std::string& scope);

  bool active(const net::Principal& self, const std::string& scope) const;

  /// True for topics this engine consumes ("snap." prefix).
  static bool owns_topic(const std::string& topic);

  /// Route one delivered message to the engine; platforms call this from
  /// their channel handlers for owns_topic() messages. Malformed
  /// payloads are counted and dropped, never thrown.
  void handle(const net::Principal& self, const net::Message& msg);

  const TransferStats& stats() const { return stats_; }

 private:
  enum class Phase { WaitOffer, WaitVotes, Fetch };

  struct Transfer {
    std::string scope;
    std::vector<net::Principal> donors;  // front = current
    std::vector<net::Principal> voters;
    std::uint64_t min_height = 0;
    Phase phase = Phase::WaitOffer;
    SnapshotHeader header;
    std::map<net::Principal, RootVote> votes;
    // Resumable cursor: verified chunks for chunk_root. Survives donor
    // failover when the next donor offers the same root.
    crypto::Digest chunk_root{};
    std::vector<std::optional<common::Bytes>> chunks;
    std::size_t have = 0;
  };

  using Key = std::pair<net::Principal, std::string>;

  void on_request(const net::Principal& self, const net::Message& msg);
  void on_offer(const net::Principal& self, const net::Message& msg);
  void on_vote_request(const net::Principal& self, const net::Message& msg);
  void on_vote(const net::Principal& self, const net::Message& msg);
  void on_fetch(const net::Principal& self, const net::Message& msg);
  void on_chunk(const net::Principal& self, const net::Message& msg);

  void send_request(const net::Principal& self, Transfer& t);
  void send_vote_requests(const net::Principal& self, Transfer& t);
  void start_fetch(const net::Principal& self, Transfer& t);
  void request_missing_chunks(const net::Principal& self, Transfer& t);
  void evaluate_votes(const net::Principal& self, const Key& key);
  void finish(const net::Principal& self, const Key& key);
  /// Give up on the current donor and move to the next (or fail).
  void drop_donor(const net::Principal& self, const Key& key,
                  TransferReject reason, common::BytesView proof_a,
                  common::BytesView proof_b);

  net::ReliableChannel* channel_;
  Callbacks callbacks_;
  std::map<Key, Transfer> transfers_;
  TransferStats stats_;
};

}  // namespace veil::ledger
