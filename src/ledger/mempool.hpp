// Mempool with validate-once semantics.
//
// Admission is the expensive step: a transaction enters the pool only
// after its endorsement signatures / ZKPs have been checked (the platform
// adapters run that check through crypto::BatchVerifier). Admission mints
// a ValidationToken recording the body digest and the read-set versions
// the check was performed against. At block sealing the committer
// consults the token instead of re-verifying: if the digest still matches
// and none of the read versions moved, the earlier verification still
// speaks for the transaction and the signature work is skipped entirely.
// If any read version moved the token is invalidated and the transaction
// goes back through the full check.
//
// The pool is volatile by design: it is NOT written to the WAL, so a
// crash drops every token and recovery re-verifies whatever the WAL
// replays. Committed blocks never depend on pool contents. Capacity is
// bounded; overflow evicts the oldest resident (FIFO) and logs an
// EvictionRecord so operators can see drop pressure.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/clock.hpp"
#include "ledger/state.hpp"
#include "ledger/transaction.hpp"

namespace veil::ledger {

/// Proof-of-prior-verification carried by an admitted transaction. The
/// token is only honoured while the body digest matches and the recorded
/// read versions still agree with current state.
struct ValidationToken {
  std::string tx_id;
  crypto::Digest body_digest{};
  std::vector<ReadAccess> read_snapshot;
  common::SimTime admitted_at = 0;
  bool verified = false;

  common::Bytes encode() const;
  static ValidationToken decode(common::BytesView data);

  bool operator==(const ValidationToken&) const = default;
};

/// Why a transaction left the pool (or, for PinnedSkip, why it didn't).
struct EvictionRecord {
  enum class Cause : std::uint8_t {
    Capacity = 0,     // FIFO overflow
    Committed = 1,    // sealed into a block
    Invalidated = 2,  // a read-set version moved under the token
    Expired = 3,      // explicit operator removal
    PinnedSkip = 4,   // FIFO victim pinned by an in-flight wave; spared
  };

  std::string tx_id;
  Cause cause = Cause::Capacity;
  common::SimTime at = 0;

  common::Bytes encode() const;
  static EvictionRecord decode(common::BytesView data);

  bool operator==(const EvictionRecord&) const = default;
};

struct MempoolConfig {
  std::size_t capacity = 1024;
};

struct MempoolStats {
  std::uint64_t admitted = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t evicted_capacity = 0;
  std::uint64_t removed_committed = 0;
  std::uint64_t token_hits = 0;
  std::uint64_t token_misses = 0;
  std::uint64_t invalidated = 0;
  std::uint64_t eviction_skips_pinned = 0;  // FIFO victims spared by a pin
  std::uint64_t pinned_overflow = 0;  // admits with every resident pinned
};

class Mempool {
 public:
  explicit Mempool(MempoolConfig config = {}) : config_(config) {}

  /// Admit `tx` after it passed full verification (`verified` records the
  /// outcome; unverified transactions never mint a usable token). Returns
  /// false and counts a duplicate if the id is already resident. May evict
  /// the oldest resident on overflow.
  bool admit(const Transaction& tx, bool verified, common::SimTime now);

  /// Token for `tx_id`, or nullptr if not resident.
  const ValidationToken* token(const std::string& tx_id) const;

  /// Validate-once check at sealing time: true iff `tx` holds a verified
  /// token whose body digest matches and whose recorded read versions all
  /// agree with `state`. A version mismatch invalidates (and drops) the
  /// token, so the caller falls back to full verification exactly once.
  bool validated(const Transaction& tx, const WorldState& state,
                 common::SimTime now);

  /// Drop `tx_id` from the pool, recording why.
  void remove(const std::string& tx_id, EvictionRecord::Cause cause,
              common::SimTime now);

  /// Pin `tx_id`: capacity eviction refuses to take it (the next-oldest
  /// unpinned resident goes instead, and the skip is logged with cause
  /// PinnedSkip). Platform wave pipelines pin the ids whose
  /// ValidationTokens are in flight between admission and commit — an
  /// evicted token there would silently force re-verification or, worse,
  /// drop an already-endorsed transaction under overload. Pins do not
  /// block explicit remove(): commit/invalidate still retire the entry.
  void pin(const std::string& tx_id) { pinned_.insert(tx_id); }
  void unpin(const std::string& tx_id) { pinned_.erase(tx_id); }
  bool is_pinned(const std::string& tx_id) const {
    return pinned_.contains(tx_id);
  }
  std::size_t pinned() const { return pinned_.size(); }

  /// Drop everything (crash/restart path — the pool is volatile).
  void clear();

  std::size_t size() const { return tokens_.size(); }
  const MempoolStats& stats() const { return stats_; }
  const std::vector<EvictionRecord>& evictions() const { return evictions_; }

 private:
  MempoolConfig config_;
  std::map<std::string, ValidationToken> tokens_;
  std::deque<std::string> fifo_;  // admission order; may hold stale ids
  std::set<std::string> pinned_;
  std::vector<EvictionRecord> evictions_;
  MempoolStats stats_;
};

}  // namespace veil::ledger
