#include "ledger/triesync.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "common/serialize.hpp"

namespace veil::ledger {

namespace {

constexpr char kTopicRequest[] = "tsync.req";
constexpr char kTopicOffer[] = "tsync.offer";
constexpr char kTopicVoteRequest[] = "tsync.vote-req";
constexpr char kTopicVote[] = "tsync.vote";
constexpr char kTopicFetch[] = "tsync.fetch";
constexpr char kTopicNodes[] = "tsync.nodes";

void write_digest(common::Writer& w, const crypto::Digest& d) {
  w.raw(common::BytesView(d.data(), d.size()));
}

crypto::Digest read_digest(common::Reader& r) {
  const common::Bytes raw = r.raw(crypto::kSha256DigestSize);
  crypto::Digest d{};
  std::copy(raw.begin(), raw.end(), d.begin());
  return d;
}

void require_done(const common::Reader& r, const char* what) {
  if (!r.done()) {
    throw common::ProtocolError(std::string("trailing bytes after ") + what);
  }
}

}  // namespace

// ---- Wire codecs ----------------------------------------------------------

common::Bytes TrieSyncOffer::encode() const {
  common::Writer w;
  w.str(scope);
  w.boolean(available);
  if (available) {
    w.u64(height);
    write_digest(w, tip_hash);
    write_digest(w, state_root);
  }
  return w.take();
}

TrieSyncOffer TrieSyncOffer::decode(common::BytesView data) {
  common::Reader r(data);
  TrieSyncOffer offer;
  offer.scope = r.str();
  offer.available = r.boolean();
  if (offer.available) {
    offer.height = r.u64();
    offer.tip_hash = read_digest(r);
    offer.state_root = read_digest(r);
  }
  require_done(r, "triesync offer");
  return offer;
}

common::Bytes NodeRequest::encode() const {
  common::Writer w;
  w.str(scope);
  write_digest(w, state_root);
  w.varint(wanted.size());
  for (const crypto::Digest& h : wanted) write_digest(w, h);
  return w.take();
}

NodeRequest NodeRequest::decode(common::BytesView data) {
  common::Reader r(data);
  NodeRequest req;
  req.scope = r.str();
  req.state_root = read_digest(r);
  const std::uint64_t count = r.varint();
  if (count > r.remaining() / crypto::kSha256DigestSize) {
    throw common::ProtocolError("node request count overruns buffer");
  }
  req.wanted.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) req.wanted.push_back(read_digest(r));
  require_done(r, "node request");
  return req;
}

common::Bytes NodeBatch::encode() const {
  common::Writer w;
  w.str(scope);
  write_digest(w, state_root);
  w.boolean(ok);
  w.varint(nodes.size());
  for (const common::Bytes& n : nodes) w.bytes(n);
  return w.take();
}

NodeBatch NodeBatch::decode(common::BytesView data) {
  common::Reader r(data);
  NodeBatch batch;
  batch.scope = r.str();
  batch.state_root = read_digest(r);
  batch.ok = r.boolean();
  const std::uint64_t count = r.varint();
  if (count > r.remaining()) {
    throw common::ProtocolError("node batch count overruns buffer");
  }
  batch.nodes.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) batch.nodes.push_back(r.bytes());
  require_done(r, "node batch");
  return batch;
}

// ---- Engine ---------------------------------------------------------------

TrieSync::TrieSync(net::ReliableChannel& channel, Callbacks callbacks)
    : channel_(&channel), callbacks_(std::move(callbacks)) {}

bool TrieSync::owns_topic(const std::string& topic) {
  return topic.rfind("tsync.", 0) == 0;
}

void TrieSync::fetch(const net::Principal& self, const std::string& scope,
                     std::vector<net::Principal> donors,
                     std::vector<net::Principal> voters,
                     std::uint64_t min_height, const WorldState& prior) {
  if (donors.empty()) {
    if (callbacks_.on_fail) callbacks_.on_fail(self, scope);
    ++stats_.transfers_failed;
    return;
  }
  Transfer t;
  t.scope = scope;
  t.donors = std::move(donors);
  t.voters = std::move(voters);
  t.min_height = min_height;
  // Index every node the joiner already holds: the dedup set during
  // discovery, and the reuse set during the final graft.
  t.prior = prior.trie().build_node_index();
  auto [it, inserted] =
      transfers_.insert_or_assign(Key{self, scope}, std::move(t));
  (void)inserted;
  send_request(self, it->second);
}

void TrieSync::resume(const net::Principal& self, const std::string& scope) {
  auto it = transfers_.find(Key{self, scope});
  if (it == transfers_.end()) return;
  ++stats_.resumes;
  Transfer& t = it->second;
  switch (t.phase) {
    case Phase::WaitOffer:
      send_request(self, t);
      break;
    case Phase::WaitVotes:
      send_vote_requests(self, t);
      break;
    case Phase::Fetch:
      rerequest_outstanding(self, t);
      request_pending(self, t);
      break;
  }
}

void TrieSync::abort(const net::Principal& self, const std::string& scope) {
  transfers_.erase(Key{self, scope});
}

bool TrieSync::active(const net::Principal& self,
                      const std::string& scope) const {
  return transfers_.contains(Key{self, scope});
}

void TrieSync::handle(const net::Principal& self, const net::Message& msg) {
  try {
    if (msg.topic == kTopicRequest) {
      on_request(self, msg);
    } else if (msg.topic == kTopicOffer) {
      on_offer(self, msg);
    } else if (msg.topic == kTopicVoteRequest) {
      on_vote_request(self, msg);
    } else if (msg.topic == kTopicVote) {
      on_vote(self, msg);
    } else if (msg.topic == kTopicFetch) {
      on_fetch(self, msg);
    } else if (msg.topic == kTopicNodes) {
      on_nodes(self, msg);
    }
  } catch (const common::Error&) {
    // Malformed tsync.* payload: drop it. The resume path re-requests
    // anything that mattered; a replica never crashes on wire bytes.
    ++stats_.malformed;
  }
}

// ---- Donor side -----------------------------------------------------------

const NodeStore& TrieSync::serve_store(const Key& key,
                                       const WorldState& state) {
  const crypto::Digest root = state.digest();
  auto it = serve_cache_.find(key);
  if (it == serve_cache_.end() || it->second.first != root) {
    auto store = std::make_shared<NodeStore>();
    state.trie().collect_nodes(*store);
    it = serve_cache_.insert_or_assign(key, std::make_pair(root, store)).first;
  }
  return *it->second.second;
}

void TrieSync::on_request(const net::Principal& self, const net::Message& msg) {
  const SnapshotRequest req = SnapshotRequest::decode(msg.payload);
  TrieSyncOffer offer;
  offer.scope = req.scope;
  const auto ds = callbacks_.provider
                      ? callbacks_.provider(self, req.scope, req.min_height)
                      : std::nullopt;
  if (ds.has_value() && ds->state != nullptr && ds->height >= req.min_height) {
    offer.available = true;
    offer.height = ds->height;
    offer.tip_hash = ds->tip_hash;
    offer.state_root = ds->state->digest();
  }
  channel_->send(self, msg.from, kTopicOffer, offer.encode());
}

void TrieSync::on_vote_request(const net::Principal& self,
                               const net::Message& msg) {
  const SnapshotRequest req = SnapshotRequest::decode(msg.payload);
  RootVote vote;
  vote.scope = req.scope;
  vote.height = req.min_height;
  // A voter vouches only for a height it checkpointed itself — replicas
  // checkpoint on the same deterministic schedule, so live honest peers
  // always can.
  const auto ds =
      callbacks_.provider ? callbacks_.provider(self, req.scope, 0)
                          : std::nullopt;
  if (ds.has_value() && ds->state != nullptr && ds->height == req.min_height) {
    vote.known = true;
    vote.root = ds->state->digest();
  }
  channel_->send(self, msg.from, kTopicVote, vote.encode());
}

void TrieSync::on_fetch(const net::Principal& self, const net::Message& msg) {
  const NodeRequest req = NodeRequest::decode(msg.payload);
  NodeBatch batch;
  batch.scope = req.scope;
  batch.state_root = req.state_root;
  const auto ds =
      callbacks_.provider ? callbacks_.provider(self, req.scope, 0)
                          : std::nullopt;
  if (ds.has_value() && ds->state != nullptr &&
      ds->state->digest() == req.state_root) {
    const NodeStore& store = serve_store(Key{self, req.scope}, *ds->state);
    batch.ok = true;
    for (const crypto::Digest& h : req.wanted) {
      const auto it = store.find(h);
      // An honest donor holds every node under its own root; a hash it
      // lacks is simply skipped (the joiner's resume re-asks, and a
      // donor that keeps skipping starves out and fails over benignly).
      if (it != store.end()) batch.nodes.push_back(it->second);
    }
  }
  channel_->send(self, msg.from, kTopicNodes, batch.encode());
}

// ---- Joiner side ----------------------------------------------------------

void TrieSync::send_request(const net::Principal& self, Transfer& t) {
  t.phase = Phase::WaitOffer;
  SnapshotRequest req;
  req.scope = t.scope;
  req.min_height = t.min_height;
  channel_->send(self, t.donors.front(), kTopicRequest, req.encode());
  ++stats_.requests_sent;
}

void TrieSync::send_vote_requests(const net::Principal& self, Transfer& t) {
  t.phase = Phase::WaitVotes;
  SnapshotRequest req;
  req.scope = t.scope;
  req.min_height = t.height;
  for (const net::Principal& voter : t.voters) {
    if (t.votes.contains(voter)) continue;
    channel_->send(self, voter, kTopicVoteRequest, req.encode());
  }
}

void TrieSync::on_offer(const net::Principal& self, const net::Message& msg) {
  const TrieSyncOffer offer = TrieSyncOffer::decode(msg.payload);
  auto it = transfers_.find(Key{self, offer.scope});
  if (it == transfers_.end()) return;
  Transfer& t = it->second;
  if (t.phase != Phase::WaitOffer || msg.from != t.donors.front()) {
    return;  // stale offer from an already-dropped donor
  }
  ++stats_.offers_received;
  const Key key{self, offer.scope};
  if (!offer.available) {
    drop_donor(self, key, TransferReject::DonorGone, {}, {});
    return;
  }
  if (offer.height < t.min_height) {
    drop_donor(self, key, TransferReject::MalformedOffer, msg.payload, {});
    return;
  }
  if (callbacks_.offer_check &&
      !callbacks_.offer_check(self, offer.scope, offer.height,
                              offer.tip_hash)) {
    drop_donor(self, key, TransferReject::OfferCheckFailed, msg.payload, {});
    return;
  }
  // Fresh nodes verified under the same root on an earlier attempt are
  // still good (content-addressed); a different root restarts discovery.
  if (t.state_root != offer.state_root) {
    t.fresh.clear();
    t.fresh_bytes = 0;
    t.outstanding.clear();
    t.pending.clear();
  }
  t.height = offer.height;
  t.tip_hash = offer.tip_hash;
  t.state_root = offer.state_root;
  t.offer_bytes = common::Bytes(msg.payload.begin(), msg.payload.end());
  t.votes.clear();
  if (t.voters.empty()) {
    start_fetch(self, t);
  } else {
    send_vote_requests(self, t);
  }
}

void TrieSync::on_vote(const net::Principal& self, const net::Message& msg) {
  const RootVote vote = RootVote::decode(msg.payload);
  const Key key{self, vote.scope};
  auto it = transfers_.find(key);
  if (it == transfers_.end()) return;
  Transfer& t = it->second;
  if (t.phase != Phase::WaitVotes || vote.height != t.height) return;
  if (std::find(t.voters.begin(), t.voters.end(), msg.from) ==
      t.voters.end()) {
    return;  // not a voter we asked
  }
  t.votes[msg.from] = vote;
  ++stats_.votes_received;
  evaluate_votes(self, key);
}

void TrieSync::evaluate_votes(const net::Principal& self, const Key& key) {
  Transfer& t = transfers_.at(key);
  std::size_t agree = 0;
  std::size_t disagree = 0;
  common::Bytes disagree_proof;
  for (const auto& [voter, vote] : t.votes) {
    if (!vote.known) continue;
    if (vote.root == t.state_root) {
      ++agree;
    } else {
      ++disagree;
      if (disagree_proof.empty()) disagree_proof = vote.encode();
    }
  }
  const std::size_t n = t.voters.size();
  // Majority confirms: the root every honest replica computed.
  if (agree * 2 > n) {
    start_fetch(self, t);
    return;
  }
  // Majority disavows: the donor offered a root no honest replica ever
  // produced. Proof = its offer + one contradicting vote.
  if (disagree * 2 > n) {
    drop_donor(self, key, TransferReject::EquivocatedRoot, t.offer_bytes,
               disagree_proof);
    return;
  }
  if (t.votes.size() == n) {
    // Everyone answered, no majority either way (abstentions). Fail
    // closed; evidence only if someone actively contradicted the root.
    if (disagree > 0) {
      drop_donor(self, key, TransferReject::EquivocatedRoot, t.offer_bytes,
                 disagree_proof);
    } else {
      drop_donor(self, key, TransferReject::DonorGone, {}, {});
    }
  }
}

void TrieSync::start_fetch(const net::Principal& self, Transfer& t) {
  t.phase = Phase::Fetch;
  // Seed the frontier with the root — unless the joiner already holds
  // it (or the state is empty), in which case there is nothing to ship.
  if (t.state_root != StateTrie::empty_root() &&
      !t.prior.contains(t.state_root) && !t.fresh.contains(t.state_root) &&
      !t.outstanding.contains(t.state_root)) {
    t.pending.push_back(t.state_root);
  }
  request_pending(self, t);
  if (t.outstanding.empty() && t.pending.empty()) {
    finish(self, Key{self, t.scope});
  }
}

void TrieSync::request_pending(const net::Principal& self, Transfer& t) {
  while (!t.pending.empty()) {
    NodeRequest req;
    req.scope = t.scope;
    req.state_root = t.state_root;
    const std::size_t take = std::min(kBatchLimit, t.pending.size());
    req.wanted.assign(t.pending.end() - static_cast<std::ptrdiff_t>(take),
                      t.pending.end());
    t.pending.resize(t.pending.size() - take);
    for (const crypto::Digest& h : req.wanted) t.outstanding.insert(h);
    channel_->send(self, t.donors.front(), kTopicFetch, req.encode());
  }
}

void TrieSync::rerequest_outstanding(const net::Principal& self, Transfer& t) {
  std::vector<crypto::Digest> all(t.outstanding.begin(), t.outstanding.end());
  for (std::size_t off = 0; off < all.size(); off += kBatchLimit) {
    NodeRequest req;
    req.scope = t.scope;
    req.state_root = t.state_root;
    const std::size_t take = std::min(kBatchLimit, all.size() - off);
    req.wanted.assign(all.begin() + static_cast<std::ptrdiff_t>(off),
                      all.begin() + static_cast<std::ptrdiff_t>(off + take));
    channel_->send(self, t.donors.front(), kTopicFetch, req.encode());
  }
}

void TrieSync::on_nodes(const net::Principal& self, const net::Message& msg) {
  const NodeBatch batch = NodeBatch::decode(msg.payload);
  const Key key{self, batch.scope};
  auto it = transfers_.find(key);
  if (it == transfers_.end()) return;
  Transfer& t = it->second;
  if (t.phase != Phase::Fetch || msg.from != t.donors.front() ||
      batch.state_root != t.state_root) {
    return;  // stale batch from a previous donor or superseded root
  }
  ++stats_.batches_received;
  if (!batch.ok) {
    drop_donor(self, key, TransferReject::DonorGone, {}, {});
    return;
  }
  for (const common::Bytes& bytes : batch.nodes) {
    const crypto::Digest h = StateTrie::hash_node(bytes);
    if (!t.outstanding.contains(h)) {
      if (t.fresh.contains(h)) continue;  // duplicate delivery: benign
      // Bytes that hash to nothing we asked for: the donor is feeding
      // us garbage (a tampered node can never match its content hash).
      ++stats_.nodes_rejected;
      drop_donor(self, key, TransferReject::TamperedNode, t.offer_bytes,
                 msg.payload);
      return;
    }
    TrieNodeWire wire;
    try {
      wire = StateTrie::decode_node(bytes);
    } catch (const common::Error&) {
      // Hash matches a node we asked for, bytes will not decode: the
      // donor committed to garbage under its own root.
      ++stats_.nodes_rejected;
      drop_donor(self, key, TransferReject::TamperedNode, t.offer_bytes,
                 msg.payload);
      return;
    }
    t.outstanding.erase(h);
    t.fresh_bytes += bytes.size();
    ++stats_.nodes_received;
    stats_.node_bytes_received += bytes.size();
    t.fresh.emplace(h, bytes);
    for (const auto& [nibble, child] : wire.children) {
      (void)nibble;
      if (t.prior.contains(child) || t.fresh.contains(child) ||
          t.outstanding.contains(child)) {
        continue;  // already held or already in flight: dedup
      }
      t.pending.push_back(child);
    }
  }
  request_pending(self, t);
  if (t.outstanding.empty() && t.pending.empty()) finish(self, key);
}

void TrieSync::finish(const net::Principal& self, const Key& key) {
  Transfer& t = transfers_.at(key);
  StateTrie trie;
  try {
    trie = StateTrie::graft(t.state_root, t.fresh, t.prior);
  } catch (const common::Error&) {
    // Every shipped node verified individually, yet the graft cannot
    // close the tree — the donor's node set is inconsistent with the
    // root it announced.
    drop_donor(self, key, TransferReject::InconsistentBody, t.offer_bytes, {});
    return;
  }
  Report report;
  report.fresh_nodes = t.fresh.size();
  report.fresh_bytes = t.fresh_bytes;
  report.prior_nodes = t.prior.size();
  const std::uint64_t height = t.height;
  const crypto::Digest tip = t.tip_hash;
  const std::string scope = t.scope;
  transfers_.erase(key);
  ++stats_.transfers_completed;
  if (callbacks_.on_complete) {
    callbacks_.on_complete(self, scope, height, tip,
                           WorldState::from_trie(std::move(trie)), report);
  }
}

void TrieSync::drop_donor(const net::Principal& self, const Key& key,
                          TransferReject reason, common::BytesView proof_a,
                          common::BytesView proof_b) {
  Transfer& t = transfers_.at(key);
  const net::Principal donor = t.donors.front();
  const std::string scope = t.scope;
  if (is_misbehavior(reason)) ++stats_.donors_rejected;
  if (callbacks_.on_reject) {
    callbacks_.on_reject(self, scope, donor, reason, proof_a, proof_b);
  }
  // The callback may have aborted or restarted this transfer; re-find.
  auto it = transfers_.find(key);
  if (it == transfers_.end()) return;
  Transfer& tt = it->second;
  tt.donors.erase(tt.donors.begin());
  tt.votes.clear();
  // Requests in flight to the dropped donor will never be answered (or
  // will be ignored as stale); move them back to pending for the next
  // donor.
  for (const crypto::Digest& h : tt.outstanding) tt.pending.push_back(h);
  tt.outstanding.clear();
  if (is_misbehavior(reason)) {
    // A donor dropped for proven misbehavior loses its vote too (the
    // platform just quarantined it; see SnapshotTransfer::drop_donor).
    std::erase(tt.voters, donor);
    std::erase(tt.donors, donor);
  }
  if (tt.donors.empty()) {
    transfers_.erase(it);
    ++stats_.transfers_failed;
    if (callbacks_.on_fail) callbacks_.on_fail(self, scope);
    return;
  }
  send_request(self, tt);
}

}  // namespace veil::ledger
