// Authenticated copy-on-write Merkle trie: the state backend behind
// WorldState (ledger/state.hpp).
//
// Layout: a hex-nibble radix (Patricia) trie. Keys are byte strings
// split into 4-bit nibbles; every node carries a compressed nibble run
// (`path`), an optional (value, version) payload, and a sorted list of
// child edges. Each node is immutable after construction and carries
// the SHA-256 of its canonical encoding, which references children by
// THEIR hashes — so the root hash authenticates the entire key/value/
// version mapping, exactly like a block hash authenticates a chain.
//
// The properties everything else in this PR leans on:
//  * Incremental roots. put/erase rebuild only the nodes on the touched
//    path (O(depth), depth ~ log16 n for random keys); every node off
//    the path is shared with the previous version by shared_ptr. A
//    million-account state re-hashes a handful of small nodes per
//    write, not the whole map.
//  * Free historical versions. Copying a StateTrie copies one pointer;
//    the old root keeps authenticating the old state. SnapshotStore
//    exploits this to keep the checkpoint state resident at zero cost.
//  * Content-addressed nodes. encode_node() is the wire format: a node
//    store keyed by node hash IS a snapshot, two snapshots dedup by
//    construction, and a lagging replica can fetch exactly the nodes it
//    lacks (ledger/triesync.hpp).
//  * Proofs. A root-to-leaf node path is a self-verifying inclusion (or
//    exclusion) proof: O(depth) hashes to audit one account against a
//    trusted root (StateProof).
//
// Cold tier: a trie reconstructed from a node store can defer child
// decoding (`Lazy`) — children stay in canonical encoded form and are
// decoded on first touch. Lazy tries are NOT safe for concurrent reads
// (resolution mutates the child slot); fully-resolved tries (every trie
// built by puts, decode(), or eager reconstruction) are immutable and
// safe to read from many threads.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/bytes.hpp"
#include "crypto/sha256.hpp"

namespace veil::ledger {

struct DigestHash {
  std::size_t operator()(const crypto::Digest& d) const {
    std::size_t h;
    static_assert(sizeof(h) <= crypto::kSha256DigestSize);
    std::memcpy(&h, d.data(), sizeof(h));
    return h;
  }
};

/// Canonical encoded nodes keyed by node hash. This is the snapshot /
/// transfer currency: a (root hash, NodeStore) pair is a complete,
/// self-verifying state image, deduplicated by construction.
using NodeStore = std::unordered_map<crypto::Digest, common::Bytes, DigestHash>;

struct TrieNode;
using NodeRef = std::shared_ptr<const TrieNode>;

/// Child edge: leading nibble, child hash (always present — it is what
/// the parent's own hash commits to), and the decoded child, resolved
/// lazily from the cold store when absent.
struct TrieChild {
  std::uint8_t nibble = 0;
  crypto::Digest hash{};
  mutable NodeRef node;  // nullptr = cold (encoded form in the store)
};

struct TrieNode {
  common::Bytes path;  // compressed run, one nibble (<16) per byte
  bool has_value = false;
  common::Bytes value;
  std::uint64_t version = 0;
  std::vector<TrieChild> children;  // strictly increasing nibble
  crypto::Digest hash{};            // sha256 of canonical encoding
};

/// Decoded wire form of one node (decode-fuzzed; see canonical checks in
/// decode_node). Children are carried by hash only.
struct TrieNodeWire {
  common::Bytes path;
  bool has_value = false;
  common::Bytes value;
  std::uint64_t version = 0;
  std::vector<std::pair<std::uint8_t, crypto::Digest>> children;
};

/// Merkle inclusion/exclusion proof for one key against a trie root:
/// the encoded nodes from the root to the terminal node of the lookup
/// walk. verify_proof() recomputes every hash, checks the child-hash
/// chain and nibble consumption, and for exclusion checks that the walk
/// legitimately dead-ends — O(depth) hashes, no other state needed.
struct StateProof {
  std::string key;
  bool exists = false;
  common::Bytes value;          // meaningful when exists
  std::uint64_t version = 0;    // meaningful when exists
  std::vector<common::Bytes> nodes;  // root-first encoded path

  common::Bytes encode() const;
  static StateProof decode(common::BytesView data);
};

class StateTrie {
 public:
  /// Per-key visitor for ordered walks. Return false to stop early.
  using Visitor = std::function<bool(
      const std::string& key, const common::Bytes& value,
      std::uint64_t version)>;

  /// Root hash of the empty trie (domain-separated constant, not a hash
  /// of any byte string an attacker could present).
  static const crypto::Digest& empty_root();

  StateTrie() = default;

  /// Value + version, or nullopt. O(depth).
  std::optional<std::pair<common::Bytes, std::uint64_t>> get(
      std::string_view key) const;
  /// Version only — the MVCC hot path; never copies the value. O(depth).
  std::optional<std::uint64_t> version_of(std::string_view key) const;

  /// Insert or overwrite, rebuilding only the touched path. O(depth).
  void set(std::string_view key, common::Bytes value, std::uint64_t version);
  /// Remove; no-op (and no root churn) when absent. O(depth).
  void erase(std::string_view key);

  std::size_t size() const;
  bool empty() const { return !root_; }

  /// Incremental root: O(1), always current.
  const crypto::Digest& root_hash() const {
    return root_ ? root_->hash : empty_root();
  }

  /// Ordered walks. Keys are visited in byte-lexicographic order; the
  /// prefix/range forms descend only the covering subtrie, so a scan
  /// matching k keys touches O(depth + k) nodes no matter how large the
  /// trie is. Each returns the number of trie nodes visited (regression
  /// tests assert scans stay sublinear).
  std::size_t for_each(const Visitor& visit) const;
  std::size_t scan_prefix(std::string_view prefix, const Visitor& visit) const;
  /// [start_key, end_key); empty end_key = unbounded.
  std::size_t scan_range(std::string_view start_key, std::string_view end_key,
                         const Visitor& visit) const;

  // ---- Content-addressed node image (snapshots, delta sync) ----------------

  /// Canonical encoding of one node (the wire/cold form).
  static common::Bytes encode_node(const TrieNode& node);
  /// Decode + canonical-form checks (nibble ranges, strictly sorted
  /// children, no trailing bytes). Throws common::Error on violation.
  static TrieNodeWire decode_node(common::BytesView data);
  /// Hash an encoded node exactly as parents reference it.
  static crypto::Digest hash_node(common::BytesView encoded);

  /// Dump every reachable node into `out` (dedup by hash). Resolves any
  /// cold children.
  void collect_nodes(NodeStore& out) const;
  /// Hashes of every reachable node (the joiner-side dedup set).
  void node_hashes(std::unordered_set<crypto::Digest, DigestHash>& out) const;

  /// Index of every reachable decoded node by hash (donor-side reuse
  /// when grafting a delta onto a prior trie).
  using NodeIndex = std::unordered_map<crypto::Digest, NodeRef, DigestHash>;
  NodeIndex build_node_index() const;

  enum class Materialize { Eager, Lazy };

  /// Rebuild a trie from a content-addressed node image. Eager decodes
  /// and hash-verifies every node up front (throws common::Error on a
  /// missing or mis-hashed node). Lazy decodes only the root and keeps
  /// the store — children decode on first touch (cold tier).
  static StateTrie from_nodes(const crypto::Digest& root_hash,
                              std::shared_ptr<const NodeStore> store,
                              Materialize mode = Materialize::Eager);

  /// Delta reconstruction: like from_nodes, but subtrees whose hash
  /// appears in `prior` are adopted from it wholesale (O(1) per shared
  /// subtree). `fresh` needs to hold only the nodes `prior` lacks —
  /// exactly what a delta transfer ships.
  static StateTrie graft(const crypto::Digest& root_hash,
                         const NodeStore& fresh, const NodeIndex& prior);

  // ---- Proofs --------------------------------------------------------------

  StateProof prove(std::string_view key) const;
  /// Verify a proof against a trusted root. True iff the node path
  /// hash-chains from `root`, consumes exactly `proof.key`, and
  /// terminates consistently with proof.exists/value/version.
  static bool verify_proof(const crypto::Digest& root, const StateProof& proof);

 private:
  const TrieNode* resolve(const TrieChild& child) const;
  NodeRef set_rec(const TrieNode* node, const common::Bytes& nibbles,
                  std::size_t pos, common::Bytes& value,
                  std::uint64_t version, bool& inserted);
  NodeRef erase_rec(const TrieNode* node, const common::Bytes& nibbles,
                    std::size_t pos, bool& erased, bool& unchanged);
  std::size_t walk(const TrieNode* node, std::string& key_nibbles,
                   const Visitor& visit, bool& keep_going) const;

  NodeRef root_;
  std::shared_ptr<const NodeStore> cold_;  // set only for lazy tries
  mutable std::optional<std::size_t> size_;  // cached; exact when set
};

}  // namespace veil::ledger
