// Ordering service (§3.4 "Ordering transactions").
//
// The service that sequences transactions into blocks. The paper's key
// observation: for Fabric and Corda "this service has visibility of all
// DLT events, including parties to transactions and transaction details",
// so architects must weigh whether parties can run their own.
//
// Two deployments model that choice:
//  * SHARED  — one operator sequences every channel and observes every
//    transaction that crosses it (visibility recorded in the auditor).
//  * PRIVATE — the channel members run their own instance; only the
//    member-operator observes.
//
// The service is channel-aware: each channel gets its own chain of block
// numbers, and blocks are cut by size or explicit flush.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "ledger/block.hpp"
#include "net/leakage.hpp"

namespace veil::ledger {

enum class OrdererDeployment { Shared, Private };

class OrderingService {
 public:
  /// `operator_name` is the principal that administers this instance and
  /// therefore observes submitted transactions.
  OrderingService(std::string operator_name, OrdererDeployment deployment,
                  net::LeakageAuditor& auditor, std::size_t batch_size = 16);

  /// Submit for ordering. Visibility of the transaction by the operator
  /// is recorded. Returns blocks cut as a result (0 or 1).
  std::vector<Block> submit(const Transaction& tx, common::SimTime now);

  /// Cut a block per channel from any pending transactions.
  std::vector<Block> flush(common::SimTime now);

  const std::string& operator_name() const { return operator_name_; }
  OrdererDeployment deployment() const { return deployment_; }

  std::uint64_t transactions_ordered() const { return ordered_count_; }

  /// Bound the per-channel pending deque (0 = unbounded). Callers must
  /// check at_capacity() before submit() and surface a Busy result — the
  /// orderer's pending set is one of the queues that must not grow
  /// silently under overload.
  void set_pending_limit(std::size_t limit) { pending_limit_ = limit; }
  std::size_t pending_limit() const { return pending_limit_; }
  bool at_capacity(const std::string& channel) const {
    if (pending_limit_ == 0) return false;
    const auto it = channels_.find(channel);
    return it != channels_.end() && it->second.pending.size() >= pending_limit_;
  }
  std::size_t pending(const std::string& channel) const {
    const auto it = channels_.find(channel);
    return it == channels_.end() ? 0 : it->second.pending.size();
  }

 private:
  Block cut(const std::string& channel, common::SimTime now);

  struct ChannelTip {
    std::uint64_t next_height = 0;
    crypto::Digest prev_hash;
    std::deque<Transaction> pending;
    ChannelTip();
  };

  std::string operator_name_;
  OrdererDeployment deployment_;
  net::LeakageAuditor* auditor_;
  std::size_t batch_size_;
  std::size_t pending_limit_ = 0;
  std::map<std::string, ChannelTip> channels_;
  std::uint64_t ordered_count_ = 0;
};

}  // namespace veil::ledger
