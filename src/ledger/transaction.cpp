#include "ledger/transaction.hpp"

#include "common/serialize.hpp"

namespace veil::ledger {

common::Bytes Transaction::body_encoding() const {
  common::Writer w;
  w.str(channel);
  w.str(contract);
  w.str(action);
  w.varint(participants.size());
  for (const std::string& p : participants) w.str(p);
  w.varint(reads.size());
  for (const ReadAccess& r : reads) {
    w.str(r.key);
    w.u64(r.version);
  }
  w.varint(writes.size());
  for (const KvWrite& kv : writes) {
    w.str(kv.key);
    w.bytes(kv.value);
    w.boolean(kv.is_delete);
  }
  w.bytes(payload);
  w.varint(hash_refs.size());
  for (const HashRef& ref : hash_refs) {
    w.str(ref.label);
    w.raw(common::BytesView(ref.digest.data(), ref.digest.size()));
  }
  w.u64(timestamp);
  w.u64(deadline_us);
  w.boolean(data_opaque);
  w.boolean(parties_pseudonymous);
  return w.take();
}

crypto::Digest Transaction::body_digest() const {
  return crypto::sha256(body_encoding());
}

std::string Transaction::id() const {
  return crypto::digest_hex(body_digest()).substr(0, 24);
}

common::Bytes Transaction::encode() const {
  common::Writer w;
  w.bytes(body_encoding());
  w.varint(endorsements.size());
  for (const Endorsement& e : endorsements) {
    w.str(e.endorser);
    w.bytes(e.key.encode());
    w.bytes(e.signature.encode());
  }
  return w.take();
}

Transaction Transaction::decode(common::BytesView data) {
  common::Reader outer(data);
  const common::Bytes body = outer.bytes();
  common::Reader r(body);

  Transaction tx;
  tx.channel = r.str();
  tx.contract = r.str();
  tx.action = r.str();
  const std::uint64_t n_parties = r.varint();
  for (std::uint64_t i = 0; i < n_parties; ++i) tx.participants.push_back(r.str());
  const std::uint64_t n_reads = r.varint();
  for (std::uint64_t i = 0; i < n_reads; ++i) {
    ReadAccess ra;
    ra.key = r.str();
    ra.version = r.u64();
    tx.reads.push_back(std::move(ra));
  }
  const std::uint64_t n_writes = r.varint();
  for (std::uint64_t i = 0; i < n_writes; ++i) {
    KvWrite kv;
    kv.key = r.str();
    kv.value = r.bytes();
    kv.is_delete = r.boolean();
    tx.writes.push_back(std::move(kv));
  }
  tx.payload = r.bytes();
  const std::uint64_t n_refs = r.varint();
  for (std::uint64_t i = 0; i < n_refs; ++i) {
    HashRef ref;
    ref.label = r.str();
    const common::Bytes d = r.raw(crypto::kSha256DigestSize);
    std::copy(d.begin(), d.end(), ref.digest.begin());
    tx.hash_refs.push_back(std::move(ref));
  }
  tx.timestamp = r.u64();
  tx.deadline_us = r.u64();
  tx.data_opaque = r.boolean();
  tx.parties_pseudonymous = r.boolean();

  const std::uint64_t n_endorse = outer.varint();
  for (std::uint64_t i = 0; i < n_endorse; ++i) {
    Endorsement e;
    e.endorser = outer.str();
    const common::Bytes key = outer.bytes();
    e.key = crypto::PublicKey::decode(key);
    const common::Bytes sig = outer.bytes();
    e.signature = crypto::Signature::decode(sig);
    tx.endorsements.push_back(std::move(e));
  }
  return tx;
}

void Transaction::endorse(const std::string& endorser,
                          const crypto::KeyPair& keypair) {
  const crypto::Digest digest = body_digest();
  endorsements.push_back(Endorsement{
      endorser, keypair.public_key(),
      keypair.sign(common::BytesView(digest.data(), digest.size()))});
}

bool Transaction::endorsements_valid(const crypto::Group& group) const {
  const crypto::Digest digest = body_digest();
  const common::BytesView msg(digest.data(), digest.size());
  for (const Endorsement& e : endorsements) {
    if (!crypto::verify(group, e.key, msg, e.signature)) return false;
  }
  return true;
}

std::uint64_t Transaction::data_size() const {
  std::uint64_t total = payload.size();
  for (const KvWrite& kv : writes) total += kv.value.size();
  return total;
}

void record_visibility(net::LeakageAuditor& auditor,
                       const net::Principal& observer, const Transaction& tx) {
  const std::string prefix = "tx/" + tx.id() + "/";
  auditor.record(observer, prefix + "data", tx.data_size(), !tx.data_opaque);
  std::uint64_t party_bytes = 0;
  for (const std::string& p : tx.participants) party_bytes += p.size();
  auditor.record(observer, prefix + "parties", party_bytes,
                 !tx.parties_pseudonymous);
  auditor.record(observer, prefix + "metadata",
                 tx.channel.size() + tx.contract.size() + tx.action.size());
}

}  // namespace veil::ledger
