// Sharded channels: deterministic party->shard routing over N independent
// replicated mini-ledgers, with the participant half of cross-shard 2PC.
//
// The scale-out tier from ROADMAP item 1: one channel cannot serve 10^6
// users, so state is range-partitioned by a keyed hash into N shards. Each
// shard is a self-contained replica group — its own chain, trie-backed
// world state, mempool, admission controller, and WAL per node — so
// shards fail, crash, and recover independently. Single-shard traffic
// never crosses a shard boundary; transactions whose keys span shards go
// through ledger::CrossShardCoordinator (xshard.hpp), for which every
// shard primary implements the participant protocol here:
//
//  * prepare: validate the sub-transaction's read versions, take
//    key-level locks (key -> xid), pin the sub-transaction in the mempool
//    (PR-7 wave pinning: capacity eviction must not drop prepared work),
//    WAL-log kWalXPrepare, then answer with a signed vote carrying the
//    shard's authenticated state root.
//  * decision: verify the decider's signature and — for commits — the
//    certificate of every participant's signed yes-vote; echo the
//    decision to co-participants and defer application for one echo
//    window (Byzantine-equivocation detection, see xshard.hpp); then
//    WAL-log kWalXOutcome and apply or unlock.
//  * in doubt: a prepared participant with no decision queries the
//    coordinator, then escalates to the standby. Answering a standby
//    query FENCES the participant: from then on only standby-signed
//    decisions are honoured for that xid, which closes the race where a
//    delayed primary-coordinator commit lands after the standby already
//    aborted on a unanimous "still prepared" reply set.
//
// Crash model: a crashed node loses chain, state, mempool, locks, and
// prepared table; its WAL survives. Restart replays blocks, rebuilds the
// prepared table from kWalXPrepare/kWalXOutcome records (re-locking and
// re-pinning), re-drives commits whose outcome record made it to the WAL
// but whose block did not, and re-arms in-doubt timers. Replicas catch up
// from the shard's ordered log; honest replicas of a shard end
// bit-identical (state digests equal), the invariant the chaos suite
// asserts.
//
// Cross-shard root: compose_roots() folds the per-shard trie roots into
// one deployment-wide accumulator (closing PR 8's open note), and
// verified_composite_root() builds it fail-closed from per-node signed
// ShardRootVotes — any divergence or bad signature throws rather than
// attesting.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "audit/evidence.hpp"
#include "crypto/signature.hpp"
#include "ledger/admission.hpp"
#include "ledger/chain.hpp"
#include "ledger/mempool.hpp"
#include "ledger/state.hpp"
#include "ledger/wal.hpp"
#include "ledger/xshard.hpp"
#include "net/network.hpp"
#include "net/reliable.hpp"

namespace veil::ledger {

/// Deterministic key -> shard routing: domain-tagged SHA-256 mod N, so
/// every party computes the same owner without coordination and keys
/// spread uniformly regardless of naming conventions.
std::uint64_t shard_of(const std::string& key, std::uint64_t shard_count);

/// One shard's contribution to the composite root.
struct ShardRootPart {
  std::string label;
  std::uint64_t height = 0;
  crypto::Digest root{};
};

/// Deployment-wide state accumulator: domain-separated SHA-256 over the
/// label-sorted (label, height, root) triples. Order-independent in the
/// input (sorted internally), collision-resistant across shard counts
/// (labels and count are hashed in).
crypto::Digest compose_roots(std::vector<ShardRootPart> parts);

/// A node's signed attestation of its shard's current (height, root).
/// verified_composite_root() requires agreeing votes from every live
/// node of every shard before it will produce an accumulator.
struct ShardRootVote {
  std::string label;
  std::uint64_t shard = 0;
  std::uint64_t height = 0;
  crypto::Digest root{};
  net::Principal voter;
  crypto::Signature sig;

  common::Bytes to_be_signed() const;
  common::Bytes encode() const;
  /// Throws common::Error on malformed input.
  static ShardRootVote decode(common::BytesView data);
};

struct ShardConfig {
  /// Principal-name prefix: nodes are "<scope>-<shard>" (primary) and
  /// "<scope>-<shard>-r<i>" (replicas).
  std::string scope = "shard";
  std::uint64_t shard_count = 2;
  /// Follower replicas per shard, in addition to the primary.
  std::size_t replicas_per_shard = 1;
  /// Local transactions buffered per shard before a block is sealed.
  std::size_t block_size = 4;
  MempoolConfig mempool;
  /// Gate local submissions through a CoDel admission controller.
  bool admission_control = false;
  AdmissionConfig admission;
  /// Decision-echo window: a participant holds a decision this long,
  /// echoing it to co-participants, before applying (equivocation trap).
  /// Single-participant transactions skip the window.
  common::SimTime echo_window_us = 20'000;
  /// Prepared-with-no-decision wait before querying the coordinator.
  common::SimTime indoubt_timeout_us = 200'000;
  /// Unanswered status-query wait before escalating to the standby.
  common::SimTime status_timeout_us = 120'000;
  /// Escalation rounds before an in-doubt entry stalls (fail closed;
  /// redrive_indoubt() re-arms after an operator heals the network).
  std::size_t max_indoubt_rounds = 3;
};

struct SubmitReceipt {
  bool accepted = false;
  std::string tx_id;
  std::string reason;  // empty when accepted
};

struct ShardMapStats {
  std::uint64_t submitted = 0;
  std::uint64_t rejected_locked = 0;  // write key locked by in-flight 2PC
  std::uint64_t rejected_shed = 0;    // admission controller refusal
  std::uint64_t rejected_cross = 0;   // keys span shards; needs coordinator
  std::uint64_t committed = 0;        // local txs applied
  std::uint64_t invalidated = 0;      // local txs failing MVCC at apply
  std::uint64_t blocks_sealed = 0;
  // Participant-side 2PC accounting (per participant shard, so one
  // two-shard transaction counts twice here and once at the coordinator).
  std::uint64_t prepares_received = 0;
  std::uint64_t votes_yes = 0;
  std::uint64_t votes_no = 0;
  std::uint64_t xcommitted = 0;
  std::uint64_t xaborted = 0;
  std::uint64_t echo_conflicts = 0;    // equivocating decision pairs caught
  std::uint64_t cert_rejected = 0;     // commit decisions with bad/missing cert
  std::uint64_t signer_conflicts = 0;  // cross-signer verdict splits, failed
                                       // closed without conviction
  std::uint64_t fenced_refused = 0;    // non-standby decisions after fencing
  std::uint64_t indoubt_queries = 0;
  std::uint64_t indoubt_stalled = 0;  // escalation rounds exhausted
  std::uint64_t replica_gapped = 0;   // out-of-order blocks awaiting resync
  std::uint64_t malformed = 0;        // undecodable xshard/shard payloads
};

class ShardMap {
 public:
  ShardMap(net::Transport& network, net::ReliableChannel& channel,
           const crypto::Group& group, common::Rng& rng,
           ShardConfig config = {});

  std::uint64_t shard_count() const { return config_.shard_count; }
  std::uint64_t shard_for_key(const std::string& key) const {
    return shard_of(key, config_.shard_count);
  }
  const net::Principal& primary(std::uint64_t shard) const;
  const crypto::PublicKey& primary_public_key(std::uint64_t shard) const;

  /// Submit a single-shard transaction: routed to its owner shard,
  /// admission-gated, refused if any write key is locked by an in-flight
  /// cross-shard transaction. Commits when the shard's block seals
  /// (block_size or flush_all()).
  SubmitReceipt submit(const Transaction& tx);

  /// Seal every shard's buffered transactions into a block now.
  void flush_all();

  /// Authorize a 2PC decider. Participants drop prepares and decisions
  /// from unregistered principals (fail closed).
  void register_coordinator(const net::Principal& name,
                            const crypto::PublicKey& pub, bool is_standby);

  /// Re-arm in-doubt escalation for every undecided prepared entry
  /// (operator redrive after a partition heals or timers stalled).
  void redrive_indoubt();

  /// Catch every live replica up to its shard's ordered log.
  void resync_all();

  /// Participant-side crash points, applied to the primary of `shard`
  /// (crash-sweep tests). The crash fires once, then disarms.
  enum class PCrashPoint {
    None,
    AfterPrepareLog,  // voted-yes durable, vote never sent
    AfterVoteSend,    // vote on the wire, crash before anything else
    AfterOutcomeLog   // outcome durable, block/unlock not yet done
  };
  void arm_primary_crash(std::uint64_t shard, PCrashPoint point);

  enum class Outcome { Unknown, Prepared, Committed, Aborted };
  Outcome outcome(std::uint64_t shard, const std::string& xid) const;

  std::uint64_t height(std::uint64_t shard) const;
  crypto::Digest shard_root(std::uint64_t shard) const;
  crypto::Digest replica_root(std::uint64_t shard, std::size_t replica) const;
  std::optional<VersionedValue> get(const std::string& key) const;

  /// Unverified composite root straight off the primaries.
  crypto::Digest composite_root() const;
  /// Every live node signs its shard's (height, root).
  std::vector<ShardRootVote> collect_root_votes() const;
  /// Fail-closed accumulator: verifies every live node's vote and
  /// requires intra-shard agreement; throws common::ProtocolError on a
  /// missing shard, a bad signature, or any divergence.
  crypto::Digest verified_composite_root() const;

  const ShardConfig& config() const { return config_; }
  const ShardMapStats& stats() const { return stats_; }
  const audit::EvidenceLog& evidence() const { return evidence_; }
  const WriteAheadLog& primary_wal(std::uint64_t shard) const;
  const Mempool& mempool(std::uint64_t shard) const;
  const AdmissionController& admission(std::uint64_t shard) const;

 private:
  struct Node {
    net::Principal name;
    crypto::KeyPair key;
    WriteAheadLog wal;  // durable across crashes
    Chain chain;        // volatile, rebuilt on restart
    WorldState state;   // volatile, rebuilt on restart
  };

  /// Primary-side record of one prepared (voted-yes) cross-shard tx.
  struct PreparedTx {
    XPrepare prepare;
    std::optional<XDecision> pending_decision;
    bool echoed = false;
    bool finalize_armed = false;
    bool poisoned = false;  // equivocation caught -> abort at finalize
    bool fenced = false;    // answered a standby query; only standby
                            // decisions honoured from here on
    std::size_t indoubt_round = 0;
  };

  struct Shard {
    std::uint64_t index = 0;
    std::vector<Node> nodes;  // [0] = primary
    Mempool mempool;
    AdmissionController admission;
    std::vector<Transaction> pending;  // local txs awaiting seal (volatile)
    /// Durable ordering-service log: the replica catch-up source.
    std::vector<Block> ordered_log;
    std::map<std::string, PreparedTx> prepared;  // xid -> prepared
    std::map<std::string, std::string> locks;    // key -> owning xid
    /// Finalized verdicts, kept with the decision that drove them so
    /// standby queries can be answered after the fact.
    std::map<std::string, XDecision> outcomes;
    PCrashPoint crash_point = PCrashPoint::None;
  };

  struct CoordinatorInfo {
    crypto::PublicKey key;
    bool is_standby = false;
  };

  Node& primary_node(std::uint64_t shard) { return shards_[shard].nodes[0]; }
  const Node& primary_node(std::uint64_t shard) const {
    return shards_[shard].nodes[0];
  }

  void attach_node(std::uint64_t shard, std::size_t node_index);
  void on_primary_message(std::uint64_t shard, const net::Message& msg);
  void on_replica_message(std::uint64_t shard, std::size_t node_index,
                          const net::Message& msg);

  void on_prepare(Shard& shard, const net::Message& msg);
  void on_decision(Shard& shard, const net::Message& msg);
  void on_query(Shard& shard, const net::Message& msg);
  void send_vote(Shard& shard, const XPrepare& prepare, bool yes);
  void echo_decision(Shard& shard, const PreparedTx& p, const XDecision& d);
  void arm_finalize(std::uint64_t shard_index, const std::string& xid);
  void finalize(std::uint64_t shard_index, const std::string& xid);
  /// WAL-log the verdict, then apply (seal the subtx into a block) or
  /// unlock. `log_outcome` is false when re-driving a recovered verdict.
  void apply_outcome(Shard& shard, const std::string& xid,
                     const XDecision& decision, bool log_outcome);
  bool verify_commit_cert(const PreparedTx& p, const XDecision& d) const;
  /// Both decisions validly signed by the same decider, opposite
  /// verdicts: convict, quarantine, poison the xid.
  void convict_equivocation(Shard& shard, PreparedTx& p, const XDecision& a,
                            const XDecision& b);
  void arm_indoubt(std::uint64_t shard_index, const std::string& xid);
  void indoubt_check(std::uint64_t shard_index, const std::string& xid);

  void seal_block(Shard& shard, std::vector<Transaction> txs);
  void catch_up(Shard& shard, Node& node);
  void on_node_crash(std::uint64_t shard, std::size_t node_index);
  void on_node_restart(std::uint64_t shard, std::size_t node_index);
  /// Fire an armed crash point; returns true when the primary crashed
  /// (callers must return without touching shard state).
  bool maybe_crash_primary(Shard& shard, PCrashPoint point);

  const CoordinatorInfo* coordinator_info(const net::Principal& name) const;

  net::Transport* network_;
  net::ReliableChannel* channel_;
  const crypto::Group* group_;
  ShardConfig config_;
  std::vector<Shard> shards_;
  std::map<net::Principal, CoordinatorInfo> coordinators_;
  net::Principal standby_;  // empty until a standby is registered
  audit::EvidenceLog evidence_;
  ShardMapStats stats_;
};

}  // namespace veil::ledger
