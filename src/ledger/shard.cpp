#include "ledger/shard.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "common/serialize.hpp"
#include "crypto/sha256.hpp"

namespace veil::ledger {

namespace {
constexpr std::string_view kRouteDomain = "veil.shard.route.v1";
constexpr std::string_view kCompositeDomain = "veil.xshard.composite.v1";
}  // namespace

std::uint64_t shard_of(const std::string& key, std::uint64_t shard_count) {
  if (shard_count <= 1) return 0;
  crypto::Sha256 hasher;
  hasher.update(kRouteDomain);
  hasher.update(key);
  const crypto::Digest d = hasher.finalize();
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < 8; ++i) acc = (acc << 8) | d[i];
  return acc % shard_count;
}

crypto::Digest compose_roots(std::vector<ShardRootPart> parts) {
  std::sort(parts.begin(), parts.end(),
            [](const ShardRootPart& a, const ShardRootPart& b) {
              return a.label < b.label;
            });
  common::Writer w;
  w.str(kCompositeDomain);
  w.varint(parts.size());
  for (const ShardRootPart& p : parts) {
    w.str(p.label);
    w.u64(p.height);
    w.raw(common::BytesView(p.root.data(), p.root.size()));
  }
  return crypto::sha256(w.data());
}

common::Bytes ShardRootVote::to_be_signed() const {
  common::Writer w;
  w.str(label);
  w.u64(shard);
  w.u64(height);
  w.raw(common::BytesView(root.data(), root.size()));
  w.str(voter);
  return w.take();
}

common::Bytes ShardRootVote::encode() const {
  common::Writer w;
  w.raw(to_be_signed());
  w.bytes(sig.encode());
  return w.take();
}

ShardRootVote ShardRootVote::decode(common::BytesView data) {
  common::Reader r(data);
  ShardRootVote v;
  v.label = r.str();
  v.shard = r.u64();
  v.height = r.u64();
  const common::Bytes raw = r.raw(crypto::kSha256DigestSize);
  std::copy(raw.begin(), raw.end(), v.root.begin());
  v.voter = r.str();
  v.sig = crypto::Signature::decode(r.bytes());
  if (!r.done()) throw common::Error("shardrootvote: trailing bytes");
  return v;
}

// ---- ShardMap -------------------------------------------------------------

ShardMap::ShardMap(net::Transport& network, net::ReliableChannel& channel,
                   const crypto::Group& group, common::Rng& rng,
                   ShardConfig config)
    : network_(&network),
      channel_(&channel),
      group_(&group),
      config_(std::move(config)) {
  if (config_.shard_count == 0) {
    throw common::ProtocolError("shard: shard_count must be positive");
  }
  shards_.reserve(config_.shard_count);
  for (std::uint64_t s = 0; s < config_.shard_count; ++s) {
    Shard shard;
    shard.index = s;
    shard.mempool = Mempool(config_.mempool);
    shard.admission = AdmissionController(config_.admission);
    const std::string base = config_.scope + "-" + std::to_string(s);
    shard.nodes.push_back(
        Node{base, crypto::KeyPair::generate(group, rng), {}, {}, {}});
    for (std::size_t i = 0; i < config_.replicas_per_shard; ++i) {
      shard.nodes.push_back(Node{base + "-r" + std::to_string(i),
                                 crypto::KeyPair::generate(group, rng),
                                 {},
                                 {},
                                 {}});
    }
    shards_.push_back(std::move(shard));
  }
  for (std::uint64_t s = 0; s < config_.shard_count; ++s) {
    for (std::size_t n = 0; n < shards_[s].nodes.size(); ++n) {
      attach_node(s, n);
    }
  }
}

const net::Principal& ShardMap::primary(std::uint64_t shard) const {
  return primary_node(shard).name;
}

const crypto::PublicKey& ShardMap::primary_public_key(
    std::uint64_t shard) const {
  return primary_node(shard).key.public_key();
}

void ShardMap::attach_node(std::uint64_t shard, std::size_t node_index) {
  const net::Principal name = shards_[shard].nodes[node_index].name;
  if (node_index == 0) {
    channel_->attach(name, [this, shard](const net::Message& m) {
      on_primary_message(shard, m);
    });
  } else {
    channel_->attach(name, [this, shard, node_index](const net::Message& m) {
      on_replica_message(shard, node_index, m);
    });
  }
  network_->set_crash_hook(
      name, [this, shard, node_index] { on_node_crash(shard, node_index); });
  network_->set_restart_hook(
      name, [this, shard, node_index] { on_node_restart(shard, node_index); });
}

void ShardMap::register_coordinator(const net::Principal& name,
                                    const crypto::PublicKey& pub,
                                    bool is_standby) {
  coordinators_[name] = CoordinatorInfo{pub, is_standby};
  if (is_standby) standby_ = name;
}

const ShardMap::CoordinatorInfo* ShardMap::coordinator_info(
    const net::Principal& name) const {
  const auto it = coordinators_.find(name);
  return it == coordinators_.end() ? nullptr : &it->second;
}

SubmitReceipt ShardMap::submit(const Transaction& tx) {
  ++stats_.submitted;
  SubmitReceipt rc;
  rc.tx_id = tx.id();
  std::optional<std::uint64_t> owner;
  const auto fold = [&](const std::string& key) {
    const std::uint64_t s = shard_for_key(key);
    if (owner && *owner != s) return false;
    owner = s;
    return true;
  };
  for (const ReadAccess& rd : tx.reads) {
    if (!fold(rd.key)) {
      ++stats_.rejected_cross;
      rc.reason = "keys span shards; submit through the coordinator";
      return rc;
    }
  }
  for (const KvWrite& wr : tx.writes) {
    if (!fold(wr.key)) {
      ++stats_.rejected_cross;
      rc.reason = "keys span shards; submit through the coordinator";
      return rc;
    }
  }
  Shard& shard = shards_[owner.value_or(0)];
  if (network_->crashed(shard.nodes[0].name)) {
    rc.reason = "shard primary down";
    return rc;
  }
  const common::SimTime now = network_->clock().now();
  if (config_.admission_control &&
      !shard.admission.offer(rc.tx_id, AdmitPriority::Fresh, now, now,
                             shard.pending.size(), tx.deadline_us)) {
    ++stats_.rejected_shed;
    network_->count_shed();
    rc.reason = "shed at admission";
    return rc;
  }
  for (const KvWrite& wr : tx.writes) {
    if (shard.locks.contains(wr.key)) {
      ++stats_.rejected_locked;
      rc.reason = "key locked by an in-flight cross-shard transaction";
      return rc;
    }
  }
  shard.mempool.admit(tx, true, now);
  shard.pending.push_back(tx);
  rc.accepted = true;
  if (shard.pending.size() >= config_.block_size) {
    std::vector<Transaction> txs;
    txs.swap(shard.pending);
    seal_block(shard, std::move(txs));
  }
  return rc;
}

void ShardMap::flush_all() {
  for (Shard& shard : shards_) {
    if (shard.pending.empty()) continue;
    if (network_->crashed(shard.nodes[0].name)) continue;
    std::vector<Transaction> txs;
    txs.swap(shard.pending);
    seal_block(shard, std::move(txs));
  }
}

void ShardMap::seal_block(Shard& shard, std::vector<Transaction> txs) {
  if (txs.empty()) return;
  Node& primary = shard.nodes[0];
  const common::SimTime now = network_->clock().now();
  const Block block = Block::make(primary.chain.height(),
                                  primary.chain.tip_hash(), std::move(txs), now);
  // WAL before the in-memory mutation it describes.
  wal_log_block(primary.wal, block);
  primary.chain.append(block);
  for (const Transaction& tx : block.transactions) {
    shard.mempool.validated(tx, primary.state, now);
    if (primary.state.apply(tx) == CommitResult::Applied) {
      ++stats_.committed;
    } else {
      ++stats_.invalidated;
    }
    shard.mempool.remove(tx.id(), EvictionRecord::Cause::Committed, now);
  }
  ++stats_.blocks_sealed;
  shard.ordered_log.push_back(block);
  const common::Bytes wire = block.encode();
  for (std::size_t i = 1; i < shard.nodes.size(); ++i) {
    channel_->send(primary.name, shard.nodes[i].name, "shard.block", wire);
  }
}

void ShardMap::on_replica_message(std::uint64_t shard_index,
                                  std::size_t node_index,
                                  const net::Message& msg) {
  if (msg.topic != "shard.block") return;
  Shard& shard = shards_[shard_index];
  Node& node = shard.nodes[node_index];
  try {
    const Block block = Block::decode(msg.payload);
    if (block.header.height < node.chain.height()) return;  // duplicate
    if (block.header.height > node.chain.height()) {
      ++stats_.replica_gapped;  // resync_all() fills the gap
      return;
    }
    wal_log_block(node.wal, block);
    node.chain.append(block);
    for (const Transaction& tx : block.transactions) node.state.apply(tx);
  } catch (const common::Error&) {
    ++stats_.malformed;
  }
}

void ShardMap::on_primary_message(std::uint64_t shard_index,
                                  const net::Message& msg) {
  Shard& shard = shards_[shard_index];
  try {
    if (msg.topic == "xshard.prepare") {
      on_prepare(shard, msg);
    } else if (msg.topic == "xshard.decision" || msg.topic == "xshard.echo") {
      on_decision(shard, msg);
    } else if (msg.topic == "xshard.query") {
      on_query(shard, msg);
    }
  } catch (const common::Error&) {
    ++stats_.malformed;
  }
}

void ShardMap::on_prepare(Shard& shard, const net::Message& msg) {
  const XPrepare prep = XPrepare::decode(msg.payload);
  ++stats_.prepares_received;
  const CoordinatorInfo* coord = coordinator_info(prep.coordinator);
  if (coord == nullptr || coord->is_standby ||
      !crypto::verify(*group_, coord->key, prep.to_be_signed(), prep.sig)) {
    ++stats_.malformed;  // unregistered or forged: drop, lock nothing
    return;
  }
  if (prep.shard != shard.index) {
    ++stats_.malformed;
    return;
  }
  if (shard.outcomes.contains(prep.xid)) return;  // already finalized
  if (const auto it = shard.prepared.find(prep.xid);
      it != shard.prepared.end()) {
    send_vote(shard, it->second.prepare, true);  // duplicate: re-vote
    return;
  }
  const common::SimTime now = network_->clock().now();
  // Vote yes only if the read versions are fresh, no key is locked by a
  // different in-flight transaction, and admission accepts the work.
  bool yes = true;
  for (const ReadAccess& rd : prep.subtx.reads) {
    if (shard.nodes[0].state.version_of(rd.key) != rd.version) {
      yes = false;
      break;
    }
  }
  if (yes) {
    const auto locked_elsewhere = [&](const std::string& key) {
      const auto it = shard.locks.find(key);
      return it != shard.locks.end() && it->second != prep.xid;
    };
    for (const ReadAccess& rd : prep.subtx.reads) {
      if (locked_elsewhere(rd.key)) {
        yes = false;
        break;
      }
    }
    if (yes) {
      for (const KvWrite& wr : prep.subtx.writes) {
        if (locked_elsewhere(wr.key)) {
          yes = false;
          break;
        }
      }
    }
  }
  if (yes && config_.admission_control &&
      !shard.admission.offer(prep.xid, AdmitPriority::Commit, now, now,
                             shard.pending.size(), prep.subtx.deadline_us)) {
    network_->count_shed();
    yes = false;
  }
  if (!yes) {
    ++stats_.votes_no;
    send_vote(shard, prep, false);
    return;
  }
  // Yes-vote path, crash-ordered: lock, pin, WAL, then vote — a restarted
  // primary can never have voted yes without remembering it.
  for (const ReadAccess& rd : prep.subtx.reads) shard.locks[rd.key] = prep.xid;
  for (const KvWrite& wr : prep.subtx.writes) shard.locks[wr.key] = prep.xid;
  shard.mempool.admit(prep.subtx, true, now);
  shard.mempool.pin(prep.subtx.id());
  shard.nodes[0].wal.append(kWalXPrepare, prep.encode());
  PreparedTx p;
  p.prepare = prep;
  shard.prepared.emplace(prep.xid, std::move(p));
  ++stats_.votes_yes;
  if (maybe_crash_primary(shard, PCrashPoint::AfterPrepareLog)) return;
  send_vote(shard, prep, true);
  if (maybe_crash_primary(shard, PCrashPoint::AfterVoteSend)) return;
  arm_indoubt(shard.index, prep.xid);
}

void ShardMap::send_vote(Shard& shard, const XPrepare& prepare, bool yes) {
  Node& primary = shard.nodes[0];
  XVote vote;
  vote.xid = prepare.xid;
  vote.shard = shard.index;
  vote.yes = yes;
  if (yes) vote.state_root = primary.state.digest();
  vote.voter = primary.name;
  vote.sig = primary.key.sign(vote.to_be_signed());
  channel_->send(primary.name, prepare.coordinator, "xshard.vote",
                 vote.encode());
}

bool ShardMap::verify_commit_cert(const PreparedTx& p,
                                  const XDecision& d) const {
  if (!d.commit) return true;
  for (const std::uint64_t s : p.prepare.participants) {
    const auto vote =
        std::find_if(d.cert.begin(), d.cert.end(),
                     [&](const XVote& v) { return v.shard == s; });
    if (vote == d.cert.end()) return false;
    if (vote->xid != d.xid || !vote->yes) return false;
    if (s >= config_.shard_count) return false;
    if (vote->voter != primary(s)) return false;
    if (!crypto::verify(*group_, primary_public_key(s), vote->to_be_signed(),
                        vote->sig)) {
      return false;
    }
  }
  return true;
}

void ShardMap::on_decision(Shard& shard, const net::Message& msg) {
  const XDecision d = XDecision::decode(msg.payload);
  const CoordinatorInfo* coord = coordinator_info(d.decider);
  if (coord == nullptr ||
      !crypto::verify(*group_, coord->key, d.to_be_signed(), d.sig)) {
    ++stats_.malformed;
    return;
  }
  if (const auto fin = shard.outcomes.find(d.xid);
      fin != shard.outcomes.end()) {
    // Finalized. Duplicates are normal (restarted coordinators resend
    // logged commits). A conflicting verdict signed by the SAME decider
    // is equivocation — still convictable after the fact. A conflicting
    // verdict from a different signer is the documented standby-race
    // corner: refused and counted, never applied.
    if (fin->second.commit != d.commit) {
      if (fin->second.decider == d.decider) {
        PreparedTx dummy;
        dummy.prepare.xid = d.xid;
        convict_equivocation(shard, dummy, fin->second, d);
      } else {
        ++stats_.signer_conflicts;
      }
    }
    return;
  }
  const auto pit = shard.prepared.find(d.xid);
  if (pit == shard.prepared.end()) return;  // never prepared here
  PreparedTx& p = pit->second;
  if (p.fenced && !coord->is_standby) {
    ++stats_.fenced_refused;
    return;
  }
  if (d.commit && !verify_commit_cert(p, d)) {
    ++stats_.cert_rejected;  // fail closed: stay prepared, in-doubt path
    return;                  // will resolve the verdict
  }
  if (p.pending_decision) {
    if (p.pending_decision->commit == d.commit) return;  // duplicate
    if (p.pending_decision->decider == d.decider) {
      convict_equivocation(shard, p, *p.pending_decision, d);
      // Spread the conflicting side: a co-participant that echoed first
      // may have seen only one verdict and would otherwise apply it.
      const common::Bytes wire = d.encode();
      for (const std::uint64_t s : p.prepare.participants) {
        if (s == shard.index || s >= config_.shard_count) continue;
        channel_->send(shard.nodes[0].name, primary(s), "xshard.echo", wire);
      }
    } else {
      // Primary and standby disagree (no proof either lied): fail closed.
      ++stats_.signer_conflicts;
      p.poisoned = true;
    }
    return;
  }
  p.pending_decision = d;
  echo_decision(shard, p, d);
  p.echoed = true;
  if (p.prepare.participants.size() <= 1) {
    // No co-participants to cross-check against: apply immediately.
    finalize(shard.index, d.xid);
    return;
  }
  arm_finalize(shard.index, d.xid);
}

void ShardMap::echo_decision(Shard& shard, const PreparedTx& p,
                             const XDecision& d) {
  if (p.echoed) return;
  const common::Bytes wire = d.encode();
  for (const std::uint64_t s : p.prepare.participants) {
    if (s == shard.index || s >= config_.shard_count) continue;
    channel_->send(shard.nodes[0].name, primary(s), "xshard.echo", wire);
  }
}

void ShardMap::convict_equivocation(Shard& shard, PreparedTx& p,
                                    const XDecision& a, const XDecision& b) {
  const XDecision& commit_side = a.commit ? a : b;
  const XDecision& abort_side = a.commit ? b : a;
  audit::Evidence e;
  e.kind = audit::Misbehavior::CoordinatorEquivocation;
  e.accused = commit_side.decider;
  e.reporter = shard.nodes[0].name;
  e.detail =
      "2PC coordinator signed both commit and abort for " + commit_side.xid;
  e.detected_at = network_->clock().now();
  e.proof_a = commit_side.encode();
  e.proof_b = abort_side.encode();
  e.sign(shard.nodes[0].key);
  ++stats_.echo_conflicts;
  p.poisoned = true;
  // Dedupe on (kind, accused, proofs): only the first reporter convicts,
  // so the quarantine and the abort-cause counter fire exactly once.
  if (evidence_.add(std::move(e))) {
    network_->quarantine(commit_side.decider);
    network_->count_xshard_abort(net::XAbortCause::Equivocation);
  }
}

void ShardMap::arm_finalize(std::uint64_t shard_index, const std::string& xid) {
  const auto it = shards_[shard_index].prepared.find(xid);
  if (it == shards_[shard_index].prepared.end()) return;
  if (it->second.finalize_armed) return;
  it->second.finalize_armed = true;
  network_->schedule(network_->clock().now() + config_.echo_window_us,
                     [this, shard_index, xid] { finalize(shard_index, xid); });
}

void ShardMap::finalize(std::uint64_t shard_index, const std::string& xid) {
  Shard& shard = shards_[shard_index];
  if (network_->crashed(shard.nodes[0].name)) return;
  const auto it = shard.prepared.find(xid);
  if (it == shard.prepared.end()) return;
  PreparedTx& p = it->second;
  if (p.poisoned) {
    // Equivocation (or a signer conflict) caught inside the window:
    // everyone fails closed to abort.
    XDecision abort_d;
    if (p.pending_decision && !p.pending_decision->commit) {
      abort_d = *p.pending_decision;
    } else {
      abort_d.xid = xid;
      abort_d.commit = false;
      abort_d.decider = "(poisoned)";
    }
    apply_outcome(shard, xid, abort_d, true);
    return;
  }
  if (!p.pending_decision) {
    p.finalize_armed = false;
    return;
  }
  apply_outcome(shard, xid, *p.pending_decision, true);
}

void ShardMap::apply_outcome(Shard& shard, const std::string& xid,
                             const XDecision& decision, bool log_outcome) {
  const auto it = shard.prepared.find(xid);
  if (it == shard.prepared.end()) return;
  const Transaction subtx = it->second.prepare.subtx;
  if (log_outcome) {
    // Crash ordering: the verdict is durable before any of its effects.
    common::Writer w;
    w.str(xid);
    w.boolean(decision.commit);
    w.bytes(decision.encode());
    shard.nodes[0].wal.append(kWalXOutcome, w.data());
  }
  shard.outcomes[xid] = decision;
  shard.prepared.erase(xid);
  if (maybe_crash_primary(shard, PCrashPoint::AfterOutcomeLog)) return;
  const auto unlock = [&](const std::string& key) {
    const auto lk = shard.locks.find(key);
    if (lk != shard.locks.end() && lk->second == xid) shard.locks.erase(lk);
  };
  for (const ReadAccess& rd : subtx.reads) unlock(rd.key);
  for (const KvWrite& wr : subtx.writes) unlock(wr.key);
  const common::SimTime now = network_->clock().now();
  shard.mempool.unpin(subtx.id());
  if (decision.commit) {
    // Seal the sub-transaction (with any buffered locals) into a block.
    std::vector<Transaction> txs;
    txs.swap(shard.pending);
    txs.push_back(subtx);
    seal_block(shard, std::move(txs));
    ++stats_.xcommitted;
  } else {
    shard.mempool.remove(subtx.id(), EvictionRecord::Cause::Expired, now);
    ++stats_.xaborted;
  }
}

void ShardMap::on_query(Shard& shard, const net::Message& msg) {
  const XStatus q = XStatus::decode(msg.payload);
  XQueryReply rep;
  rep.xid = q.xid;
  rep.shard = shard.index;
  if (const auto fin = shard.outcomes.find(q.xid);
      fin != shard.outcomes.end()) {
    rep.decided = true;
    rep.decision = fin->second.encode();
  } else if (const auto pit = shard.prepared.find(q.xid);
             pit != shard.prepared.end()) {
    rep.prepared = true;
    if (pit->second.pending_decision) {
      rep.decided = true;
      rep.decision = pit->second.pending_decision->encode();
    } else {
      // Fencing: we just told the standby "still in doubt". Honouring a
      // late primary-coordinator decision after this could contradict
      // the standby's verdict, so only standby decisions count now.
      pit->second.fenced = true;
    }
  }
  channel_->send(shard.nodes[0].name, msg.from, "xshard.qreply", rep.encode());
}

void ShardMap::arm_indoubt(std::uint64_t shard_index, const std::string& xid) {
  network_->schedule(
      network_->clock().now() + config_.indoubt_timeout_us,
      [this, shard_index, xid] { indoubt_check(shard_index, xid); });
}

void ShardMap::indoubt_check(std::uint64_t shard_index,
                             const std::string& xid) {
  Shard& shard = shards_[shard_index];
  if (network_->crashed(shard.nodes[0].name)) return;
  const auto it = shard.prepared.find(xid);
  if (it == shard.prepared.end() || it->second.pending_decision ||
      it->second.poisoned) {
    return;
  }
  PreparedTx& p = it->second;
  if (p.indoubt_round >= config_.max_indoubt_rounds) {
    ++stats_.indoubt_stalled;  // fail closed; redrive_indoubt() re-arms
    return;
  }
  ++p.indoubt_round;
  ++stats_.indoubt_queries;
  XStatus st;
  st.xid = xid;
  st.shard = shard_index;
  st.requester = shard.nodes[0].name;
  channel_->send(shard.nodes[0].name, p.prepare.coordinator, "xshard.status",
                 st.encode());
  // Escalate to the standby if the coordinator stays silent, then loop
  // back for the next bounded round.
  network_->schedule(
      network_->clock().now() + config_.status_timeout_us,
      [this, shard_index, xid] {
        Shard& sh = shards_[shard_index];
        if (network_->crashed(sh.nodes[0].name)) return;
        const auto pit = sh.prepared.find(xid);
        if (pit == sh.prepared.end() || pit->second.pending_decision ||
            pit->second.poisoned) {
          return;
        }
        if (!standby_.empty()) {
          XStatus st2;
          st2.xid = xid;
          st2.shard = shard_index;
          st2.requester = sh.nodes[0].name;
          channel_->send(sh.nodes[0].name, standby_, "xshard.recover",
                         st2.encode());
        }
        arm_indoubt(shard_index, xid);
      });
}

void ShardMap::redrive_indoubt() {
  for (Shard& shard : shards_) {
    if (network_->crashed(shard.nodes[0].name)) continue;
    for (auto& [xid, p] : shard.prepared) {
      if (p.pending_decision || p.poisoned) continue;
      p.indoubt_round = 0;
      arm_indoubt(shard.index, xid);
    }
  }
}

// ---- Crash / restart ------------------------------------------------------

bool ShardMap::maybe_crash_primary(Shard& shard, PCrashPoint point) {
  if (shard.crash_point != point) return false;
  shard.crash_point = PCrashPoint::None;  // fire once
  network_->crash(shard.nodes[0].name);
  return true;
}

void ShardMap::arm_primary_crash(std::uint64_t shard, PCrashPoint point) {
  shards_.at(shard).crash_point = point;
}

void ShardMap::on_node_crash(std::uint64_t shard_index,
                             std::size_t node_index) {
  Shard& shard = shards_[shard_index];
  Node& node = shard.nodes[node_index];
  // Volatile state is gone; the WAL survives.
  node.chain = Chain();
  node.state = WorldState();
  if (node_index != 0) return;
  shard.mempool.clear();
  shard.admission = AdmissionController(config_.admission);
  shard.pending.clear();
  shard.prepared.clear();
  shard.locks.clear();
  shard.outcomes.clear();
}

void ShardMap::on_node_restart(std::uint64_t shard_index,
                               std::size_t node_index) {
  Shard& shard = shards_[shard_index];
  Node& node = shard.nodes[node_index];
  const WalRecovery recovered = wal_recover_blocks(node.wal);
  node.chain = Chain();
  node.state = WorldState();
  for (const Block& b : recovered.blocks) {
    node.chain.append(b);
    for (const Transaction& tx : b.transactions) node.state.apply(tx);
  }
  if (node_index != 0) {
    catch_up(shard, node);
    return;
  }
  // Primary: rebuild the 2PC participant state from the raw records.
  const common::SimTime now = network_->clock().now();
  std::map<std::string, XPrepare> prepares;
  for (const WriteAheadLog::Record& r : node.wal.recover()) {
    try {
      if (r.type == kWalXPrepare) {
        XPrepare prep = XPrepare::decode(r.payload);
        prepares[prep.xid] = std::move(prep);
      } else if (r.type == kWalXOutcome) {
        common::Reader rd(r.payload);
        const std::string xid = rd.str();
        rd.boolean();  // verdict; also inside the decision
        shard.outcomes[xid] = XDecision::decode(rd.bytes());
      }
    } catch (const common::Error&) {
      ++stats_.malformed;
    }
  }
  for (auto& [xid, prep] : prepares) {
    const auto oit = shard.outcomes.find(xid);
    if (oit != shard.outcomes.end()) {
      if (oit->second.commit &&
          !node.chain.find_transaction_block(prep.subtx.id())) {
        // Outcome record durable but the crash hit before the block was
        // sealed: re-drive the apply (without re-logging the verdict).
        std::vector<Transaction> txs;
        txs.push_back(prep.subtx);
        seal_block(shard, std::move(txs));
        ++stats_.xcommitted;
      }
      continue;
    }
    // Still prepared: re-lock, re-pin, and go back in doubt.
    for (const ReadAccess& rd : prep.subtx.reads) shard.locks[rd.key] = xid;
    for (const KvWrite& wr : prep.subtx.writes) shard.locks[wr.key] = xid;
    shard.mempool.admit(prep.subtx, true, now);
    shard.mempool.pin(prep.subtx.id());
    PreparedTx p;
    p.prepare = std::move(prep);
    shard.prepared.emplace(xid, std::move(p));
  }
  // The ordering log is the replica catch-up source; restore it from the
  // replayed chain.
  shard.ordered_log = node.chain.live_blocks();
  // Re-announce votes (the coordinator may have decided while we were
  // down) and re-arm the in-doubt escalation.
  for (auto& [xid, p] : shard.prepared) {
    send_vote(shard, p.prepare, true);
    arm_indoubt(shard_index, xid);
  }
}

void ShardMap::catch_up(Shard& shard, Node& node) {
  for (const Block& b : shard.ordered_log) {
    if (b.header.height < node.chain.height()) continue;
    wal_log_block(node.wal, b);
    node.chain.append(b);
    for (const Transaction& tx : b.transactions) node.state.apply(tx);
  }
}

void ShardMap::resync_all() {
  for (Shard& shard : shards_) {
    for (std::size_t i = 1; i < shard.nodes.size(); ++i) {
      if (network_->crashed(shard.nodes[i].name)) continue;
      catch_up(shard, shard.nodes[i]);
    }
  }
}

// ---- Introspection --------------------------------------------------------

ShardMap::Outcome ShardMap::outcome(std::uint64_t shard,
                                    const std::string& xid) const {
  const Shard& sh = shards_.at(shard);
  if (const auto it = sh.outcomes.find(xid); it != sh.outcomes.end()) {
    return it->second.commit ? Outcome::Committed : Outcome::Aborted;
  }
  if (sh.prepared.contains(xid)) return Outcome::Prepared;
  return Outcome::Unknown;
}

std::uint64_t ShardMap::height(std::uint64_t shard) const {
  return primary_node(shard).chain.height();
}

crypto::Digest ShardMap::shard_root(std::uint64_t shard) const {
  return primary_node(shard).state.digest();
}

crypto::Digest ShardMap::replica_root(std::uint64_t shard,
                                      std::size_t replica) const {
  return shards_.at(shard).nodes.at(replica + 1).state.digest();
}

std::optional<VersionedValue> ShardMap::get(const std::string& key) const {
  return primary_node(shard_for_key(key)).state.get(key);
}

crypto::Digest ShardMap::composite_root() const {
  std::vector<ShardRootPart> parts;
  parts.reserve(shards_.size());
  for (const Shard& shard : shards_) {
    parts.push_back(ShardRootPart{"shard-" + std::to_string(shard.index),
                                  shard.nodes[0].chain.height(),
                                  shard.nodes[0].state.digest()});
  }
  return compose_roots(std::move(parts));
}

std::vector<ShardRootVote> ShardMap::collect_root_votes() const {
  std::vector<ShardRootVote> votes;
  for (const Shard& shard : shards_) {
    for (const Node& node : shard.nodes) {
      if (network_->crashed(node.name)) continue;
      ShardRootVote v;
      v.label = "shard-" + std::to_string(shard.index);
      v.shard = shard.index;
      v.height = node.chain.height();
      v.root = node.state.digest();
      v.voter = node.name;
      v.sig = node.key.sign(v.to_be_signed());
      votes.push_back(std::move(v));
    }
  }
  return votes;
}

crypto::Digest ShardMap::verified_composite_root() const {
  const std::vector<ShardRootVote> votes = collect_root_votes();
  std::vector<ShardRootPart> parts;
  for (const Shard& shard : shards_) {
    std::optional<ShardRootVote> agreed;
    std::size_t seen = 0;
    for (const ShardRootVote& v : votes) {
      if (v.shard != shard.index) continue;
      const auto node = std::find_if(
          shard.nodes.begin(), shard.nodes.end(),
          [&](const Node& n) { return n.name == v.voter; });
      if (node == shard.nodes.end() ||
          !crypto::verify(*group_, node->key.public_key(), v.to_be_signed(),
                          v.sig)) {
        throw common::ProtocolError("shard: root vote failed verification");
      }
      ++seen;
      if (!agreed) {
        agreed = v;
      } else if (agreed->height != v.height || agreed->root != v.root) {
        throw common::ProtocolError("shard: live nodes disagree on root");
      }
    }
    if (seen == 0) {
      throw common::ProtocolError("shard: no live node can attest shard " +
                                  std::to_string(shard.index));
    }
    parts.push_back(ShardRootPart{agreed->label, agreed->height, agreed->root});
  }
  return compose_roots(std::move(parts));
}

const WriteAheadLog& ShardMap::primary_wal(std::uint64_t shard) const {
  return primary_node(shard).wal;
}

const Mempool& ShardMap::mempool(std::uint64_t shard) const {
  return shards_.at(shard).mempool;
}

const AdmissionController& ShardMap::admission(std::uint64_t shard) const {
  return shards_.at(shard).admission;
}

}  // namespace veil::ledger
