// Versioned key-value world state with MVCC validation.
//
// Fabric-style commit rule: a transaction's read set must match the
// current versions of the keys it read at endorsement time; otherwise the
// transaction is marked invalid at commit (it stays on the chain but does
// not mutate state).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "common/bytes.hpp"
#include "crypto/sha256.hpp"
#include "ledger/transaction.hpp"

namespace veil::ledger {

struct VersionedValue {
  common::Bytes value;
  std::uint64_t version = 0;
};

enum class CommitResult { Applied, MvccConflict };

class WorldState {
 public:
  std::optional<VersionedValue> get(const std::string& key) const;

  /// Direct write (used by contract execution to build write sets; commit
  /// of ordered transactions should go through apply()).
  void put(const std::string& key, common::Bytes value);
  void erase(const std::string& key);

  /// Validate the read set against current versions, then apply the write
  /// set. Returns MvccConflict (without side effects) on stale reads.
  CommitResult apply(const Transaction& tx);

  std::size_t size() const { return entries_.size(); }

  /// Ordered view of all entries (snapshots, state digests).
  const std::map<std::string, VersionedValue>& entries() const {
    return entries_;
  }

  /// Range query over [start_key, end_key); empty end_key means "to the
  /// end". Used by rich chaincode (ledger scans) and state snapshots.
  std::vector<std::pair<std::string, VersionedValue>> get_range(
      const std::string& start_key, const std::string& end_key) const;

  /// All keys sharing a prefix (composite-key queries).
  std::vector<std::pair<std::string, VersionedValue>> get_by_prefix(
      const std::string& prefix) const;

  /// Canonical hash over all (key, value, version) entries. Two replicas
  /// that applied the same transactions in the same order have equal
  /// digests — the bit-identical-state check chaos tests assert.
  crypto::Digest digest() const;

  /// Canonical full-state serialization (WAL checkpoints, snapshots).
  common::Bytes encode() const;
  static WorldState decode(common::BytesView data);

 private:
  std::map<std::string, VersionedValue> entries_;
};

}  // namespace veil::ledger
