// Versioned key-value world state with MVCC validation.
//
// Fabric-style commit rule: a transaction's read set must match the
// current versions of the keys it read at endorsement time; otherwise the
// transaction is marked invalid at commit (it stays on the chain but does
// not mutate state).
//
// Storage backend: an authenticated copy-on-write Merkle trie
// (ledger/state_trie.hpp) instead of a flat std::map. Consequences:
//  * digest() is the trie root — O(1), maintained incrementally by every
//    mutation instead of re-hashing all n entries per call.
//  * Copying a WorldState is O(1) (shared immutable subtrees), so
//    checkpoint/snapshot state stays resident for free.
//  * get_range/get_by_prefix and the for_each walks descend only the
//    covering subtrie — a prefix scan matching k keys touches
//    O(depth + k) nodes regardless of total state size.
//  * The canonical entry serialization (encode/decode) is byte-identical
//    to the legacy map-backed format; only digest() changed (root hash
//    instead of sha256(encode()), a one-shot re-digest across the fleet).
//
// A small open-addressing hot cache fronts the trie for the commit path:
// every put/erase/apply refreshes it, so MVCC read-set validation and
// repeated gets against recently touched accounts skip the trie walk
// entirely. The cache is only ever written by mutating calls — const
// reads never populate it — keeping concurrent readers race-free.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "crypto/sha256.hpp"
#include "ledger/state_trie.hpp"
#include "ledger/transaction.hpp"

namespace veil::ledger {

struct VersionedValue {
  common::Bytes value;
  std::uint64_t version = 0;
};

enum class CommitResult { Applied, MvccConflict };

class WorldState {
 public:
  /// Per-key visitor for ordered, copy-free iteration. Return false to
  /// stop early.
  using Visitor = StateTrie::Visitor;

  std::optional<VersionedValue> get(const std::string& key) const;

  /// Version of a key (0 = absent) without copying its value — the MVCC
  /// validation hot path.
  std::uint64_t version_of(const std::string& key) const;

  /// Direct write (used by contract execution to build write sets; commit
  /// of ordered transactions should go through apply()).
  void put(const std::string& key, common::Bytes value);
  void erase(const std::string& key);

  /// Validate the read set against current versions, then apply the write
  /// set. Returns MvccConflict (without side effects) on stale reads.
  CommitResult apply(const Transaction& tx);

  std::size_t size() const { return trie_.size(); }
  bool empty() const { return trie_.empty(); }

  /// Ordered visit of every entry without materializing a container.
  /// Preferred over entries() anywhere the map is only iterated.
  void for_each(const Visitor& visit) const;

  /// Ordered materialized view of all entries. O(n) — kept for callers
  /// that genuinely need a container; prefer for_each().
  std::map<std::string, VersionedValue> entries() const;

  /// Range query over [start_key, end_key); empty end_key means "to the
  /// end". Descends only the covering subtrie (O(depth + matches)).
  std::vector<std::pair<std::string, VersionedValue>> get_range(
      const std::string& start_key, const std::string& end_key) const;

  /// All keys sharing a prefix (composite-key queries). O(depth + matches).
  std::vector<std::pair<std::string, VersionedValue>> get_by_prefix(
      const std::string& prefix) const;

  /// Streaming forms of the range/prefix queries: visit matches in key
  /// order without copying values. Return the number of trie nodes
  /// visited (regression tests assert scans stay sublinear).
  std::size_t scan_range(const std::string& start_key,
                         const std::string& end_key,
                         const Visitor& visit) const;
  std::size_t scan_prefix(const std::string& prefix,
                          const Visitor& visit) const;

  /// Authenticated state root over all (key, value, version) entries.
  /// Incrementally maintained — O(1) per call. Two replicas that applied
  /// the same transactions in the same order have equal digests — the
  /// bit-identical-state check chaos tests assert.
  crypto::Digest digest() const { return trie_.root_hash(); }

  /// Canonical full-state serialization (WAL checkpoints, snapshots).
  /// Byte-identical to the legacy map-backed format.
  common::Bytes encode() const;
  static WorldState decode(common::BytesView data);

  // ---- Authenticated-store surface (snapshots, delta sync, proofs) --------

  /// The backing trie (content-addressed node image, proofs).
  const StateTrie& trie() const { return trie_; }

  /// Merkle inclusion/exclusion proof for one key against digest().
  StateProof prove(const std::string& key) const { return trie_.prove(key); }
  static bool verify_proof(const crypto::Digest& root,
                           const StateProof& proof) {
    return StateTrie::verify_proof(root, proof);
  }

  /// Rebuild from a content-addressed node image (snapshot install /
  /// delta rejoin). Lazy keeps nodes cold until first touch.
  static WorldState from_trie(StateTrie trie);

 private:
  // Open-addressing hot cache over recently *written* accounts. Slots
  // hold owned copies keyed by a 64-bit FNV-1a of the key (plus the full
  // key for exactness); collisions overwrite (newest wins). Reads probe
  // but never insert, so const methods stay bitwise-const and thread-safe.
  struct HotSlot {
    std::uint64_t hash = 0;
    bool used = false;
    std::string key;
    common::Bytes value;
    std::uint64_t version = 0;  // 0 = tombstone (key erased)
  };
  static constexpr std::size_t kHotSlots = 4096;  // power of two
  static constexpr std::size_t kProbeLimit = 8;

  const HotSlot* hot_find(const std::string& key) const;
  void hot_store(const std::string& key, const common::Bytes& value,
                 std::uint64_t version);
  void hot_store_tombstone(const std::string& key);

  StateTrie trie_;
  std::vector<HotSlot> hot_;  // empty until first write; kHotSlots after
};

}  // namespace veil::ledger
