#include "ledger/ordering.hpp"

namespace veil::ledger {

OrderingService::ChannelTip::ChannelTip() {
  prev_hash = crypto::sha256(std::string_view("veil.chain.genesis"));
}

OrderingService::OrderingService(std::string operator_name,
                                 OrdererDeployment deployment,
                                 net::LeakageAuditor& auditor,
                                 std::size_t batch_size)
    : operator_name_(std::move(operator_name)),
      deployment_(deployment),
      auditor_(&auditor),
      batch_size_(batch_size) {}

std::vector<Block> OrderingService::submit(const Transaction& tx,
                                           common::SimTime now) {
  // The operator of the ordering service sees the entire transaction —
  // the §3.4 leak this module exists to model.
  record_visibility(*auditor_, operator_name_, tx);

  ChannelTip& tip = channels_[tx.channel];
  tip.pending.push_back(tx);
  ++ordered_count_;

  std::vector<Block> blocks;
  if (tip.pending.size() >= batch_size_) {
    blocks.push_back(cut(tx.channel, now));
  }
  return blocks;
}

std::vector<Block> OrderingService::flush(common::SimTime now) {
  std::vector<Block> blocks;
  for (auto& [channel, tip] : channels_) {
    if (!tip.pending.empty()) blocks.push_back(cut(channel, now));
  }
  return blocks;
}

Block OrderingService::cut(const std::string& channel, common::SimTime now) {
  ChannelTip& tip = channels_[channel];
  std::vector<Transaction> txs(tip.pending.begin(), tip.pending.end());
  tip.pending.clear();
  Block block = Block::make(tip.next_height, tip.prev_hash, std::move(txs), now);
  tip.prev_hash = block.header.hash();
  ++tip.next_height;
  return block;
}

}  // namespace veil::ledger
