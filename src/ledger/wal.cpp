#include "ledger/wal.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/serialize.hpp"
#include "crypto/sha256.hpp"

namespace veil::ledger {

void WriteAheadLog::append(std::uint8_t type, common::BytesView payload) {
  common::Writer w;
  w.u8(type);
  w.bytes(payload);
  const crypto::Digest checksum = crypto::sha256(payload);
  w.raw(common::BytesView(checksum.data(), checksum.size()));
  const common::Bytes record = w.take();
  log_.insert(log_.end(), record.begin(), record.end());
  ++record_count_;
}

std::size_t WriteAheadLog::compact(std::uint8_t type,
                                   common::BytesView payload) {
  // Durability ordering: the checkpoint record must be fully appended
  // (fsynced, in this in-memory model: resident in log_) BEFORE the
  // prefix it supersedes is dropped. A crash in the window between the
  // two leaves both the old records and the checkpoint on disk — wasted
  // space, never lost state.
  const std::size_t prefix_bytes = log_.size();
  const std::size_t prefix_records = record_count_;
  append(type, payload);
  if (crash_before_truncate_) {
    crash_before_truncate_ = false;
    return 0;
  }
  log_.erase(log_.begin(),
             log_.begin() + static_cast<std::ptrdiff_t>(prefix_bytes));
  record_count_ -= prefix_records;
  truncated_bytes_ += prefix_bytes;
  return prefix_bytes;
}

std::vector<WriteAheadLog::Record> WriteAheadLog::recover() const {
  std::vector<Record> out;
  common::Reader r(log_);
  std::size_t clean_end = 0;
  RecoveryReport report;
  try {
    while (!r.done()) {
      Record rec;
      rec.type = r.u8();
      rec.payload = r.bytes();
      const common::Bytes checksum = r.raw(crypto::kSha256DigestSize);
      const crypto::Digest expected = crypto::sha256(rec.payload);
      if (!std::equal(checksum.begin(), checksum.end(), expected.begin())) {
        // The record was fully framed but its checksum fails: that is
        // bit-rot or tampering, not a torn write. Flag it — callers must
        // be able to tell "crashed mid-append" from "the log lied".
        ++report.corrupt_records;
        break;  // still stop at the clean prefix
      }
      out.push_back(std::move(rec));
      clean_end = log_.size() - r.remaining();
    }
  } catch (const common::Error&) {
    // Torn tail: the last record was cut mid-write. Keep the prefix.
  }
  report.records_recovered = out.size();
  report.torn_tail_bytes = log_.size() - clean_end;
  report.truncated_bytes = truncated_bytes_;
  last_recovery_ = report;
  return out;
}

void WriteAheadLog::tear(std::size_t bytes) {
  if (bytes >= log_.size()) {
    log_.clear();
  } else {
    log_.resize(log_.size() - bytes);
  }
}

void WriteAheadLog::corrupt_byte(std::size_t offset) {
  if (offset < log_.size()) log_[offset] ^= 0x5a;
}

common::Bytes wal_encode_checkpoint(std::uint64_t height,
                                    const crypto::Digest& tip_hash,
                                    const WorldState& state,
                                    common::BytesView aux) {
  common::Writer w;
  w.u64(height);
  w.raw(common::BytesView(tip_hash.data(), tip_hash.size()));
  w.bytes(state.encode());
  w.bytes(aux);
  const crypto::Digest root = state.digest();
  w.raw(common::BytesView(root.data(), root.size()));
  return w.take();
}

void wal_log_checkpoint(WriteAheadLog& wal, std::uint64_t height,
                        const crypto::Digest& tip_hash, const WorldState& state,
                        common::BytesView aux) {
  wal.append(kWalCheckpoint,
             wal_encode_checkpoint(height, tip_hash, state, aux));
}

void wal_checkpoint_compact(WriteAheadLog& wal, std::uint64_t height,
                            const crypto::Digest& tip_hash,
                            const WorldState& state, common::BytesView aux) {
  wal.compact(kWalCheckpoint,
              wal_encode_checkpoint(height, tip_hash, state, aux));
}

void wal_log_block(WriteAheadLog& wal, const Block& block) {
  wal.append(kWalBlock, block.encode());
}

WalRecovery wal_recover_blocks(const WriteAheadLog& wal) {
  WalRecovery recovery;
  for (const WriteAheadLog::Record& rec : wal.recover()) {
    try {
      if (rec.type == kWalCheckpoint) {
        common::Reader r(rec.payload);
        WalCheckpoint cp;
        cp.height = r.u64();
        const common::Bytes hash = r.raw(crypto::kSha256DigestSize);
        std::copy(hash.begin(), hash.end(), cp.tip_hash.begin());
        cp.state = WorldState::decode(r.bytes());
        // Logs written before the aux sidecar existed end here.
        if (!r.done()) cp.aux = r.bytes();
        cp.state_root = cp.state.digest();
        if (!r.done()) {
          // Authenticated-root cross-check (logs that predate the field
          // skip it): a state body that decodes but does not re-hash to
          // the sealed root is corruption the per-record checksum could
          // not see (it covers bytes, not meaning). Fail closed, exactly
          // like an undecodable payload.
          const common::Bytes sealed = r.raw(crypto::kSha256DigestSize);
          if (!std::equal(sealed.begin(), sealed.end(),
                          cp.state_root.begin())) {
            throw common::ProtocolError(
                "checkpoint state does not match sealed root");
          }
        }
        recovery.checkpoint = std::move(cp);
        // A checkpoint supersedes everything logged before it. Normally
        // compaction already erased that prefix, but a crash in the
        // window between checkpoint-append and truncate leaves both on
        // disk — recovery must not replay the stale blocks twice.
        recovery.blocks.clear();
      } else if (rec.type == kWalBlock) {
        recovery.blocks.push_back(Block::decode(rec.payload));
      }
      // Unknown record types are skipped (forward compatibility).
    } catch (const common::Error&) {
      break;  // undecodable payload: treat like a torn tail
    }
  }
  return recovery;
}

}  // namespace veil::ledger
