#include "ledger/xshard.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "common/serialize.hpp"
#include "ledger/shard.hpp"

namespace veil::ledger {

namespace {

void put_digest(common::Writer& w, const crypto::Digest& d) {
  w.raw(common::BytesView(d.data(), d.size()));
}

crypto::Digest get_digest(common::Reader& r) {
  const common::Bytes raw = r.raw(crypto::kSha256DigestSize);
  crypto::Digest d{};
  std::copy(raw.begin(), raw.end(), d.begin());
  return d;
}

}  // namespace

// ---- Wire codecs ----------------------------------------------------------

common::Bytes XPrepare::to_be_signed() const {
  common::Writer w;
  w.str(xid);
  w.u64(shard);
  w.varint(participants.size());
  for (const std::uint64_t p : participants) w.u64(p);
  w.str(coordinator);
  w.u64(deadline_us);
  w.bytes(subtx.encode());
  return w.take();
}

common::Bytes XPrepare::encode() const {
  common::Writer w;
  w.raw(to_be_signed());
  w.bytes(sig.encode());
  return w.take();
}

XPrepare XPrepare::decode(common::BytesView data) {
  common::Reader r(data);
  XPrepare p;
  p.xid = r.str();
  p.shard = r.u64();
  const std::uint64_t n = r.varint();
  for (std::uint64_t i = 0; i < n; ++i) p.participants.push_back(r.u64());
  p.coordinator = r.str();
  p.deadline_us = r.u64();
  p.subtx = Transaction::decode(r.bytes());
  p.sig = crypto::Signature::decode(r.bytes());
  if (!r.done()) throw common::Error("xprepare: trailing bytes");
  return p;
}

common::Bytes XVote::to_be_signed() const {
  common::Writer w;
  w.str(xid);
  w.u64(shard);
  w.boolean(yes);
  put_digest(w, state_root);
  w.str(voter);
  return w.take();
}

common::Bytes XVote::encode() const {
  common::Writer w;
  w.raw(to_be_signed());
  w.bytes(sig.encode());
  return w.take();
}

XVote XVote::decode(common::BytesView data) {
  common::Reader r(data);
  XVote v;
  v.xid = r.str();
  v.shard = r.u64();
  v.yes = r.boolean();
  v.state_root = get_digest(r);
  v.voter = r.str();
  v.sig = crypto::Signature::decode(r.bytes());
  if (!r.done()) throw common::Error("xvote: trailing bytes");
  return v;
}

common::Bytes XDecision::to_be_signed() const {
  common::Writer w;
  w.str(xid);
  w.boolean(commit);
  w.varint(cert.size());
  for (const XVote& v : cert) w.bytes(v.encode());
  w.str(decider);
  return w.take();
}

common::Bytes XDecision::encode() const {
  common::Writer w;
  w.raw(to_be_signed());
  w.bytes(sig.encode());
  return w.take();
}

XDecision XDecision::decode(common::BytesView data) {
  common::Reader r(data);
  XDecision d;
  d.xid = r.str();
  d.commit = r.boolean();
  const std::uint64_t n = r.varint();
  for (std::uint64_t i = 0; i < n; ++i) d.cert.push_back(XVote::decode(r.bytes()));
  d.decider = r.str();
  d.sig = crypto::Signature::decode(r.bytes());
  if (!r.done()) throw common::Error("xdecision: trailing bytes");
  return d;
}

common::Bytes XStatus::encode() const {
  common::Writer w;
  w.str(xid);
  w.u64(shard);
  w.str(requester);
  return w.take();
}

XStatus XStatus::decode(common::BytesView data) {
  common::Reader r(data);
  XStatus s;
  s.xid = r.str();
  s.shard = r.u64();
  s.requester = r.str();
  if (!r.done()) throw common::Error("xstatus: trailing bytes");
  return s;
}

common::Bytes XQueryReply::encode() const {
  common::Writer w;
  w.str(xid);
  w.u64(shard);
  w.boolean(prepared);
  w.boolean(decided);
  w.bytes(decision);
  return w.take();
}

XQueryReply XQueryReply::decode(common::BytesView data) {
  common::Reader r(data);
  XQueryReply q;
  q.xid = r.str();
  q.shard = r.u64();
  q.prepared = r.boolean();
  q.decided = r.boolean();
  q.decision = r.bytes();
  if (!r.done()) throw common::Error("xqueryreply: trailing bytes");
  return q;
}

// ---- Coordinator ----------------------------------------------------------

CrossShardCoordinator::CrossShardCoordinator(net::Transport& network,
                                             net::ReliableChannel& channel,
                                             ShardMap& shards,
                                             const crypto::Group& group,
                                             common::Rng& rng,
                                             CoordinatorConfig config)
    : network_(&network),
      channel_(&channel),
      shards_(&shards),
      config_(std::move(config)),
      key_(crypto::KeyPair::generate(group, rng)),
      standby_key_(crypto::KeyPair::generate(group, rng)) {
  channel_->attach(config_.name, [this](const net::Message& m) {
    on_message(config_.name, m);
  });
  channel_->attach(config_.standby, [this](const net::Message& m) {
    on_message(config_.standby, m);
  });
  network_->set_crash_hook(config_.name, [this] { on_crash(); });
  network_->set_restart_hook(config_.name, [this] { on_restart(); });
  network_->set_crash_hook(config_.standby, [this] {
    recovering_.clear();
    standby_decided_.clear();
  });
  shards_->register_coordinator(config_.name, key_.public_key(), false);
  shards_->register_coordinator(config_.standby, standby_key_.public_key(),
                                true);
}

std::string CrossShardCoordinator::begin(const Transaction& tx) {
  const std::string xid = tx.id();
  // Split the parent transaction into per-shard slices by key routing.
  std::map<std::uint64_t, Transaction> subtxs;
  const auto slice = [&](std::uint64_t s) -> Transaction& {
    auto it = subtxs.find(s);
    if (it == subtxs.end()) {
      Transaction sub;
      sub.channel = tx.channel;
      sub.contract = tx.contract;
      sub.action = tx.action;
      sub.participants = tx.participants;
      sub.payload = tx.payload;
      sub.timestamp = tx.timestamp;
      sub.deadline_us = tx.deadline_us;
      sub.data_opaque = tx.data_opaque;
      sub.parties_pseudonymous = tx.parties_pseudonymous;
      it = subtxs.emplace(s, std::move(sub)).first;
    }
    return it->second;
  };
  for (const ReadAccess& rd : tx.reads) {
    slice(shards_->shard_for_key(rd.key)).reads.push_back(rd);
  }
  for (const KvWrite& wr : tx.writes) {
    slice(shards_->shard_for_key(wr.key)).writes.push_back(wr);
  }
  if (subtxs.empty()) slice(0);

  std::vector<std::uint64_t> participants;
  participants.reserve(subtxs.size());
  for (const auto& [s, sub] : subtxs) participants.push_back(s);

  // WAL first: a restarted coordinator must know the xid existed for the
  // presumption (begun + no decision record -> abort) to bite.
  common::Writer w;
  w.str(xid);
  w.varint(participants.size());
  for (const std::uint64_t s : participants) w.u64(s);
  wal_.append(kWalXBegin, w.data());
  begun_[xid] = participants;
  ++stats_.begun;
  maybe_crash(CrashPoint::AfterBeginLog);
  if (network_->crashed(config_.name)) return xid;

  Pending pending;
  pending.participants = participants;
  pending.subtxs = std::move(subtxs);
  pending.deadline_us = network_->clock().now() + config_.vote_timeout_us;
  const common::SimTime deadline = pending.deadline_us;
  pending_[xid] = std::move(pending);

  for (const auto& [s, sub] : pending_[xid].subtxs) {
    XPrepare prep;
    prep.xid = xid;
    prep.shard = s;
    prep.participants = participants;
    prep.coordinator = config_.name;
    prep.deadline_us = deadline;
    prep.subtx = sub;
    prep.sig = key_.sign(prep.to_be_signed());
    channel_->send(config_.name, shards_->primary(s), "xshard.prepare",
                   prep.encode());
    network_->count_xshard_prepare();
    ++stats_.prepares_sent;
  }
  // Vote timeout -> presumed abort. The timer outliving a crash is
  // harmless: pending_ is volatile, so the guard below finds nothing.
  network_->schedule(deadline, [this, xid] {
    if (network_->crashed(config_.name)) return;
    const auto it = pending_.find(xid);
    if (it == pending_.end() || it->second.decided) return;
    decide(xid, false, net::XAbortCause::Timeout);
  });
  return xid;
}

CrossShardCoordinator::Outcome CrossShardCoordinator::outcome(
    const std::string& xid) const {
  if (const auto it = decided_.find(xid); it != decided_.end()) {
    return it->second.commit ? Outcome::Committed : Outcome::Aborted;
  }
  if (const auto it = standby_decided_.find(xid);
      it != standby_decided_.end()) {
    return it->second.commit ? Outcome::Committed : Outcome::Aborted;
  }
  return Outcome::Pending;
}

void CrossShardCoordinator::on_message(const net::Principal& self,
                                       const net::Message& msg) {
  try {
    if (self == config_.name) {
      if (msg.topic == "xshard.vote") {
        on_vote(msg);
      } else if (msg.topic == "xshard.status") {
        on_status(msg);
      }
    } else {
      if (msg.topic == "xshard.recover") {
        on_recover(msg);
      } else if (msg.topic == "xshard.qreply") {
        on_query_reply(msg);
      }
    }
  } catch (const common::Error&) {
    ++stats_.malformed;
  }
}

void CrossShardCoordinator::on_vote(const net::Message& msg) {
  const XVote vote = XVote::decode(msg.payload);
  const auto it = pending_.find(vote.xid);
  if (it == pending_.end() || it->second.decided) return;
  Pending& p = it->second;
  if (std::find(p.participants.begin(), p.participants.end(), vote.shard) ==
      p.participants.end()) {
    return;
  }
  if (vote.voter != shards_->primary(vote.shard)) return;
  if (!crypto::verify(key_.group(), shards_->primary_public_key(vote.shard),
                      vote.to_be_signed(), vote.sig)) {
    return;
  }
  ++stats_.votes_received;
  if (!vote.yes) {
    decide(vote.xid, false, net::XAbortCause::VoteNo);
    return;
  }
  p.votes.emplace(vote.shard, vote);
  if (p.votes.size() == p.participants.size()) {
    decide(vote.xid, true, net::XAbortCause::VoteNo);
  }
}

XDecision CrossShardCoordinator::make_decision(
    const std::string& xid, bool commit, const std::vector<XVote>& cert,
    const crypto::KeyPair& key, const net::Principal& decider) const {
  XDecision d;
  d.xid = xid;
  d.commit = commit;
  d.cert = cert;
  d.decider = decider;
  d.sig = key.sign(d.to_be_signed());
  return d;
}

void CrossShardCoordinator::decide(const std::string& xid, bool commit,
                                   net::XAbortCause cause) {
  const auto it = pending_.find(xid);
  if (it == pending_.end() || it->second.decided) return;
  it->second.decided = true;
  const std::vector<std::uint64_t> participants = it->second.participants;
  std::vector<XVote> cert;
  if (commit) {
    cert.reserve(it->second.votes.size());
    for (const auto& [s, v] : it->second.votes) cert.push_back(v);
  }

  if (commit && equivocate_) {
    // Byzantine script: log and remember a commit like an honest
    // coordinator, then tell the lowest shard commit and the rest abort.
    const XDecision yes = make_decision(xid, true, cert, key_, config_.name);
    const XDecision no = make_decision(xid, false, {}, key_, config_.name);
    wal_.append(kWalXDecision, yes.encode());
    decided_[xid] = yes;
    pending_.erase(xid);
    bool first = true;
    for (const std::uint64_t s : participants) {
      channel_->send(config_.name, shards_->primary(s), "xshard.decision",
                     (first ? yes : no).encode());
      first = false;
    }
    return;
  }

  maybe_crash(CrashPoint::BeforeDecisionLog);
  if (network_->crashed(config_.name)) return;

  const XDecision d = make_decision(xid, commit, cert, key_, config_.name);
  if (commit) {
    // Presumed abort: only commits are logged. An abort needs no record —
    // recovery answers "abort" for every begun xid without one.
    wal_.append(kWalXDecision, d.encode());
  }
  maybe_crash(CrashPoint::AfterDecisionLog);
  if (network_->crashed(config_.name)) return;

  if (commit) {
    network_->count_xshard_commit();
    ++stats_.commits;
  } else {
    network_->count_xshard_abort(cause);
    if (cause == net::XAbortCause::VoteNo) {
      ++stats_.aborts_voteno;
    } else {
      ++stats_.aborts_timeout;
    }
  }
  decided_[xid] = d;
  pending_.erase(xid);
  send_decision(d, participants);
}

void CrossShardCoordinator::send_decision(
    const XDecision& decision, const std::vector<std::uint64_t>& shards) {
  bool first = true;
  for (const std::uint64_t s : shards) {
    channel_->send(config_.name, shards_->primary(s), "xshard.decision",
                   decision.encode());
    if (first) {
      first = false;
      maybe_crash(CrashPoint::AfterFirstDecisionSend);
      if (network_->crashed(config_.name)) return;
    }
  }
}

void CrossShardCoordinator::on_status(const net::Message& msg) {
  const XStatus st = XStatus::decode(msg.payload);
  if (const auto it = decided_.find(st.xid); it != decided_.end()) {
    ++stats_.status_replies;
    channel_->send(config_.name, st.requester, "xshard.decision",
                   it->second.encode());
    return;
  }
  if (const auto it = pending_.find(st.xid); it != pending_.end()) {
    return;  // vote collection still running; the timeout will decide
  }
  if (!begun_.contains(st.xid)) return;  // not ours: never sign for it
  // Begun but no decision survives: the presumption answers abort.
  const XDecision abort_d =
      make_decision(st.xid, false, {}, key_, config_.name);
  decided_[st.xid] = abort_d;
  ++stats_.status_replies;
  channel_->send(config_.name, st.requester, "xshard.decision",
                 abort_d.encode());
}

void CrossShardCoordinator::on_recover(const net::Message& msg) {
  const XStatus st = XStatus::decode(msg.payload);
  if (const auto it = standby_decided_.find(st.xid);
      it != standby_decided_.end()) {
    channel_->send(config_.standby, st.requester, "xshard.decision",
                   it->second.encode());
    return;
  }
  Recovery& rec = recovering_[st.xid];
  rec.requesters.insert(st.requester);
  if (rec.rounds == 0 && !rec.done) {
    network_->count_xshard_failover();
    ++stats_.failover_recoveries;
    send_query_round(st.xid);
  }
}

void CrossShardCoordinator::send_query_round(const std::string& xid) {
  Recovery& rec = recovering_[xid];
  ++rec.rounds;
  XStatus q;
  q.xid = xid;
  q.requester = config_.standby;
  for (std::uint64_t s = 0; s < shards_->shard_count(); ++s) {
    if (rec.replies.contains(s)) continue;
    q.shard = s;
    channel_->send(config_.standby, shards_->primary(s), "xshard.query",
                   q.encode());
  }
  network_->schedule(
      network_->clock().now() + config_.query_timeout_us, [this, xid] {
        if (network_->crashed(config_.standby)) return;
        const auto it = recovering_.find(xid);
        if (it == recovering_.end() || it->second.done) return;
        if (it->second.rounds >= config_.max_query_rounds) {
          // Fail closed: without a full reply set a silent shard might
          // have applied, so no verdict is safe. Drop the attempt; a
          // later xshard.recover restarts it.
          ++stats_.failover_stalled;
          recovering_.erase(it);
          return;
        }
        send_query_round(xid);
      });
}

void CrossShardCoordinator::on_query_reply(const net::Message& msg) {
  const XQueryReply rep = XQueryReply::decode(msg.payload);
  const auto it = recovering_.find(rep.xid);
  if (it == recovering_.end() || it->second.done) return;
  it->second.replies[rep.shard] = rep;
  evaluate_recovery(rep.xid);
}

void CrossShardCoordinator::evaluate_recovery(const std::string& xid) {
  Recovery& rec = recovering_[xid];
  if (rec.replies.size() < shards_->shard_count()) return;
  rec.done = true;
  // Any decided reply wins; a commit (it carries the certificate) beats
  // a decided abort from another shard. With a complete, commit-free,
  // undecided reply set, abort is safe: nobody applied.
  std::optional<XDecision> found;
  for (const auto& [s, rep] : rec.replies) {
    if (!rep.decided) continue;
    try {
      XDecision d = XDecision::decode(rep.decision);
      if (d.xid != xid) continue;
      if (d.commit) {
        found = std::move(d);
        break;
      }
      if (!found) found = std::move(d);
    } catch (const common::Error&) {
      ++stats_.malformed;
    }
  }
  // Re-sign as the standby (participants that answered a query are
  // fenced to standby decisions), keeping the original certificate so
  // commit verification still binds to every participant's yes-vote.
  const bool commit = found.has_value() && found->commit;
  const XDecision verdict =
      make_decision(xid, commit, commit ? found->cert : std::vector<XVote>{},
                    standby_key_, config_.standby);
  standby_decided_[xid] = verdict;
  for (const auto& [s, rep] : rec.replies) {
    if (rep.prepared || rep.decided) {
      channel_->send(config_.standby, shards_->primary(s), "xshard.decision",
                     verdict.encode());
    }
  }
  recovering_.erase(xid);
}

void CrossShardCoordinator::maybe_crash(CrashPoint point) {
  if (crash_point_ != point) return;
  crash_point_ = CrashPoint::None;  // fire once
  network_->crash(config_.name);
}

void CrossShardCoordinator::on_crash() {
  pending_.clear();
  decided_.clear();
  begun_.clear();
}

void CrossShardCoordinator::on_restart() {
  for (const WriteAheadLog::Record& rec : wal_.recover()) {
    try {
      if (rec.type == kWalXBegin) {
        common::Reader r(rec.payload);
        const std::string xid = r.str();
        const std::uint64_t n = r.varint();
        std::vector<std::uint64_t> parts;
        parts.reserve(n);
        for (std::uint64_t i = 0; i < n; ++i) parts.push_back(r.u64());
        begun_[xid] = std::move(parts);
      } else if (rec.type == kWalXDecision) {
        XDecision d = XDecision::decode(rec.payload);
        decided_[d.xid] = std::move(d);
      }
    } catch (const common::Error&) {
      ++stats_.malformed;
    }
  }
  // Logged commits are re-driven; everything else begun is presumed
  // aborted and proactively answered so prepared participants unlock.
  for (const auto& [xid, parts] : begun_) {
    const auto it = decided_.find(xid);
    if (it != decided_.end()) {
      ++stats_.decisions_resent;
      send_decision(it->second, parts);
    } else {
      const XDecision abort_d =
          make_decision(xid, false, {}, key_, config_.name);
      decided_[xid] = abort_d;
      ++stats_.recovery_aborts;
      send_decision(abort_d, parts);
    }
  }
}

}  // namespace veil::ledger
