// Platform-agnostic transaction model.
//
// One transaction shape serves all three platform adapters:
//  * Fabric-style: read/write sets + endorsements, plaintext payload.
//  * Corda-style:  payload is a serialized (possibly torn-off) tx body,
//    participants may be one-time keys.
//  * Quorum-style: payload is a 32-byte hash of the privately distributed
//    data; `data_opaque` is set.
//
// Two flags drive leakage accounting rather than crypto: they declare
// whether the payload/writes are already an opaque form (ciphertext or
// hash) and whether the participant list is pseudonymous. The platform
// adapters set them to mirror what their real counterparts put on the
// wire.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/clock.hpp"
#include "crypto/sha256.hpp"
#include "crypto/signature.hpp"
#include "net/leakage.hpp"

namespace veil::ledger {

/// A versioned read performed by contract execution (MVCC validation).
struct ReadAccess {
  std::string key;
  std::uint64_t version = 0;

  bool operator==(const ReadAccess&) const = default;
};

struct KvWrite {
  std::string key;
  common::Bytes value;
  bool is_delete = false;

  bool operator==(const KvWrite&) const = default;
};

/// Reference to data held off-chain: only the digest is on the ledger.
struct HashRef {
  std::string label;
  crypto::Digest digest{};

  bool operator==(const HashRef&) const = default;
};

struct Endorsement {
  std::string endorser;  // org or party name (may be a pseudonym)
  crypto::PublicKey key;
  crypto::Signature signature;  // over Transaction::body_digest()
};

struct Transaction {
  std::string channel;
  std::string contract;
  std::string action;
  std::vector<std::string> participants;
  std::vector<ReadAccess> reads;
  std::vector<KvWrite> writes;
  common::Bytes payload;
  std::vector<HashRef> hash_refs;
  common::SimTime timestamp = 0;
  /// Absolute deadline stamped at submission (0 = none). Every pipeline
  /// stage drops the transaction once this passes; part of the signed
  /// body so an orderer cannot stretch a TTL to resurrect stale work.
  common::SimTime deadline_us = 0;

  // Leakage-accounting declarations (see file comment).
  bool data_opaque = false;
  bool parties_pseudonymous = false;

  std::vector<Endorsement> endorsements;

  /// Canonical encoding of the signed portion (everything but
  /// endorsements).
  common::Bytes body_encoding() const;
  crypto::Digest body_digest() const;

  /// Transaction id: hex digest of the body.
  std::string id() const;

  /// Full encoding including endorsements.
  common::Bytes encode() const;
  static Transaction decode(common::BytesView data);

  /// Add an endorsement by signing the body with `keypair`.
  void endorse(const std::string& endorser, const crypto::KeyPair& keypair);

  /// Verify every endorsement signature.
  bool endorsements_valid(const crypto::Group& group) const;

  /// Total bytes of payload + write values (the "data" of the tx).
  std::uint64_t data_size() const;
};

/// Record into `auditor` what `observer` learns when it sees this
/// transaction in full (as the ordering service or a ledger peer does).
void record_visibility(net::LeakageAuditor& auditor,
                       const net::Principal& observer, const Transaction& tx);

}  // namespace veil::ledger
