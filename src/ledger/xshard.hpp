// Fault-tolerant cross-shard atomic commit (presumed-abort 2PC).
//
// The sharded scale-out tier (ledger/shard.hpp) gives every shard its own
// chain, mempool, and state trie — which makes a transaction spanning two
// shards a distributed-commit problem. This engine is the classic
// presumed-abort two-phase commit, hardened against the failures the
// roadmap's enterprise requirement analyses flag: coordinator crashes,
// message loss, partitions, and a Byzantine coordinator.
//
//   coordinator                    participant shard primaries
//     | kWalXBegin                       |
//     |-- xshard.prepare (signed) ------>|  lock read+write keys, pin in
//     |                                  |  mempool, kWalXPrepare
//     |<-- xshard.vote (signed, carries shard state root) --|
//     | all-yes: kWalXDecision, then     |
//     |-- xshard.decision (signed, commit carries the full  |
//     |       vote certificate) -------->|
//     |                                  |-- xshard.echo --> co-participants
//     |                                  |  finalize after the echo window:
//     |                                  |  kWalXOutcome, apply or unlock
//
// Crash ordering: every protocol step that must survive a restart is
// WAL-logged BEFORE the action it describes. A restarted coordinator
// re-sends logged commit decisions and presumes abort for every begun
// transaction without a decision record (the presumed-abort rule: abort
// decisions are never logged — absence IS the abort record). A restarted
// participant rebuilds its prepared set, locks, and in-doubt timers from
// kWalXPrepare/kWalXOutcome records.
//
// In-doubt participants: a prepared participant whose decision never
// arrives queries the coordinator (xshard.status); the coordinator
// answers from its WAL-backed decision map, applying the presumption
// (no record -> abort). If the coordinator stays silent, the participant
// escalates to the standby (xshard.recover), which reconstructs the
// transaction by querying EVERY shard primary (xshard.query): any reply
// holding the signed commit certificate resolves to commit; a full set
// of commit-free replies resolves to abort. The standby only decides on
// a complete reply set — a silent shard might have applied, so deciding
// without it could break atomicity. Rounds are bounded; a deployment
// that exhausts them stays prepared (fail closed) until redriven.
//
// Byzantine coordinator: a commit decision is only valid with a
// certificate containing every participant's signed yes-vote, so a
// coordinator cannot invent a commit a shard refused. Equivocating
// commit/abort to different shards is caught by the echo round:
// participants forward every decision to their co-participants and defer
// application for one echo window; two conflicting decisions signed by
// the same coordinator convict it (signed audit::Evidence,
// CoordinatorEquivocation), quarantine it on the network, and every
// participant fails closed to abort — safe, because nothing applied
// inside the window.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "crypto/signature.hpp"
#include "ledger/transaction.hpp"
#include "ledger/wal.hpp"
#include "net/network.hpp"
#include "net/reliable.hpp"

namespace veil::ledger {

class ShardMap;

// ---- WAL record types (crash-ordered; see file comment) --------------------

inline constexpr std::uint8_t kWalXBegin = 32;     // coordinator: tx started
inline constexpr std::uint8_t kWalXPrepare = 33;   // participant: voted yes
inline constexpr std::uint8_t kWalXDecision = 34;  // coordinator: commit only
inline constexpr std::uint8_t kWalXOutcome = 35;   // participant: final verdict

// ---- Wire types (all decode-fuzzed) ---------------------------------------

/// xshard.prepare: one shard's slice of a cross-shard transaction. Signed
/// by the coordinator so a participant never locks keys for an imposter.
struct XPrepare {
  std::string xid;  // parent transaction id
  std::uint64_t shard = 0;
  std::vector<std::uint64_t> participants;  // all shards of the tx, sorted
  net::Principal coordinator;
  common::SimTime deadline_us = 0;  // coordinator's vote deadline (absolute)
  Transaction subtx;                // this shard's reads + writes
  crypto::Signature sig;

  common::Bytes to_be_signed() const;
  common::Bytes encode() const;
  static XPrepare decode(common::BytesView data);
};

/// xshard.vote: a participant's verdict, signed by the shard primary and
/// carrying its authenticated state root at vote time — the material the
/// commit certificate is built from.
struct XVote {
  std::string xid;
  std::uint64_t shard = 0;
  bool yes = false;
  crypto::Digest state_root{};
  net::Principal voter;
  crypto::Signature sig;

  common::Bytes to_be_signed() const;
  common::Bytes encode() const;
  static XVote decode(common::BytesView data);
};

/// xshard.decision / xshard.echo: the outcome. A commit carries the full
/// vote certificate (every participant's signed yes-vote); an abort
/// carries none. Signed by the deciding coordinator (primary or standby).
struct XDecision {
  std::string xid;
  bool commit = false;
  std::vector<XVote> cert;  // all yes-votes when commit; empty for abort
  net::Principal decider;
  crypto::Signature sig;

  common::Bytes to_be_signed() const;
  common::Bytes encode() const;
  static XDecision decode(common::BytesView data);
};

/// xshard.status (participant -> coordinator) and xshard.recover
/// (participant -> standby): "what happened to xid?".
struct XStatus {
  std::string xid;
  std::uint64_t shard = 0;
  net::Principal requester;

  common::Bytes encode() const;
  static XStatus decode(common::BytesView data);
};

/// xshard.query (standby -> every shard primary) and xshard.qreply:
/// the standby's reconstruction probe. `decision` is the encoded
/// XDecision when the shard already holds one.
struct XQueryReply {
  std::string xid;
  std::uint64_t shard = 0;
  bool prepared = false;  // voted yes, still in doubt
  bool decided = false;
  common::Bytes decision;  // encoded XDecision when decided

  common::Bytes encode() const;
  static XQueryReply decode(common::BytesView data);
};

// ---- Coordinator ----------------------------------------------------------

struct CoordinatorConfig {
  net::Principal name = "xcoord";
  net::Principal standby = "xcoord.standby";
  /// Votes not all in by begin-time + vote_timeout_us -> presumed abort.
  common::SimTime vote_timeout_us = 100'000;
  /// Standby re-queries shards that have not answered after this long.
  common::SimTime query_timeout_us = 150'000;
  /// Re-query rounds before a standby recovery stalls (fail closed).
  std::size_t max_query_rounds = 3;
};

struct XShardStats {
  std::uint64_t begun = 0;
  std::uint64_t prepares_sent = 0;
  std::uint64_t votes_received = 0;
  std::uint64_t commits = 0;
  std::uint64_t aborts_voteno = 0;
  std::uint64_t aborts_timeout = 0;
  std::uint64_t status_replies = 0;
  std::uint64_t decisions_resent = 0;     // WAL-recovered commits re-driven
  std::uint64_t recovery_aborts = 0;      // presumed aborts sent on restart
  std::uint64_t failover_recoveries = 0;  // standby takeovers started
  std::uint64_t failover_stalled = 0;     // reply set never completed
  std::uint64_t malformed = 0;            // undecodable xshard.* payloads
};

class CrossShardCoordinator {
 public:
  CrossShardCoordinator(net::Transport& network, net::ReliableChannel& channel,
                        ShardMap& shards, const crypto::Group& group,
                        common::Rng& rng, CoordinatorConfig config = {});

  /// Split `tx` by key routing and drive 2PC across the owning shards.
  /// Returns the cross-shard transaction id (the parent tx id). Progress
  /// is message-driven; the caller runs the network.
  std::string begin(const Transaction& tx);

  enum class Outcome { Pending, Committed, Aborted };
  /// Coordinator-side view of an outcome. After a crash this reflects
  /// the WAL presumption: logged commits survive, everything else begun
  /// reads Aborted.
  Outcome outcome(const std::string& xid) const;

  /// Byzantine script: on the next all-yes vote set, send a signed
  /// commit to the lowest participant shard and a signed abort to the
  /// rest (the equivocation the echo round exists to catch).
  void set_equivocate(bool on) { equivocate_ = on; }

  /// Crash-point hooks (crash-sweep tests): crash-stop this coordinator
  /// at the named protocol step, via the network's crash machinery.
  enum class CrashPoint {
    None,
    AfterBeginLog,          // begun logged, no prepare sent
    BeforeDecisionLog,      // votes in, decision not yet durable
    AfterDecisionLog,       // decision durable, nothing sent
    AfterFirstDecisionSend  // decision reached exactly one participant
  };
  void arm_crash(CrashPoint point) { crash_point_ = point; }

  const net::Principal& name() const { return config_.name; }
  const net::Principal& standby_name() const { return config_.standby; }
  const WriteAheadLog& wal() const { return wal_; }
  const XShardStats& stats() const { return stats_; }

 private:
  struct Pending {
    std::vector<std::uint64_t> participants;
    std::map<std::uint64_t, Transaction> subtxs;
    std::map<std::uint64_t, XVote> votes;
    common::SimTime deadline_us = 0;
    bool decided = false;
  };

  /// Standby-side reconstruction of one in-doubt transaction.
  struct Recovery {
    std::map<std::uint64_t, XQueryReply> replies;
    std::set<net::Principal> requesters;
    std::size_t rounds = 0;
    bool done = false;
  };

  void on_message(const net::Principal& self, const net::Message& msg);
  void on_vote(const net::Message& msg);
  void on_status(const net::Message& msg);
  void on_recover(const net::Message& msg);
  void on_query_reply(const net::Message& msg);

  void decide(const std::string& xid, bool commit, net::XAbortCause cause);
  XDecision make_decision(const std::string& xid, bool commit,
                          const std::vector<XVote>& cert,
                          const crypto::KeyPair& key,
                          const net::Principal& decider) const;
  void send_decision(const XDecision& decision,
                     const std::vector<std::uint64_t>& shards);
  void send_query_round(const std::string& xid);
  void evaluate_recovery(const std::string& xid);
  void maybe_crash(CrashPoint point);

  void on_crash();
  void on_restart();

  net::Transport* network_;
  net::ReliableChannel* channel_;
  ShardMap* shards_;
  CoordinatorConfig config_;
  crypto::KeyPair key_;
  crypto::KeyPair standby_key_;
  /// Durable: survives crash-stop, replayed on restart.
  WriteAheadLog wal_;
  // Volatile (cleared by a crash, rebuilt from the WAL where durable).
  std::map<std::string, Pending> pending_;
  std::map<std::string, XDecision> decided_;
  std::map<std::string, std::vector<std::uint64_t>> begun_;  // xid -> shards
  std::map<std::string, Recovery> recovering_;  // standby state
  std::map<std::string, XDecision> standby_decided_;
  bool equivocate_ = false;
  CrashPoint crash_point_ = CrashPoint::None;
  XShardStats stats_;
};

}  // namespace veil::ledger
