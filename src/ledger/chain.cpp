#include "ledger/chain.hpp"

#include "common/error.hpp"

namespace veil::ledger {

Chain::Chain() {
  tip_hash_ = crypto::sha256(std::string_view("veil.chain.genesis"));
  checkpoint_hash_ = tip_hash_;
}

Chain Chain::from_checkpoint(std::uint64_t height,
                             const crypto::Digest& tip_hash) {
  Chain chain;
  chain.checkpoint_height_ = height;
  chain.prune_height_ = height;
  chain.next_height_ = height;
  chain.checkpoint_hash_ = tip_hash;
  chain.tip_hash_ = tip_hash;
  return chain;
}

void Chain::append(Block block) {
  if (block.header.height != next_height_) {
    throw common::LedgerError("append: wrong height");
  }
  if (block.header.previous_hash != tip_hash_) {
    throw common::LedgerError("append: previous-hash mismatch");
  }
  if (!block.body_matches_header()) {
    throw common::LedgerError("append: body does not match header root");
  }
  tip_hash_ = block.header.hash();
  ++next_height_;
  live_.push_back(std::move(block));
}

std::uint64_t Chain::height() const { return next_height_; }

std::optional<Block> Chain::block_at(std::uint64_t height) const {
  if (height < checkpoint_height_ || height >= next_height_) {
    return std::nullopt;
  }
  if (height >= prune_height_) {
    return live_[height - prune_height_];
  }
  return archive_[height - checkpoint_height_];
}

std::optional<Block> Chain::find_transaction_block(
    const std::string& tx_id) const {
  for (const auto* store : {&live_, &archive_}) {
    for (const Block& block : *store) {
      for (const Transaction& tx : block.transactions) {
        if (tx.id() == tx_id) return block;
      }
    }
  }
  return std::nullopt;
}

std::size_t Chain::prune(std::uint64_t below_height) {
  std::size_t moved = 0;
  while (prune_height_ < below_height && !live_.empty()) {
    archive_.push_back(std::move(live_.front()));
    live_.erase(live_.begin());
    ++prune_height_;
    ++moved;
  }
  return moved;
}

bool Chain::verify_integrity() const {
  crypto::Digest prev = checkpoint_hash_;
  // Walk archive then live storage; heights must be continuous.
  std::uint64_t expected_height = checkpoint_height_;
  for (const auto* store : {&archive_, &live_}) {
    for (const Block& block : *store) {
      if (block.header.height != expected_height) return false;
      if (block.header.previous_hash != prev) return false;
      if (!block.body_matches_header()) return false;
      prev = block.header.hash();
      ++expected_height;
    }
  }
  return expected_height == next_height_;
}

}  // namespace veil::ledger
