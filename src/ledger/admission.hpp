// CoDel-style admission control in front of the mempool.
//
// Under overload the queue in front of a saturated pipeline grows without
// bound, and with it the *queueing delay* of everything admitted — the
// classic bufferbloat failure, transplanted to a ledger: every admitted
// transaction is endorsed, ordered, and validated late, so goodput
// collapses into work that is stale by the time it commits. The
// controlled-delay (CoDel) discipline sheds by sojourn time instead of
// queue length: as long as queue delay stays under a target, everything
// is admitted; once delay has stayed above target for a full interval,
// the controller starts shedding at a rate that grows with the square
// root of the shed count (the same control law as the AQM), which holds
// standing delay near the target while letting bursts through untouched.
//
// Two priority classes implement the pipeline's natural precedence:
// Commit-class offers (work that already paid for endorsement and
// verification) tolerate a configurable multiple of the target delay
// before shedding, so fresh submissions are shed first and in-flight
// waves drain. A hard queue-capacity backstop bounds memory regardless
// of delay, and offers past their deadline are shed unconditionally.
//
// Like the mempool it fronts, the controller is volatile: sheds are
// logged in memory for operators (ShedRecord) but never WAL-logged —
// a shed transaction was never accepted, so recovery owes it nothing.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/clock.hpp"

namespace veil::ledger {

/// Precedence class of an offer. Commit outranks Fresh: shedding work
/// that already carries endorsements wastes the signatures and the wire
/// round-trips that produced them.
enum class AdmitPriority : std::uint8_t { Commit = 0, Fresh = 1 };

struct AdmissionConfig {
  /// Sojourn (queue-delay) target; delay above this for a full interval
  /// starts the shedding regime.
  common::SimTime target_delay_us = 5'000;
  /// Estimation window: one RTT-ish span over which "delay stayed above
  /// target" is judged.
  common::SimTime interval_us = 100'000;
  /// Hard bound on the fronted queue's depth (0 = unbounded). Capacity
  /// sheds ignore priority — memory safety beats precedence.
  std::size_t queue_capacity = 0;
  /// Commit-class offers tolerate target_delay_us * commit_slack before
  /// the delay regime sheds them.
  double commit_slack = 4.0;
};

/// One shed decision, kept in memory for operators and tests.
struct ShedRecord {
  enum class Cause : std::uint8_t {
    QueueDelay = 0,  // CoDel regime: sojourn above target too long
    Capacity = 1,    // hard queue bound hit
    Expired = 2,     // deadline already passed at the admission gate
  };

  std::string tx_id;
  AdmitPriority priority = AdmitPriority::Fresh;
  Cause cause = Cause::QueueDelay;
  common::SimTime queue_delay_us = 0;
  common::SimTime at = 0;

  common::Bytes encode() const;
  /// Throws common::Error on malformed input.
  static ShedRecord decode(common::BytesView data);

  bool operator==(const ShedRecord&) const = default;
};

struct AdmissionStats {
  std::uint64_t offered = 0;
  std::uint64_t admitted = 0;
  std::uint64_t shed_delay = 0;
  std::uint64_t shed_capacity = 0;
  std::uint64_t shed_expired = 0;
  common::SimTime max_queue_delay_us = 0;  // among admitted offers
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig config = {});

  /// Decide one offer. `enqueued_at` is when the work arrived (its
  /// sojourn so far is now - enqueued_at), `queue_len` the current depth
  /// of the queue this controller fronts, `deadline_us` the absolute
  /// deadline (0 = none). Returns true to admit; false sheds and logs a
  /// ShedRecord.
  bool offer(const std::string& tx_id, AdmitPriority priority,
             common::SimTime enqueued_at, common::SimTime now,
             std::size_t queue_len, common::SimTime deadline_us = 0);

  /// Backoff hint for refused work: when the shedding regime expects to
  /// next admit (suitable for a Busy-style retry_after).
  common::SimTime retry_after(common::SimTime now) const;

  bool dropping() const { return dropping_; }
  const AdmissionStats& stats() const { return stats_; }
  const std::vector<ShedRecord>& sheds() const { return sheds_; }
  const AdmissionConfig& config() const { return config_; }

 private:
  void shed(const std::string& tx_id, AdmitPriority priority,
            ShedRecord::Cause cause, common::SimTime delay,
            common::SimTime now);
  /// Next shed time under the control law: interval / sqrt(drop_count).
  common::SimTime control_law(common::SimTime t) const;

  AdmissionConfig config_;
  // CoDel state. first_above_time_: when sojourn first exceeded target
  // (0 = currently below). In the dropping regime, drop_next_ schedules
  // the next shed and drop_count_ drives the control law.
  common::SimTime first_above_time_ = 0;
  common::SimTime drop_next_ = 0;
  std::uint32_t drop_count_ = 0;
  bool dropping_ = false;
  AdmissionStats stats_;
  std::vector<ShedRecord> sheds_;
};

}  // namespace veil::ledger
