#include "ledger/state_trie.hpp"

#include <algorithm>
#include <cstring>

#include "common/error.hpp"
#include "common/serialize.hpp"

namespace veil::ledger {

namespace {

constexpr std::string_view kNodeDomain = "veil.trie.node.v1";
constexpr std::string_view kEmptyDomain = "veil.trie.empty.v1";

common::Bytes to_nibbles(std::string_view key) {
  common::Bytes out;
  out.reserve(key.size() * 2);
  for (const char ch : key) {
    const auto b = static_cast<std::uint8_t>(ch);
    out.push_back(b >> 4);
    out.push_back(b & 0x0f);
  }
  return out;
}

std::string nibbles_to_key(const std::string& nibbles) {
  // Values only ever sit at whole-byte depths: keys are byte strings, so
  // their nibble expansion has even length by construction.
  std::string out;
  out.reserve(nibbles.size() / 2);
  for (std::size_t i = 0; i + 1 < nibbles.size(); i += 2) {
    out.push_back(static_cast<char>((nibbles[i] << 4) | nibbles[i + 1]));
  }
  return out;
}

/// Matching leading nibbles between `path` and `nibbles[pos..]`.
std::size_t match_len(const common::Bytes& path, const common::Bytes& nibbles,
                      std::size_t pos) {
  const std::size_t limit = std::min(path.size(), nibbles.size() - pos);
  std::size_t i = 0;
  while (i < limit && path[i] == nibbles[pos + i]) ++i;
  return i;
}

/// Finalize a node under construction: fill in its canonical hash.
NodeRef seal(TrieNode&& n) {
  const common::Bytes enc = StateTrie::encode_node(n);
  n.hash = StateTrie::hash_node(enc);
  return std::make_shared<TrieNode>(std::move(n));
}

TrieChild edge(std::uint8_t nibble, NodeRef node) {
  TrieChild c;
  c.nibble = nibble;
  c.hash = node->hash;
  c.node = std::move(node);
  return c;
}

std::vector<TrieChild>::const_iterator find_child(
    const std::vector<TrieChild>& children, std::uint8_t nibble) {
  const auto it = std::lower_bound(
      children.begin(), children.end(), nibble,
      [](const TrieChild& c, std::uint8_t n) { return c.nibble < n; });
  return (it != children.end() && it->nibble == nibble) ? it : children.end();
}

}  // namespace

const crypto::Digest& StateTrie::empty_root() {
  static const crypto::Digest root = crypto::sha256(kEmptyDomain);
  return root;
}

common::Bytes StateTrie::encode_node(const TrieNode& node) {
  common::Writer w;
  w.u8(node.has_value ? 1 : 0);
  w.varint(node.path.size());
  w.raw(node.path);
  if (node.has_value) {
    w.bytes(node.value);
    w.u64(node.version);
  }
  w.varint(node.children.size());
  for (const TrieChild& c : node.children) {
    w.u8(c.nibble);
    w.raw(common::BytesView(c.hash.data(), c.hash.size()));
  }
  return w.take();
}

TrieNodeWire StateTrie::decode_node(common::BytesView data) {
  common::Reader r(data);
  TrieNodeWire wire;
  const std::uint8_t flags = r.u8();
  if (flags > 1) throw common::ProtocolError("trie node: bad flags");
  wire.has_value = flags == 1;
  const std::uint64_t path_len = r.varint();
  if (path_len > r.remaining()) {
    throw common::ProtocolError("trie node: path overruns buffer");
  }
  wire.path = r.raw(path_len);
  for (const std::uint8_t nib : wire.path) {
    if (nib >= 16) throw common::ProtocolError("trie node: path nibble >= 16");
  }
  if (wire.has_value) {
    wire.value = r.bytes();
    wire.version = r.u64();
  }
  const std::uint64_t child_count = r.varint();
  if (child_count > 16 ||
      child_count > r.remaining() / (1 + crypto::kSha256DigestSize)) {
    throw common::ProtocolError("trie node: child count overruns buffer");
  }
  int last = -1;
  for (std::uint64_t i = 0; i < child_count; ++i) {
    const std::uint8_t nibble = r.u8();
    if (nibble >= 16 || static_cast<int>(nibble) <= last) {
      throw common::ProtocolError("trie node: children not canonical");
    }
    last = nibble;
    const common::Bytes h = r.raw(crypto::kSha256DigestSize);
    crypto::Digest d{};
    std::copy(h.begin(), h.end(), d.begin());
    wire.children.emplace_back(nibble, d);
  }
  if (!r.done()) throw common::ProtocolError("trie node: trailing bytes");
  return wire;
}

crypto::Digest StateTrie::hash_node(common::BytesView encoded) {
  crypto::Sha256 h;
  h.update(kNodeDomain);
  h.update(encoded);
  return h.finalize();
}

const TrieNode* StateTrie::resolve(const TrieChild& child) const {
  if (child.node) return child.node.get();
  if (!cold_) {
    throw common::ProtocolError("trie: unresolved child without cold store");
  }
  const auto it = cold_->find(child.hash);
  if (it == cold_->end()) {
    throw common::ProtocolError("trie: cold node missing from store");
  }
  if (hash_node(it->second) != child.hash) {
    throw common::ProtocolError("trie: cold node fails hash verification");
  }
  const TrieNodeWire wire = decode_node(it->second);
  TrieNode node;
  node.path = wire.path;
  node.has_value = wire.has_value;
  node.value = wire.value;
  node.version = wire.version;
  node.children.reserve(wire.children.size());
  for (const auto& [nibble, hash] : wire.children) {
    TrieChild c;
    c.nibble = nibble;
    c.hash = hash;
    node.children.push_back(std::move(c));
  }
  node.hash = child.hash;
  child.node = std::make_shared<TrieNode>(std::move(node));
  return child.node.get();
}

std::optional<std::pair<common::Bytes, std::uint64_t>> StateTrie::get(
    std::string_view key) const {
  const common::Bytes nibbles = to_nibbles(key);
  const TrieNode* node = root_.get();
  std::size_t pos = 0;
  while (node != nullptr) {
    const std::size_t m = match_len(node->path, nibbles, pos);
    if (m < node->path.size()) return std::nullopt;
    pos += m;
    if (pos == nibbles.size()) {
      if (!node->has_value) return std::nullopt;
      return std::make_pair(node->value, node->version);
    }
    const auto it = find_child(node->children, nibbles[pos]);
    if (it == node->children.end()) return std::nullopt;
    ++pos;
    node = resolve(*it);
  }
  return std::nullopt;
}

std::optional<std::uint64_t> StateTrie::version_of(std::string_view key) const {
  const common::Bytes nibbles = to_nibbles(key);
  const TrieNode* node = root_.get();
  std::size_t pos = 0;
  while (node != nullptr) {
    const std::size_t m = match_len(node->path, nibbles, pos);
    if (m < node->path.size()) return std::nullopt;
    pos += m;
    if (pos == nibbles.size()) {
      if (!node->has_value) return std::nullopt;
      return node->version;
    }
    const auto it = find_child(node->children, nibbles[pos]);
    if (it == node->children.end()) return std::nullopt;
    ++pos;
    node = resolve(*it);
  }
  return std::nullopt;
}

NodeRef StateTrie::set_rec(const TrieNode* node, const common::Bytes& nibbles,
                           std::size_t pos, common::Bytes& value,
                           std::uint64_t version, bool& inserted) {
  if (node == nullptr) {
    TrieNode leaf;
    leaf.path.assign(nibbles.begin() + static_cast<std::ptrdiff_t>(pos),
                     nibbles.end());
    leaf.has_value = true;
    leaf.value = std::move(value);
    leaf.version = version;
    inserted = true;
    return seal(std::move(leaf));
  }
  const std::size_t m = match_len(node->path, nibbles, pos);
  if (m == node->path.size()) {
    if (pos + m == nibbles.size()) {
      // Key terminates exactly here: overwrite (or add) the payload.
      TrieNode next = *node;
      inserted = !node->has_value;
      next.has_value = true;
      next.value = std::move(value);
      next.version = version;
      return seal(std::move(next));
    }
    // Descend into (or create) the child for the next nibble.
    const std::uint8_t c = nibbles[pos + m];
    TrieNode next = *node;
    const auto it = find_child(node->children, c);
    const TrieNode* child = it == node->children.end() ? nullptr : resolve(*it);
    NodeRef new_child =
        set_rec(child, nibbles, pos + m + 1, value, version, inserted);
    if (it == node->children.end()) {
      const auto at = std::lower_bound(
          next.children.begin(), next.children.end(), c,
          [](const TrieChild& e, std::uint8_t n) { return e.nibble < n; });
      next.children.insert(at, edge(c, std::move(new_child)));
    } else {
      next.children[static_cast<std::size_t>(it - node->children.begin())] =
          edge(c, std::move(new_child));
    }
    return seal(std::move(next));
  }
  // Paths diverge inside this node's compressed run: split. The existing
  // node keeps everything after the divergent nibble; a new interior
  // node takes the common prefix.
  TrieNode moved = *node;
  moved.path.assign(node->path.begin() + static_cast<std::ptrdiff_t>(m) + 1,
                    node->path.end());
  NodeRef moved_ref = seal(std::move(moved));

  TrieNode branch;
  branch.path.assign(node->path.begin(),
                     node->path.begin() + static_cast<std::ptrdiff_t>(m));
  inserted = true;
  if (pos + m == nibbles.size()) {
    // The new key IS the common prefix: payload lives on the branch.
    branch.has_value = true;
    branch.value = std::move(value);
    branch.version = version;
    branch.children.push_back(edge(node->path[m], std::move(moved_ref)));
  } else {
    TrieNode leaf;
    leaf.path.assign(nibbles.begin() + static_cast<std::ptrdiff_t>(pos + m + 1),
                     nibbles.end());
    leaf.has_value = true;
    leaf.value = std::move(value);
    leaf.version = version;
    TrieChild a = edge(node->path[m], std::move(moved_ref));
    TrieChild b = edge(nibbles[pos + m], seal(std::move(leaf)));
    if (a.nibble < b.nibble) {
      branch.children = {std::move(a), std::move(b)};
    } else {
      branch.children = {std::move(b), std::move(a)};
    }
  }
  return seal(std::move(branch));
}

void StateTrie::set(std::string_view key, common::Bytes value,
                    std::uint64_t version) {
  const common::Bytes nibbles = to_nibbles(key);
  bool inserted = false;
  root_ = set_rec(root_.get(), nibbles, 0, value, version, inserted);
  if (size_ && inserted) ++*size_;
}

NodeRef StateTrie::erase_rec(const TrieNode* node, const common::Bytes& nibbles,
                             std::size_t pos, bool& erased, bool& unchanged) {
  if (node == nullptr) {
    unchanged = true;
    return nullptr;
  }
  const std::size_t m = match_len(node->path, nibbles, pos);
  if (m < node->path.size()) {
    unchanged = true;  // key diverges inside the run: absent
    return nullptr;
  }
  const auto merge_single_child = [this](TrieNode&& n) {
    // A valueless node with one child is not canonical: collapse it into
    // the child by concatenating the compressed runs.
    const TrieChild& only = n.children.front();
    const TrieNode* child = resolve(only);
    TrieNode merged = *child;
    common::Bytes path = n.path;
    path.push_back(only.nibble);
    path.insert(path.end(), child->path.begin(), child->path.end());
    merged.path = std::move(path);
    return seal(std::move(merged));
  };
  if (pos + m == nibbles.size()) {
    if (!node->has_value) {
      unchanged = true;
      return nullptr;
    }
    erased = true;
    if (node->children.empty()) return nullptr;  // leaf: drop the node
    if (node->children.size() == 1) {
      TrieNode next = *node;
      return merge_single_child(std::move(next));
    }
    TrieNode next = *node;
    next.has_value = false;
    next.value.clear();
    next.version = 0;
    return seal(std::move(next));
  }
  const auto it = find_child(node->children, nibbles[pos + m]);
  if (it == node->children.end()) {
    unchanged = true;
    return nullptr;
  }
  NodeRef new_child =
      erase_rec(resolve(*it), nibbles, pos + m + 1, erased, unchanged);
  if (unchanged) return nullptr;
  TrieNode next = *node;
  const std::size_t idx = static_cast<std::size_t>(it - node->children.begin());
  if (new_child == nullptr) {
    next.children.erase(next.children.begin() +
                        static_cast<std::ptrdiff_t>(idx));
    if (!next.has_value && next.children.size() == 1) {
      return merge_single_child(std::move(next));
    }
    if (!next.has_value && next.children.empty()) return nullptr;
  } else {
    next.children[idx] = edge(it->nibble, std::move(new_child));
  }
  return seal(std::move(next));
}

void StateTrie::erase(std::string_view key) {
  const common::Bytes nibbles = to_nibbles(key);
  bool erased = false;
  bool unchanged = false;
  NodeRef new_root = erase_rec(root_.get(), nibbles, 0, erased, unchanged);
  if (unchanged) return;
  root_ = std::move(new_root);
  if (size_ && erased) --*size_;
}

std::size_t StateTrie::size() const {
  if (!size_) {
    std::size_t count = 0;
    for_each([&count](const std::string&, const common::Bytes&,
                      std::uint64_t) {
      ++count;
      return true;
    });
    size_ = count;
  }
  return *size_;
}

std::size_t StateTrie::walk(const TrieNode* node, std::string& key_nibbles,
                            const Visitor& visit, bool& keep_going) const {
  std::size_t visited = 1;
  key_nibbles.append(node->path.begin(), node->path.end());
  if (node->has_value) {
    if (!visit(nibbles_to_key(key_nibbles), node->value, node->version)) {
      keep_going = false;
    }
  }
  for (const TrieChild& c : node->children) {
    if (!keep_going) break;
    key_nibbles.push_back(static_cast<char>(c.nibble));
    visited += walk(resolve(c), key_nibbles, visit, keep_going);
    key_nibbles.pop_back();
  }
  key_nibbles.resize(key_nibbles.size() - node->path.size());
  return visited;
}

std::size_t StateTrie::for_each(const Visitor& visit) const {
  if (!root_) return 0;
  std::string acc;
  bool keep_going = true;
  return walk(root_.get(), acc, visit, keep_going);
}

std::size_t StateTrie::scan_prefix(std::string_view prefix,
                                   const Visitor& visit) const {
  if (!root_) return 0;
  const common::Bytes want = to_nibbles(prefix);
  const TrieNode* node = root_.get();
  std::string acc;  // nibbles from the root down to (excluding) node->path
  std::size_t pos = 0;
  std::size_t visited = 0;
  while (true) {
    ++visited;
    const std::size_t m = match_len(node->path, want, pos);
    if (pos + node->path.size() >= want.size()) {
      // The node's run covers the rest of the prefix: the whole subtree
      // matches iff the overlap agrees.
      if (m < want.size() - pos) return visited;
      bool keep_going = true;
      return visited - 1 + walk(node, acc, visit, keep_going);
    }
    if (m < node->path.size()) return visited;  // diverged: no matches
    pos += m;
    const auto it = find_child(node->children, want[pos]);
    if (it == node->children.end()) return visited;
    acc.append(node->path.begin(), node->path.end());
    acc.push_back(static_cast<char>(want[pos]));
    ++pos;
    node = resolve(*it);
  }
}

namespace {

/// Lexicographic compare of `acc` against the first acc.size() nibbles
/// of `bound`: -1 below, 0 equal-on-prefix, +1 above.
int prefix_cmp(const std::string& acc, const common::Bytes& bound) {
  const std::size_t limit = std::min(acc.size(), bound.size());
  for (std::size_t i = 0; i < limit; ++i) {
    const auto a = static_cast<std::uint8_t>(acc[i]);
    if (a != bound[i]) return a < bound[i] ? -1 : 1;
  }
  return 0;
}

}  // namespace

std::size_t StateTrie::scan_range(std::string_view start_key,
                                  std::string_view end_key,
                                  const Visitor& visit) const {
  if (!root_) return 0;
  const common::Bytes startN = to_nibbles(start_key);
  const std::string end(end_key);
  bool keep_going = true;
  const Visitor bounded = [&](const std::string& key,
                              const common::Bytes& value,
                              std::uint64_t version) {
    if (!end.empty() && key >= end) return false;  // ordered walk: done
    return visit(key, value, version);
  };
  // Seek: skip every subtree that lies wholly below start_key, walk the
  // rest in order (the bounded visitor stops the walk at end_key).
  std::string acc;
  std::size_t visited = 0;
  const std::function<void(const TrieNode*)> seek = [&](const TrieNode* node) {
    if (!keep_going) return;
    ++visited;
    acc.append(node->path.begin(), node->path.end());
    const int cmp = prefix_cmp(acc, startN);
    if (cmp > 0 || (cmp == 0 && acc.size() >= startN.size())) {
      // Everything under this node is >= start_key: plain ordered walk.
      acc.resize(acc.size() - node->path.size());
      visited += walk(node, acc, bounded, keep_going) - 1;
      return;
    }
    if (cmp == 0) {
      // acc is a proper prefix of startN: the node's own key (if any) is
      // below start; children partition around the next start nibble.
      const std::uint8_t t = startN[acc.size()];
      for (const TrieChild& c : node->children) {
        if (!keep_going) break;
        if (c.nibble < t) continue;
        acc.push_back(static_cast<char>(c.nibble));
        if (c.nibble == t) {
          seek(resolve(c));
        } else {
          visited += walk(resolve(c), acc, bounded, keep_going);
        }
        acc.pop_back();
      }
    }
    // cmp < 0: whole subtree below start_key — skip.
    acc.resize(acc.size() - node->path.size());
  };
  seek(root_.get());
  return visited;
}

void StateTrie::collect_nodes(NodeStore& out) const {
  if (!root_) return;
  const std::function<void(const TrieNode*)> dfs = [&](const TrieNode* node) {
    if (out.contains(node->hash)) return;
    out.emplace(node->hash, encode_node(*node));
    for (const TrieChild& c : node->children) dfs(resolve(c));
  };
  dfs(root_.get());
}

void StateTrie::node_hashes(
    std::unordered_set<crypto::Digest, DigestHash>& out) const {
  if (!root_) return;
  const std::function<void(const TrieNode*)> dfs = [&](const TrieNode* node) {
    if (!out.insert(node->hash).second) return;
    for (const TrieChild& c : node->children) dfs(resolve(c));
  };
  dfs(root_.get());
}

StateTrie::NodeIndex StateTrie::build_node_index() const {
  NodeIndex index;
  if (!root_) return index;
  const std::function<void(const NodeRef&)> dfs = [&](const NodeRef& node) {
    if (!index.emplace(node->hash, node).second) return;
    for (const TrieChild& c : node->children) {
      resolve(c);  // ensures c.node
      dfs(c.node);
    }
  };
  dfs(root_);
  return index;
}

StateTrie StateTrie::from_nodes(const crypto::Digest& root_hash,
                                std::shared_ptr<const NodeStore> store,
                                Materialize mode) {
  StateTrie trie;
  if (root_hash == empty_root()) {
    trie.size_ = 0;
    return trie;
  }
  if (!store) throw common::ProtocolError("trie: null node store");
  if (mode == Materialize::Lazy) {
    trie.cold_ = store;
    TrieChild pseudo;
    pseudo.hash = root_hash;
    trie.root_ = (static_cast<void>(trie.resolve(pseudo)), pseudo.node);
    trie.size_ = std::nullopt;
    return trie;
  }
  std::size_t count = 0;
  const std::function<NodeRef(const crypto::Digest&)> build =
      [&](const crypto::Digest& hash) -> NodeRef {
    const auto it = store->find(hash);
    if (it == store->end()) {
      throw common::ProtocolError("trie: node missing from store");
    }
    if (hash_node(it->second) != hash) {
      throw common::ProtocolError("trie: node fails hash verification");
    }
    const TrieNodeWire wire = decode_node(it->second);
    TrieNode node;
    node.path = wire.path;
    node.has_value = wire.has_value;
    node.value = wire.value;
    node.version = wire.version;
    if (node.has_value) ++count;
    node.children.reserve(wire.children.size());
    for (const auto& [nibble, child_hash] : wire.children) {
      node.children.push_back(edge(nibble, build(child_hash)));
    }
    node.hash = hash;
    return std::make_shared<TrieNode>(std::move(node));
  };
  trie.root_ = build(root_hash);
  trie.size_ = count;
  return trie;
}

StateTrie StateTrie::graft(const crypto::Digest& root_hash,
                           const NodeStore& fresh, const NodeIndex& prior) {
  StateTrie trie;
  if (root_hash == empty_root()) {
    trie.size_ = 0;
    return trie;
  }
  const std::function<NodeRef(const crypto::Digest&)> build =
      [&](const crypto::Digest& hash) -> NodeRef {
    if (const auto hit = prior.find(hash); hit != prior.end()) {
      return hit->second;  // shared subtree: adopt, O(1)
    }
    const auto it = fresh.find(hash);
    if (it == fresh.end()) {
      throw common::ProtocolError("trie: delta node missing from store");
    }
    if (hash_node(it->second) != hash) {
      throw common::ProtocolError("trie: delta node fails hash verification");
    }
    const TrieNodeWire wire = decode_node(it->second);
    TrieNode node;
    node.path = wire.path;
    node.has_value = wire.has_value;
    node.value = wire.value;
    node.version = wire.version;
    node.children.reserve(wire.children.size());
    for (const auto& [nibble, child_hash] : wire.children) {
      node.children.push_back(edge(nibble, build(child_hash)));
    }
    node.hash = hash;
    return std::make_shared<TrieNode>(std::move(node));
  };
  trie.root_ = build(root_hash);
  trie.size_ = std::nullopt;  // counted on first size(); delta is O(new)
  return trie;
}

// ---- Proofs ----------------------------------------------------------------

common::Bytes StateProof::encode() const {
  common::Writer w;
  w.str(key);
  w.boolean(exists);
  w.bytes(value);
  w.u64(version);
  w.varint(nodes.size());
  for (const common::Bytes& n : nodes) w.bytes(n);
  return w.take();
}

StateProof StateProof::decode(common::BytesView data) {
  common::Reader r(data);
  StateProof p;
  p.key = r.str();
  p.exists = r.boolean();
  p.value = r.bytes();
  p.version = r.u64();
  const std::uint64_t count = r.varint();
  if (count > r.remaining()) {
    throw common::ProtocolError("state proof: node count overruns buffer");
  }
  p.nodes.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) p.nodes.push_back(r.bytes());
  if (!r.done()) throw common::ProtocolError("state proof: trailing bytes");
  return p;
}

StateProof StateTrie::prove(std::string_view key) const {
  StateProof proof;
  proof.key = std::string(key);
  const common::Bytes nibbles = to_nibbles(key);
  const TrieNode* node = root_.get();
  std::size_t pos = 0;
  while (node != nullptr) {
    proof.nodes.push_back(encode_node(*node));
    const std::size_t m = match_len(node->path, nibbles, pos);
    if (m < node->path.size()) return proof;  // dead end: exclusion
    pos += m;
    if (pos == nibbles.size()) {
      if (node->has_value) {
        proof.exists = true;
        proof.value = node->value;
        proof.version = node->version;
      }
      return proof;
    }
    const auto it = find_child(node->children, nibbles[pos]);
    if (it == node->children.end()) return proof;  // dead end: exclusion
    ++pos;
    node = resolve(*it);
  }
  return proof;  // empty trie: exclusion with no nodes
}

bool StateTrie::verify_proof(const crypto::Digest& root,
                             const StateProof& proof) {
  if (proof.nodes.empty()) {
    // Only the empty trie excludes a key with zero nodes.
    return !proof.exists && root == empty_root();
  }
  const common::Bytes nibbles = to_nibbles(proof.key);
  crypto::Digest expected = root;
  std::size_t pos = 0;
  try {
    for (std::size_t i = 0; i < proof.nodes.size(); ++i) {
      const bool last = i + 1 == proof.nodes.size();
      if (hash_node(proof.nodes[i]) != expected) return false;
      const TrieNodeWire wire = decode_node(proof.nodes[i]);
      const std::size_t limit =
          std::min(wire.path.size(), nibbles.size() - pos);
      std::size_t m = 0;
      while (m < limit && wire.path[m] == nibbles[pos + m]) ++m;
      if (m < wire.path.size()) {
        // Run diverges from (or outlasts) the key: a genuine dead end.
        return last && !proof.exists;
      }
      pos += m;
      if (pos == nibbles.size()) {
        if (!last) return false;  // the walk must stop where the key does
        if (proof.exists) {
          return wire.has_value && wire.value == proof.value &&
                 wire.version == proof.version;
        }
        return !wire.has_value;
      }
      const auto it = std::find_if(
          wire.children.begin(), wire.children.end(),
          [&](const auto& c) { return c.first == nibbles[pos]; });
      if (it == wire.children.end()) {
        return last && !proof.exists;  // no edge to follow: exclusion
      }
      expected = it->second;
      ++pos;
    }
  } catch (const common::Error&) {
    return false;  // malformed node in the path
  }
  return false;  // chain continues past the supplied nodes
}

}  // namespace veil::ledger
