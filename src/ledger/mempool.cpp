#include "ledger/mempool.hpp"

#include "common/error.hpp"
#include "common/serialize.hpp"

namespace veil::ledger {

common::Bytes ValidationToken::encode() const {
  common::Writer w;
  w.str(tx_id);
  w.bytes(common::BytesView(body_digest.data(), body_digest.size()));
  w.varint(read_snapshot.size());
  for (const ReadAccess& r : read_snapshot) {
    w.str(r.key);
    w.u64(r.version);
  }
  w.u64(admitted_at);
  w.boolean(verified);
  return w.take();
}

ValidationToken ValidationToken::decode(common::BytesView data) {
  common::Reader r(data);
  ValidationToken t;
  t.tx_id = r.str();
  const common::Bytes digest = r.bytes();
  if (digest.size() != t.body_digest.size()) {
    throw common::Error("ValidationToken::decode: bad digest length");
  }
  std::copy(digest.begin(), digest.end(), t.body_digest.begin());
  const std::uint64_t n = r.varint();
  for (std::uint64_t i = 0; i < n; ++i) {
    ReadAccess ra;
    ra.key = r.str();
    ra.version = r.u64();
    t.read_snapshot.push_back(std::move(ra));
  }
  t.admitted_at = r.u64();
  t.verified = r.boolean();
  return t;
}

common::Bytes EvictionRecord::encode() const {
  common::Writer w;
  w.str(tx_id);
  w.u8(static_cast<std::uint8_t>(cause));
  w.u64(at);
  return w.take();
}

EvictionRecord EvictionRecord::decode(common::BytesView data) {
  common::Reader r(data);
  EvictionRecord rec;
  rec.tx_id = r.str();
  const std::uint8_t cause = r.u8();
  if (cause > static_cast<std::uint8_t>(Cause::PinnedSkip)) {
    throw common::Error("EvictionRecord::decode: unknown cause");
  }
  rec.cause = static_cast<Cause>(cause);
  rec.at = r.u64();
  return rec;
}

bool Mempool::admit(const Transaction& tx, bool verified,
                    common::SimTime now) {
  const std::string id = tx.id();
  if (tokens_.contains(id)) {
    ++stats_.duplicates;
    return false;
  }
  while (tokens_.size() >= config_.capacity && !fifo_.empty()) {
    // Oldest-first, but a pinned victim is spared (its ValidationToken is
    // in flight in a wave); the next-oldest unpinned resident goes
    // instead. Each sparing is logged so drop pressure stays visible.
    std::deque<std::string> spared;
    bool evicted = false;
    while (!fifo_.empty()) {
      std::string victim = std::move(fifo_.front());
      fifo_.pop_front();
      if (!tokens_.contains(victim)) continue;  // stale fifo entry
      if (pinned_.contains(victim)) {
        ++stats_.eviction_skips_pinned;
        evictions_.push_back({victim, EvictionRecord::Cause::PinnedSkip, now});
        spared.push_back(std::move(victim));
        continue;
      }
      tokens_.erase(victim);
      ++stats_.evicted_capacity;
      evictions_.push_back({victim, EvictionRecord::Cause::Capacity, now});
      evicted = true;
      break;
    }
    // Spared entries keep their age order at the head of the queue.
    for (auto it = spared.rbegin(); it != spared.rend(); ++it) {
      fifo_.push_front(std::move(*it));
    }
    if (!evicted) {
      // Every resident is pinned: admit over capacity rather than evict
      // in-flight work; the overshoot retires as waves land and unpin.
      ++stats_.pinned_overflow;
      break;
    }
  }
  ValidationToken token;
  token.tx_id = id;
  token.body_digest = tx.body_digest();
  token.read_snapshot = tx.reads;
  token.admitted_at = now;
  token.verified = verified;
  tokens_.emplace(id, std::move(token));
  fifo_.push_back(id);
  ++stats_.admitted;
  return true;
}

const ValidationToken* Mempool::token(const std::string& tx_id) const {
  const auto it = tokens_.find(tx_id);
  return it == tokens_.end() ? nullptr : &it->second;
}

bool Mempool::validated(const Transaction& tx, const WorldState& state,
                        common::SimTime now) {
  const std::string id = tx.id();
  const auto it = tokens_.find(id);
  if (it == tokens_.end() || !it->second.verified) {
    ++stats_.token_misses;
    return false;
  }
  // tx.id() is the hex body digest, so an id hit already pins the body; a
  // Byzantine orderer that rewrites any field changes the id and misses.
  // The digest comparison stays as defence in depth.
  if (it->second.body_digest != tx.body_digest()) {
    ++stats_.token_misses;
    return false;
  }
  for (const ReadAccess& r : it->second.read_snapshot) {
    // version_of never copies the value — with the hot cache in front of
    // the trie, re-validating a recently written key is O(1).
    if (state.version_of(r.key) != r.version) {
      ++stats_.invalidated;
      tokens_.erase(it);
      evictions_.push_back({id, EvictionRecord::Cause::Invalidated, now});
      ++stats_.token_misses;
      return false;
    }
  }
  ++stats_.token_hits;
  return true;
}

void Mempool::remove(const std::string& tx_id, EvictionRecord::Cause cause,
                     common::SimTime now) {
  if (!tokens_.erase(tx_id)) return;
  if (cause == EvictionRecord::Cause::Committed) ++stats_.removed_committed;
  evictions_.push_back({tx_id, cause, now});
}

void Mempool::clear() {
  tokens_.clear();
  fifo_.clear();
  pinned_.clear();
}

}  // namespace veil::ledger
