// Write-ahead log for crash recovery.
//
// The simulation's crash model: a crash-stopped peer loses everything in
// memory (chain, world state, vault) but keeps its durable log. The WAL
// is that durable log — an append-only sequence of checksummed records a
// restarted peer replays to rebuild exactly the state it had committed.
//
// Invariants (documented for chaos-test authors in docs/fault_model.md):
//  * Records are appended BEFORE the in-memory mutation they describe, so
//    a replayed WAL is never behind committed state.
//  * Each record carries a SHA-256 checksum; recovery stops at the first
//    torn or corrupt record and returns the clean prefix (a torn tail is
//    an expected crash artifact, not an error).
//  * Replay is deterministic: applying the recovered records in order
//    yields a state digest bit-identical to the pre-crash one.
//
// The log is record-typed and payload-agnostic so every platform model
// can use it: Fabric/Quorum log blocks (plus an optional snapshot
// checkpoint), Corda logs vault mutations.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bytes.hpp"
#include "ledger/block.hpp"
#include "ledger/state.hpp"

namespace veil::ledger {

class WriteAheadLog {
 public:
  struct Record {
    std::uint8_t type = 0;
    common::Bytes payload;
  };

  /// What the last recover() found past the clean prefix. A torn tail
  /// (the final record cut mid-write) is an expected crash artifact; a
  /// checksum mismatch on a fully framed record is NOT — it means the
  /// stored bytes rotted or were tampered with, and recovery flags it
  /// instead of silently lumping it into the tail.
  struct RecoveryReport {
    std::size_t records_recovered = 0;
    std::size_t corrupt_records = 0;  // framed records whose checksum failed
    std::size_t torn_tail_bytes = 0;  // bytes discarded past the clean prefix
    std::size_t truncated_bytes = 0;  // bytes compacted away over the log's life
    /// True when recovery consumed the whole log: nothing corrupt,
    /// nothing torn. corrupt_records distinguishes "the log lied"
    /// (bit-rot/tampering) from a benign crash-mid-append tail.
    /// Compaction (`truncated_bytes`) is deliberate, so it never
    /// taints cleanliness.
    bool clean() const { return corrupt_records == 0 && torn_tail_bytes == 0; }
  };

  /// Append one record (type is application-defined).
  void append(std::uint8_t type, common::BytesView payload);

  /// Seal a checkpoint record and drop the prefix it supersedes. The
  /// ordering is the whole point: the checkpoint record is appended (and
  /// in a real implementation fsynced) BEFORE the old prefix is
  /// truncated, so a crash anywhere in between leaves a log that still
  /// contains every record — worst case the checkpoint and its prefix
  /// coexist, never neither. Returns the number of bytes truncated.
  std::size_t compact(std::uint8_t type, common::BytesView payload);

  /// Crash-point hook (tests): the next compact() appends the checkpoint
  /// record but "crashes" before truncating the prefix, modelling a
  /// power cut in the window between fsync and truncate.
  void arm_crash_between_checkpoint_and_truncate() {
    crash_before_truncate_ = true;
  }

  /// Decode the clean prefix of the log. Torn or corrupt trailing data is
  /// ignored; `last_recovery()` reports what was discarded and whether
  /// any of it was mid-log corruption rather than an ordinary torn tail.
  std::vector<Record> recover() const;

  /// Simulate a torn write: chop `bytes` off the end of the log (tests).
  void tear(std::size_t bytes);

  /// Flip one byte in place (tests: bit-rot must not break recovery of
  /// the records before it).
  void corrupt_byte(std::size_t offset);

  void clear() { log_.clear(); }
  std::size_t size_bytes() const { return log_.size(); }
  std::size_t record_count() const { return record_count_; }
  std::size_t torn_tail_bytes() const { return last_recovery_.torn_tail_bytes; }
  std::size_t truncated_bytes() const { return truncated_bytes_; }
  const RecoveryReport& last_recovery() const { return last_recovery_; }

 private:
  common::Bytes log_;
  std::size_t record_count_ = 0;
  std::size_t truncated_bytes_ = 0;
  bool crash_before_truncate_ = false;
  mutable RecoveryReport last_recovery_;
};

// ---- Block-replica logging (Fabric peers, Quorum nodes) -------------------

/// Record types used by block-replica WALs.
inline constexpr std::uint8_t kWalCheckpoint = 1;  // snapshot bootstrap
inline constexpr std::uint8_t kWalBlock = 2;

struct WalCheckpoint {
  std::uint64_t height = 0;
  crypto::Digest tip_hash{};
  WorldState state;
  /// Platform sidecar riding the checkpoint: Quorum stores the node's
  /// private state here so one compaction covers both stores. Empty for
  /// platforms that need nothing extra; decode tolerates its absence for
  /// logs written before the field existed.
  common::Bytes aux;
  /// Authenticated trie root of `state`, sealed with the record. Recovery
  /// recomputes the root from the decoded state and refuses a checkpoint
  /// whose bytes decode but do not re-authenticate (bit-rot inside the
  /// state body that happens to still parse). Decode tolerates its
  /// absence for logs written before the field existed — then it is
  /// filled from the decoded state.
  crypto::Digest state_root{};
};

common::Bytes wal_encode_checkpoint(std::uint64_t height,
                                    const crypto::Digest& tip_hash,
                                    const WorldState& state,
                                    common::BytesView aux = {});

void wal_log_checkpoint(WriteAheadLog& wal, std::uint64_t height,
                        const crypto::Digest& tip_hash, const WorldState& state,
                        common::BytesView aux = {});

/// Checkpoint + compact in fsync order: seal the checkpoint record, then
/// truncate everything it supersedes (see WriteAheadLog::compact).
void wal_checkpoint_compact(WriteAheadLog& wal, std::uint64_t height,
                            const crypto::Digest& tip_hash,
                            const WorldState& state, common::BytesView aux = {});
void wal_log_block(WriteAheadLog& wal, const Block& block);

struct WalRecovery {
  std::optional<WalCheckpoint> checkpoint;
  std::vector<Block> blocks;
};

/// Decode a block-replica WAL. Undecodable records (beyond the checksum
/// layer) terminate recovery at that point, like a torn tail.
WalRecovery wal_recover_blocks(const WriteAheadLog& wal);

}  // namespace veil::ledger
