// Append-only blockchain with pruning/archival.
//
// Pruning (§3.2: "some ledger implementations offer the ability to
// 'prune' the chain to allow archiving of older transactions") moves
// blocks below a checkpoint into an archive. The archive remains
// available on request — mirroring the paper's caveat that archived
// entries are generally still accessible — so pruning is a storage
// optimization, NOT a deletion mechanism (GDPR deletion needs off-chain
// storage; see veil::offchain).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "ledger/block.hpp"

namespace veil::ledger {

class Chain {
 public:
  Chain();

  /// A chain that starts at a trusted checkpoint instead of genesis:
  /// blocks before `height` are not held (and never were); appends must
  /// continue from `tip_hash`. This is how a peer bootstraps from a
  /// state snapshot without receiving historical blocks.
  static Chain from_checkpoint(std::uint64_t height,
                               const crypto::Digest& tip_hash);

  /// Validate linkage + body integrity and append. Throws
  /// common::LedgerError on invalid blocks.
  void append(Block block);

  std::uint64_t height() const;  // number of blocks ever appended
  const crypto::Digest& tip_hash() const { return tip_hash_; }

  /// Block by height, looking in live storage then archive.
  std::optional<Block> block_at(std::uint64_t height) const;

  /// Find the block containing a transaction id.
  std::optional<Block> find_transaction_block(const std::string& tx_id) const;

  /// All live (unpruned) blocks.
  const std::vector<Block>& live_blocks() const { return live_; }

  /// Move all blocks below `below_height` to the archive.
  std::size_t prune(std::uint64_t below_height);

  std::size_t archived_count() const { return archive_.size(); }

  /// Re-verify hash linkage and body roots across live blocks; returns
  /// false if any block was tampered with in storage.
  bool verify_integrity() const;

  /// First height this chain actually holds (0 unless checkpointed).
  std::uint64_t checkpoint_height() const { return checkpoint_height_; }

 private:
  std::vector<Block> live_;
  std::vector<Block> archive_;  // heights [checkpoint, prune_height_)
  std::uint64_t prune_height_ = 0;
  std::uint64_t checkpoint_height_ = 0;
  crypto::Digest checkpoint_hash_{};
  crypto::Digest tip_hash_{};
  std::uint64_t next_height_ = 0;
};

}  // namespace veil::ledger
