// Trie-node delta state transfer: rejoin by fetching only what changed.
//
// The chunked SnapshotTransfer (transfer.hpp) ships the whole canonical
// state body, so a replica that lagged by one block pays O(state) bytes
// to rejoin. With the trie-backed WorldState the state IS a set of
// content-addressed nodes, and a lagging replica already holds almost
// all of them — everything off the paths the missed blocks touched.
// This engine ships exactly the complement:
//
//   joiner                         donor                voters
//     |-- tsync.req -------------->|                      |
//     |<-- tsync.offer (height, tip, state root) ---------|
//     |-- tsync.vote-req ------------------------------>  |
//     |<-- tsync.vote (my state root at that height) -----|
//     |-- tsync.fetch (node hashes I lack) -->| (breadth-first)
//     |<-- tsync.nodes (encoded nodes) -------|
//     |   ... discover children, dedup against own trie,  |
//     |       repeat until the frontier is empty ...      |
//     |   graft fresh nodes onto shared prior subtrees    |
//
// Byzantine safety, fail closed at every step:
//  * the offered state root must be confirmed by a quorum of live peers'
//    own roots at that height (deterministic replicas, identical roots)
//    and, where the platform keeps a sealed delivery log, the announced
//    height/tip must match it;
//  * every received node is hashed before use — bytes that do not hash
//    to a requested node convict the donor (TransferReject::TamperedNode)
//    and the transfer fails over, keeping verified nodes (they are
//    content-addressed: valid under any donor);
//  * the final graft reuses prior subtrees BY HASH, so a malicious donor
//    cannot smuggle state into the reused portion either — the root
//    recomputes from verified hashes all the way down.
//
// Cost: bytes transferred ~ O(nodes changed since the joiner's state),
// i.e. O(touched keys × depth), independent of total account count.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/bytes.hpp"
#include "ledger/state.hpp"
#include "ledger/state_trie.hpp"
#include "ledger/transfer.hpp"
#include "net/reliable.hpp"

namespace veil::ledger {

// ---- Wire types (all decode-fuzzed) ---------------------------------------

/// tsync.offer: the donor's checkpoint coordinates, or a refusal. The
/// state root plays the role SnapshotHeader played for chunked transfer:
/// it is the content address everything else verifies against.
struct TrieSyncOffer {
  std::string scope;
  bool available = false;
  std::uint64_t height = 0;     // meaningful only when available
  crypto::Digest tip_hash{};    // "
  crypto::Digest state_root{};  // "

  common::Bytes encode() const;
  static TrieSyncOffer decode(common::BytesView data);
};

/// tsync.fetch: node hashes the joiner lacks under `state_root`.
struct NodeRequest {
  std::string scope;
  crypto::Digest state_root{};
  std::vector<crypto::Digest> wanted;

  common::Bytes encode() const;
  static NodeRequest decode(common::BytesView data);
};

/// tsync.nodes: encoded trie nodes, or ok=false when the donor no longer
/// serves the requested root (checkpoint advanced — benign).
struct NodeBatch {
  std::string scope;
  crypto::Digest state_root{};
  bool ok = false;
  std::vector<common::Bytes> nodes;

  common::Bytes encode() const;
  static NodeBatch decode(common::BytesView data);
};

// ---- Engine ---------------------------------------------------------------

struct TrieSyncStats {
  std::uint64_t requests_sent = 0;
  std::uint64_t offers_received = 0;
  std::uint64_t votes_received = 0;
  std::uint64_t batches_received = 0;
  std::uint64_t nodes_received = 0;
  std::uint64_t node_bytes_received = 0;
  std::uint64_t nodes_rejected = 0;
  std::uint64_t donors_rejected = 0;  // misbehavior rejections only
  std::uint64_t transfers_completed = 0;
  std::uint64_t transfers_failed = 0;  // donor list exhausted
  std::uint64_t resumes = 0;
  std::uint64_t malformed = 0;  // undecodable tsync.* payloads dropped
};

class TrieSync {
 public:
  /// What a completed transfer cost — the delta-vs-full story the bench
  /// and tests assert on.
  struct Report {
    std::uint64_t fresh_nodes = 0;  // nodes actually shipped
    std::uint64_t fresh_bytes = 0;  // their encoded size
    std::uint64_t prior_nodes = 0;  // joiner-side nodes available to reuse
  };

  /// Donor/voter side: the replica's current checkpoint state and its
  /// coordinates (nullopt = nothing to offer). The WorldState pointer
  /// must stay valid for the duration of the callback's message round
  /// (platforms return the SnapshotStore's resident checkpoint state).
  struct DonorState {
    const WorldState* state = nullptr;
    std::uint64_t height = 0;
    crypto::Digest tip_hash{};
  };
  using Provider = std::function<std::optional<DonorState>(
      const net::Principal& self, const std::string& scope,
      std::uint64_t min_height)>;
  /// Optional joiner-side pre-filter: check the offered height/tip
  /// against platform truth (sealed delivery log). Return false to
  /// reject the offer as OfferCheckFailed.
  using OfferCheck = std::function<bool(const net::Principal& self,
                                        const std::string& scope,
                                        std::uint64_t height,
                                        const crypto::Digest& tip_hash)>;
  /// Joiner: verified state ready to install.
  using Complete = std::function<void(
      const net::Principal& self, const std::string& scope,
      std::uint64_t height, const crypto::Digest& tip_hash, WorldState state,
      const Report& report)>;
  /// Same contract as SnapshotTransfer::Reject (shared taxonomy).
  using Reject = std::function<void(
      const net::Principal& self, const std::string& scope,
      const net::Principal& donor, TransferReject reason,
      common::BytesView proof_a, common::BytesView proof_b)>;
  using Fail = std::function<void(const net::Principal& self,
                                  const std::string& scope)>;

  struct Callbacks {
    Provider provider;
    OfferCheck offer_check;  // may be null
    Complete on_complete;
    Reject on_reject;  // may be null
    Fail on_fail;      // may be null
  };

  /// Hashes per tsync.fetch message (bounds message size; the frontier
  /// spans multiple requests when wider).
  static constexpr std::size_t kBatchLimit = 64;

  TrieSync(net::ReliableChannel& channel, Callbacks callbacks);

  /// Joiner entry point: fetch the delta from `prior` (the joiner's own
  /// lagging state — O(1) trie handle) up to a checkpoint at height >=
  /// min_height, trying donors front to back, verifying the offered root
  /// against `voters`. Progress is driven by delivered messages; the
  /// caller runs the network.
  void fetch(const net::Principal& self, const std::string& scope,
             std::vector<net::Principal> donors,
             std::vector<net::Principal> voters, std::uint64_t min_height,
             const WorldState& prior);

  /// Re-drive a stalled transfer (message loss past the reliable
  /// channel's bounded retries). Verified nodes are kept.
  void resume(const net::Principal& self, const std::string& scope);

  /// Drop an in-progress transfer (crash hooks: received nodes are
  /// volatile and do not survive a crash).
  void abort(const net::Principal& self, const std::string& scope);

  bool active(const net::Principal& self, const std::string& scope) const;

  /// True for topics this engine consumes ("tsync." prefix).
  static bool owns_topic(const std::string& topic);

  /// Route one delivered message; platforms call this from their channel
  /// handlers for owns_topic() messages. Malformed payloads are counted
  /// and dropped, never thrown.
  void handle(const net::Principal& self, const net::Message& msg);

  const TrieSyncStats& stats() const { return stats_; }

 private:
  enum class Phase { WaitOffer, WaitVotes, Fetch };

  struct Transfer {
    std::string scope;
    std::vector<net::Principal> donors;  // front = current
    std::vector<net::Principal> voters;
    std::uint64_t min_height = 0;
    Phase phase = Phase::WaitOffer;
    // Accepted offer.
    std::uint64_t height = 0;
    crypto::Digest tip_hash{};
    crypto::Digest state_root{};
    common::Bytes offer_bytes;  // proof half for convictions
    std::map<net::Principal, RootVote> votes;
    // Joiner-side reuse set: every node of the prior trie, by hash.
    StateTrie::NodeIndex prior;
    // Verified fresh nodes (content-addressed: survive donor failover).
    NodeStore fresh;
    std::uint64_t fresh_bytes = 0;
    std::unordered_set<crypto::Digest, DigestHash> outstanding;  // requested
    std::vector<crypto::Digest> pending;  // discovered, not yet requested
  };

  using Key = std::pair<net::Principal, std::string>;

  void on_request(const net::Principal& self, const net::Message& msg);
  void on_offer(const net::Principal& self, const net::Message& msg);
  void on_vote_request(const net::Principal& self, const net::Message& msg);
  void on_vote(const net::Principal& self, const net::Message& msg);
  void on_fetch(const net::Principal& self, const net::Message& msg);
  void on_nodes(const net::Principal& self, const net::Message& msg);

  void send_request(const net::Principal& self, Transfer& t);
  void send_vote_requests(const net::Principal& self, Transfer& t);
  void start_fetch(const net::Principal& self, Transfer& t);
  /// Move pending hashes into outstanding and request them in batches.
  void request_pending(const net::Principal& self, Transfer& t);
  /// Re-request everything outstanding (resume path).
  void rerequest_outstanding(const net::Principal& self, Transfer& t);
  void evaluate_votes(const net::Principal& self, const Key& key);
  void finish(const net::Principal& self, const Key& key);
  void drop_donor(const net::Principal& self, const Key& key,
                  TransferReject reason, common::BytesView proof_a,
                  common::BytesView proof_b);

  /// Donor-side node image of the currently served root, built once per
  /// checkpoint and reused across fetches/donees.
  const NodeStore& serve_store(const Key& key, const WorldState& state);

  net::ReliableChannel* channel_;
  Callbacks callbacks_;
  std::map<Key, Transfer> transfers_;
  std::map<Key, std::pair<crypto::Digest, std::shared_ptr<const NodeStore>>>
      serve_cache_;
  TrieSyncStats stats_;
};

}  // namespace veil::ledger
