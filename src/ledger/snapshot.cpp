#include "ledger/snapshot.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/serialize.hpp"
#include "crypto/merkle.hpp"

namespace veil::ledger {

namespace {

// Domain separator for the snapshot content address, so a snapshot root
// can never collide with a block hash, leaf hash, or bare sha256 of the
// state bytes.
constexpr char kRootDomain[] = "veil.snapshot.v1";

// An empty chunk vector has no Merkle tree; commit to a fixed digest of
// the domain tag instead.
crypto::Digest chunk_vector_root(
    const std::vector<crypto::Digest>& chunk_hashes) {
  if (chunk_hashes.empty()) {
    return crypto::sha256(common::BytesView(
        reinterpret_cast<const std::uint8_t*>(kRootDomain),
        sizeof(kRootDomain) - 1));
  }
  std::vector<common::Bytes> leaves;
  leaves.reserve(chunk_hashes.size());
  for (const crypto::Digest& h : chunk_hashes) {
    leaves.emplace_back(h.begin(), h.end());
  }
  return crypto::MerkleTree::build(leaves).root();
}

}  // namespace

crypto::Digest SnapshotHeader::compute_root(
    std::uint64_t height, const crypto::Digest& tip_hash,
    std::uint64_t body_bytes, std::uint32_t chunk_size,
    const std::vector<crypto::Digest>& chunk_hashes) {
  common::Writer w;
  w.str(kRootDomain);
  w.u64(height);
  w.raw(common::BytesView(tip_hash.data(), tip_hash.size()));
  w.u64(body_bytes);
  w.u32(chunk_size);
  const crypto::Digest chunks_root = chunk_vector_root(chunk_hashes);
  w.raw(common::BytesView(chunks_root.data(), chunks_root.size()));
  return crypto::sha256(w.data());
}

bool SnapshotHeader::self_consistent() const {
  if (chunk_size == 0 && body_bytes != 0) return false;
  // The chunk count must be exactly what the geometry dictates: no
  // phantom trailing chunks, no missing coverage.
  const std::uint64_t expected_chunks =
      body_bytes == 0 ? 0 : (body_bytes + chunk_size - 1) / chunk_size;
  if (chunk_hashes.size() != expected_chunks) return false;
  return root ==
         compute_root(height, tip_hash, body_bytes, chunk_size, chunk_hashes);
}

common::Bytes SnapshotHeader::encode() const {
  common::Writer w;
  w.u64(height);
  w.raw(common::BytesView(tip_hash.data(), tip_hash.size()));
  w.u64(body_bytes);
  w.u32(chunk_size);
  w.varint(chunk_hashes.size());
  for (const crypto::Digest& h : chunk_hashes) {
    w.raw(common::BytesView(h.data(), h.size()));
  }
  w.raw(common::BytesView(root.data(), root.size()));
  return w.take();
}

SnapshotHeader SnapshotHeader::decode(common::BytesView data) {
  common::Reader r(data);
  SnapshotHeader h;
  h.height = r.u64();
  common::Bytes tip = r.raw(crypto::kSha256DigestSize);
  std::copy(tip.begin(), tip.end(), h.tip_hash.begin());
  h.body_bytes = r.u64();
  h.chunk_size = r.u32();
  const std::uint64_t count = r.varint();
  // Bound the announced count by what the buffer can actually hold, so a
  // forged varint cannot force a giant allocation before the read fails.
  if (count > r.remaining() / crypto::kSha256DigestSize) {
    throw common::ProtocolError("snapshot header chunk count overruns buffer");
  }
  h.chunk_hashes.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    common::Bytes ch = r.raw(crypto::kSha256DigestSize);
    crypto::Digest d{};
    std::copy(ch.begin(), ch.end(), d.begin());
    h.chunk_hashes.push_back(d);
  }
  common::Bytes rt = r.raw(crypto::kSha256DigestSize);
  std::copy(rt.begin(), rt.end(), h.root.begin());
  if (!r.done()) {
    throw common::ProtocolError("trailing bytes after snapshot header");
  }
  return h;
}

Snapshot Snapshot::make(std::uint64_t height, const crypto::Digest& tip_hash,
                        const WorldState& state, std::uint32_t chunk_size) {
  if (chunk_size == 0) {
    throw common::ProtocolError("snapshot chunk size must be positive");
  }
  Snapshot s;
  s.body_ = state.encode();
  s.header_.height = height;
  s.header_.tip_hash = tip_hash;
  s.header_.body_bytes = s.body_.size();
  s.header_.chunk_size = chunk_size;
  for (std::size_t off = 0; off < s.body_.size(); off += chunk_size) {
    const std::size_t len = std::min<std::size_t>(chunk_size,
                                                  s.body_.size() - off);
    s.header_.chunk_hashes.push_back(
        crypto::sha256(common::BytesView(s.body_.data() + off, len)));
  }
  s.header_.root = SnapshotHeader::compute_root(
      s.header_.height, s.header_.tip_hash, s.header_.body_bytes,
      s.header_.chunk_size, s.header_.chunk_hashes);
  return s;
}

common::Bytes Snapshot::chunk(std::size_t index) const {
  if (index >= header_.chunk_count()) {
    throw common::ProtocolError("snapshot chunk index out of range");
  }
  const std::size_t off = index * header_.chunk_size;
  const std::size_t len =
      std::min<std::size_t>(header_.chunk_size, body_.size() - off);
  return common::Bytes(body_.begin() + static_cast<std::ptrdiff_t>(off),
                       body_.begin() + static_cast<std::ptrdiff_t>(off + len));
}

bool Snapshot::verify_chunk(const SnapshotHeader& header, std::size_t index,
                            common::BytesView data) {
  if (index >= header.chunk_count()) return false;
  const bool last = index + 1 == header.chunk_count();
  const std::size_t expect_len =
      last ? header.body_bytes - index * std::uint64_t{header.chunk_size}
           : header.chunk_size;
  if (data.size() != expect_len) return false;
  return crypto::sha256(data) == header.chunk_hashes[index];
}

std::optional<WorldState> Snapshot::assemble(
    const SnapshotHeader& header, const std::vector<common::Bytes>& chunks) {
  if (chunks.size() != header.chunk_count()) return std::nullopt;
  common::Bytes body;
  body.reserve(header.body_bytes);
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    if (!verify_chunk(header, i, chunks[i])) return std::nullopt;
    body.insert(body.end(), chunks[i].begin(), chunks[i].end());
  }
  if (body.size() != header.body_bytes) return std::nullopt;
  try {
    return WorldState::decode(body);
  } catch (const common::Error&) {
    // All chunks hashed correctly but the body does not decode: the
    // header itself committed to garbage. Fail closed.
    return std::nullopt;
  }
}

common::Bytes Snapshot::encode() const {
  common::Writer w;
  w.bytes(header_.encode());
  w.bytes(body_);
  return w.take();
}

Snapshot Snapshot::decode(common::BytesView data) {
  common::Reader r(data);
  Snapshot s;
  s.header_ = SnapshotHeader::decode(r.bytes());
  s.body_ = r.bytes();
  if (!r.done()) {
    throw common::ProtocolError("trailing bytes after snapshot");
  }
  if (!s.header_.self_consistent() ||
      s.body_.size() != s.header_.body_bytes) {
    throw common::ProtocolError("snapshot header does not match body");
  }
  for (std::size_t i = 0; i < s.header_.chunk_count(); ++i) {
    if (!verify_chunk(s.header_, i, s.chunk(i))) {
      throw common::ProtocolError("snapshot body fails chunk verification");
    }
  }
  return s;
}

Snapshot Snapshot::forge(SnapshotHeader header, common::Bytes body) {
  Snapshot s;
  s.header_ = std::move(header);
  s.body_ = std::move(body);
  return s;
}

bool SnapshotStore::maybe_checkpoint(WriteAheadLog& wal, std::uint64_t height,
                                     const crypto::Digest& tip_hash,
                                     const WorldState& state,
                                     common::BytesView aux) {
  if (!enabled() || height == 0 || height % config_.interval != 0) {
    return false;
  }
  checkpoint(wal, height, tip_hash, state, aux);
  return true;
}

void SnapshotStore::checkpoint(WriteAheadLog& wal, std::uint64_t height,
                               const crypto::Digest& tip_hash,
                               const WorldState& state, common::BytesView aux) {
  latest_ = Snapshot::make(height, tip_hash, state, config_.chunk_size);
  latest_state_ = state;  // O(1): shared trie
  const common::Bytes record =
      wal_encode_checkpoint(height, tip_hash, state, aux);
  if (config_.compact_wal) {
    wal.compact(kWalCheckpoint, record);
  } else {
    wal.append(kWalCheckpoint, record);
  }
  ++checkpoints_taken_;
}

void SnapshotStore::restore(std::uint64_t height,
                            const crypto::Digest& tip_hash,
                            const WorldState& state) {
  latest_ = Snapshot::make(height, tip_hash, state, config_.chunk_size);
  latest_state_ = state;  // O(1): shared trie
}

}  // namespace veil::ledger
