#include "platforms/quorum/quorum.hpp"

#include "common/error.hpp"
#include "common/serialize.hpp"
#include "common/thread_pool.hpp"
#include "crypto/aes.hpp"
#include "crypto/hmac.hpp"

namespace veil::quorum {

common::Bytes PrivateEnvelope::encode() const {
  common::Writer w;
  w.str(tx_id);
  w.str(sender);
  w.bytes(sealed);
  return w.take();
}

PrivateEnvelope PrivateEnvelope::decode(common::BytesView data) {
  common::Reader r(data);
  PrivateEnvelope env;
  env.tx_id = r.str();
  env.sender = r.str();
  env.sealed = r.bytes();
  if (!r.done()) throw common::Error("PrivateEnvelope: trailing data");
  return env;
}

QuorumNetwork::QuorumNetwork(net::Transport& network,
                             const crypto::Group& group, common::Rng& rng,
                             std::size_t block_size,
                             ledger::SnapshotConfig snapshots)
    : network_(&network),
      group_(&group),
      rng_(rng.fork()),
      block_size_(block_size),
      channel_(network),
      snapshot_config_(snapshots),
      transfer_(channel_,
                ledger::SnapshotTransfer::Callbacks{
                    .provider =
                        [this](const net::Principal& self,
                               const std::string& scope,
                               std::uint64_t min_height) {
                          return provide_snapshot(self, scope, min_height);
                        },
                    .offer_check =
                        [this](const net::Principal&, const std::string&,
                               const ledger::SnapshotHeader& header) {
                          return check_offer(header);
                        },
                    .on_complete =
                        [this](const net::Principal& self, const std::string&,
                               const ledger::SnapshotHeader& header,
                               ledger::WorldState state) {
                          install_snapshot(self, header, std::move(state));
                        },
                    .on_reject =
                        [this](const net::Principal& self, const std::string&,
                               const net::Principal& donor,
                               ledger::TransferReject reason,
                               common::BytesView proof_a,
                               common::BytesView proof_b) {
                          on_transfer_reject(self, donor, reason, proof_a,
                                             proof_b);
                        },
                    .on_fail = nullptr,
                }),
      batch_verifier_(group, rng_.next_u64()) {
  tip_hash_ = crypto::sha256(std::string_view("veil.chain.genesis"));
}

void QuorumNetwork::add_node(const std::string& org) {
  if (nodes_.contains(org)) return;
  nodes_.insert_or_assign(
      org, Node{crypto::KeyPair::generate(*group_, rng_), {}, {}, {}, {}, {},
                ledger::SnapshotStore(snapshot_config_), 0});
  channel_.attach(org, [this, org](const net::Message& msg) {
    on_node_message(org, msg);
  });
  network_->set_crash_hook(org, [this, org] { on_node_crash(org); });
  network_->set_restart_hook(org, [this, org] { on_node_restart(org); });
}

TxResult QuorumNetwork::submit_public(
    const std::string& from, const std::vector<ledger::KvWrite>& writes) {
  if (!nodes_.contains(from)) return {false, "", "unknown node"};
  ledger::Transaction tx;
  tx.channel = "quorum";
  tx.contract = "evm";
  tx.action = "public";
  tx.participants = {from};
  tx.writes = writes;
  tx.timestamp = network_->clock().now();
  if (default_ttl_us_ != 0) tx.deadline_us = tx.timestamp + default_ttl_us_;
  common::Writer nonce;
  nonce.u64(nonce_++);
  tx.payload = nonce.take();
  tx.endorse(from, nodes_.at(from).keypair);
  ++public_count_;
  return enqueue(std::move(tx), {}, {}, {});
}

TxResult QuorumNetwork::submit_private(const std::string& from,
                                       const std::set<std::string>& recipients,
                                       const std::vector<ledger::KvWrite>& writes,
                                       common::Bytes payload) {
  if (!nodes_.contains(from)) return {false, "", "unknown node"};
  for (const std::string& r : recipients) {
    if (!nodes_.contains(r)) return {false, "", "unknown recipient " + r};
  }

  // Serialize the private detail; only its hash goes on chain.
  common::Writer w;
  w.varint(writes.size());
  for (const ledger::KvWrite& kv : writes) {
    w.str(kv.key);
    w.bytes(kv.value);
    w.boolean(kv.is_delete);
  }
  w.bytes(payload);
  w.u64(nonce_++);
  const common::Bytes private_blob = w.take();

  ledger::Transaction tx;
  tx.channel = "quorum";
  tx.contract = "evm";
  tx.action = "private";
  // DOCUMENTED FLAW: the participant list is public on the chain.
  tx.participants.push_back(from);
  for (const std::string& r : recipients) tx.participants.push_back(r);
  tx.payload = crypto::digest_bytes(crypto::sha256(private_blob));
  tx.data_opaque = true;  // chain carries hash only
  tx.timestamp = network_->clock().now();
  if (default_ttl_us_ != 0) tx.deadline_us = tx.timestamp + default_ttl_us_;
  tx.endorse(from, nodes_.at(from).keypair);
  ++private_count_;
  return enqueue(std::move(tx), recipients, writes, private_blob);
}

std::vector<TxResult> QuorumNetwork::submit_private_many(
    const std::string& from, const std::vector<PrivateSubmission>& batch,
    std::size_t pipeline_depth) {
  if (pipeline_depth == 0) pipeline_depth = 1;
  std::vector<TxResult> out(batch.size());
  if (!nodes_.contains(from)) {
    for (auto& r : out) r = {false, "", "unknown node"};
    return out;
  }

  struct Item {
    std::size_t origin;
    ledger::Transaction tx;
    common::Bytes blob;
    std::vector<std::string> push_targets;
    std::vector<common::Bytes> nonces;
    std::vector<common::Bytes> sealed;  // filled by the pool task
  };

  for (std::size_t wave = 0; wave < batch.size(); wave += pipeline_depth) {
    const std::size_t wave_end =
        std::min(batch.size(), wave + pipeline_depth);
    // Stage A (serial): build each transaction and draw every nonce in
    // submission order, so the byte stream matches serial
    // submit_private() calls exactly.
    std::vector<Item> items;
    for (std::size_t i = wave; i < wave_end; ++i) {
      const PrivateSubmission& req = batch[i];
      bool bad_recipient = false;
      for (const std::string& r : req.recipients) {
        if (!nodes_.contains(r)) {
          out[i] = {false, "", "unknown recipient " + r};
          bad_recipient = true;
          break;
        }
      }
      if (bad_recipient) continue;

      Item item;
      item.origin = i;
      common::Writer w;
      w.varint(req.writes.size());
      for (const ledger::KvWrite& kv : req.writes) {
        w.str(kv.key);
        w.bytes(kv.value);
        w.boolean(kv.is_delete);
      }
      w.bytes(req.payload);
      w.u64(nonce_++);
      item.blob = w.take();

      item.tx.channel = "quorum";
      item.tx.contract = "evm";
      item.tx.action = "private";
      item.tx.participants.push_back(from);
      for (const std::string& r : req.recipients) {
        item.tx.participants.push_back(r);
      }
      item.tx.payload = crypto::digest_bytes(crypto::sha256(item.blob));
      item.tx.data_opaque = true;
      item.tx.timestamp = network_->clock().now();
      if (default_ttl_us_ != 0) {
        item.tx.deadline_us = item.tx.timestamp + default_ttl_us_;
      }
      ++private_count_;

      for (const std::string& holder : req.recipients) {
        if (holder == from) continue;
        common::Writer nonce;
        nonce.u64(nonce_++);
        common::Bytes nonce16 = nonce.take();
        nonce16.resize(16, 0);
        item.push_targets.push_back(holder);
        item.nonces.push_back(std::move(nonce16));
      }
      item.sealed.resize(item.push_targets.size());
      items.push_back(std::move(item));
    }
    // Stage B: endorsement signing and per-recipient transaction-manager
    // sealing for the WHOLE wave run as pool tasks — both are pure
    // (deterministic nonces, inputs fixed in stage A), so results are
    // bit-identical at any thread count.
    const crypto::KeyPair* keypair = &nodes_.at(from).keypair;
    std::vector<std::future<void>> tasks;
    for (Item& item : items) {
      Item* it = &item;
      tasks.push_back(common::ThreadPool::global().submit(
          [it, from, keypair] {
            it->tx.endorse(from, *keypair);
            for (std::size_t r = 0; r < it->push_targets.size(); ++r) {
              const common::Bytes pair_key = crypto::hkdf(
                  {}, common::to_bytes(from + "|" + it->push_targets[r]),
                  "quorum.tm.pair", 32);
              it->sealed[r] = crypto::seal(pair_key, it->blob, it->nonces[r]);
            }
          }));
    }
    // Stage C (serial, submission order): disseminate and collect acks.
    // While the first items round-trip their acks here, later items are
    // still sealing in the pool. Admission is deferred to stage D so the
    // whole wave shares one batched signature check.
    std::vector<std::size_t> survivors;
    for (std::size_t j = 0; j < items.size(); ++j) {
      tasks[j].get();
      Item& item = items[j];
      const std::string tx_id = item.tx.id();
      const PrivateSubmission& req = batch[item.origin];

      auditor().record(from, "tx/" + tx_id + "/data", item.blob.size());
      nodes_.at(from).tm_store[tx_id] = item.blob;
      tm_acks_[tx_id] = {};
      for (std::size_t r = 0; r < item.push_targets.size(); ++r) {
        PrivateEnvelope env;
        env.tx_id = tx_id;
        env.sender = from;
        env.sealed = item.sealed[r];
        channel_.send(from, item.push_targets[r], "quorum.tm-push",
                      env.encode());
      }
      network_->run();
      std::size_t acked = 0;
      for (const std::string& holder : req.recipients) {
        if (holder == from || tm_acks_[tx_id].contains(holder)) ++acked;
      }
      tm_acks_.erase(tx_id);
      if (acked < req.recipients.size()) {
        nodes_.at(from).tm_store.erase(tx_id);
        out[item.origin] = {false, tx_id,
                            "private payload dissemination incomplete"};
        continue;
      }
      std::set<std::string> holders = req.recipients;
      holders.insert(from);
      private_details_[tx_id] = PrivateDetail{holders, req.writes};
      survivors.push_back(j);
      out[item.origin] = {true, tx_id, ""};
    }
    // Stage D: one batched admission check across every transaction that
    // survived dissemination, then enqueue in submission order. Batching
    // at wave granularity — not per transaction — is what lets the RLC
    // multi-exponentiation amortize.
    std::vector<const ledger::Transaction*> wave_txs;
    for (const std::size_t j : survivors) wave_txs.push_back(&items[j].tx);
    admit_wave_to_mempool(wave_txs);
    // Pin the wave's tokens while it drains: capacity eviction must not
    // take validate-once entries out from under in-flight blocks.
    std::vector<std::string> wave_pins;
    for (const std::size_t j : survivors) {
      const std::string id = items[j].tx.id();
      mempool_.pin(id);
      wave_pins.push_back(id);
    }
    for (const std::size_t j : survivors) {
      const std::string tx_id = items[j].tx.id();
      // Endorsed work re-offers as Commit class: it outranks fresh
      // arrivals (wider CoDel target) but still sheds when the pending
      // queue stays bad.
      if (admission_control_) {
        const common::SimTime now = network_->clock().now();
        if (!admission_.offer(tx_id, ledger::AdmitPriority::Commit,
                              items[j].tx.timestamp, now, pending_.size(),
                              items[j].tx.deadline_us)) {
          network_->count_shed();
          mempool_.remove(tx_id, ledger::EvictionRecord::Cause::Expired, now);
          nodes_.at(from).tm_store.erase(tx_id);
          private_details_.erase(tx_id);
          out[items[j].origin] = {false, tx_id,
                                  "shed endorsed work at admission"};
          continue;
        }
      }
      pending_.push_back(std::move(items[j].tx));
      if (pending_.size() >= block_size_) seal_block();
    }
    for (const std::string& id : wave_pins) mempool_.unpin(id);
  }
  return out;
}

TxResult QuorumNetwork::replay_private(const std::string& attacker,
                                       const std::string& tx_id,
                                       const std::set<std::string>& recipients) {
  const auto node = nodes_.find(attacker);
  if (node == nodes_.end()) return {false, "", "unknown node"};
  for (const std::string& r : recipients) {
    if (!nodes_.contains(r)) return {false, "", "unknown recipient " + r};
  }
  const auto blob = node->second.tm_store.find(tx_id);
  if (blob == node->second.tm_store.end()) {
    return {false, "", "attacker retains no payload for " + tx_id};
  }
  const common::Bytes private_blob = blob->second;

  // The attacker's transaction manager holds the plaintext, so it can
  // recover the original writes and disseminate them to anyone.
  std::vector<ledger::KvWrite> writes;
  try {
    common::Reader r(private_blob);
    const std::uint64_t count = r.varint();
    for (std::uint64_t i = 0; i < count; ++i) {
      ledger::KvWrite kv;
      kv.key = r.str();
      kv.value = r.bytes();
      kv.is_delete = r.boolean();
      writes.push_back(std::move(kv));
    }
  } catch (const common::Error&) {
    return {false, "", "retained payload undecodable"};
  }

  ledger::Transaction tx;
  tx.channel = "quorum";
  tx.contract = "evm";
  tx.action = "private";
  tx.participants.push_back(attacker);
  for (const std::string& r : recipients) tx.participants.push_back(r);
  // Same blob, same hash: the replayed transaction re-presents the
  // original nullifier under a fresh transaction id.
  tx.payload = crypto::digest_bytes(crypto::sha256(private_blob));
  tx.data_opaque = true;
  tx.timestamp = network_->clock().now();
  if (default_ttl_us_ != 0) tx.deadline_us = tx.timestamp + default_ttl_us_;
  tx.endorse(attacker, node->second.keypair);
  ++private_count_;
  return enqueue(std::move(tx), recipients, writes, private_blob);
}

TxResult QuorumNetwork::enqueue(ledger::Transaction tx,
                                const std::set<std::string>& private_recipients,
                                const std::vector<ledger::KvWrite>& private_writes,
                                const common::Bytes& private_payload) {
  const std::string tx_id = tx.id();
  const std::string from = tx.participants.front();

  if (tx.action == "private") {
    // Transaction-manager dissemination (Tessera-style): the payload is
    // sealed under a per-recipient pair key, pushed over the reliable
    // channel, and opened at the recipient's transaction manager. This
    // per-recipient crypto is what makes private transactions slower than
    // public ones — the [5] performance result reproduced by
    // bench_scalability_quorum.
    auditor().record(from, "tx/" + tx_id + "/data", private_payload.size());
    nodes_.at(from).tm_store[tx_id] = private_payload;
    tm_acks_[tx_id] = {};
    // The per-recipient key derivation + sealing fans out across the
    // pool. Nonces are drawn serially first (recipients iterate in
    // sorted order) so the counter stream is identical at any thread
    // count; the sends stay serial in the same order.
    std::vector<std::string> push_targets;
    std::vector<common::Bytes> nonces;
    for (const std::string& holder : private_recipients) {
      if (holder == from) continue;
      common::Writer nonce;
      nonce.u64(nonce_++);
      common::Bytes nonce16 = nonce.take();
      nonce16.resize(16, 0);
      push_targets.push_back(holder);
      nonces.push_back(std::move(nonce16));
    }
    const auto sealed_payloads = common::ThreadPool::global().parallel_map(
        push_targets.size(), [&](std::size_t i) {
          const common::Bytes pair_key = crypto::hkdf(
              {}, common::to_bytes(from + "|" + push_targets[i]),
              "quorum.tm.pair", 32);
          return crypto::seal(pair_key, private_payload, nonces[i]);
        });
    for (std::size_t i = 0; i < push_targets.size(); ++i) {
      PrivateEnvelope env;
      env.tx_id = tx_id;
      env.sender = from;
      env.sealed = sealed_payloads[i];
      channel_.send(from, push_targets[i], "quorum.tm-push", env.encode());
    }
    network_->run();
    std::size_t acked = 0;
    for (const std::string& holder : private_recipients) {
      if (holder == from || tm_acks_[tx_id].contains(holder)) ++acked;
    }
    tm_acks_.erase(tx_id);
    if (acked < private_recipients.size()) {
      // Fail closed: without every recipient's transaction manager
      // confirming receipt, the hash must not reach the chain — a private
      // transaction nobody can open is worse than no transaction.
      nodes_.at(from).tm_store.erase(tx_id);
      return {false, tx_id, "private payload dissemination incomplete"};
    }
    std::set<std::string> holders = private_recipients;
    holders.insert(from);
    private_details_[tx_id] = PrivateDetail{holders, private_writes};
  }

  // ---- Overload gate -------------------------------------------------------
  // Refusals after private dissemination tidy up the TM side: a payload
  // whose hash never reaches the chain should not linger as an orphan.
  const auto refuse = [&](std::string why) {
    if (tx.action == "private") {
      nodes_.at(from).tm_store.erase(tx_id);
      private_details_.erase(tx_id);
    }
    return TxResult{false, tx_id, std::move(why)};
  };
  const common::SimTime gate_now = network_->clock().now();
  if (tx.deadline_us != 0 && gate_now > tx.deadline_us) {
    network_->count_expired(net::Stage::Endorse);
    return refuse("expired before enqueue");
  }
  if (admission_control_ &&
      !admission_.offer(tx_id, ledger::AdmitPriority::Fresh, tx.timestamp,
                        gate_now, pending_.size(), tx.deadline_us)) {
    network_->count_shed();
    return refuse("shed at admission (retry after " +
                  std::to_string(admission_.retry_after(gate_now)) + "us)");
  }
  if (pending_capacity_ != 0 && pending_.size() >= pending_capacity_) {
    network_->count_busy_rejected();
    return refuse("busy: pending queue full");
  }

  admit_to_mempool(tx);
  pending_.push_back(std::move(tx));
  if (pending_.size() >= block_size_) seal_block();
  return {true, tx_id, ""};
}

void QuorumNetwork::admit_to_mempool(const ledger::Transaction& tx) {
  if (!verify_commits_) return;
  bool verified;
  if (batch_verify_) {
    const crypto::Digest digest = tx.body_digest();
    const common::BytesView msg(digest.data(), digest.size());
    for (const ledger::Endorsement& e : tx.endorsements) {
      batch_verifier_.add_signature(e.key, msg, e.signature);
    }
    verified = batch_verifier_.pending() == 0 ||
               batch_verifier_.verify().all_valid;
  } else {
    verified = tx.endorsements_valid(*group_);
  }
  mempool_.admit(tx, verified, network_->clock().now());
}

void QuorumNetwork::admit_wave_to_mempool(
    const std::vector<const ledger::Transaction*>& txs) {
  if (!verify_commits_) return;
  const common::SimTime now = network_->clock().now();
  if (!batch_verify_) {
    for (const ledger::Transaction* tx : txs) {
      mempool_.admit(*tx, tx->endorsements_valid(*group_), now);
    }
    return;
  }
  std::vector<std::size_t> queued;  // batch index -> txs index
  for (std::size_t i = 0; i < txs.size(); ++i) {
    const crypto::Digest digest = txs[i]->body_digest();
    const common::BytesView msg(digest.data(), digest.size());
    for (const ledger::Endorsement& e : txs[i]->endorsements) {
      batch_verifier_.add_signature(e.key, msg, e.signature);
      queued.push_back(i);
    }
  }
  std::vector<char> ok(txs.size(), 1);
  if (batch_verifier_.pending() > 0) {
    const crypto::BatchOutcome outcome = batch_verifier_.verify();
    for (const std::size_t bad : outcome.invalid) ok[queued[bad]] = 0;
  }
  for (std::size_t i = 0; i < txs.size(); ++i) {
    mempool_.admit(*txs[i], ok[i] != 0, now);
  }
}

std::vector<char> QuorumNetwork::block_signatures_valid(
    const ledger::Block& block, const ledger::WorldState& state,
    bool replay) {
  std::vector<char> ok(block.transactions.size(), 1);
  if (!verify_commits_) return ok;
  // Validate-once: a token minted at admission (same body digest — the
  // id IS the digest) stands in for re-verification. Quorum transactions
  // carry no read-set, so the token's version check is digest-only.
  const common::SimTime now = network_->clock().now();
  std::vector<std::size_t> misses;
  for (std::size_t i = 0; i < block.transactions.size(); ++i) {
    if (replay || !mempool_.validated(block.transactions[i], state, now)) {
      misses.push_back(i);
    }
  }
  if (batch_verify_) {
    std::vector<std::size_t> queued;  // batch index -> tx index
    for (const std::size_t i : misses) {
      const ledger::Transaction& tx = block.transactions[i];
      const crypto::Digest digest = tx.body_digest();
      const common::BytesView msg(digest.data(), digest.size());
      for (const ledger::Endorsement& e : tx.endorsements) {
        batch_verifier_.add_signature(e.key, msg, e.signature);
        queued.push_back(i);
      }
    }
    if (batch_verifier_.pending() > 0) {
      const crypto::BatchOutcome outcome = batch_verifier_.verify();
      for (const std::size_t bad : outcome.invalid) ok[queued[bad]] = 0;
    }
  } else {
    for (const std::size_t i : misses) {
      ok[i] = block.transactions[i].endorsements_valid(*group_) ? 1 : 0;
    }
  }
  return ok;
}

void QuorumNetwork::on_node_message(const std::string& self,
                                    const net::Message& msg) {
  if (ledger::SnapshotTransfer::owns_topic(msg.topic)) {
    transfer_.handle(self, msg);
    return;
  }
  if (msg.topic == "quorum.tm-push") {
    PrivateEnvelope env;
    try {
      env = PrivateEnvelope::decode(msg.payload);
    } catch (const common::Error&) {
      return;  // malformed envelope: drop, never store garbage
    }
    const common::Bytes pair_key =
        crypto::hkdf({}, common::to_bytes(env.sender + "|" + self),
                     "quorum.tm.pair", 32);
    const auto opened = crypto::open(pair_key, env.sealed);
    if (!opened) return;  // wrong key or tampered blob: no ack, no store
    auditor().record(self, "tx/" + env.tx_id + "/data", opened->size());
    nodes_.at(self).tm_store[env.tx_id] = *opened;
    common::Writer w;
    w.str(env.tx_id);
    w.str(self);
    channel_.send(self, msg.from, "quorum.tm-ack", w.take());
  } else if (msg.topic == "quorum.tm-ack") {
    try {
      common::Reader r(msg.payload);
      const std::string tx_id = r.str();
      const std::string holder = r.str();
      const auto acks = tm_acks_.find(tx_id);
      if (acks != tm_acks_.end()) acks->second.insert(holder);
    } catch (const common::Error&) {
    }
  } else if (msg.topic == "quorum.block") {
    ledger::Block block;
    try {
      block = ledger::Block::decode(msg.payload);
    } catch (const common::Error&) {
      return;
    }
    Node& node = nodes_.at(self);
    if (block.header.height < node.chain.height()) return;  // duplicate
    // Fail closed on a block damaged in flight: the delivered copy must
    // hash to the sealed block at its height (header integrity) and its
    // body must match that header (payload integrity). Anything else is
    // dropped — the node catches up via sync() instead.
    if (block.header.height >= ordered_log_.size()) return;
    if (block.header.hash() !=
        ordered_log_[block.header.height].header.hash()) {
      return;
    }
    if (!block.body_matches_header()) return;
    while (node.chain.height() < block.header.height) {
      apply_block(self, ordered_log_[node.chain.height()]);
    }
    apply_block(self, block);
  }
}

void QuorumNetwork::seal_block() {
  if (pending_.empty()) return;
  // Deadline propagation, ordering stage: work that expired while queued
  // is dropped here rather than sealed into a block every node would
  // then validate and discard.
  const common::SimTime seal_now = network_->clock().now();
  std::erase_if(pending_, [&](const ledger::Transaction& tx) {
    if (tx.deadline_us == 0 || seal_now <= tx.deadline_us) return false;
    network_->count_expired(net::Stage::Order);
    mempool_.remove(tx.id(), ledger::EvictionRecord::Cause::Expired, seal_now);
    return true;
  });
  if (pending_.empty()) return;
  ledger::Block block = ledger::Block::make(
      next_height_, tip_hash_, std::move(pending_), network_->clock().now());
  pending_.clear();
  tip_hash_ = block.header.hash();
  ++next_height_;
  deliver(block);
}

void QuorumNetwork::apply_block(const std::string& org,
                                const ledger::Block& block, bool replay) {
  Node& node = nodes_.at(org);
  const std::vector<char> sig_ok =
      block_signatures_valid(block, node.public_state, replay);
  // WAL invariant: the block is durable before any in-memory mutation.
  if (!replay) ledger::wal_log_block(node.wal, block);
  node.chain.append(block);
  std::size_t tx_index = 0;
  for (const ledger::Transaction& tx : block.transactions) {
    // Every node sees the full on-chain form: public payload in clear,
    // private payload as hash — but always the participant list.
    // (Recorded once, at the original commit; WAL replay is a local
    // re-read, not a new leak.)
    if (!replay) record_visibility(auditor(), org, tx);
    // Fail closed on a forged endorsement (verify-commits deployments
    // only): the transaction stays on chain but mutates no state.
    if (sig_ok[tx_index++] == 0) continue;
    if (tx.action == "public") {
      for (const ledger::KvWrite& kv : tx.writes) {
        if (kv.is_delete) {
          node.public_state.erase(kv.key);
        } else {
          node.public_state.put(kv.key, kv.value);
        }
      }
    } else {
      // Nullifier cross-check: the payload hash of every private
      // transaction is public, so any node can notice the same hash
      // arriving under a second transaction id — a replay of a private
      // transfer past the transaction manager. The map is derived from
      // the shared block stream, so every node's view agrees.
      bool replayed = false;
      const std::string nullifier(tx.payload.begin(), tx.payload.end());
      const auto seen = nullifiers_.find(nullifier);
      if (seen == nullifiers_.end()) {
        nullifiers_.emplace(nullifier, std::make_pair(tx.id(), tx.encode()));
      } else if (seen->second.first != tx.id()) {
        replayed = true;
        // The attacker does not convict itself; any honest node does.
        if (detection_ && org != tx.participants.front()) {
          // Two validly signed transactions carrying one nullifier are
          // self-contained proof; the replay's submitter is the culprit.
          const std::string accused = tx.participants.front();
          audit::Evidence e;
          e.kind = audit::Misbehavior::PrivateReplay;
          e.accused = accused;
          e.reporter = org;
          e.detail = "private payload hash re-submitted under a new tx id";
          e.detected_at = network_->clock().now();
          e.proof_a = seen->second.second;
          e.proof_b = tx.encode();
          e.sign(node.keypair);
          evidence_.add(std::move(e));
          network_->quarantine(accused);
        }
      }
      const auto detail = private_details_.find(tx.id());
      if (detail != private_details_.end() &&
          detail->second.recipients.contains(org) &&
          !(detection_ && replayed)) {
        // Recipients decrypt via their TM store and update private state.
        // A detected replay is skipped: fail closed, no double credit.
        for (const ledger::KvWrite& kv : detail->second.writes) {
          if (kv.is_delete) {
            node.private_state.erase(kv.key);
          } else {
            node.private_state.put(kv.key, kv.value);
          }
        }
      }
    }
  }
  ++node.blocks_applied;
  // Interval checkpoint: seal the post-block state into the WAL and
  // compact the prefix. Private state rides the checkpoint record as aux
  // (it never leaves the node); WAL replay must not re-checkpoint.
  if (!replay) {
    node.snapshots.maybe_checkpoint(node.wal, node.chain.height(),
                                    node.chain.tip_hash(), node.public_state,
                                    node.private_state.encode());
  }
}

void QuorumNetwork::deliver(const ledger::Block& block) {
  ordered_log_.push_back(block);
  const common::Bytes encoded = block.encode();
  const std::string& from = block.transactions.front().participants.front();
  for (const auto& [org, node] : nodes_) {
    channel_.send(from, org, "quorum.block", encoded);
  }
  network_->run();
  // All live nodes have applied the block; retire its validation tokens.
  const common::SimTime now = network_->clock().now();
  for (const ledger::Transaction& tx : block.transactions) {
    mempool_.remove(tx.id(), ledger::EvictionRecord::Cause::Committed, now);
  }
}

void QuorumNetwork::sync() {
  for (auto& [org, node] : nodes_) {
    // A quarantined node is isolated: it neither receives deliveries nor
    // seeks the log until released. Honest nodes re-converge without it.
    if (network_->crashed(org) || network_->is_quarantined(org)) continue;
    while (node.chain.height() < ordered_log_.size()) {
      apply_block(org, ordered_log_[node.chain.height()]);
    }
  }
}

void QuorumNetwork::on_node_crash(const std::string& org) {
  // The admission pool is volatile (never WAL-logged): any crash drops
  // all tokens and recovery re-verifies what the WAL replays.
  mempool_.clear();
  Node& node = nodes_.at(org);
  // Volatile replica state is gone; the WAL and the transaction-manager
  // store (a separate durable process) survive. An in-progress snapshot
  // transfer is volatile too — received chunks die with the node.
  node.chain = ledger::Chain();
  node.public_state = ledger::WorldState();
  node.private_state = ledger::WorldState();
  transfer_.abort(org, "quorum");
}

void QuorumNetwork::on_node_restart(const std::string& org) {
  Node& node = nodes_.at(org);
  const ledger::WalRecovery recovered = ledger::wal_recover_blocks(node.wal);
  if (recovered.checkpoint.has_value()) {
    // Bootstrap from the sealed checkpoint: chain from the trusted head,
    // public state from the record, private state from the aux sidecar.
    const ledger::WalCheckpoint& cp = *recovered.checkpoint;
    node.chain = ledger::Chain::from_checkpoint(cp.height, cp.tip_hash);
    node.public_state = cp.state;
    if (!cp.aux.empty()) {
      node.private_state = ledger::WorldState::decode(cp.aux);
    }
    node.snapshots.restore(cp.height, cp.tip_hash, cp.state);
  }
  for (const ledger::Block& block : recovered.blocks) {
    apply_block(org, block, /*replay=*/true);
  }
  // Blocks sealed while down: seek into the shared delivery log.
  while (node.chain.height() < ordered_log_.size()) {
    apply_block(org, ordered_log_[node.chain.height()]);
  }
}

void QuorumNetwork::rejoin(const std::string& org,
                           std::vector<std::string> donors) {
  const auto it = nodes_.find(org);
  if (it == nodes_.end() || network_->crashed(org)) return;
  Node& node = it->second;
  std::vector<std::string> voters;
  for (const auto& [peer, peer_node] : nodes_) {
    if (peer == org || network_->crashed(peer) ||
        network_->is_quarantined(peer)) {
      continue;
    }
    voters.push_back(peer);
  }
  if (donors.empty()) donors = voters;
  transfer_.fetch(org, "quorum", std::move(donors), std::move(voters),
                  node.chain.height() + 1);
  network_->run();
  // A transfer still active after the network drained stalled on message
  // loss (retries exhausted) — leave it resumable instead of replaying
  // everything it was about to save us. A FAILED transfer (donor list
  // exhausted) is gone from the engine, so the delta loop below becomes
  // the full-replay fallback.
  if (transfer_.active(org, "quorum")) return;
  // Whatever the transfer achieved — a checkpoint install, or nothing
  // because no peer held a newer checkpoint — close the remaining delta
  // from the delivery log.
  while (!network_->crashed(org) &&
         node.chain.height() < ordered_log_.size()) {
    apply_block(org, ordered_log_[node.chain.height()]);
  }
}

void QuorumNetwork::resume_rejoin(const std::string& org) {
  transfer_.resume(org, "quorum");
  network_->run();
  if (transfer_.active(org, "quorum")) return;  // still stalled: resumable
  Node& node = nodes_.at(org);
  while (!network_->crashed(org) &&
         node.chain.height() < ordered_log_.size()) {
    apply_block(org, ordered_log_[node.chain.height()]);
  }
}

void QuorumNetwork::set_byzantine_snapshot_offerer(const std::string& org,
                                                   SnapshotAttack attack) {
  byz_offerers_.insert_or_assign(org, attack);
}

const ledger::Snapshot* QuorumNetwork::provide_snapshot(
    const std::string& self, const std::string& scope, std::uint64_t) {
  if (scope != "quorum") return nullptr;
  const auto it = nodes_.find(self);
  if (it == nodes_.end()) return nullptr;
  const ledger::Snapshot* honest = it->second.snapshots.latest();
  const auto attack = byz_offerers_.find(self);
  if (attack == byz_offerers_.end() || honest == nullptr) return honest;
  switch (attack->second) {
    case SnapshotAttack::TamperChunk: {
      // Honest header, one flipped body byte: every announced hash is
      // genuine, so exactly the damaged chunk fails verification.
      common::Bytes body(honest->body().begin(), honest->body().end());
      if (!body.empty()) body[body.size() / 2] ^= 0x01;
      forged_.insert_or_assign(
          self, ledger::Snapshot::forge(honest->header(), std::move(body)));
      break;
    }
    case SnapshotAttack::EquivocateRoot: {
      // A fully self-consistent snapshot of a state no honest replica
      // ever held: chunks all verify against ITS root, but the quorum of
      // peer checkpoints disavows that root.
      ledger::WorldState tampered = honest->state();
      tampered.put("asset/forged/owner", common::to_bytes(self));
      forged_.insert_or_assign(
          self,
          ledger::Snapshot::make(honest->height(), honest->header().tip_hash,
                                 tampered, honest->header().chunk_size));
      break;
    }
  }
  return &forged_.at(self);
}

bool QuorumNetwork::check_offer(const ledger::SnapshotHeader& header) const {
  // The shared delivery log is the sealing authority: the announced
  // height must exist and the announced tip must be the sealed header
  // hash at that height.
  if (header.height == 0 || header.height > ordered_log_.size()) return false;
  return ordered_log_[header.height - 1].header.hash() == header.tip_hash;
}

void QuorumNetwork::install_snapshot(const std::string& org,
                                     const ledger::SnapshotHeader& header,
                                     ledger::WorldState state) {
  Node& node = nodes_.at(org);
  const std::uint64_t from_height = node.chain.height();
  if (header.height <= from_height) return;  // stale completion
  node.chain = ledger::Chain::from_checkpoint(header.height, header.tip_hash);
  node.public_state = std::move(state);
  catch_up_private(org, from_height, header.height);
  // Seal the installed checkpoint into our own WAL (compacting whatever
  // preceded it) so a crash right after rejoin recovers from here, and
  // this node can donate the checkpoint onward.
  node.snapshots.checkpoint(node.wal, header.height, header.tip_hash,
                            node.public_state, node.private_state.encode());
}

void QuorumNetwork::on_transfer_reject(const std::string& self,
                                       const std::string& donor,
                                       ledger::TransferReject reason,
                                       common::BytesView proof_a,
                                       common::BytesView proof_b) {
  if (!ledger::is_misbehavior(reason)) return;
  Node& node = nodes_.at(self);
  audit::Evidence e;
  e.kind = reason == ledger::TransferReject::EquivocatedRoot
               ? audit::Misbehavior::SnapshotEquivocation
               : audit::Misbehavior::SnapshotTampering;
  e.accused = donor;
  e.reporter = self;
  e.detail = std::string("snapshot transfer: ") + ledger::to_string(reason);
  e.detected_at = network_->clock().now();
  e.proof_a = common::Bytes(proof_a.begin(), proof_a.end());
  e.proof_b = common::Bytes(proof_b.begin(), proof_b.end());
  e.sign(node.keypair);
  evidence_.add(std::move(e));
  network_->quarantine(donor);
}

void QuorumNetwork::catch_up_private(const std::string& org,
                                     std::uint64_t from_height,
                                     std::uint64_t to_height) {
  Node& node = nodes_.at(org);
  for (std::uint64_t h = from_height;
       h < to_height && h < ordered_log_.size(); ++h) {
    for (const ledger::Transaction& tx : ordered_log_[h].transactions) {
      if (tx.action != "private") continue;
      const auto detail = private_details_.find(tx.id());
      if (detail == private_details_.end() ||
          !detail->second.recipients.contains(org)) {
        continue;
      }
      // Same replay rule as apply_block: a detected replay is skipped.
      const std::string nullifier(tx.payload.begin(), tx.payload.end());
      const auto seen = nullifiers_.find(nullifier);
      const bool replayed =
          seen != nullifiers_.end() && seen->second.first != tx.id();
      if (detection_ && replayed) continue;
      for (const ledger::KvWrite& kv : detail->second.writes) {
        if (kv.is_delete) {
          node.private_state.erase(kv.key);
        } else {
          node.private_state.put(kv.key, kv.value);
        }
      }
    }
  }
}

std::uint64_t QuorumNetwork::blocks_applied(const std::string& org) const {
  return nodes_.at(org).blocks_applied;
}

const ledger::SnapshotStore& QuorumNetwork::snapshot_store(
    const std::string& org) const {
  return nodes_.at(org).snapshots;
}

const ledger::WriteAheadLog& QuorumNetwork::node_wal(
    const std::string& org) const {
  return nodes_.at(org).wal;
}

const ledger::Chain& QuorumNetwork::public_chain(const std::string& org) const {
  return nodes_.at(org).chain;
}

const ledger::WorldState& QuorumNetwork::public_state(
    const std::string& org) const {
  return nodes_.at(org).public_state;
}

const ledger::WorldState& QuorumNetwork::private_state(
    const std::string& org) const {
  return nodes_.at(org).private_state;
}

std::optional<common::Bytes> QuorumNetwork::private_payload(
    const std::string& org, const std::string& tx_id) const {
  const auto node = nodes_.find(org);
  if (node == nodes_.end()) return std::nullopt;
  const auto it = node->second.tm_store.find(tx_id);
  if (it == node->second.tm_store.end()) return std::nullopt;
  return it->second;
}

std::optional<std::string> QuorumNetwork::private_owner(
    const std::string& org, const std::string& asset) const {
  const auto node = nodes_.find(org);
  if (node == nodes_.end()) return std::nullopt;
  const auto entry = node->second.private_state.get("asset/" + asset + "/owner");
  if (!entry) return std::nullopt;
  return common::to_string(entry->value);
}

}  // namespace veil::quorum
