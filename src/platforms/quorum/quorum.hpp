// Quorum-style platform model (§5).
//
// Reproduced mechanics:
//  * One public ledger replicated to every node; public transactions are
//    visible to all in full.
//  * Private transactions — the payload goes to a transaction-manager
//    (Tessera-like) store and is released only to the named recipients;
//    the public chain carries the payload HASH. Every node sees that a
//    private transaction happened.
//  * Documented flaw 1 (participant leak): the on-chain private
//    transaction includes its participant list, revealing who interacts
//    with whom to the entire network.
//  * Documented flaw 2 (double spend): private state is validated only by
//    the involved parties; nothing stops an owner from privately
//    transferring the same asset to two disjoint recipient sets. The
//    adapter faithfully allows this; tests reproduce it.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "ledger/chain.hpp"
#include "ledger/state.hpp"
#include "net/network.hpp"
#include "pki/ca.hpp"

namespace veil::quorum {

struct TxResult {
  bool accepted = false;
  std::string tx_id;
  std::string reason;
};

class QuorumNetwork {
 public:
  QuorumNetwork(net::SimNetwork& network, const crypto::Group& group,
                common::Rng& rng, std::size_t block_size = 4);

  void add_node(const std::string& org);

  /// Public transaction: key/value writes visible to every node.
  TxResult submit_public(const std::string& from,
                         const std::vector<ledger::KvWrite>& writes);

  /// Private transaction: `payload`/`writes` go only to `recipients`
  /// (+ sender); the public chain carries hash + participant list.
  TxResult submit_private(const std::string& from,
                          const std::set<std::string>& recipients,
                          const std::vector<ledger::KvWrite>& writes,
                          common::Bytes payload = {});

  /// Force any pending transactions into a block.
  void seal_block();

  /// Node views.
  const ledger::Chain& public_chain(const std::string& org) const;
  const ledger::WorldState& public_state(const std::string& org) const;
  const ledger::WorldState& private_state(const std::string& org) const;

  /// Private payload retrieval through the transaction manager; nullopt
  /// for non-recipients.
  std::optional<common::Bytes> private_payload(const std::string& org,
                                               const std::string& tx_id) const;

  /// Convenience for the double-spend demonstration: who does `org`
  /// believe owns `asset` (from its private state)?
  std::optional<std::string> private_owner(const std::string& org,
                                           const std::string& asset) const;

  net::LeakageAuditor& auditor() { return network_->auditor(); }

  std::uint64_t public_tx_count() const { return public_count_; }
  std::uint64_t private_tx_count() const { return private_count_; }

 private:
  struct Node {
    crypto::KeyPair keypair;
    ledger::Chain chain;
    ledger::WorldState public_state;
    ledger::WorldState private_state;
    // Tessera-like store: tx id -> plaintext payload (recipients only).
    std::map<std::string, common::Bytes> tm_store;
  };

  TxResult enqueue(ledger::Transaction tx,
                   const std::set<std::string>& private_recipients,
                   const std::vector<ledger::KvWrite>& private_writes,
                   const common::Bytes& private_payload);
  void deliver(const ledger::Block& block);

  net::SimNetwork* network_;
  const crypto::Group* group_;
  common::Rng rng_;
  std::size_t block_size_;
  std::map<std::string, Node> nodes_;
  std::vector<ledger::Transaction> pending_;
  // tx id -> (recipients, private writes) — dissemination bookkeeping.
  struct PrivateDetail {
    std::set<std::string> recipients;
    std::vector<ledger::KvWrite> writes;
  };
  std::map<std::string, PrivateDetail> private_details_;
  std::uint64_t next_height_ = 0;
  crypto::Digest tip_hash_{};
  std::uint64_t public_count_ = 0;
  std::uint64_t private_count_ = 0;
  std::uint64_t nonce_ = 0;
};

}  // namespace veil::quorum
