// Quorum-style platform model (§5).
//
// Reproduced mechanics:
//  * One public ledger replicated to every node; public transactions are
//    visible to all in full.
//  * Private transactions — the payload goes to a transaction-manager
//    (Tessera-like) store and is released only to the named recipients;
//    the public chain carries the payload HASH. Every node sees that a
//    private transaction happened.
//  * Documented flaw 1 (participant leak): the on-chain private
//    transaction includes its participant list, revealing who interacts
//    with whom to the entire network.
//  * Documented flaw 2 (double spend): private state is validated only by
//    the involved parties; nothing stops an owner from privately
//    transferring the same asset to two disjoint recipient sets. The
//    adapter faithfully allows this; tests reproduce it.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "audit/evidence.hpp"
#include "crypto/batch_verify.hpp"
#include "ledger/admission.hpp"
#include "ledger/chain.hpp"
#include "ledger/mempool.hpp"
#include "ledger/snapshot.hpp"
#include "ledger/state.hpp"
#include "ledger/transfer.hpp"
#include "ledger/wal.hpp"
#include "net/network.hpp"
#include "net/overload.hpp"
#include "net/reliable.hpp"
#include "pki/ca.hpp"

namespace veil::quorum {

struct TxResult {
  bool accepted = false;
  std::string tx_id;
  std::string reason;
};

/// Tessera-style transaction-manager push: the private payload sealed
/// under the sender/recipient pair key, plus routing metadata. Exposed
/// for the decode-fuzz suite.
struct PrivateEnvelope {
  std::string tx_id;
  std::string sender;
  common::Bytes sealed;

  common::Bytes encode() const;
  /// Throws common::Error on malformed input.
  static PrivateEnvelope decode(common::BytesView data);
};

class QuorumNetwork {
 public:
  QuorumNetwork(net::Transport& network, const crypto::Group& group,
                common::Rng& rng, std::size_t block_size = 4,
                ledger::SnapshotConfig snapshots = {});

  void add_node(const std::string& org);

  /// Public transaction: key/value writes visible to every node.
  TxResult submit_public(const std::string& from,
                         const std::vector<ledger::KvWrite>& writes);

  /// Private transaction: `payload`/`writes` go only to `recipients`
  /// (+ sender); the public chain carries hash + participant list.
  TxResult submit_private(const std::string& from,
                          const std::set<std::string>& recipients,
                          const std::vector<ledger::KvWrite>& writes,
                          common::Bytes payload = {});

  /// Force any pending transactions into a block.
  void seal_block();

  /// One private submission for the pipelined batch flow.
  struct PrivateSubmission {
    std::set<std::string> recipients;
    std::vector<ledger::KvWrite> writes;
    common::Bytes payload;
  };

  /// Pipelined private submissions: transaction-manager sealing (the
  /// per-recipient HKDF + AES work that dominates private-tx cost) for a
  /// wave of `pipeline_depth` submissions runs as pool tasks while
  /// earlier submissions are already disseminating and being sealed into
  /// blocks. Nonces are drawn serially up front, so the resulting
  /// transactions are byte-identical to serial submit_private() calls at
  /// any thread count.
  std::vector<TxResult> submit_private_many(
      const std::string& from, const std::vector<PrivateSubmission>& batch,
      std::size_t pipeline_depth = 8);

  /// Commit-time endorsement verification (off by default — upstream
  /// Quorum trusts its own signed gossip, and the no-verify commit path
  /// is the measured baseline). When on, nodes verify each transaction's
  /// endorsement signature at apply time, consulting the validate-once
  /// mempool token first; transactions failing verification are skipped.
  void set_verify_commits(bool on = true) { verify_commits_ = on; }
  /// Route commit verification through the batched RLC kernel (default)
  /// or the per-item path (differential testing).
  void set_batch_verify(bool on = true) { batch_verify_ = on; }

  const ledger::Mempool& mempool() const { return mempool_; }
  const crypto::BatchVerifier::Stats& batch_verify_stats() const {
    return batch_verifier_.stats();
  }

  // ---- Overload tier (docs/fault_model.md "Overload tier") -----------------

  /// CoDel admission control in front of the pending queue (off until
  /// configured). Fresh submissions are gated at enqueue; endorsed wave
  /// work re-offers as Commit class in submit_private_many.
  void set_admission(ledger::AdmissionConfig config) {
    admission_ = ledger::AdmissionController(config);
    admission_control_ = true;
  }
  /// Hard bound on the pending queue; a full queue refuses submissions
  /// with a busy result instead of growing (0 = unbounded).
  void set_pending_capacity(std::size_t capacity) {
    pending_capacity_ = capacity;
  }
  /// Default TTL stamped on submissions at build time (deadline =
  /// timestamp + ttl; part of the signed body). Expired work is dropped
  /// at enqueue and again when blocks are sealed. 0 = no deadline.
  void set_default_ttl(common::SimTime ttl_us) { default_ttl_us_ = ttl_us; }
  /// Route the reliable channel's sends through a circuit breaker fed by
  /// delivery outcomes (acks close, exhausted retries open).
  void enable_circuit_breaker(net::BreakerConfig config = {}) {
    breaker_ = net::CircuitBreaker(config);
    channel_.set_breaker(&breaker_);
  }

  const ledger::AdmissionController& admission() const { return admission_; }
  net::CircuitBreaker& breaker() { return breaker_; }
  std::size_t pending_depth() const { return pending_.size(); }

  // ---- Byzantine tier (docs/fault_model.md "Byzantine tier") ---------------

  /// Replay attack: `attacker` — sender or recipient of `tx_id`, so its
  /// transaction manager retains the plaintext — re-disseminates the
  /// payload and re-submits a transaction carrying the SAME payload hash
  /// (the nullifier) to a fresh recipient set, re-activating an
  /// already-spent private transfer past the transaction manager.
  TxResult replay_private(const std::string& attacker, const std::string& tx_id,
                          const std::set<std::string>& recipients);

  /// Nullifier cross-check during public-state validation: with detection
  /// on, a second on-chain sighting of a private payload hash under a
  /// different transaction id convicts the submitter (signed evidence +
  /// network quarantine) and honest recipients skip the replayed writes.
  /// Off by default — the paper's documented behavior.
  void enable_detection(bool on = true) { detection_ = on; }

  audit::EvidenceLog& evidence() { return evidence_; }
  const audit::EvidenceLog& evidence() const { return evidence_; }

  /// Delivery catch-up: every live node that missed block deliveries
  /// (loss, partition, retries exhausted) replays the shared block log up
  /// to the current height. Crashed nodes catch up on restart instead.
  void sync();

  // ---- Recovery tier (docs/fault_model.md "Recovery tier") -----------------

  /// Snapshot rejoin for one lagging live node: fetch the nearest peer
  /// checkpoint over the wire (verified chunk-by-chunk against the root,
  /// root confirmed by a quorum of live peers), install it, replay only
  /// the post-checkpoint delta from the delivery log. When no peer has a
  /// checkpoint beyond this node's height the transfer fails over to
  /// plain delta replay — rejoin() is always safe to call. `donors`
  /// overrides the candidate order (tests put the Byzantine offerer
  /// first); default is every live, unquarantined peer.
  void rejoin(const std::string& org, std::vector<std::string> donors = {});

  /// Re-drive a rejoin stalled by message loss beyond the reliable
  /// channel's retry budget (resumes from the verified chunk cursor).
  void resume_rejoin(const std::string& org);

  /// Scripted snapshot adversary: when `org` is asked to donate a
  /// checkpoint it serves a forgery instead.
  enum class SnapshotAttack {
    TamperChunk,     // honest header, one flipped byte in the body
    EquivocateRoot,  // self-consistent header over a tampered state
  };
  void set_byzantine_snapshot_offerer(const std::string& org,
                                      SnapshotAttack attack);

  std::uint64_t blocks_applied(const std::string& org) const;
  const ledger::SnapshotStore& snapshot_store(const std::string& org) const;
  const ledger::WriteAheadLog& node_wal(const std::string& org) const;
  const ledger::TransferStats& transfer_stats() const {
    return transfer_.stats();
  }
  std::uint64_t sealed_height() const { return ordered_log_.size(); }

  /// Node views.
  const ledger::Chain& public_chain(const std::string& org) const;
  const ledger::WorldState& public_state(const std::string& org) const;
  const ledger::WorldState& private_state(const std::string& org) const;

  /// Private payload retrieval through the transaction manager; nullopt
  /// for non-recipients.
  std::optional<common::Bytes> private_payload(const std::string& org,
                                               const std::string& tx_id) const;

  /// Convenience for the double-spend demonstration: who does `org`
  /// believe owns `asset` (from its private state)?
  std::optional<std::string> private_owner(const std::string& org,
                                           const std::string& asset) const;

  net::LeakageAuditor& auditor() { return network_->auditor(); }
  net::ReliableChannel& reliable() { return channel_; }

  std::uint64_t public_tx_count() const { return public_count_; }
  std::uint64_t private_tx_count() const { return private_count_; }

 private:
  struct Node {
    crypto::KeyPair keypair;
    ledger::Chain chain;
    ledger::WorldState public_state;
    ledger::WorldState private_state;
    // Tessera-like store: tx id -> plaintext payload (recipients only).
    // The transaction manager is a separate durable process: it survives
    // a node crash, like the WAL does.
    std::map<std::string, common::Bytes> tm_store;
    /// Durable block log replayed on restart.
    ledger::WriteAheadLog wal;
    /// Checkpoint driver: seals interval snapshots into the WAL
    /// (compacting it) and keeps the latest resident for state transfer.
    ledger::SnapshotStore snapshots;
    /// Applied-record counter for the rejoin-delta assertions.
    std::uint64_t blocks_applied = 0;
  };

  TxResult enqueue(ledger::Transaction tx,
                   const std::set<std::string>& private_recipients,
                   const std::vector<ledger::KvWrite>& private_writes,
                   const common::Bytes& private_payload);
  /// Admission verification + token mint (no-op unless verify_commits_).
  void admit_to_mempool(const ledger::Transaction& tx);
  /// Wave admission for submit_private_many: one batched signature check
  /// spanning every transaction in the wave (no-op unless
  /// verify_commits_).
  void admit_wave_to_mempool(const std::vector<const ledger::Transaction*>& txs);
  /// Per-transaction signature validity for a block at apply time:
  /// validate-once token hits skip verification, misses go through the
  /// batched (or per-item) check. All-ones unless verify_commits_.
  std::vector<char> block_signatures_valid(const ledger::Block& block,
                                           const ledger::WorldState& state,
                                           bool replay);
  void deliver(const ledger::Block& block);
  void on_node_message(const std::string& self, const net::Message& msg);
  /// Append one block to one node's replica. `replay` marks WAL recovery
  /// (already durable, already observed — no re-log, no auditor record).
  void apply_block(const std::string& org, const ledger::Block& block,
                   bool replay = false);
  void on_node_crash(const std::string& org);
  void on_node_restart(const std::string& org);

  // Transfer-engine callbacks (recovery tier).
  const ledger::Snapshot* provide_snapshot(const std::string& self,
                                           const std::string& scope,
                                           std::uint64_t min_height);
  bool check_offer(const ledger::SnapshotHeader& header) const;
  void install_snapshot(const std::string& org,
                        const ledger::SnapshotHeader& header,
                        ledger::WorldState state);
  void on_transfer_reject(const std::string& self, const std::string& donor,
                          ledger::TransferReject reason,
                          common::BytesView proof_a,
                          common::BytesView proof_b);
  /// Private writes in a skipped block range come from the node's own
  /// transaction manager (which retained the plaintext), never the wire.
  void catch_up_private(const std::string& org, std::uint64_t from_height,
                        std::uint64_t to_height);

  net::Transport* network_;
  const crypto::Group* group_;
  common::Rng rng_;
  std::size_t block_size_;
  net::ReliableChannel channel_;
  ledger::SnapshotConfig snapshot_config_;
  ledger::SnapshotTransfer transfer_;
  std::map<std::string, Node> nodes_;
  std::map<std::string, SnapshotAttack> byz_offerers_;
  /// Forged snapshots served by scripted adversaries (provider returns a
  /// stable pointer, so the forgery must outlive the callback).
  std::map<std::string, ledger::Snapshot> forged_;
  std::vector<ledger::Transaction> pending_;
  /// Every sealed block in order — the delivery log nodes seek into when
  /// they missed deliveries (and the restart catch-up source).
  std::vector<ledger::Block> ordered_log_;
  // tx id -> recipients that confirmed TM receipt.
  std::map<std::string, std::set<std::string>> tm_acks_;
  // tx id -> (recipients, private writes) — dissemination bookkeeping.
  struct PrivateDetail {
    std::set<std::string> recipients;
    std::vector<ledger::KvWrite> writes;
  };
  std::map<std::string, PrivateDetail> private_details_;
  std::uint64_t next_height_ = 0;
  crypto::Digest tip_hash_{};
  std::uint64_t public_count_ = 0;
  std::uint64_t private_count_ = 0;
  std::uint64_t nonce_ = 0;
  bool detection_ = false;
  bool verify_commits_ = false;
  bool batch_verify_ = true;
  /// Validate-once admission pool (volatile; cleared on any node crash).
  ledger::Mempool mempool_;
  // Overload tier: all volatile, never WAL-logged — refused work was
  // never accepted, so recovery owes it nothing.
  bool admission_control_ = false;
  ledger::AdmissionController admission_;
  common::SimTime default_ttl_us_ = 0;
  std::size_t pending_capacity_ = 0;
  net::CircuitBreaker breaker_;
  crypto::BatchVerifier batch_verifier_;
  audit::EvidenceLog evidence_;
  /// Private payload hashes already on chain -> (first carrying tx id,
  /// its encoding — the first half of a replay conviction's proof).
  /// Derived deterministically from the shared block stream, so every
  /// node's view agrees.
  std::map<std::string, std::pair<std::string, common::Bytes>> nullifiers_;
};

}  // namespace veil::quorum
