#include "platforms/corda/corda.hpp"

#include <future>

#include "common/error.hpp"
#include "common/serialize.hpp"
#include "common/thread_pool.hpp"

namespace veil::corda {

namespace {

common::Bytes encode_ref(const StateRef& ref) {
  common::Writer w;
  w.str("input");
  w.str(ref.tx_id);
  w.u32(ref.index);
  return w.take();
}

common::Bytes encode_output(const OutputSpec& output) {
  common::Writer w;
  w.str("output");
  w.str(output.contract);
  w.bytes(output.data);
  w.varint(output.participants.size());
  for (const std::string& p : output.participants) w.str(p);
  return w.take();
}

std::uint64_t data_bytes(const std::vector<OutputSpec>& outputs) {
  std::uint64_t total = 0;
  for (const OutputSpec& o : outputs) total += o.data.size();
  return total;
}

// Vault WAL record types (generic typed records, see ledger/wal.hpp).
constexpr std::uint8_t kWalVaultAdd = 10;
constexpr std::uint8_t kWalVaultConsume = 11;
constexpr std::uint8_t kWalLinkage = 12;
/// A consume witnessed at finality (any flow input, not just own vault
/// entries): {ref, consuming tx id}. The durable history the
/// notary-equivocation cross-check runs against.
constexpr std::uint8_t kWalConsumeSeen = 13;
/// Vault checkpoint: the party's entire durable recovery surface (vault
/// + linkages + consume log) in one record. Written by compaction, which
/// erases every record before it — restart replays snapshot + tail
/// instead of the party's full flow history.
constexpr std::uint8_t kWalVaultSnapshot = 14;

/// One half of a NotaryEquivocation proof: a notary attestation bound to
/// its transaction — verifiable on its own against the notary's key.
common::Bytes notarization_proof(const std::string& tx_id,
                                 const crypto::Digest& root,
                                 const crypto::Signature& signature) {
  common::Writer w;
  w.str(tx_id);
  w.raw(common::BytesView(root.data(), root.size()));
  w.bytes(signature.encode());
  return w.take();
}

/// One half of a DoubleSpendAttempt proof: which ref, consumed by which tx.
common::Bytes consume_proof(const StateRef& ref, const std::string& tx_id) {
  common::Writer w;
  w.str(ref.tx_id);
  w.u32(ref.index);
  w.str(tx_id);
  return w.take();
}

common::Bytes encode_state(const CordaState& state) {
  common::Writer w;
  w.str(state.ref.tx_id);
  w.u32(state.ref.index);
  w.str(state.contract);
  w.bytes(state.data);
  w.varint(state.participants.size());
  for (const std::string& p : state.participants) w.str(p);
  return w.take();
}

CordaState decode_state(common::BytesView data) {
  common::Reader r(data);
  CordaState state;
  state.ref.tx_id = r.str();
  state.ref.index = r.u32();
  state.contract = r.str();
  state.data = r.bytes();
  const std::uint64_t count = r.varint();
  for (std::uint64_t i = 0; i < count; ++i) state.participants.push_back(r.str());
  return state;
}

/// Flow wire format: the tx id (handlers key their context on it)
/// followed by the actual payload bytes.
common::Bytes flow_wire(const std::string& tx_id, common::BytesView body) {
  common::Writer w;
  w.str(tx_id);
  w.raw(body);
  return w.take();
}

common::BytesView root_view(const crypto::Digest& root) {
  return common::BytesView(root.data(), root.size());
}

}  // namespace

CordaNetwork::CordaNetwork(net::Transport& network, const crypto::Group& group,
                           common::Rng& rng,
                           std::uint64_t vault_snapshot_interval)
    : network_(&network),
      group_(&group),
      rng_(rng.fork()),
      ca_("corda-doorman", group, rng_),
      channel_(network),
      vault_snapshot_interval_(vault_snapshot_interval),
      // Domain-separated constant seed: drawing from rng_ here would
      // shift every later party-key/salt draw. The randomizer stream
      // only needs to be verifier-local and deterministic.
      batch_verifier_(group, 0xC0DDA7AB17C4E21FULL) {}

void CordaNetwork::add_party(const std::string& name) {
  if (parties_.contains(name)) return;
  Party party{crypto::KeyPair::generate(*group_, rng_), pki::Certificate{},
              nullptr, {}, {}, {}};
  party.certificate = ca_.issue(name, party.keypair.public_key(),
                                {{"type", "party"}}, 0, ~common::SimTime{0});
  party.onetime_chain = std::make_unique<pki::OneTimeKeyChain>(
      *group_, rng_.next_bytes(32));
  parties_.insert_or_assign(name, std::move(party));
  channel_.attach(name, [this, name](const net::Message& msg) {
    on_party_message(name, msg);
  });
  network_->set_crash_hook(name, [this, name] { on_party_crash(name); });
  network_->set_restart_hook(name, [this, name] { on_party_restart(name); });
}

void CordaNetwork::add_notary(const std::string& name, bool validating) {
  notaries_.insert_or_assign(
      name, Notary{crypto::KeyPair::generate(*group_, rng_), validating, {}, 0});
  channel_.attach(name, [this, name](const net::Message& msg) {
    on_notary_message(name, msg);
  });
}

void CordaNetwork::register_contract(const std::string& contract,
                                     ContractVerifier verifier) {
  verifiers_[contract] = std::move(verifier);
}

void CordaNetwork::add_oracle(const std::string& name,
                              std::map<std::string, std::string> facts) {
  oracles_.insert_or_assign(
      name,
      Oracle{crypto::KeyPair::generate(*group_, rng_), std::move(facts)});
  channel_.attach(name, [this, name](const net::Message& msg) {
    on_oracle_message(name, msg);
  });
}

void CordaNetwork::observe_transaction(const std::string& self,
                                       const PendingFlow& flow) {
  // A signing participant receives the full transaction.
  auditor().record(self, "tx/" + flow.tx_id + "/data", flow.out_bytes);
  auditor().record(self, "tx/" + flow.tx_id + "/parties", flow.parties_bytes,
                   /*plaintext=*/!flow.confidential);
}

void CordaNetwork::install_linkages(const std::string& self,
                                    const PendingFlow& flow) {
  Party& party = parties_.at(self);
  for (const pki::KeyLinkage& linkage : flow.linkages) {
    const std::string fingerprint =
        linkage.certificate.subject_key.fingerprint();
    const std::string identity = linkage.identity();
    common::Writer w;
    w.str(fingerprint);
    w.str(identity);
    vault_wal_append(party, kWalLinkage, w.take());
    party.known_linkages[fingerprint] = identity;
  }
  maybe_compact_vault(party);
}

bool CordaNetwork::apply_finality(const std::string& self,
                                  const PendingFlow& flow) {
  Party& party = parties_.at(self);

  // Detection cross-check (the tentpole's Corda defense): the flow is
  // past notarization, so every input now carries a notary attestation.
  // If this party's own consume log says an input was already consumed
  // by a DIFFERENT notarized transaction, the notary has signed two
  // conflicting consumes — equivocation, provable with both signatures.
  // The attacker runs no defenses against its own flow (self ==
  // initiator); any honest counterparty convicts.
  if (detection_ && self != flow.initiator && flow.notary_signature) {
    for (const StateRef& ref : flow.inputs) {
      const auto seen = party.consume_log.find(ref);
      if (seen == party.consume_log.end() || seen->second == flow.tx_id) {
        continue;
      }
      const auto prior = tx_records_.find(seen->second);
      if (prior == tx_records_.end()) continue;  // cannot prove without it
      convict(audit::Misbehavior::NotaryEquivocation, flow.notary, self,
              "notary signed conflicting consumes of " + ref.tx_id + "#" +
                  std::to_string(ref.index),
              notarization_proof(seen->second, prior->second.root,
                                 prior->second.notary_signature),
              notarization_proof(flow.tx_id, flow.root,
                                 *flow.notary_signature),
              flow.notary);
      return false;  // fail closed: no vault mutation from this flow
    }
  }

  // Witness every consume this flow performs — even of states this party
  // never held — WAL-first so the history survives a crash-stop.
  for (const StateRef& ref : flow.inputs) {
    if (!party.consume_log.emplace(ref, flow.tx_id).second) continue;
    common::Writer w;
    w.str(ref.tx_id);
    w.u32(ref.index);
    w.str(flow.tx_id);
    vault_wal_append(party, kWalConsumeSeen, w.take());
  }

  for (const StateRef& ref : flow.inputs) {
    const auto held = party.vault.find(ref);
    if (held == party.vault.end()) continue;
    common::Writer w;
    w.str(ref.tx_id);
    w.u32(ref.index);
    vault_wal_append(party, kWalVaultConsume, w.take());
    party.spent[ref] = held->second;
    party.vault.erase(held);
  }
  for (std::size_t i = 0; i < flow.outputs.size(); ++i) {
    CordaState state;
    state.ref = StateRef{
        flow.tx_id, static_cast<std::uint32_t>(flow.first_output_leaf + i)};
    state.contract = flow.outputs[i].contract;
    state.data = flow.outputs[i].data;
    state.participants = flow.outputs[i].participants;
    bool mine = false;
    for (const std::string& participant : state.participants) {
      std::string name = participant;
      if (name.starts_with("ot:")) {
        const auto owner = onetime_owners_.find(name.substr(3));
        if (owner == onetime_owners_.end()) continue;
        name = owner->second;
      }
      if (name == self) {
        mine = true;
        break;
      }
    }
    if (!mine) continue;
    vault_wal_append(party, kWalVaultAdd, encode_state(state));
    party.vault[state.ref] = state;
  }
  maybe_compact_vault(party);
  return true;
}

void CordaNetwork::convict(audit::Misbehavior kind, const std::string& accused,
                           const std::string& reporter, std::string detail,
                           common::Bytes proof_a, common::Bytes proof_b,
                           const std::string& quarantine_principal) {
  audit::Evidence e;
  e.kind = kind;
  e.accused = accused;
  e.reporter = reporter;
  e.detail = std::move(detail);
  e.detected_at = network_->clock().now();
  e.proof_a = std::move(proof_a);
  e.proof_b = std::move(proof_b);
  const auto party = parties_.find(reporter);
  if (party != parties_.end()) {
    e.sign(party->second.keypair);
  } else if (const auto notary = notaries_.find(reporter);
             notary != notaries_.end()) {
    e.sign(notary->second.keypair);
  }
  evidence_.add(std::move(e));
  if (!quarantine_principal.empty()) {
    network_->quarantine(quarantine_principal);
  }
}

common::Bytes CordaNetwork::encode_vault_snapshot(const Party& party) {
  // Maps iterate in key order, so two parties with identical recovery
  // surfaces produce identical bytes (and identical vault_digest()s).
  common::Writer w;
  w.varint(party.vault.size());
  for (const auto& [ref, state] : party.vault) {
    w.bytes(encode_state(state));
  }
  w.varint(party.known_linkages.size());
  for (const auto& [fingerprint, identity] : party.known_linkages) {
    w.str(fingerprint);
    w.str(identity);
  }
  w.varint(party.consume_log.size());
  for (const auto& [ref, tx_id] : party.consume_log) {
    w.str(ref.tx_id);
    w.u32(ref.index);
    w.str(tx_id);
  }
  return w.take();
}

const common::Bytes& CordaNetwork::vault_snapshot(const Party& party) {
  if (!party.snapshot_cache_valid) {
    party.snapshot_cache = encode_vault_snapshot(party);
    party.snapshot_cache_valid = true;
  }
  return party.snapshot_cache;
}

void CordaNetwork::compact_vault_locked(Party& party) {
  // compact() appends the snapshot BEFORE erasing the prefix, so a crash
  // at any point still recovers (to either the old log or the new).
  party.wal.compact(kWalVaultSnapshot, vault_snapshot(party));
  ++party.checkpoints_taken;
}

void CordaNetwork::vault_wal_append(Party& party, std::uint8_t type,
                                    common::BytesView payload) {
  // WAL-first is the single choke point every vault mutation passes
  // through — the snapshot cache can only go stale here (or on the
  // crash/restart hooks, which invalidate explicitly).
  party.snapshot_cache_valid = false;
  party.wal.append(type, payload);
}

void CordaNetwork::maybe_compact_vault(Party& party) {
  // Compaction snapshots the vault MAP, so it may only run when the map
  // has caught up with every appended record. Callers are WAL-first
  // (append, then mutate the map), which is why this is a separate
  // end-of-mutation step and not part of vault_wal_append: compacting
  // between the append and the map write would snapshot a vault missing
  // the very record the compaction is about to erase.
  if (vault_snapshot_interval_ != 0 &&
      party.wal.record_count() >= vault_snapshot_interval_) {
    compact_vault_locked(party);
  }
}

void CordaNetwork::compact_vault(const std::string& name) {
  compact_vault_locked(parties_.at(name));
}

crypto::Digest CordaNetwork::vault_digest(const std::string& name) const {
  return crypto::sha256(vault_snapshot(parties_.at(name)));
}

void CordaNetwork::on_party_crash(const std::string& name) {
  Party& party = parties_.at(name);
  party.vault.clear();
  party.known_linkages.clear();
  party.spent.clear();
  party.consume_log.clear();
  party.snapshot_cache_valid = false;
}

void CordaNetwork::on_party_restart(const std::string& name) {
  Party& party = parties_.at(name);
  party.vault.clear();
  party.known_linkages.clear();
  party.spent.clear();
  party.consume_log.clear();
  party.snapshot_cache_valid = false;
  party.records_replayed = 0;
  for (const ledger::WriteAheadLog::Record& rec : party.wal.recover()) {
    try {
      common::Reader r(rec.payload);
      ++party.records_replayed;
      if (rec.type == kWalVaultSnapshot) {
        // Vault checkpoint: install the whole recovery surface at once.
        // Compaction guarantees it precedes any tail records, but decode
        // defensively — a snapshot mid-log simply resets and re-applies.
        party.vault.clear();
        party.known_linkages.clear();
        party.consume_log.clear();
        const std::uint64_t vault_count = r.varint();
        for (std::uint64_t i = 0; i < vault_count; ++i) {
          const CordaState state = decode_state(r.bytes());
          party.vault[state.ref] = state;
        }
        const std::uint64_t linkage_count = r.varint();
        for (std::uint64_t i = 0; i < linkage_count; ++i) {
          const std::string fingerprint = r.str();
          party.known_linkages[fingerprint] = r.str();
        }
        const std::uint64_t consume_count = r.varint();
        for (std::uint64_t i = 0; i < consume_count; ++i) {
          StateRef ref;
          ref.tx_id = r.str();
          ref.index = r.u32();
          party.consume_log.emplace(ref, r.str());
        }
      } else if (rec.type == kWalVaultAdd) {
        const CordaState state = decode_state(rec.payload);
        party.vault[state.ref] = state;
      } else if (rec.type == kWalVaultConsume) {
        StateRef ref;
        ref.tx_id = r.str();
        ref.index = r.u32();
        party.vault.erase(ref);
      } else if (rec.type == kWalLinkage) {
        const std::string fingerprint = r.str();
        party.known_linkages[fingerprint] = r.str();
      } else if (rec.type == kWalConsumeSeen) {
        StateRef ref;
        ref.tx_id = r.str();
        ref.index = r.u32();
        party.consume_log.emplace(ref, r.str());
      }
    } catch (const common::Error&) {
      break;  // undecodable payload: treat like a torn tail
    }
  }
}

void CordaNetwork::on_party_message(const std::string& self,
                                    const net::Message& msg) {
  common::Reader r(msg.payload);
  std::string tx_id;
  try {
    tx_id = r.str();
  } catch (const common::Error&) {
    return;  // malformed frame: drop
  }
  const auto flow_it = pending_.find(tx_id);
  if (flow_it == pending_.end()) return;  // stale retransmit of a dead flow
  PendingFlow& flow = flow_it->second;

  if (msg.topic == "corda.sign-request") {
    observe_transaction(self, flow);
    install_linkages(self, flow);
    common::Writer w;
    w.str(tx_id);
    w.str(self);
    w.bytes(parties_.at(self).keypair.sign(root_view(flow.root)).encode());
    channel_.send(self, msg.from, "corda.sign-response", w.take());
  } else if (msg.topic == "corda.sign-response") {
    try {
      const std::string signer = r.str();
      flow.signatures[signer] = crypto::Signature::decode(r.bytes());
    } catch (const common::Error&) {
    }
  } else if (msg.topic == "corda.finalize") {
    if (apply_finality(self, flow)) {
      common::Writer w;
      w.str(tx_id);
      w.str(self);
      channel_.send(self, msg.from, "corda.finalize-ack", w.take());
    } else {
      // Detection refused finality: tell the initiator the flow failed
      // closed rather than silently diverging vaults.
      common::Writer w;
      w.str(tx_id);
      w.str(self);
      w.str("finality refused by " + self + ": notary equivocation");
      channel_.send(self, msg.from, "corda.sign-refusal", w.take());
    }
  } else if (msg.topic == "corda.finalize-ack") {
    try {
      flow.finalize_acks.insert(r.str());
    } catch (const common::Error&) {
    }
  } else if (msg.topic == "corda.sign-refusal") {
    try {
      r.str();  // refusing party (already named in the reason)
      flow.refusal = r.str();
    } catch (const common::Error&) {
    }
  } else if (msg.topic == "corda.oracle-response" ||
             msg.topic == "corda.notarize-response") {
    try {
      if (r.boolean()) {
        const crypto::Signature sig = crypto::Signature::decode(r.bytes());
        if (msg.topic == "corda.oracle-response") {
          flow.oracle_signature = sig;
        } else {
          flow.notary_signature = sig;
        }
      } else {
        flow.refusal = r.str();
      }
    } catch (const common::Error&) {
    }
  }
}

void CordaNetwork::on_notary_message(const std::string& self,
                                     const net::Message& msg) {
  if (msg.topic != "corda.notarize") return;
  std::string tx_id;
  common::Bytes body;
  try {
    common::Reader r(msg.payload);
    tx_id = r.str();
    body = r.raw(r.remaining());
  } catch (const common::Error&) {
    return;
  }
  const auto flow_it = pending_.find(tx_id);
  if (flow_it == pending_.end()) return;
  PendingFlow& flow = flow_it->second;
  Notary& notary = notaries_.at(self);

  std::string refusal;
  // Deadline propagation, ordering stage: the notary refuses work that
  // expired in flight rather than consuming inputs for a dead flow.
  if (flow.deadline_us != 0 && network_->clock().now() > flow.deadline_us) {
    refusal = "expired at ordering";
    network_->count_expired(net::Stage::Order);
  }
  if (notary.validating) {
    auditor().record(self, "tx/" + tx_id + "/data", flow.out_bytes);
  } else {
    // Non-validating: only the input refs arrive in clear; the rest is a
    // tear-off the notary verifies against the signed root.
    auditor().record(self, "tx/" + tx_id + "/data", flow.out_bytes,
                     /*plaintext=*/false);
    try {
      const crypto::TearOff filtered = crypto::TearOff::decode(body);
      if (!filtered.verify_against(flow.root)) {
        refusal = "notary tear-off verification failed";
      }
    } catch (const common::Error&) {
      refusal = "notary tear-off verification failed";
    }
  }
  if (refusal.empty() && !notary.byzantine) {
    for (const StateRef& ref : flow.inputs) {
      const auto prior = notary.consumed.find(ref);
      if (prior == notary.consumed.end()) continue;
      refusal = "double spend rejected by notary";
      if (detection_) {
        // The refusal itself becomes signed evidence against the
        // submitting client: the same ref, consumed by two different
        // transactions, attested by the uniqueness service.
        convict(audit::Misbehavior::DoubleSpendAttempt, msg.from, self,
                "client re-submitted consumed state " + ref.tx_id + "#" +
                    std::to_string(ref.index),
                consume_proof(prior->first, prior->second),
                consume_proof(ref, tx_id), /*quarantine_principal=*/"");
      }
      break;
    }
  }

  common::Writer w;
  w.str(tx_id);
  if (!refusal.empty()) {
    w.boolean(false);
    w.str(refusal);
  } else {
    // emplace keeps the FIRST consumer on record, so a Byzantine notary
    // that signs a conflict does not launder its own history.
    for (const StateRef& ref : flow.inputs) notary.consumed.emplace(ref, tx_id);
    ++notary.notarized;
    w.boolean(true);
    w.bytes(notary.keypair.sign(root_view(flow.root)).encode());
  }
  channel_.send(self, msg.from, "corda.notarize-response", w.take());
}

void CordaNetwork::on_oracle_message(const std::string& self,
                                     const net::Message& msg) {
  if (msg.topic != "corda.oracle-request") return;
  std::string tx_id;
  common::Bytes body;
  try {
    common::Reader r(msg.payload);
    tx_id = r.str();
    body = r.raw(r.remaining());
  } catch (const common::Error&) {
    return;
  }
  const auto flow_it = pending_.find(tx_id);
  if (flow_it == pending_.end()) return;
  PendingFlow& flow = flow_it->second;
  Oracle& oracle = oracles_.at(self);

  // Oracle sees only the fact component; the rest is torn off.
  auditor().record(self, "tx/" + tx_id + "/fact",
                   flow.fact_key.size() + flow.fact_value.size());
  auditor().record(self, "tx/" + tx_id + "/data", flow.out_bytes,
                   /*plaintext=*/false);

  std::string refusal;
  try {
    const crypto::TearOff filtered = crypto::TearOff::decode(body);
    if (!filtered.verify_against(flow.root)) {
      refusal = "tear-off verification failed";
    }
  } catch (const common::Error&) {
    refusal = "tear-off verification failed";
  }
  if (refusal.empty()) {
    const auto fact = oracle.facts.find(flow.fact_key);
    if (fact == oracle.facts.end() || fact->second != flow.fact_value) {
      refusal = "oracle refused: fact mismatch";
    }
  }

  common::Writer w;
  w.str(tx_id);
  if (!refusal.empty()) {
    w.boolean(false);
    w.str(refusal);
  } else {
    w.boolean(true);
    w.bytes(oracle.keypair.sign(root_view(flow.root)).encode());
  }
  channel_.send(self, msg.from, "corda.oracle-response", w.take());
}

CordaNetwork::Party* CordaNetwork::signer_of(const std::string& participant,
                                             const std::string& initiator) {
  (void)initiator;  // flow-session bookkeeping point, not access control
  const auto direct = parties_.find(participant);
  if (direct != parties_.end()) return &direct->second;
  const auto owner = onetime_owners_.find(participant);
  if (owner != onetime_owners_.end()) return &parties_.at(owner->second);
  return nullptr;
}

FlowResult CordaNetwork::issue(const std::string& party,
                               const std::string& contract,
                               common::Bytes data,
                               const std::vector<std::string>& participants,
                               const std::string& notary) {
  OutputSpec output{contract, std::move(data), participants};
  return transact(party, {}, {output}, notary);
}

FlowResult CordaNetwork::transact(const std::string& initiator,
                                  const std::vector<StateRef>& inputs,
                                  const std::vector<OutputSpec>& outputs,
                                  const std::string& notary_name,
                                  bool confidential,
                                  const std::optional<OracleRequest>& oracle) {
  // A wave of one IS the serial flow: every stage below degenerates to
  // the exact per-flow operation order this function always had.
  return transact_many(
      {TransactRequest{initiator, inputs, outputs, notary_name, confidential,
                       oracle}},
      1)[0];
}

CordaNetwork::PreparedFlow CordaNetwork::prepare_flow(
    const TransactRequest& request) {
  PreparedFlow p;
  p.initiator = request.initiator;
  p.notary = request.notary;
  p.confidential = request.confidential;
  p.oracle = request.oracle;
  p.inputs = request.inputs;
  p.deadline_us = request.deadline_us;
  if (p.deadline_us == 0 && default_ttl_us_ != 0) {
    p.deadline_us = network_->clock().now() + default_ttl_us_;
  }

  const auto initiator_it = parties_.find(request.initiator);
  if (initiator_it == parties_.end()) {
    p.error = "unknown initiator";
    return p;
  }
  if (!notaries_.contains(request.notary)) {
    p.error = "unknown notary";
    return p;
  }

  // --- Resolve inputs from the initiator's vault ---------------------------
  // (A Byzantine re-spend resolves from the spent archive instead: the
  // party no longer OWNS the state, but it still HAS the bytes.)
  std::vector<CordaState> consumed_states;
  for (const StateRef& ref : request.inputs) {
    const Party& init_party = initiator_it->second;
    const auto held = init_party.vault.find(ref);
    if (held != init_party.vault.end()) {
      consumed_states.push_back(held->second);
      continue;
    }
    if (respend_) {
      const auto retained = init_party.spent.find(ref);
      if (retained != init_party.spent.end()) {
        consumed_states.push_back(retained->second);
        continue;
      }
    }
    p.error = "input not in initiator vault";
    return p;
  }

  // --- Contract verification -------------------------------------------------
  // Each contract touched by the transaction must accept it. Every
  // signing participant re-runs this check (and a validating notary
  // would too); one rejection vetoes the flow.
  {
    std::set<std::string> touched;
    for (const CordaState& state : consumed_states) {
      touched.insert(state.contract);
    }
    for (const OutputSpec& output : request.outputs) {
      touched.insert(output.contract);
    }
    for (const std::string& contract : touched) {
      const auto verifier = verifiers_.find(contract);
      if (verifier != verifiers_.end() &&
          !verifier->second(consumed_states, request.outputs)) {
        p.error = "contract verification failed: " + contract;
        return p;
      }
    }
  }

  // --- Confidential identities: swap names for one-time keys ---------------
  p.outputs = request.outputs;
  if (request.confidential) {
    for (OutputSpec& output : p.outputs) {
      for (std::string& participant : output.participants) {
        const auto owner = parties_.find(participant);
        if (owner == parties_.end()) continue;  // already a fingerprint
        const crypto::KeyPair onetime = owner->second.onetime_chain->next();
        auto linkage = pki::issue_linkage(ca_, owner->second.certificate,
                                          onetime.public_key(),
                                          network_->clock().now());
        if (!linkage) {
          p.error = "linkage issuance failed";
          return p;
        }
        const std::string fingerprint = onetime.public_key().fingerprint();
        onetime_owners_[fingerprint] = participant;
        p.linkages.push_back(*linkage);
        participant = "ot:" + fingerprint;
      }
    }
  }

  // --- Build the transaction Merkle leaves ----------------------------------
  common::Writer command;
  command.str(request.inputs.empty() ? "issue" : "transact");
  command.u64(network_->clock().now());
  command.u64(issue_counter_++);
  p.leaves.push_back(command.take());
  for (const StateRef& ref : request.inputs) {
    p.leaves.push_back(encode_ref(ref));
  }
  p.first_output_leaf = p.leaves.size();
  for (const OutputSpec& output : p.outputs) {
    p.leaves.push_back(encode_output(output));
  }
  if (request.oracle) {
    common::Writer w;
    w.str("fact");
    w.str(request.oracle->fact_key);
    w.str(request.oracle->fact_value);
    p.fact_leaf = p.leaves.size();
    p.leaves.push_back(w.take());
  }
  p.salts.reserve(p.leaves.size());
  for (std::size_t i = 0; i < p.leaves.size(); ++i) {
    p.salts.push_back(rng_.next_bytes(16));
  }

  // --- Participants and signer resolution -----------------------------------
  std::set<std::string> all_participants;
  for (const CordaState& state : consumed_states) {
    for (const std::string& participant : state.participants) {
      all_participants.insert(participant);
    }
  }
  for (const OutputSpec& output : p.outputs) {
    for (const std::string& participant : output.participants) {
      all_participants.insert(participant);
    }
  }
  for (const std::string& participant : all_participants) {
    p.parties_bytes += participant.size();
  }
  p.out_bytes = data_bytes(p.outputs);

  common::Writer full_tx;
  full_tx.varint(p.leaves.size());
  for (std::size_t i = 0; i < p.leaves.size(); ++i) {
    full_tx.bytes(p.leaves[i]);
    full_tx.bytes(p.salts[i]);
  }
  p.full_tx_bytes = full_tx.take();

  for (const std::string& participant : all_participants) {
    std::string name = participant;
    if (name.starts_with("ot:")) name = name.substr(3);
    Party* signer = signer_of(name, request.initiator);
    if (signer == nullptr) {
      // The error carries the tx id, which only exists after stage B
      // computes the root — flag it and let the wave driver report.
      p.unresolvable = true;
      break;
    }
    // Find the actual party name for network addressing.
    const auto owner = onetime_owners_.find(name);
    p.signer_parties.insert(owner != onetime_owners_.end() ? owner->second
                                                           : name);
  }

  p.ok = true;
  return p;
}

std::vector<FlowResult> CordaNetwork::transact_many(
    const std::vector<TransactRequest>& requests, std::size_t pipeline_depth) {
  std::vector<FlowResult> out(requests.size());
  if (pipeline_depth == 0) pipeline_depth = 1;

  for (std::size_t wave_start = 0; wave_start < requests.size();
       wave_start += pipeline_depth) {
    const std::size_t wave_end =
        std::min(requests.size(), wave_start + pipeline_depth);

    // --- Stage A: serial prepare. All rng draws (one-time keys, Merkle
    // salts) and counter bumps happen here, in submission order — the
    // transcript is the same at any thread count.
    std::vector<PreparedFlow> wave;
    wave.reserve(wave_end - wave_start);
    for (std::size_t i = wave_start; i < wave_end; ++i) {
      wave.push_back(prepare_flow(requests[i]));
    }

    // --- Stage B: Merkle build + initiator signature as pool tasks.
    // Both are pure functions of stage-A output (signing nonces are
    // derived, not drawn), so later flows seal while earlier ones are
    // already running their message rounds below.
    std::vector<std::future<void>> sealing(wave.size());
    for (std::size_t i = 0; i < wave.size(); ++i) {
      PreparedFlow* flow = &wave[i];
      if (!flow->ok) continue;
      const crypto::KeyPair* keypair = &parties_.at(flow->initiator).keypair;
      sealing[i] = common::ThreadPool::global().submit([flow, keypair] {
        flow->root = crypto::MerkleTree::build(flow->leaves, flow->salts).root();
        flow->initiator_signature = keypair->sign(root_view(flow->root));
      });
    }

    const auto fail = [&](PreparedFlow& flow, std::size_t origin,
                          std::string reason) {
      pending_.erase(flow.tx_id);
      flow.live = false;
      out[origin] = {false, flow.tx_id, std::move(reason)};
    };

    // --- Stage C: message rounds, batched per wave. Each round sends for
    // every live flow, then drains the network ONCE — handlers demux
    // concurrent flows by tx id.

    // Signature round (peer-to-peer): the initiator signs locally; every
    // other signer party receives the full transaction and responds with
    // its signature. A counterparty the network cannot reach (after
    // bounded retries) fails the flow closed — nothing is consumed.
    for (std::size_t i = 0; i < wave.size(); ++i) {
      PreparedFlow& p = wave[i];
      const std::size_t origin = wave_start + i;
      if (!p.ok) {
        out[origin] = {false, "", p.error};
        continue;
      }
      sealing[i].get();
      p.tx_id = crypto::digest_hex(p.root).substr(0, 24);
      if (p.unresolvable) {
        out[origin] = {false, p.tx_id, "unresolvable participant"};
        continue;
      }
      // Deadline propagation, endorse stage: a flow already past its
      // deadline never starts its signature round.
      if (p.deadline_us != 0 && network_->clock().now() > p.deadline_us) {
        network_->count_expired(net::Stage::Endorse);
        out[origin] = {false, p.tx_id, "expired before signature round"};
        continue;
      }
      // Bounded flow table: at capacity, refuse with a busy result
      // instead of growing without bound under overload.
      if (pending_capacity_ != 0 && pending_.size() >= pending_capacity_) {
        network_->count_busy_rejected();
        out[origin] = {false, p.tx_id, "busy: flow table full"};
        continue;
      }
      PendingFlow flow;
      flow.tx_id = p.tx_id;
      flow.initiator = p.initiator;
      flow.notary = p.notary;
      flow.root = p.root;
      flow.inputs = p.inputs;
      flow.outputs = p.outputs;
      flow.first_output_leaf = p.first_output_leaf;
      flow.linkages = p.linkages;
      flow.confidential = p.confidential;
      flow.out_bytes = p.out_bytes;
      flow.parties_bytes = p.parties_bytes;
      flow.deadline_us = p.deadline_us;
      if (p.oracle) {
        flow.fact_key = p.oracle->fact_key;
        flow.fact_value = p.oracle->fact_value;
      }
      pending_.insert_or_assign(p.tx_id, std::move(flow));
      p.live = true;

      PendingFlow& registered = pending_.at(p.tx_id);
      observe_transaction(p.initiator, registered);
      install_linkages(p.initiator, registered);
      registered.signatures[p.initiator] = p.initiator_signature;
      for (const std::string& party : p.signer_parties) {
        if (party == p.initiator) continue;
        channel_.send(p.initiator, party, "corda.sign-request",
                      flow_wire(p.tx_id, p.full_tx_bytes));
      }
    }
    network_->run();
    for (std::size_t i = 0; i < wave.size(); ++i) {
      PreparedFlow& p = wave[i];
      if (!p.live) continue;
      const PendingFlow& flow = pending_.at(p.tx_id);
      for (const std::string& party : p.signer_parties) {
        if (!flow.signatures.contains(party)) {
          fail(p, wave_start + i,
               "signature round incomplete: " + party + " unreachable");
          break;
        }
      }
    }

    // Oracle attestation over a tear-off.
    bool oracle_round = false;
    for (std::size_t i = 0; i < wave.size(); ++i) {
      PreparedFlow& p = wave[i];
      if (!p.live || !p.oracle) continue;
      if (!oracles_.contains(p.oracle->oracle)) {
        fail(p, wave_start + i, "unknown oracle");
        continue;
      }
      const crypto::TearOff filtered =
          crypto::TearOff::create(p.leaves, p.salts, {*p.fact_leaf});
      channel_.send(p.initiator, p.oracle->oracle, "corda.oracle-request",
                    flow_wire(p.tx_id, filtered.encode()));
      oracle_round = true;
    }
    if (oracle_round) network_->run();
    for (std::size_t i = 0; i < wave.size(); ++i) {
      PreparedFlow& p = wave[i];
      if (!p.live || !p.oracle) continue;
      const PendingFlow& flow = pending_.at(p.tx_id);
      if (!flow.refusal.empty()) {
        fail(p, wave_start + i, flow.refusal);
      } else if (!flow.oracle_signature) {
        fail(p, wave_start + i, "oracle round incomplete");
      }
    }

    // Notarization. Conflicting consumes WITHIN a wave resolve exactly
    // like concurrent submitters: the notary's consumed map arbitrates
    // in delivery order.
    for (std::size_t i = 0; i < wave.size(); ++i) {
      PreparedFlow& p = wave[i];
      if (!p.live) continue;
      common::Bytes body;
      if (notaries_.at(p.notary).validating) {
        body = p.full_tx_bytes;
      } else {
        // Non-validating: only the input refs are revealed.
        std::vector<std::size_t> visible;
        for (std::size_t j = 1; j <= p.inputs.size(); ++j) {
          visible.push_back(j);
        }
        body = crypto::TearOff::create(p.leaves, p.salts, visible).encode();
      }
      channel_.send(p.initiator, p.notary, "corda.notarize",
                    flow_wire(p.tx_id, body));
    }
    network_->run();
    for (std::size_t i = 0; i < wave.size(); ++i) {
      PreparedFlow& p = wave[i];
      if (!p.live) continue;
      const PendingFlow& flow = pending_.at(p.tx_id);
      if (!flow.refusal.empty()) {
        fail(p, wave_start + i, flow.refusal);
      } else if (!flow.notary_signature) {
        fail(p, wave_start + i, "notarization incomplete");
      }
    }

    // Record every notarized flow for backchain resolution BEFORE any
    // finality runs: a counterparty's equivocation cross-check may need
    // a sibling flow's record as proof material.
    for (PreparedFlow& p : wave) {
      if (!p.live) continue;
      const PendingFlow& flow = pending_.at(p.tx_id);
      TxRecord record;
      record.root = p.root;
      record.inputs = p.inputs;
      record.notary = p.notary;
      record.notary_signature = *flow.notary_signature;
      record.data_bytes = flow.out_bytes;
      record.is_issue = p.inputs.empty();
      tx_records_[p.tx_id] = std::move(record);
    }

    // Finality: every signer party applies the vault update.
    for (PreparedFlow& p : wave) {
      if (!p.live) continue;
      PendingFlow& flow = pending_.at(p.tx_id);
      (void)apply_finality(p.initiator, flow);  // self==initiator: no refusal
      for (const std::string& party : p.signer_parties) {
        if (party == p.initiator) continue;
        channel_.send(p.initiator, party, "corda.finalize",
                      flow_wire(p.tx_id, p.full_tx_bytes));
      }
    }
    network_->run();
    for (std::size_t i = 0; i < wave.size(); ++i) {
      PreparedFlow& p = wave[i];
      if (!p.live) continue;
      const std::size_t origin = wave_start + i;
      const PendingFlow& flow = pending_.at(p.tx_id);
      // A counterparty's detection cross-check may have refused finality.
      if (!flow.refusal.empty()) {
        fail(p, origin, flow.refusal);
        continue;
      }
      bool complete = true;
      for (const std::string& party : p.signer_parties) {
        if (party != p.initiator && !flow.finalize_acks.contains(party)) {
          // Notarized but a counterparty never confirmed storage: surface
          // it rather than silently diverging vaults.
          fail(p, origin,
               "finality incomplete: " + party + " unreachable");
          complete = false;
          break;
        }
      }
      if (!complete) continue;
      pending_.erase(p.tx_id);
      out[origin] = {true, p.tx_id, ""};
    }
  }
  return out;
}

CordaNetwork::BackchainResult CordaNetwork::resolve_backchain(
    const std::string& party, const StateRef& ref) {
  BackchainResult result;
  if (!parties_.contains(party)) {
    result.reason = "unknown party";
    return result;
  }
  std::vector<StateRef> frontier = {ref};
  std::set<std::string> visited;
  // Notarization checks this walk still owes. Queued locally (not fed to
  // the verifier incrementally) so an early return on a structural error
  // never leaves stale items in the shared batch.
  struct QueuedCheck {
    const Notary* notary;
    const TxRecord* record;
    std::string tx_id;
  };
  std::vector<QueuedCheck> owed;
  while (!frontier.empty()) {
    const StateRef current = frontier.back();
    frontier.pop_back();
    if (!visited.insert(current.tx_id).second) continue;

    const auto it = tx_records_.find(current.tx_id);
    if (it == tx_records_.end()) {
      result.reason = "missing ancestor transaction " + current.tx_id;
      result.valid = false;
      return result;
    }
    const TxRecord& record = it->second;

    // The resolving party receives (and therefore observes) the full
    // ancestor transaction — the backchain privacy trade-off. Receipt
    // precedes verification: the bytes are in hand either way.
    auditor().record(party, "tx/" + current.tx_id + "/data",
                     record.data_bytes);
    result.tx_ids.push_back(current.tx_id);
    ++result.depth;
    for (const StateRef& input : record.inputs) frontier.push_back(input);

    // Validate-once: an ancestor checked by ANY earlier resolution never
    // needs a second signature verification — the record is immutable
    // and notarization validity does not depend on who asks.
    if (verified_ancestors_.contains(current.tx_id)) continue;

    // The structural half runs exactly, per item: the record must be
    // self-consistent (tx id derives from root) and name a known notary.
    const auto notary = notaries_.find(record.notary);
    if (notary == notaries_.end() ||
        crypto::digest_hex(record.root).substr(0, 24) != current.tx_id) {
      result.reason = "invalid notarization on " + current.tx_id;
      result.valid = false;
      return result;
    }

    // The cryptographic half — the notary's uniqueness attestation over
    // the Merkle root — batches across the whole walk.
    if (batch_verify_) {
      owed.push_back(QueuedCheck{&notary->second, &record, current.tx_id});
      continue;
    }
    if (!crypto::verify(*group_, notary->second.keypair.public_key(),
                        root_view(record.root), record.notary_signature)) {
      result.reason = "invalid notarization on " + current.tx_id;
      result.valid = false;
      return result;
    }
    verified_ancestors_.insert(current.tx_id);
  }

  if (!owed.empty()) {
    for (const QueuedCheck& check : owed) {
      batch_verifier_.add_signature(check.notary->keypair.public_key(),
                                    root_view(check.record->root),
                                    check.record->notary_signature);
    }
    const crypto::BatchOutcome outcome = batch_verifier_.verify();
    if (!outcome.all_valid) {
      // Bisection already pinned the exact culprit with a per-item check.
      result.reason =
          "invalid notarization on " + owed[outcome.invalid.front()].tx_id;
      result.valid = false;
      return result;
    }
    for (const QueuedCheck& check : owed) {
      verified_ancestors_.insert(check.tx_id);
    }
  }
  result.valid = true;
  return result;
}

std::vector<CordaState> CordaNetwork::vault(const std::string& party) const {
  std::vector<CordaState> out;
  const auto it = parties_.find(party);
  if (it == parties_.end()) return out;
  out.reserve(it->second.vault.size());
  for (const auto& [ref, state] : it->second.vault) out.push_back(state);
  return out;
}

std::optional<std::string> CordaNetwork::resolve_confidential(
    const std::string& party, const std::string& fingerprint) const {
  const auto it = parties_.find(party);
  if (it == parties_.end()) return std::nullopt;
  const auto linkage = it->second.known_linkages.find(fingerprint);
  if (linkage == it->second.known_linkages.end()) return std::nullopt;
  return linkage->second;
}

std::uint64_t CordaNetwork::notarized_count(const std::string& notary) const {
  const auto it = notaries_.find(notary);
  return it == notaries_.end() ? 0 : it->second.notarized;
}

void CordaNetwork::set_byzantine_notary(const std::string& name) {
  notaries_.at(name).byzantine = true;
}

FlowResult CordaNetwork::byzantine_respend(
    const std::string& initiator, const StateRef& spent_ref,
    const std::vector<OutputSpec>& outputs, const std::string& notary) {
  respend_ = true;
  FlowResult result = transact(initiator, {spent_ref}, outputs, notary);
  respend_ = false;
  return result;
}

}  // namespace veil::corda
