#include "platforms/corda/corda.hpp"

#include "common/error.hpp"
#include "common/serialize.hpp"

namespace veil::corda {

namespace {

common::Bytes encode_ref(const StateRef& ref) {
  common::Writer w;
  w.str("input");
  w.str(ref.tx_id);
  w.u32(ref.index);
  return w.take();
}

common::Bytes encode_output(const OutputSpec& output) {
  common::Writer w;
  w.str("output");
  w.str(output.contract);
  w.bytes(output.data);
  w.varint(output.participants.size());
  for (const std::string& p : output.participants) w.str(p);
  return w.take();
}

std::uint64_t data_bytes(const std::vector<OutputSpec>& outputs) {
  std::uint64_t total = 0;
  for (const OutputSpec& o : outputs) total += o.data.size();
  return total;
}

}  // namespace

CordaNetwork::CordaNetwork(net::SimNetwork& network, const crypto::Group& group,
                           common::Rng& rng)
    : network_(&network),
      group_(&group),
      rng_(rng.fork()),
      ca_("corda-doorman", group, rng_) {}

void CordaNetwork::add_party(const std::string& name) {
  if (parties_.contains(name)) return;
  Party party{crypto::KeyPair::generate(*group_, rng_), pki::Certificate{},
              nullptr, {}, {}};
  party.certificate = ca_.issue(name, party.keypair.public_key(),
                                {{"type", "party"}}, 0, ~common::SimTime{0});
  party.onetime_chain = std::make_unique<pki::OneTimeKeyChain>(
      *group_, rng_.next_bytes(32));
  parties_.insert_or_assign(name, std::move(party));
  network_->attach(name, [](const net::Message&) {});
}

void CordaNetwork::add_notary(const std::string& name, bool validating) {
  notaries_.insert_or_assign(
      name, Notary{crypto::KeyPair::generate(*group_, rng_), validating, {}, 0});
  network_->attach(name, [](const net::Message&) {});
}

void CordaNetwork::register_contract(const std::string& contract,
                                     ContractVerifier verifier) {
  verifiers_[contract] = std::move(verifier);
}

void CordaNetwork::add_oracle(const std::string& name,
                              std::map<std::string, std::string> facts) {
  oracles_.insert_or_assign(
      name,
      Oracle{crypto::KeyPair::generate(*group_, rng_), std::move(facts)});
  network_->attach(name, [](const net::Message&) {});
}

CordaNetwork::Party* CordaNetwork::signer_of(const std::string& participant,
                                             const std::string& initiator) {
  (void)initiator;  // flow-session bookkeeping point, not access control
  const auto direct = parties_.find(participant);
  if (direct != parties_.end()) return &direct->second;
  const auto owner = onetime_owners_.find(participant);
  if (owner != onetime_owners_.end()) return &parties_.at(owner->second);
  return nullptr;
}

FlowResult CordaNetwork::issue(const std::string& party,
                               const std::string& contract,
                               common::Bytes data,
                               const std::vector<std::string>& participants,
                               const std::string& notary) {
  OutputSpec output{contract, std::move(data), participants};
  return transact(party, {}, {output}, notary);
}

FlowResult CordaNetwork::transact(const std::string& initiator,
                                  const std::vector<StateRef>& inputs,
                                  const std::vector<OutputSpec>& outputs,
                                  const std::string& notary_name,
                                  bool confidential,
                                  const std::optional<OracleRequest>& oracle) {
  const auto initiator_it = parties_.find(initiator);
  if (initiator_it == parties_.end()) return {false, "", "unknown initiator"};
  const auto notary_it = notaries_.find(notary_name);
  if (notary_it == notaries_.end()) return {false, "", "unknown notary"};
  Notary& notary = notary_it->second;

  // --- Resolve inputs from the initiator's vault ---------------------------
  std::vector<CordaState> consumed_states;
  for (const StateRef& ref : inputs) {
    const auto it = initiator_it->second.vault.find(ref);
    if (it == initiator_it->second.vault.end()) {
      return {false, "", "input not in initiator vault"};
    }
    consumed_states.push_back(it->second);
  }

  // --- Contract verification -------------------------------------------------
  // Each contract touched by the transaction must accept it. Every
  // signing participant re-runs this check (and a validating notary
  // would too); one rejection vetoes the flow.
  {
    std::set<std::string> touched;
    for (const CordaState& state : consumed_states) touched.insert(state.contract);
    for (const OutputSpec& output : outputs) touched.insert(output.contract);
    for (const std::string& contract : touched) {
      const auto verifier = verifiers_.find(contract);
      if (verifier != verifiers_.end() &&
          !verifier->second(consumed_states, outputs)) {
        return {false, "", "contract verification failed: " + contract};
      }
    }
  }

  // --- Confidential identities: swap names for one-time keys ---------------
  std::vector<OutputSpec> final_outputs = outputs;
  std::vector<pki::KeyLinkage> linkages;
  if (confidential) {
    for (OutputSpec& output : final_outputs) {
      for (std::string& participant : output.participants) {
        const auto owner = parties_.find(participant);
        if (owner == parties_.end()) continue;  // already a fingerprint
        const crypto::KeyPair onetime = owner->second.onetime_chain->next();
        auto linkage = pki::issue_linkage(ca_, owner->second.certificate,
                                          onetime.public_key(),
                                          network_->clock().now());
        if (!linkage) return {false, "", "linkage issuance failed"};
        const std::string fingerprint = onetime.public_key().fingerprint();
        onetime_owners_[fingerprint] = participant;
        linkages.push_back(*linkage);
        participant = "ot:" + fingerprint;
      }
    }
  }

  // --- Build the transaction Merkle tree -----------------------------------
  std::vector<common::Bytes> leaves;
  common::Writer command;
  command.str(inputs.empty() ? "issue" : "transact");
  command.u64(network_->clock().now());
  command.u64(issue_counter_++);
  leaves.push_back(command.take());
  for (const StateRef& ref : inputs) leaves.push_back(encode_ref(ref));
  const std::size_t first_output_leaf = leaves.size();
  for (const OutputSpec& output : final_outputs) {
    leaves.push_back(encode_output(output));
  }
  std::optional<std::size_t> fact_leaf;
  if (oracle) {
    common::Writer w;
    w.str("fact");
    w.str(oracle->fact_key);
    w.str(oracle->fact_value);
    fact_leaf = leaves.size();
    leaves.push_back(w.take());
  }
  std::vector<common::Bytes> salts;
  salts.reserve(leaves.size());
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    salts.push_back(rng_.next_bytes(16));
  }
  const crypto::MerkleTree tree = crypto::MerkleTree::build(leaves, salts);
  const std::string tx_id = crypto::digest_hex(tree.root()).substr(0, 24);
  const common::BytesView root_msg(tree.root().data(), tree.root().size());

  // --- Gather participant signatures (peer-to-peer) ------------------------
  std::set<std::string> all_participants;
  for (const CordaState& state : consumed_states) {
    for (const std::string& p : state.participants) all_participants.insert(p);
  }
  for (const OutputSpec& output : final_outputs) {
    for (const std::string& p : output.participants) all_participants.insert(p);
  }

  common::Writer full_tx;
  full_tx.varint(leaves.size());
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    full_tx.bytes(leaves[i]);
    full_tx.bytes(salts[i]);
  }
  const common::Bytes full_tx_bytes = full_tx.take();

  std::set<std::string> signer_parties;
  for (const std::string& participant : all_participants) {
    std::string name = participant;
    if (name.starts_with("ot:")) name = name.substr(3);
    Party* signer = signer_of(name, initiator);
    if (signer == nullptr) return {false, tx_id, "unresolvable participant"};
    // Find the actual party name for network addressing.
    const auto owner = onetime_owners_.find(name);
    signer_parties.insert(owner != onetime_owners_.end() ? owner->second
                                                         : name);
  }

  for (const std::string& party : signer_parties) {
    if (party != initiator) {
      network_->send(initiator, party, "corda.sign-request", full_tx_bytes);
    }
    // Each signing participant sees the full transaction.
    auditor().record(party, "tx/" + tx_id + "/data",
                     data_bytes(final_outputs));
    std::uint64_t party_bytes = 0;
    for (const std::string& p : all_participants) party_bytes += p.size();
    auditor().record(party, "tx/" + tx_id + "/parties", party_bytes,
                     /*plaintext=*/!confidential);
    // Share linkage certificates with co-participants only.
    for (const pki::KeyLinkage& linkage : linkages) {
      parties_.at(party).known_linkages
          [linkage.certificate.subject_key.fingerprint()] =
          linkage.identity();
    }
  }

  std::vector<crypto::Signature> signatures;
  for (const std::string& party : signer_parties) {
    signatures.push_back(parties_.at(party).keypair.sign(root_msg));
  }

  // --- Oracle attestation over a tear-off -----------------------------------
  if (oracle) {
    const auto oracle_it = oracles_.find(oracle->oracle);
    if (oracle_it == oracles_.end()) return {false, tx_id, "unknown oracle"};
    const crypto::TearOff filtered =
        crypto::TearOff::create(leaves, salts, {*fact_leaf});
    network_->send(initiator, oracle->oracle, "corda.oracle-request",
                   filtered.encode());
    // Oracle sees only the fact component; the rest is torn off.
    auditor().record(oracle->oracle, "tx/" + tx_id + "/fact",
                     oracle->fact_key.size() + oracle->fact_value.size());
    auditor().record(oracle->oracle, "tx/" + tx_id + "/data",
                     data_bytes(final_outputs), /*plaintext=*/false);
    if (!filtered.verify_against(tree.root())) {
      return {false, tx_id, "tear-off verification failed"};
    }
    const auto fact = oracle_it->second.facts.find(oracle->fact_key);
    if (fact == oracle_it->second.facts.end() ||
        fact->second != oracle->fact_value) {
      return {false, tx_id, "oracle refused: fact mismatch"};
    }
    signatures.push_back(oracle_it->second.keypair.sign(root_msg));
  }

  // --- Notarization ----------------------------------------------------------
  for (const StateRef& ref : inputs) {
    if (notary.consumed.contains(ref)) {
      return {false, tx_id, "double spend rejected by notary"};
    }
  }
  if (notary.validating) {
    network_->send(initiator, notary_name, "corda.notarize", full_tx_bytes);
    auditor().record(notary_name, "tx/" + tx_id + "/data",
                     data_bytes(final_outputs));
  } else {
    // Non-validating: only the input refs are revealed.
    std::vector<std::size_t> visible;
    for (std::size_t i = 1; i <= inputs.size(); ++i) visible.push_back(i);
    const crypto::TearOff filtered =
        crypto::TearOff::create(leaves, salts, visible);
    network_->send(initiator, notary_name, "corda.notarize",
                   filtered.encode());
    auditor().record(notary_name, "tx/" + tx_id + "/data",
                     data_bytes(final_outputs), /*plaintext=*/false);
    if (!filtered.verify_against(tree.root())) {
      return {false, tx_id, "notary tear-off verification failed"};
    }
  }
  for (const StateRef& ref : inputs) notary.consumed.insert(ref);
  ++notary.notarized;
  const crypto::Signature notary_sig = notary.keypair.sign(root_msg);
  signatures.push_back(notary_sig);

  // Record for backchain resolution.
  TxRecord record;
  record.root = tree.root();
  record.inputs = inputs;
  record.notary = notary_name;
  record.notary_signature = notary_sig;
  record.data_bytes = data_bytes(final_outputs);
  record.is_issue = inputs.empty();
  tx_records_[tx_id] = std::move(record);

  // --- Finality: update vaults ------------------------------------------------
  for (const std::string& party : signer_parties) {
    if (party != initiator) {
      network_->send(initiator, party, "corda.finalize", full_tx_bytes);
    }
    Party& p = parties_.at(party);
    for (const StateRef& ref : inputs) p.vault.erase(ref);
  }
  for (std::size_t i = 0; i < final_outputs.size(); ++i) {
    CordaState state;
    state.ref = StateRef{tx_id,
                         static_cast<std::uint32_t>(first_output_leaf + i)};
    state.contract = final_outputs[i].contract;
    state.data = final_outputs[i].data;
    state.participants = final_outputs[i].participants;
    for (const std::string& participant : state.participants) {
      std::string name = participant;
      if (name.starts_with("ot:")) {
        const auto owner = onetime_owners_.find(name.substr(3));
        if (owner == onetime_owners_.end()) continue;
        name = owner->second;
      }
      parties_.at(name).vault[state.ref] = state;
    }
  }
  network_->run();

  return {true, tx_id, ""};
}

CordaNetwork::BackchainResult CordaNetwork::resolve_backchain(
    const std::string& party, const StateRef& ref) {
  BackchainResult result;
  if (!parties_.contains(party)) {
    result.reason = "unknown party";
    return result;
  }
  std::vector<StateRef> frontier = {ref};
  std::set<std::string> visited;
  while (!frontier.empty()) {
    const StateRef current = frontier.back();
    frontier.pop_back();
    if (!visited.insert(current.tx_id).second) continue;

    const auto it = tx_records_.find(current.tx_id);
    if (it == tx_records_.end()) {
      result.reason = "missing ancestor transaction " + current.tx_id;
      result.valid = false;
      return result;
    }
    const TxRecord& record = it->second;

    // Verify the notary's uniqueness attestation over the Merkle root,
    // and that the record is self-consistent (tx id derives from root).
    const auto notary = notaries_.find(record.notary);
    if (notary == notaries_.end() ||
        !crypto::verify(*group_, notary->second.keypair.public_key(),
                        common::BytesView(record.root.data(),
                                          record.root.size()),
                        record.notary_signature) ||
        crypto::digest_hex(record.root).substr(0, 24) != current.tx_id) {
      result.reason = "invalid notarization on " + current.tx_id;
      result.valid = false;
      return result;
    }

    // The resolving party receives (and therefore observes) the full
    // ancestor transaction — the backchain privacy trade-off.
    auditor().record(party, "tx/" + current.tx_id + "/data",
                     record.data_bytes);
    result.tx_ids.push_back(current.tx_id);
    ++result.depth;
    for (const StateRef& input : record.inputs) frontier.push_back(input);
  }
  result.valid = true;
  return result;
}

std::vector<CordaState> CordaNetwork::vault(const std::string& party) const {
  std::vector<CordaState> out;
  const auto it = parties_.find(party);
  if (it == parties_.end()) return out;
  out.reserve(it->second.vault.size());
  for (const auto& [ref, state] : it->second.vault) out.push_back(state);
  return out;
}

std::optional<std::string> CordaNetwork::resolve_confidential(
    const std::string& party, const std::string& fingerprint) const {
  const auto it = parties_.find(party);
  if (it == parties_.end()) return std::nullopt;
  const auto linkage = it->second.known_linkages.find(fingerprint);
  if (linkage == it->second.known_linkages.end()) return std::nullopt;
  return linkage->second;
}

std::uint64_t CordaNetwork::notarized_count(const std::string& notary) const {
  const auto it = notaries_.find(notary);
  return it == notaries_.end() ? 0 : it->second.notarized;
}

}  // namespace veil::corda
