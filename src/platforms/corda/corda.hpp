// Corda-style platform model (§5).
//
// Reproduced mechanics:
//  * Peer-to-peer transactions — no broadcast; a transaction travels only
//    to its participants and the notary. Privacy of interaction and data
//    confidentiality follow from dissemination, not encryption.
//  * Notary — uniqueness consensus over consumed input states. A
//    NON-VALIDATING notary sees only input refs and the transaction root
//    (metadata); a VALIDATING notary sees the full transaction — the
//    confidentiality/assurance trade-off the paper discusses under
//    "Ordering transactions".
//  * One-time public keys — output participants can be listed as
//    pseudonymous keys derived from a master secret; the CA-backed
//    linkage certificate is shared only with counterparties.
//  * Merkle tear-offs — transactions are Merkle trees over components;
//    an oracle asked to attest a fact receives a filtered transaction
//    with every other component torn off, and signs the root.
//  * Flow logic off-platform — which parties must sign is decided by the
//    initiating flow; on-ledger "contract" code only names the rules
//    (business logic never crosses the wire).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "audit/evidence.hpp"
#include "crypto/batch_verify.hpp"
#include "crypto/merkle.hpp"
#include "crypto/signature.hpp"
#include "ledger/wal.hpp"
#include "net/network.hpp"
#include "net/overload.hpp"
#include "net/reliable.hpp"
#include "pki/membership.hpp"
#include "pki/onetime.hpp"

namespace veil::corda {

struct StateRef {
  std::string tx_id;
  std::uint32_t index = 0;

  auto operator<=>(const StateRef&) const = default;
};

struct CordaState {
  StateRef ref;
  std::string contract;
  common::Bytes data;
  /// Party names, or one-time key fingerprints when confidential
  /// identities are in use.
  std::vector<std::string> participants;
};

struct FlowResult {
  bool success = false;
  std::string tx_id;
  std::string reason;
};

struct OutputSpec {
  std::string contract;
  common::Bytes data;
  std::vector<std::string> participants;
};

/// Ask an oracle to attest that `fact_key` has `fact_value` as part of
/// the transaction, revealing only that component to it.
struct OracleRequest {
  std::string oracle;
  std::string fact_key;
  std::string fact_value;
};

class CordaNetwork {
 public:
  /// `vault_snapshot_interval` (in WAL records, 0 = disabled) bounds each
  /// party's vault WAL: once the log holds that many records it is
  /// compacted behind a single vault-snapshot checkpoint record. Vaults
  /// are per-party private, so — unlike Fabric/Quorum — there is no wire
  /// snapshot transfer: the checkpoint only ever serves the party's own
  /// crash recovery (docs/fault_model.md "Recovery tier").
  CordaNetwork(net::Transport& network, const crypto::Group& group,
               common::Rng& rng, std::uint64_t vault_snapshot_interval = 0);

  void add_party(const std::string& name);
  void add_notary(const std::string& name, bool validating);

  /// Contract verification rule (§5: "The on-chain contract is used to
  /// verify..."): every signing participant — and a VALIDATING notary —
  /// runs the verifier for each contract touched by a transaction.
  /// Returning false vetoes the transaction.
  using ContractVerifier = std::function<bool(
      const std::vector<CordaState>& inputs,
      const std::vector<OutputSpec>& outputs)>;
  void register_contract(const std::string& contract,
                         ContractVerifier verifier);
  /// An oracle attests facts from its feed (key -> value).
  void add_oracle(const std::string& name,
                  std::map<std::string, std::string> facts);

  /// Issue a fresh state onto the ledger (notarized, no inputs).
  FlowResult issue(const std::string& party, const std::string& contract,
                   common::Bytes data,
                   const std::vector<std::string>& participants,
                   const std::string& notary);

  /// Consume `inputs`, produce `outputs`; gathers signatures from every
  /// participant, the oracle (if requested) and the notary.
  /// With `confidential=true` output participants are rewritten to fresh
  /// one-time keys; linkage certificates travel only to co-participants.
  FlowResult transact(const std::string& initiator,
                      const std::vector<StateRef>& inputs,
                      const std::vector<OutputSpec>& outputs,
                      const std::string& notary, bool confidential = false,
                      const std::optional<OracleRequest>& oracle = {});

  /// One flow for the pipelined wave API.
  struct TransactRequest {
    std::string initiator;
    std::vector<StateRef> inputs;
    std::vector<OutputSpec> outputs;
    std::string notary;
    bool confidential = false;
    std::optional<OracleRequest> oracle;
    /// Absolute deadline for this flow (0 = none; default TTL applies).
    common::SimTime deadline_us = 0;
  };

  /// Pipelined flows: requests run in waves of `pipeline_depth`. Within a
  /// wave the Merkle builds and initiator signatures run as pool tasks,
  /// and each message round (sign, oracle, notarize, finalize) is batched
  /// — one network drain serves the whole wave instead of one per flow.
  /// All randomness is drawn serially in submission order, so outcomes
  /// are deterministic at any thread count; at depth 1 the per-flow
  /// operation order matches transact(). Two flows in one wave consuming
  /// the same input are arbitrated by the notary exactly like concurrent
  /// submitters — the second fails, and with detection on the refusal
  /// convicts the initiator — so callers should keep a wave's inputs
  /// disjoint.
  std::vector<FlowResult> transact_many(
      const std::vector<TransactRequest>& requests,
      std::size_t pipeline_depth = 8);

  /// Unconsumed states visible to `party`.
  std::vector<CordaState> vault(const std::string& party) const;

  /// Backchain resolution: when a party receives a state, it must verify
  /// the full provenance chain back to issuance (every ancestor
  /// transaction's notary signature over its Merkle root). Returns the
  /// verified chain depth and the ancestor tx ids.
  ///
  /// Reproduces Corda's documented privacy trade-off: resolution hands
  /// the resolving party every ancestor transaction, so the new owner
  /// learns the asset's full history — recorded in the leakage auditor.
  struct BackchainResult {
    bool valid = false;
    std::size_t depth = 0;
    std::vector<std::string> tx_ids;
    std::string reason;
  };
  BackchainResult resolve_backchain(const std::string& party,
                                    const StateRef& ref);

  /// Route backchain notarization checks through the batched RLC kernel
  /// (default) or the per-item path (differential testing). Either way an
  /// ancestor verified once is never re-verified: notarization validity
  /// is party-independent (same immutable record, same notary key), so
  /// the verified set is shared network-wide — Corda's mirror of the
  /// validate-once mempool token.
  void set_batch_verify(bool on = true) { batch_verify_ = on; }
  const crypto::BatchVerifier::Stats& batch_verify_stats() const {
    return batch_verifier_.stats();
  }
  /// Ancestors whose notarization has been verified (validate-once
  /// cache size — tests assert re-resolution does no signature work).
  std::size_t verified_ancestor_count() const {
    return verified_ancestors_.size();
  }

  /// Resolve a one-time key fingerprint to an identity — only succeeds
  /// for parties that were handed the linkage certificate.
  std::optional<std::string> resolve_confidential(
      const std::string& party, const std::string& fingerprint) const;

  net::LeakageAuditor& auditor() { return network_->auditor(); }
  net::ReliableChannel& reliable() { return channel_; }
  const crypto::Group& group() const { return *group_; }

  std::uint64_t notarized_count(const std::string& notary) const;

  // ---- Byzantine tier (docs/fault_model.md "Byzantine tier") ---------------

  /// Byzantine notary: `name` stops enforcing uniqueness and will sign
  /// conflicting consumes of the same input state — the active version of
  /// the paper's observation that the notary is the single trust anchor
  /// for double-spend prevention.
  void set_byzantine_notary(const std::string& name);

  /// Byzantine client: re-spend a state the initiator has ALREADY
  /// consumed. The initiator's vault no longer holds it, but the party
  /// retains the state bytes (it once owned them) and rebuilds the
  /// transaction from that archive, bypassing the honest vault check. An
  /// honest notary refuses; a Byzantine notary signs the conflict.
  FlowResult byzantine_respend(const std::string& initiator,
                               const StateRef& spent_ref,
                               const std::vector<OutputSpec>& outputs,
                               const std::string& notary);

  /// Detection: every party keeps a durable log of consumes it has
  /// witnessed (WAL-backed). A finalized transaction whose notarized
  /// input conflicts with that log is proof the notary equivocated — the
  /// party refuses finality (fail closed), records signed
  /// audit::Evidence with BOTH notary attestations, and quarantines the
  /// notary. An honest notary's double-spend refusal likewise produces a
  /// signed DoubleSpendAttempt record against the submitting client.
  /// Off by default — the paper's documented trust model.
  void enable_detection(bool on = true) { detection_ = on; }

  audit::EvidenceLog& evidence() { return evidence_; }
  const audit::EvidenceLog& evidence() const { return evidence_; }

  // ---- Overload tier (docs/fault_model.md "Overload tier") -----------------

  /// Default TTL stamped on flows at prepare time (deadline = prepare
  /// time + ttl). An expired flow is refused before its signature round,
  /// and the notary refuses expired notarization requests ("expired at
  /// ordering"). 0 = no deadline.
  void set_default_ttl(common::SimTime ttl_us) { default_ttl_us_ = ttl_us; }
  /// Hard bound on concurrently pending flows; at capacity new flows get
  /// a busy FlowResult instead of growing the table (0 = unbounded).
  void set_pending_capacity(std::size_t capacity) {
    pending_capacity_ = capacity;
  }
  /// Route flow messaging through a circuit breaker fed by delivery
  /// outcomes (acks close, exhausted retries open).
  void enable_circuit_breaker(net::BreakerConfig config = {}) {
    breaker_ = net::CircuitBreaker(config);
    channel_.set_breaker(&breaker_);
  }
  net::CircuitBreaker& breaker() { return breaker_; }
  std::size_t pending_depth() const { return pending_.size(); }

  // ---- Recovery tier (docs/fault_model.md "Recovery tier") -----------------

  /// Force a vault checkpoint now (interval compaction runs automatically
  /// when configured).
  void compact_vault(const std::string& party);

  /// Canonical digest over a party's durable recovery surface (vault +
  /// linkages + consume log) — the bit-identical-rejoin assertion handle.
  crypto::Digest vault_digest(const std::string& party) const;

  const ledger::WriteAheadLog& party_wal(const std::string& party) const {
    return parties_.at(party).wal;
  }
  /// WAL records replayed by the most recent restart of `party` — the
  /// delta-not-history assertion handle (a checkpointed party replays
  /// snapshot + tail, never its full flow history).
  std::uint64_t wal_records_replayed(const std::string& party) const {
    return parties_.at(party).records_replayed;
  }
  std::uint64_t vault_checkpoints_taken(const std::string& party) const {
    return parties_.at(party).checkpoints_taken;
  }

 private:
  struct Party {
    crypto::KeyPair keypair;
    pki::Certificate certificate;
    std::unique_ptr<pki::OneTimeKeyChain> onetime_chain;
    std::map<StateRef, CordaState> vault;
    // fingerprint -> identity, learned via linkage certs.
    std::map<std::string, std::string> known_linkages;
    /// Durable vault log: add/consume/linkage records survive a
    /// crash-stop and rebuild the vault on restart.
    ledger::WriteAheadLog wal;
    /// States this party once held and has since consumed — the bytes a
    /// Byzantine re-spend is rebuilt from. Volatile attacker tooling.
    std::map<StateRef, CordaState> spent;
    /// Every consume this party has witnessed at finality (own inputs
    /// AND counterparties'), ref -> consuming tx id. Durable
    /// (kWalConsumeSeen); this is the history the notary-equivocation
    /// cross-check runs against.
    std::map<StateRef, std::string> consume_log;
    /// Records replayed by the most recent restart (snapshot counts as 1).
    std::uint64_t records_replayed = 0;
    std::uint64_t checkpoints_taken = 0;
    /// Cached canonical vault snapshot (the vault_digest() preimage and
    /// kWalVaultSnapshot payload). Every vault mutation passes through
    /// vault_wal_append / the crash-restart hooks, which invalidate it —
    /// so repeated digest/compaction calls between mutations stop
    /// re-encoding an unchanged vault (O(1) instead of O(vault)).
    mutable common::Bytes snapshot_cache;
    mutable bool snapshot_cache_valid = false;
  };

  struct Notary {
    crypto::KeyPair keypair;
    bool validating = false;
    /// Consumed input refs -> the tx id that consumed them (the first
    /// half of a double-spend refusal's proof).
    std::map<StateRef, std::string> consumed;
    std::uint64_t notarized = 0;
    /// A Byzantine notary skips the uniqueness check entirely.
    bool byzantine = false;
  };

  struct Oracle {
    crypto::KeyPair keypair;
    std::map<std::string, std::string> facts;
  };

  /// Immutable record of a notarized transaction, kept for backchain
  /// resolution.
  struct TxRecord {
    crypto::Digest root{};
    std::vector<StateRef> inputs;
    std::string notary;
    crypto::Signature notary_signature;  // over the Merkle root
    std::uint64_t data_bytes = 0;        // output payload volume
    bool is_issue = false;
  };

  /// The party that controls signing for `participant` (a real name or a
  /// fingerprint the initiator knows the owner of).
  Party* signer_of(const std::string& participant,
                   const std::string& initiator);

  /// In-flight flow context, keyed by tx id. Handlers look the flow up
  /// when a request arrives; the wire still carries the real payload, so
  /// the leakage auditor sees honest byte counts.
  struct PendingFlow {
    std::string tx_id;
    std::string initiator;
    std::string notary;
    crypto::Digest root{};
    std::vector<StateRef> inputs;
    std::vector<OutputSpec> outputs;  // confidential identities applied
    std::size_t first_output_leaf = 0;
    std::vector<pki::KeyLinkage> linkages;
    bool confidential = false;
    std::uint64_t out_bytes = 0;
    std::uint64_t parties_bytes = 0;
    std::string fact_key;
    std::string fact_value;
    // Collected responses (each arrives only if the network delivers it).
    std::map<std::string, crypto::Signature> signatures;
    std::optional<crypto::Signature> oracle_signature;
    std::optional<crypto::Signature> notary_signature;
    std::string refusal;  // oracle/notary rejection reason
    std::set<std::string> finalize_acks;
    common::SimTime deadline_us = 0;  // 0 = none
  };

  /// Everything transact() does before the message rounds: validation,
  /// input resolution, contract verification, confidential identities,
  /// Merkle leaves + salts, signer resolution. Every rng draw happens
  /// here, in submission order — the stage-B pool tasks are pure.
  struct PreparedFlow {
    bool ok = false;
    std::string error;  // failure reason when !ok
    /// Signer resolution failed — the error needs the tx id, which only
    /// exists once stage B has produced the root.
    bool unresolvable = false;
    std::string initiator;
    std::string notary;
    bool confidential = false;
    std::optional<OracleRequest> oracle;
    std::vector<StateRef> inputs;
    std::vector<OutputSpec> outputs;  // confidential identities applied
    std::vector<pki::KeyLinkage> linkages;
    std::vector<common::Bytes> leaves;
    std::vector<common::Bytes> salts;
    std::size_t first_output_leaf = 0;
    std::optional<std::size_t> fact_leaf;
    std::set<std::string> signer_parties;
    common::Bytes full_tx_bytes;
    std::uint64_t out_bytes = 0;
    std::uint64_t parties_bytes = 0;
    // Stage-B results (pure functions of the fields above).
    crypto::Digest root{};
    crypto::Signature initiator_signature;
    common::SimTime deadline_us = 0;
    // Stage-C progress.
    std::string tx_id;
    bool live = false;  // registered in pending_ and still progressing
  };
  PreparedFlow prepare_flow(const TransactRequest& request);

  void on_party_message(const std::string& self, const net::Message& msg);
  void on_notary_message(const std::string& self, const net::Message& msg);
  void on_oracle_message(const std::string& self, const net::Message& msg);
  /// Record what a signing participant observes by receiving the full tx.
  void observe_transaction(const std::string& self, const PendingFlow& flow);
  /// Install (and WAL-log) linkage certificates shared with `self`.
  void install_linkages(const std::string& self, const PendingFlow& flow);
  /// Consume inputs / store outputs in `self`'s vault, WAL-first.
  /// Returns false when the detection cross-check refuses finality: a
  /// notarized input conflicts with `self`'s own consume log, which is
  /// proof of notary equivocation.
  bool apply_finality(const std::string& self, const PendingFlow& flow);
  /// Record evidence (signed by `reporter`, a party or notary) and
  /// quarantine `quarantine_principal` (skipped when empty).
  void convict(audit::Misbehavior kind, const std::string& accused,
               const std::string& reporter, std::string detail,
               common::Bytes proof_a, common::Bytes proof_b,
               const std::string& quarantine_principal);
  void on_party_crash(const std::string& name);
  void on_party_restart(const std::string& name);
  /// Append one vault WAL record (WAL-first: the caller mutates the
  /// vault map after).
  void vault_wal_append(Party& party, std::uint8_t type,
                        common::BytesView payload);
  /// Interval compaction, run only at the END of a vault mutation (when
  /// the map reflects every appended record — never mid-flow, where the
  /// snapshot would miss the record it erases).
  void maybe_compact_vault(Party& party);
  /// Canonical encoding of a party's durable recovery surface — the
  /// kWalVaultSnapshot payload and the vault_digest() preimage.
  static common::Bytes encode_vault_snapshot(const Party& party);
  /// Cached form of encode_vault_snapshot: rebuilt only after a vault
  /// mutation (see Party::snapshot_cache).
  static const common::Bytes& vault_snapshot(const Party& party);
  void compact_vault_locked(Party& party);

  net::Transport* network_;
  const crypto::Group* group_;
  common::Rng rng_;
  pki::CertificateAuthority ca_;
  /// Flow sessions ride the reliable channel: lost sign-requests or
  /// notarization messages are retransmitted; a dead counterparty makes
  /// the flow fail closed instead of hanging half-finished.
  net::ReliableChannel channel_;
  std::map<std::string, PendingFlow> pending_;
  std::map<std::string, Party> parties_;
  std::map<std::string, Notary> notaries_;
  std::map<std::string, Oracle> oracles_;
  // fingerprint -> owning party (network-internal bookkeeping only; not
  // exposed to parties without a linkage certificate).
  std::map<std::string, std::string> onetime_owners_;
  std::map<std::string, TxRecord> tx_records_;  // by tx id
  std::map<std::string, ContractVerifier> verifiers_;
  std::uint64_t issue_counter_ = 0;
  /// Vault WAL compaction threshold in records; 0 disables.
  std::uint64_t vault_snapshot_interval_ = 0;
  bool detection_ = false;
  /// While set, transact() may resolve inputs from the initiator's spent
  /// archive — the byzantine_respend() bypass.
  bool respend_ = false;
  bool batch_verify_ = true;
  // Overload tier: volatile refusal machinery, never WAL-logged.
  common::SimTime default_ttl_us_ = 0;
  std::size_t pending_capacity_ = 0;
  net::CircuitBreaker breaker_;
  crypto::BatchVerifier batch_verifier_;
  /// Ancestor tx ids whose notarization has already been verified
  /// (validate-once: immutable records never need a second check).
  std::set<std::string> verified_ancestors_;
  audit::EvidenceLog evidence_;
};

}  // namespace veil::corda
