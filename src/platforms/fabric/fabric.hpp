// Hyperledger-Fabric-style platform model (§5).
//
// Reproduced mechanics:
//  * Channels — a separate ledger per subset of orgs; non-members hold no
//    replica and never observe channel traffic. Channel membership itself
//    is not revealed to the wider network.
//  * Endorse -> order -> validate — clients collect endorsements
//    according to a per-chaincode endorsement policy, the ordering
//    service sequences endorsed transactions into blocks, and every
//    member peer independently validates (policy + MVCC) before commit.
//  * Chaincode confidentiality — code is visible only on peers where it
//    is installed (ContractRegistry accounting).
//  * Ordering-service visibility — a SHARED orderer observes every
//    transaction on every channel (the §3.4 caveat); channels can instead
//    run a PRIVATE orderer operated by a member.
//  * Private Data Collections — data disseminated only to collection
//    members, hash-on-ledger; the transaction still lists the collection
//    members (the paper's caveat on PDC privacy).
//  * Idemix — clients may transact under anonymous credentials; the
//    transaction then carries an unlinkable pseudonym instead of the
//    client identity.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "audit/evidence.hpp"
#include "contracts/endorsement.hpp"
#include "contracts/engine.hpp"
#include "contracts/registry.hpp"
#include "crypto/batch_verify.hpp"
#include "ledger/admission.hpp"
#include "ledger/chain.hpp"
#include "ledger/mempool.hpp"
#include "ledger/ordering.hpp"
#include "ledger/snapshot.hpp"
#include "ledger/state.hpp"
#include "ledger/transfer.hpp"
#include "ledger/triesync.hpp"
#include "ledger/wal.hpp"
#include "net/network.hpp"
#include "net/overload.hpp"
#include "net/reliable.hpp"
#include "offchain/pdc.hpp"
#include "pki/idemix.hpp"
#include "pki/membership.hpp"

namespace veil::fabric {

struct FabricConfig {
  /// Shared: one orderer operated by "orderer-org" sequences every
  /// channel. Private: each channel's first member operates its own.
  ledger::OrdererDeployment orderer_deployment =
      ledger::OrdererDeployment::Shared;
  std::size_t block_size = 8;
  bool expose_member_directory = true;
  /// Per-peer checkpoint policy (interval 0 disables — the PR-2
  /// behavior: WAL grows without bound, every rejoin replays all).
  ledger::SnapshotConfig snapshots;
  /// Admission pool: transactions are signature-checked once on the way
  /// in and carry a ValidationToken that block commit consults instead
  /// of re-verifying (ledger/mempool.hpp).
  ledger::MempoolConfig mempool;
  /// Verify endorsement signatures through the batched
  /// random-linear-combination kernel (crypto/batch_verify.hpp) instead
  /// of one exponentiation pair per signature. Results are bit-identical;
  /// false keeps the per-item path for differential testing.
  bool batch_verify = true;

  // ---- Overload tier (docs/fault_model.md "Overload tier") ----------------
  /// CoDel-style admission controller fronting the mempool: sheds fresh
  /// submissions by queue delay before any endorsement work is spent,
  /// and (with much more slack) already-endorsed work before ordering.
  /// Off by default — closed-loop behavior is unchanged.
  bool admission_control = false;
  ledger::AdmissionConfig admission;
  /// TTL stamped at submission when the request carries no explicit
  /// deadline (0 = no deadline). Every later stage drops expired work.
  common::SimTime default_ttl_us = 0;
  /// Bound on each orderer's per-channel pending deque (0 = unbounded);
  /// submissions over it get a busy receipt instead of silent growth.
  std::size_t orderer_pending_limit = 0;
  /// Gate the reliable channel's sends through a circuit breaker fed by
  /// ack/retry outcomes, and skip Open donors during rejoin failover.
  bool circuit_breaker = false;
  net::BreakerConfig breaker;
};

struct TxReceipt {
  bool committed = false;
  std::string tx_id;
  std::string reason;
};

/// Optional private-data attachment for a submission.
struct PrivatePayload {
  std::string collection;
  std::string key;
  common::Bytes value;
};

class FabricNetwork {
 public:
  FabricNetwork(net::Transport& network, const crypto::Group& group,
                common::Rng& rng, FabricConfig config = {});

  /// Onboard an organization: issues an identity certificate, registers
  /// with the membership service and attaches a peer to the network.
  void add_org(const std::string& org);

  /// Grant an org an Idemix attribute class (on its identity cert) and
  /// obtain an anonymous credential for it.
  std::optional<pki::IdemixCredential> issue_idemix_credential(
      const std::string& org, const std::string& attribute_class);

  /// Create a channel among `members`. Throws if any member is unknown.
  void create_channel(const std::string& channel,
                      const std::set<std::string>& members);

  /// How a late joiner's peer bootstraps:
  ///  * Replay   — receive and validate every historical block; the
  ///    joiner sees the channel's FULL transaction history.
  ///  * Snapshot — receive a state snapshot plus a chain checkpoint from
  ///    an existing member; the joiner sees current state but NO
  ///    historical transactions (the privacy-preserving option).
  enum class JoinMode { Replay, Snapshot };

  /// Add an org to an existing channel.
  void join_channel(const std::string& channel, const std::string& org,
                    JoinMode mode = JoinMode::Replay);

  /// Remove an org. Its peer stops receiving new blocks; the replica it
  /// already holds is NOT clawed back (data, once shared, is out).
  void leave_channel(const std::string& channel, const std::string& org);

  /// Install chaincode on one org's peer (code becomes visible there).
  void install_chaincode(const std::string& channel, const std::string& org,
                         std::shared_ptr<contracts::SmartContract> chaincode,
                         contracts::EndorsementPolicy policy);

  /// Upgrade chaincode on one org's peer. Until every endorsing org has
  /// upgraded, submissions fail with a version mismatch — the in-built
  /// version control the paper's §3.3 criterion (2) refers to.
  void upgrade_chaincode(const std::string& channel, const std::string& org,
                         std::shared_ptr<contracts::SmartContract> chaincode);

  /// Version of the chaincode installed on an org's peer, if any.
  std::optional<std::uint32_t> chaincode_version(
      const std::string& org, const std::string& chaincode) const;

  /// Define a private data collection on a channel.
  void define_collection(const std::string& channel,
                         offchain::CollectionConfig config);

  /// Full transaction flow. `client_org` drives the submission; if
  /// `idemix` is set the transaction carries the pseudonym instead of the
  /// org name. Returns the commit outcome after ordering and validation.
  TxReceipt submit(const std::string& channel, const std::string& client_org,
                   const std::string& chaincode, const std::string& action,
                   common::BytesView args,
                   const std::optional<PrivatePayload>& private_data = {},
                   const pki::IdemixCredential* idemix = nullptr);

  /// One submission for the pipelined batch flow.
  struct SubmitRequest {
    std::string channel;
    std::string client_org;
    std::string chaincode;
    std::string action;
    common::Bytes args;
    std::optional<PrivatePayload> private_data;
    const pki::IdemixCredential* idemix = nullptr;
    /// When the work arrived at the client (0 = now). Open-loop drivers
    /// set this to the scheduled arrival so admission control sees true
    /// queue delay, not just in-pipeline delay.
    common::SimTime arrival_us = 0;
    /// Absolute deadline (0 = none; config.default_ttl_us may stamp one).
    common::SimTime deadline_us = 0;
  };

  /// Pipelined endorse -> order -> validate over many submissions.
  /// Requests are processed in waves of `pipeline_depth`: endorsement
  /// signing for the whole wave fans out as pool tasks while earlier
  /// requests are already being ordered and validated, and admission
  /// verification batches every endorsement of the wave into one
  /// combined check. Partial blocks are flushed once at the end (submit()
  /// flushes per call). With VEIL_THREADS=1 every task runs inline and
  /// the transcript is bit-identical to the multi-threaded run.
  std::vector<TxReceipt> submit_many(const std::vector<SubmitRequest>& requests,
                                     std::size_t pipeline_depth = 8);

  /// Member-only access to an org's channel replica.
  const ledger::WorldState& state(const std::string& channel,
                                  const std::string& org) const;
  const ledger::Chain& chain(const std::string& channel,
                             const std::string& org) const;

  /// Authenticated state root of one org's replica of `channel` (the
  /// incremental trie root; member-only, same access rule as state()).
  crypto::Digest state_root(const std::string& channel,
                            const std::string& org) const;
  /// Deployment-wide accumulator over every channel `org` holds a
  /// replica of, folded with ledger::compose_roots over the per-channel
  /// (name, height, root) triples — one digest attesting the org's whole
  /// multi-channel view, mirroring ShardMap::composite_root().
  crypto::Digest composite_state_root(const std::string& org) const;

  /// Private-data read as an org (nullopt when not a collection member).
  std::optional<common::Bytes> read_private(const std::string& channel,
                                            const std::string& collection,
                                            const std::string& key,
                                            const std::string& org) const;

  bool is_channel_member(const std::string& channel,
                         const std::string& org) const;

  /// Delivery-service seek: every live member peer that missed block
  /// deliveries (loss, partition, give-up after bounded retries) replays
  /// the orderer's log up to the current height. Crashed peers catch up
  /// on restart instead.
  void resync(const std::string& channel);

  // ---- Recovery tier (docs/fault_model.md "Recovery tier") -----------------

  /// Snapshot rejoin for one lagging live member peer: fetch the nearest
  /// checkpoint from a fellow member over the wire (chunks verified
  /// against the offered root, the root confirmed by a quorum of member
  /// checkpoints and the sealed delivery log), install it, then replay
  /// only the post-checkpoint delta. Falls back to plain delta replay
  /// when no member holds a newer checkpoint. `donor_orgs` overrides the
  /// candidate order (tests put the Byzantine offerer first).
  void rejoin(const std::string& channel, const std::string& org,
              std::vector<std::string> donor_orgs = {});

  /// Re-drive a rejoin stalled by message loss beyond the reliable
  /// channel's retry budget (resumes from the verified chunk cursor).
  void resume_rejoin(const std::string& channel, const std::string& org);

  /// Delta rejoin for a lagging live member peer: instead of shipping the
  /// whole checkpoint body, fetch only the content-addressed trie nodes
  /// the joiner's own state lacks (ledger/triesync.hpp). Root confirmed
  /// by the member vote quorum + sealed delivery log, every node hash-
  /// verified on arrival, prior subtrees reused by hash. Bytes on the
  /// wire ~ O(keys touched since the joiner's state), not O(state).
  void rejoin_delta(const std::string& channel, const std::string& org,
                    std::vector<std::string> donor_orgs = {});

  /// Re-drive a stalled delta rejoin (verified nodes are kept).
  void resume_rejoin_delta(const std::string& channel, const std::string& org);

  /// Cost report of the last completed delta rejoin (tests/bench assert
  /// delta-vs-full byte accounting on it).
  const ledger::TrieSync::Report& last_delta_report() const {
    return last_delta_report_;
  }
  const ledger::TrieSyncStats& triesync_stats() const {
    return triesync_.stats();
  }

  /// Scripted snapshot adversary: when `org`'s peer is asked to donate a
  /// checkpoint it serves a forgery instead.
  enum class SnapshotAttack {
    TamperChunk,     // honest header, one flipped byte in the body
    EquivocateRoot,  // self-consistent header over a tampered state
  };
  void set_byzantine_snapshot_offerer(const std::string& org,
                                      SnapshotAttack attack);

  std::uint64_t blocks_applied(const std::string& channel,
                               const std::string& org) const;
  const ledger::SnapshotStore& snapshot_store(const std::string& channel,
                                              const std::string& org) const;
  const ledger::WriteAheadLog& peer_wal(const std::string& channel,
                                        const std::string& org) const;
  const ledger::TransferStats& transfer_stats() const {
    return transfer_.stats();
  }
  std::uint64_t sealed_height(const std::string& channel) const {
    return channels_.at(channel).ordered_log.size();
  }

  pki::MembershipService& membership() { return membership_; }
  pki::IdemixIssuer& idemix_issuer() { return idemix_issuer_; }
  net::LeakageAuditor& auditor() { return network_->auditor(); }
  net::ReliableChannel& reliable() { return channel_; }
  const crypto::Group& group() const { return *group_; }

  /// Principal name of the orderer operator for a channel.
  std::string orderer_operator(const std::string& channel) const;

  std::uint64_t committed_tx_count() const { return committed_count_; }

  // ---- Byzantine tier (docs/fault_model.md "Byzantine tier") ---------------

  /// How member peers treat orderer output.
  enum class ValidationMode {
    /// Accept blocks without endorsement re-verification — the trusting
    /// deployment the paper's orderer-visibility caveat warns about. A
    /// tampering orderer rewrites history unnoticed.
    Trusting,
    /// Verify endorsement signatures + policy; invalid transactions are
    /// skipped silently (the default; matches upstream Fabric validation).
    Validate,
    /// Validate, plus endorsement-consistency cross-checks. Misbehavior
    /// produces a signed audit::Evidence record and the convicted
    /// principal is quarantined on the network.
    Detect,
  };
  void set_validation_mode(ValidationMode mode) { validation_mode_ = mode; }

  /// Byzantine orderer: rewrites the first write of every transaction it
  /// orders, rebuilding the block so header/Merkle checks still pass. The
  /// only thing that can catch it is endorsement re-verification.
  void set_byzantine_orderer(bool active) { byzantine_orderer_ = active; }

  /// Byzantine endorser: `org` signs a different write-set every time it
  /// endorses the same proposal (equivocation). With the policy requiring
  /// only `org`, each equivocating endorsement is validly signed.
  void set_byzantine_endorser(const std::string& org) {
    byzantine_endorsers_.insert(org);
  }

  audit::EvidenceLog& evidence() { return evidence_; }
  const audit::EvidenceLog& evidence() const { return evidence_; }

  /// Admission pool (validate-once tokens) and batch-verifier counters.
  const ledger::Mempool& mempool() const { return mempool_; }
  const crypto::BatchVerifier::Stats& batch_verify_stats() const {
    return batch_verifier_.stats();
  }

  /// Overload tier: admission-controller decisions and the circuit
  /// breaker over repeatedly-failing peers.
  const ledger::AdmissionController& admission() const { return admission_; }
  net::CircuitBreaker& breaker() { return breaker_; }
  const net::CircuitBreaker& breaker() const { return breaker_; }

 private:
  struct Org {
    crypto::KeyPair keypair;
    pki::Certificate certificate;
  };

  struct PeerReplica {
    ledger::Chain chain;
    ledger::WorldState state;
    /// Durable log: survives a crash-stop; replayed on restart.
    ledger::WriteAheadLog wal;
    /// Detect-mode endorsement history: proposal-context digest (channel,
    /// chaincode, action, args, reads, endorser) -> (writes digest, full
    /// tx encoding). A deterministic chaincode must produce identical
    /// writes for an identical context, so a second sighting with
    /// different writes is proof of endorser equivocation. Volatile;
    /// rebuilt by WAL replay.
    std::map<std::string, std::pair<crypto::Digest, common::Bytes>>
        endorsements_seen;
    /// Checkpoint driver: seals interval snapshots into the WAL
    /// (compacting it) and keeps the latest resident for state transfer.
    ledger::SnapshotStore snapshots;
    /// Applied-record counter for the rejoin-delta assertions.
    std::uint64_t blocks_applied = 0;
  };

  struct Channel {
    std::set<std::string> members;
    std::map<std::string, PeerReplica> replicas;  // org -> replica
    std::map<std::string, contracts::EndorsementPolicy> policies;
    std::unique_ptr<ledger::OrderingService> private_orderer;
    offchain::PdcManager pdc;
    std::uint64_t block_height = 0;
    /// Every block the orderer has cut, in order — the delivery service
    /// peers seek into when they missed deliveries.
    std::vector<ledger::Block> ordered_log;

    explicit Channel(net::LeakageAuditor& auditor) : pdc(auditor) {}
  };

  /// Everything submit() does before endorsement signing: membership and
  /// version checks, contract execution fan-out, PDC dissemination,
  /// client identity. Serial — it reads and writes shared replica state.
  struct PreparedSubmission {
    bool ok = false;
    TxReceipt error;
    std::string channel;
    ledger::Transaction tx;
    std::vector<std::string> endorsers;
  };
  PreparedSubmission prepare_submission(const SubmitRequest& request);
  /// Admission: verify the attached endorsements (batched) and mint the
  /// transaction's ValidationToken. No-op in Trusting mode.
  void admit_to_mempool(const ledger::Transaction& tx);
  /// Wave admission for submit_many: every endorsement across the wave
  /// joins ONE batched check, so the RLC squaring chain is paid once per
  /// wave instead of once per transaction. No-op in Trusting mode.
  void admit_wave_to_mempool(std::vector<PreparedSubmission>& prepared);
  /// Hand the endorsed transaction to the ordering service and deliver
  /// any blocks it cut. Does NOT flush partial blocks.
  void order_transaction(const std::string& channel_name,
                         ledger::Transaction tx);
  ledger::OrderingService& orderer_for(Channel& channel);
  void deliver_block(const std::string& channel_name,
                     const ledger::Block& block);
  /// Validate and commit one block into one org's replica. `replay` marks
  /// WAL recovery: the block is already durable and was already observed
  /// pre-crash, so it is neither re-logged nor re-recorded in the auditor.
  /// Returns false when Detect-mode validation rejects the whole block
  /// (orderer conviction) — callers must stop seeking past it.
  bool commit_block(const std::string& org, Channel& channel,
                    const ledger::Block& block, bool replay = false);
  /// Record evidence (signed by `reporter_org`) and quarantine
  /// `quarantine_principal` (skipped when empty).
  void convict(audit::Misbehavior kind, const std::string& accused,
               const std::string& reporter_org, std::string detail,
               common::Bytes proof_a, common::Bytes proof_b,
               const std::string& quarantine_principal);
  /// Crash-stop: volatile replica state (chain, world state) is lost; the
  /// WAL is durable and survives.
  void on_crash(const std::string& org);
  /// Restart: rebuild each replica from its WAL (checkpoint + blocks),
  /// then catch up on blocks delivered while down via the delivery log.
  void on_restart(const std::string& org);
  static std::string peer_of(const std::string& org) { return "peer." + org; }
  /// Inverse of peer_of (principal -> org).
  static std::string org_of(const std::string& peer) {
    return peer.rfind("peer.", 0) == 0 ? peer.substr(5) : peer;
  }

  // Transfer-engine callbacks (recovery tier). Scope = channel name,
  // principals = peer names.
  const ledger::Snapshot* provide_snapshot(const std::string& self,
                                           const std::string& scope,
                                           std::uint64_t min_height);
  bool check_offer(const std::string& scope,
                   const ledger::SnapshotHeader& header) const;
  void install_snapshot(const std::string& self, const std::string& scope,
                        const ledger::SnapshotHeader& header,
                        ledger::WorldState state);
  void on_transfer_reject(const std::string& self, const std::string& scope,
                          const std::string& donor,
                          ledger::TransferReject reason,
                          common::BytesView proof_a,
                          common::BytesView proof_b);

  // Delta-sync callbacks (scope = channel, principals = peer names). The
  // reject path is shared with the chunked engine (same taxonomy).
  std::optional<ledger::TrieSync::DonorState> provide_trie(
      const std::string& self, const std::string& scope,
      std::uint64_t min_height);
  void install_delta(const std::string& self, const std::string& scope,
                     std::uint64_t height, const crypto::Digest& tip_hash,
                     ledger::WorldState state,
                     const ledger::TrieSync::Report& report);
  /// Shared rejoin scaffolding: voter/donor selection for `org` on
  /// `channel` (live, unquarantined members; breaker-filtered donors).
  void rejoin_peers(const std::string& channel, const std::string& org,
                    const std::vector<std::string>& donor_orgs,
                    std::vector<net::Principal>& donors,
                    std::vector<net::Principal>& voters) const;
  /// Replay the post-checkpoint delta from the sealed delivery log.
  void replay_tail(const std::string& channel, const std::string& org);

  net::Transport* network_;
  const crypto::Group* group_;
  common::Rng rng_;
  FabricConfig config_;
  pki::CertificateAuthority ca_;
  pki::MembershipService membership_;
  pki::IdemixIssuer idemix_issuer_;
  contracts::ContractRegistry registry_;
  contracts::ExecutionEngine engine_;
  /// All platform traffic rides the reliable channel: at-least-once on the
  /// lossy wire, exactly-once to handlers. Bounded retries keep the
  /// fail-closed behavior on a dead network.
  net::ReliableChannel channel_;
  ledger::SnapshotTransfer transfer_;
  ledger::TrieSync triesync_;
  ledger::TrieSync::Report last_delta_report_;
  std::map<std::string, SnapshotAttack> byz_offerers_;  // by org
  /// Forged snapshots served by scripted adversaries, keyed by
  /// (peer, channel) — the provider returns a stable pointer.
  std::map<std::pair<std::string, std::string>, ledger::Snapshot> forged_;
  /// Forged states for delta-sync adversaries (same key / same reason).
  std::map<std::pair<std::string, std::string>, ledger::WorldState>
      forged_states_;
  std::unique_ptr<ledger::OrderingService> shared_orderer_;
  std::map<std::string, Org> orgs_;
  std::map<std::string, Channel> channels_;
  std::map<std::string, TxReceipt> receipts_;  // by tx id
  std::map<std::string, std::size_t> pdc_acks_;  // dissemination id -> acks
  std::uint64_t pdc_dissemination_seq_ = 0;
  std::uint64_t committed_count_ = 0;
  ValidationMode validation_mode_ = ValidationMode::Validate;
  bool byzantine_orderer_ = false;
  std::set<std::string> byzantine_endorsers_;
  std::uint64_t equivocation_counter_ = 0;
  audit::EvidenceLog evidence_;
  /// Validate-once admission pool. Volatile: any peer crash clears it
  /// (tokens are never WAL-logged), so recovery re-verifies from scratch.
  ledger::Mempool mempool_;
  /// Overload tier: CoDel admission in front of the pool (volatile, like
  /// the pool) and the breaker over repeatedly-failing peers.
  ledger::AdmissionController admission_;
  net::CircuitBreaker breaker_;
  crypto::BatchVerifier batch_verifier_;
};

}  // namespace veil::fabric
