#include "platforms/fabric/fabric.hpp"

#include "common/error.hpp"
#include "common/serialize.hpp"
#include "common/thread_pool.hpp"
#include "ledger/shard.hpp"

namespace veil::fabric {

namespace {
constexpr common::SimTime kCertLifetime = ~common::SimTime{0};

/// Digest identifying one proposal as seen by one endorser: everything a
/// deterministic chaincode's output is a function of (chaincode, action,
/// args, versioned reads), deliberately excluding writes, participants
/// and timestamp. Identical context must mean identical writes.
std::string endorsement_context(const ledger::Transaction& tx,
                                const std::string& endorser) {
  common::Writer w;
  w.str(tx.channel);
  w.str(tx.contract);
  w.str(tx.action);
  w.bytes(tx.payload);
  w.varint(tx.reads.size());
  for (const ledger::ReadAccess& rd : tx.reads) {
    w.str(rd.key);
    w.u64(rd.version);
  }
  w.str(endorser);
  const crypto::Digest d = crypto::sha256(w.data());
  return std::string(d.begin(), d.end());
}

crypto::Digest writes_digest(const ledger::Transaction& tx) {
  common::Writer w;
  w.varint(tx.writes.size());
  for (const ledger::KvWrite& kv : tx.writes) {
    w.str(kv.key);
    w.bytes(kv.value);
    w.boolean(kv.is_delete);
  }
  return crypto::sha256(w.data());
}
}  // namespace

FabricNetwork::FabricNetwork(net::Transport& network,
                             const crypto::Group& group, common::Rng& rng,
                             FabricConfig config)
    : network_(&network),
      group_(&group),
      rng_(rng.fork()),
      config_(config),
      ca_("fabric-ca", group, rng_),
      membership_(ca_, config.expose_member_directory),
      idemix_issuer_(ca_),
      registry_(network.auditor()),
      engine_(registry_),
      channel_(network),
      transfer_(channel_,
                ledger::SnapshotTransfer::Callbacks{
                    .provider =
                        [this](const net::Principal& self,
                               const std::string& scope,
                               std::uint64_t min_height) {
                          return provide_snapshot(self, scope, min_height);
                        },
                    .offer_check =
                        [this](const net::Principal&, const std::string& scope,
                               const ledger::SnapshotHeader& header) {
                          return check_offer(scope, header);
                        },
                    .on_complete =
                        [this](const net::Principal& self,
                               const std::string& scope,
                               const ledger::SnapshotHeader& header,
                               ledger::WorldState state) {
                          install_snapshot(self, scope, header,
                                           std::move(state));
                        },
                    .on_reject =
                        [this](const net::Principal& self,
                               const std::string& scope,
                               const net::Principal& donor,
                               ledger::TransferReject reason,
                               common::BytesView proof_a,
                               common::BytesView proof_b) {
                          on_transfer_reject(self, scope, donor, reason,
                                             proof_a, proof_b);
                        },
                    .on_fail = nullptr,
                }),
      triesync_(channel_,
                ledger::TrieSync::Callbacks{
                    .provider =
                        [this](const net::Principal& self,
                               const std::string& scope,
                               std::uint64_t min_height) {
                          return provide_trie(self, scope, min_height);
                        },
                    .offer_check =
                        [this](const net::Principal&, const std::string& scope,
                               std::uint64_t height,
                               const crypto::Digest& tip_hash) {
                          ledger::SnapshotHeader probe;
                          probe.height = height;
                          probe.tip_hash = tip_hash;
                          return check_offer(scope, probe);
                        },
                    .on_complete =
                        [this](const net::Principal& self,
                               const std::string& scope, std::uint64_t height,
                               const crypto::Digest& tip_hash,
                               ledger::WorldState state,
                               const ledger::TrieSync::Report& report) {
                          install_delta(self, scope, height, tip_hash,
                                        std::move(state), report);
                        },
                    .on_reject =
                        [this](const net::Principal& self,
                               const std::string& scope,
                               const net::Principal& donor,
                               ledger::TransferReject reason,
                               common::BytesView proof_a,
                               common::BytesView proof_b) {
                          on_transfer_reject(self, scope, donor, reason,
                                             proof_a, proof_b);
                        },
                    .on_fail = nullptr,
                }),
      mempool_(config.mempool),
      admission_(config.admission),
      breaker_(config.breaker),
      batch_verifier_(group, rng_.next_u64()) {
  if (config_.circuit_breaker) channel_.set_breaker(&breaker_);
  if (config_.orderer_deployment == ledger::OrdererDeployment::Shared) {
    shared_orderer_ = std::make_unique<ledger::OrderingService>(
        "orderer-org", ledger::OrdererDeployment::Shared, network.auditor(),
        config_.block_size);
    shared_orderer_->set_pending_limit(config_.orderer_pending_limit);
    // Send/ack-only endpoint: the orderer never receives app traffic, but
    // block deliveries it sends need the acks routed back to it.
    channel_.attach("orderer-org", nullptr);
  }
}

void FabricNetwork::add_org(const std::string& org) {
  if (orgs_.contains(org)) return;
  crypto::KeyPair keypair = crypto::KeyPair::generate(*group_, rng_);
  pki::Certificate cert = ca_.issue(org, keypair.public_key(),
                                    {{"type", "org"}}, 0, kCertLifetime);
  membership_.onboard(cert, network_->clock().now());

  // The peer's block-delivery handler: catch up on any blocks missed
  // (the orderer's delivery service), then validate and commit. The
  // reliable channel dedups retransmissions, so this fires exactly once
  // per distinct message.
  const std::string peer = peer_of(org);
  channel_.attach(peer, [this, org](const net::Message& msg) {
    if (ledger::SnapshotTransfer::owns_topic(msg.topic)) {
      transfer_.handle(peer_of(org), msg);
      return;
    }
    if (ledger::TrieSync::owns_topic(msg.topic)) {
      triesync_.handle(peer_of(org), msg);
      return;
    }
    if (msg.topic == "fabric.pdc-push") {
      // Gossip receipt of private data: acknowledge to the submitter.
      channel_.send(peer_of(org), msg.from, "fabric.pdc-ack", msg.payload);
      return;
    }
    if (msg.topic == "fabric.pdc-ack") {
      ++pdc_acks_[common::to_string(msg.payload)];
      return;
    }
    if (msg.topic != "fabric.block") return;
    ledger::Block block;
    try {
      block = ledger::Block::decode(msg.payload);
    } catch (const common::Error&) {
      return;  // corrupted in flight: drop; resync() catches the peer up
    }
    if (block.transactions.empty()) return;
    const std::string& channel_name = block.transactions.front().channel;
    const auto ch = channels_.find(channel_name);
    if (ch == channels_.end() || !ch->second.members.contains(org)) return;
    PeerReplica& replica = ch->second.replicas.at(org);

    if (block.header.height < replica.chain.height()) return;  // duplicate
    // Fail closed on a block damaged in flight: the delivered copy must
    // hash to the orderer's logged block at its height and its body must
    // match that header. Anything else is dropped, never committed — the
    // peer catches up from the delivery log via resync().
    if (block.header.height >= ch->second.ordered_log.size()) return;
    if (block.header.hash() !=
        ch->second.ordered_log[block.header.height].header.hash()) {
      return;
    }
    if (!block.body_matches_header()) return;
    while (replica.chain.height() < block.header.height) {
      if (!commit_block(org, ch->second,
                        ch->second.ordered_log[replica.chain.height()])) {
        return;  // rejected orderer output: do not seek past it
      }
    }
    if (block.header.previous_hash != replica.chain.tip_hash()) return;
    commit_block(org, ch->second, block);
  });
  network_->set_crash_hook(peer, [this, org] { on_crash(org); });
  network_->set_restart_hook(peer, [this, org] { on_restart(org); });

  orgs_.insert_or_assign(org, Org{std::move(keypair), std::move(cert)});
}

void FabricNetwork::on_crash(const std::string& org) {
  // The admission pool is volatile and never WAL-logged: a crash drops
  // every validation token, and recovery re-verifies whatever the WAL
  // replays. Committed blocks are durable and unaffected.
  mempool_.clear();
  for (auto& [name, ch] : channels_) {
    const auto it = ch.replicas.find(org);
    if (it == ch.replicas.end()) continue;
    // Memory is gone; the WAL is the only thing that survives. An
    // in-progress snapshot transfer dies with it — rejoin() restarts one.
    transfer_.abort(peer_of(org), name);
    triesync_.abort(peer_of(org), name);
    it->second.chain = ledger::Chain();
    it->second.state = ledger::WorldState();
    it->second.endorsements_seen.clear();
  }
}

void FabricNetwork::on_restart(const std::string& org) {
  for (auto& [name, ch] : channels_) {
    const auto it = ch.replicas.find(org);
    if (it == ch.replicas.end()) continue;
    PeerReplica& replica = it->second;
    const ledger::WalRecovery recovered =
        ledger::wal_recover_blocks(replica.wal);
    if (recovered.checkpoint) {
      // Snapshot-joined peer: bootstrap from the checkpoint record.
      replica.state = recovered.checkpoint->state;
      replica.chain = ledger::Chain::from_checkpoint(
          recovered.checkpoint->height, recovered.checkpoint->tip_hash);
      // Re-materialize the resident snapshot so the restarted peer can
      // donate state transfer again without waiting for the next interval.
      replica.snapshots.restore(recovered.checkpoint->height,
                                recovered.checkpoint->tip_hash,
                                recovered.checkpoint->state);
    }
    for (const ledger::Block& block : recovered.blocks) {
      if (!commit_block(org, ch, block, /*replay=*/true)) break;
    }
    // Blocks delivered while down: seek into the delivery service's log.
    while (replica.chain.height() < ch.ordered_log.size()) {
      if (!commit_block(org, ch, ch.ordered_log[replica.chain.height()])) {
        break;
      }
    }
  }
}

void FabricNetwork::resync(const std::string& channel) {
  auto& ch = channels_.at(channel);
  for (const std::string& member : ch.members) {
    if (network_->crashed(peer_of(member))) continue;
    PeerReplica& replica = ch.replicas.at(member);
    while (replica.chain.height() < ch.ordered_log.size()) {
      if (!commit_block(member, ch, ch.ordered_log[replica.chain.height()])) {
        break;
      }
    }
  }
}

std::optional<pki::IdemixCredential> FabricNetwork::issue_idemix_credential(
    const std::string& org, const std::string& attribute_class) {
  const auto it = orgs_.find(org);
  if (it == orgs_.end()) return std::nullopt;
  // Re-issue the identity certificate carrying the attribute class.
  auto attrs = it->second.certificate.attributes;
  attrs["class:" + attribute_class] = "1";
  it->second.certificate =
      ca_.issue(org, it->second.keypair.public_key(), attrs, 0, kCertLifetime);
  return pki::request_credential(idemix_issuer_, it->second.certificate,
                                 attribute_class, network_->clock().now(),
                                 rng_);
}

void FabricNetwork::create_channel(const std::string& channel,
                                   const std::set<std::string>& members) {
  for (const std::string& member : members) {
    if (!orgs_.contains(member)) {
      throw common::ProtocolError("create_channel: unknown org " + member);
    }
  }
  auto [it, inserted] =
      channels_.try_emplace(channel, network_->auditor());
  if (!inserted) throw common::ProtocolError("channel exists: " + channel);
  it->second.members = members;
  for (const std::string& member : members) {
    auto [replica, _] = it->second.replicas.try_emplace(member);
    replica->second.snapshots = ledger::SnapshotStore(config_.snapshots);
  }
  if (config_.orderer_deployment == ledger::OrdererDeployment::Private) {
    // The first member (alphabetical) operates the channel's orderer.
    it->second.private_orderer = std::make_unique<ledger::OrderingService>(
        *members.begin(), ledger::OrdererDeployment::Private,
        network_->auditor(), config_.block_size);
    it->second.private_orderer->set_pending_limit(
        config_.orderer_pending_limit);
    // The operator principal sends block deliveries and collects acks.
    channel_.attach(it->second.private_orderer->operator_name(), nullptr);
  }
}

void FabricNetwork::join_channel(const std::string& channel,
                                 const std::string& org, JoinMode mode) {
  if (!orgs_.contains(org)) {
    throw common::ProtocolError("join_channel: unknown org " + org);
  }
  auto& ch = channels_.at(channel);

  if (mode == JoinMode::Snapshot && !ch.members.empty()) {
    // Bootstrap from an existing member's state snapshot + chain
    // checkpoint: current data only, no transaction history.
    const PeerReplica& donor = ch.replicas.at(*ch.members.begin());
    PeerReplica replica;
    replica.snapshots = ledger::SnapshotStore(config_.snapshots);
    replica.state = donor.state;
    replica.chain = ledger::Chain::from_checkpoint(donor.chain.height(),
                                                   donor.chain.tip_hash());
    std::uint64_t snapshot_bytes = 0;
    replica.state.for_each([&snapshot_bytes](const std::string& key,
                                             const common::Bytes& value,
                                             std::uint64_t) {
      snapshot_bytes += key.size() + value.size();
      return true;
    });
    network_->auditor().record(peer_of(org),
                               "channel/" + channel + "/state-snapshot",
                               snapshot_bytes);
    // The snapshot is the joiner's durable bootstrap: a checkpoint record
    // lets a crashed joiner recover without any historical blocks.
    ledger::wal_log_checkpoint(replica.wal, replica.chain.height(),
                               replica.chain.tip_hash(), replica.state);
    replica.snapshots.restore(replica.chain.height(), replica.chain.tip_hash(),
                              replica.state);
    ch.members.insert(org);
    ch.replicas.insert_or_assign(org, std::move(replica));
    return;
  }

  ch.members.insert(org);
  {
    auto [replica, _] = ch.replicas.try_emplace(org);
    replica->second.snapshots = ledger::SnapshotStore(config_.snapshots);
  }
  // Replay bootstrap: the delivery service replays blocks from genesis,
  // so the joiner observes the channel's entire history.
  for (const ledger::Block& block : ch.ordered_log) {
    if (!commit_block(org, ch, block)) break;
  }
}

void FabricNetwork::leave_channel(const std::string& channel,
                                  const std::string& org) {
  auto& ch = channels_.at(channel);
  ch.members.erase(org);
  // Replica intentionally retained: shared data cannot be recalled.
}

void FabricNetwork::install_chaincode(
    const std::string& channel, const std::string& org,
    std::shared_ptr<contracts::SmartContract> chaincode,
    contracts::EndorsementPolicy policy) {
  auto& ch = channels_.at(channel);
  if (!ch.members.contains(org)) {
    throw common::AccessError("install_chaincode: " + org +
                              " not a member of " + channel);
  }
  ch.policies.insert_or_assign(chaincode->name(), std::move(policy));
  registry_.install(peer_of(org), std::move(chaincode));
}

void FabricNetwork::upgrade_chaincode(
    const std::string& channel, const std::string& org,
    std::shared_ptr<contracts::SmartContract> chaincode) {
  auto& ch = channels_.at(channel);
  if (!ch.members.contains(org)) {
    throw common::AccessError("upgrade_chaincode: " + org +
                              " not a member of " + channel);
  }
  registry_.install(peer_of(org), std::move(chaincode));
}

std::optional<std::uint32_t> FabricNetwork::chaincode_version(
    const std::string& org, const std::string& chaincode) const {
  const auto code = registry_.find(peer_of(org), chaincode);
  if (!code) return std::nullopt;
  return code->version();
}

void FabricNetwork::define_collection(const std::string& channel,
                                      offchain::CollectionConfig config) {
  channels_.at(channel).pdc.define(std::move(config));
}

ledger::OrderingService& FabricNetwork::orderer_for(Channel& channel) {
  if (channel.private_orderer) return *channel.private_orderer;
  return *shared_orderer_;
}

std::string FabricNetwork::orderer_operator(const std::string& channel) const {
  const auto& ch = channels_.at(channel);
  if (ch.private_orderer) return ch.private_orderer->operator_name();
  return shared_orderer_->operator_name();
}

void FabricNetwork::convict(audit::Misbehavior kind, const std::string& accused,
                            const std::string& reporter_org,
                            std::string detail, common::Bytes proof_a,
                            common::Bytes proof_b,
                            const std::string& quarantine_principal) {
  audit::Evidence e;
  e.kind = kind;
  e.accused = accused;
  e.reporter = reporter_org;
  e.detail = std::move(detail);
  e.detected_at = network_->clock().now();
  e.proof_a = std::move(proof_a);
  e.proof_b = std::move(proof_b);
  e.sign(orgs_.at(reporter_org).keypair);
  evidence_.add(std::move(e));
  if (!quarantine_principal.empty()) {
    network_->quarantine(quarantine_principal);
  }
}

bool FabricNetwork::commit_block(const std::string& org, Channel& channel,
                                 const ledger::Block& block, bool replay) {
  PeerReplica& replica = channel.replicas.at(org);
  // Endorsement-signature verification dominates commit cost and is a
  // pure function of each transaction — verify all of them across the
  // pool, then walk the block serially (auditor records, state.apply and
  // receipts keep their original order). Trusting peers skip it: they
  // take the orderer's word, which is exactly the deployment the paper's
  // orderer caveat warns about.
  const std::size_t tx_count = block.transactions.size();
  std::vector<char> sig_valid(tx_count, 1);
  // Per-transaction "at least one endorsement verifies" — the Detect-mode
  // orderer-tampering signal. Token hits count as fully verified.
  std::vector<char> any_sig_valid(tx_count, 1);
  if (validation_mode_ != ValidationMode::Trusting &&
      config_.batch_verify) {
    // Validate-once: a transaction whose admission token still speaks for
    // it (same body digest — the id IS the digest — and unmoved read
    // versions) skips signature work entirely. Read versions are checked
    // against pre-block state; a version that moves mid-block only
    // affects MVCC (state.apply re-validates), never signature validity.
    // Token misses pool every endorsement into ONE batched check.
    const common::SimTime now = network_->clock().now();
    std::vector<std::size_t> misses;
    for (std::size_t i = 0; i < tx_count; ++i) {
      const ledger::Transaction& tx = block.transactions[i];
      if (replay || !mempool_.validated(tx, replica.state, now)) {
        misses.push_back(i);
      }
    }
    std::vector<std::pair<std::size_t, std::size_t>> queued;  // (tx, sig)
    for (const std::size_t i : misses) {
      const ledger::Transaction& tx = block.transactions[i];
      const crypto::Digest digest = tx.body_digest();
      const common::BytesView msg(digest.data(), digest.size());
      for (std::size_t e = 0; e < tx.endorsements.size(); ++e) {
        batch_verifier_.add_signature(tx.endorsements[e].key, msg,
                                      tx.endorsements[e].signature);
        queued.push_back({i, e});
      }
      if (!tx.endorsements.empty()) any_sig_valid[i] = 0;  // until proven
    }
    if (batch_verifier_.pending() > 0) {
      const crypto::BatchOutcome outcome = batch_verifier_.verify();
      std::set<std::size_t> bad(outcome.invalid.begin(),
                                outcome.invalid.end());
      for (std::size_t k = 0; k < queued.size(); ++k) {
        if (bad.contains(k)) {
          sig_valid[queued[k].first] = 0;
        } else {
          any_sig_valid[queued[k].first] = 1;
        }
      }
    }
  } else if (validation_mode_ != ValidationMode::Trusting) {
    sig_valid = common::ThreadPool::global().parallel_map(
        tx_count, [&](std::size_t i) -> char {
          return block.transactions[i].endorsements_valid(*group_) ? 1 : 0;
        });
    if (validation_mode_ == ValidationMode::Detect) {
      for (std::size_t i = 0; i < tx_count; ++i) {
        const ledger::Transaction& tx = block.transactions[i];
        if (tx.endorsements.empty()) continue;
        const crypto::Digest digest = tx.body_digest();
        const common::BytesView msg(digest.data(), digest.size());
        bool any = false;
        for (const ledger::Endorsement& e : tx.endorsements) {
          if (crypto::verify(*group_, e.key, msg, e.signature)) {
            any = true;
            break;
          }
        }
        any_sig_valid[i] = any ? 1 : 0;
      }
    }
  }

  if (validation_mode_ == ValidationMode::Detect) {
    // Orderer-output check, before anything becomes durable: a
    // transaction carrying endorsements of which NONE verifies against
    // its body left every endorser in a different form — the body was
    // rewritten after endorsement. That convicts the orderer (only it
    // sequences endorsed transactions into blocks), and the whole block
    // is rejected. Every honest peer runs the same deterministic check,
    // so all of them reject and the evidence log dedupes to one entry.
    // (A rewritten body also changes the tx id, so it can never ride a
    // stale validation token past this check.)
    for (std::size_t i = 0; i < tx_count; ++i) {
      const ledger::Transaction& tx = block.transactions[i];
      if (tx.endorsements.empty()) continue;
      if (any_sig_valid[i] == 0) {
        const std::string orderer = orderer_operator(tx.channel);
        convict(audit::Misbehavior::OrdererTampering, orderer, org,
                "ordered transaction fails every endorsement signature",
                tx.encode(), block.header.encode(), orderer);
        return false;
      }
    }
  }

  // WAL invariant: the block is durable before any in-memory mutation.
  if (!replay) ledger::wal_log_block(replica.wal, block);
  replica.chain.append(block);
  std::size_t tx_index = 0;
  for (const ledger::Transaction& tx : block.transactions) {
    // Every member peer sees the full transaction (recorded once, at the
    // original commit — WAL replay is a local re-read, not a new leak).
    if (!replay) record_visibility(network_->auditor(), peer_of(org), tx);

    bool valid = sig_valid[tx_index++] != 0;
    // Validate-stage TTL check, deterministic across replicas: the block
    // timestamp (sealed by the orderer) is compared, never the local
    // clock, so every peer drops exactly the same expired transactions
    // and state stays bit-identical.
    const bool expired =
        tx.deadline_us != 0 && block.header.timestamp > tx.deadline_us;
    if (expired) valid = false;
    if (valid && validation_mode_ == ValidationMode::Detect) {
      // Endorsement-consistency cross-check: a deterministic chaincode
      // produces identical writes for an identical proposal context, so
      // one endorser validly signing two different write-sets for the
      // same context equivocated. The two conflicting signed
      // transactions are self-contained proof.
      for (const ledger::Endorsement& e : tx.endorsements) {
        const std::string ctx = endorsement_context(tx, e.endorser);
        const crypto::Digest wd = writes_digest(tx);
        const auto seen = replica.endorsements_seen.find(ctx);
        if (seen == replica.endorsements_seen.end()) {
          replica.endorsements_seen.emplace(ctx,
                                            std::make_pair(wd, tx.encode()));
        } else if (seen->second.first != wd) {
          convict(audit::Misbehavior::EndorserEquivocation, e.endorser, org,
                  "endorser signed conflicting write-sets for one proposal",
                  seen->second.second, tx.encode(), peer_of(e.endorser));
          valid = false;
        }
      }
    }
    if (valid) {
      const auto policy = channel.policies.find(tx.contract);
      if (policy != channel.policies.end()) {
        std::set<std::string> endorsers;
        for (const ledger::Endorsement& e : tx.endorsements) {
          // Endorsement counts only if the key really belongs to the org
          // — and, under Detect, only while the org stands unconvicted.
          const auto known = orgs_.find(e.endorser);
          if (known != orgs_.end() &&
              known->second.keypair.public_key() == e.key &&
              !(validation_mode_ == ValidationMode::Detect &&
                evidence_.convicted(e.endorser))) {
            endorsers.insert(e.endorser);
          }
        }
        valid = policy->second.satisfied_by(endorsers);
      }
    }
    ledger::CommitResult commit = ledger::CommitResult::MvccConflict;
    if (valid) commit = replica.state.apply(tx);

    TxReceipt receipt;
    receipt.tx_id = tx.id();
    receipt.committed = valid && commit == ledger::CommitResult::Applied;
    receipt.reason = expired             ? "expired at validation"
                     : !valid            ? "endorsement policy unsatisfied"
                     : receipt.committed ? ""
                                         : "mvcc conflict";
    // Count each transaction once, on its first recorded commit
    // (validation is deterministic, so replicas agree).
    const bool first_record = !receipts_.contains(tx.id());
    receipts_[tx.id()] = receipt;
    if (receipt.committed && first_record) ++committed_count_;
    if (expired && first_record) {
      network_->count_expired(net::Stage::Validate);
    }
  }
  ++replica.blocks_applied;
  // Interval checkpoint: seal the committed state into the WAL and
  // compact the clean prefix behind it. Replay skips this — the recovered
  // WAL already reflects any checkpoints taken before the crash.
  if (!replay) {
    replica.snapshots.maybe_checkpoint(replica.wal, replica.chain.height(),
                                       replica.chain.tip_hash(),
                                       replica.state);
  }
  return true;
}

void FabricNetwork::deliver_block(const std::string& channel_name,
                                  const ledger::Block& block_in) {
  auto& ch = channels_.at(channel_name);
  ledger::Block block = block_in;
  if (byzantine_orderer_) {
    // A tampering orderer rewrites endorsed write-sets AFTER sequencing,
    // then rebuilds the block so the Merkle root and header hash are
    // self-consistent again. Chain::append and body_matches_header()
    // cannot see it; only re-verifying the endorsement signatures can.
    std::vector<ledger::Transaction> txs = block.transactions;
    for (ledger::Transaction& tx : txs) {
      if (tx.writes.empty()) continue;
      static constexpr char kMark[] = "EVIL";
      tx.writes.front().value.assign(kMark, kMark + 4);
    }
    block = ledger::Block::make(block_in.header.height,
                                block_in.header.previous_hash, std::move(txs),
                                block_in.header.timestamp);
  }
  // The orderer's delivery service retains every cut block; peers that
  // miss a delivery seek into this log to catch up. A Byzantine orderer
  // logs its rewritten block — the delivery log is its own record.
  ch.ordered_log.push_back(block);
  ch.block_height = block.header.height + 1;
  ch.pdc.expire(ch.block_height);

  const common::Bytes encoded = block.encode();
  const std::string from = orderer_operator(channel_name);
  for (const std::string& member : ch.members) {
    channel_.send(from, peer_of(member), "fabric.block", encoded);
  }
  network_->run();
  // Every live member peer has now committed (or rejected) the block;
  // retire the sealed transactions' validation tokens. Invalidated
  // tokens were already dropped by the commit-path version check.
  const common::SimTime now = network_->clock().now();
  for (const ledger::Transaction& tx : block.transactions) {
    const auto receipt = receipts_.find(tx.id());
    if (receipt != receipts_.end() && receipt->second.committed) {
      mempool_.remove(tx.id(), ledger::EvictionRecord::Cause::Committed, now);
    }
  }
}

FabricNetwork::PreparedSubmission FabricNetwork::prepare_submission(
    const SubmitRequest& request) {
  const std::string& channel = request.channel;
  const std::string& client_org = request.client_org;
  const std::string& chaincode = request.chaincode;
  const std::string& action = request.action;
  const common::BytesView args(request.args);
  const std::optional<PrivatePayload>& private_data = request.private_data;
  const pki::IdemixCredential* idemix = request.idemix;

  PreparedSubmission prepared;
  prepared.channel = channel;
  const auto fail = [&prepared](const std::string& reason) {
    prepared.ok = false;
    prepared.error = {false, "", reason};
    return prepared;
  };

  const auto ch_it = channels_.find(channel);
  if (ch_it == channels_.end()) return fail("unknown channel");
  Channel& ch = ch_it->second;
  if (!ch.members.contains(client_org)) {
    return fail("client not a channel member");
  }
  const auto policy_it = ch.policies.find(chaincode);
  if (policy_it == ch.policies.end()) {
    return fail("chaincode not installed on channel");
  }

  // --- Overload gate -------------------------------------------------------
  // Deadline stamped at submission (arrival time when the open-loop
  // driver supplies one), then checked before any endorsement work: the
  // endorse stage is the first place expired work can die cheaply.
  const common::SimTime gate_now = network_->clock().now();
  const common::SimTime arrival =
      request.arrival_us != 0 ? request.arrival_us : gate_now;
  common::SimTime deadline = request.deadline_us;
  if (deadline == 0 && config_.default_ttl_us != 0) {
    deadline = arrival + config_.default_ttl_us;
  }
  if (deadline != 0 && gate_now > deadline) {
    network_->count_expired(net::Stage::Endorse);
    return fail("expired before endorsement");
  }
  // Fresh-class admission: shed by queue delay before spending any
  // crypto. Already-endorsed work re-offers later as Commit class, which
  // tolerates far more delay — that is the priority ordering.
  if (config_.admission_control &&
      !admission_.offer(chaincode + "/" + action, ledger::AdmitPriority::Fresh,
                        arrival, gate_now, mempool_.size(), deadline)) {
    network_->count_shed();
    return fail("shed at admission (retry after " +
                std::to_string(admission_.retry_after(gate_now)) + "us)");
  }

  // --- Endorsement phase -------------------------------------------------
  const std::set<std::string> endorsing_orgs =
      policy_it->second.mentioned_orgs();
  // In-built version control: all endorsers must run identical code.
  // Cheap registry lookups stay serial; they also fix the eligible-org
  // order (sorted, from the std::set) before the fan-out.
  std::vector<std::string> eligible;
  std::optional<crypto::Digest> reference_code;
  for (const std::string& org : endorsing_orgs) {
    if (!ch.members.contains(org)) continue;
    // A convicted (quarantined) org can no longer endorse: with it gone,
    // proposals that need it fail closed instead of trusting it again.
    if (validation_mode_ == ValidationMode::Detect &&
        (evidence_.convicted(org) ||
         network_->is_quarantined(peer_of(org)))) {
      continue;
    }
    if (const auto code = registry_.find(peer_of(org), chaincode)) {
      if (!reference_code) {
        reference_code = code->code_digest();
      } else if (*reference_code != code->code_digest()) {
        return fail("chaincode version mismatch between endorsers");
      }
    }
    eligible.push_back(org);
  }

  // Contract execution is independent per org — each runs against its
  // own replica's state and execute() is pure — so it fans out across
  // the pool. parallel_map returns results in input order, which keeps
  // the reference/divergence fold below identical to the serial loop.
  auto exec_results = common::ThreadPool::global().parallel_map(
      eligible.size(), [&](std::size_t i) {
        const std::string& org = eligible[i];
        return engine_.execute(peer_of(org), chaincode, action, args,
                               ch.replicas.at(org).state, channel);
      });

  std::optional<contracts::ExecutionResult> reference;
  std::vector<std::string> endorsers;
  for (std::size_t i = 0; i < eligible.size(); ++i) {
    auto& result = exec_results[i];
    if (!result || result->status != contracts::InvokeStatus::Ok) continue;
    if (byzantine_endorsers_.contains(eligible[i]) &&
        !result->tx.writes.empty()) {
      // Equivocating endorser: each endorsement of the same proposal
      // carries a different write-set, and it will validly sign whichever
      // one becomes canonical. With a policy requiring only this org, the
      // conflicting endorsements are indistinguishable from honest ones
      // until a peer cross-checks them against each other.
      const std::string fork = "-equiv" + std::to_string(equivocation_counter_++);
      auto& value = result->tx.writes.front().value;
      value.insert(value.end(), fork.begin(), fork.end());
    }
    if (!reference) {
      reference = std::move(result);
    } else if (reference->tx.writes != result->tx.writes ||
               reference->tx.reads != result->tx.reads) {
      return fail("endorsers diverged");
    }
    endorsers.push_back(eligible[i]);
  }
  if (!reference) return fail("no endorsements");
  {
    std::set<std::string> endorser_set(endorsers.begin(), endorsers.end());
    if (!policy_it->second.satisfied_by(endorser_set)) {
      return fail("endorsement policy unsatisfied");
    }
  }

  ledger::Transaction tx = std::move(reference->tx);
  tx.timestamp = network_->clock().now();
  tx.deadline_us = deadline;

  // --- Private data (PDC) -------------------------------------------------
  if (private_data) {
    const offchain::CollectionConfig* pre_cfg =
        ch.pdc.config(private_data->collection);
    if (pre_cfg == nullptr) return fail("unknown collection");

    // Gossip dissemination with acknowledgements: the submission is only
    // accepted once requiredPeerCount member peers confirmed receipt —
    // otherwise a flaky network could leave the hash on the ledger with
    // the data held by nobody but the submitter.
    const std::string dissemination_id =
        "pdc-" + std::to_string(pdc_dissemination_seq_++);
    pdc_acks_[dissemination_id] = 0;
    for (const std::string& member : pre_cfg->members) {
      if (member == client_org || !ch.members.contains(member)) continue;
      channel_.send(peer_of(client_org), peer_of(member), "fabric.pdc-push",
                    common::to_bytes(dissemination_id));
    }
    network_->run();
    if (pdc_acks_[dissemination_id] < pre_cfg->required_peer_count) {
      pdc_acks_.erase(dissemination_id);
      return fail("insufficient pdc dissemination");
    }
    pdc_acks_.erase(dissemination_id);

    const auto ref = ch.pdc.put_private(private_data->collection,
                                        private_data->key,
                                        private_data->value, ch.block_height);
    if (!ref) return fail("unknown collection");
    tx.hash_refs.push_back(*ref);
    // The paper's caveat: members of the collection are listed in the
    // transaction itself.
    const offchain::CollectionConfig* cfg =
        ch.pdc.config(private_data->collection);
    for (const std::string& member : cfg->members) {
      tx.participants.push_back("pdc-member:" + member);
    }
  }

  // --- Client identity -----------------------------------------------------
  if (idemix != nullptr) {
    // Anonymous client: transaction carries the unlinkable pseudonym and a
    // context-bound proof of possession.
    const crypto::Digest digest = tx.body_digest();
    const pki::IdemixPresentation presentation = pki::present(
        *group_, *idemix, common::BytesView(digest.data(), digest.size()),
        rng_);
    tx.participants.push_back("idemix:" +
                              presentation.pseudonym_key.fingerprint());
    tx.parties_pseudonymous = true;
    if (!pki::verify_presentation(*group_, ca_.public_key(), presentation,
                                  common::BytesView(digest.data(),
                                                    digest.size()),
                                  idemix_issuer_.epoch())) {
      return fail("idemix presentation invalid");
    }
  } else {
    tx.participants.push_back("client:" + client_org);
  }
  for (const std::string& org : endorsers) tx.participants.push_back(org);

  prepared.ok = true;
  prepared.tx = std::move(tx);
  prepared.endorsers = std::move(endorsers);
  return prepared;
}

void FabricNetwork::admit_to_mempool(const ledger::Transaction& tx) {
  // Trusting peers never verify, so a token would claim work that was
  // never done — skip the pool entirely in that mode.
  if (validation_mode_ == ValidationMode::Trusting) return;
  bool verified;
  if (config_.batch_verify) {
    const crypto::Digest digest = tx.body_digest();
    const common::BytesView msg(digest.data(), digest.size());
    for (const ledger::Endorsement& e : tx.endorsements) {
      batch_verifier_.add_signature(e.key, msg, e.signature);
    }
    verified = batch_verifier_.pending() == 0 ||
               batch_verifier_.verify().all_valid;
  } else {
    verified = tx.endorsements_valid(*group_);
  }
  mempool_.admit(tx, verified, network_->clock().now());
}

void FabricNetwork::admit_wave_to_mempool(
    std::vector<PreparedSubmission>& prepared) {
  if (validation_mode_ == ValidationMode::Trusting) return;
  const common::SimTime now = network_->clock().now();
  if (!config_.batch_verify) {
    for (PreparedSubmission& p : prepared) {
      mempool_.admit(p.tx, p.tx.endorsements_valid(*group_), now);
    }
    return;
  }
  // One batch for the whole wave; a forged endorsement anywhere bisects
  // down to its add-order index, which maps back to its transaction.
  std::vector<std::size_t> queued;  // batch index -> prepared index
  for (std::size_t p = 0; p < prepared.size(); ++p) {
    const crypto::Digest digest = prepared[p].tx.body_digest();
    const common::BytesView msg(digest.data(), digest.size());
    for (const ledger::Endorsement& e : prepared[p].tx.endorsements) {
      batch_verifier_.add_signature(e.key, msg, e.signature);
      queued.push_back(p);
    }
  }
  std::vector<char> ok(prepared.size(), 1);
  if (batch_verifier_.pending() > 0) {
    const crypto::BatchOutcome outcome = batch_verifier_.verify();
    for (const std::size_t bad : outcome.invalid) ok[queued[bad]] = 0;
  }
  for (std::size_t p = 0; p < prepared.size(); ++p) {
    mempool_.admit(prepared[p].tx, ok[p] != 0, now);
  }
}

void FabricNetwork::order_transaction(const std::string& channel_name,
                                      ledger::Transaction tx) {
  Channel& ch = channels_.at(channel_name);
  ledger::OrderingService& orderer = orderer_for(ch);
  const common::SimTime now = network_->clock().now();
  const std::string tx_id = tx.id();
  // Order-stage TTL check: endorsement (and possibly queueing behind the
  // admission gate) may have eaten the whole budget.
  if (tx.deadline_us != 0 && now > tx.deadline_us) {
    network_->count_expired(net::Stage::Order);
    receipts_[tx_id] = {false, tx_id, "expired at ordering"};
    mempool_.remove(tx_id, ledger::EvictionRecord::Cause::Expired, now);
    return;
  }
  // Bounded orderer pending set: refuse loudly instead of growing.
  if (orderer.at_capacity(channel_name)) {
    network_->count_busy_rejected();
    receipts_[tx_id] = {false, tx_id, "busy: orderer pending queue full"};
    mempool_.remove(tx_id, ledger::EvictionRecord::Cause::Expired, now);
    return;
  }
  for (const ledger::Block& block : orderer.submit(std::move(tx), now)) {
    deliver_block(channel_name, block);
  }
}

TxReceipt FabricNetwork::submit(const std::string& channel,
                                const std::string& client_org,
                                const std::string& chaincode,
                                const std::string& action,
                                common::BytesView args,
                                const std::optional<PrivatePayload>& private_data,
                                const pki::IdemixCredential* idemix) {
  SubmitRequest request;
  request.channel = channel;
  request.client_org = client_org;
  request.chaincode = chaincode;
  request.action = action;
  request.args.assign(args.begin(), args.end());
  request.private_data = private_data;
  request.idemix = idemix;

  PreparedSubmission prepared = prepare_submission(request);
  if (!prepared.ok) return prepared.error;
  ledger::Transaction& tx = prepared.tx;

  // --- Endorsement signatures ---------------------------------------------
  // Every endorser signs the same body digest, and signing is
  // deterministic (HMAC-derived nonce), so parallel signing produces the
  // same bytes as the serial loop; order is preserved by parallel_map.
  {
    const crypto::Digest digest = tx.body_digest();
    const common::BytesView msg(digest.data(), digest.size());
    auto endorsements = common::ThreadPool::global().parallel_map(
        prepared.endorsers.size(), [&](std::size_t i) {
          const crypto::KeyPair& keypair =
              orgs_.at(prepared.endorsers[i]).keypair;
          return ledger::Endorsement{prepared.endorsers[i],
                                     keypair.public_key(), keypair.sign(msg)};
        });
    for (auto& e : endorsements) tx.endorsements.push_back(std::move(e));
  }

  // --- Admission + ordering + delivery -------------------------------------
  const std::string tx_id = tx.id();
  admit_to_mempool(tx);
  mempool_.pin(tx_id);  // in flight until delivery: not a capacity victim
  order_transaction(channel, std::move(tx));
  Channel& ch = channels_.at(channel);
  for (const ledger::Block& block :
       orderer_for(ch).flush(network_->clock().now())) {
    if (!block.transactions.empty()) {
      deliver_block(block.transactions.front().channel, block);
    }
  }
  mempool_.unpin(tx_id);

  const auto receipt = receipts_.find(tx_id);
  if (receipt == receipts_.end()) return {false, tx_id, "not delivered"};
  return receipt->second;
}

std::vector<TxReceipt> FabricNetwork::submit_many(
    const std::vector<SubmitRequest>& requests, std::size_t pipeline_depth) {
  if (pipeline_depth == 0) pipeline_depth = 1;
  std::vector<TxReceipt> out(requests.size());
  struct Ordered {
    std::size_t out_index;
    std::string tx_id;
  };
  std::vector<Ordered> ordered;
  std::set<std::string> touched;
  // Tokens pinned while their wave is in flight (admission -> delivery):
  // capacity eviction must not take them out from under the pipeline.
  std::vector<std::string> wave_pins;

  for (std::size_t wave = 0; wave < requests.size();
       wave += pipeline_depth) {
    const std::size_t wave_end =
        std::min(requests.size(), wave + pipeline_depth);
    // Stage A (serial): everything up to the signed transaction —
    // membership/version checks, contract execution (itself fanned out
    // per endorser), PDC dissemination, client identity.
    std::vector<PreparedSubmission> prepared;
    std::vector<std::size_t> origin;
    for (std::size_t i = wave; i < wave_end; ++i) {
      PreparedSubmission p = prepare_submission(requests[i]);
      if (!p.ok) {
        out[i] = p.error;
        continue;
      }
      origin.push_back(i);
      prepared.push_back(std::move(p));
    }
    // Stage B: endorsement signing for the WHOLE wave fans out as pool
    // tasks. Signing is pure (deterministic HMAC nonce), so results are
    // bit-identical regardless of scheduling; with no workers the tasks
    // run inline right here, reproducing the serial transcript.
    std::vector<std::vector<ledger::Endorsement>> endorsements(
        prepared.size());
    std::vector<std::future<void>> signing;
    for (std::size_t p = 0; p < prepared.size(); ++p) {
      const crypto::Digest digest = prepared[p].tx.body_digest();
      endorsements[p].resize(prepared[p].endorsers.size());
      for (std::size_t e = 0; e < prepared[p].endorsers.size(); ++e) {
        const std::string& endorser = prepared[p].endorsers[e];
        const crypto::KeyPair* keypair = &orgs_.at(endorser).keypair;
        ledger::Endorsement* slot = &endorsements[p][e];
        signing.push_back(common::ThreadPool::global().submit(
            [slot, endorser, digest, keypair] {
              const common::BytesView msg(digest.data(), digest.size());
              *slot = ledger::Endorsement{endorser, keypair->public_key(),
                                          keypair->sign(msg)};
            }));
      }
    }
    // Stage C (serial, in submission order): harvest the whole wave's
    // signatures and run ONE batched admission check across every
    // endorsement in it. A per-transaction check would pay the full RLC
    // squaring chain once per item and never amortize — the batch must
    // span the wave for the multi-exponentiation to earn its keep.
    std::size_t next_future = 0;
    for (std::size_t p = 0; p < prepared.size(); ++p) {
      for (std::size_t e = 0; e < endorsements[p].size(); ++e) {
        signing[next_future++].get();
      }
      for (auto& en : endorsements[p]) {
        prepared[p].tx.endorsements.push_back(std::move(en));
      }
    }
    admit_wave_to_mempool(prepared);
    for (const PreparedSubmission& p : prepared) {
      const std::string id = p.tx.id();
      mempool_.pin(id);
      wave_pins.push_back(id);
    }
    // Stage D (serial, in submission order): hand to the orderer. The
    // tokens minted above make block validation a lookup, not a verify.
    // Endorsed work re-enters the admission controller as Commit class:
    // it carries sunk endorsement cost, so it outranks fresh arrivals
    // (wider CoDel target) but is still shed when the queue stays bad.
    for (std::size_t p = 0; p < prepared.size(); ++p) {
      const std::string tx_id = prepared[p].tx.id();
      if (config_.admission_control) {
        const common::SimTime now = network_->clock().now();
        if (!admission_.offer(tx_id, ledger::AdmitPriority::Commit,
                              prepared[p].tx.timestamp, now, mempool_.size(),
                              prepared[p].tx.deadline_us)) {
          network_->count_shed();
          mempool_.remove(tx_id, ledger::EvictionRecord::Cause::Expired, now);
          out[origin[p]] = {false, tx_id, "shed endorsed work at admission"};
          continue;
        }
      }
      order_transaction(prepared[p].channel, std::move(prepared[p].tx));
      touched.insert(prepared[p].channel);
      ordered.push_back({origin[p], tx_id});
    }
  }

  // Single flush at the end: partial blocks from every touched channel's
  // orderer are cut and delivered now (submit() flushes per call).
  for (const std::string& channel_name : touched) {
    Channel& ch = channels_.at(channel_name);
    for (const ledger::Block& block :
         orderer_for(ch).flush(network_->clock().now())) {
      if (!block.transactions.empty()) {
        deliver_block(block.transactions.front().channel, block);
      }
    }
  }
  for (const Ordered& o : ordered) {
    const auto receipt = receipts_.find(o.tx_id);
    out[o.out_index] = receipt == receipts_.end()
                           ? TxReceipt{false, o.tx_id, "not delivered"}
                           : receipt->second;
  }
  for (const std::string& id : wave_pins) mempool_.unpin(id);
  return out;
}

const ledger::WorldState& FabricNetwork::state(const std::string& channel,
                                               const std::string& org) const {
  const auto& ch = channels_.at(channel);
  const auto it = ch.replicas.find(org);
  if (it == ch.replicas.end()) {
    throw common::AccessError(org + " holds no replica of " + channel);
  }
  return it->second.state;
}

const ledger::Chain& FabricNetwork::chain(const std::string& channel,
                                          const std::string& org) const {
  const auto& ch = channels_.at(channel);
  const auto it = ch.replicas.find(org);
  if (it == ch.replicas.end()) {
    throw common::AccessError(org + " holds no replica of " + channel);
  }
  return it->second.chain;
}

crypto::Digest FabricNetwork::state_root(const std::string& channel,
                                         const std::string& org) const {
  return state(channel, org).digest();
}

crypto::Digest FabricNetwork::composite_state_root(
    const std::string& org) const {
  std::vector<ledger::ShardRootPart> parts;
  for (const auto& [name, ch] : channels_) {
    const auto it = ch.replicas.find(org);
    if (it == ch.replicas.end()) continue;
    parts.push_back(ledger::ShardRootPart{name, it->second.chain.height(),
                                          it->second.state.digest()});
  }
  return ledger::compose_roots(std::move(parts));
}

std::optional<common::Bytes> FabricNetwork::read_private(
    const std::string& channel, const std::string& collection,
    const std::string& key, const std::string& org) const {
  const auto it = channels_.find(channel);
  if (it == channels_.end()) return std::nullopt;
  return it->second.pdc.get_private(collection, key, org);
}

bool FabricNetwork::is_channel_member(const std::string& channel,
                                      const std::string& org) const {
  const auto it = channels_.find(channel);
  return it != channels_.end() && it->second.members.contains(org);
}

// ---- Recovery tier ---------------------------------------------------------

void FabricNetwork::rejoin_peers(const std::string& channel,
                                 const std::string& org,
                                 const std::vector<std::string>& donor_orgs,
                                 std::vector<net::Principal>& donors,
                                 std::vector<net::Principal>& voters) const {
  const auto& ch = channels_.at(channel);
  // Root verification quorum: every live, unquarantined fellow member.
  for (const std::string& member : ch.members) {
    if (member == org) continue;
    const std::string peer = peer_of(member);
    if (network_->crashed(peer) || network_->is_quarantined(peer)) continue;
    voters.push_back(peer);
  }
  if (donor_orgs.empty()) {
    donors = voters;
    // The breaker remembers which peers kept timing out under load;
    // don't pick one of those as a snapshot donor when we have a choice
    // (an explicit donor list overrides — the caller knows better).
    if (config_.circuit_breaker && donors.size() > 1) {
      const common::SimTime now = network_->clock().now();
      std::erase_if(donors, [&](const net::Principal& peer) {
        return breaker_.state(peer, now) == net::BreakerState::Open;
      });
      if (donors.empty()) donors = voters;  // all open: degrade, don't stall
    }
  } else {
    for (const std::string& d : donor_orgs) donors.push_back(peer_of(d));
  }
}

void FabricNetwork::replay_tail(const std::string& channel,
                                const std::string& org) {
  // Post-checkpoint delta (or the whole lag, if no donor had a newer
  // checkpoint): seek into the channel's sealed delivery log.
  auto& ch = channels_.at(channel);
  const std::string self = peer_of(org);
  PeerReplica& replica = ch.replicas.at(org);
  while (!network_->crashed(self) &&
         replica.chain.height() < ch.ordered_log.size()) {
    if (!commit_block(org, ch, ch.ordered_log[replica.chain.height()])) break;
  }
}

void FabricNetwork::rejoin(const std::string& channel, const std::string& org,
                           std::vector<std::string> donor_orgs) {
  auto& ch = channels_.at(channel);
  const std::string self = peer_of(org);
  if (!ch.members.contains(org) || network_->crashed(self)) return;
  PeerReplica& replica = ch.replicas.at(org);

  std::vector<net::Principal> donors;
  std::vector<net::Principal> voters;
  rejoin_peers(channel, org, donor_orgs, donors, voters);
  transfer_.fetch(self, channel, std::move(donors), voters,
                  replica.chain.height() + 1);
  network_->run();
  // Still active after the network drained = stalled on loss — keep it
  // resumable rather than replaying what the snapshot was about to save.
  if (transfer_.active(self, channel)) return;
  replay_tail(channel, org);
}

void FabricNetwork::resume_rejoin(const std::string& channel,
                                  const std::string& org) {
  const std::string self = peer_of(org);
  if (network_->crashed(self)) return;
  transfer_.resume(self, channel);
  network_->run();
  if (transfer_.active(self, channel)) return;  // still stalled: resumable
  replay_tail(channel, org);
}

void FabricNetwork::rejoin_delta(const std::string& channel,
                                 const std::string& org,
                                 std::vector<std::string> donor_orgs) {
  auto& ch = channels_.at(channel);
  const std::string self = peer_of(org);
  if (!ch.members.contains(org) || network_->crashed(self)) return;
  PeerReplica& replica = ch.replicas.at(org);

  std::vector<net::Principal> donors;
  std::vector<net::Principal> voters;
  rejoin_peers(channel, org, donor_orgs, donors, voters);
  // The joiner's own state is the dedup set: only nodes it lacks move.
  triesync_.fetch(self, channel, std::move(donors), voters,
                  replica.chain.height() + 1, replica.state);
  network_->run();
  if (triesync_.active(self, channel)) return;  // stalled on loss: resumable
  replay_tail(channel, org);
}

void FabricNetwork::resume_rejoin_delta(const std::string& channel,
                                        const std::string& org) {
  const std::string self = peer_of(org);
  if (network_->crashed(self)) return;
  triesync_.resume(self, channel);
  network_->run();
  if (triesync_.active(self, channel)) return;  // still stalled: resumable
  replay_tail(channel, org);
}

void FabricNetwork::set_byzantine_snapshot_offerer(const std::string& org,
                                                   SnapshotAttack attack) {
  byz_offerers_.insert_or_assign(org, attack);
}

std::uint64_t FabricNetwork::blocks_applied(const std::string& channel,
                                            const std::string& org) const {
  return channels_.at(channel).replicas.at(org).blocks_applied;
}

const ledger::SnapshotStore& FabricNetwork::snapshot_store(
    const std::string& channel, const std::string& org) const {
  return channels_.at(channel).replicas.at(org).snapshots;
}

const ledger::WriteAheadLog& FabricNetwork::peer_wal(
    const std::string& channel, const std::string& org) const {
  return channels_.at(channel).replicas.at(org).wal;
}

const ledger::Snapshot* FabricNetwork::provide_snapshot(
    const std::string& self, const std::string& scope,
    std::uint64_t min_height) {
  const std::string org = org_of(self);
  const auto ch = channels_.find(scope);
  if (ch == channels_.end() || !ch->second.members.contains(org)) {
    return nullptr;
  }
  const auto replica = ch->second.replicas.find(org);
  if (replica == ch->second.replicas.end()) return nullptr;
  const ledger::Snapshot* honest = replica->second.snapshots.latest();

  const auto attack = byz_offerers_.find(org);
  if (attack == byz_offerers_.end() || honest == nullptr ||
      honest->height() < min_height) {
    return honest;
  }
  // Scripted adversary: serve a forgery instead of the checkpoint. Stored
  // in forged_ because the transfer engine holds the returned pointer
  // across the donated chunks.
  const auto key = std::make_pair(self, scope);
  switch (attack->second) {
    case SnapshotAttack::TamperChunk: {
      // Honest header, one flipped byte mid-body: the offer passes every
      // header check, then the covering chunk fails hash verification.
      common::Bytes body(honest->body().begin(), honest->body().end());
      if (!body.empty()) body[body.size() / 2] ^= 0x01;
      forged_.insert_or_assign(
          key, ledger::Snapshot::forge(honest->header(), std::move(body)));
      break;
    }
    case SnapshotAttack::EquivocateRoot: {
      // Self-consistent snapshot over a tampered state: every chunk
      // verifies against ITS root, but the root is disavowed by the
      // member quorum (no honest replica ever committed that state).
      ledger::WorldState tampered = honest->state();
      tampered.put("asset/forged/owner", common::to_bytes(org));
      forged_.insert_or_assign(
          key, ledger::Snapshot::make(
                   honest->height(),
                   honest->header().tip_hash, tampered,
                   honest->header().chunk_size));
      break;
    }
  }
  return &forged_.at(key);
}

bool FabricNetwork::check_offer(const std::string& scope,
                                const ledger::SnapshotHeader& header) const {
  // Structural pre-filter against the channel's sealed delivery log: the
  // offered head must be a block the orderer actually sealed. (The state
  // root itself is vouched for by the member vote quorum — a block hash
  // does not commit to world state.)
  const auto ch = channels_.find(scope);
  if (ch == channels_.end()) return false;
  return header.height > 0 && header.height <= ch->second.ordered_log.size() &&
         ch->second.ordered_log[header.height - 1].header.hash() ==
             header.tip_hash;
}

void FabricNetwork::install_snapshot(const std::string& self,
                                     const std::string& scope,
                                     const ledger::SnapshotHeader& header,
                                     ledger::WorldState state) {
  const std::string org = org_of(self);
  const auto ch = channels_.find(scope);
  if (ch == channels_.end()) return;
  const auto it = ch->second.replicas.find(org);
  if (it == ch->second.replicas.end()) return;
  PeerReplica& replica = it->second;
  if (header.height <= replica.chain.height()) return;  // stale by now

  replica.chain =
      ledger::Chain::from_checkpoint(header.height, header.tip_hash);
  replica.state = std::move(state);
  replica.endorsements_seen.clear();
  // Seal the installed snapshot as this replica's own durable checkpoint,
  // compacting any stale pre-crash WAL prefix behind it.
  replica.snapshots.checkpoint(replica.wal, header.height, header.tip_hash,
                               replica.state);
}

std::optional<ledger::TrieSync::DonorState> FabricNetwork::provide_trie(
    const std::string& self, const std::string& scope,
    std::uint64_t min_height) {
  (void)min_height;  // availability vs min_height is enforced by the engine
  const std::string org = org_of(self);
  const auto ch = channels_.find(scope);
  if (ch == channels_.end() || !ch->second.members.contains(org)) {
    return std::nullopt;
  }
  const auto replica = ch->second.replicas.find(org);
  if (replica == ch->second.replicas.end()) return std::nullopt;
  const ledger::SnapshotStore& snaps = replica->second.snapshots;
  const ledger::Snapshot* latest = snaps.latest();
  if (latest == nullptr) return std::nullopt;

  ledger::TrieSync::DonorState ds;
  ds.height = latest->height();
  ds.tip_hash = latest->header().tip_hash;
  ds.state = &snaps.latest_state();

  const auto attack = byz_offerers_.find(org);
  if (attack != byz_offerers_.end() &&
      attack->second == SnapshotAttack::EquivocateRoot) {
    // Scripted adversary: offer (and serve nodes for) a tampered state.
    // Every node it ships verifies against ITS root — only the member
    // vote quorum can (and does) disavow the root itself. Stored in
    // forged_states_ because the engine holds the pointer across the
    // serve rounds. (TamperChunk has no delta analog: a node that does
    // not hash to its content is rejected by construction; that path is
    // exercised at the engine level in tests/ledger/test_triesync.cpp.)
    const auto key = std::make_pair(self, scope);
    ledger::WorldState tampered = snaps.latest_state();
    tampered.put("asset/forged/owner", common::to_bytes(org));
    const auto [it, inserted] =
        forged_states_.insert_or_assign(key, std::move(tampered));
    (void)inserted;
    ds.state = &it->second;
  }
  return ds;
}

void FabricNetwork::install_delta(const std::string& self,
                                  const std::string& scope,
                                  std::uint64_t height,
                                  const crypto::Digest& tip_hash,
                                  ledger::WorldState state,
                                  const ledger::TrieSync::Report& report) {
  const std::string org = org_of(self);
  const auto ch = channels_.find(scope);
  if (ch == channels_.end()) return;
  const auto it = ch->second.replicas.find(org);
  if (it == ch->second.replicas.end()) return;
  PeerReplica& replica = it->second;
  if (height <= replica.chain.height()) return;  // stale by now

  last_delta_report_ = report;
  replica.chain = ledger::Chain::from_checkpoint(height, tip_hash);
  replica.state = std::move(state);
  replica.endorsements_seen.clear();
  // Seal the installed state as this replica's own durable checkpoint,
  // compacting any stale pre-crash WAL prefix behind it.
  replica.snapshots.checkpoint(replica.wal, height, tip_hash, replica.state);
}

void FabricNetwork::on_transfer_reject(
    const std::string& self, const std::string& scope,
    const std::string& donor, ledger::TransferReject reason,
    common::BytesView proof_a, common::BytesView proof_b) {
  if (!ledger::is_misbehavior(reason)) return;
  const audit::Misbehavior kind =
      reason == ledger::TransferReject::EquivocatedRoot
          ? audit::Misbehavior::SnapshotEquivocation
          : audit::Misbehavior::SnapshotTampering;
  convict(kind, org_of(donor), org_of(self),
          "channel " + scope + " rejoin: " + ledger::to_string(reason),
          common::Bytes(proof_a.begin(), proof_a.end()),
          common::Bytes(proof_b.begin(), proof_b.end()), donor);
}

}  // namespace veil::fabric
