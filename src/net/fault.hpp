// Deterministic fault schedules.
//
// A FaultPlan is a seed-reproducible script of network faults — drop-rate
// windows, partition/heal events, and crash-stop/restart of named
// principals — expressed against the simulated clock. SimNetwork applies
// the plan's events lazily as simulated time advances, replacing the
// ad-hoc set_drop_probability/set_partitions toggling that chaos tests
// used to do by hand. Because every event is pinned to a SimTime and the
// network's RNG is seeded, a fault schedule replays identically run after
// run — the property the chaos suite's assertions depend on.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/clock.hpp"
#include "net/leakage.hpp"

namespace veil::net {

/// One scheduled fault event. Events with equal times apply in insertion
/// order (stable sort), so a plan is deterministic even when windows abut.
struct FaultEvent {
  enum class Kind {
    SetDropRate,  // drop_rate takes effect for sends at/after `at`
    SetPartitions,
    Heal,     // remove all partitions
    Crash,    // crash-stop `principal`: loses volatile state, unreachable
    Restart,  // bring `principal` back; its restart hook replays its WAL
  };

  common::SimTime at = 0;
  Kind kind = Kind::SetDropRate;
  double drop_rate = 0.0;
  std::vector<std::set<Principal>> partitions;
  Principal principal;
};

/// Builder-style schedule. All methods return *this so plans read as a
/// timeline:
///
///   FaultPlan plan;
///   plan.drop_window(0, 2'000'000, 0.2)      // 20% loss for 2 sim-seconds
///       .partition_at(500'000, {{"peer.A"}, {"peer.B", "orderer-org"}})
///       .heal_at(900'000)
///       .crash_at(1'200'000, "peer.B")
///       .restart_at(1'600'000, "peer.B");
///   network.set_fault_plan(plan);
class FaultPlan {
 public:
  /// Uniform message loss with probability `p` for sends in [from, until).
  /// Overlapping windows: the latest event at or before the send wins.
  FaultPlan& drop_window(common::SimTime from, common::SimTime until,
                         double p);

  /// Set the loss probability from `at` onward (no automatic end).
  FaultPlan& drop_from(common::SimTime at, double p);

  /// Split the network into groups at `at`; cross-group messages drop.
  FaultPlan& partition_at(common::SimTime at,
                          std::vector<std::set<Principal>> groups);

  /// Remove all partitions at `at`.
  FaultPlan& heal_at(common::SimTime at);

  /// Crash-stop `principal` at `at`: its crash hook fires (volatile state
  /// is lost), and until restarted it neither sends nor receives.
  FaultPlan& crash_at(common::SimTime at, Principal principal);

  /// Restart `principal` at `at`: its restart hook fires (WAL replay,
  /// catch-up) and it rejoins the network.
  FaultPlan& restart_at(common::SimTime at, Principal principal);

  /// Events sorted by time (stable on ties). Called once by SimNetwork.
  std::vector<FaultEvent> ordered_events() const;

  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }

 private:
  std::vector<FaultEvent> events_;
};

/// One scheduled change to a principal's adversarial behavior. Unlike
/// crash-stop faults, a Byzantine principal stays attached and keeps
/// participating — it just lies on the wire. Events are serializable so
/// adversary schedules can be persisted and fuzzed like every other wire
/// format in the framework.
struct ByzantineEvent {
  enum class Kind : std::uint8_t {
    Tamper,      // flip a random bit of each outgoing payload w.p. `probability`
    Equivocate,  // every second send carries a divergent copy, so a
                 // broadcast reaches different recipients with different bytes
    Silence,     // selectively drop sends to `target` (empty = everyone)
    Replay,      // queue a byte-identical duplicate `delay_us` later
    Delay,       // hold outgoing messages an extra `delay_us` before release
    Honest,      // clear all adversarial behaviors for `principal`
    Quarantine,  // isolate `principal`: drop its sends and deliveries
    Release,     // lift quarantine
  };

  common::SimTime at = 0;
  Kind kind = Kind::Tamper;
  Principal principal;
  Principal target;              // Silence only; empty = all recipients
  double probability = 1.0;      // Tamper only
  common::SimTime delay_us = 0;  // Replay / Delay

  common::Bytes encode() const;
  /// Throws common::Error on malformed or truncated input.
  static ByzantineEvent decode(common::BytesView data);
};

/// Builder-style adversary schedule, mirroring FaultPlan:
///
///   ByzantinePlan plan;
///   plan.tamper_from(0, "orderer-org", 0.5)
///       .silence_from(200'000, "peer.OrgB", "peer.OrgA")
///       .replay_from(400'000, "node.B", 25'000)
///       .honest_from(800'000, "orderer-org")
///       .quarantine_at(900'000, "node.B");
///   network.set_byzantine_plan(plan);
class ByzantinePlan {
 public:
  /// From `at`, flip one random bit of each payload `principal` sends,
  /// with probability `p` per message.
  ByzantinePlan& tamper_from(common::SimTime at, Principal principal,
                             double p = 1.0);

  /// From `at`, `principal` equivocates: alternate sends carry a
  /// deterministically mutated copy of the payload.
  ByzantinePlan& equivocate_from(common::SimTime at, Principal principal);

  /// From `at`, `principal` silently drops sends to `target`; an empty
  /// target silences it toward every recipient. Repeated calls with
  /// distinct targets accumulate.
  ByzantinePlan& silence_from(common::SimTime at, Principal principal,
                              Principal target = {});

  /// From `at`, every send by `principal` is also queued a second time
  /// `delay_us` later (an at-least-twice adversary).
  ByzantinePlan& replay_from(common::SimTime at, Principal principal,
                             common::SimTime delay_us = 20'000);

  /// From `at`, `principal` withholds messages an extra `delay_us`.
  ByzantinePlan& delay_from(common::SimTime at, Principal principal,
                            common::SimTime delay_us);

  /// Clear all adversarial behaviors for `principal` at `at`.
  ByzantinePlan& honest_from(common::SimTime at, Principal principal);

  /// Isolate / reinstate `principal` at `at` (also available directly on
  /// SimNetwork for detection code that convicts at runtime).
  ByzantinePlan& quarantine_at(common::SimTime at, Principal principal);
  ByzantinePlan& release_at(common::SimTime at, Principal principal);

  /// Events sorted by time (stable on ties). Called once by SimNetwork.
  std::vector<ByzantineEvent> ordered_events() const;

  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }

 private:
  ByzantineEvent& push(common::SimTime at, ByzantineEvent::Kind kind,
                       Principal principal);

  std::vector<ByzantineEvent> events_;
};

}  // namespace veil::net
