// Deterministic fault schedules.
//
// A FaultPlan is a seed-reproducible script of network faults — drop-rate
// windows, partition/heal events, and crash-stop/restart of named
// principals — expressed against the simulated clock. SimNetwork applies
// the plan's events lazily as simulated time advances, replacing the
// ad-hoc set_drop_probability/set_partitions toggling that chaos tests
// used to do by hand. Because every event is pinned to a SimTime and the
// network's RNG is seeded, a fault schedule replays identically run after
// run — the property the chaos suite's assertions depend on.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "net/leakage.hpp"

namespace veil::net {

/// One scheduled fault event. Events with equal times apply in insertion
/// order (stable sort), so a plan is deterministic even when windows abut.
struct FaultEvent {
  enum class Kind {
    SetDropRate,  // drop_rate takes effect for sends at/after `at`
    SetPartitions,
    Heal,     // remove all partitions
    Crash,    // crash-stop `principal`: loses volatile state, unreachable
    Restart,  // bring `principal` back; its restart hook replays its WAL
  };

  common::SimTime at = 0;
  Kind kind = Kind::SetDropRate;
  double drop_rate = 0.0;
  std::vector<std::set<Principal>> partitions;
  Principal principal;
};

/// Builder-style schedule. All methods return *this so plans read as a
/// timeline:
///
///   FaultPlan plan;
///   plan.drop_window(0, 2'000'000, 0.2)      // 20% loss for 2 sim-seconds
///       .partition_at(500'000, {{"peer.A"}, {"peer.B", "orderer-org"}})
///       .heal_at(900'000)
///       .crash_at(1'200'000, "peer.B")
///       .restart_at(1'600'000, "peer.B");
///   network.set_fault_plan(plan);
class FaultPlan {
 public:
  /// Uniform message loss with probability `p` for sends in [from, until).
  /// Overlapping windows: the latest event at or before the send wins.
  FaultPlan& drop_window(common::SimTime from, common::SimTime until,
                         double p);

  /// Set the loss probability from `at` onward (no automatic end).
  FaultPlan& drop_from(common::SimTime at, double p);

  /// Split the network into groups at `at`; cross-group messages drop.
  FaultPlan& partition_at(common::SimTime at,
                          std::vector<std::set<Principal>> groups);

  /// Remove all partitions at `at`.
  FaultPlan& heal_at(common::SimTime at);

  /// Crash-stop `principal` at `at`: its crash hook fires (volatile state
  /// is lost), and until restarted it neither sends nor receives.
  FaultPlan& crash_at(common::SimTime at, Principal principal);

  /// Restart `principal` at `at`: its restart hook fires (WAL replay,
  /// catch-up) and it rejoins the network.
  FaultPlan& restart_at(common::SimTime at, Principal principal);

  /// Events sorted by time (stable on ties). Called once by SimNetwork.
  std::vector<FaultEvent> ordered_events() const;

  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace veil::net
