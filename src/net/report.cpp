#include "net/report.hpp"

#include <algorithm>
#include <iomanip>
#include <map>
#include <set>
#include <sstream>

namespace veil::net {

namespace {
bool has_prefix(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}
}  // namespace

std::vector<PrincipalSummary> summarize(const LeakageAuditor& auditor,
                                        std::string_view label_prefix) {
  struct Acc {
    std::uint64_t plain = 0;
    std::uint64_t opaque = 0;
    std::set<std::string> labels;
  };
  std::map<Principal, Acc> acc;
  for (const Observation& o : auditor.observations()) {
    if (!has_prefix(o.label, label_prefix)) continue;
    Acc& a = acc[o.observer];
    if (o.plaintext) {
      a.plain += o.bytes;
      a.labels.insert(o.label);
    } else {
      a.opaque += o.bytes;
    }
  }
  std::vector<PrincipalSummary> out;
  out.reserve(acc.size());
  for (const auto& [principal, a] : acc) {
    out.push_back(
        PrincipalSummary{principal, a.plain, a.opaque, a.labels.size()});
  }
  std::sort(out.begin(), out.end(),
            [](const PrincipalSummary& x, const PrincipalSummary& y) {
              if (x.plaintext_bytes != y.plaintext_bytes) {
                return x.plaintext_bytes > y.plaintext_bytes;
              }
              return x.principal < y.principal;
            });
  return out;
}

std::string render_summary(const std::vector<PrincipalSummary>& summary) {
  std::ostringstream os;
  os << std::left << std::setw(24) << "principal" << std::setw(18)
     << "plaintext bytes" << std::setw(16) << "opaque bytes"
     << "distinct items\n";
  os << std::string(72, '-') << "\n";
  for (const PrincipalSummary& row : summary) {
    os << std::left << std::setw(24) << row.principal << std::setw(18)
       << row.plaintext_bytes << std::setw(16) << row.opaque_bytes
       << row.distinct_labels << "\n";
  }
  return os.str();
}

std::vector<DisclosureRecord> disclosures(const LeakageAuditor& auditor,
                                          std::string_view label_prefix) {
  std::map<Principal, DisclosureRecord> acc;
  for (const Observation& o : auditor.observations()) {
    if (!has_prefix(o.label, label_prefix)) continue;
    DisclosureRecord& r = acc[o.observer];
    r.principal = o.observer;
    if (o.plaintext) {
      r.saw_plaintext = true;
    } else {
      r.saw_opaque = true;
    }
  }
  std::vector<DisclosureRecord> out;
  out.reserve(acc.size());
  for (const auto& [principal, record] : acc) out.push_back(record);
  return out;
}

std::string render_disclosures(std::string_view label_prefix,
                               const std::vector<DisclosureRecord>& records) {
  std::ostringstream os;
  os << "disclosure record for \"" << label_prefix << "\":\n";
  if (records.empty()) {
    os << "  (no principal observed this datum in any form)\n";
    return os.str();
  }
  for (const DisclosureRecord& r : records) {
    os << "  " << std::left << std::setw(24) << r.principal;
    if (r.saw_plaintext) {
      os << "PLAINTEXT";
      if (r.saw_opaque) os << " + ciphertext/hash";
    } else {
      os << "ciphertext/hash only";
    }
    os << "\n";
  }
  return os.str();
}

std::string render_network_stats(const NetworkStats& stats) {
  const auto line = [](std::ostringstream& os, std::string_view label,
                       std::uint64_t value) {
    os << "  " << std::left << std::setw(28) << label << value << "\n";
  };
  std::ostringstream os;
  os << "network delivery report:\n";
  line(os, "messages sent", stats.messages_sent);
  line(os, "messages delivered", stats.messages_delivered);
  line(os, "bytes sent", stats.bytes_sent);
  line(os, "messages dropped", stats.messages_dropped);
  os << "drop breakdown by cause:\n";
  line(os, "random loss", stats.dropped_random_loss);
  line(os, "partition", stats.dropped_partition);
  line(os, "detached receiver", stats.dropped_detached);
  line(os, "crash-stopped endpoint", stats.dropped_crashed);
  os << "reliable delivery:\n";
  line(os, "retransmits", stats.retransmits);
  line(os, "duplicates suppressed", stats.duplicates_suppressed);
  line(os, "retries exhausted", stats.retries_exhausted);
  os << "adversary activity:\n";
  line(os, "tampered in flight", stats.messages_tampered);
  line(os, "equivocated copies", stats.messages_equivocated);
  line(os, "replayed duplicates", stats.messages_replayed);
  line(os, "delayed release", stats.messages_delayed);
  line(os, "link corruption", stats.messages_corrupted);
  line(os, "silenced (dropped)", stats.dropped_silenced);
  line(os, "quarantined (dropped)", stats.dropped_quarantined);
  os << "overload control:\n";
  line(os, "inbox overflow (dropped)", stats.dropped_overflow);
  line(os, "busy notices", stats.busy_notices);
  line(os, "busy deferrals", stats.busy_deferrals);
  line(os, "busy rejected (platform)", stats.busy_rejected);
  line(os, "breaker rejected", stats.breaker_rejected);
  line(os, "shed at admission", stats.shed_admission);
  line(os, "expired: endorse", stats.expired_endorse);
  line(os, "expired: ordering", stats.expired_order);
  line(os, "expired: validation", stats.expired_validate);
  line(os, "expired in flight", stats.expired_in_flight);
  line(os, "inbox high water", stats.inbox_high_water);
  os << "cross-shard atomic commit:\n";
  line(os, "prepares sent", stats.xshard_prepares);
  line(os, "commits", stats.xshard_commits);
  line(os, "aborts: vote-no", stats.xshard_aborts_voteno);
  line(os, "aborts: timeout", stats.xshard_aborts_timeout);
  line(os, "aborts: equivocation", stats.xshard_aborts_equivocation);
  line(os, "coordinator failovers", stats.xshard_failovers);
  os << "transport tier (tcp):\n";
  line(os, "connects", stats.tcp_connects);
  line(os, "reconnects", stats.tcp_reconnects);
  line(os, "heartbeat misses", stats.tcp_heartbeat_misses);
  line(os, "session resumptions", stats.tcp_session_resumptions);
  line(os, "partial-write continuations", stats.tcp_partial_write_continuations);
  line(os, "short reads", stats.tcp_short_reads);
  line(os, "frames torn", stats.tcp_frames_torn);
  line(os, "frames rejected (dup)", stats.tcp_frames_rejected);
  line(os, "write overflow (busy)", stats.tcp_write_overflow);
  line(os, "injected socket faults", stats.tcp_injected_faults);
  return os.str();
}

}  // namespace veil::net
