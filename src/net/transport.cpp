#include "net/transport.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "net/overload.hpp"

namespace veil::net {

Transport::Transport(common::Rng rng, LatencyModel latency)
    : rng_(rng), latency_(latency) {}

void Transport::attach(const Principal& name, Handler handler) {
  handlers_[name] = std::move(handler);
  wire_attach(name);
}

void Transport::detach(const Principal& name) {
  handlers_.erase(name);
  wire_detach(name);
}

bool Transport::attached(const Principal& name) const {
  return handlers_.contains(name);
}

bool Transport::reachable(const Principal& from, const Principal& to) const {
  if (partitions_.empty()) return true;
  for (const auto& group : partitions_) {
    if (group.contains(from)) return group.contains(to);
  }
  // Senders outside any declared partition reach nobody during a split.
  return false;
}

void Transport::set_fault_plan(const FaultPlan& plan) {
  fault_events_ = plan.ordered_events();
  next_fault_ = 0;
}

void Transport::set_byzantine_plan(const ByzantinePlan& plan) {
  byzantine_events_ = plan.ordered_events();
  next_byzantine_ = 0;
}

void Transport::set_crash_hook(const Principal& name, LifecycleHook hook) {
  crash_hooks_[name] = std::move(hook);
}

void Transport::set_restart_hook(const Principal& name, LifecycleHook hook) {
  restart_hooks_[name] = std::move(hook);
}

void Transport::crash(const Principal& name) {
  if (!crashed_.insert(name).second) return;
  const auto hook = crash_hooks_.find(name);
  if (hook != crash_hooks_.end() && hook->second) hook->second();
}

void Transport::restart(const Principal& name) {
  if (crashed_.erase(name) == 0) return;
  const auto hook = restart_hooks_.find(name);
  if (hook != restart_hooks_.end() && hook->second) hook->second();
}

void Transport::apply_faults_until(common::SimTime now) {
  while (true) {
    const bool fault_due = next_fault_ < fault_events_.size() &&
                           fault_events_[next_fault_].at <= now;
    const bool byz_due = next_byzantine_ < byzantine_events_.size() &&
                         byzantine_events_[next_byzantine_].at <= now;
    if (!fault_due && !byz_due) break;
    // Merge the two schedules by time; fault-plan events win ties.
    if (byz_due &&
        (!fault_due || byzantine_events_[next_byzantine_].at <
                           fault_events_[next_fault_].at)) {
      apply_byzantine(byzantine_events_[next_byzantine_++]);
      continue;
    }
    const FaultEvent& e = fault_events_[next_fault_++];
    switch (e.kind) {
      case FaultEvent::Kind::SetDropRate:
        drop_probability_ = e.drop_rate;
        break;
      case FaultEvent::Kind::SetPartitions:
        partitions_ = e.partitions;
        break;
      case FaultEvent::Kind::Heal:
        partitions_.clear();
        break;
      case FaultEvent::Kind::Crash:
        crash(e.principal);
        break;
      case FaultEvent::Kind::Restart:
        restart(e.principal);
        break;
    }
  }
}

void Transport::apply_byzantine(const ByzantineEvent& e) {
  switch (e.kind) {
    case ByzantineEvent::Kind::Tamper:
      adversaries_[e.principal].tamper_probability = e.probability;
      break;
    case ByzantineEvent::Kind::Equivocate:
      adversaries_[e.principal].equivocate = true;
      break;
    case ByzantineEvent::Kind::Silence: {
      AdversaryState& a = adversaries_[e.principal];
      a.silent = true;
      if (!e.target.empty()) a.silence_targets.insert(e.target);
      break;
    }
    case ByzantineEvent::Kind::Replay: {
      AdversaryState& a = adversaries_[e.principal];
      a.replay = true;
      a.replay_delay_us = e.delay_us;
      break;
    }
    case ByzantineEvent::Kind::Delay:
      adversaries_[e.principal].delay_us = e.delay_us;
      break;
    case ByzantineEvent::Kind::Honest:
      adversaries_.erase(e.principal);
      break;
    case ByzantineEvent::Kind::Quarantine:
      quarantine(e.principal);
      break;
    case ByzantineEvent::Kind::Release:
      release(e.principal);
      break;
  }
}

void Transport::flip_random_bit(common::Bytes& payload) {
  if (payload.empty()) return;
  const std::uint64_t bit = rng_.next_below(payload.size() * 8);
  payload[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
}

void Transport::send(const Principal& from, const Principal& to,
                     const std::string& topic, common::Bytes payload) {
  apply_faults_until(clock_.now());
  if (!handlers_.contains(to)) {
    throw common::ProtocolError("send to unknown principal: " + to);
  }
  ++stats_.messages_sent;
  stats_.bytes_sent += payload.size();

  if (crashed_.contains(from) || crashed_.contains(to)) {
    ++stats_.messages_dropped;
    ++stats_.dropped_crashed;
    return;
  }
  if (quarantined_.contains(from) || quarantined_.contains(to)) {
    ++stats_.messages_dropped;
    ++stats_.dropped_quarantined;
    return;
  }
  AdversaryState* adv = nullptr;
  if (!adversaries_.empty()) {
    const auto it = adversaries_.find(from);
    if (it != adversaries_.end()) adv = &it->second;
  }
  if (adv && adv->silent &&
      (adv->silence_targets.empty() || adv->silence_targets.contains(to))) {
    ++stats_.messages_dropped;
    ++stats_.dropped_silenced;
    return;
  }
  if (drop_probability_ > 0.0 && rng_.next_double() < drop_probability_) {
    ++stats_.messages_dropped;
    ++stats_.dropped_random_loss;
    return;
  }
  if (!reachable(from, to)) {
    ++stats_.messages_dropped;
    ++stats_.dropped_partition;
    return;
  }

  // Adversarial payload mutation. All randomness comes from the network
  // RNG, and the guards keep the draw sequence unchanged when no
  // adversary or corruption mode is configured, so existing seeded runs
  // replay byte-identically.
  if (adv && adv->tamper_probability > 0.0 &&
      rng_.next_double() < adv->tamper_probability) {
    flip_random_bit(payload);
    ++stats_.messages_tampered;
  }
  if (adv && adv->equivocate && adv->equivocation_seq++ % 2 == 1 &&
      !payload.empty()) {
    // Deterministic divergence: alternate recipients of a broadcast see a
    // copy whose middle byte differs.
    payload[payload.size() / 2] ^= 0x01;
    ++stats_.messages_equivocated;
  }
  if (corruption_probability_ > 0.0 &&
      rng_.next_double() < corruption_probability_) {
    flip_random_bit(payload);
    ++stats_.messages_corrupted;
  }

  common::SimTime latency =
      latency_.base_us +
      (latency_.jitter_us ? rng_.next_below(latency_.jitter_us) : 0) +
      static_cast<common::SimTime>(latency_.per_byte_us *
                                   static_cast<double>(payload.size()));
  if (adv && adv->delay_us > 0) {
    latency += adv->delay_us;
    ++stats_.messages_delayed;
  }
  Message msg{from, to, topic, std::move(payload), clock_.now(),
              clock_.now() + latency};
  if (adv && adv->replay) {
    Message dup = msg;
    dup.delivered_at += adv->replay_delay_us > 0 ? adv->replay_delay_us : 1;
    ++stats_.messages_replayed;
    offer(std::move(dup));
  }
  offer(std::move(msg));
}

void Transport::offer(Message msg) {
  if (inbox_capacity_ > 0 && inbox_depth_[msg.to] >= inbox_capacity_) {
    refuse_overflow(msg);
    return;
  }
  // Inbox depth is charged at the send point on every backend — a frame
  // still crossing the socket occupies its slot exactly as a queued
  // message does, so overflow decisions (and their RNG-free Busy
  // notices) are backend-invariant.
  const std::size_t depth = ++inbox_depth_[msg.to];
  stats_.inbox_high_water =
      std::max<std::uint64_t>(stats_.inbox_high_water, depth);
  Pending p{msg.delivered_at, sequence_++, std::move(msg), nullptr};
  switch (wire_transmit(p)) {
    case WireResult::Sent:
      return;  // will come back through enqueue_arrival()
    case WireResult::Local:
      queue_.push(std::move(p));
      return;
    case WireResult::Overflow: {
      // The link's bounded write queue refused the frame: roll back the
      // inbox charge and degrade gracefully instead of buffering
      // unboundedly — the sender gets the same Busy signal a full inbox
      // produces, so ReliableChannel defers instead of retry-storming.
      const auto it = inbox_depth_.find(p.message.to);
      if (it != inbox_depth_.end() && it->second > 0) --it->second;
      ++stats_.tcp_write_overflow;
      refuse_overflow(p.message);
      return;
    }
  }
}

void Transport::refuse_overflow(const Message& msg) {
  ++stats_.messages_dropped;
  ++stats_.dropped_overflow;
  // Never answer backpressure with backpressure: a refused Busy notice
  // would recurse, and the sender of one is already saturated.
  if (msg.topic == "net.busy") return;
  Busy busy;
  busy.topic = msg.topic;
  const std::size_t depth = inbox_depth_[msg.to];
  // Scale the hint with how far over capacity the receiver is: a queue at
  // 2x capacity suggests waiting twice the base interval.
  busy.retry_after_us =
      busy_retry_after_us_ *
      (1 + (inbox_capacity_ > 0 ? depth / inbox_capacity_ : 0));
  busy.queue_depth = depth;
  ++stats_.busy_notices;
  // Fixed latency (no jitter draw): control signals must not perturb the
  // seeded data-path RNG sequence. Notices are engine-synthesized and
  // never traverse the wire — they model what the kernel would signal.
  common::Bytes payload = busy.encode();
  const common::SimTime latency =
      latency_.base_us + static_cast<common::SimTime>(
                             latency_.per_byte_us *
                             static_cast<double>(payload.size()));
  Message notice{msg.to, msg.from, "net.busy", std::move(payload),
                 clock_.now(), clock_.now() + latency};
  const std::size_t notice_depth = ++inbox_depth_[notice.to];
  stats_.inbox_high_water =
      std::max<std::uint64_t>(stats_.inbox_high_water, notice_depth);
  queue_.push(Pending{notice.delivered_at, sequence_++, std::move(notice),
                      nullptr});
}

std::size_t Transport::inbox_depth(const Principal& name) const {
  const auto it = inbox_depth_.find(name);
  return it == inbox_depth_.end() ? 0 : it->second;
}

void Transport::broadcast(const Principal& from, const std::string& topic,
                          const common::Bytes& payload) {
  for (const auto& [name, handler] : handlers_) {
    if (name == from) continue;
    send(from, name, topic, payload);
  }
}

void Transport::schedule(common::SimTime at, std::function<void()> fn) {
  if (at < clock_.now()) at = clock_.now();
  Pending p;
  p.deliver_at = at;
  p.sequence = sequence_++;
  p.timer = std::move(fn);
  queue_.push(std::move(p));
}

std::size_t Transport::run() {
  std::size_t delivered = 0;
  while (true) {
    // Quiescence barrier: every frame a handler put on the wire must land
    // before the next pop, so the earliest-stamped event is popped first
    // regardless of socket timing. On the sim backend this is a no-op.
    wire_pump();
    if (queue_.empty()) break;
    Pending next = queue_.top();
    queue_.pop();
    clock_.advance_to(next.deliver_at);
    // Fault events scheduled before this delivery take effect first, so a
    // crash at time T suppresses deliveries at T' >= T.
    apply_faults_until(clock_.now());
    if (next.timer) {
      next.timer();
      continue;
    }
    // Popped from the wire: it no longer occupies the receiver's inbox,
    // whether it is delivered or dropped below.
    const auto depth = inbox_depth_.find(next.message.to);
    if (depth != inbox_depth_.end() && depth->second > 0) --depth->second;
    const auto it = handlers_.find(next.message.to);
    if (it == handlers_.end()) {
      ++stats_.messages_dropped;  // receiver detached in flight
      ++stats_.dropped_detached;
      continue;
    }
    if (crashed_.contains(next.message.to)) {
      ++stats_.messages_dropped;  // receiver crashed while in flight
      ++stats_.dropped_crashed;
      continue;
    }
    if (quarantined_.contains(next.message.to) ||
        quarantined_.contains(next.message.from)) {
      // Either endpoint quarantined while the message was in flight:
      // isolation pulls its packets too.
      ++stats_.messages_dropped;
      ++stats_.dropped_quarantined;
      continue;
    }
    // The recipient observes the raw bytes of everything delivered to it.
    auditor_.record(next.message.to, "net/" + next.message.topic,
                    next.message.payload.size());
    ++stats_.messages_delivered;
    ++delivered;
    it->second(next.message);
  }
  // Let any remaining fault or adversary events (e.g. a restart or a
  // release after the last message) fire rather than strand them behind
  // an empty queue.
  if (next_fault_ < fault_events_.size() ||
      next_byzantine_ < byzantine_events_.size()) {
    common::SimTime last = clock_.now();
    if (next_fault_ < fault_events_.size()) {
      last = std::max(last, fault_events_.back().at);
    }
    if (next_byzantine_ < byzantine_events_.size()) {
      last = std::max(last, byzantine_events_.back().at);
    }
    clock_.advance_to(last);
    apply_faults_until(last);
    // Restart hooks may have queued catch-up traffic (possibly still on
    // the wire); drain it.
    wire_pump();
    if (!queue_.empty()) delivered += run();
  }
  return delivered;
}

void Transport::set_partitions(std::vector<std::set<Principal>> partitions) {
  partitions_ = std::move(partitions);
}

}  // namespace veil::net
