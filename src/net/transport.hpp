// Transport: the message-passing engine behind every network backend.
//
// The engine owns everything the protocol layers observe — principals and
// handlers, the simulated clock, latency stamping, scripted fault and
// adversary schedules, quarantine, bounded inboxes, delivery ordering,
// leakage auditing, and the NetworkStats ledger. Two backends implement
// the wire underneath it:
//
//   SimNetwork   (net/network.hpp)  in-process queue, zero syscalls; the
//                                   deterministic default every test and
//                                   leakage audit runs on.
//   TcpTransport (net/tcp.hpp)      real loopback TCP sockets with a
//                                   poll event loop per node thread,
//                                   framing, connection supervision and
//                                   syscall-level fault injection.
//
// The split is what makes the cross-backend guarantee provable: all
// *modeled* faults (FaultPlan drops, partitions, crash-stop, Byzantine
// tampering) are decided here, at the message layer, with the same RNG
// draw sequence on either backend — so a seeded run produces bit-identical
// delivery orders, stats, and ledger digests over sockets as over the
// queue. Socket-level chaos (torn frames, resets, stalls) lives below the
// engine and must be *repaired* by the TCP backend's supervision and
// session resumption before messages surface, never surviving into the
// protocol layers as loss or duplication.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <set>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/clock.hpp"
#include "common/rng.hpp"
#include "net/fault.hpp"
#include "net/leakage.hpp"

namespace veil::net {

struct Message {
  Principal from;
  Principal to;
  std::string topic;
  common::Bytes payload;
  common::SimTime sent_at = 0;
  common::SimTime delivered_at = 0;
};

struct LatencyModel {
  common::SimTime base_us = 500;    // fixed one-way latency
  common::SimTime jitter_us = 200;  // uniform extra [0, jitter)
  double per_byte_us = 0.01;        // serialization cost
};

struct NetworkStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;  // total across all causes below
  std::uint64_t bytes_sent = 0;

  // Drop breakdown by cause.
  std::uint64_t dropped_random_loss = 0;
  std::uint64_t dropped_partition = 0;
  std::uint64_t dropped_detached = 0;  // receiver detached in flight
  std::uint64_t dropped_crashed = 0;   // sender or receiver crash-stopped

  // Reliable-delivery accounting (incremented by ReliableChannel).
  std::uint64_t retransmits = 0;
  std::uint64_t duplicates_suppressed = 0;
  // Messages abandoned because the retry budget ran out — distinct from
  // giving up on a crashed/detached endpoint, and from the drop causes
  // above: the wire sends were already counted there; this counts the
  // *decisions* to stop retrying a live peer.
  std::uint64_t retries_exhausted = 0;

  // Byzantine adversary accounting (net/fault.hpp ByzantinePlan plus the
  // link-level corruption mode). The dropped_* entries are also counted
  // in messages_dropped.
  std::uint64_t messages_tampered = 0;
  std::uint64_t messages_equivocated = 0;
  std::uint64_t messages_replayed = 0;
  std::uint64_t messages_delayed = 0;
  std::uint64_t messages_corrupted = 0;  // link-level bit-flips in flight
  std::uint64_t dropped_silenced = 0;
  std::uint64_t dropped_quarantined = 0;

  // Overload-control accounting. dropped_overflow is also counted in
  // messages_dropped; the rest are decisions made above the wire.
  std::uint64_t dropped_overflow = 0;   // receiver inbox at capacity
  std::uint64_t busy_notices = 0;       // Busy{retry_after} responses sent
  std::uint64_t busy_deferrals = 0;     // retransmits postponed by Busy
  std::uint64_t busy_rejected = 0;      // platform refusals: pending set full
  std::uint64_t breaker_rejected = 0;   // sends refused by an open breaker
  std::uint64_t shed_admission = 0;     // admission-controller sheds
  std::uint64_t expired_endorse = 0;    // TTL'd work dropped per stage
  std::uint64_t expired_order = 0;
  std::uint64_t expired_validate = 0;
  std::uint64_t expired_in_flight = 0;  // reliable sends abandoned past TTL
  std::uint64_t inbox_high_water = 0;   // deepest per-receiver queue seen

  // Cross-shard atomic-commit accounting (ledger/xshard.hpp). Prepares
  // count per-participant prepare messages; commits/aborts count 2PC
  // outcomes once per transaction, with aborts broken down by cause so
  // operators can tell overload (timeout) from contention (vote-no) from
  // an adversarial coordinator (equivocation). Failovers count standby
  // takeovers that had to reconstruct in-doubt transactions.
  std::uint64_t xshard_prepares = 0;
  std::uint64_t xshard_commits = 0;
  std::uint64_t xshard_aborts_voteno = 0;
  std::uint64_t xshard_aborts_timeout = 0;
  std::uint64_t xshard_aborts_equivocation = 0;
  std::uint64_t xshard_failovers = 0;

  // Transport-tier accounting (net/tcp.hpp). All zero on SimNetwork: the
  // in-process queue has no connections to supervise. Reconnects count
  // re-established links (the first connect is not a reconnect);
  // resumptions count reconnects that had unacked frames to replay.
  // Frames torn/rejected count checksum and framing failures the
  // supervisor repaired by killing and resuming the connection — a
  // nonzero value with zero duplicate applies is session resumption
  // working for a living.
  std::uint64_t tcp_connects = 0;
  std::uint64_t tcp_reconnects = 0;
  std::uint64_t tcp_heartbeat_misses = 0;
  std::uint64_t tcp_session_resumptions = 0;
  std::uint64_t tcp_partial_write_continuations = 0;
  std::uint64_t tcp_short_reads = 0;
  std::uint64_t tcp_frames_torn = 0;      // checksum failures at the decoder
  std::uint64_t tcp_frames_rejected = 0;  // duplicate frames dropped by seq
  std::uint64_t tcp_write_overflow = 0;   // sends refused: link queue full
  std::uint64_t tcp_injected_faults = 0;  // injector decisions that fired
};

/// Why a cross-shard transaction aborted (the counter breakdown above).
enum class XAbortCause : std::uint8_t {
  VoteNo = 0,
  Timeout = 1,
  Equivocation = 2,
};

/// Pipeline stage at which TTL'd work was found already expired. Each
/// stage of endorse -> order -> validate drops expired work early and
/// counts the drop here, so render_network_stats can show where load
/// died under overload.
enum class Stage : std::uint8_t { Endorse = 0, Order = 1, Validate = 2 };

class Transport {
 public:
  using Handler = std::function<void(const Message&)>;
  using LifecycleHook = std::function<void()>;

  virtual ~Transport() = default;

  /// Register a principal and its message handler. Re-registering
  /// replaces the handler (used when a node restarts).
  void attach(const Principal& name, Handler handler);
  void detach(const Principal& name);
  bool attached(const Principal& name) const;

  /// Queue a message. Throws common::ProtocolError if `to` was never
  /// attached. The network auditor records that `to` observed the
  /// payload bytes under label "net/<topic>".
  void send(const Principal& from, const Principal& to,
            const std::string& topic, common::Bytes payload);

  /// Broadcast to every attached principal except the sender.
  void broadcast(const Principal& from, const std::string& topic,
                 const common::Bytes& payload);

  /// Deliver all queued messages and timers (and any they trigger) in
  /// time order. Returns the number of messages delivered. On a socket
  /// backend this first waits for every in-flight frame to land, so the
  /// pop order — and therefore every handler-visible transcript — is
  /// identical to the simulated backend's.
  std::size_t run();

  /// Schedule `fn` to run at simulated time `at` (clamped to now). Timers
  /// share the delivery queue, so ordering against messages is exact.
  /// ReliableChannel uses this for retransmission timeouts.
  void schedule(common::SimTime at, std::function<void()> fn);

  /// Probability in [0,1] that any given message is silently dropped.
  void set_drop_probability(double p) { drop_probability_ = p; }

  /// Partition the network into groups; messages across groups drop.
  /// An empty partition list removes the partition.
  void set_partitions(std::vector<std::set<Principal>> partitions);

  /// Install a scripted fault schedule. Events fire as simulated time
  /// advances (at send and delivery points). Replaces any earlier plan;
  /// events whose time has already passed fire immediately on the next
  /// send/run.
  void set_fault_plan(const FaultPlan& plan);

  /// Install a scripted adversary schedule (net/fault.hpp ByzantinePlan).
  /// Applied lazily like the fault plan; when events from both plans are
  /// due at the same instant, fault-plan events apply first.
  void set_byzantine_plan(const ByzantinePlan& plan);

  /// Isolate `name`: its sends and in-flight deliveries drop (counted as
  /// dropped_quarantined) until release(). Unlike crash(), no lifecycle
  /// hook fires — the principal keeps its state but loses the network.
  /// Detection code calls this when it convicts a principal.
  void quarantine(const Principal& name) { quarantined_.insert(name); }
  void release(const Principal& name) { quarantined_.erase(name); }
  bool is_quarantined(const Principal& name) const {
    return quarantined_.contains(name);
  }

  /// Link-level corruption: probability that a payload has one random bit
  /// flipped in flight (sender-agnostic, unlike ByzantinePlan tampering).
  /// Exercises every decode path against corrupted — not just truncated —
  /// bytes.
  void set_corruption_probability(double p) { corruption_probability_ = p; }

  /// Crash/restart hooks, invoked when a FaultPlan (or crash()/restart())
  /// crash-stops or revives `name`. The crash hook models losing volatile
  /// state; the restart hook models WAL replay + catch-up.
  void set_crash_hook(const Principal& name, LifecycleHook hook);
  void set_restart_hook(const Principal& name, LifecycleHook hook);

  /// Immediate crash-stop / restart (FaultPlan events route through
  /// these; tests may call them directly). Crash semantics live entirely
  /// at this layer on every backend: sends to or from a crashed
  /// principal drop at the send point, in-flight deliveries drop at the
  /// pop point — the socket backend does not tear down connections for a
  /// *modeled* crash, which is exactly why seeded transcripts match.
  void crash(const Principal& name);
  void restart(const Principal& name);
  bool crashed(const Principal& name) const { return crashed_.contains(name); }

  const common::SimClock& clock() const { return clock_; }
  virtual const NetworkStats& stats() const { return stats_; }
  LeakageAuditor& auditor() { return auditor_; }
  const LeakageAuditor& auditor() const { return auditor_; }

  /// Bound every inbox to `cap` queued messages per receiver (0 =
  /// unbounded, the default). A send that would exceed the bound is
  /// dropped (dropped_overflow) and answered with a Busy{retry_after}
  /// notice on topic "net.busy" so the sender backs off instead of
  /// retry-storming. Busy notices themselves bypass the bound — the
  /// backpressure signal must not be backpressured away.
  void set_inbox_capacity(std::size_t cap) { inbox_capacity_ = cap; }
  std::size_t inbox_capacity() const { return inbox_capacity_; }
  /// Base retry-after hint in Busy notices; scaled up with queue depth.
  void set_busy_retry_after(common::SimTime us) { busy_retry_after_us_ = us; }
  /// Messages currently queued for `name` (timers excluded).
  std::size_t inbox_depth(const Principal& name) const;

  /// ReliableChannel accounting hooks.
  void count_retransmit() { ++stats_.retransmits; }
  void count_duplicate() { ++stats_.duplicates_suppressed; }
  void count_retry_exhausted() { ++stats_.retries_exhausted; }

  /// Overload-control accounting hooks (channel, admission controller,
  /// and platform stage checks report through these).
  void count_busy_deferral() { ++stats_.busy_deferrals; }
  void count_busy_rejected() { ++stats_.busy_rejected; }
  void count_breaker_rejected() { ++stats_.breaker_rejected; }
  void count_shed() { ++stats_.shed_admission; }
  void count_expired_in_flight() { ++stats_.expired_in_flight; }
  void count_expired(Stage stage) {
    switch (stage) {
      case Stage::Endorse: ++stats_.expired_endorse; break;
      case Stage::Order: ++stats_.expired_order; break;
      case Stage::Validate: ++stats_.expired_validate; break;
    }
  }

  /// Cross-shard 2PC accounting hooks (ledger/xshard.hpp).
  void count_xshard_prepare() { ++stats_.xshard_prepares; }
  void count_xshard_commit() { ++stats_.xshard_commits; }
  void count_xshard_failover() { ++stats_.xshard_failovers; }
  void count_xshard_abort(XAbortCause cause) {
    switch (cause) {
      case XAbortCause::VoteNo: ++stats_.xshard_aborts_voteno; break;
      case XAbortCause::Timeout: ++stats_.xshard_aborts_timeout; break;
      case XAbortCause::Equivocation:
        ++stats_.xshard_aborts_equivocation;
        break;
    }
  }

 protected:
  Transport(common::Rng rng, LatencyModel latency);

  struct Pending {
    common::SimTime deliver_at;
    std::uint64_t sequence;  // tie-break for determinism
    Message message;
    std::function<void()> timer;  // set => timer event, not a message
    bool operator>(const Pending& other) const {
      if (deliver_at != other.deliver_at) return deliver_at > other.deliver_at;
      return sequence > other.sequence;
    }
  };

  /// How wire_transmit disposed of a message the engine offered it.
  enum class WireResult : std::uint8_t {
    Local,     // backend has no wire; engine queues it in-process
    Sent,      // framed and handed to the sender's event loop
    Overflow,  // bounded per-link write queue is full: refuse with Busy
  };

  // -- Wire hooks -----------------------------------------------------
  // The sim backend keeps the defaults. A socket backend overrides them
  // to move the engine's already-fault-filtered, latency-stamped
  // messages as framed bytes, and to merge arrivals back into the
  // delivery queue before any pop.

  /// Offered a message that survived every modeled fault. Returning
  /// Local keeps it in-process (the engine still owns `pending`); Sent
  /// means the backend moved it out and the frame will eventually come
  /// back through enqueue_arrival(); Overflow makes the engine count the
  /// refusal and answer the sender with a Busy notice.
  virtual WireResult wire_transmit(Pending& pending) {
    (void)pending;
    return WireResult::Local;
  }

  /// Block until no transmitted frame is still in flight, merging every
  /// arrival into the delivery queue via enqueue_arrival(). Called
  /// before each pop so delivery order never depends on socket timing.
  virtual void wire_pump() {}

  /// A principal was attached/detached (socket backends bind listeners
  /// here). Detach does not tear sockets down: in-flight traffic to a
  /// detached principal must still arrive to be counted dropped_detached
  /// at the pop point, exactly as on the sim backend.
  virtual void wire_attach(const Principal& name) { (void)name; }
  virtual void wire_detach(const Principal& name) { (void)name; }

  /// Merge a frame that came off the wire back into the delivery queue.
  /// Must only be called from within wire_pump() (engine thread).
  void enqueue_arrival(Pending pending) { queue_.push(std::move(pending)); }

  NetworkStats& mutable_stats() { return stats_; }

 private:
  bool reachable(const Principal& from, const Principal& to) const;
  /// Admit `msg` to the wire: bounded-inbox check, depth accounting,
  /// then wire_transmit with local enqueue as the fallback.
  void offer(Message msg);
  /// Refuse `msg` at a full inbox (or full link write queue): count the
  /// overflow and answer the sender with a Busy notice (unless the
  /// refused message *is* one).
  void refuse_overflow(const Message& msg);
  /// Apply all fault-plan and byzantine-plan events scheduled at or
  /// before `now`, merged in time order.
  void apply_faults_until(common::SimTime now);
  void apply_byzantine(const ByzantineEvent& e);
  /// Flip one uniformly chosen bit of `payload` (no-op when empty).
  void flip_random_bit(common::Bytes& payload);

  /// Current adversarial behaviors of one principal (ByzantinePlan).
  struct AdversaryState {
    double tamper_probability = 0.0;
    bool equivocate = false;
    bool replay = false;
    common::SimTime replay_delay_us = 0;
    common::SimTime delay_us = 0;
    bool silent = false;
    std::set<Principal> silence_targets;  // empty + silent => everyone
    std::uint64_t equivocation_seq = 0;
  };

  common::Rng rng_;
  LatencyModel latency_;
  common::SimClock clock_;
  std::map<Principal, Handler> handlers_;
  std::priority_queue<Pending, std::vector<Pending>, std::greater<>> queue_;
  std::uint64_t sequence_ = 0;
  double drop_probability_ = 0.0;
  std::vector<std::set<Principal>> partitions_;
  std::set<Principal> crashed_;
  std::map<Principal, LifecycleHook> crash_hooks_;
  std::map<Principal, LifecycleHook> restart_hooks_;
  std::vector<FaultEvent> fault_events_;  // time-ordered
  std::size_t next_fault_ = 0;
  std::vector<ByzantineEvent> byzantine_events_;  // time-ordered
  std::size_t next_byzantine_ = 0;
  std::map<Principal, AdversaryState> adversaries_;
  std::set<Principal> quarantined_;
  double corruption_probability_ = 0.0;
  std::size_t inbox_capacity_ = 0;  // 0 = unbounded
  common::SimTime busy_retry_after_us_ = 10'000;
  std::map<Principal, std::size_t> inbox_depth_;
  NetworkStats stats_;
  LeakageAuditor auditor_;
};

}  // namespace veil::net
