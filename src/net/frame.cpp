#include "net/frame.hpp"

#include <cstring>

#include "common/error.hpp"
#include "common/serialize.hpp"

namespace veil::net {

namespace {

constexpr std::uint32_t kMagic = 0x31524656;  // "VFR1" little-endian

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv1a(std::uint64_t h, const std::uint8_t* data,
                    std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= kFnvPrime;
  }
  return h;
}

void put_u32(common::Bytes& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(common::Bytes& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

bool valid_type(std::uint8_t t) {
  return t >= static_cast<std::uint8_t>(FrameType::Hello) &&
         t <= static_cast<std::uint8_t>(FrameType::Pong);
}

}  // namespace

common::Bytes Frame::encode() const {
  common::Bytes out;
  out.reserve(kHeaderSize + body.size() + kChecksumSize);
  put_u32(out, kMagic);
  out.push_back(static_cast<std::uint8_t>(type));
  put_u64(out, link_seq);
  put_u32(out, static_cast<std::uint32_t>(body.size()));
  out.insert(out.end(), body.begin(), body.end());
  put_u64(out, fnv1a(kFnvOffset, out.data(), out.size()));
  return out;
}

Frame Frame::decode(common::BytesView wire) {
  FrameDecoder decoder;
  decoder.feed(wire);
  Frame frame;
  if (!decoder.next(frame)) {
    throw common::ProtocolError("frame: truncated");
  }
  if (decoder.buffered() != 0) {
    throw common::ProtocolError("frame: trailing bytes");
  }
  return frame;
}

void FrameDecoder::feed(common::BytesView chunk) {
  if (poisoned_) throw common::ProtocolError("frame: decoder poisoned");
  // Compact consumed prefix before growing; keeps the buffer bounded by
  // one partial frame plus whatever one read returned.
  if (pos_ > 0 && pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  } else if (pos_ > 4096) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), chunk.begin(), chunk.end());
}

bool FrameDecoder::next(Frame& out) {
  if (poisoned_) throw common::ProtocolError("frame: decoder poisoned");
  const std::size_t avail = buf_.size() - pos_;
  if (avail < Frame::kHeaderSize) return false;
  const std::uint8_t* p = buf_.data() + pos_;
  if (get_u32(p) != kMagic) {
    poisoned_ = true;
    throw common::ProtocolError("frame: bad magic");
  }
  const std::uint8_t type = p[4];
  if (!valid_type(type)) {
    poisoned_ = true;
    throw common::ProtocolError("frame: unknown type");
  }
  const std::uint64_t link_seq = get_u64(p + 5);
  const std::uint32_t body_len = get_u32(p + 13);
  if (body_len > Frame::kMaxBody) {
    // An attacker (or torn stream misread) declaring a huge length must
    // not make us buffer it; reject before allocating.
    poisoned_ = true;
    throw common::ProtocolError("frame: oversized declared length");
  }
  const std::size_t total =
      Frame::kHeaderSize + body_len + Frame::kChecksumSize;
  if (avail < total) return false;
  const std::uint64_t declared =
      get_u64(p + Frame::kHeaderSize + body_len);
  const std::uint64_t actual =
      fnv1a(kFnvOffset, p, Frame::kHeaderSize + body_len);
  if (declared != actual) {
    poisoned_ = true;
    throw common::ProtocolError("frame: checksum mismatch");
  }
  out.type = static_cast<FrameType>(type);
  out.link_seq = link_seq;
  out.body.assign(p + Frame::kHeaderSize, p + Frame::kHeaderSize + body_len);
  pos_ += total;
  return true;
}

common::Bytes WireMessage::encode() const {
  common::Writer w;
  w.str(message.from);
  w.str(message.to);
  w.str(message.topic);
  w.bytes(message.payload);
  w.u64(message.sent_at);
  w.u64(message.delivered_at);
  w.u64(engine_seq);
  return w.take();
}

WireMessage WireMessage::decode(common::BytesView data) {
  common::Reader r(data);
  WireMessage m;
  m.message.from = r.str();
  m.message.to = r.str();
  m.message.topic = r.str();
  m.message.payload = r.bytes();
  m.message.sent_at = r.u64();
  m.message.delivered_at = r.u64();
  m.engine_seq = r.u64();
  if (!r.done()) throw common::ProtocolError("wire message: trailing bytes");
  return m;
}

common::Bytes HelloBody::encode() const {
  common::Writer w;
  w.str(from);
  w.str(to);
  w.u64(epoch);
  return w.take();
}

HelloBody HelloBody::decode(common::BytesView data) {
  common::Reader r(data);
  HelloBody h;
  h.from = r.str();
  h.to = r.str();
  h.epoch = r.u64();
  if (!r.done()) throw common::ProtocolError("hello: trailing bytes");
  return h;
}

common::Bytes WelcomeBody::encode() const {
  common::Writer w;
  w.u64(last_recv_seq);
  return w.take();
}

WelcomeBody WelcomeBody::decode(common::BytesView data) {
  common::Reader r(data);
  WelcomeBody wb;
  wb.last_recv_seq = r.u64();
  if (!r.done()) throw common::ProtocolError("welcome: trailing bytes");
  return wb;
}

common::Bytes AckBody::encode() const {
  common::Writer w;
  w.u64(cum_seq);
  return w.take();
}

AckBody AckBody::decode(common::BytesView data) {
  common::Reader r(data);
  AckBody a;
  a.cum_seq = r.u64();
  if (!r.done()) throw common::ProtocolError("ack: trailing bytes");
  return a;
}

}  // namespace veil::net
