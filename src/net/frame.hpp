// Wire framing for the real-socket transport.
//
// TCP is a byte stream: a read can return half a length prefix, three
// frames and a torn tail, or one byte — and a fault-injected stream will.
// Every frame is length-prefixed and checksummed so the decoder can (a)
// reassemble messages across arbitrary read boundaries and (b) detect a
// torn or corrupted stream *deterministically* instead of desynchronizing
// and misparsing everything after the damage. A checksum failure poisons
// the decoder: framing is unrecoverable within a connection, so the
// supervisor kills the socket and session resumption replays the unacked
// tail on the next connection — corruption costs a reconnect, never a
// lost or duplicated message.
//
// Frame layout (little-endian):
//   u32  magic     "VFR1"
//   u8   type      FrameType
//   u64  link_seq  per-link Data sequence (0 on control frames)
//   u32  body_len  <= kMaxBody
//   ...  body
//   u64  checksum  FNV-1a 64 over everything above
//
// The checksum is an integrity check against accidental damage (torn
// writes, injected corruption), not an authenticity mechanism — peers are
// authenticated at the protocol layers above, and the engine's Byzantine
// tampering is applied to message payloads *before* framing precisely so
// that adversarial bit-flips survive the frame check and reach the
// platform decode paths, exactly as on the simulated backend.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "net/transport.hpp"

namespace veil::net {

enum class FrameType : std::uint8_t {
  Hello = 1,    // client->server: link identity + session epoch
  Welcome = 2,  // server->client: last contiguous Data seq received
  Data = 3,     // one engine message (WireMessage body)
  Ack = 4,      // server->client: cumulative Data seq delivered
  Ping = 5,     // heartbeat probe
  Pong = 6,     // heartbeat answer
};

struct Frame {
  FrameType type = FrameType::Data;
  std::uint64_t link_seq = 0;  // 1-based per-link Data counter; 0 = control
  common::Bytes body;

  static constexpr std::size_t kHeaderSize = 4 + 1 + 8 + 4;
  static constexpr std::size_t kChecksumSize = 8;
  static constexpr std::size_t kMaxBody = 16u << 20;  // 16 MiB sanity bound

  common::Bytes encode() const;
  /// Whole-buffer convenience (tests, fuzzing). Throws
  /// common::ProtocolError on any framing violation or trailing bytes.
  static Frame decode(common::BytesView wire);

  bool operator==(const Frame&) const = default;
};

/// Incremental frame reassembly over arbitrary read boundaries. feed()
/// appends raw bytes; next() extracts complete frames in order. Any
/// framing violation — bad magic, unknown type, oversized declared
/// length, checksum mismatch — throws common::ProtocolError and poisons
/// the decoder: every later call throws too, so a connection that tore
/// once cannot silently resynchronize onto garbage.
class FrameDecoder {
 public:
  /// Throws if the decoder is poisoned.
  void feed(common::BytesView chunk);
  /// Extract the next complete frame into `out`. Returns false when more
  /// bytes are needed. Throws common::ProtocolError (and poisons the
  /// decoder) on a framing violation.
  bool next(Frame& out);
  bool poisoned() const { return poisoned_; }
  std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  common::Bytes buf_;
  std::size_t pos_ = 0;
  bool poisoned_ = false;
};

/// An engine message as carried in a Data frame: the Message itself plus
/// its delivery stamp and the engine's global tie-break sequence, so the
/// receiving engine merges it at exactly the queue position the simulated
/// backend would have used. This is what makes delivery order — and every
/// digest downstream of it — backend-invariant.
struct WireMessage {
  Message message;
  std::uint64_t engine_seq = 0;

  common::Bytes encode() const;
  /// Throws common::Error on malformed input.
  static WireMessage decode(common::BytesView data);
};

/// Hello body: identifies the directed link (initiator -> acceptor) and
/// the session epoch (1 on first connect, +1 per reconnect).
struct HelloBody {
  Principal from;
  Principal to;
  std::uint64_t epoch = 0;

  common::Bytes encode() const;
  static HelloBody decode(common::BytesView data);
};

/// Welcome body: the acceptor's last contiguously delivered Data seq on
/// this link, i.e. the resumption point. The initiator retransmits
/// everything after it; the acceptor's seq dedup drops anything at or
/// before it that arrives anyway.
struct WelcomeBody {
  std::uint64_t last_recv_seq = 0;

  common::Bytes encode() const;
  static WelcomeBody decode(common::BytesView data);
};

/// Ack body: cumulative — every Data frame with seq <= cum_seq has been
/// handed to the receiving engine and may be dropped from the sender's
/// retransmit ring.
struct AckBody {
  std::uint64_t cum_seq = 0;

  common::Bytes encode() const;
  static AckBody decode(common::BytesView data);
};

}  // namespace veil::net
