// Leakage auditing: who observed what.
//
// The paper's privacy arguments are statements about information flow —
// "the ordering service has full visibility of channel members as well as
// all transactions", "the public ledger includes ... the list of
// participants". The LeakageAuditor turns those into measurable facts:
// every layer records, at each trust boundary, which principal observed
// which labelled datum and how many bytes of it. Tests assert exact
// non-leakage; bench_leakage reports the observed-bytes matrix per
// mechanism.
//
// Labels are hierarchical strings, e.g.
//   "tx/42/payload", "tx/42/parties", "contract/loc/code".
// Queries match by exact label or by prefix ("tx/42/").
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace veil::net {

using Principal = std::string;

struct Observation {
  Principal observer;
  std::string label;
  std::uint64_t bytes = 0;
  bool plaintext = true;  // false: observed only ciphertext/hash of it
};

class LeakageAuditor {
 public:
  /// Record that `observer` saw `bytes` bytes of the datum `label`.
  /// `plaintext=false` records sight of an opaque form (ciphertext,
  /// hash); such sightings do NOT count as leakage in plaintext queries.
  void record(const Principal& observer, std::string label,
              std::uint64_t bytes, bool plaintext = true);

  /// Did `observer` see the plaintext of any datum with this label prefix?
  bool saw(const Principal& observer, std::string_view label_prefix) const;

  /// Did `observer` see even the opaque form (hash/ciphertext)?
  bool saw_any_form(const Principal& observer,
                    std::string_view label_prefix) const;

  /// All principals that saw plaintext under the prefix.
  std::set<Principal> observers_of(std::string_view label_prefix) const;

  /// Total plaintext bytes `observer` saw under the prefix.
  std::uint64_t bytes_seen(const Principal& observer,
                           std::string_view label_prefix = "") const;

  /// Total opaque (ciphertext/hash) bytes `observer` saw under the prefix.
  std::uint64_t opaque_bytes_seen(const Principal& observer,
                                  std::string_view label_prefix = "") const;

  const std::vector<Observation>& observations() const { return log_; }
  void clear() { log_.clear(); }

 private:
  std::vector<Observation> log_;
};

}  // namespace veil::net
