#include "net/reliable.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/serialize.hpp"

namespace veil::net {

namespace {
// Wire magics distinguish data envelopes from acks and reject junk early.
constexpr std::uint32_t kDataMagic = 0x56524331;  // "VRC1"
constexpr std::uint32_t kAckMagic = 0x56524341;   // "VRCA"
constexpr const char* kAckTopic = "rel.ack";

common::Bytes encode_ack(std::uint64_t seq) {
  common::Writer w;
  w.u32(kAckMagic);
  w.u64(seq);
  return w.take();
}
}  // namespace

common::Bytes ReliableChannel::Envelope::encode() const {
  common::Writer w;
  w.u32(kDataMagic);
  w.u64(seq);
  w.bytes(payload);
  return w.take();
}

ReliableChannel::Envelope ReliableChannel::Envelope::decode(
    common::BytesView data) {
  common::Reader r(data);
  if (r.u32() != kDataMagic) {
    throw common::ProtocolError("reliable: bad envelope magic");
  }
  Envelope env;
  env.seq = r.u64();
  env.payload = r.bytes();
  if (!r.done()) throw common::ProtocolError("reliable: trailing bytes");
  return env;
}

bool ReliableChannel::SeenWindow::fresh(std::uint64_t seq) {
  if (seq < next) return false;
  if (seq == next) {
    ++next;
    // Absorb any out-of-order arrivals that are now contiguous.
    while (!ahead.empty() && *ahead.begin() == next) {
      ahead.erase(ahead.begin());
      ++next;
    }
    return true;
  }
  return ahead.insert(seq).second;
}

ReliableChannel::ReliableChannel(SimNetwork& network, RetryPolicy policy)
    : network_(&network), policy_(policy) {}

void ReliableChannel::attach(const Principal& name,
                             SimNetwork::Handler handler) {
  network_->attach(name, [this, name, handler = std::move(handler)](
                             const Message& msg) {
    on_message(name, handler, msg);
  });
}

void ReliableChannel::on_message(const Principal& self,
                                 const SimNetwork::Handler& handler,
                                 const Message& msg) {
  if (msg.topic == kAckTopic) {
    try {
      common::Reader r(msg.payload);
      if (r.u32() != kAckMagic) return;
      const std::uint64_t seq = r.u64();
      // The ack travels receiver -> sender, so the original direction is
      // (msg.to, msg.from).
      if (in_flight_.erase(Key{msg.to, msg.from, seq}) > 0) ++stats_.acked;
    } catch (const common::Error&) {
      ++stats_.malformed;
    }
    return;
  }

  Envelope env;
  try {
    env = Envelope::decode(msg.payload);
  } catch (const common::Error&) {
    ++stats_.malformed;  // fail closed: undecodable traffic is dropped
    return;
  }
  // Ack even duplicates — the earlier ack may have been lost.
  network_->send(self, msg.from, kAckTopic, encode_ack(env.seq));
  if (!seen_[{msg.from, self}].fresh(env.seq)) {
    ++stats_.duplicates_suppressed;
    network_->count_duplicate();
    return;
  }
  if (!handler) return;  // send-only endpoint
  Message inner = msg;
  inner.payload = std::move(env.payload);
  handler(inner);
}

void ReliableChannel::send(const Principal& from, const Principal& to,
                           const std::string& topic, common::Bytes payload) {
  Envelope env;
  env.seq = next_seq_[{from, to}]++;
  env.payload = std::move(payload);

  Key key{from, to, env.seq};
  InFlight flight;
  flight.topic = topic;
  flight.wire = env.encode();
  flight.timeout = policy_.initial_timeout_us;
  ++stats_.sent;
  network_->send(from, to, topic, flight.wire);
  in_flight_.insert_or_assign(key, std::move(flight));
  arm_timer(std::move(key));
}

void ReliableChannel::arm_timer(Key key) {
  const auto it = in_flight_.find(key);
  if (it == in_flight_.end()) return;
  const common::SimTime fire_at = network_->clock().now() + it->second.timeout;
  network_->schedule(fire_at, [this, key = std::move(key)]() {
    const auto flight = in_flight_.find(key);
    if (flight == in_flight_.end()) return;  // acked in the meantime
    InFlight& f = flight->second;
    // A crashed sender loses its retransmission state; a detached
    // receiver will never ack. Both end the retry loop — fail closed.
    // Exhausting the retry budget against a live, attached peer is the
    // interesting case operationally (the link is lossy beyond what the
    // policy tolerates), so it gets its own network-wide counter.
    if (f.attempts >= policy_.max_attempts ||
        network_->crashed(key.from) || !network_->attached(key.to)) {
      if (f.attempts >= policy_.max_attempts) {
        network_->count_retry_exhausted();
      }
      ++stats_.gave_up;
      in_flight_.erase(flight);
      return;
    }
    ++f.attempts;
    ++stats_.retransmits;
    network_->count_retransmit();
    network_->send(key.from, key.to, f.topic, f.wire);
    f.timeout = static_cast<common::SimTime>(
        static_cast<double>(f.timeout) * policy_.backoff_factor);
    arm_timer(key);
  });
}

}  // namespace veil::net
