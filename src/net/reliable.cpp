#include "net/reliable.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/serialize.hpp"

namespace veil::net {

namespace {
// Wire magics distinguish data envelopes from acks and reject junk early.
constexpr std::uint32_t kDataMagic = 0x56524331;  // "VRC1"
constexpr std::uint32_t kAckMagic = 0x56524341;   // "VRCA"
constexpr const char* kAckTopic = "rel.ack";
constexpr const char* kBusyTopic = "net.busy";

common::Bytes encode_ack(std::uint64_t seq) {
  common::Writer w;
  w.u32(kAckMagic);
  w.u64(seq);
  return w.take();
}
}  // namespace

common::Bytes ReliableChannel::Envelope::encode() const {
  common::Writer w;
  w.u32(kDataMagic);
  w.u64(seq);
  w.u64(deadline_us);
  w.bytes(payload);
  return w.take();
}

ReliableChannel::Envelope ReliableChannel::Envelope::decode(
    common::BytesView data) {
  common::Reader r(data);
  if (r.u32() != kDataMagic) {
    throw common::ProtocolError("reliable: bad envelope magic");
  }
  Envelope env;
  env.seq = r.u64();
  env.deadline_us = r.u64();
  env.payload = r.bytes();
  if (!r.done()) throw common::ProtocolError("reliable: trailing bytes");
  return env;
}

bool ReliableChannel::SeenWindow::fresh(std::uint64_t seq) {
  if (seq < next) return false;
  if (seq == next) {
    ++next;
    // Absorb any out-of-order arrivals that are now contiguous.
    while (!ahead.empty() && *ahead.begin() == next) {
      ahead.erase(ahead.begin());
      ++next;
    }
    return true;
  }
  return ahead.insert(seq).second;
}

ReliableChannel::ReliableChannel(Transport& network, RetryPolicy policy)
    : network_(&network),
      policy_(policy),
      jitter_rng_(policy.jitter_seed) {}

void ReliableChannel::attach(const Principal& name,
                             Transport::Handler handler) {
  network_->attach(name, [this, name, handler = std::move(handler)](
                             const Message& msg) {
    on_message(name, handler, msg);
  });
}

void ReliableChannel::on_message(const Principal& self,
                                 const Transport::Handler& handler,
                                 const Message& msg) {
  if (msg.topic == kAckTopic) {
    try {
      common::Reader r(msg.payload);
      if (r.u32() != kAckMagic) return;
      const std::uint64_t seq = r.u64();
      // The ack travels receiver -> sender, so the original direction is
      // (msg.to, msg.from).
      const auto it = in_flight_.find(Key{msg.to, msg.from, seq});
      if (it != in_flight_.end()) {
        ++stats_.acked;
        if (breaker_) {
          breaker_->record_success(msg.from, network_->clock().now());
        }
        finish_flight(it);
      }
    } catch (const common::Error&) {
      ++stats_.malformed;
    }
    return;
  }
  if (msg.topic == kBusyTopic) {
    // A bounded inbox refused one of our sends; hold this link's
    // retransmissions until the hinted time.
    try {
      const Busy busy = Busy::decode(msg.payload);
      common::SimTime& until = busy_until_[{msg.to, msg.from}];
      until = std::max(until, msg.delivered_at + busy.retry_after_us);
    } catch (const common::Error&) {
      ++stats_.malformed;
    }
    return;
  }

  Envelope env;
  try {
    env = Envelope::decode(msg.payload);
  } catch (const common::Error&) {
    ++stats_.malformed;  // fail closed: undecodable traffic is dropped
    return;
  }
  // Ack even duplicates — the earlier ack may have been lost.
  network_->send(self, msg.from, kAckTopic, encode_ack(env.seq));
  if (!seen_[{msg.from, self}].fresh(env.seq)) {
    ++stats_.duplicates_suppressed;
    network_->count_duplicate();
    return;
  }
  if (env.deadline_us != 0 && msg.delivered_at > env.deadline_us) {
    // Arrived past its deadline: ack (stop the retransmits) but drop —
    // the pipeline above would only shed it later at higher cost.
    ++stats_.expired_on_arrival;
    network_->count_expired_in_flight();
    return;
  }
  if (!handler) return;  // send-only endpoint
  Message inner = msg;
  inner.payload = std::move(env.payload);
  handler(inner);
}

void ReliableChannel::send(const Principal& from, const Principal& to,
                           const std::string& topic, common::Bytes payload,
                           common::SimTime deadline_us) {
  if (breaker_ && !breaker_->allow(to, network_->clock().now())) {
    // Fail closed, like an exhausted retry budget — the caller's recovery
    // paths (failover, resync) already handle silent non-delivery.
    ++stats_.breaker_rejected;
    network_->count_breaker_rejected();
    return;
  }
  const Link link{from, to};
  if (policy_.window > 0 && open_flights_[link] >= policy_.window) {
    auto& queue = waiting_[link];
    if (policy_.window_queue > 0 && queue.size() >= policy_.window_queue) {
      ++stats_.window_rejected;
      return;
    }
    queue.push_back(Queued{topic, std::move(payload), deadline_us});
    ++stats_.window_queued;
    return;
  }
  dispatch(from, to, topic, std::move(payload), deadline_us);
}

void ReliableChannel::dispatch(const Principal& from, const Principal& to,
                               const std::string& topic,
                               common::Bytes payload,
                               common::SimTime deadline_us) {
  Envelope env;
  env.seq = next_seq_[{from, to}]++;
  env.deadline_us = deadline_us;
  env.payload = std::move(payload);

  Key key{from, to, env.seq};
  InFlight flight;
  flight.topic = topic;
  flight.wire = env.encode();
  flight.timeout = policy_.initial_timeout_us;
  flight.deadline_us = deadline_us;
  ++stats_.sent;
  ++open_flights_[{from, to}];
  network_->send(from, to, topic, flight.wire);
  in_flight_.insert_or_assign(key, std::move(flight));
  arm_timer(std::move(key));
}

void ReliableChannel::finish_flight(std::map<Key, InFlight>::iterator it) {
  const Link link{it->first.from, it->first.to};
  in_flight_.erase(it);
  const auto open = open_flights_.find(link);
  if (open != open_flights_.end() && open->second > 0) --open->second;
  drain_waiting(link);
}

void ReliableChannel::drain_waiting(const Link& link) {
  if (policy_.window == 0) return;
  const auto waiting = waiting_.find(link);
  if (waiting == waiting_.end()) return;
  while (!waiting->second.empty() && open_flights_[link] < policy_.window) {
    Queued next = std::move(waiting->second.front());
    waiting->second.pop_front();
    dispatch(link.first, link.second, next.topic, std::move(next.payload),
             next.deadline_us);
  }
}

common::SimTime ReliableChannel::next_timeout(common::SimTime previous) {
  if (!policy_.decorrelated_jitter) {
    return static_cast<common::SimTime>(static_cast<double>(previous) *
                                        policy_.backoff_factor);
  }
  // Decorrelated jitter: uniform in [initial, 3 * previous), capped.
  // Unlike pure exponential, concurrent senders stranded by the same
  // partition spread out instead of retrying in lockstep at heal time.
  const common::SimTime lo = policy_.initial_timeout_us;
  const common::SimTime hi = std::max<common::SimTime>(lo + 1, previous * 3);
  const common::SimTime drawn = lo + jitter_rng_.next_below(hi - lo);
  return std::min(policy_.max_timeout_us, drawn);
}

void ReliableChannel::arm_timer(Key key) {
  const auto it = in_flight_.find(key);
  if (it == in_flight_.end()) return;
  const common::SimTime fire_at = network_->clock().now() + it->second.timeout;
  network_->schedule(fire_at,
                     [this, key = std::move(key)]() { on_timer(key); });
}

void ReliableChannel::on_timer(const Key& key) {
  const auto flight = in_flight_.find(key);
  if (flight == in_flight_.end()) return;  // acked in the meantime
  InFlight& f = flight->second;
  const common::SimTime now = network_->clock().now();
  // Past its deadline: the work is dead no matter how many retries are
  // left. Abandoning here is what keeps expired load off the wire.
  if (f.deadline_us != 0 && now >= f.deadline_us) {
    ++stats_.expired;
    network_->count_expired_in_flight();
    finish_flight(flight);
    return;
  }
  // The receiver said Busy: defer without spending an attempt, up to the
  // policy bound — backpressure should pause the sender, not burn its
  // retry budget.
  const auto busy = busy_until_.find({key.from, key.to});
  if (busy != busy_until_.end() && busy->second > now &&
      f.deferrals < policy_.max_busy_deferrals) {
    ++f.deferrals;
    ++stats_.busy_deferrals;
    network_->count_busy_deferral();
    network_->schedule(busy->second, [this, key]() { on_timer(key); });
    return;
  }
  // A crashed sender loses its retransmission state; a detached
  // receiver will never ack. Both end the retry loop — fail closed.
  // Exhausting the retry budget against a live, attached peer is the
  // interesting case operationally (the link is lossy beyond what the
  // policy tolerates), so it gets its own network-wide counter.
  if (f.attempts >= policy_.max_attempts || network_->crashed(key.from) ||
      !network_->attached(key.to)) {
    if (f.attempts >= policy_.max_attempts) {
      network_->count_retry_exhausted();
      if (breaker_) breaker_->record_failure(key.to, now);
    }
    ++stats_.gave_up;
    finish_flight(flight);
    return;
  }
  ++f.attempts;
  ++stats_.retransmits;
  network_->count_retransmit();
  network_->send(key.from, key.to, f.topic, f.wire);
  f.timeout = next_timeout(f.timeout);
  arm_timer(key);
}

}  // namespace veil::net
