// Backend selection for tests and demos.
//
// make_transport() builds the backend named by VEIL_TRANSPORT:
//   (unset) / "sim"  SimNetwork — deterministic in-process queue
//   "tcp"            TcpTransport — real loopback sockets
// Because the engine guarantees backend-invariant delivery, a suite that
// constructs its network through this factory runs bit-identically under
// either value; CI's tcp-loopback job is exactly that flip of an env var.
//
// TCP knobs (ignored on sim):
//   VEIL_TCP_FAULT_RATE  double in [0,1): drive the socket fault injector
//                        with SocketFaultProfile::uniform(rate)
//   VEIL_TCP_FAULT_SEED  u64 persona seed for the injector (default keeps
//                        TcpConfig's)
#pragma once

#include <memory>

#include "common/rng.hpp"
#include "net/transport.hpp"

namespace veil::net {

/// True when VEIL_TRANSPORT selects the TCP backend.
bool tcp_transport_selected();

/// Build the backend selected by the environment (see file comment).
/// Throws common::ProtocolError on an unknown VEIL_TRANSPORT value.
std::unique_ptr<Transport> make_transport(common::Rng rng,
                                          LatencyModel latency = {});

}  // namespace veil::net
