#include "net/network.hpp"

#include "common/error.hpp"

namespace veil::net {

SimNetwork::SimNetwork(common::Rng rng, LatencyModel latency)
    : rng_(rng), latency_(latency) {}

void SimNetwork::attach(const Principal& name, Handler handler) {
  handlers_[name] = std::move(handler);
}

void SimNetwork::detach(const Principal& name) { handlers_.erase(name); }

bool SimNetwork::attached(const Principal& name) const {
  return handlers_.contains(name);
}

bool SimNetwork::reachable(const Principal& from, const Principal& to) const {
  if (partitions_.empty()) return true;
  for (const auto& group : partitions_) {
    if (group.contains(from)) return group.contains(to);
  }
  // Senders outside any declared partition reach nobody during a split.
  return false;
}

void SimNetwork::send(const Principal& from, const Principal& to,
                      const std::string& topic, common::Bytes payload) {
  if (!handlers_.contains(to)) {
    throw common::ProtocolError("send to unknown principal: " + to);
  }
  ++stats_.messages_sent;
  stats_.bytes_sent += payload.size();

  if (drop_probability_ > 0.0 && rng_.next_double() < drop_probability_) {
    ++stats_.messages_dropped;
    return;
  }
  if (!reachable(from, to)) {
    ++stats_.messages_dropped;
    return;
  }

  const common::SimTime latency =
      latency_.base_us +
      (latency_.jitter_us ? rng_.next_below(latency_.jitter_us) : 0) +
      static_cast<common::SimTime>(latency_.per_byte_us *
                                   static_cast<double>(payload.size()));
  Message msg{from, to, topic, std::move(payload), clock_.now(),
              clock_.now() + latency};
  queue_.push(Pending{msg.delivered_at, sequence_++, std::move(msg)});
}

void SimNetwork::broadcast(const Principal& from, const std::string& topic,
                           const common::Bytes& payload) {
  for (const auto& [name, handler] : handlers_) {
    if (name == from) continue;
    send(from, name, topic, payload);
  }
}

std::size_t SimNetwork::run() {
  std::size_t delivered = 0;
  while (!queue_.empty()) {
    Pending next = queue_.top();
    queue_.pop();
    clock_.advance_to(next.deliver_at);
    const auto it = handlers_.find(next.message.to);
    if (it == handlers_.end()) {
      ++stats_.messages_dropped;  // receiver detached in flight
      continue;
    }
    // The recipient observes the raw bytes of everything delivered to it.
    auditor_.record(next.message.to, "net/" + next.message.topic,
                    next.message.payload.size());
    ++stats_.messages_delivered;
    ++delivered;
    it->second(next.message);
  }
  return delivered;
}

void SimNetwork::set_partitions(std::vector<std::set<Principal>> partitions) {
  partitions_ = std::move(partitions);
}

}  // namespace veil::net
