#include "net/network.hpp"

#include "common/error.hpp"

namespace veil::net {

SimNetwork::SimNetwork(common::Rng rng, LatencyModel latency)
    : rng_(rng), latency_(latency) {}

void SimNetwork::attach(const Principal& name, Handler handler) {
  handlers_[name] = std::move(handler);
}

void SimNetwork::detach(const Principal& name) { handlers_.erase(name); }

bool SimNetwork::attached(const Principal& name) const {
  return handlers_.contains(name);
}

bool SimNetwork::reachable(const Principal& from, const Principal& to) const {
  if (partitions_.empty()) return true;
  for (const auto& group : partitions_) {
    if (group.contains(from)) return group.contains(to);
  }
  // Senders outside any declared partition reach nobody during a split.
  return false;
}

void SimNetwork::set_fault_plan(const FaultPlan& plan) {
  fault_events_ = plan.ordered_events();
  next_fault_ = 0;
}

void SimNetwork::set_crash_hook(const Principal& name, LifecycleHook hook) {
  crash_hooks_[name] = std::move(hook);
}

void SimNetwork::set_restart_hook(const Principal& name, LifecycleHook hook) {
  restart_hooks_[name] = std::move(hook);
}

void SimNetwork::crash(const Principal& name) {
  if (!crashed_.insert(name).second) return;
  const auto hook = crash_hooks_.find(name);
  if (hook != crash_hooks_.end() && hook->second) hook->second();
}

void SimNetwork::restart(const Principal& name) {
  if (crashed_.erase(name) == 0) return;
  const auto hook = restart_hooks_.find(name);
  if (hook != restart_hooks_.end() && hook->second) hook->second();
}

void SimNetwork::apply_faults_until(common::SimTime now) {
  while (next_fault_ < fault_events_.size() &&
         fault_events_[next_fault_].at <= now) {
    const FaultEvent& e = fault_events_[next_fault_++];
    switch (e.kind) {
      case FaultEvent::Kind::SetDropRate:
        drop_probability_ = e.drop_rate;
        break;
      case FaultEvent::Kind::SetPartitions:
        partitions_ = e.partitions;
        break;
      case FaultEvent::Kind::Heal:
        partitions_.clear();
        break;
      case FaultEvent::Kind::Crash:
        crash(e.principal);
        break;
      case FaultEvent::Kind::Restart:
        restart(e.principal);
        break;
    }
  }
}

void SimNetwork::send(const Principal& from, const Principal& to,
                      const std::string& topic, common::Bytes payload) {
  apply_faults_until(clock_.now());
  if (!handlers_.contains(to)) {
    throw common::ProtocolError("send to unknown principal: " + to);
  }
  ++stats_.messages_sent;
  stats_.bytes_sent += payload.size();

  if (crashed_.contains(from) || crashed_.contains(to)) {
    ++stats_.messages_dropped;
    ++stats_.dropped_crashed;
    return;
  }
  if (drop_probability_ > 0.0 && rng_.next_double() < drop_probability_) {
    ++stats_.messages_dropped;
    ++stats_.dropped_random_loss;
    return;
  }
  if (!reachable(from, to)) {
    ++stats_.messages_dropped;
    ++stats_.dropped_partition;
    return;
  }

  const common::SimTime latency =
      latency_.base_us +
      (latency_.jitter_us ? rng_.next_below(latency_.jitter_us) : 0) +
      static_cast<common::SimTime>(latency_.per_byte_us *
                                   static_cast<double>(payload.size()));
  Message msg{from, to, topic, std::move(payload), clock_.now(),
              clock_.now() + latency};
  queue_.push(Pending{msg.delivered_at, sequence_++, std::move(msg), nullptr});
}

void SimNetwork::broadcast(const Principal& from, const std::string& topic,
                           const common::Bytes& payload) {
  for (const auto& [name, handler] : handlers_) {
    if (name == from) continue;
    send(from, name, topic, payload);
  }
}

void SimNetwork::schedule(common::SimTime at, std::function<void()> fn) {
  if (at < clock_.now()) at = clock_.now();
  Pending p;
  p.deliver_at = at;
  p.sequence = sequence_++;
  p.timer = std::move(fn);
  queue_.push(std::move(p));
}

std::size_t SimNetwork::run() {
  std::size_t delivered = 0;
  while (!queue_.empty()) {
    Pending next = queue_.top();
    queue_.pop();
    clock_.advance_to(next.deliver_at);
    // Fault events scheduled before this delivery take effect first, so a
    // crash at time T suppresses deliveries at T' >= T.
    apply_faults_until(clock_.now());
    if (next.timer) {
      next.timer();
      continue;
    }
    const auto it = handlers_.find(next.message.to);
    if (it == handlers_.end()) {
      ++stats_.messages_dropped;  // receiver detached in flight
      ++stats_.dropped_detached;
      continue;
    }
    if (crashed_.contains(next.message.to)) {
      ++stats_.messages_dropped;  // receiver crashed while in flight
      ++stats_.dropped_crashed;
      continue;
    }
    // The recipient observes the raw bytes of everything delivered to it.
    auditor_.record(next.message.to, "net/" + next.message.topic,
                    next.message.payload.size());
    ++stats_.messages_delivered;
    ++delivered;
    it->second(next.message);
  }
  // Let any remaining fault events (e.g. a restart after the last
  // message) fire rather than strand them behind an empty queue.
  if (next_fault_ < fault_events_.size()) {
    const common::SimTime last = fault_events_.back().at;
    clock_.advance_to(last);
    apply_faults_until(last);
    // Restart hooks may have queued catch-up traffic; drain it.
    if (!queue_.empty()) delivered += run();
  }
  return delivered;
}

void SimNetwork::set_partitions(std::vector<std::set<Principal>> partitions) {
  partitions_ = std::move(partitions);
}

}  // namespace veil::net
