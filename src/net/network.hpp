// Deterministic simulated network.
//
// Point-to-point, authenticated-channel message passing between named
// principals with a configurable latency model. Delivery is in simulated-
// time order and fully deterministic from the seed, so every protocol
// trace is reproducible. Handlers may send further messages; run() drains
// the event queue.
//
// SimNetwork is the in-process backend of the net::Transport engine
// (net/transport.hpp): the engine decides every modeled fault (drop
// probability, partitions, crash-stop, Byzantine schedules) and delivery
// order; this backend simply keeps messages in the engine's own queue —
// zero syscalls, bit-reproducible from the seed. The real-socket backend
// (net/tcp.hpp TcpTransport) implements the same engine over loopback
// TCP; protocols that need delivery guarantees on a lossy network layer
// a ReliableChannel (net/reliable.hpp) on top of either.
#pragma once

#include "net/transport.hpp"

namespace veil::net {

class SimNetwork final : public Transport {
 public:
  explicit SimNetwork(common::Rng rng, LatencyModel latency = {})
      : Transport(rng, latency) {}
};

}  // namespace veil::net
