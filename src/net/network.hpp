// Deterministic simulated network.
//
// Point-to-point, authenticated-channel message passing between named
// principals with a configurable latency model. Delivery is in simulated-
// time order and fully deterministic from the seed, so every protocol
// trace is reproducible. Handlers may send further messages; run() drains
// the event queue.
//
// Fault injection (drop probability, partitions, crash-stop) exists
// because the ordering and platform layers must behave sanely when peers
// are unreachable — and because privacy mechanisms must not silently fail
// open under faults. Scripted fault schedules (net/fault.hpp) are applied
// as simulated time advances; protocols that need delivery guarantees on
// a lossy network layer a ReliableChannel (net/reliable.hpp) on top.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <set>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/clock.hpp"
#include "common/rng.hpp"
#include "net/fault.hpp"
#include "net/leakage.hpp"

namespace veil::net {

struct Message {
  Principal from;
  Principal to;
  std::string topic;
  common::Bytes payload;
  common::SimTime sent_at = 0;
  common::SimTime delivered_at = 0;
};

struct LatencyModel {
  common::SimTime base_us = 500;    // fixed one-way latency
  common::SimTime jitter_us = 200;  // uniform extra [0, jitter)
  double per_byte_us = 0.01;        // serialization cost
};

struct NetworkStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;  // total across all causes below
  std::uint64_t bytes_sent = 0;

  // Drop breakdown by cause.
  std::uint64_t dropped_random_loss = 0;
  std::uint64_t dropped_partition = 0;
  std::uint64_t dropped_detached = 0;  // receiver detached in flight
  std::uint64_t dropped_crashed = 0;   // sender or receiver crash-stopped

  // Reliable-delivery accounting (incremented by ReliableChannel).
  std::uint64_t retransmits = 0;
  std::uint64_t duplicates_suppressed = 0;
  // Messages abandoned because the retry budget ran out — distinct from
  // giving up on a crashed/detached endpoint, and from the drop causes
  // above: the wire sends were already counted there; this counts the
  // *decisions* to stop retrying a live peer.
  std::uint64_t retries_exhausted = 0;

  // Byzantine adversary accounting (net/fault.hpp ByzantinePlan plus the
  // link-level corruption mode). The dropped_* entries are also counted
  // in messages_dropped.
  std::uint64_t messages_tampered = 0;
  std::uint64_t messages_equivocated = 0;
  std::uint64_t messages_replayed = 0;
  std::uint64_t messages_delayed = 0;
  std::uint64_t messages_corrupted = 0;  // link-level bit-flips in flight
  std::uint64_t dropped_silenced = 0;
  std::uint64_t dropped_quarantined = 0;

  // Overload-control accounting. dropped_overflow is also counted in
  // messages_dropped; the rest are decisions made above the wire.
  std::uint64_t dropped_overflow = 0;   // receiver inbox at capacity
  std::uint64_t busy_notices = 0;       // Busy{retry_after} responses sent
  std::uint64_t busy_deferrals = 0;     // retransmits postponed by Busy
  std::uint64_t busy_rejected = 0;      // platform refusals: pending set full
  std::uint64_t breaker_rejected = 0;   // sends refused by an open breaker
  std::uint64_t shed_admission = 0;     // admission-controller sheds
  std::uint64_t expired_endorse = 0;    // TTL'd work dropped per stage
  std::uint64_t expired_order = 0;
  std::uint64_t expired_validate = 0;
  std::uint64_t expired_in_flight = 0;  // reliable sends abandoned past TTL
  std::uint64_t inbox_high_water = 0;   // deepest per-receiver queue seen

  // Cross-shard atomic-commit accounting (ledger/xshard.hpp). Prepares
  // count per-participant prepare messages; commits/aborts count 2PC
  // outcomes once per transaction, with aborts broken down by cause so
  // operators can tell overload (timeout) from contention (vote-no) from
  // an adversarial coordinator (equivocation). Failovers count standby
  // takeovers that had to reconstruct in-doubt transactions.
  std::uint64_t xshard_prepares = 0;
  std::uint64_t xshard_commits = 0;
  std::uint64_t xshard_aborts_voteno = 0;
  std::uint64_t xshard_aborts_timeout = 0;
  std::uint64_t xshard_aborts_equivocation = 0;
  std::uint64_t xshard_failovers = 0;
};

/// Why a cross-shard transaction aborted (the counter breakdown above).
enum class XAbortCause : std::uint8_t {
  VoteNo = 0,
  Timeout = 1,
  Equivocation = 2,
};

/// Pipeline stage at which TTL'd work was found already expired. Each
/// stage of endorse -> order -> validate drops expired work early and
/// counts the drop here, so render_network_stats can show where load
/// died under overload.
enum class Stage : std::uint8_t { Endorse = 0, Order = 1, Validate = 2 };

class SimNetwork {
 public:
  using Handler = std::function<void(const Message&)>;
  using LifecycleHook = std::function<void()>;

  SimNetwork(common::Rng rng, LatencyModel latency = {});

  /// Register a principal and its message handler. Re-registering
  /// replaces the handler (used when a node restarts).
  void attach(const Principal& name, Handler handler);
  void detach(const Principal& name);
  bool attached(const Principal& name) const;

  /// Queue a message. Throws common::ProtocolError if `to` was never
  /// attached. The network auditor records that `to` observed the
  /// payload bytes under label "net/<topic>".
  void send(const Principal& from, const Principal& to,
            const std::string& topic, common::Bytes payload);

  /// Broadcast to every attached principal except the sender.
  void broadcast(const Principal& from, const std::string& topic,
                 const common::Bytes& payload);

  /// Deliver all queued messages and timers (and any they trigger) in
  /// time order. Returns the number of messages delivered.
  std::size_t run();

  /// Schedule `fn` to run at simulated time `at` (clamped to now). Timers
  /// share the delivery queue, so ordering against messages is exact.
  /// ReliableChannel uses this for retransmission timeouts.
  void schedule(common::SimTime at, std::function<void()> fn);

  /// Probability in [0,1] that any given message is silently dropped.
  void set_drop_probability(double p) { drop_probability_ = p; }

  /// Partition the network into groups; messages across groups drop.
  /// An empty partition list removes the partition.
  void set_partitions(std::vector<std::set<Principal>> partitions);

  /// Install a scripted fault schedule. Events fire as simulated time
  /// advances (at send and delivery points). Replaces any earlier plan;
  /// events whose time has already passed fire immediately on the next
  /// send/run.
  void set_fault_plan(const FaultPlan& plan);

  /// Install a scripted adversary schedule (net/fault.hpp ByzantinePlan).
  /// Applied lazily like the fault plan; when events from both plans are
  /// due at the same instant, fault-plan events apply first.
  void set_byzantine_plan(const ByzantinePlan& plan);

  /// Isolate `name`: its sends and in-flight deliveries drop (counted as
  /// dropped_quarantined) until release(). Unlike crash(), no lifecycle
  /// hook fires — the principal keeps its state but loses the network.
  /// Detection code calls this when it convicts a principal.
  void quarantine(const Principal& name) { quarantined_.insert(name); }
  void release(const Principal& name) { quarantined_.erase(name); }
  bool is_quarantined(const Principal& name) const {
    return quarantined_.contains(name);
  }

  /// Link-level corruption: probability that a payload has one random bit
  /// flipped in flight (sender-agnostic, unlike ByzantinePlan tampering).
  /// Exercises every decode path against corrupted — not just truncated —
  /// bytes.
  void set_corruption_probability(double p) { corruption_probability_ = p; }

  /// Crash/restart hooks, invoked when a FaultPlan (or crash()/restart())
  /// crash-stops or revives `name`. The crash hook models losing volatile
  /// state; the restart hook models WAL replay + catch-up.
  void set_crash_hook(const Principal& name, LifecycleHook hook);
  void set_restart_hook(const Principal& name, LifecycleHook hook);

  /// Immediate crash-stop / restart (FaultPlan events route through
  /// these; tests may call them directly).
  void crash(const Principal& name);
  void restart(const Principal& name);
  bool crashed(const Principal& name) const { return crashed_.contains(name); }

  const common::SimClock& clock() const { return clock_; }
  const NetworkStats& stats() const { return stats_; }
  LeakageAuditor& auditor() { return auditor_; }
  const LeakageAuditor& auditor() const { return auditor_; }

  /// Bound every inbox to `cap` queued messages per receiver (0 =
  /// unbounded, the default). A send that would exceed the bound is
  /// dropped (dropped_overflow) and answered with a Busy{retry_after}
  /// notice on topic "net.busy" so the sender backs off instead of
  /// retry-storming. Busy notices themselves bypass the bound — the
  /// backpressure signal must not be backpressured away.
  void set_inbox_capacity(std::size_t cap) { inbox_capacity_ = cap; }
  std::size_t inbox_capacity() const { return inbox_capacity_; }
  /// Base retry-after hint in Busy notices; scaled up with queue depth.
  void set_busy_retry_after(common::SimTime us) { busy_retry_after_us_ = us; }
  /// Messages currently queued for `name` (timers excluded).
  std::size_t inbox_depth(const Principal& name) const;

  /// ReliableChannel accounting hooks.
  void count_retransmit() { ++stats_.retransmits; }
  void count_duplicate() { ++stats_.duplicates_suppressed; }
  void count_retry_exhausted() { ++stats_.retries_exhausted; }

  /// Overload-control accounting hooks (channel, admission controller,
  /// and platform stage checks report through these).
  void count_busy_deferral() { ++stats_.busy_deferrals; }
  void count_busy_rejected() { ++stats_.busy_rejected; }
  void count_breaker_rejected() { ++stats_.breaker_rejected; }
  void count_shed() { ++stats_.shed_admission; }
  void count_expired_in_flight() { ++stats_.expired_in_flight; }
  void count_expired(Stage stage) {
    switch (stage) {
      case Stage::Endorse: ++stats_.expired_endorse; break;
      case Stage::Order: ++stats_.expired_order; break;
      case Stage::Validate: ++stats_.expired_validate; break;
    }
  }

  /// Cross-shard 2PC accounting hooks (ledger/xshard.hpp).
  void count_xshard_prepare() { ++stats_.xshard_prepares; }
  void count_xshard_commit() { ++stats_.xshard_commits; }
  void count_xshard_failover() { ++stats_.xshard_failovers; }
  void count_xshard_abort(XAbortCause cause) {
    switch (cause) {
      case XAbortCause::VoteNo: ++stats_.xshard_aborts_voteno; break;
      case XAbortCause::Timeout: ++stats_.xshard_aborts_timeout; break;
      case XAbortCause::Equivocation:
        ++stats_.xshard_aborts_equivocation;
        break;
    }
  }

 private:
  bool reachable(const Principal& from, const Principal& to) const;
  /// Enqueue `msg` for delivery, maintaining per-receiver depth.
  void enqueue(Message msg);
  /// Refuse `msg` at a full inbox: count the overflow and answer the
  /// sender with a Busy notice (unless the refused message *is* one).
  void refuse_overflow(const Message& msg);
  /// Apply all fault-plan and byzantine-plan events scheduled at or
  /// before `now`, merged in time order.
  void apply_faults_until(common::SimTime now);
  void apply_byzantine(const ByzantineEvent& e);
  /// Flip one uniformly chosen bit of `payload` (no-op when empty).
  void flip_random_bit(common::Bytes& payload);

  /// Current adversarial behaviors of one principal (ByzantinePlan).
  struct AdversaryState {
    double tamper_probability = 0.0;
    bool equivocate = false;
    bool replay = false;
    common::SimTime replay_delay_us = 0;
    common::SimTime delay_us = 0;
    bool silent = false;
    std::set<Principal> silence_targets;  // empty + silent => everyone
    std::uint64_t equivocation_seq = 0;
  };

  struct Pending {
    common::SimTime deliver_at;
    std::uint64_t sequence;  // tie-break for determinism
    Message message;
    std::function<void()> timer;  // set => timer event, not a message
    bool operator>(const Pending& other) const {
      if (deliver_at != other.deliver_at) return deliver_at > other.deliver_at;
      return sequence > other.sequence;
    }
  };

  common::Rng rng_;
  LatencyModel latency_;
  common::SimClock clock_;
  std::map<Principal, Handler> handlers_;
  std::priority_queue<Pending, std::vector<Pending>, std::greater<>> queue_;
  std::uint64_t sequence_ = 0;
  double drop_probability_ = 0.0;
  std::vector<std::set<Principal>> partitions_;
  std::set<Principal> crashed_;
  std::map<Principal, LifecycleHook> crash_hooks_;
  std::map<Principal, LifecycleHook> restart_hooks_;
  std::vector<FaultEvent> fault_events_;  // time-ordered
  std::size_t next_fault_ = 0;
  std::vector<ByzantineEvent> byzantine_events_;  // time-ordered
  std::size_t next_byzantine_ = 0;
  std::map<Principal, AdversaryState> adversaries_;
  std::set<Principal> quarantined_;
  double corruption_probability_ = 0.0;
  std::size_t inbox_capacity_ = 0;  // 0 = unbounded
  common::SimTime busy_retry_after_us_ = 10'000;
  std::map<Principal, std::size_t> inbox_depth_;
  NetworkStats stats_;
  LeakageAuditor auditor_;
};

}  // namespace veil::net
