// Overload-control primitives for the network tier.
//
// Busy is the explicit-backpressure wire response a capacity-limited
// inbox returns instead of silently growing (or silently dropping):
// the sender learns the receiver is saturated and when to retry, so
// ReliableChannel can defer its retransmission instead of feeding a
// retry storm.
//
// CircuitBreaker guards repeatedly-failing peers (endorsers, transaction
// managers, notaries). It is fed by delivery outcomes — acks close it,
// exhausted retry budgets open it — and follows the classic three-state
// machine: Closed (traffic flows), Open (traffic refused, fail closed),
// HalfOpen (one probe per open-interval decides). All timing is on the
// deterministic sim clock, so breaker transcripts are seed-reproducible.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/bytes.hpp"
#include "common/clock.hpp"
#include "net/leakage.hpp"

namespace veil::net {

/// Backpressure notice sent to the original sender when a bounded inbox
/// refuses a message. `topic` names the refused traffic class; the
/// receiver suggests retrying after `retry_after_us` (scaled by how deep
/// its queue already is).
struct Busy {
  std::string topic;
  common::SimTime retry_after_us = 0;
  std::uint64_t queue_depth = 0;

  common::Bytes encode() const;
  /// Throws common::Error on malformed input.
  static Busy decode(common::BytesView data);

  bool operator==(const Busy&) const = default;
};

enum class BreakerState : std::uint8_t { Closed = 0, Open = 1, HalfOpen = 2 };

struct BreakerConfig {
  /// Consecutive failures that trip Closed -> Open.
  std::uint32_t failure_threshold = 3;
  /// How long Open refuses traffic before admitting a half-open probe.
  common::SimTime open_duration_us = 200'000;
  /// Consecutive probe successes that close a half-open breaker.
  std::uint32_t success_threshold = 1;
};

struct BreakerStats {
  std::uint64_t opened = 0;            // Closed/HalfOpen -> Open transitions
  std::uint64_t closed = 0;            // HalfOpen -> Closed transitions
  std::uint64_t half_open_probes = 0;  // sends admitted as probes
  std::uint64_t rejected = 0;          // sends refused while Open
};

class CircuitBreaker {
 public:
  explicit CircuitBreaker(BreakerConfig config = {});

  /// May traffic to `peer` proceed now? Closed: yes. Open: no until
  /// open_duration elapses, then the call itself admits one probe and
  /// moves the breaker to HalfOpen. HalfOpen: only while the outstanding
  /// probe budget lasts (one probe per open-interval window).
  bool allow(const Principal& peer, common::SimTime now);

  /// Outcome feedback. A failure in HalfOpen re-opens immediately (the
  /// probe failed); `failure_threshold` consecutive failures open a
  /// closed breaker. A success resets the failure streak and, in
  /// HalfOpen, counts toward success_threshold.
  void record_failure(const Principal& peer, common::SimTime now);
  void record_success(const Principal& peer, common::SimTime now);

  BreakerState state(const Principal& peer, common::SimTime now) const;
  const BreakerStats& stats() const { return stats_; }
  const BreakerConfig& config() const { return config_; }

 private:
  struct PeerState {
    BreakerState state = BreakerState::Closed;
    std::uint32_t failures = 0;   // consecutive, while Closed
    std::uint32_t successes = 0;  // consecutive probe successes, HalfOpen
    common::SimTime opened_at = 0;
    bool probe_outstanding = false;
  };

  /// Open->HalfOpen is driven lazily off the clock: resolve what the
  /// state *should* be at `now` before acting on it.
  void advance(PeerState& ps, common::SimTime now) const;

  BreakerConfig config_;
  std::map<Principal, PeerState> peers_;
  BreakerStats stats_;
};

}  // namespace veil::net
