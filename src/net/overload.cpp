#include "net/overload.hpp"

#include "common/error.hpp"
#include "common/serialize.hpp"

namespace veil::net {

namespace {
constexpr std::uint32_t kBusyMagic = 0x56425359;  // "VBSY"
}  // namespace

common::Bytes Busy::encode() const {
  common::Writer w;
  w.u32(kBusyMagic);
  w.str(topic);
  w.u64(retry_after_us);
  w.u64(queue_depth);
  return w.take();
}

Busy Busy::decode(common::BytesView data) {
  common::Reader r(data);
  if (r.u32() != kBusyMagic) {
    throw common::ProtocolError("busy: bad magic");
  }
  Busy b;
  b.topic = r.str();
  b.retry_after_us = r.u64();
  b.queue_depth = r.u64();
  if (!r.done()) throw common::ProtocolError("busy: trailing bytes");
  return b;
}

CircuitBreaker::CircuitBreaker(BreakerConfig config) : config_(config) {}

void CircuitBreaker::advance(PeerState& ps, common::SimTime now) const {
  if (ps.state == BreakerState::Open &&
      now >= ps.opened_at + config_.open_duration_us) {
    ps.state = BreakerState::HalfOpen;
    ps.successes = 0;
    ps.probe_outstanding = false;
  }
}

bool CircuitBreaker::allow(const Principal& peer, common::SimTime now) {
  const auto it = peers_.find(peer);
  if (it == peers_.end()) return true;  // never failed: Closed
  PeerState& ps = it->second;
  advance(ps, now);
  switch (ps.state) {
    case BreakerState::Closed:
      return true;
    case BreakerState::Open:
      ++stats_.rejected;
      return false;
    case BreakerState::HalfOpen:
      // One probe at a time: further traffic waits for its outcome.
      if (ps.probe_outstanding) {
        ++stats_.rejected;
        return false;
      }
      ps.probe_outstanding = true;
      ++stats_.half_open_probes;
      return true;
  }
  return true;
}

void CircuitBreaker::record_failure(const Principal& peer,
                                    common::SimTime now) {
  PeerState& ps = peers_[peer];
  advance(ps, now);
  switch (ps.state) {
    case BreakerState::Closed:
      if (++ps.failures >= config_.failure_threshold) {
        ps.state = BreakerState::Open;
        ps.opened_at = now;
        ps.failures = 0;
        ++stats_.opened;
      }
      break;
    case BreakerState::HalfOpen:
      // The probe failed: back to Open for a full interval.
      ps.state = BreakerState::Open;
      ps.opened_at = now;
      ps.probe_outstanding = false;
      ps.successes = 0;
      ++stats_.opened;
      break;
    case BreakerState::Open:
      // Stragglers from sends admitted before the trip; stay Open but do
      // not extend the interval (that would let a burst of queued
      // failures starve the probe forever).
      break;
  }
}

void CircuitBreaker::record_success(const Principal& peer,
                                    common::SimTime now) {
  const auto it = peers_.find(peer);
  if (it == peers_.end()) return;  // already Closed with a clean slate
  PeerState& ps = it->second;
  advance(ps, now);
  switch (ps.state) {
    case BreakerState::Closed:
      ps.failures = 0;
      break;
    case BreakerState::HalfOpen:
      ps.probe_outstanding = false;
      if (++ps.successes >= config_.success_threshold) {
        peers_.erase(it);  // fully Closed, clean slate
        ++stats_.closed;
      }
      break;
    case BreakerState::Open:
      // A late ack from before the trip does not close the breaker; the
      // half-open probe must succeed on a fresh send.
      break;
  }
}

BreakerState CircuitBreaker::state(const Principal& peer,
                                   common::SimTime now) const {
  const auto it = peers_.find(peer);
  if (it == peers_.end()) return BreakerState::Closed;
  PeerState ps = it->second;  // resolve lazily without mutating
  advance(ps, now);
  return ps.state;
}

}  // namespace veil::net
