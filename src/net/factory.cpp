#include "net/factory.hpp"

#include <cstdlib>
#include <string>

#include "common/error.hpp"
#include "net/network.hpp"
#include "net/tcp.hpp"

namespace veil::net {

namespace {

std::string env_or(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return (v != nullptr && *v != '\0') ? std::string(v) : fallback;
}

}  // namespace

bool tcp_transport_selected() { return env_or("VEIL_TRANSPORT", "sim") == "tcp"; }

std::unique_ptr<Transport> make_transport(common::Rng rng,
                                          LatencyModel latency) {
  const std::string backend = env_or("VEIL_TRANSPORT", "sim");
  if (backend == "sim") {
    return std::make_unique<SimNetwork>(std::move(rng), latency);
  }
  if (backend == "tcp") {
    TcpConfig config;
    const std::string rate = env_or("VEIL_TCP_FAULT_RATE", "");
    if (!rate.empty()) {
      config.faults = SocketFaultProfile::uniform(std::stod(rate));
    }
    const std::string seed = env_or("VEIL_TCP_FAULT_SEED", "");
    if (!seed.empty()) {
      config.fault_seed = std::stoull(seed);
    }
    return std::make_unique<TcpTransport>(std::move(rng), latency, config);
  }
  throw common::ProtocolError("unknown VEIL_TRANSPORT backend: " + backend);
}

}  // namespace veil::net
