#include "net/fault.hpp"

#include <algorithm>
#include <bit>

#include "common/error.hpp"
#include "common/serialize.hpp"

namespace veil::net {

FaultPlan& FaultPlan::drop_window(common::SimTime from, common::SimTime until,
                                  double p) {
  drop_from(from, p);
  if (until > from) drop_from(until, 0.0);
  return *this;
}

FaultPlan& FaultPlan::drop_from(common::SimTime at, double p) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultEvent::Kind::SetDropRate;
  e.drop_rate = p;
  events_.push_back(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::partition_at(common::SimTime at,
                                   std::vector<std::set<Principal>> groups) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultEvent::Kind::SetPartitions;
  e.partitions = std::move(groups);
  events_.push_back(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::heal_at(common::SimTime at) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultEvent::Kind::Heal;
  events_.push_back(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::crash_at(common::SimTime at, Principal principal) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultEvent::Kind::Crash;
  e.principal = std::move(principal);
  events_.push_back(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::restart_at(common::SimTime at, Principal principal) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultEvent::Kind::Restart;
  e.principal = std::move(principal);
  events_.push_back(std::move(e));
  return *this;
}

std::vector<FaultEvent> FaultPlan::ordered_events() const {
  std::vector<FaultEvent> out = events_;
  std::stable_sort(out.begin(), out.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
  return out;
}

common::Bytes ByzantineEvent::encode() const {
  common::Writer w;
  w.u64(at);
  w.u8(static_cast<std::uint8_t>(kind));
  w.str(principal);
  w.str(target);
  w.u64(std::bit_cast<std::uint64_t>(probability));
  w.u64(delay_us);
  return w.take();
}

ByzantineEvent ByzantineEvent::decode(common::BytesView data) {
  common::Reader r(data);
  ByzantineEvent e;
  e.at = r.u64();
  const std::uint8_t kind = r.u8();
  if (kind > static_cast<std::uint8_t>(Kind::Release)) {
    throw common::Error("byzantine event: unknown kind");
  }
  e.kind = static_cast<Kind>(kind);
  e.principal = r.str();
  e.target = r.str();
  e.probability = std::bit_cast<double>(r.u64());
  if (!(e.probability >= 0.0 && e.probability <= 1.0)) {
    throw common::Error("byzantine event: probability out of range");
  }
  e.delay_us = r.u64();
  if (!r.done()) throw common::Error("byzantine event: trailing bytes");
  return e;
}

ByzantineEvent& ByzantinePlan::push(common::SimTime at,
                                    ByzantineEvent::Kind kind,
                                    Principal principal) {
  ByzantineEvent e;
  e.at = at;
  e.kind = kind;
  e.principal = std::move(principal);
  events_.push_back(std::move(e));
  return events_.back();
}

ByzantinePlan& ByzantinePlan::tamper_from(common::SimTime at,
                                          Principal principal, double p) {
  push(at, ByzantineEvent::Kind::Tamper, std::move(principal)).probability = p;
  return *this;
}

ByzantinePlan& ByzantinePlan::equivocate_from(common::SimTime at,
                                              Principal principal) {
  push(at, ByzantineEvent::Kind::Equivocate, std::move(principal));
  return *this;
}

ByzantinePlan& ByzantinePlan::silence_from(common::SimTime at,
                                           Principal principal,
                                           Principal target) {
  push(at, ByzantineEvent::Kind::Silence, std::move(principal)).target =
      std::move(target);
  return *this;
}

ByzantinePlan& ByzantinePlan::replay_from(common::SimTime at,
                                          Principal principal,
                                          common::SimTime delay_us) {
  push(at, ByzantineEvent::Kind::Replay, std::move(principal)).delay_us =
      delay_us;
  return *this;
}

ByzantinePlan& ByzantinePlan::delay_from(common::SimTime at,
                                         Principal principal,
                                         common::SimTime delay_us) {
  push(at, ByzantineEvent::Kind::Delay, std::move(principal)).delay_us =
      delay_us;
  return *this;
}

ByzantinePlan& ByzantinePlan::honest_from(common::SimTime at,
                                          Principal principal) {
  push(at, ByzantineEvent::Kind::Honest, std::move(principal));
  return *this;
}

ByzantinePlan& ByzantinePlan::quarantine_at(common::SimTime at,
                                            Principal principal) {
  push(at, ByzantineEvent::Kind::Quarantine, std::move(principal));
  return *this;
}

ByzantinePlan& ByzantinePlan::release_at(common::SimTime at,
                                         Principal principal) {
  push(at, ByzantineEvent::Kind::Release, std::move(principal));
  return *this;
}

std::vector<ByzantineEvent> ByzantinePlan::ordered_events() const {
  std::vector<ByzantineEvent> out = events_;
  std::stable_sort(out.begin(), out.end(),
                   [](const ByzantineEvent& a, const ByzantineEvent& b) {
                     return a.at < b.at;
                   });
  return out;
}

}  // namespace veil::net
