#include "net/fault.hpp"

#include <algorithm>

namespace veil::net {

FaultPlan& FaultPlan::drop_window(common::SimTime from, common::SimTime until,
                                  double p) {
  drop_from(from, p);
  if (until > from) drop_from(until, 0.0);
  return *this;
}

FaultPlan& FaultPlan::drop_from(common::SimTime at, double p) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultEvent::Kind::SetDropRate;
  e.drop_rate = p;
  events_.push_back(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::partition_at(common::SimTime at,
                                   std::vector<std::set<Principal>> groups) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultEvent::Kind::SetPartitions;
  e.partitions = std::move(groups);
  events_.push_back(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::heal_at(common::SimTime at) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultEvent::Kind::Heal;
  events_.push_back(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::crash_at(common::SimTime at, Principal principal) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultEvent::Kind::Crash;
  e.principal = std::move(principal);
  events_.push_back(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::restart_at(common::SimTime at, Principal principal) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultEvent::Kind::Restart;
  e.principal = std::move(principal);
  events_.push_back(std::move(e));
  return *this;
}

std::vector<FaultEvent> FaultPlan::ordered_events() const {
  std::vector<FaultEvent> out = events_;
  std::stable_sort(out.begin(), out.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
  return out;
}

}  // namespace veil::net
