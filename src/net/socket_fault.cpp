#include "net/socket_fault.hpp"

#include <limits>

namespace veil::net {

namespace {

// FNV-1a over a string, for folding principal names into the persona
// seed. Stable across runs and platforms (unlike std::hash).
std::uint64_t fold(std::uint64_t h, std::string_view s) {
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

SocketFaultProfile SocketFaultProfile::uniform(double rate) {
  SocketFaultProfile p;
  p.partial_write = rate;
  p.short_read = rate;
  p.eintr = rate / 2;
  p.eagain = rate / 2;
  p.connect_reset = rate / 8;
  p.midstream_reset = rate / 16;
  p.torn_frame = rate / 8;
  p.stall = rate / 16;
  return p;
}

SocketFaultInjector::SocketFaultInjector(const SocketFaultProfile& profile,
                                         std::uint64_t seed,
                                         const Principal& initiator,
                                         const Principal& acceptor,
                                         std::uint64_t epoch)
    : profile_(profile),
      rng_(fold(fold(seed ^ (epoch * 0x9e3779b97f4a7c15ULL), initiator),
                acceptor)) {}

bool SocketFaultInjector::fire(double rate) {
  if (rate <= 0.0) return false;
  // Draw unconditionally so the decision stream position is independent
  // of the liveness cap's state.
  const bool due = rng_.next_double() < rate;
  if (!due) return false;
  if (consecutive_ >= profile_.max_consecutive) return false;
  ++consecutive_;
  ++injected_;
  return true;
}

bool SocketFaultInjector::refuse_connect() {
  if (fire(profile_.connect_reset)) return true;
  consecutive_ = 0;
  return false;
}

IoFault SocketFaultInjector::pre_io() {
  if (fire(profile_.midstream_reset)) return IoFault::Reset;
  if (fire(profile_.stall)) return IoFault::Stall;
  if (fire(profile_.eintr)) return IoFault::Eintr;
  if (fire(profile_.eagain)) return IoFault::Eagain;
  // The real syscall goes through: the consecutive-injection streak is
  // broken, re-arming the liveness cap.
  consecutive_ = 0;
  return IoFault::None;
}

IoFault SocketFaultInjector::pre_read() { return pre_io(); }

IoFault SocketFaultInjector::pre_write() { return pre_io(); }

bool SocketFaultInjector::clamp_read_due() { return fire(profile_.short_read); }

bool SocketFaultInjector::clamp_write_due() {
  return fire(profile_.partial_write);
}

std::size_t SocketFaultInjector::clamp_read(std::size_t n) {
  if (n <= 1) return n;
  // The syscall completed: a short read is damage, not absence of
  // progress, so it clears the consecutive-injection streak.
  consecutive_ = 0;
  return 1 + static_cast<std::size_t>(rng_.next_below(n));
}

std::size_t SocketFaultInjector::clamp_write(std::size_t n) {
  if (n <= 1) return n;
  consecutive_ = 0;
  return 1 + static_cast<std::size_t>(rng_.next_below(n));
}

std::size_t SocketFaultInjector::tear_offset(std::size_t len) {
  if (len == 0 || !fire(profile_.torn_frame)) {
    return std::numeric_limits<std::size_t>::max();
  }
  consecutive_ = 0;
  return static_cast<std::size_t>(rng_.next_below(len));
}

}  // namespace veil::net
