// Real-socket transport backend: loopback TCP with connection
// supervision, session resumption, and syscall-level fault injection.
//
// TcpTransport implements the net::Transport engine over real sockets.
// Every attached principal gets an endpoint — a listening socket on
// 127.0.0.1 and a poll() event-loop thread that owns all of that node's
// connections. A directed link A->B is one TCP connection initiated by
// A's endpoint; messages cross it as length-prefixed checksummed frames
// (net/frame.hpp), through a SocketFaultInjector that manufactures
// partial writes, short reads, EINTR/EAGAIN storms, resets and stalls at
// the fd boundary (net/socket_fault.hpp).
//
// The connection supervisor per link provides:
//   - heartbeats: PING/PONG with miss-count failure detection; a link
//     that misses heartbeat_miss_limit intervals is declared failed and
//     the failure is fed to an optional CircuitBreaker (the same breaker
//     class ReliableChannel gates sends through);
//   - reconnect: decorrelated-jitter exponential backoff between
//     attempts, so links stranded by the same fault don't retry in
//     lockstep;
//   - bounded write queues: at most link_window unacked frames per link;
//     overflow surfaces as net::Busy to the sender (graceful
//     degradation) instead of unbounded buffering;
//   - session resumption: each (re)connection carries a session epoch
//     and resumes from the acceptor's last contiguously received frame
//     seq (HELLO/WELCOME), with the sender's unacked retransmit ring and
//     the receiver's cumulative seq dedup guaranteeing that a reconnect
//     never drops an acked frame or delivers one twice — exactly-once at
//     the frame layer, whatever the injector does to the bytes.
//
// Determinism contract: all *modeled* faults and all delivery ordering
// live in the Transport engine, which runs entirely on the caller's
// thread with the same RNG draws as SimNetwork. Endpoint threads only
// move bytes; run() waits for every in-flight frame before each pop
// (wire_pump), so a seeded workload produces bit-identical transcripts,
// stats (message layer) and ledger digests on either backend. Socket
// chaos perturbs only the transport-tier counters and wall-clock time.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "net/socket_fault.hpp"
#include "net/transport.hpp"

namespace veil::net {

class CircuitBreaker;

struct TcpConfig {
  /// Seed for per-connection fault-injector personas; injection is
  /// active only when the profile has a nonzero rate.
  std::uint64_t fault_seed = 0x7ea15eedULL;
  SocketFaultProfile faults;

  /// Unacked frames per directed link before sends surface net::Busy.
  std::size_t link_window = 4096;

  std::uint32_t heartbeat_interval_ms = 25;
  std::uint32_t heartbeat_miss_limit = 4;

  /// Reconnect backoff: decorrelated jitter in [base, 3*previous),
  /// capped. Drawn from a per-endpoint seeded RNG.
  std::uint32_t reconnect_base_ms = 1;
  std::uint32_t reconnect_cap_ms = 100;
  std::uint64_t reconnect_jitter_seed = 0x51e55edbeefULL;

  /// run() throws if in-flight frames make no progress for this long —
  /// a bug guard, generous enough to sit out injected stalls and
  /// reconnect storms.
  std::uint32_t pump_watchdog_ms = 30'000;
};

class TcpTransport final : public Transport {
 public:
  explicit TcpTransport(common::Rng rng, LatencyModel latency = {},
                        TcpConfig config = {});
  ~TcpTransport() override;

  /// Feed link supervision outcomes to `breaker` (not owned; null to
  /// remove): heartbeat-miss failures record failures, completed
  /// (re)connect handshakes record successes. Fed on the engine thread
  /// during run()/stats(), stamped with the sim clock — so breaker
  /// transcripts stay single-threaded even though detection happens on
  /// endpoint threads.
  void set_link_breaker(CircuitBreaker* breaker) { link_breaker_ = breaker; }

  /// Refreshes the transport-tier counters before returning.
  const NetworkStats& stats() const override;

  const TcpConfig& config() const { return config_; }

  /// Test hook: freeze (or thaw) a principal's event loop — no reads,
  /// writes, accepts or reconnects, like a peer whose process is stopped
  /// but whose kernel still ACKs. Used to drive heartbeat-miss detection
  /// deterministically. Don't run() traffic *to* a frozen endpoint: its
  /// frames can't land, so the pump watchdog would fire.
  void debug_freeze(const Principal& name, bool frozen);

 protected:
  WireResult wire_transmit(Pending& pending) override;
  void wire_pump() override;
  void wire_attach(const Principal& name) override;

 private:
  struct Endpoint;
  friend struct Endpoint;

  /// Supervisor event surfaced to the engine thread.
  struct LinkEvent {
    Principal peer;
    bool success = false;  // established handshake vs declared-dead link
  };

  /// Transport-tier counters, written by endpoint threads under mu_.
  struct Counters {
    std::uint64_t connects = 0;
    std::uint64_t reconnects = 0;
    std::uint64_t heartbeat_misses = 0;
    std::uint64_t session_resumptions = 0;
    std::uint64_t partial_write_continuations = 0;
    std::uint64_t short_reads = 0;
    std::uint64_t frames_torn = 0;
    std::uint64_t frames_rejected = 0;
    std::uint64_t injected_faults = 0;
  };

  Endpoint& endpoint_for(const Principal& name);
  void refresh_stats() const;

  TcpConfig config_;
  CircuitBreaker* link_breaker_ = nullptr;

  /// Engine-thread-only: endpoint registry and per-link depth handles
  /// (the atomics themselves are shared with endpoint threads).
  std::map<Principal, std::unique_ptr<Endpoint>> endpoints_;
  std::map<std::pair<Principal, Principal>,
           std::shared_ptr<std::atomic<std::size_t>>>
      link_depth_;

  /// Cross-thread rendezvous. Guards arrivals_, link_events_, counters_,
  /// outstanding_, every endpoint outbox, and shutdown_.
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  std::deque<Pending> arrivals_;
  std::vector<LinkEvent> link_events_;
  Counters counters_;
  std::int64_t outstanding_ = 0;
  bool shutdown_ = false;
  std::set<Principal> frozen_;
};

}  // namespace veil::net
