// Leakage report rendering.
//
// Turns a LeakageAuditor log into human-readable audit artifacts: a
// per-principal summary (plaintext vs opaque bytes, distinct data items)
// and a per-label observer listing. Examples and operators use this to
// answer the design guide's bottom-line question — "who could see what?"
// — without writing auditor queries by hand.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/leakage.hpp"
#include "net/network.hpp"

namespace veil::net {

struct PrincipalSummary {
  Principal principal;
  std::uint64_t plaintext_bytes = 0;
  std::uint64_t opaque_bytes = 0;
  std::size_t distinct_labels = 0;  // labels seen in plaintext
};

/// Per-principal totals, sorted by plaintext bytes (descending) then name.
/// `label_prefix` restricts the report to one subsystem ("tx/", "pdc/").
std::vector<PrincipalSummary> summarize(const LeakageAuditor& auditor,
                                        std::string_view label_prefix = "");

/// Render the summary as a fixed-width table.
std::string render_summary(const std::vector<PrincipalSummary>& summary);

/// For one datum (label prefix), list who saw it and in what form —
/// the per-item disclosure record an auditor would ask for.
struct DisclosureRecord {
  Principal principal;
  bool saw_plaintext = false;
  bool saw_opaque = false;
};
std::vector<DisclosureRecord> disclosures(const LeakageAuditor& auditor,
                                          std::string_view label_prefix);

std::string render_disclosures(std::string_view label_prefix,
                               const std::vector<DisclosureRecord>& records);

/// Render delivery/fault accounting: totals, a drop breakdown by cause
/// (random loss, partition, detached receiver, crash-stop), and the
/// reliable-channel counters (retransmits, duplicates suppressed). The
/// chaos-test how-to in docs/fault_model.md reads from this table.
std::string render_network_stats(const NetworkStats& stats);

}  // namespace veil::net
