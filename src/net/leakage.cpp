#include "net/leakage.hpp"

namespace veil::net {

namespace {
bool has_prefix(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}
}  // namespace

void LeakageAuditor::record(const Principal& observer, std::string label,
                            std::uint64_t bytes, bool plaintext) {
  log_.push_back(Observation{observer, std::move(label), bytes, plaintext});
}

bool LeakageAuditor::saw(const Principal& observer,
                         std::string_view label_prefix) const {
  for (const Observation& o : log_) {
    if (o.plaintext && o.observer == observer &&
        has_prefix(o.label, label_prefix)) {
      return true;
    }
  }
  return false;
}

bool LeakageAuditor::saw_any_form(const Principal& observer,
                                  std::string_view label_prefix) const {
  for (const Observation& o : log_) {
    if (o.observer == observer && has_prefix(o.label, label_prefix)) {
      return true;
    }
  }
  return false;
}

std::set<Principal> LeakageAuditor::observers_of(
    std::string_view label_prefix) const {
  std::set<Principal> out;
  for (const Observation& o : log_) {
    if (o.plaintext && has_prefix(o.label, label_prefix)) {
      out.insert(o.observer);
    }
  }
  return out;
}

std::uint64_t LeakageAuditor::bytes_seen(const Principal& observer,
                                         std::string_view label_prefix) const {
  std::uint64_t total = 0;
  for (const Observation& o : log_) {
    if (o.plaintext && o.observer == observer &&
        has_prefix(o.label, label_prefix)) {
      total += o.bytes;
    }
  }
  return total;
}

std::uint64_t LeakageAuditor::opaque_bytes_seen(
    const Principal& observer, std::string_view label_prefix) const {
  std::uint64_t total = 0;
  for (const Observation& o : log_) {
    if (!o.plaintext && o.observer == observer &&
        has_prefix(o.label, label_prefix)) {
      total += o.bytes;
    }
  }
  return total;
}

}  // namespace veil::net
