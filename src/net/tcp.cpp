#include "net/tcp.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <limits>
#include <string>

#include "common/error.hpp"
#include "net/frame.hpp"
#include "net/overload.hpp"

namespace veil::net {

namespace {

using WallClock = std::chrono::steady_clock;
using TimePoint = WallClock::time_point;

// Event-loop cadence. Level-triggered poll() with a short timeout keeps
// the loop simple (no epoll bookkeeping) at a cost that is invisible for
// the handful of endpoints a test or benchmark runs on loopback.
constexpr int kPollMs = 2;
constexpr std::size_t kReadChunk = 64 * 1024;
// When a short read is injected, clamp from a small base so reassembly
// actually sees byte-granular boundaries, not 64 KiB-granular ones.
constexpr std::size_t kInjectedReadChunk = 256;

std::uint64_t fold_name(std::uint64_t h, const std::string& s) {
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

int make_listener(std::uint16_t& port_out) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) throw common::ProtocolError("tcp: socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 128) != 0) {
    ::close(fd);
    throw common::ProtocolError("tcp: bind/listen failed");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    throw common::ProtocolError("tcp: getsockname failed");
  }
  port_out = ntohs(addr.sin_port);
  return fd;
}

void set_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

// ---------------------------------------------------------------------
// Endpoint: one principal's listener, connections and event-loop thread.
// Everything here except `outbox` (and the wake pipe write end) is owned
// exclusively by the endpoint thread; handoff to and from the engine
// happens only in drain_engine()/publish() under owner.mu_.
// ---------------------------------------------------------------------
struct TcpTransport::Endpoint {
  struct Conn {
    int fd = -1;
    bool outbound = false;     // we initiated (we own the link supervisor)
    bool connecting = false;   // nonblocking connect() still in flight
    bool established = false;  // HELLO/WELCOME handshake complete
    bool dead = false;
    Principal peer;  // outbound: at creation; inbound: after HELLO
    std::uint64_t epoch = 0;
    FrameDecoder decoder;
    common::Bytes out;  // pending outbound bytes (cursor: out_pos)
    std::size_t out_pos = 0;
    std::unique_ptr<SocketFaultInjector> injector;
    std::uint64_t injected_published = 0;
    TimePoint created_at{};
    TimePoint stalled_until{};
    TimePoint last_rx{};
    TimePoint last_ping{};
    std::uint32_t misses = 0;
  };

  /// Sender-side state of the directed link name -> peer: session epoch,
  /// frame sequencing, and the retransmit ring of unacked frames that
  /// session resumption replays after a reconnect.
  struct LinkTx {
    std::uint16_t port = 0;
    std::uint64_t epoch = 0;
    std::uint64_t next_seq = 1;
    std::deque<std::pair<std::uint64_t, common::Bytes>> ring;
    std::shared_ptr<std::atomic<std::size_t>> depth;
    Conn* conn = nullptr;
    bool ever_connected = false;
    std::uint32_t backoff_ms = 0;
    TimePoint retry_at{};
  };

  struct OutboxItem {
    Principal to;
    std::uint16_t port = 0;
    common::Bytes body;  // encoded WireMessage
    std::shared_ptr<std::atomic<std::size_t>> depth;
  };

  TcpTransport& owner;
  Principal name;
  std::uint16_t port = 0;
  int listen_fd = -1;
  int wake_rd = -1;
  int wake_wr = -1;

  std::deque<OutboxItem> outbox;  // guarded by owner.mu_

  // Endpoint-thread state.
  std::vector<std::unique_ptr<Conn>> conns;
  std::map<Principal, LinkTx> links;
  std::map<Principal, std::uint64_t> rx_last;   // per-initiator delivered seq
  std::map<Principal, std::uint64_t> rx_epoch;  // largest session epoch seen
  std::map<Principal, Conn*> rx_conn;
  common::Rng backoff_rng;
  Counters local;             // counter deltas since last publish()
  std::deque<Pending> ready;  // reassembled arrivals since last publish()
  std::vector<LinkEvent> events;
  bool frozen = false;
  std::thread thread;

  Endpoint(TcpTransport& o, Principal n)
      : owner(o),
        name(std::move(n)),
        backoff_rng(fold_name(o.config_.reconnect_jitter_seed, name)) {
    listen_fd = make_listener(port);
    int p[2];
    if (::pipe2(p, O_NONBLOCK | O_CLOEXEC) != 0) {
      ::close(listen_fd);
      throw common::ProtocolError("tcp: pipe2 failed");
    }
    wake_rd = p[0];
    wake_wr = p[1];
    thread = std::thread([this] { loop(); });
  }

  ~Endpoint() {
    // Thread is joined by ~TcpTransport before endpoints are destroyed.
    for (auto& c : conns) {
      if (c->fd >= 0) ::close(c->fd);
    }
    if (listen_fd >= 0) ::close(listen_fd);
    if (wake_rd >= 0) ::close(wake_rd);
    if (wake_wr >= 0) ::close(wake_wr);
  }

  /// Engine thread (or destructor): kick the poll loop awake.
  void wake() const {
    const char b = 0;
    [[maybe_unused]] ssize_t r = ::write(wake_wr, &b, 1);
  }

  const SocketFaultProfile& profile() const { return owner.config_.faults; }

  std::unique_ptr<SocketFaultInjector> make_injector(const Principal& initiator,
                                                     const Principal& acceptor,
                                                     std::uint64_t epoch) const {
    if (!profile().enabled()) return nullptr;
    return std::make_unique<SocketFaultInjector>(
        profile(), owner.config_.fault_seed, initiator, acceptor, epoch);
  }

  // -- cross-thread handoff -------------------------------------------

  /// Pull engine-offered messages and the shutdown/freeze flags.
  bool drain_engine(std::deque<OutboxItem>& items) {
    std::lock_guard lk(owner.mu_);
    items.swap(outbox);
    frozen = owner.frozen_.contains(name);
    return owner.shutdown_;
  }

  /// Push arrivals, supervisor events and counter deltas to the engine.
  void publish() {
    for (auto& c : conns) {
      if (c->injector) {
        local.injected_faults += c->injector->injected() - c->injected_published;
        c->injected_published = c->injector->injected();
      }
    }
    if (ready.empty() && events.empty() && !counters_dirty()) return;
    {
      std::lock_guard lk(owner.mu_);
      owner.outstanding_ -= static_cast<std::int64_t>(ready.size());
      while (!ready.empty()) {
        owner.arrivals_.push_back(std::move(ready.front()));
        ready.pop_front();
      }
      for (auto& e : events) owner.link_events_.push_back(std::move(e));
      events.clear();
      fold_counters(owner.counters_, local);
      local = Counters{};
    }
    owner.cv_.notify_all();
  }

  bool counters_dirty() const {
    return local.connects || local.reconnects || local.heartbeat_misses ||
           local.session_resumptions || local.partial_write_continuations ||
           local.short_reads || local.frames_torn || local.frames_rejected ||
           local.injected_faults;
  }

  static void fold_counters(Counters& into, const Counters& delta) {
    into.connects += delta.connects;
    into.reconnects += delta.reconnects;
    into.heartbeat_misses += delta.heartbeat_misses;
    into.session_resumptions += delta.session_resumptions;
    into.partial_write_continuations += delta.partial_write_continuations;
    into.short_reads += delta.short_reads;
    into.frames_torn += delta.frames_torn;
    into.frames_rejected += delta.frames_rejected;
    into.injected_faults += delta.injected_faults;
  }

  // -- link supervision -----------------------------------------------

  void admit_outbox(std::deque<OutboxItem>& items) {
    for (auto& item : items) {
      LinkTx& link = links[item.to];
      link.port = item.port;
      link.depth = item.depth;
      const std::uint64_t seq = link.next_seq++;
      link.ring.emplace_back(seq, std::move(item.body));
      if (link.conn != nullptr && link.conn->established) {
        append_data(*link.conn, seq, link.ring.back().second);
      }
    }
  }

  void append_frame(Conn& conn, const Frame& frame) {
    common::Bytes bytes = frame.encode();
    conn.out.insert(conn.out.end(), bytes.begin(), bytes.end());
  }

  /// Append a Data frame through the injector's tear decision. A torn
  /// frame corrupts only this connection's transient out stream; the ring
  /// keeps the clean copy that resumption will replay.
  void append_data(Conn& conn, std::uint64_t seq, const common::Bytes& body) {
    common::Bytes bytes = Frame{FrameType::Data, seq, body}.encode();
    if (conn.injector) {
      const std::size_t off = conn.injector->tear_offset(bytes.size());
      if (off != std::numeric_limits<std::size_t>::max()) {
        bytes[off] ^= 0x20;
      }
    }
    conn.out.insert(conn.out.end(), bytes.begin(), bytes.end());
  }

  void schedule_backoff(LinkTx& link) {
    const auto& cfg = owner.config_;
    // Decorrelated jitter: next in [base, 3*previous), capped.
    const std::uint32_t prev = std::max(link.backoff_ms, cfg.reconnect_base_ms);
    const std::uint64_t span = std::max<std::uint64_t>(1, 3ULL * prev - cfg.reconnect_base_ms);
    std::uint32_t next = cfg.reconnect_base_ms +
                         static_cast<std::uint32_t>(backoff_rng.next_below(span));
    next = std::min(next, cfg.reconnect_cap_ms);
    link.backoff_ms = next;
    link.retry_at = WallClock::now() + std::chrono::milliseconds(next);
  }

  void start_connect(const Principal& peer, LinkTx& link) {
    ++link.epoch;
    auto injector = make_injector(name, peer, link.epoch);
    if (injector && injector->refuse_connect()) {
      // RST on SYN: the attempt dies before a socket exists.
      local.injected_faults += injector->injected();
      schedule_backoff(link);
      return;
    }
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (fd < 0) {
      schedule_backoff(link);
      return;
    }
    set_nodelay(fd);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(link.port);
    const int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
    if (rc != 0 && errno != EINPROGRESS) {
      ::close(fd);
      schedule_backoff(link);
      return;
    }
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->outbound = true;
    conn->connecting = (rc != 0);
    conn->peer = peer;
    conn->epoch = link.epoch;
    conn->injector = std::move(injector);
    conn->created_at = WallClock::now();
    conn->last_rx = conn->created_at;
    link.conn = conn.get();
    if (!conn->connecting) send_hello(*conn);
    conns.push_back(std::move(conn));
  }

  void send_hello(Conn& conn) {
    conn.connecting = false;
    append_frame(conn, Frame{FrameType::Hello, 0,
                             HelloBody{name, conn.peer, conn.epoch}.encode()});
  }

  /// Declare a connection dead. The link (if any) backs off and will
  /// reconnect when it next has (or still has) frames to move.
  void kill(Conn& conn, bool supervisor_failure = false) {
    if (conn.dead) return;
    if (conn.fd >= 0) {
      ::close(conn.fd);
      conn.fd = -1;
    }
    conn.dead = true;
    if (conn.injector) {
      local.injected_faults += conn.injector->injected() - conn.injected_published;
      conn.injected_published = conn.injector->injected();
    }
    if (conn.outbound) {
      auto it = links.find(conn.peer);
      if (it != links.end() && it->second.conn == &conn) {
        it->second.conn = nullptr;
        schedule_backoff(it->second);
      }
      if (supervisor_failure) {
        events.push_back(LinkEvent{conn.peer, false});
      }
    } else if (!conn.peer.empty()) {
      auto it = rx_conn.find(conn.peer);
      if (it != rx_conn.end() && it->second == &conn) rx_conn.erase(it);
    }
  }

  void progress_links(TimePoint now) {
    for (auto& [peer, link] : links) {
      if (link.conn != nullptr || link.ring.empty()) continue;
      if (now < link.retry_at) continue;
      start_connect(peer, link);
    }
  }

  /// Heartbeats and handshake timeouts — outbound (link-owning) side.
  void supervise(TimePoint now) {
    const auto& cfg = owner.config_;
    const auto interval = std::chrono::milliseconds(cfg.heartbeat_interval_ms);
    const auto handshake_limit = interval * cfg.heartbeat_miss_limit;
    for (auto& c : conns) {
      if (c->dead || !c->outbound) continue;
      if (!c->established) {
        if (now - c->created_at >= handshake_limit) {
          // Connect or HELLO/WELCOME stuck: treat as a supervision
          // failure so a wedged acceptor trips the breaker too.
          kill(*c, /*supervisor_failure=*/true);
        }
        continue;
      }
      if (now - c->last_ping >= interval) {
        append_frame(*c, Frame{FrameType::Ping, 0, {}});
        c->last_ping = now;
      }
      if (now - c->last_rx >= interval * (c->misses + 1)) {
        ++c->misses;
        ++local.heartbeat_misses;
        if (c->misses >= cfg.heartbeat_miss_limit) {
          kill(*c, /*supervisor_failure=*/true);
        }
      }
    }
  }

  // -- socket I/O ------------------------------------------------------

  void flush(Conn& conn, TimePoint now) {
    if (conn.dead || conn.connecting || conn.out_pos >= conn.out.size()) return;
    if (now < conn.stalled_until) return;
    while (conn.out_pos < conn.out.size()) {
      if (conn.injector) {
        switch (conn.injector->pre_write()) {
          case IoFault::None:
            break;
          case IoFault::Eintr:
            continue;  // retry immediately, as a real EINTR loop would
          case IoFault::Eagain:
            return;  // back to the poll loop
          case IoFault::Reset:
            kill(conn);
            return;
          case IoFault::Stall:
            conn.stalled_until =
                now + std::chrono::milliseconds(conn.injector->stall_ms());
            return;
        }
      }
      std::size_t want = conn.out.size() - conn.out_pos;
      if (conn.injector && conn.injector->clamp_write_due()) {
        want = conn.injector->clamp_write(want);
      }
      const ssize_t n =
          ::send(conn.fd, conn.out.data() + conn.out_pos, want, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        kill(conn);
        return;
      }
      conn.out_pos += static_cast<std::size_t>(n);
      if (conn.out_pos < conn.out.size()) {
        // A clamped or kernel-shortened write left a tail: the cursor
        // continuation is the behavior under test.
        ++local.partial_write_continuations;
      }
    }
    conn.out.clear();
    conn.out_pos = 0;
  }

  void handle_readable(Conn& conn, TimePoint now) {
    if (conn.dead || now < conn.stalled_until) return;
    if (conn.injector) {
      switch (conn.injector->pre_read()) {
        case IoFault::None:
          break;
        case IoFault::Eintr:
        case IoFault::Eagain:
          return;
        case IoFault::Reset:
          kill(conn);
          return;
        case IoFault::Stall:
          conn.stalled_until =
              now + std::chrono::milliseconds(conn.injector->stall_ms());
          return;
      }
    }
    std::size_t cap = kReadChunk;
    if (conn.injector && conn.injector->clamp_read_due()) {
      cap = conn.injector->clamp_read(kInjectedReadChunk);
      ++local.short_reads;
    }
    std::uint8_t buf[kReadChunk];
    const ssize_t n = ::recv(conn.fd, buf, cap, 0);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) return;
      kill(conn);
      return;
    }
    if (n == 0) {
      kill(conn);
      return;
    }
    conn.last_rx = now;
    conn.misses = 0;
    try {
      conn.decoder.feed(common::BytesView(buf, static_cast<std::size_t>(n)));
      Frame frame;
      bool ack_needed = false;
      while (!conn.dead && conn.decoder.next(frame)) {
        handle_frame(conn, frame, ack_needed);
      }
      if (ack_needed && !conn.dead) {
        append_frame(conn, Frame{FrameType::Ack, 0,
                                 AckBody{rx_last[conn.peer]}.encode()});
      }
    } catch (const common::Error&) {
      // Torn or corrupted stream: framing is unrecoverable within this
      // connection. Kill it; the initiator reconnects and resumes.
      ++local.frames_torn;
      kill(conn);
    }
  }

  void handle_frame(Conn& conn, Frame& frame, bool& ack_needed) {
    switch (frame.type) {
      case FrameType::Hello:
        handle_hello(conn, frame);
        break;
      case FrameType::Welcome:
        handle_welcome(conn, frame);
        break;
      case FrameType::Data:
        handle_data(conn, frame, ack_needed);
        break;
      case FrameType::Ack:
        handle_ack(conn, frame);
        break;
      case FrameType::Ping:
        append_frame(conn, Frame{FrameType::Pong, 0, {}});
        break;
      case FrameType::Pong:
        break;  // last_rx already refreshed; that's the whole job
    }
  }

  void handle_hello(Conn& conn, const Frame& frame) {
    const HelloBody hello = HelloBody::decode(frame.body);
    if (conn.outbound || hello.to != name) {
      kill(conn);
      return;
    }
    if (hello.epoch <= rx_epoch[hello.from]) {
      kill(conn);  // stale session racing a newer one
      return;
    }
    // A newer session replaces any zombie connection for this link.
    auto it = rx_conn.find(hello.from);
    if (it != rx_conn.end() && it->second != &conn) kill(*it->second);
    conn.peer = hello.from;
    conn.epoch = hello.epoch;
    conn.established = true;
    conn.injector = make_injector(hello.from, name, hello.epoch);
    conn.injected_published = 0;
    rx_epoch[hello.from] = hello.epoch;
    rx_conn[hello.from] = &conn;
    append_frame(conn, Frame{FrameType::Welcome, 0,
                             WelcomeBody{rx_last[hello.from]}.encode()});
  }

  void handle_welcome(Conn& conn, const Frame& frame) {
    const WelcomeBody welcome = WelcomeBody::decode(frame.body);
    auto it = links.find(conn.peer);
    if (!conn.outbound || conn.established || it == links.end() ||
        it->second.conn != &conn) {
      kill(conn);
      return;
    }
    LinkTx& link = it->second;
    conn.established = true;
    conn.last_ping = WallClock::now();
    // Resume: drop everything the acceptor already delivered, replay the
    // unacked tail.
    prune_ring(link, welcome.last_recv_seq);
    if (link.ever_connected) {
      ++local.reconnects;
      if (!link.ring.empty()) ++local.session_resumptions;
    }
    ++local.connects;
    link.ever_connected = true;
    link.backoff_ms = 0;
    for (const auto& [seq, body] : link.ring) {
      append_data(conn, seq, body);
    }
    events.push_back(LinkEvent{conn.peer, true});
  }

  void handle_data(Conn& conn, Frame& frame, bool& ack_needed) {
    if (conn.outbound || !conn.established) {
      kill(conn);
      return;
    }
    std::uint64_t& last = rx_last[conn.peer];
    if (frame.link_seq <= last) {
      // Duplicate from a pre-reset transmission: drop, but re-ack so the
      // sender's ring prunes even if the original Ack was lost.
      ++local.frames_rejected;
      ack_needed = true;
      return;
    }
    if (frame.link_seq != last + 1) {
      // Gap in the stream: desync. Kill; resumption replays from `last`.
      kill(conn);
      return;
    }
    WireMessage wm = WireMessage::decode(frame.body);
    last = frame.link_seq;
    ack_needed = true;
    Pending arrival;
    arrival.deliver_at = wm.message.delivered_at;
    arrival.sequence = wm.engine_seq;
    arrival.message = std::move(wm.message);
    ready.push_back(std::move(arrival));
  }

  void handle_ack(Conn& conn, const Frame& frame) {
    const AckBody ack = AckBody::decode(frame.body);
    auto it = links.find(conn.peer);
    if (!conn.outbound || it == links.end()) {
      kill(conn);
      return;
    }
    prune_ring(it->second, ack.cum_seq);
  }

  void prune_ring(LinkTx& link, std::uint64_t cum_seq) {
    while (!link.ring.empty() && link.ring.front().first <= cum_seq) {
      link.ring.pop_front();
      if (link.depth) link.depth->fetch_sub(1, std::memory_order_relaxed);
    }
  }

  void accept_pending() {
    while (true) {
      const int fd = ::accept4(listen_fd, nullptr, nullptr,
                               SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) return;
      set_nodelay(fd);
      auto conn = std::make_unique<Conn>();
      conn->fd = fd;
      conn->outbound = false;
      conn->created_at = WallClock::now();
      conn->last_rx = conn->created_at;
      conns.push_back(std::move(conn));
    }
  }

  void check_connecting(TimePoint now) {
    for (auto& c : conns) {
      if (c->dead || !c->connecting) continue;
      pollfd pfd{c->fd, POLLOUT, 0};
      if (::poll(&pfd, 1, 0) <= 0) continue;
      int err = 0;
      socklen_t len = sizeof(err);
      ::getsockopt(c->fd, SOL_SOCKET, SO_ERROR, &err, &len);
      if (err != 0) {
        kill(*c);
      } else {
        send_hello(*c);
        (void)now;
      }
    }
  }

  void reap() {
    for (std::size_t i = 0; i < conns.size();) {
      if (conns[i]->dead) {
        conns.erase(conns.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
  }

  void loop() {
    std::deque<OutboxItem> items;
    std::vector<pollfd> pfds;
    while (true) {
      items.clear();
      const bool shutdown = drain_engine(items);
      if (shutdown) break;
      const TimePoint now = WallClock::now();
      if (!frozen) {
        admit_outbox(items);
        progress_links(now);
        check_connecting(now);
        supervise(now);
        for (auto& c : conns) flush(*c, now);
        reap();
      } else if (!items.empty()) {
        admit_outbox(items);  // queue under freeze; move nothing
      }
      publish();

      pfds.clear();
      pfds.push_back({wake_rd, POLLIN, 0});
      pfds.push_back({listen_fd, POLLIN, 0});
      if (!frozen) {
        for (auto& c : conns) {
          short ev = POLLIN;
          if (c->connecting || c->out_pos < c->out.size()) ev |= POLLOUT;
          pfds.push_back({c->fd, ev, 0});
        }
      }
      ::poll(pfds.data(), pfds.size(), kPollMs);

      if (pfds[0].revents & POLLIN) {
        std::uint8_t sink[256];
        while (::read(wake_rd, sink, sizeof(sink)) > 0) {
        }
      }
      if (frozen) continue;
      if (pfds[1].revents & POLLIN) accept_pending();
      const TimePoint after = WallClock::now();
      check_connecting(after);
      for (std::size_t i = 2; i < pfds.size(); ++i) {
        auto& c = *conns[i - 2];
        if (c.dead || c.connecting) continue;
        if (pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) {
          handle_readable(c, after);
        }
      }
      for (auto& c : conns) flush(*c, after);
      publish();
      reap();
    }
    // Drop whatever is still buffered; the engine is shutting down.
  }
};

// ---------------------------------------------------------------------
// TcpTransport: engine-thread surface.
// ---------------------------------------------------------------------

TcpTransport::TcpTransport(common::Rng rng, LatencyModel latency,
                           TcpConfig config)
    : Transport(std::move(rng), latency), config_(config) {}

TcpTransport::~TcpTransport() {
  {
    std::lock_guard lk(mu_);
    shutdown_ = true;
  }
  for (auto& [name, ep] : endpoints_) ep->wake();
  for (auto& [name, ep] : endpoints_) {
    if (ep->thread.joinable()) ep->thread.join();
  }
}

TcpTransport::Endpoint& TcpTransport::endpoint_for(const Principal& name) {
  auto it = endpoints_.find(name);
  if (it == endpoints_.end()) {
    it = endpoints_.emplace(name, std::make_unique<Endpoint>(*this, name)).first;
  }
  return *it->second;
}

void TcpTransport::wire_attach(const Principal& name) { endpoint_for(name); }

Transport::WireResult TcpTransport::wire_transmit(Pending& pending) {
  const Principal from = pending.message.from;
  const Principal to = pending.message.to;
  if (from == to) return WireResult::Local;  // no loopback-to-self socket
  Endpoint& src = endpoint_for(from);
  Endpoint& dst = endpoint_for(to);
  auto& depth = link_depth_[{from, to}];
  if (!depth) depth = std::make_shared<std::atomic<std::size_t>>(0);
  if (depth->load(std::memory_order_relaxed) >= config_.link_window) {
    return WireResult::Overflow;
  }
  depth->fetch_add(1, std::memory_order_relaxed);
  WireMessage wm;
  wm.message = std::move(pending.message);
  wm.engine_seq = pending.sequence;
  {
    std::lock_guard lk(mu_);
    ++outstanding_;
    src.outbox.push_back(Endpoint::OutboxItem{to, dst.port, wm.encode(), depth});
  }
  src.wake();
  return WireResult::Sent;
}

void TcpTransport::wire_pump() {
  std::unique_lock lk(mu_);
  const auto deadline =
      WallClock::now() + std::chrono::milliseconds(config_.pump_watchdog_ms);
  while (true) {
    while (!arrivals_.empty()) {
      enqueue_arrival(std::move(arrivals_.front()));
      arrivals_.pop_front();
    }
    if (link_breaker_ != nullptr) {
      for (const LinkEvent& e : link_events_) {
        if (e.success) {
          link_breaker_->record_success(e.peer, clock().now());
        } else {
          link_breaker_->record_failure(e.peer, clock().now());
        }
      }
    }
    link_events_.clear();
    if (outstanding_ == 0) return;
    if (cv_.wait_until(lk, deadline) == std::cv_status::timeout &&
        outstanding_ > 0 && WallClock::now() >= deadline) {
      throw common::ProtocolError(
          "tcp: wire stalled — " + std::to_string(outstanding_) +
          " frame(s) in flight past the pump watchdog");
    }
  }
}

void TcpTransport::refresh_stats() const {
  auto* self = const_cast<TcpTransport*>(this);
  Counters snap;
  {
    std::lock_guard lk(mu_);
    snap = counters_;
    if (link_breaker_ != nullptr) {
      for (const LinkEvent& e : self->link_events_) {
        if (e.success) {
          self->link_breaker_->record_success(e.peer, clock().now());
        } else {
          self->link_breaker_->record_failure(e.peer, clock().now());
        }
      }
      self->link_events_.clear();
    }
  }
  NetworkStats& s = self->mutable_stats();
  s.tcp_connects = snap.connects;
  s.tcp_reconnects = snap.reconnects;
  s.tcp_heartbeat_misses = snap.heartbeat_misses;
  s.tcp_session_resumptions = snap.session_resumptions;
  s.tcp_partial_write_continuations = snap.partial_write_continuations;
  s.tcp_short_reads = snap.short_reads;
  s.tcp_frames_torn = snap.frames_torn;
  s.tcp_frames_rejected = snap.frames_rejected;
  s.tcp_injected_faults = snap.injected_faults;
}

const NetworkStats& TcpTransport::stats() const {
  refresh_stats();
  return Transport::stats();
}

void TcpTransport::debug_freeze(const Principal& name, bool frozen) {
  {
    std::lock_guard lk(mu_);
    if (frozen) {
      frozen_.insert(name);
    } else {
      frozen_.erase(name);
    }
  }
  auto it = endpoints_.find(name);
  if (it != endpoints_.end()) it->second->wake();
}

}  // namespace veil::net
