// Reliable delivery over the lossy Transport.
//
// The Transport engine models a fair-loss link on every backend (sim or
// TCP): messages may be dropped by random
// loss, partitions, or crash-stopped endpoints. ReliableChannel layers
// the classic at-least-once machinery on top — per-message acks, timeout
// with exponential backoff, bounded retransmissions — plus sender-side
// sequence numbers and receiver-side dedup, so application handlers see
// each message exactly once. Retries are bounded: when the network is
// truly dead (100% loss, unhealed partition) the channel gives up and the
// platform above fails CLOSED, exactly as it did before this layer
// existed.
//
// Overload behavior (PR 7): backoff uses decorrelated jitter by default —
// pure exponential synchronizes retry storms after a partition heals,
// because every stranded sender doubles from the same base on the same
// clock. The jitter draws from a channel-local seeded RNG, so transcripts
// stay reproducible and the network's own draw sequence is untouched.
// Envelopes optionally carry an absolute deadline: the sender abandons
// retransmission past it and the receiver acks-but-drops late arrivals,
// so dead work stops consuming the wire. Busy{retry_after} notices from
// bounded inboxes defer the retransmission timer without spending an
// attempt, and an optional per-link send window queues (then refuses)
// sends beyond a configured number of unacked messages. An optional
// CircuitBreaker gates fresh sends to peers whose retry budgets keep
// exhausting.
//
// Privacy note: a retransmission travels only to the original recipient
// and an ack only to the original sender, so reliability adds no new
// observers — the property the chaos suite's leakage assertions pin down.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <string>

#include "common/rng.hpp"
#include "net/network.hpp"
#include "net/overload.hpp"

namespace veil::net {

struct RetryPolicy {
  /// First retransmission fires this long after the original send. Must
  /// exceed one round trip (2 x latency base+jitter) or every message
  /// retransmits once.
  common::SimTime initial_timeout_us = 5'000;
  double backoff_factor = 2.0;
  /// Total attempts including the original send. At 20% uniform loss and
  /// 6 attempts a message is lost for good with p = 0.2^6 = 6.4e-5.
  std::size_t max_attempts = 6;

  /// Decorrelated-jitter backoff: the timeout after a retransmit is drawn
  /// uniformly from [initial, 3 * previous), capped at max_timeout_us,
  /// instead of deterministically doubling. Draws come from a channel-
  /// local RNG seeded with jitter_seed, so the schedule is reproducible
  /// without perturbing the network RNG stream.
  bool decorrelated_jitter = true;
  common::SimTime max_timeout_us = 160'000;
  std::uint64_t jitter_seed = 0x6a177e125d2c0b1fULL;

  /// Per-(from,to) send window: at most this many unacked messages on the
  /// wire; excess sends queue (FIFO) and dispatch as flights settle.
  /// 0 = unlimited (the pre-PR-7 behavior).
  std::size_t window = 0;
  /// Queued sends per link beyond the window before new sends are
  /// refused outright (fail closed). 0 = unlimited queue.
  std::size_t window_queue = 0;
  /// Busy deferrals per flight before the channel stops honoring the
  /// receiver's backpressure and resumes the normal retry/give-up path.
  std::size_t max_busy_deferrals = 32;
};

struct ReliableStats {
  std::uint64_t sent = 0;         // distinct messages offered to the wire
  std::uint64_t retransmits = 0;  // extra wire sends beyond the first
  std::uint64_t acked = 0;
  std::uint64_t gave_up = 0;  // retries exhausted (or endpoint gone)
  std::uint64_t duplicates_suppressed = 0;
  std::uint64_t malformed = 0;  // undecodable envelopes, dropped

  // Overload accounting.
  std::uint64_t expired = 0;             // abandoned: deadline passed
  std::uint64_t expired_on_arrival = 0;  // delivered late, acked + dropped
  std::uint64_t busy_deferrals = 0;      // retransmits postponed by Busy
  std::uint64_t window_queued = 0;       // sends held for an open slot
  std::uint64_t window_rejected = 0;     // sends refused: link queue full
  std::uint64_t breaker_rejected = 0;    // sends refused by open breaker
};

class ReliableChannel {
 public:
  explicit ReliableChannel(Transport& network, RetryPolicy policy = {});

  /// Register a principal. All traffic to it must be channel envelopes;
  /// the channel acks, dedups, then forwards the inner message (with its
  /// original topic) to `handler`. A null handler makes the endpoint
  /// send/ack-only (e.g. an ordering service that never receives app
  /// traffic but must collect acks for its own sends).
  void attach(const Principal& name, Transport::Handler handler);

  /// Reliable send: at-least-once on the wire, exactly-once to the
  /// receiving handler. `from` must be attached (acks flow back to it).
  /// A nonzero `deadline_us` (absolute sim time) bounds the effort: the
  /// sender stops retransmitting past it, and a receiver that gets the
  /// message after the deadline acks it but drops it unforwarded.
  void send(const Principal& from, const Principal& to,
            const std::string& topic, common::Bytes payload,
            common::SimTime deadline_us = 0);

  /// Gate fresh sends through `breaker` (not owned; may be null to
  /// remove). Acks record successes; exhausted retry budgets record
  /// failures — the breaker opens over peers that keep timing out.
  void set_breaker(CircuitBreaker* breaker) { breaker_ = breaker; }

  /// Messages still awaiting an ack (drained retries pending).
  std::size_t in_flight() const { return in_flight_.size(); }

  const ReliableStats& stats() const { return stats_; }
  const RetryPolicy& policy() const { return policy_; }

  /// Envelope codec, exposed for the decode-fuzz suite. `deadline_us` is
  /// the TTL header: 0 means none.
  struct Envelope {
    std::uint64_t seq = 0;
    common::SimTime deadline_us = 0;
    common::Bytes payload;

    common::Bytes encode() const;
    /// Throws common::Error on malformed input.
    static Envelope decode(common::BytesView data);
  };

 private:
  struct Key {
    Principal from;
    Principal to;
    std::uint64_t seq;
    auto operator<=>(const Key&) const = default;
  };

  struct InFlight {
    std::string topic;
    common::Bytes wire;  // encoded envelope, reused for retransmits
    std::size_t attempts = 1;
    common::SimTime timeout;
    common::SimTime deadline_us = 0;
    std::size_t deferrals = 0;  // Busy-driven postponements so far
  };

  struct Queued {
    std::string topic;
    common::Bytes payload;
    common::SimTime deadline_us = 0;
  };

  /// Receiver-side dedup window: lowest-unseen plus out-of-order set.
  struct SeenWindow {
    std::uint64_t next = 0;
    std::set<std::uint64_t> ahead;
    bool fresh(std::uint64_t seq);
  };

  using Link = std::pair<Principal, Principal>;

  void on_message(const Principal& self, const Transport::Handler& handler,
                  const Message& msg);
  /// Put a message on the wire and arm its retry timer (window slot
  /// already secured by the caller).
  void dispatch(const Principal& from, const Principal& to,
                const std::string& topic, common::Bytes payload,
                common::SimTime deadline_us);
  void arm_timer(Key key);
  void on_timer(const Key& key);
  /// Retire a flight (acked, expired, or given up): free its window slot
  /// and dispatch queued sends that now fit.
  void finish_flight(std::map<Key, InFlight>::iterator it);
  void drain_waiting(const Link& link);
  common::SimTime next_timeout(common::SimTime previous);

  Transport* network_;
  RetryPolicy policy_;
  common::Rng jitter_rng_;
  CircuitBreaker* breaker_ = nullptr;
  std::map<Link, std::uint64_t> next_seq_;
  std::map<Key, InFlight> in_flight_;
  std::map<Link, SeenWindow> seen_;
  std::map<Link, std::size_t> open_flights_;
  std::map<Link, std::deque<Queued>> waiting_;
  std::map<Link, common::SimTime> busy_until_;
  ReliableStats stats_;
};

}  // namespace veil::net
