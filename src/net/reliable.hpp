// Reliable delivery over the lossy SimNetwork.
//
// SimNetwork models a fair-loss link: messages may be dropped by random
// loss, partitions, or crash-stopped endpoints. ReliableChannel layers
// the classic at-least-once machinery on top — per-message acks, timeout
// with exponential backoff, bounded retransmissions — plus sender-side
// sequence numbers and receiver-side dedup, so application handlers see
// each message exactly once. Retries are bounded: when the network is
// truly dead (100% loss, unhealed partition) the channel gives up and the
// platform above fails CLOSED, exactly as it did before this layer
// existed.
//
// Privacy note: a retransmission travels only to the original recipient
// and an ack only to the original sender, so reliability adds no new
// observers — the property the chaos suite's leakage assertions pin down.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "net/network.hpp"

namespace veil::net {

struct RetryPolicy {
  /// First retransmission fires this long after the original send. Must
  /// exceed one round trip (2 x latency base+jitter) or every message
  /// retransmits once.
  common::SimTime initial_timeout_us = 5'000;
  double backoff_factor = 2.0;
  /// Total attempts including the original send. At 20% uniform loss and
  /// 6 attempts a message is lost for good with p = 0.2^6 = 6.4e-5.
  std::size_t max_attempts = 6;
};

struct ReliableStats {
  std::uint64_t sent = 0;         // distinct messages offered
  std::uint64_t retransmits = 0;  // extra wire sends beyond the first
  std::uint64_t acked = 0;
  std::uint64_t gave_up = 0;  // retries exhausted (or endpoint gone)
  std::uint64_t duplicates_suppressed = 0;
  std::uint64_t malformed = 0;  // undecodable envelopes, dropped
};

class ReliableChannel {
 public:
  explicit ReliableChannel(SimNetwork& network, RetryPolicy policy = {});

  /// Register a principal. All traffic to it must be channel envelopes;
  /// the channel acks, dedups, then forwards the inner message (with its
  /// original topic) to `handler`. A null handler makes the endpoint
  /// send/ack-only (e.g. an ordering service that never receives app
  /// traffic but must collect acks for its own sends).
  void attach(const Principal& name, SimNetwork::Handler handler);

  /// Reliable send: at-least-once on the wire, exactly-once to the
  /// receiving handler. `from` must be attached (acks flow back to it).
  void send(const Principal& from, const Principal& to,
            const std::string& topic, common::Bytes payload);

  /// Messages still awaiting an ack (drained retries pending).
  std::size_t in_flight() const { return in_flight_.size(); }

  const ReliableStats& stats() const { return stats_; }
  const RetryPolicy& policy() const { return policy_; }

  /// Envelope codec, exposed for the decode-fuzz suite.
  struct Envelope {
    std::uint64_t seq = 0;
    common::Bytes payload;

    common::Bytes encode() const;
    /// Throws common::Error on malformed input.
    static Envelope decode(common::BytesView data);
  };

 private:
  struct Key {
    Principal from;
    Principal to;
    std::uint64_t seq;
    auto operator<=>(const Key&) const = default;
  };

  struct InFlight {
    std::string topic;
    common::Bytes wire;  // encoded envelope, reused for retransmits
    std::size_t attempts = 1;
    common::SimTime timeout;
  };

  /// Receiver-side dedup window: lowest-unseen plus out-of-order set.
  struct SeenWindow {
    std::uint64_t next = 0;
    std::set<std::uint64_t> ahead;
    bool fresh(std::uint64_t seq);
  };

  void on_message(const Principal& self, const SimNetwork::Handler& handler,
                  const Message& msg);
  void arm_timer(Key key);

  SimNetwork* network_;
  RetryPolicy policy_;
  std::map<std::pair<Principal, Principal>, std::uint64_t> next_seq_;
  std::map<Key, InFlight> in_flight_;
  std::map<std::pair<Principal, Principal>, SeenWindow> seen_;
  ReliableStats stats_;
};

}  // namespace veil::net
