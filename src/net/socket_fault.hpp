// Syscall-level fault injection for the real-socket transport.
//
// The simulated backend earns its chaos discipline from FaultPlan:
// seed-reproducible drops, partitions and crashes at the message layer.
// The TCP backend pays real syscall costs, so its failure modes live a
// layer lower — a write() that takes half the buffer, a read() returning
// three bytes of a length prefix, EINTR/EAGAIN storms, a peer that RSTs
// mid-frame or stalls silently. SocketFaultInjector manufactures exactly
// those at the fd boundary, seed-reproducibly: every connection gets a
// persona whose decision stream is a pure function of (seed, initiator,
// acceptor, session epoch) and the op sequence on that connection — so a
// failing run replays the same socket chaos per link regardless of how
// the kernel scheduled the node threads.
//
// Liveness: every fault class is bounded. At most `max_consecutive`
// injections fire back-to-back on one connection before a real syscall is
// forced through, and stalls expire after `stall_ms`, so injected chaos
// slows a link but can never wedge it — the supervisor's reconnect and
// session-resumption machinery must converge under any profile.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "net/leakage.hpp"

namespace veil::net {

struct SocketFaultProfile {
  double partial_write = 0.0;    // truncate a write to a random prefix
  double short_read = 0.0;       // truncate a read below what's available
  double eintr = 0.0;            // fail the op with EINTR, fd untouched
  double eagain = 0.0;           // fail the op with EAGAIN, fd untouched
  double connect_reset = 0.0;    // refuse a connect attempt (RST on SYN)
  double midstream_reset = 0.0;  // hard-close an established connection
  double torn_frame = 0.0;       // corrupt one byte of an outgoing frame
  double stall = 0.0;            // freeze the connection for stall_ms
  std::uint32_t stall_ms = 20;
  std::uint32_t max_consecutive = 8;

  bool enabled() const {
    return partial_write > 0 || short_read > 0 || eintr > 0 || eagain > 0 ||
           connect_reset > 0 || midstream_reset > 0 || torn_frame > 0 ||
           stall > 0;
  }

  /// The one-knob profile used by VEIL_TCP_FAULT_RATE and the chaos
  /// regression: `rate` drives the cheap faults directly and the
  /// expensive ones (resets, stalls, tears) at a fraction, so 0.2 means
  /// "20% of syscalls are damaged" without resets dominating wall time.
  static SocketFaultProfile uniform(double rate);
};

/// What the injector decided for one syscall.
enum class IoFault : std::uint8_t {
  None = 0,
  Eintr,    // caller retries immediately (next decision is forced real)
  Eagain,   // caller returns to the poll loop
  Reset,    // caller hard-closes the fd and reports connection loss
  Stall,    // caller freezes the connection for profile.stall_ms
};

class SocketFaultInjector {
 public:
  SocketFaultInjector(const SocketFaultProfile& profile, std::uint64_t seed,
                      const Principal& initiator, const Principal& acceptor,
                      std::uint64_t epoch);

  /// Decide whether this connect attempt is refused (RST on SYN).
  bool refuse_connect();

  /// Decide the fate of the next read()/write() on this connection.
  IoFault pre_read();
  IoFault pre_write();

  /// Clamp an I/O size for a short read / partial write. Returns a value
  /// in [1, n]; only called when the matching rate fired. A partial
  /// write of k < n bytes forces the caller to keep a cursor and
  /// continue — that continuation is the behavior under test.
  std::size_t clamp_read(std::size_t n);
  std::size_t clamp_write(std::size_t n);
  bool clamp_read_due();
  bool clamp_write_due();

  /// Decide whether the frame being appended to the outbound stream gets
  /// one byte torn; `len` in, returns the byte offset to flip, or
  /// SIZE_MAX for none.
  std::size_t tear_offset(std::size_t len);

  std::uint64_t injected() const { return injected_; }
  std::uint32_t stall_ms() const { return profile_.stall_ms; }

 private:
  IoFault pre_io();
  /// True when rate fired AND the liveness cap still allows an injection.
  bool fire(double rate);

  SocketFaultProfile profile_;
  common::Rng rng_;
  std::uint32_t consecutive_ = 0;
  std::uint64_t injected_ = 0;
};

}  // namespace veil::net
