// Synthetic enterprise workload generators.
//
// §3.4 closes with: "when designing a solution, custom scalability tests
// may need to be designed to fit the particular use case". This module
// is that tooling: deterministic, parameterized event streams for the
// two use-case families the paper's introduction motivates — bilateral
// financial trades (letters of credit, swaps) and multi-hop custody
// (supply chain). bench targets and examples consume these streams and
// replay them against any platform adapter.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"

namespace veil::workload {

/// A bilateral trade between two parties.
struct TradeEvent {
  std::string buyer;
  std::string seller;
  std::uint64_t amount = 0;
  common::Bytes details;   // contract terms blob
  bool confidential = false;  // must this trade be hidden from the rest?
};

struct TradeConfig {
  /// Fraction of trades whose terms are confidential.
  double confidential_fraction = 0.8;
  /// Size of the generated terms blob.
  std::size_t details_bytes = 256;
  std::uint64_t max_amount = 10'000'000;
  /// Zipf-ish skew: 0 = uniform pairs; higher values concentrate trading
  /// on the first parties (realistic hub-and-spoke markets).
  double hub_bias = 0.0;
};

class TradeWorkload {
 public:
  /// Requires >= 2 parties.
  TradeWorkload(std::vector<std::string> parties, TradeConfig config,
                std::uint64_t seed);

  TradeEvent next();

  /// Generate a batch.
  std::vector<TradeEvent> take(std::size_t n);

  const std::vector<std::string>& parties() const { return parties_; }

 private:
  std::size_t pick_party();

  std::vector<std::string> parties_;
  TradeConfig config_;
  common::Rng rng_;
};

/// One hop in an item's custody chain.
struct CustodyEvent {
  std::string item;
  std::string from;
  std::string to;
  std::uint32_t hop = 0;       // 0-based position in the item's chain
  bool final_hop = false;      // delivery to the last party
  common::Bytes inspection;    // hop-specific certificate blob
};

struct SupplyChainConfig {
  std::uint32_t hops_per_item = 4;  // producer -> ... -> retailer
  std::size_t inspection_bytes = 64;
};

class SupplyChainWorkload {
 public:
  /// `chain` is the ordered list of custodians (>= 2).
  SupplyChainWorkload(std::vector<std::string> chain,
                      SupplyChainConfig config, std::uint64_t seed);

  /// The next event; items progress hop by hop, new items start as
  /// previous ones are delivered.
  CustodyEvent next();

  std::vector<CustodyEvent> take(std::size_t n);

 private:
  std::vector<std::string> chain_;
  SupplyChainConfig config_;
  common::Rng rng_;
  std::uint64_t item_counter_ = 0;
  std::uint32_t current_hop_ = 0;
};

}  // namespace veil::workload
