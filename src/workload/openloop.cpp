#include "workload/openloop.hpp"

#include <algorithm>
#include <cmath>

namespace veil::workload {

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  cdf_.reserve(n);
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_.push_back(total);
  }
  for (double& c : cdf_) c /= total;
}

std::size_t ZipfSampler::sample(common::Rng& rng) const {
  const double u = rng.next_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<std::size_t>(it - cdf_.begin());
}

OpenLoopGenerator::OpenLoopGenerator(OpenLoopConfig config, std::uint64_t seed)
    : config_(config), rng_(seed) {}

std::vector<Arrival> OpenLoopGenerator::generate() {
  const ZipfSampler zipf(std::max<std::size_t>(config_.parties, 1),
                         config_.zipf_s);
  std::vector<Arrival> schedule;
  schedule.reserve(config_.arrivals);
  common::SimTime t = config_.start_us;
  for (std::uint64_t i = 0; i < config_.arrivals; ++i) {
    // Poisson process: exponential inter-arrival gaps, -ln(1-U)/rate.
    const double u = rng_.next_double();
    const double gap_s = -std::log1p(-u) / config_.offered_per_s;
    t += static_cast<common::SimTime>(gap_s * 1e6);
    Arrival a;
    a.at = t;
    a.party = zipf.sample(rng_);
    a.seq = i;
    a.deadline_us = config_.ttl_us != 0 ? t + config_.ttl_us : 0;
    // Cross-shard mix draws are gated so a cross_fraction of 0 consumes
    // no extra randomness: pre-existing schedules stay bit-identical.
    if (config_.cross_fraction > 0.0) {
      a.cross = rng_.next_double() < config_.cross_fraction;
      if (a.cross) {
        a.party_b = zipf.sample(rng_);
        if (a.party_b == a.party) {
          a.party_b = (a.party + 1) % zipf.size();
        }
      }
    }
    schedule.push_back(a);
  }
  return schedule;
}

common::SimTime LatencyRecorder::percentile(double p) const {
  if (samples_.empty()) return 0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  // Nearest-rank definition; p = 100 is the max.
  const double rank = p / 100.0 * static_cast<double>(samples_.size());
  std::size_t idx = rank <= 1.0 ? 0 : static_cast<std::size_t>(
                                          std::ceil(rank)) - 1;
  idx = std::min(idx, samples_.size() - 1);
  return samples_[idx];
}

double LatencyRecorder::mean() const {
  if (samples_.empty()) return 0.0;
  double total = 0.0;
  for (const common::SimTime s : samples_) total += static_cast<double>(s);
  return total / static_cast<double>(samples_.size());
}

}  // namespace veil::workload
