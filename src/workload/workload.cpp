#include "workload/workload.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace veil::workload {

TradeWorkload::TradeWorkload(std::vector<std::string> parties,
                             TradeConfig config, std::uint64_t seed)
    : parties_(std::move(parties)), config_(config), rng_(seed) {
  if (parties_.size() < 2) {
    throw common::Error("TradeWorkload: needs at least 2 parties");
  }
}

std::size_t TradeWorkload::pick_party() {
  if (config_.hub_bias <= 0.0) return rng_.next_below(parties_.size());
  // Repeated-minimum sampling: taking the min of k uniform draws skews
  // selection toward low indices; k grows with the bias.
  const int draws = 1 + static_cast<int>(config_.hub_bias);
  std::size_t best = rng_.next_below(parties_.size());
  for (int i = 1; i < draws; ++i) {
    best = std::min(best, rng_.next_below(parties_.size()));
  }
  return best;
}

TradeEvent TradeWorkload::next() {
  TradeEvent event;
  const std::size_t buyer = pick_party();
  std::size_t seller = pick_party();
  while (seller == buyer) seller = rng_.next_below(parties_.size());
  event.buyer = parties_[buyer];
  event.seller = parties_[seller];
  event.amount = 1 + rng_.next_below(config_.max_amount);
  event.details = rng_.next_bytes(config_.details_bytes);
  event.confidential = rng_.next_double() < config_.confidential_fraction;
  return event;
}

std::vector<TradeEvent> TradeWorkload::take(std::size_t n) {
  std::vector<TradeEvent> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(next());
  return out;
}

SupplyChainWorkload::SupplyChainWorkload(std::vector<std::string> chain,
                                         SupplyChainConfig config,
                                         std::uint64_t seed)
    : chain_(std::move(chain)), config_(config), rng_(seed) {
  if (chain_.size() < 2) {
    throw common::Error("SupplyChainWorkload: needs at least 2 custodians");
  }
  config_.hops_per_item = std::min<std::uint32_t>(
      config_.hops_per_item, static_cast<std::uint32_t>(chain_.size() - 1));
  if (config_.hops_per_item == 0) config_.hops_per_item = 1;
}

CustodyEvent SupplyChainWorkload::next() {
  CustodyEvent event;
  event.item = "item-" + std::to_string(item_counter_);
  event.hop = current_hop_;
  event.from = chain_[current_hop_];
  event.to = chain_[current_hop_ + 1];
  event.inspection = rng_.next_bytes(config_.inspection_bytes);
  event.final_hop = (current_hop_ + 1 == config_.hops_per_item);

  if (event.final_hop) {
    ++item_counter_;
    current_hop_ = 0;
  } else {
    ++current_hop_;
  }
  return event;
}

std::vector<CustodyEvent> SupplyChainWorkload::take(std::size_t n) {
  std::vector<CustodyEvent> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(next());
  return out;
}

}  // namespace veil::workload
