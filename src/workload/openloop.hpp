// Open-loop load generation (the overload tier's driver).
//
// The existing workload generators are closed-loop: the driver submits a
// batch, waits for it to complete, then submits the next, so the offered
// rate silently tracks the completion rate and saturation is invisible.
// An open-loop driver decouples the two — arrivals follow a Poisson
// process at a *configured* offered rate regardless of how fast the
// system drains them, which is the only honest way to measure behavior
// past saturation (the scalability methodology §3.4 defers to custom
// tests). Party popularity follows a Zipf distribution: enterprise
// traffic concentrates on a few hub parties, and a uniform draw would
// understate per-party queue contention.
//
// Everything is deterministic from the seed: the arrival schedule, the
// party choices, and the per-arrival deadlines are all pre-generated, so
// overload transcripts replay bit-identically.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/rng.hpp"

namespace veil::workload {

/// Zipf(s) sampler over ranks 0..n-1 via inverse-CDF lookup on a
/// precomputed table: P(rank k) proportional to 1/(k+1)^s. s = 0 is
/// uniform; s = 1 is the classic popularity skew.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s);

  std::size_t sample(common::Rng& rng) const;

  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // cumulative, normalized to 1.0
};

struct OpenLoopConfig {
  /// Offered load: mean arrivals per simulated second (Poisson).
  double offered_per_s = 1'000.0;
  /// Total arrivals to schedule.
  std::size_t arrivals = 1'000;
  /// Number of parties to spread arrivals over.
  std::size_t parties = 2;
  /// Zipf exponent for party popularity (0 = uniform).
  double zipf_s = 1.0;
  /// Per-arrival TTL: deadline = arrival time + ttl_us (0 = no deadline).
  common::SimTime ttl_us = 0;
  /// Schedule origin (first inter-arrival gap is added to this).
  common::SimTime start_us = 0;
  /// Fraction of arrivals (0..1) that touch a second party's state and
  /// therefore may span shards (the cross-shard 2PC mix for bench_scale).
  /// At 0 the generator draws nothing extra, so existing single-shard
  /// schedules replay bit-identically.
  double cross_fraction = 0.0;
};

/// One scheduled submission.
struct Arrival {
  common::SimTime at = 0;          // absolute arrival time
  std::size_t party = 0;           // Zipf-ranked party index
  std::uint64_t seq = 0;           // 0-based arrival number
  common::SimTime deadline_us = 0; // at + ttl (0 = none)
  bool cross = false;              // touches party_b too (cross-shard mix)
  std::size_t party_b = 0;         // counterparty when cross
};

/// Pre-generates the full deterministic arrival schedule.
class OpenLoopGenerator {
 public:
  OpenLoopGenerator(OpenLoopConfig config, std::uint64_t seed);

  std::vector<Arrival> generate();

  const OpenLoopConfig& config() const { return config_; }

 private:
  OpenLoopConfig config_;
  common::Rng rng_;
};

/// Streaming latency recorder with exact percentiles (sorts on demand).
/// Records sim-time latencies of *admitted* work; shed work never enters,
/// which is the point — the overload tier bounds the latency of what it
/// accepts, not of what it refuses.
class LatencyRecorder {
 public:
  void record(common::SimTime latency_us) {
    samples_.push_back(latency_us);
    sorted_ = false;
  }

  std::size_t count() const { return samples_.size(); }
  /// Percentile in [0,100]; 0 with no samples.
  common::SimTime percentile(double p) const;
  common::SimTime p50() const { return percentile(50.0); }
  common::SimTime p95() const { return percentile(95.0); }
  common::SimTime p99() const { return percentile(99.0); }
  common::SimTime max() const { return percentile(100.0); }
  double mean() const;

 private:
  mutable std::vector<common::SimTime> samples_;
  mutable bool sorted_ = false;
};

}  // namespace veil::workload
