// The design guide's decision procedures (Section 3, Figure 1).
//
// Each procedure maps a requirement struct to recommended mechanisms and
// records the decision path taken — the executable form of Figure 1's
// flowchart and the prose rules of §3.1 and §3.3. bench_figure1 sweeps
// the whole requirement space and prints every path.
#pragma once

#include <vector>

#include "core/mechanisms.hpp"
#include "core/requirements.hpp"

namespace veil::core {

struct Recommendation {
  std::vector<Mechanism> mechanisms;
  /// One line per decision fork taken, in order — the Figure 1 path.
  std::vector<std::string> rationale;
  /// Warnings the guide attaches (maturity, residual leaks, trade-offs).
  std::vector<std::string> caveats;

  bool recommends(Mechanism m) const;
};

class DecisionEngine {
 public:
  /// Figure 1: data-confidentiality requirements -> mechanisms.
  static Recommendation for_data(const DataRequirements& req);

  /// §3.1: privacy-of-interaction requirements -> mechanisms.
  static Recommendation for_parties(const PartyRequirements& req);

  /// §3.3: business-logic requirements -> mechanisms.
  static Recommendation for_logic(const LogicRequirements& req);

  /// Full profile: union of the three, deduplicated.
  static Recommendation for_profile(const RequirementProfile& profile);
};

}  // namespace veil::core
