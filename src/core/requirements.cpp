#include "core/requirements.hpp"

#include <sstream>

namespace veil::core {

namespace {
void flag(std::ostringstream& os, const char* name, bool value) {
  os << name << "=" << (value ? "yes" : "no") << " ";
}
}  // namespace

std::string DataRequirements::describe() const {
  std::ostringstream os;
  flag(os, "deletion", deletion_required);
  flag(os, "share-encrypted", encrypted_sharing_allowed);
  flag(os, "onchain-record", onchain_record_desired);
  flag(os, "hide-within-tx", hide_within_transaction);
  flag(os, "uninvolved-validation", uninvolved_validation);
  flag(os, "private-inputs", private_inputs);
  flag(os, "shared-function", shared_function_on_private);
  flag(os, "untrusted-admin", untrusted_node_admin);
  return os.str();
}

std::string PartyRequirements::describe() const {
  std::ostringstream os;
  flag(os, "hide-group", hide_group_from_network);
  flag(os, "hide-subgroup", hide_subgroup_on_ledger);
  flag(os, "private-individual", fully_private_individual);
  return os.str();
}

std::string LogicRequirements::describe() const {
  std::ostringstream os;
  flag(os, "private-logic", keep_logic_private);
  flag(os, "builtin-versioning", need_builtin_versioning);
  flag(os, "hide-from-admin", hide_from_node_admin);
  flag(os, "language-freedom", language_freedom);
  return os.str();
}

RequirementProfile letter_of_credit_profile() {
  RequirementProfile profile;
  profile.use_case = "letter-of-credit";

  profile.data.deletion_required = true;  // PII under GDPR
  profile.data.encrypted_sharing_allowed = true;
  profile.data.onchain_record_desired = true;
  profile.data.hide_within_transaction = false;
  profile.data.uninvolved_validation = false;  // validators are the parties
  profile.data.private_inputs = false;
  profile.data.shared_function_on_private = false;
  // A trusted third party may run the orderer — with data encrypted.
  profile.data.untrusted_node_admin = true;

  profile.parties.hide_group_from_network = true;  // buyer-seller secrecy
  profile.parties.hide_subgroup_on_ledger = false;
  profile.parties.fully_private_individual = false;

  // "logic contained in a letter of credit is highly standardized and
  // non-confidential"
  profile.logic.keep_logic_private = false;
  profile.logic.need_builtin_versioning = true;
  profile.logic.hide_from_node_admin = false;
  profile.logic.language_freedom = false;

  return profile;
}

}  // namespace veil::core
