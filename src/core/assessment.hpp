// Platform assessment: given a use case's recommended mechanisms and the
// capability matrix, score each platform and report gaps (Section 3's
// "guide for assessing DLT platforms", applied in Section 4).
#pragma once

#include <string>
#include <vector>

#include "core/capability.hpp"
#include "core/decision.hpp"

namespace veil::core {

struct PlatformAssessment {
  Platform platform;
  int native = 0;       // required mechanisms supported natively
  int extendable = 0;   // supportable with custom work
  int blocked = 0;      // would require substantial rewriting
  double score = 0.0;   // native=1.0, extendable=0.5, blocked=0
  std::vector<std::string> gaps;  // human-readable blocked/extendable notes
};

/// Assess all three platforms against a recommendation; result is sorted
/// best-first (score desc, then native count desc, then enum order).
std::vector<PlatformAssessment> assess(const Recommendation& recommendation,
                                       const CapabilityMatrix& matrix);

/// Render an assessment table.
std::string render(const std::vector<PlatformAssessment>& assessments);

}  // namespace veil::core
