// Platform × mechanism capability matrix (Table 1).
//
// Legend from the paper: '+' native support, '*' not native but can be
// implemented, '—' requires substantial rewriting of the code base,
// 'N/A' not applicable.
//
// paper_table1() is the golden matrix transcribed from the paper;
// bench_table1 regenerates it and the demonstration harness
// (demonstration.hpp) exercises every '+' cell on the simulated
// platforms so the matrix is demonstrated, not just asserted.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/mechanisms.hpp"

namespace veil::core {

enum class Platform { Fabric, Corda, Quorum };

enum class Support {
  Native,         // +
  Extendable,     // *
  HardRewrite,    // —
  NotApplicable,  // N/A
};

std::string to_string(Platform p);
/// The paper's cell symbol: "+", "*", "—", "N/A".
std::string symbol(Support s);

/// The fifteen published rows of Table 1, in order: (category label,
/// mechanism). "Separation of ledgers" appears under both Parties and
/// Transactions, exactly as in the paper.
const std::vector<std::pair<std::string, Mechanism>>& table1_rows();

class CapabilityMatrix {
 public:
  /// Table 1 exactly as published.
  static const CapabilityMatrix& paper_table1();

  Support at(Platform platform, Mechanism mechanism) const;
  void set(Platform platform, Mechanism mechanism, Support support);

  /// Render in the paper's row order, one line per mechanism.
  std::string render() const;

  bool operator==(const CapabilityMatrix&) const = default;

 private:
  std::map<std::pair<Platform, Mechanism>, Support> cells_;
};

}  // namespace veil::core
