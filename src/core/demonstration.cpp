#include "core/demonstration.hpp"

#include "contracts/offchain_engine.hpp"
#include "crypto/aes.hpp"
#include "crypto/paillier.hpp"
#include "crypto/zkp.hpp"
#include "mpc/protocol.hpp"
#include "offchain/store.hpp"
#include "platforms/corda/corda.hpp"
#include "platforms/fabric/fabric.hpp"
#include "platforms/quorum/quorum.hpp"
#include "pki/onetime.hpp"

namespace veil::core {

namespace {

using common::Bytes;
using common::Rng;

std::shared_ptr<contracts::FunctionContract> kv_contract(
    const std::string& name) {
  // Stores its argument bytes under a key derived from the action string
  // ("put:<key>") — enough surface for every demonstration.
  return std::make_shared<contracts::FunctionContract>(
      name, 1,
      [](contracts::ContractContext& ctx,
         const std::string& action) -> contracts::InvokeStatus {
        if (action.rfind("put:", 0) == 0) {
          ctx.put(action.substr(4),
                  Bytes(ctx.args().begin(), ctx.args().end()));
          return contracts::InvokeStatus::Ok;
        }
        return contracts::InvokeStatus::UnknownAction;
      });
}

struct FabricFixture {
  net::SimNetwork net;
  Rng rng;
  fabric::FabricNetwork platform;

  explicit FabricFixture(std::uint64_t seed,
                         fabric::FabricConfig config = {})
      : net(Rng(seed)), rng(seed ^ 0x9e3779b9),
        platform(net, crypto::Group::test_group(), rng, config) {
    for (const char* org : {"OrgA", "OrgB", "OrgC"}) platform.add_org(org);
  }
};

DemoResult demo_separation(Platform platform, std::uint64_t seed) {
  switch (platform) {
    case Platform::Fabric: {
      FabricFixture fx(seed);
      fx.platform.create_channel("trade", {"OrgA", "OrgB"});
      fx.platform.install_chaincode("trade", "OrgA", kv_contract("cc"),
                                    contracts::EndorsementPolicy::require(
                                        "OrgA"));
      const auto receipt = fx.platform.submit(
          "trade", "OrgA", "cc", "put:deal", common::to_bytes("secret-deal"));
      const bool committed = receipt.committed;
      const bool outsider_blind =
          !fx.platform.auditor().saw("peer.OrgC", "tx/") &&
          !fx.platform.is_channel_member("trade", "OrgC");
      return {committed && outsider_blind,
              "channel ledger invisible to non-members"};
    }
    case Platform::Corda: {
      net::SimNetwork net{Rng(seed)};
      Rng rng(seed + 1);
      corda::CordaNetwork cn(net, crypto::Group::test_group(), rng);
      cn.add_party("Alice");
      cn.add_party("Bob");
      cn.add_party("Carol");
      cn.add_notary("Notary", /*validating=*/false);
      const auto result = cn.issue("Alice", "Cash",
                                   common::to_bytes("100 GBP -> Bob"),
                                   {"Alice", "Bob"}, "Notary");
      const bool carol_blind = !cn.auditor().saw("Carol", "tx/");
      return {result.success && carol_blind,
              "peer-to-peer transactions reach participants only"};
    }
    case Platform::Quorum: {
      net::SimNetwork net{Rng(seed)};
      Rng rng(seed + 2);
      quorum::QuorumNetwork qn(net, crypto::Group::test_group(), rng, 1);
      qn.add_node("NodeA");
      qn.add_node("NodeB");
      qn.add_node("NodeC");
      const auto result = qn.submit_private(
          "NodeA", {"NodeB"},
          {ledger::KvWrite{"deal", common::to_bytes("secret"), false}});
      const std::string label = "tx/" + result.tx_id + "/data";
      const bool c_blind = !qn.auditor().saw("NodeC", label);
      const bool b_sees = qn.auditor().saw("NodeB", label);
      return {result.accepted && c_blind && b_sees,
              "private state separated from public ledger (participants "
              "still visible on chain)"};
    }
  }
  return {};
}

DemoResult demo_onetime_keys(Platform platform, std::uint64_t seed) {
  if (platform == Platform::Fabric) {
    return {false, "requires substantial rewriting (MSP identities are "
                   "long-lived certificates)"};
  }
  if (platform == Platform::Corda) {
    net::SimNetwork net{Rng(seed)};
    Rng rng(seed + 1);
    corda::CordaNetwork cn(net, crypto::Group::test_group(), rng);
    cn.add_party("Alice");
    cn.add_party("Bob");
    cn.add_party("Carol");
    cn.add_notary("Notary", false);
    const auto issued = cn.issue("Alice", "Cash", common::to_bytes("100"),
                                 {"Alice"}, "Notary");
    if (!issued.success) return {false, "issue failed"};
    const auto states = cn.vault("Alice");
    const auto result = cn.transact(
        "Alice", {states.front().ref},
        {corda::OutputSpec{"Cash", common::to_bytes("100"), {"Bob"}}},
        "Notary", /*confidential=*/true);
    if (!result.success) return {false, result.reason};
    const auto bob_states = cn.vault("Bob");
    const bool pseudonymous =
        !bob_states.empty() &&
        bob_states.front().participants.front().starts_with("ot:");
    // The counterparty holds the linkage; an uninvolved party does not.
    const std::string fp =
        bob_states.front().participants.front().substr(3);
    const bool counterparty_resolves =
        cn.resolve_confidential("Bob", fp).has_value();
    const bool outsider_cannot =
        !cn.resolve_confidential("Carol", fp).has_value();
    return {pseudonymous && counterparty_resolves && outsider_cannot,
            "output holders identified by one-time keys; linkage "
            "certificate shared with counterparties only"};
  }
  // Quorum: '*' — implementable with the generic key chain.
  const crypto::Group& group = crypto::Group::test_group();
  Rng rng(seed);
  pki::OneTimeKeyChain chain(group, rng.next_bytes(32));
  const crypto::KeyPair k0 = chain.derive(0);
  const crypto::KeyPair k1 = chain.derive(1);
  const auto sig = k0.sign(common::to_bytes("private quorum tx"));
  const bool verifies =
      crypto::verify(group, k0.public_key(), common::to_bytes("private quorum tx"), sig);
  return {verifies && !(k0.public_key() == k1.public_key()),
          "derivable with a client-side key chain; no protocol change"};
}

DemoResult demo_zkp_identity(Platform platform, std::uint64_t seed) {
  if (platform != Platform::Fabric) {
    return {false,
            "requires substantial rewriting (identity model is baked into "
            "the protocol)"};
  }
  FabricFixture fx(seed);
  fx.platform.create_channel("trade", {"OrgA", "OrgB"});
  fx.platform.install_chaincode(
      "trade", "OrgB", kv_contract("cc"),
      contracts::EndorsementPolicy::require("OrgB"));
  const auto credential =
      fx.platform.issue_idemix_credential("OrgA", "role=trader");
  if (!credential) return {false, "credential issuance failed"};
  const auto receipt =
      fx.platform.submit("trade", "OrgA", "cc", "put:k",
                         common::to_bytes("v"), {}, &*credential);
  if (!receipt.committed) return {false, receipt.reason};
  // The committed transaction names a pseudonym, never OrgA.
  const auto block =
      fx.platform.chain("trade", "OrgB").find_transaction_block(receipt.tx_id);
  bool pseudonymous = false;
  if (block) {
    for (const auto& tx : block->transactions) {
      if (tx.id() != receipt.tx_id) continue;
      pseudonymous = tx.parties_pseudonymous;
      for (const std::string& p : tx.participants) {
        if (p.find("OrgA") != std::string::npos) pseudonymous = false;
      }
    }
  }
  return {pseudonymous,
          "Idemix-style credential: CA-anchored verification, client "
          "identity never on the transaction"};
}

DemoResult demo_offchain_data(Platform platform, std::uint64_t seed) {
  if (platform == Platform::Quorum) {
    return {false,
            "requires substantial rewriting (no native peer-side private "
            "store keyed from transactions)"};
  }
  if (platform == Platform::Fabric) {
    FabricFixture fx(seed);
    fx.platform.create_channel("trade", {"OrgA", "OrgB", "OrgC"});
    fx.platform.install_chaincode(
        "trade", "OrgA", kv_contract("cc"),
        contracts::EndorsementPolicy::require("OrgA"));
    fx.platform.define_collection("trade",
                                  {"ab-only", {"OrgA", "OrgB"}, 0});
    const auto receipt = fx.platform.submit(
        "trade", "OrgA", "cc", "put:ref", common::to_bytes("x"),
        fabric::PrivatePayload{"ab-only", "pii", common::to_bytes("ssn=123")});
    const bool member_reads =
        fx.platform.read_private("trade", "ab-only", "pii", "OrgB").has_value();
    const bool nonmember_blind =
        !fx.platform.read_private("trade", "ab-only", "pii", "OrgC")
             .has_value();
    return {receipt.committed && member_reads && nonmember_blind,
            "private data collection: hash on channel, data only at "
            "member peers"};
  }
  // Corda: '*' — off-chain store + hash reference inside a state.
  net::SimNetwork net{Rng(seed)};
  offchain::OffChainStore store("NodeAdmin", offchain::Hosting::PeerLocal,
                                net.auditor());
  const Bytes pii = common::to_bytes("passport=X123");
  const crypto::Digest digest = store.put("kyc", pii);
  const ledger::HashRef ref{"kyc", digest};
  const bool verifies = store.verify(ref);
  store.purge(digest);
  const bool deleted = !store.get(digest).has_value() && store.purged(digest);
  return {verifies && deleted,
          "implementable: state carries a hash; data deletable off-chain"};
}

DemoResult demo_symmetric(Platform platform, std::uint64_t seed) {
  // Native on all three platforms: application-level AES with PKI-shared
  // keys. Demonstrated end-to-end on Fabric (ciphertext on the ledger),
  // generically for the others.
  Rng rng(seed);
  const Bytes key = rng.next_bytes(32);
  const Bytes secret = common::to_bytes("price=1,000,000");
  const Bytes sealed = crypto::seal(key, secret, rng.next_bytes(16));

  if (platform == Platform::Fabric) {
    FabricFixture fx(seed, {});
    fx.platform.create_channel("trade", {"OrgA", "OrgB"});
    fx.platform.install_chaincode(
        "trade", "OrgA", kv_contract("cc"),
        contracts::EndorsementPolicy::require("OrgA"));
    const auto receipt =
        fx.platform.submit("trade", "OrgA", "cc", "put:deal", sealed);
    if (!receipt.committed) return {false, receipt.reason};
    const auto stored = fx.platform.state("trade", "OrgB").get("deal");
    if (!stored) return {false, "value missing"};
    const Bytes wrong_key = rng.next_bytes(32);
    const bool wrong_fails = !crypto::open(wrong_key, stored->value).has_value();
    const auto opened = crypto::open(key, stored->value);
    const bool right_opens = opened && *opened == secret;
    return {wrong_fails && right_opens,
            "AES-CTR+HMAC sealed payload committed; only key holders "
            "recover plaintext"};
  }
  const auto opened = crypto::open(key, sealed);
  return {opened && *opened == secret,
          "application-level AES with PKI-distributed keys"};
}

DemoResult demo_tearoffs(Platform platform, std::uint64_t seed) {
  if (platform == Platform::Quorum) {
    return {false,
            "requires substantial rewriting (transactions are not Merkle-"
            "structured for component hiding)"};
  }
  if (platform == Platform::Corda) {
    net::SimNetwork net{Rng(seed)};
    Rng rng(seed + 1);
    corda::CordaNetwork cn(net, crypto::Group::test_group(), rng);
    cn.add_party("Alice");
    cn.add_party("Bob");
    cn.add_notary("Notary", false);
    cn.add_oracle("FxOracle", {{"USD/EUR", "0.93"}});
    const auto issued = cn.issue("Alice", "FxSwap", common::to_bytes("swap"),
                                 {"Alice", "Bob"}, "Notary");
    if (!issued.success) return {false, issued.reason};
    const auto states = cn.vault("Alice");
    const auto result = cn.transact(
        "Alice", {states.front().ref},
        {corda::OutputSpec{"FxSwap", common::to_bytes("settled@0.93"),
                           {"Alice", "Bob"}}},
        "Notary", false,
        corda::OracleRequest{"FxOracle", "USD/EUR", "0.93"});
    if (!result.success) return {false, result.reason};
    const std::string data_label = "tx/" + result.tx_id + "/data";
    const bool oracle_blind = !cn.auditor().saw("FxOracle", data_label);
    const bool oracle_saw_fact =
        cn.auditor().saw("FxOracle", "tx/" + result.tx_id + "/fact");
    return {oracle_blind && oracle_saw_fact,
            "oracle signed the Merkle root seeing only its fact component"};
  }
  // Fabric: '*' — the primitive composes with chaincode payloads.
  Rng rng(seed);
  std::vector<Bytes> leaves = {common::to_bytes("public-part"),
                               common::to_bytes("secret-part")};
  std::vector<Bytes> salts = {rng.next_bytes(16), rng.next_bytes(16)};
  const crypto::MerkleTree tree = crypto::MerkleTree::build(leaves, salts);
  const crypto::TearOff torn = crypto::TearOff::create(leaves, salts, {0});
  return {torn.verify_against(tree.root()) && !torn.leaf(1).has_value(),
          "implementable at the application layer over tx payloads"};
}

DemoResult demo_zkp(std::uint64_t seed) {
  // '*' on all platforms: prove "balance - amount >= 0" without revealing
  // the balance.
  const crypto::Group& group = crypto::Group::test_group();
  Rng rng(seed);
  const crypto::Pedersen pedersen(group);
  const crypto::BigInt balance(950), amount(400);
  auto [commitment, opening] = pedersen.commit(balance - amount, rng);
  const auto proof =
      crypto::prove_range(group, commitment, opening, 16,
                          common::to_bytes("loc-funding-check"), rng);
  const bool accepted =
      crypto::verify_range(group, commitment, proof, 16,
                           common::to_bytes("loc-funding-check"));
  return {accepted,
          "sigma-protocol range proof gives boolean affirmation of "
          "sufficient funds; scenario-specific per the paper"};
}

DemoResult demo_mpc(std::uint64_t seed) {
  net::SimNetwork net{Rng(seed)};
  Rng rng(seed + 1);
  const crypto::Shamir field(crypto::BigInt::from_decimal("2305843009213693951"));
  const std::map<std::string, bool> votes = {
      {"BankA", true}, {"BankB", false}, {"BankC", true}};
  const auto tally = mpc::secret_ballot(field, net, votes, rng);
  const bool inputs_private =
      !net.auditor().saw("BankA", "mpc/input/BankB") &&
      !net.auditor().saw("BankB", "mpc/input/BankC");
  return {tally.yes == 2 && tally.no == 1 && inputs_private,
          "Shamir-share secret ballot: correct tally, inputs never leave "
          "their owners"};
}

DemoResult demo_homomorphic(std::uint64_t seed) {
  Rng rng(seed);
  const auto keys = crypto::PaillierKeyPair::generate(rng, 128);
  const auto a = crypto::paillier_encrypt(keys.public_key(), 1200, rng);
  const auto b = crypto::paillier_encrypt(keys.public_key(), 345, rng);
  const auto sum = crypto::paillier_add(keys.public_key(), a, b);
  const bool ok = keys.decrypt(sum) == crypto::BigInt(1545);
  return {ok,
          "additive homomorphism works, but only limited operations — "
          "proof-of-concept maturity per §2.2"};
}

DemoResult demo_install_involved(Platform platform, std::uint64_t seed) {
  switch (platform) {
    case Platform::Fabric: {
      FabricFixture fx(seed);
      fx.platform.create_channel("trade", {"OrgA", "OrgB", "OrgC"});
      fx.platform.install_chaincode(
          "trade", "OrgA", kv_contract("secret-logic"),
          contracts::EndorsementPolicy::require("OrgA"));
      const auto receipt = fx.platform.submit("trade", "OrgA", "secret-logic",
                                              "put:k", common::to_bytes("v"));
      const bool c_blind =
          !fx.platform.auditor().saw("peer.OrgC", "contract/secret-logic/code");
      return {receipt.committed && c_blind,
              "chaincode visible only on peers where installed"};
    }
    case Platform::Corda:
      return {true,
              "N/A — contract identity travels with states; business logic "
              "executes off-platform (see off-chain execution engine)"};
    case Platform::Quorum: {
      net::SimNetwork net{Rng(seed)};
      Rng rng(seed + 2);
      quorum::QuorumNetwork qn(net, crypto::Group::test_group(), rng, 1);
      qn.add_node("NodeA");
      qn.add_node("NodeB");
      qn.add_node("NodeC");
      // A private contract: its state updates are disseminated only to
      // the involved nodes.
      const auto result = qn.submit_private(
          "NodeA", {"NodeB"},
          {ledger::KvWrite{"contract/counter", common::to_bytes("1"), false}});
      const bool c_blind =
          !qn.private_state("NodeC").get("contract/counter").has_value();
      const bool b_sees =
          qn.private_state("NodeB").get("contract/counter").has_value();
      return {result.accepted && c_blind && b_sees,
              "private contracts live in the private state of involved "
              "nodes only"};
    }
  }
  return {};
}

DemoResult demo_offchain_engine(Platform platform, std::uint64_t seed) {
  if (platform == Platform::Quorum) {
    return {false,
            "requires substantial rewriting (EVM execution is the "
            "validation path)"};
  }
  // Corda native (flows run off-platform); Fabric '*'.
  net::SimNetwork net{Rng(seed)};
  contracts::OffChainEngine engine_a("OrgA", net.auditor());
  contracts::OffChainEngine engine_b("OrgB", net.auditor());
  engine_a.load(kv_contract("pricing-model"));
  engine_b.load(kv_contract("pricing-model"));
  ledger::WorldState state;
  const auto result = engine_a.execute("pricing-model", "put:quote",
                                       common::to_bytes("42"), state, "ch");
  const bool executed =
      result && result->status == contracts::InvokeStatus::Ok;
  const bool ledger_sees_stub = executed && result->tx.contract == "rw-stub";
  const bool third_party_blind =
      !net.auditor().saw("OrgC", "contract/pricing-model/code");
  const bool consistent = contracts::OffChainEngine::versions_consistent(
      {&engine_a, &engine_b}, "pricing-model");
  return {executed && ledger_sees_stub && third_party_blind && consistent,
          platform == Platform::Corda
              ? "flow logic runs off-platform natively; ledger verifies "
                "signatures only"
              : "implementable: ledger stores read/write stubs; version "
                "control moves off-DLT"};
}

DemoResult demo_tee_logic(Platform platform) {
  (void)platform;
  return {false,
          "requires substantial rewriting on all three platforms; the "
          "standalone mechanism is demonstrated by veil::tee (enclave "
          "measurement, attestation, host-blind execution)"};
}

DemoResult demo_private_sequencer(Platform platform, std::uint64_t seed) {
  switch (platform) {
    case Platform::Fabric: {
      fabric::FabricConfig config;
      config.orderer_deployment = ledger::OrdererDeployment::Private;
      FabricFixture fx(seed, config);
      fx.platform.create_channel("trade", {"OrgA", "OrgB"});
      fx.platform.install_chaincode(
          "trade", "OrgA", kv_contract("cc"),
          contracts::EndorsementPolicy::require("OrgA"));
      const auto receipt =
          fx.platform.submit("trade", "OrgA", "cc", "put:k",
                             common::to_bytes("v"));
      const bool member_operates =
          fx.platform.orderer_operator("trade") == "OrgA";
      const bool third_party_blind =
          !fx.platform.auditor().saw("orderer-org", "tx/");
      return {receipt.committed && member_operates && third_party_blind,
              "channel members run their own ordering service; no third "
              "party sees transactions"};
    }
    case Platform::Corda: {
      net::SimNetwork net{Rng(seed)};
      Rng rng(seed + 1);
      corda::CordaNetwork cn(net, crypto::Group::test_group(), rng);
      cn.add_party("Alice");
      cn.add_party("Bob");
      cn.add_notary("ConsortiumNotary", /*validating=*/false);
      const auto result = cn.issue("Alice", "Cash", common::to_bytes("1"),
                                   {"Alice", "Bob"}, "ConsortiumNotary");
      const bool notary_blind = !cn.auditor().saw(
          "ConsortiumNotary", "tx/" + result.tx_id + "/data");
      return {result.success && notary_blind,
              "parties choose/run the notary; non-validating notary sees "
              "no transaction data"};
    }
    case Platform::Quorum:
      return {true,
              "consensus is run by the member nodes themselves; no "
              "external sequencer exists"};
  }
  return {};
}

}  // namespace

DemoResult demonstrate(Platform platform, Mechanism mechanism,
                       std::uint64_t seed) {
  switch (mechanism) {
    case Mechanism::SeparationOfLedgers:
      return demo_separation(platform, seed);
    case Mechanism::OneTimePublicKeys:
      return demo_onetime_keys(platform, seed);
    case Mechanism::ZkpIdentity:
      return demo_zkp_identity(platform, seed);
    case Mechanism::OffChainData:
      return demo_offchain_data(platform, seed);
    case Mechanism::SymmetricEncryption:
      return demo_symmetric(platform, seed);
    case Mechanism::MerkleTearOffs:
      return demo_tearoffs(platform, seed);
    case Mechanism::ZkProofs:
      return demo_zkp(seed);
    case Mechanism::MultipartyComputation:
      return demo_mpc(seed);
    case Mechanism::HomomorphicEncryption:
      return demo_homomorphic(seed);
    case Mechanism::TrustedExecution:
      return {false,
              "no platform integrates TEE validation natively; standalone "
              "mechanism lives in veil::tee"};
    case Mechanism::InstallOnInvolvedNodes:
      return demo_install_involved(platform, seed);
    case Mechanism::OffChainExecutionEngine:
      return demo_offchain_engine(platform, seed);
    case Mechanism::TeeForLogic:
      return demo_tee_logic(platform);
    case Mechanism::PrivateSequencer:
      return demo_private_sequencer(platform, seed);
    case Mechanism::OpenSource:
      return {true, "all three platforms are open source"};
  }
  return {};
}

}  // namespace veil::core
