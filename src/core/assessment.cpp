#include "core/assessment.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace veil::core {

std::vector<PlatformAssessment> assess(const Recommendation& recommendation,
                                       const CapabilityMatrix& matrix) {
  std::vector<PlatformAssessment> out;
  for (Platform platform :
       {Platform::Fabric, Platform::Corda, Platform::Quorum}) {
    PlatformAssessment a;
    a.platform = platform;
    double total = 0;
    for (Mechanism mech : recommendation.mechanisms) {
      switch (matrix.at(platform, mech)) {
        case Support::Native:
          ++a.native;
          total += 1.0;
          break;
        case Support::Extendable:
          ++a.extendable;
          total += 0.5;
          a.gaps.push_back(to_string(mech) + ": custom implementation needed");
          break;
        case Support::HardRewrite:
          ++a.blocked;
          a.gaps.push_back(to_string(mech) +
                           ": requires substantial rewriting");
          break;
        case Support::NotApplicable:
          // Does not count against the platform (e.g. Corda has no global
          // contract installation to restrict).
          total += 1.0;
          break;
      }
    }
    a.score = recommendation.mechanisms.empty()
                  ? 1.0
                  : total / static_cast<double>(recommendation.mechanisms.size());
    out.push_back(std::move(a));
  }
  std::sort(out.begin(), out.end(),
            [](const PlatformAssessment& x, const PlatformAssessment& y) {
              if (x.score != y.score) return x.score > y.score;
              if (x.native != y.native) return x.native > y.native;
              return static_cast<int>(x.platform) < static_cast<int>(y.platform);
            });
  return out;
}

std::string render(const std::vector<PlatformAssessment>& assessments) {
  std::ostringstream os;
  os << std::left << std::setw(10) << "Platform" << std::setw(8) << "score"
     << std::setw(8) << "native" << std::setw(12) << "extendable"
     << std::setw(9) << "blocked" << "gaps\n";
  for (const PlatformAssessment& a : assessments) {
    os << std::left << std::setw(10) << to_string(a.platform) << std::setw(8)
       << std::fixed << std::setprecision(2) << a.score << std::setw(8)
       << a.native << std::setw(12) << a.extendable << std::setw(9)
       << a.blocked;
    for (std::size_t i = 0; i < a.gaps.size(); ++i) {
      if (i) os << "; ";
      os << a.gaps[i];
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace veil::core
