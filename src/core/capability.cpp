#include "core/capability.hpp"

#include <iomanip>
#include <sstream>

#include "common/error.hpp"

namespace veil::core {

std::string to_string(Platform p) {
  switch (p) {
    case Platform::Fabric: return "HLF";
    case Platform::Corda: return "Corda";
    case Platform::Quorum: return "Quorum";
  }
  return "?";
}

std::string symbol(Support s) {
  switch (s) {
    case Support::Native: return "+";
    case Support::Extendable: return "*";
    case Support::HardRewrite: return "-";
    case Support::NotApplicable: return "N/A";
  }
  return "?";
}

Support CapabilityMatrix::at(Platform platform, Mechanism mechanism) const {
  const auto it = cells_.find({platform, mechanism});
  if (it == cells_.end()) {
    throw common::Error("capability matrix: missing cell");
  }
  return it->second;
}

void CapabilityMatrix::set(Platform platform, Mechanism mechanism,
                           Support support) {
  cells_[{platform, mechanism}] = support;
}

const CapabilityMatrix& CapabilityMatrix::paper_table1() {
  static const CapabilityMatrix matrix = [] {
    CapabilityMatrix m;
    using M = Mechanism;
    using S = Support;
    const auto row = [&m](M mech, S fabric, S corda, S quorum) {
      m.set(Platform::Fabric, mech, fabric);
      m.set(Platform::Corda, mech, corda);
      m.set(Platform::Quorum, mech, quorum);
    };
    // Parties
    row(M::SeparationOfLedgers, S::Native, S::Native, S::Native);
    row(M::OneTimePublicKeys, S::HardRewrite, S::Native, S::Extendable);
    row(M::ZkpIdentity, S::Native, S::HardRewrite, S::HardRewrite);
    // Transactions (separation row is shared with Parties in the paper;
    // repeated here because the matrix is keyed by mechanism).
    row(M::OffChainData, S::Native, S::Extendable, S::HardRewrite);
    row(M::SymmetricEncryption, S::Native, S::Native, S::Native);
    row(M::MerkleTearOffs, S::Extendable, S::Native, S::HardRewrite);
    row(M::ZkProofs, S::Extendable, S::Extendable, S::Extendable);
    row(M::MultipartyComputation, S::Extendable, S::Extendable, S::Extendable);
    row(M::HomomorphicEncryption, S::Extendable, S::Extendable, S::Extendable);
    row(M::TrustedExecution, S::HardRewrite, S::HardRewrite, S::HardRewrite);
    // Logic
    row(M::InstallOnInvolvedNodes, S::Native, S::NotApplicable, S::Native);
    row(M::OffChainExecutionEngine, S::Extendable, S::Native, S::HardRewrite);
    row(M::TeeForLogic, S::HardRewrite, S::HardRewrite, S::HardRewrite);
    // Misc
    row(M::PrivateSequencer, S::Native, S::Native, S::Native);
    row(M::OpenSource, S::Native, S::Native, S::Native);
    return m;
  }();
  return matrix;
}

const std::vector<std::pair<std::string, Mechanism>>& table1_rows() {
  static const std::vector<std::pair<std::string, Mechanism>> rows = {
      {"Parties", Mechanism::SeparationOfLedgers},
      {"Parties", Mechanism::OneTimePublicKeys},
      {"Parties", Mechanism::ZkpIdentity},
      {"Transactions", Mechanism::SeparationOfLedgers},
      {"Transactions", Mechanism::OffChainData},
      {"Transactions", Mechanism::SymmetricEncryption},
      {"Transactions", Mechanism::MerkleTearOffs},
      {"Transactions", Mechanism::ZkProofs},
      {"Transactions", Mechanism::MultipartyComputation},
      {"Transactions", Mechanism::HomomorphicEncryption},
      {"Logic", Mechanism::InstallOnInvolvedNodes},
      {"Logic", Mechanism::OffChainExecutionEngine},
      {"Logic", Mechanism::TeeForLogic},
      {"Misc.", Mechanism::PrivateSequencer},
      {"Misc.", Mechanism::OpenSource},
  };
  return rows;
}

std::string CapabilityMatrix::render() const {
  std::ostringstream os;
  os << std::left << std::setw(14) << "Category" << std::setw(42)
     << "Mechanism" << std::setw(8) << "HLF" << std::setw(8) << "Corda"
     << std::setw(8) << "Quorum" << "\n";
  os << std::string(78, '-') << "\n";
  for (const auto& [category, mech] : table1_rows()) {
    os << std::left << std::setw(14) << category << std::setw(42)
       << to_string(mech);
    for (Platform p : {Platform::Fabric, Platform::Corda, Platform::Quorum}) {
      os << std::setw(8) << symbol(at(p, mech));
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace veil::core
