// The mechanism catalog of Section 2 — every privacy/confidentiality
// technique the paper surveys, with its category and maturity level.
#pragma once

#include <string>
#include <vector>

namespace veil::core {

enum class Mechanism {
  // §2.1 Privacy of interactions
  SeparationOfLedgers,
  OneTimePublicKeys,
  ZkpIdentity,
  // §2.2 Confidentiality of transactions and data
  OffChainData,
  SymmetricEncryption,
  MerkleTearOffs,
  ZkProofs,
  MultipartyComputation,
  HomomorphicEncryption,
  TrustedExecution,
  // §2.3 Confidentiality of business logic
  InstallOnInvolvedNodes,
  OffChainExecutionEngine,
  TeeForLogic,
  // Misc rows of Table 1
  PrivateSequencer,
  OpenSource,
};

enum class Category {
  PartyPrivacy,
  DataConfidentiality,
  LogicConfidentiality,
  Misc,
};

/// Maturity as assessed in §2: Production = deployable today; Emerging =
/// scenario-specific implementations exist (ZKP, MPC); ProofOfConcept =
/// infeasible for current systems (homomorphic computation).
enum class Maturity { Production, Emerging, ProofOfConcept };

struct MechanismInfo {
  Mechanism id;
  std::string name;
  Category category;
  Maturity maturity;
  std::string summary;
};

/// All fifteen mechanisms in Table 1 order.
const std::vector<MechanismInfo>& mechanism_catalog();

const MechanismInfo& info(Mechanism m);
std::string to_string(Mechanism m);
std::string to_string(Category c);
std::string to_string(Maturity m);

}  // namespace veil::core
