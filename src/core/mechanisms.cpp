#include "core/mechanisms.hpp"

#include "common/error.hpp"

namespace veil::core {

const std::vector<MechanismInfo>& mechanism_catalog() {
  static const std::vector<MechanismInfo> catalog = {
      {Mechanism::SeparationOfLedgers, "Separation of ledgers",
       Category::PartyPrivacy, Maturity::Production,
       "Private per-group ledgers; data and membership visible only inside "
       "the partition"},
      {Mechanism::OneTimePublicKeys, "One-time public keys",
       Category::PartyPrivacy, Maturity::Production,
       "Pseudonymous keys mask asset owners; linkage certificates disclose "
       "identity to chosen counterparties only"},
      {Mechanism::ZkpIdentity, "Zero-knowledge proof of identity",
       Category::PartyPrivacy, Maturity::Emerging,
       "Prove credential possession without revealing identity; signatures "
       "unlinkable to each other"},
      {Mechanism::OffChainData, "Off-chain data", Category::DataConfidentiality,
       Maturity::Production,
       "Private data in an off-chain store; ledger carries a hash; enables "
       "GDPR deletion"},
      {Mechanism::SymmetricEncryption, "Symmetric key encryption",
       Category::DataConfidentiality, Maturity::Production,
       "AES-encrypted values with keys shared via PKI"},
      {Mechanism::MerkleTearOffs, "Merkle tree tear-offs",
       Category::DataConfidentiality, Maturity::Production,
       "Sign the Merkle root; counterparties verify without the hidden "
       "branches"},
      {Mechanism::ZkProofs, "Zero-knowledge proofs",
       Category::DataConfidentiality, Maturity::Emerging,
       "Boolean affirmation (e.g. sufficient funds) without revealing raw "
       "values; scenario-specific"},
      {Mechanism::MultipartyComputation, "Multiparty computation",
       Category::DataConfidentiality, Maturity::Emerging,
       "Shared function on private inputs; no private value ever shared"},
      {Mechanism::HomomorphicEncryption, "Homomorphic encryption",
       Category::DataConfidentiality, Maturity::ProofOfConcept,
       "Compute on ciphertext; limited operations, infeasible for current "
       "systems"},
      {Mechanism::TrustedExecution, "Trusted execution environments",
       Category::DataConfidentiality, Maturity::Emerging,
       "Hardware-isolated execution with remote attestation; code and data "
       "hidden from the host"},
      {Mechanism::InstallOnInvolvedNodes, "Install contract on involved nodes",
       Category::LogicConfidentiality, Maturity::Production,
       "Distribute contract code only to endorsing nodes"},
      {Mechanism::OffChainExecutionEngine, "Off-chain execution engine",
       Category::LogicConfidentiality, Maturity::Production,
       "Business logic outside the DLT; ledger stores read/write stubs; "
       "free language choice, external version control"},
      {Mechanism::TeeForLogic, "TEE for business logic",
       Category::LogicConfidentiality, Maturity::Emerging,
       "Execute contracts inside enclaves; logic invisible even to the node "
       "administrator"},
      {Mechanism::PrivateSequencer, "Private sequencing service",
       Category::Misc, Maturity::Production,
       "Parties can run the ordering/notary service themselves"},
      {Mechanism::OpenSource, "Open source", Category::Misc,
       Maturity::Production, "Code base is publicly auditable"},
  };
  return catalog;
}

const MechanismInfo& info(Mechanism m) {
  for (const MechanismInfo& entry : mechanism_catalog()) {
    if (entry.id == m) return entry;
  }
  throw common::Error("unknown mechanism");
}

std::string to_string(Mechanism m) { return info(m).name; }

std::string to_string(Category c) {
  switch (c) {
    case Category::PartyPrivacy: return "Parties";
    case Category::DataConfidentiality: return "Transactions";
    case Category::LogicConfidentiality: return "Logic";
    case Category::Misc: return "Misc.";
  }
  return "?";
}

std::string to_string(Maturity m) {
  switch (m) {
    case Maturity::Production: return "production";
    case Maturity::Emerging: return "emerging";
    case Maturity::ProofOfConcept: return "proof-of-concept";
  }
  return "?";
}

}  // namespace veil::core
