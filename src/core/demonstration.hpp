// Demonstration harness: exercise every Table 1 cell on the simulated
// platforms.
//
// A '+' (native) or '*' (extendable) cell is only credible if code
// actually exhibits the mechanism on that platform. demonstrate() runs a
// miniature scenario per cell and reports whether the mechanism's
// semantic property held (checked against the leakage auditor where the
// property is about information flow). '—' cells return
// demonstrated=false with the paper's "requires substantial rewriting"
// note — the expected outcome.
//
// bench_table1 uses this to print a VERIFIED column next to the
// regenerated matrix; tests assert demonstrate() agrees with Table 1.
#pragma once

#include <string>

#include "core/capability.hpp"

namespace veil::core {

struct DemoResult {
  bool demonstrated = false;
  std::string note;
};

/// Run the miniature scenario for one Table 1 cell. `seed` keeps runs
/// reproducible while letting property tests vary them.
DemoResult demonstrate(Platform platform, Mechanism mechanism,
                       std::uint64_t seed = 42);

}  // namespace veil::core
