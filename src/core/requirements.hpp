// Requirement model — the questions an architect answers before the
// design guide (Section 3) can recommend mechanisms.
#pragma once

#include <string>
#include <vector>

namespace veil::core {

/// §3.2 / Figure 1 — data-confidentiality requirements.
struct DataRequirements {
  /// Regulatory deletion obligations (GDPR "right to be forgotten").
  bool deletion_required = false;
  /// May encrypted data be shared with the wider network? (Given enough
  /// compute, ciphertext can be broken; some parties refuse to share it.)
  bool encrypted_sharing_allowed = true;
  /// Is an on-chain record desired (endorsement protocols / append-only
  /// audit trail)?
  bool onchain_record_desired = true;
  /// Must some data in a transaction stay hidden from SOME participants
  /// of that same transaction?
  bool hide_within_transaction = false;
  /// Must uninvolved network parties be able to validate correctness of
  /// otherwise-confidential transactions?
  bool uninvolved_validation = false;
  /// Does the transaction rely on private data that cannot be shared even
  /// between the transacting parties?
  bool private_inputs = false;
  /// Must a shared function be computed on those private values (secret
  /// ballot, aggregate statistics)?
  bool shared_function_on_private = false;
  /// Is a node administered by a third party that must not see raw data?
  bool untrusted_node_admin = false;

  std::string describe() const;
};

/// §3.1 — privacy-of-interaction requirements.
struct PartyRequirements {
  /// A known group wants its interactions hidden from the network.
  bool hide_group_from_network = false;
  /// A sub-group on a ledger must not reveal that they transact.
  bool hide_subgroup_on_ledger = false;
  /// An individual party must sign/commit while staying fully private.
  bool fully_private_individual = false;

  std::string describe() const;
};

/// §3.3 — business-logic confidentiality requirements (the four criteria).
struct LogicRequirements {
  bool keep_logic_private = false;
  bool need_builtin_versioning = false;
  bool hide_from_node_admin = false;
  bool language_freedom = false;

  std::string describe() const;
};

/// Everything about a use case in one place.
struct RequirementProfile {
  std::string use_case;
  DataRequirements data;
  PartyRequirements parties;
  LogicRequirements logic;
};

/// §4 — the letter-of-credit case study, as stated in the paper:
/// PII must be deletable (GDPR), encrypted data may be shared and stored,
/// buyer/seller relationships and agreement details hidden from the
/// network, validators are the transacting parties, logic is standardized
/// and non-confidential.
RequirementProfile letter_of_credit_profile();

}  // namespace veil::core
