#include "core/decision.hpp"

#include <algorithm>

namespace veil::core {

bool Recommendation::recommends(Mechanism m) const {
  return std::find(mechanisms.begin(), mechanisms.end(), m) !=
         mechanisms.end();
}

namespace {

void add(Recommendation& rec, Mechanism m) {
  if (!rec.recommends(m)) rec.mechanisms.push_back(m);
}

}  // namespace

Recommendation DecisionEngine::for_data(const DataRequirements& req) {
  Recommendation rec;

  // Fork 1 — regulatory deletion. Ledgers are append-only, so deletable
  // data must live off-chain; the hash on the ledger still evidences it.
  if (req.deletion_required) {
    rec.rationale.push_back(
        "deletion required -> data must be stored off-chain");
    add(rec, Mechanism::OffChainData);
    if (req.onchain_record_desired) {
      rec.rationale.push_back(
          "on-chain record desired -> publish hash of off-chain data");
    }
    rec.caveats.push_back(
        "allowing deletion contradicts the promise of an immutable, "
        "auditable record; only the hash stub remains");
  }

  // Fork 2 — can ciphertext be shared with the wider network? If not,
  // the group needs a segregated ledger (nothing, not even ciphertext,
  // leaves the partition).
  if (!req.encrypted_sharing_allowed) {
    rec.rationale.push_back(
        "encrypted data may not be shared -> segregate the ledger");
    add(rec, Mechanism::SeparationOfLedgers);
  } else if (req.onchain_record_desired && !req.uninvolved_validation) {
    // Fork 3 — on-chain records with only involved validators: segregated
    // ledgers are "more generally the preferred solution".
    rec.rationale.push_back(
        "on-chain record desired, only involved parties validate -> "
        "segregated ledger preferred");
    add(rec, Mechanism::SeparationOfLedgers);
  }

  // Fork 4 — hiding data from some participants of the same transaction.
  if (req.hide_within_transaction) {
    rec.rationale.push_back(
        "transaction contains data irrelevant/private to some "
        "participants -> Merkle tree tear-offs");
    add(rec, Mechanism::MerkleTearOffs);
  }

  // Fork 5 — uninvolved parties must validate confidential transactions.
  if (req.uninvolved_validation) {
    rec.rationale.push_back(
        "independent validation with confidential data -> provision "
        "trusted execution environments on uninvolved nodes");
    add(rec, Mechanism::TrustedExecution);
    rec.caveats.push_back(
        "homomorphic computation may eventually enable processing of "
        "encrypted values, but is not mature enough to date");
  }

  // Fork 6 — private inputs that cannot be shared between the parties.
  if (req.private_inputs) {
    if (req.shared_function_on_private) {
      rec.rationale.push_back(
          "shared function on private values (e.g. secret ballot) -> "
          "multiparty computation");
      add(rec, Mechanism::MultipartyComputation);
    } else {
      rec.rationale.push_back(
          "precondition on private data -> zero-knowledge proof gives "
          "boolean affirmation");
      add(rec, Mechanism::ZkProofs);
    }
    rec.caveats.push_back(
        "ZKPs/MPC must be implemented per scenario; platforms are still "
        "working on native support");
  }

  // Side branch (not in the diagram, §3.2 closing note) — untrusted node
  // administration.
  if (req.untrusted_node_admin) {
    rec.rationale.push_back(
        "node administered by an untrusted third party -> encrypt "
        "transaction data (symmetric or asymmetric)");
    add(rec, Mechanism::SymmetricEncryption);
  }

  if (rec.mechanisms.empty()) {
    rec.rationale.push_back(
        "no restriction triggered -> plain shared ledger is acceptable");
  }
  return rec;
}

Recommendation DecisionEngine::for_parties(const PartyRequirements& req) {
  Recommendation rec;
  if (req.hide_group_from_network) {
    rec.rationale.push_back(
        "group interactions must be hidden from the network -> separate "
        "ledger for the group");
    add(rec, Mechanism::SeparationOfLedgers);
  }
  if (req.hide_subgroup_on_ledger) {
    rec.rationale.push_back(
        "sub-group on a ledger must not reveal that they transact -> "
        "one-time public keys");
    add(rec, Mechanism::OneTimePublicKeys);
    rec.caveats.push_back(
        "counterparties needing signature verification receive a linkage "
        "certificate; keep its distribution minimal");
  }
  if (req.fully_private_individual) {
    rec.rationale.push_back(
        "individual must sign/commit while fully private -> "
        "zero-knowledge proof of identity");
    add(rec, Mechanism::ZkpIdentity);
  }
  if (rec.mechanisms.empty()) {
    rec.rationale.push_back("no interaction-privacy requirement");
  }
  return rec;
}

Recommendation DecisionEngine::for_logic(const LogicRequirements& req) {
  Recommendation rec;
  if (req.hide_from_node_admin) {
    rec.rationale.push_back(
        "node admin must not see code/data -> run contracts inside a "
        "trusted execution environment");
    add(rec, Mechanism::TeeForLogic);
  } else if (req.keep_logic_private) {
    if (req.language_freedom) {
      rec.rationale.push_back(
          "private logic + free language choice -> off-chain execution "
          "engine");
      add(rec, Mechanism::OffChainExecutionEngine);
      if (req.need_builtin_versioning) {
        rec.caveats.push_back(
            "an external engine forfeits the DLT's in-built contract "
            "version control; version management moves outside the DLT "
            "layer");
      }
    } else {
      rec.rationale.push_back(
          "private logic, platform language acceptable -> install "
          "contracts on involved nodes only");
      add(rec, Mechanism::InstallOnInvolvedNodes);
    }
  } else if (req.language_freedom) {
    rec.rationale.push_back(
        "language freedom desired (e.g. domain-specific languages) -> "
        "off-chain execution engine");
    add(rec, Mechanism::OffChainExecutionEngine);
  }
  if (rec.mechanisms.empty()) {
    rec.rationale.push_back(
        "logic is not confidential -> standard on-ledger contracts");
  }
  return rec;
}

Recommendation DecisionEngine::for_profile(const RequirementProfile& profile) {
  Recommendation all;
  for (const Recommendation& part :
       {for_parties(profile.parties), for_data(profile.data),
        for_logic(profile.logic)}) {
    for (Mechanism m : part.mechanisms) add(all, m);
    all.rationale.insert(all.rationale.end(), part.rationale.begin(),
                         part.rationale.end());
    all.caveats.insert(all.caveats.end(), part.caveats.begin(),
                       part.caveats.end());
  }
  return all;
}

}  // namespace veil::core
