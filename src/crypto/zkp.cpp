#include "crypto/zkp.hpp"

#include "common/error.hpp"
#include "common/serialize.hpp"

namespace veil::crypto {

namespace {

BigInt challenge_of(const Group& group, std::initializer_list<const BigInt*> parts,
                    common::BytesView context) {
  common::Writer w;
  for (const BigInt* part : parts) w.bytes(part->to_bytes_be());
  w.bytes(context);
  return group.hash_to_scalar(w.data());
}

}  // namespace

BigInt dlog_challenge(const Group& group, const BigInt& base, const BigInt& y,
                      const BigInt& commitment, common::BytesView context) {
  return challenge_of(group, {&base, &y, &commitment}, context);
}

common::Bytes DlogProof::encode() const {
  common::Writer w;
  w.bytes(commitment.to_bytes_be());
  w.bytes(response.to_bytes_be());
  return w.take();
}

DlogProof DlogProof::decode(common::BytesView data) {
  common::Reader r(data);
  DlogProof p;
  p.commitment = BigInt::from_bytes_be(r.bytes());
  p.response = BigInt::from_bytes_be(r.bytes());
  return p;
}

DlogProof prove_dlog(const Group& group, const BigInt& base,
                     const BigInt& secret, common::BytesView context,
                     common::Rng& rng) {
  const BigInt k = group.random_scalar(rng);
  const BigInt t = group.pow(base, k);
  const BigInt y = group.pow(base, secret);
  const BigInt c = challenge_of(group, {&base, &y, &t}, context);
  const BigInt s = (k + c * (secret % group.q())) % group.q();
  return DlogProof{t, s};
}

bool verify_dlog(const Group& group, const BigInt& base, const BigInt& y,
                 const DlogProof& proof, common::BytesView context) {
  if (proof.response >= group.q()) return false;
  if (!group.is_element(y) || !group.is_element(proof.commitment)) return false;
  const BigInt c = challenge_of(group, {&base, &y, &proof.commitment}, context);
  // base^s == t * y^c
  const BigInt lhs = group.pow(base, proof.response);
  const BigInt rhs = group.mul(proof.commitment, group.pow(y, c));
  return lhs == rhs;
}

common::Bytes BitProof::encode() const {
  common::Writer w;
  for (const BigInt* v : {&t0, &t1, &c0, &c1, &s0, &s1}) {
    w.bytes(v->to_bytes_be());
  }
  return w.take();
}

BitProof BitProof::decode(common::BytesView data) {
  common::Reader r(data);
  BitProof p;
  for (BigInt* v : {&p.t0, &p.t1, &p.c0, &p.c1, &p.s0, &p.s1}) {
    *v = BigInt::from_bytes_be(r.bytes());
  }
  return p;
}

BitProof prove_bit(const Group& group, const Commitment& commitment,
                   bool bit, const BigInt& blinding,
                   common::BytesView context, common::Rng& rng) {
  // Statement 0: C   = h^r      (bit == 0)
  // Statement 1: C/g = h^r      (bit == 1)
  const BigInt y0 = commitment.c;
  const BigInt y1 = group.mul(commitment.c, group.inv(group.g()));

  BitProof proof;
  const BigInt k = group.random_scalar(rng);

  if (!bit) {
    // Real proof on branch 0, simulate branch 1.
    proof.c1 = group.random_scalar(rng);
    proof.s1 = group.random_scalar(rng);
    // t1 = h^{s1} * y1^{-c1}
    proof.t1 = group.mul(group.pow_h(proof.s1),
                         group.inv(group.pow(y1, proof.c1)));
    proof.t0 = group.pow_h(k);
    const BigInt c = challenge_of(group, {&commitment.c, &proof.t0, &proof.t1},
                                  context);
    proof.c0 = (c + group.q() - (proof.c1 % group.q())) % group.q();
    proof.s0 = (k + proof.c0 * (blinding % group.q())) % group.q();
  } else {
    // Real proof on branch 1, simulate branch 0.
    proof.c0 = group.random_scalar(rng);
    proof.s0 = group.random_scalar(rng);
    proof.t0 = group.mul(group.pow_h(proof.s0),
                         group.inv(group.pow(y0, proof.c0)));
    proof.t1 = group.pow_h(k);
    const BigInt c = challenge_of(group, {&commitment.c, &proof.t0, &proof.t1},
                                  context);
    proof.c1 = (c + group.q() - (proof.c0 % group.q())) % group.q();
    proof.s1 = (k + proof.c1 * (blinding % group.q())) % group.q();
  }
  return proof;
}

bool verify_bit(const Group& group, const Commitment& commitment,
                const BitProof& proof, common::BytesView context) {
  const BigInt y0 = commitment.c;
  const BigInt y1 = group.mul(commitment.c, group.inv(group.g()));
  const BigInt c = challenge_of(group, {&commitment.c, &proof.t0, &proof.t1},
                                context);
  if ((proof.c0 + proof.c1) % group.q() != c) return false;
  // h^{s0} == t0 * y0^{c0}
  if (group.pow_h(proof.s0) !=
      group.mul(proof.t0, group.pow(y0, proof.c0))) {
    return false;
  }
  // h^{s1} == t1 * y1^{c1}
  if (group.pow_h(proof.s1) !=
      group.mul(proof.t1, group.pow(y1, proof.c1))) {
    return false;
  }
  return true;
}

common::Bytes RangeProof::encode() const {
  common::Writer w;
  w.varint(bit_commitments.size());
  for (const Commitment& c : bit_commitments) w.bytes(c.c.to_bytes_be());
  for (const BitProof& p : bit_proofs) w.bytes(p.encode());
  w.bytes(consistency.encode());
  return w.take();
}

RangeProof RangeProof::decode(common::BytesView data, std::size_t bit_count) {
  common::Reader r(data);
  RangeProof proof;
  const std::uint64_t n = r.varint();
  if (n != bit_count) {
    throw common::CryptoError("RangeProof::decode: bit count mismatch");
  }
  for (std::uint64_t i = 0; i < n; ++i) {
    proof.bit_commitments.push_back(
        Commitment{BigInt::from_bytes_be(r.bytes())});
  }
  for (std::uint64_t i = 0; i < n; ++i) {
    const common::Bytes b = r.bytes();
    proof.bit_proofs.push_back(BitProof::decode(b));
  }
  const common::Bytes b = r.bytes();
  proof.consistency = DlogProof::decode(b);
  return proof;
}

RangeProof prove_range(const Group& group, const Commitment& commitment,
                       const Opening& opening, std::size_t bit_count,
                       common::BytesView context, common::Rng& rng) {
  if (opening.value.bit_length() > bit_count) {
    throw common::CryptoError("prove_range: value out of range");
  }
  const Pedersen pedersen(group);
  RangeProof proof;

  // Commit to each bit of the value.
  std::vector<Opening> bit_openings;
  for (std::size_t i = 0; i < bit_count; ++i) {
    const BigInt bit_value(opening.value.bit(i) ? 1 : 0);
    auto [c, o] = pedersen.commit(bit_value, rng);
    proof.bit_commitments.push_back(c);
    bit_openings.push_back(o);
  }

  // Bind every sub-proof to the top-level commitment and context.
  common::Writer ctx;
  ctx.bytes(commitment.c.to_bytes_be());
  for (const Commitment& c : proof.bit_commitments) ctx.bytes(c.c.to_bytes_be());
  ctx.bytes(context);
  const common::Bytes bound_context = ctx.take();

  for (std::size_t i = 0; i < bit_count; ++i) {
    proof.bit_proofs.push_back(prove_bit(group, proof.bit_commitments[i],
                                         opening.value.bit(i),
                                         bit_openings[i].blinding,
                                         bound_context, rng));
  }

  // Residual blinding: r - sum(r_i * 2^i) mod q. The residue
  // C * prod(C_i^{2^i})^{-1} equals h^{residual}; prove its dlog base h.
  BigInt weighted;
  for (std::size_t i = 0; i < bit_count; ++i) {
    weighted = (weighted + (bit_openings[i].blinding << i)) % group.q();
  }
  const BigInt residual =
      ((opening.blinding % group.q()) + group.q() - weighted) % group.q();
  proof.consistency =
      prove_dlog(group, group.h(), residual, bound_context, rng);
  return proof;
}

bool verify_range(const Group& group, const Commitment& commitment,
                  const RangeProof& proof, std::size_t bit_count,
                  common::BytesView context) {
  if (proof.bit_commitments.size() != bit_count ||
      proof.bit_proofs.size() != bit_count) {
    return false;
  }
  common::Writer ctx;
  ctx.bytes(commitment.c.to_bytes_be());
  for (const Commitment& c : proof.bit_commitments) ctx.bytes(c.c.to_bytes_be());
  ctx.bytes(context);
  const common::Bytes bound_context = ctx.take();

  for (std::size_t i = 0; i < bit_count; ++i) {
    if (!verify_bit(group, proof.bit_commitments[i], proof.bit_proofs[i],
                    bound_context)) {
      return false;
    }
  }

  // residue = C * prod(C_i^{2^i})^{-1} must be h^{residual}.
  BigInt product(1);
  for (std::size_t i = 0; i < bit_count; ++i) {
    product = group.mul(product,
                        group.pow(proof.bit_commitments[i].c, BigInt(1) << i));
  }
  const BigInt residue = group.mul(commitment.c, group.inv(product));
  return verify_dlog(group, group.h(), residue, proof.consistency,
                     bound_context);
}

}  // namespace veil::crypto
